# expect_exit.cmake -- ctest helper asserting an EXACT exit code.
#
# WILL_FAIL only distinguishes zero from non-zero; poptrie_fsck's contract is
# three-valued (0 clean / 1 violations / 2 usage-or-input error), so the e2e
# tests run it through this script instead:
#
#   cmake -DCMD=<prog|arg|arg...> -DEXPECT=<code>
#         [-DWRITE_FILE=<path> -DWRITE_CONTENT=<text>]  -P expect_exit.cmake
#
# CMD uses '|' as the argument separator ('-DCMD=a;b' would be split by
# CMake's own list handling before the script ever saw it).
#
# WRITE_FILE materializes a fixture (e.g. a deliberately corrupted table
# file) before the run, keeping the corruption visible in the test definition
# rather than hidden in a checked-in binary.

if(NOT DEFINED CMD OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "expect_exit.cmake needs -DCMD=... and -DEXPECT=...")
endif()

if(DEFINED WRITE_FILE)
  file(WRITE "${WRITE_FILE}" "${WRITE_CONTENT}")
endif()

string(REPLACE "|" ";" CMD "${CMD}")
execute_process(COMMAND ${CMD} RESULT_VARIABLE code)

if(NOT code EQUAL EXPECT)
  message(FATAL_ERROR "expected exit ${EXPECT}, got '${code}' from: ${CMD}")
endif()
