// tools/poptrie_fsck.cpp — file-system-check for Poptrie FIBs.
//
// Builds a Poptrie from a generated or loaded routing table, runs the full
// structural audit (analysis/audit.hpp) against the source RIB, optionally
// replays incremental updates re-auditing along the way, and exits non-zero
// on any violation. This is the command-line face of the invariant auditor:
//
//     poptrie_fsck --family 4 --routes 100000 --updates 1000
//     poptrie_fsck --family 6 --updates 1000 --audit-every 100
//     poptrie_fsck --file table.txt --direct-bits 16 --verbose
//
// Exit codes: 0 = clean, 1 = violations found, 2 = usage/input error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/arena.hpp"
#include "analysis/audit.hpp"
#include "netbase/bits.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/radix_trie.hpp"
#include "snapshot/snapshot.hpp"
#include "workload/tablegen.hpp"
#include "workload/tableio.hpp"
#include "workload/updatefeed.hpp"
#include "workload/xorshift.hpp"

namespace {

struct FsckOptions {
    int family = 4;
    std::string file;           // load instead of generating when non-empty
    std::size_t routes = 100'000;
    bool routes_set = false;
    std::uint64_t seed = 1;
    std::size_t updates = 0;
    std::size_t audit_every = 0;  // 0: audit only before/after the update run
    poptrie::Config cfg{};
    std::size_t probes = 4096;
    bool verbose = false;
    bool compact = false;  // run compact() after build/churn, audit the layout
    bool stats = false;    // print occupancy + fragmentation counters
    std::string inject_fault;  // "", "leaf", "vector" or "direct"
    std::string save_image;    // write a snapshot image after all stages
};

void usage(std::FILE* to)
{
    std::fputs(
        "usage: poptrie_fsck [options]\n"
        "  --family 4|6       address family (default 4)\n"
        "  --file PATH        load a table file instead of generating one\n"
        "  --routes N         generated table size (default 100000 / 20440 for v6)\n"
        "  --seed S           generator and probe seed (default 1)\n"
        "  --updates N        apply N incremental updates after the build audit\n"
        "  --audit-every K    full audit every K updates (default: only at the end)\n"
        "  --direct-bits S    direct-pointing bits (default 18)\n"
        "  --basic            disable leaf compression\n"
        "  --no-aggregate     disable route aggregation\n"
        "  --probes N         random differential probes per audit (default 4096)\n"
        "  --compact          run Poptrie::compact() after the build (and after\n"
        "                     the update run) and audit the canonical layout\n"
        "  --stats            print pool occupancy and fragmentation counters\n"
        "                     at each stage\n"
        "  --inject-fault K   corrupt the built FIB before auditing (K: leaf,\n"
        "                     vector, direct) -- the audit MUST then fail;\n"
        "                     exercises the detector end to end\n"
        "  --save-image F     write a snapshot image of the final FIB to F\n"
        "                     (after any --updates / --compact stages)\n"
        "  --verify-image F   audit an on-disk snapshot image instead of\n"
        "                     building a FIB: header, checksums, and the full\n"
        "                     structural walk; exit 1 on any violation\n"
        "  --verbose          print every audit's coverage summary\n",
        to);
}

bool parse_size(const std::string& flag, const char* s, std::size_t& out)
{
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') {
        std::fprintf(stderr, "poptrie_fsck: %s: '%s' is not a number\n", flag.c_str(), s);
        return false;
    }
    out = static_cast<std::size_t>(v);
    return true;
}

/// Runs one audit; returns its violation count and prints per --verbose.
template <class Addr>
std::size_t run_audit(const poptrie::Poptrie<Addr>& pt, const rib::RadixTrie<Addr>& rib,
                      const FsckOptions& opt, const std::string& stage,
                      bool expect_compacted = false)
{
    analysis::AuditOptions aopt;
    aopt.random_probes = opt.probes;
    aopt.seed = opt.seed ^ 0x5DEECE66Dull;
    aopt.expect_compacted = expect_compacted;
    const auto report = analysis::audit(pt, rib, aopt);
    if (!report.ok() || opt.verbose) {
        std::fprintf(report.ok() ? stdout : stderr, "[%s] %s", stage.c_str(),
                     report.summary().c_str());
    }
    return report.violation_count();
}

/// Prints the occupancy + fragmentation view of both pools (--stats): what
/// lpmd reports periodically, at fsck's stage granularity.
template <class Addr>
void print_stats(const poptrie::Poptrie<Addr>& pt, const std::string& stage)
{
    const auto s = pt.stats();
    const auto mem = pt.memory_report();
    std::printf(
        "[%s] inodes=%zu leaves=%zu direct=%zu backing=%s\n"
        "[%s] node pool: used=%zu high_water=%zu free_blocks=%zu largest_free_run=%zu\n"
        "[%s] leaf pool: used=%zu high_water=%zu free_blocks=%zu largest_free_run=%zu\n",
        stage.c_str(), s.internal_nodes, s.leaves, s.direct_slots,
        alloc::backing_name(mem.backing), stage.c_str(), s.node_pool_used,
        s.node_high_water, s.node_free_blocks, s.node_largest_free_run, stage.c_str(),
        s.leaf_pool_used, s.leaf_high_water, s.leaf_free_blocks, s.leaf_largest_free_run);
}

/// Address-family-generic update churn for tables that have no §4.9 feed
/// generator (IPv6): re-announce existing prefixes with fresh next hops,
/// withdraw live ones, and revive withdrawn ones.
template <class Addr>
std::size_t churn_updates(poptrie::Poptrie<Addr>& pt, rib::RadixTrie<Addr>& rib,
                          const rib::RouteList<Addr>& routes, const FsckOptions& opt,
                          std::size_t& violations)
{
    workload::Xorshift128 rng(opt.seed * 2654435761u + 7);
    std::vector<bool> live(routes.size(), true);
    std::size_t applied = 0;
    for (std::size_t i = 0; i < opt.updates; ++i) {
        const std::size_t j = rng.next_below(static_cast<std::uint32_t>(routes.size()));
        if (live[j] && rng.next_below(4) == 0) {
            pt.apply(rib, routes[j].prefix, rib::kNoRoute);
            live[j] = false;
        } else {
            const auto hop = static_cast<rib::NextHop>(1 + rng.next_below(419));
            pt.apply(rib, routes[j].prefix, hop);
            live[j] = true;
        }
        ++applied;
        if (opt.audit_every != 0 && applied % opt.audit_every == 0)
            violations += run_audit(pt, rib, opt,
                                    "update " + std::to_string(applied));
    }
    return applied;
}

/// Indices of every REACHABLE internal node (free-pool slots are invisible to
/// lookups and to the auditor, so corrupting them would prove nothing).
template <class Addr>
std::vector<std::uint32_t> reachable_nodes(const poptrie::Poptrie<Addr>& pt)
{
    const auto& nodes = analysis::AuditAccess::nodes(pt);
    std::vector<std::uint32_t> out;
    std::size_t scan = 0;
    if (pt.config().direct_bits == 0) {
        out.push_back(analysis::AuditAccess::root(pt));
    } else {
        for (const std::uint32_t v : analysis::AuditAccess::direct(pt))
            if (!(v & poptrie::Poptrie<Addr>::kDirectLeafBit)) out.push_back(v);
    }
    while (scan < out.size()) {
        const auto& n = nodes[out[scan++]];
        const auto kids = static_cast<unsigned>(netbase::popcount64(n.vector));
        for (unsigned k = 0; k < kids; ++k) out.push_back(n.base1 + k);
    }
    return out;
}

/// Deliberate in-memory corruption (via the auditor's access backdoor) so the
/// detection path can be exercised end to end: a clean run after an injection
/// would mean the auditor is blind to that fault class.
template <class Addr>
bool inject_fault(poptrie::Poptrie<Addr>& pt, const FsckOptions& opt)
{
    auto& nodes = analysis::AuditAccess::nodes(pt);
    if (opt.inject_fault == "leaf") {
        // Bump a reachable leaf's next hop: lookups over that chunk now
        // disagree with the RIB (and the run may stop being minimal).
        for (const auto idx : reachable_nodes(pt)) {
            if (nodes[idx].leafvec == 0) continue;
            auto& slot = analysis::AuditAccess::leaves(pt)[nodes[idx].base0];
            slot = static_cast<rib::NextHop>(slot + 7);
            return true;
        }
        return false;
    }
    if (opt.inject_fault == "vector") {
        // Flip a child bit in a reachable node: popcount offsets shift for
        // every sibling after it.
        for (const auto idx : reachable_nodes(pt)) {
            if (nodes[idx].vector == 0) continue;
            nodes[idx].vector ^= 1;
            return true;
        }
        return false;
    }
    if (opt.inject_fault == "direct") {
        // Point a direct slot outside the node pool.
        auto& direct = analysis::AuditAccess::direct(pt);
        if (direct.empty()) return false;
        direct[direct.size() / 2] = 0x0FFF'FFFFu;
        return true;
    }
    std::fprintf(stderr, "poptrie_fsck: unknown --inject-fault kind '%s'\n",
                 opt.inject_fault.c_str());
    std::exit(2);
}

template <class Addr>
int fsck(const rib::RouteList<Addr>& routes, const FsckOptions& opt)
{
    rib::RadixTrie<Addr> rib;
    rib.insert_all(routes);
    // quiescent: fsck is single-threaded — no reader thread ever exists, so
    // the compact()/drain() passes below are safe.
    const psync::QuiescentSection quiescent;
    poptrie::Poptrie<Addr> pt{rib, opt.cfg};
    if (opt.verbose) {
        const auto s = pt.stats();
        std::printf("table: %zu routes -> %zu inodes, %zu leaves, %zu direct slots\n",
                    rib.route_count(), s.internal_nodes, s.leaves, s.direct_slots);
    }

    if (!opt.inject_fault.empty() && !inject_fault(pt, opt)) {
        std::fprintf(stderr, "poptrie_fsck: table too small to inject a '%s' fault\n",
                     opt.inject_fault.c_str());
        return 2;
    }

    std::size_t violations = run_audit(pt, rib, opt, "build");
    if (opt.stats) print_stats(pt, "build");

    if (opt.compact && opt.inject_fault.empty()) {
        pt.compact();
        violations += run_audit(pt, rib, opt, "compact", /*expect_compacted=*/true);
        if (opt.stats) print_stats(pt, "compact");
    }

    if (opt.updates != 0) {
        std::size_t applied = 0;
        if constexpr (Addr::kWidth == 32) {
            workload::UpdateFeedConfig ucfg;
            ucfg.seed = opt.seed + 13;
            ucfg.updates = opt.updates;
            const auto feed = workload::make_update_feed(routes, ucfg);
            for (const auto& ev : feed) {
                pt.apply(rib, ev.prefix, ev.next_hop);
                ++applied;
                if (opt.audit_every != 0 && applied % opt.audit_every == 0)
                    violations += run_audit(pt, rib, opt,
                                            "update " + std::to_string(applied));
            }
        } else {
            applied = churn_updates(pt, rib, routes, opt, violations);
        }
        violations += run_audit(pt, rib, opt, "after " + std::to_string(applied) + " updates");
        pt.drain();
        violations += run_audit(pt, rib, opt, "after drain");
        if (opt.stats) print_stats(pt, "after churn");
        if (opt.compact) {
            pt.compact();
            violations +=
                run_audit(pt, rib, opt, "post-churn compact", /*expect_compacted=*/true);
            if (opt.stats) print_stats(pt, "post-churn compact");
        }
    }

    if (!opt.save_image.empty()) {
        // Written even when the audit failed: the e2e tests save a FIB with
        // an injected fault precisely to prove --verify-image catches it.
        snapshot::save(pt, opt.save_image);
        std::printf("poptrie_fsck: image written to %s\n", opt.save_image.c_str());
    }

    if (violations != 0) {
        std::fprintf(stderr, "poptrie_fsck: %zu violation(s)\n", violations);
        return 1;
    }
    std::puts("poptrie_fsck: clean");
    return 0;
}

/// --verify-image for one address family: load (header + checksum validation
/// happen inside the loader), then run the structural walk over the image.
template <class Addr>
int verify_image_family(const std::string& path, const FsckOptions& opt)
{
    const auto fib = snapshot::SnapshotFib<Addr>::load_file(path);
    const auto report = snapshot::verify_image(fib);
    if (!report.ok() || opt.verbose)
        std::fprintf(report.ok() ? stdout : stderr, "%s", report.summary().c_str());
    if (!report.ok()) {
        std::fprintf(stderr, "poptrie_fsck: image '%s' failed verification\n",
                     path.c_str());
        return 1;
    }
    std::printf("poptrie_fsck: image '%s' clean (%llu nodes, %llu leaves, "
                "%llu direct slots)\n",
                path.c_str(), static_cast<unsigned long long>(fib.node_count()),
                static_cast<unsigned long long>(fib.leaf_count()),
                static_cast<unsigned long long>(fib.direct_slots()));
    return 0;
}

int verify_image(const std::string& path, const FsckOptions& opt)
{
    try {
        const auto hdr = snapshot::read_header(path);
        if (hdr.family_width == 32) return verify_image_family<netbase::Ipv4Addr>(path, opt);
        if (hdr.family_width == 128)
            return verify_image_family<netbase::Ipv6Addr>(path, opt);
        std::fprintf(stderr, "poptrie_fsck: image '%s' has unknown family width %u\n",
                     path.c_str(), hdr.family_width);
        return 1;
    } catch (const snapshot::ImageError& e) {
        // A structurally invalid image is a verification failure, not a
        // usage error: the whole point of the subcommand is to catch these.
        std::fprintf(stderr, "poptrie_fsck: %s\n", e.what());
        return 1;
    } catch (const snapshot::ImageIoError& e) {
        std::fprintf(stderr, "poptrie_fsck: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "poptrie_fsck: %s\n", e.what());
        return 2;
    }
}

}  // namespace

int main(int argc, char** argv)
{
    FsckOptions opt;
    std::string verify_image_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "poptrie_fsck: %s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--family") {
            opt.family = std::atoi(value());
            if (opt.family != 4 && opt.family != 6) {
                std::fprintf(stderr, "poptrie_fsck: --family must be 4 or 6\n");
                return 2;
            }
        } else if (arg == "--file") {
            opt.file = value();
        } else if (arg == "--routes") {
            if (!parse_size(arg, value(), opt.routes)) return 2;
            opt.routes_set = true;
        } else if (arg == "--seed") {
            std::size_t s = 0;
            if (!parse_size(arg, value(), s)) return 2;
            opt.seed = s;
        } else if (arg == "--updates") {
            if (!parse_size(arg, value(), opt.updates)) return 2;
        } else if (arg == "--audit-every") {
            if (!parse_size(arg, value(), opt.audit_every)) return 2;
        } else if (arg == "--direct-bits") {
            std::size_t s = 0;
            if (!parse_size(arg, value(), s)) return 2;
            // The direct table has 2^s four-byte slots; past 24 bits (64 MiB)
            // a typo would try to allocate the machine away.
            if (s > 24) {
                std::fprintf(stderr, "poptrie_fsck: --direct-bits must be 0..24\n");
                return 2;
            }
            opt.cfg.direct_bits = static_cast<unsigned>(s);
        } else if (arg == "--basic") {
            opt.cfg.leaf_compression = false;
        } else if (arg == "--no-aggregate") {
            opt.cfg.route_aggregation = false;
        } else if (arg == "--probes") {
            if (!parse_size(arg, value(), opt.probes)) return 2;
        } else if (arg == "--compact") {
            opt.compact = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--inject-fault") {
            opt.inject_fault = value();
        } else if (arg == "--save-image") {
            opt.save_image = value();
        } else if (arg == "--verify-image") {
            verify_image_path = value();
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "poptrie_fsck: unknown option %s\n", arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (!verify_image_path.empty()) return verify_image(verify_image_path, opt);

    try {
        if (opt.family == 4) {
            rib::RouteList<netbase::Ipv4Addr> routes;
            if (!opt.file.empty()) {
                routes = workload::load_table4_file(opt.file);
            } else {
                workload::TableGenConfig gen;
                gen.seed = opt.seed;
                gen.target_routes = opt.routes_set ? opt.routes : 100'000;
                routes = workload::generate_table(gen);
            }
            return fsck(routes, opt);
        }
        rib::RouteList<netbase::Ipv6Addr> routes;
        if (!opt.file.empty()) {
            routes = workload::load_table6_file(opt.file);
        } else {
            workload::TableGen6Config gen;
            gen.seed = opt.seed;
            if (opt.routes_set) gen.target_routes = opt.routes;
            routes = workload::generate_table6(gen);
        }
        return fsck(routes, opt);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "poptrie_fsck: %s\n", e.what());
        return 2;
    }
}
