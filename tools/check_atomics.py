#!/usr/bin/env python3
"""check_atomics.py -- memory-order lint for the poptrie source tree.

The concurrency contract (poptrie.hpp, DESIGN.md par. 3.5) funnels every
reader/writer interaction through the helpers in src/sync: psync::load_acquire,
psync::load_relaxed, psync::store_release and the EbrDomain. PR 1 established
the rule informally; this script enforces it mechanically:

  rule 1 (placement): outside src/sync, no source file may touch the raw
      atomics vocabulary -- std::atomic, std::atomic_ref, std::memory_order,
      std::atomic_thread_fence, or the __atomic_* builtins. Shared-state
      fields are only accessed through the src/sync helpers, so a grep-level
      appearance of the raw vocabulary elsewhere is a contract leak.

  rule 2 (justification): every explicit std::memory_order_* argument (they
      all live in src/sync after rule 1) must carry an adjacent `// order:`
      comment -- same line or one of the two lines above -- explaining why
      that ordering is sufficient. An unjustified ordering argument is where
      the next relaxation bug comes from.

  rule 3 (capability tag): the justification window must also name WHICH
      protocol the ordering serves, with a `[cap:<tag>]` tag drawn from the
      fixed vocabulary below (the same capability names the thread-safety
      annotations in src/sync/annotations.hpp use). "relaxed is fine" means
      nothing without saying which handshake tolerates it; the tag makes the
      justification greppable per protocol and lets check_concurrency.py
      cross-reference orderings against the capability they implement.

Escape hatch: a line (or the line directly above it) containing
`check-atomics: allow` suppresses rule 1 for that line, for the rare
legitimate raw atomic outside src/sync (none exist today). Rule 2 has no
escape hatch on purpose: writing the justification IS the requirement.

Comments and string/char literals are stripped before matching, so prose
about atomics (this repo has plenty) never trips the lint.

Exit codes: 0 clean, 1 violations found, 2 usage error.
Usage: check_atomics.py [--order-context N] [--self-test] ROOT...
       ROOT is a source directory (normally <repo>/src); the sync exemption
       applies to any file whose path relative to a ROOT starts with "sync".
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lintkit  # noqa: E402

# Re-exported for the other linters (check_concurrency.py historically
# imported these from here; the canonical home is now tools/lintkit.py).
SOURCE_SUFFIXES = lintkit.SOURCE_SUFFIXES
split_code_and_comment = lintkit.split_code_and_comment

RAW_ATOMIC_RE = re.compile(
    r"\bstd\s*::\s*atomic\b"
    r"|\bstd\s*::\s*atomic_ref\b"
    r"|\bstd\s*::\s*memory_order\w*"
    r"|\bstd\s*::\s*atomic_thread_fence\b"
    r"|\bstd\s*::\s*atomic_signal_fence\b"
    r"|\b__atomic_\w+"
)
ORDER_ARG_RE = re.compile(r"\bstd\s*::\s*memory_order_\w+")
# Matches inside extracted comment text (the // or /* marker is stripped).
ORDER_COMMENT_RE = re.compile(r"\border:")
ALLOW_RE = re.compile(r"check-atomics:\s*allow")

# The protocols an ordering may serve; one per capability/handshake in
# src/sync. Adding an atomic for a NEW protocol means adding its tag here --
# deliberately a code-reviewed step. check_concurrency.py imports this.
CAP_TAGS = frozenset({"ebr", "fib", "stats", "stop-flag", "pause-gate", "ring"})
CAP_TAG_RE = re.compile(r"\[cap:([a-z-]+)\]")


def check_file(path, rel, order_context, violations):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        violations.append((path, 0, f"unreadable: {e}"))
        return
    code, comments = split_code_and_comment(lines)
    parts = rel.split(os.sep)
    in_sync = len(parts) >= 1 and parts[0] == "sync"

    for idx, code_line in enumerate(code):
        lineno = idx + 1
        if not in_sync and RAW_ATOMIC_RE.search(code_line):
            window = comments[max(0, idx - 1) : idx + 1] + [code_line]
            if not any(ALLOW_RE.search(c) for c in window):
                violations.append(
                    (
                        path,
                        lineno,
                        "raw atomic vocabulary outside src/sync "
                        f"({RAW_ATOMIC_RE.search(code_line).group(0)}); "
                        "use the psync helpers (src/sync/atomic_utils.hpp) or add "
                        "'// check-atomics: allow' with a reason",
                    )
                )
        if ORDER_ARG_RE.search(code_line):
            lo = max(0, idx - order_context)
            window = comments[lo : idx + 1]
            if not any(ORDER_COMMENT_RE.search(c) for c in window):
                violations.append(
                    (
                        path,
                        lineno,
                        f"{ORDER_ARG_RE.search(code_line).group(0)} without an adjacent "
                        "'// order:' justification comment (same line or the "
                        f"{order_context} lines above)",
                    )
                )
            else:
                tags = [t for c in window for t in CAP_TAG_RE.findall(c)]
                known = ", ".join(sorted(CAP_TAGS))
                if not tags:
                    violations.append(
                        (
                            path,
                            lineno,
                            "'// order:' justification does not name its protocol; "
                            f"add a [cap:<tag>] tag (one of: {known})",
                        )
                    )
                for tag in tags:
                    if tag not in CAP_TAGS:
                        violations.append(
                            (
                                path,
                                lineno,
                                f"unknown capability tag [cap:{tag}] "
                                f"(known: {known}; new protocols add their tag "
                                "to CAP_TAGS in tools/check_atomics.py)",
                            )
                        )


def scan(roots, order_context):
    violations = []
    seen_any = False
    for root in roots:
        if not os.path.isdir(root):
            print(f"check_atomics: not a directory: {root}", file=sys.stderr)
            return None
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_SUFFIXES):
                    continue
                seen_any = True
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                check_file(path, rel, order_context, violations)
    if not seen_any:
        print("check_atomics: no source files found under the given roots", file=sys.stderr)
        return None
    return violations


def self_test():
    """Proves the lint fails on synthetic violations and passes clean code."""
    clean_sync = (
        "#include <atomic>\n"
        "std::atomic<int> x{0};\n"
        "// order: release [cap:fib] publishes the fully built node array\n"
        "void pub() { x.store(1, std::memory_order_release); }\n"
    )
    clean_outside = "int plain = 0;\nint get() { return plain; }\n"
    prose_outside = (
        "// std::atomic_ref is only mentioned in prose here, which is fine.\n"
        'const char* s = "std::memory_order_relaxed in a string literal";\n'
    )
    bad_outside = "#include <atomic>\nstd::atomic<int> leak{0};\n"
    bad_order = "#include <atomic>\nstd::atomic<int> y{0};\n" "int g() { return y.load(std::memory_order_acquire); }\n"
    allowed_outside = (
        "// check-atomics: allow -- self-test fixture for the escape hatch\n"
        "unsigned v = __atomic_load_n(&v, 0);\n"
    )
    untagged_order = (
        "#include <atomic>\n"
        "std::atomic<int> z{0};\n"
        "// order: release publishes the node array (which protocol, though?)\n"
        "void pub() { z.store(1, std::memory_order_release); }\n"
    )
    unknown_tag = (
        "#include <atomic>\n"
        "std::atomic<int> w{0};\n"
        "// order: release [cap:frobnicator] publishes the node array\n"
        "void pub() { w.store(1, std::memory_order_release); }\n"
    )

    runner = lintkit.CorpusRunner(lambda tmp: scan([tmp], order_context=2))
    expect = runner.expect

    expect(
        "clean tree",
        {
            "sync/atomic_utils.hpp": clean_sync,
            "poptrie/poptrie.cpp": clean_outside,
            "rib/radix.cpp": prose_outside,
        },
        0,
    )
    expect("raw atomic outside sync", {"poptrie/poptrie.cpp": bad_outside}, 1)
    expect(
        "memory_order without justification in sync",
        {"sync/ebr.cpp": bad_order},
        1,
    )
    # Outside sync, an unjustified order argument is both a placement leak
    # and a missing justification: two findings on one line.
    expect("unjustified order outside sync", {"poptrie/updater.ipp": bad_order}, 3)
    expect("escape hatch honored", {"workload/datasets.cpp": allowed_outside}, 0)
    expect("order comment without a [cap:] tag", {"sync/ebr.cpp": untagged_order}, 1)
    expect("unknown [cap:] tag", {"sync/ebr.cpp": unknown_tag}, 1)

    return runner.finish("check_atomics")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__, add_help=True)
    parser.add_argument("roots", nargs="*", help="source roots to scan (e.g. src)")
    parser.add_argument(
        "--order-context",
        type=int,
        default=2,
        metavar="N",
        help="how many preceding lines may hold the '// order:' comment (default 2)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in fixture scenarios instead of scanning",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as e:
        return 0 if e.code == 0 else 2
    if args.self_test:
        return self_test()
    if not args.roots:
        parser.print_usage(sys.stderr)
        return 2
    return lintkit.report(scan(args.roots, args.order_context), "check_atomics")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
