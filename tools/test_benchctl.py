#!/usr/bin/env python3
"""Unit tests for tools/benchctl: stats helpers, the per-metric gate table,
table-driven compare verdicts, and end-to-end exit codes via main().

Run directly (python3 tools/test_benchctl.py) or through ctest
(benchctl_unit). No build tree required — everything here is pure-Python
except the baseline sanity test, which only reads bench/baselines/.
"""

import contextlib
import copy
import importlib.machinery
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_DIR = os.path.dirname(TOOLS_DIR)


def _load_benchctl():
    loader = importlib.machinery.SourceFileLoader(
        "benchctl", os.path.join(TOOLS_DIR, "benchctl")
    )
    spec = importlib.util.spec_from_loader("benchctl", loader)
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    return module


benchctl = _load_benchctl()

ENV = {
    "cpu_model": "TestCPU v1",
    "cores": 4,
    "git_sha": "abc123",
    "build_type": "Release",
}


def run_doc(metrics):
    """A minimal schema-valid run document around {name: (median, mad)}."""
    return {
        "schema": benchctl.SCHEMA,
        "tool": "benchctl",
        "repeats": 3,
        "environment": dict(ENV),
        "metrics": {
            name: {
                "median": m,
                "mad": d,
                "unit": benchctl.rule_for(name)["unit"],
                "direction": benchctl.rule_for(name)["direction"],
                "samples": [m - d, m, m + d],
            }
            for name, (m, d) in metrics.items()
        },
    }


class StatsTest(unittest.TestCase):
    def test_median_odd(self):
        self.assertEqual(benchctl.median([3.0, 1.0, 2.0]), 2.0)

    def test_median_even(self):
        self.assertEqual(benchctl.median([4.0, 1.0, 3.0, 2.0]), 2.5)

    def test_median_single_and_empty(self):
        self.assertEqual(benchctl.median([7.0]), 7.0)
        self.assertEqual(benchctl.median([]), 0.0)

    def test_mad_symmetric(self):
        # median 3, |dev| = [2, 1, 0, 1, 2] -> MAD 1
        self.assertEqual(benchctl.mad([1.0, 2.0, 3.0, 4.0, 5.0]), 1.0)

    def test_mad_outlier_robust(self):
        # One wild outlier must not blow up the dispersion estimate — this is
        # why the gate uses MAD and not stddev.
        self.assertEqual(benchctl.mad([10.0, 10.0, 10.0, 10.0, 1000.0]), 0.0)

    def test_mad_empty(self):
        self.assertEqual(benchctl.mad([]), 0.0)


class RuleTest(unittest.TestCase):
    def test_latency_metrics_are_informational(self):
        rule = benchctl.rule_for("dataplane.poptrie.w1.lat_p99_ns")
        self.assertIsNone(rule["band"])

    def test_dataplane_mlps_wide_band_higher_better(self):
        rule = benchctl.rule_for("dataplane.poptrie.w4.churn.mlps")
        self.assertEqual(rule["direction"], "higher")
        self.assertGreater(rule["band"], benchctl.DEFAULT_BAND)

    def test_cycles_lower_better(self):
        rule = benchctl.rule_for("table4.realtier1a.poptrie18.mean_cycles")
        self.assertEqual(rule["direction"], "lower")

    def test_unknown_metric_gets_default_band(self):
        self.assertEqual(benchctl.rule_for("mystery.metric")["band"],
                         benchctl.DEFAULT_BAND)


class CompareMetricTest(unittest.TestCase):
    """Table-driven verdicts for one metric at a time."""

    CASES = [
        # (name, base(median, mad), cand(median, mad), expected verdict)
        # lower-better ns metric, 10% band: +5% is within noise.
        ("micro.xorshift_ns", (100.0, 1.0), (105.0, 1.0), "ok"),
        # +20% on a 10% band: regression.
        ("micro.xorshift_ns", (100.0, 1.0), (120.0, 1.0), "regression"),
        # -20%: improvement.
        ("micro.xorshift_ns", (100.0, 1.0), (80.0, 1.0), "improvement"),
        # higher-better Mlps, 12% band: dropping 50 -> 40 is a regression.
        ("batch.lanes8.mlps", (50.0, 0.5), (40.0, 0.5), "regression"),
        # Mlps going UP is an improvement, not a regression (direction).
        ("batch.lanes8.mlps", (50.0, 0.5), (60.0, 0.5), "improvement"),
        # Noisy baseline: MAD 10/100 -> 3xMAD = 30% band swallows a +20% delta.
        ("micro.xorshift_ns", (100.0, 10.0), (120.0, 1.0), "ok"),
        # Latency metrics report but never gate.
        ("dataplane.poptrie.w1.lat_p99_ns", (5000.0, 10.0), (9000.0, 10.0), "info"),
    ]

    def test_verdict_table(self):
        for name, (bm, bd), (cm, cd), expected in self.CASES:
            with self.subTest(name=name, base=bm, cand=cm):
                verdict, _, _ = benchctl.compare_metric(
                    name,
                    {"median": bm, "mad": bd},
                    {"median": cm, "mad": cd},
                )
                self.assertEqual(verdict, expected)

    def test_missing_candidate_metric(self):
        verdict, _, _ = benchctl.compare_metric(
            "micro.xorshift_ns", {"median": 100.0, "mad": 1.0}, None
        )
        self.assertEqual(verdict, "missing")

    def test_missing_informational_metric_is_info(self):
        verdict, _, _ = benchctl.compare_metric(
            "dataplane.poptrie.w1.lat_p50_ns", {"median": 100.0, "mad": 1.0}, None
        )
        self.assertEqual(verdict, "info")

    def test_inject_regression_flips_clean_compare(self):
        base = {"median": 100.0, "mad": 1.0}
        verdict, _, _ = benchctl.compare_metric(
            "micro.xorshift_ns", base, dict(base), inject=2.0
        )
        self.assertEqual(verdict, "regression")
        # And on a higher-better metric the injection divides instead.
        verdict, _, _ = benchctl.compare_metric(
            "batch.lanes8.mlps", {"median": 50.0, "mad": 0.1},
            {"median": 50.0, "mad": 0.1}, inject=2.0
        )
        self.assertEqual(verdict, "regression")


class CompareRunsTest(unittest.TestCase):
    BASE = {
        "micro.xorshift_ns": (100.0, 1.0),
        "batch.lanes8.mlps": (50.0, 0.5),
    }

    def _compare(self, candidate, **kwargs):
        out = io.StringIO()
        code = benchctl.compare_runs(
            run_doc(self.BASE), candidate, out=out, **kwargs
        )
        return code, out.getvalue()

    def test_identical_runs_pass(self):
        code, text = self._compare(run_doc(self.BASE))
        self.assertEqual(code, 0)
        self.assertIn("PASS", text)

    def test_regression_fails_and_names_the_metric(self):
        worse = dict(self.BASE, **{"micro.xorshift_ns": (150.0, 1.0)})
        code, text = self._compare(run_doc(worse))
        self.assertEqual(code, 1)
        self.assertIn("FAIL", text)
        self.assertIn("micro.xorshift_ns", text)

    def test_missing_gated_metric_fails(self):
        partial = run_doc({"micro.xorshift_ns": (100.0, 1.0)})
        code, text = self._compare(partial)
        self.assertEqual(code, 1)
        self.assertIn("missing gated metrics", text)
        self.assertIn("batch.lanes8.mlps", text)

    def test_env_mismatch_demotes_to_informational(self):
        worse = run_doc(dict(self.BASE, **{"micro.xorshift_ns": (150.0, 1.0)}))
        worse["environment"]["cpu_model"] = "OtherCPU v9"
        code, text = self._compare(worse)
        self.assertEqual(code, 0)
        self.assertIn("WARNING: environment fingerprints differ", text)

    def test_env_mismatch_with_strict_env_still_gates(self):
        worse = run_doc(dict(self.BASE, **{"micro.xorshift_ns": (150.0, 1.0)}))
        worse["environment"]["cpu_model"] = "OtherCPU v9"
        code, _ = self._compare(worse, strict_env=True)
        self.assertEqual(code, 1)

    def test_inject_regression_fails_a_self_compare(self):
        code, text = self._compare(run_doc(self.BASE), inject=2.0)
        self.assertEqual(code, 1)
        self.assertIn("SELF-TEST", text)

    def test_new_candidate_metrics_are_reported_not_gated(self):
        extra = run_doc(dict(self.BASE, **{"table4.x.y.mean_cycles": (10.0, 0.1)}))
        code, text = self._compare(extra)
        self.assertEqual(code, 0)
        self.assertIn("new metrics", text)


class MainExitCodeTest(unittest.TestCase):
    """End-to-end through main(): the exit codes CI scripts rely on."""

    def _write(self, doc):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, dir=self.tmp.name
        )
        json.dump(doc, f)
        f.close()
        return f.name

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def _main(self, argv):
        with contextlib.redirect_stdout(io.StringIO()), contextlib.redirect_stderr(
            io.StringIO()
        ):
            return benchctl.main(argv)

    def test_clean_compare_exits_zero(self):
        path = self._write(run_doc({"micro.xorshift_ns": (100.0, 1.0)}))
        self.assertEqual(self._main(["compare", path, path]), 0)

    def test_injected_regression_exits_one(self):
        path = self._write(run_doc({"micro.xorshift_ns": (100.0, 1.0)}))
        self.assertEqual(
            self._main(["compare", path, path, "--inject-regression", "2.0"]), 1
        )

    def test_schema_mismatch_exits_two(self):
        good = self._write(run_doc({"micro.xorshift_ns": (100.0, 1.0)}))
        doc = run_doc({"micro.xorshift_ns": (100.0, 1.0)})
        doc["schema"] = "poptrie-bench/999"
        bad = self._write(doc)
        self.assertEqual(self._main(["compare", good, bad]), 2)

    def test_unreadable_file_exits_two(self):
        good = self._write(run_doc({}))
        missing = os.path.join(self.tmp.name, "nope.json")
        self.assertEqual(self._main(["compare", good, missing]), 2)

    def test_bad_inject_factor_exits_two(self):
        path = self._write(run_doc({"micro.xorshift_ns": (100.0, 1.0)}))
        self.assertEqual(
            self._main(["compare", path, path, "--inject-regression", "-1"]), 2
        )

    def test_list_exits_zero(self):
        self.assertEqual(self._main(["list"]), 0)


class CommittedBaselineTest(unittest.TestCase):
    """The baseline CI gates against must stay schema-valid and self-consistent."""

    BASELINE = os.path.join(REPO_DIR, "bench", "baselines", "ci-ubuntu.json")

    def test_baseline_loads_and_self_compares_clean(self):
        if not os.path.exists(self.BASELINE):
            self.skipTest("no committed baseline yet")
        doc = benchctl.load_run(self.BASELINE)
        self.assertTrue(doc["metrics"], "baseline has no metrics")
        for name, rec in doc["metrics"].items():
            self.assertGreaterEqual(rec["mad"], 0.0, name)
            self.assertEqual(len(rec["samples"]), doc["repeats"], name)
        out = io.StringIO()
        self.assertEqual(
            benchctl.compare_runs(doc, copy.deepcopy(doc), out=out), 0
        )
        self.assertEqual(
            benchctl.compare_runs(doc, copy.deepcopy(doc), inject=2.0, out=out), 1
        )

    def test_baseline_covers_every_gated_family(self):
        if not os.path.exists(self.BASELINE):
            self.skipTest("no committed baseline yet")
        doc = benchctl.load_run(self.BASELINE)
        for family in (
            "micro.",
            "table4.",
            "batch.",
            "dataplane.",
            "update.",
            "churnloc.",
        ):
            self.assertTrue(
                any(name.startswith(family) for name in doc["metrics"]),
                f"baseline is missing the {family}* metric family",
            )


if __name__ == "__main__":
    unittest.main(verbosity=2)
