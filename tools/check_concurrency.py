#!/usr/bin/env python3
"""check_concurrency.py -- EBR/quiescence protocol lint for the poptrie tree.

Clang's thread-safety analysis (the POPTRIE_TSA build) checks everything a
capability annotation can express: lookup_batch REQUIRES the shared EBR
capability, compact() REQUIRES quiescence, GUARDED_BY fields need their
mutex. This linter checks the protocol shapes the analysis structurally
cannot see -- cross-function, cross-thread and by-convention rules:

  R1 (guard dominance): in src/dataplane, every `x.lookup_batch(...)` /
      `x.lookup_raw(...)` call -- and every call into the lane-dispatched
      batch entry points, `lanes::run*(...)` and
      `lookup_batch_pipelined(...)` -- must be lexically dominated by a
      live read-side claim: an engine reader `::Guard`, a psync capability
      section, or an enclosing function annotated
      POPTRIE_REQUIRES[_SHARED](...ebr...). The analysis enforces this only
      where the callee's type is visible; the lexical rule also covers
      template-erased engines (a dependent `decltype(reader)::Guard` is
      opaque to the analysis until instantiation, and instantiations of an
      unannotated baseline engine never check it at all).

  R2 (retire containment): EbrDomain::retire() is single-writer limbo-list
      machinery. Member calls `x.retire(...)` / `x->retire(...)` may appear
      only in the incremental updater, the compactor, and src/sync/ebr.*
      itself; anywhere else under src/ is a reclamation-protocol leak.
      (Tests exercise retire() directly by design, so R2 scopes to src/.)

  R3 (StopFlag rearm): `flag.reset()` on a variable declared psync::StopFlag
      must sit in a proven no-poller window -- a join(...) call or a
      QuiescentSection claim within the preceding lines. Only identifiers
      declared as StopFlag in the same file are checked, so unique_ptr::reset
      and friends never trip the rule.

  R4 (PauseGate encapsulation): the pause/park generation-counter handshake
      is correct only as a whole; any `.pause_` / `.parks_` member access
      outside src/sync/counters.hpp bypasses the protocol and is flagged.

  R5 (claim justification): constructing a psync capability section
      (EbrReadSection / EbrWriterSection / QuiescentSection) outside
      src/sync asserts a cross-thread fact the compiler cannot verify.
      Each construction must carry an adjacent comment naming the protocol
      that makes it true -- `// reader:` / `// writer:` / `// quiescent:`
      respectively (same line or one of the lines directly above).

Escape hatch: `check-concurrency: allow` on the line or the line directly
above suppresses all rules for that line. Use it with a reason; today's only
tree use is the LpmEngine concept's requires-expression, which spells a
lookup_batch call that is never executed.

Purely lexical: comments and string/char literals are stripped first (via
lintkit.split_code_and_comment), then the rules run over code text
with a brace-depth scope tracker. No compiler or clang python bindings
needed, so the lint runs in every environment the tests do.

Exit codes: 0 clean, 1 violations found, 2 usage error.
Usage: check_concurrency.py [--source-root DIR] [--self-test]
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lintkit import CorpusRunner, report, split_code_and_comment, walk_sources  # noqa: E402

# Directories (relative to the source root) the tree scan covers. src must
# exist; the others are scanned when present.
SCAN_DIRS = ("src", "tests", "bench", "tools", "examples", "fuzz")

ALLOW_RE = re.compile(r"check-concurrency:\s*allow")

# R1 -----------------------------------------------------------------------
# Member batch lookups, plus the free-function batch entry points the
# pipelined/SIMD engine reaches (poptrie/lanes.hpp): lanes::run and the
# per-path kernels, and the interleaved walk itself. A view read outside a
# claim races pool reclamation exactly like a member lookup would.
LOOKUP_CALL_RE = re.compile(
    r"(?:\.|->)\s*(?:lookup_batch|lookup_raw)\b"
    r"|\blanes\s*::\s*run(?:_scalar|_pipelined|_avx2|_avx512)?\s*\("
    r"|\blookup_batch_pipelined\s*[<(]"
)
# A live read-side claim: an engine/EBR reader guard object, or any psync
# capability section (writer and quiescent imply read access).
GUARD_RE = re.compile(r"::Guard\s+\w+|\bEbrReadSection\b|\bEbrWriterSection\b|\bQuiescentSection\b")
# A function-level claim: REQUIRES or REQUIRES_SHARED naming the EBR cap.
REQUIRES_EBR_RE = re.compile(r"POPTRIE_REQUIRES(?:_SHARED)?\s*\([^)]*ebr")

# R2 -----------------------------------------------------------------------
RETIRE_CALL_RE = re.compile(r"(?:\.|->)\s*retire\s*\(")
RETIRE_ALLOWED = {
    os.path.join("src", "poptrie", "updater.ipp"),
    os.path.join("src", "poptrie", "compactor.ipp"),
    os.path.join("src", "sync", "ebr.hpp"),
    os.path.join("src", "sync", "ebr.cpp"),
}

# R3 -----------------------------------------------------------------------
STOPFLAG_DECL_RE = re.compile(r"\bStopFlag\s+(\w+)\s*[;{=]")
RESET_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*reset\s*\(")
JOIN_RE = re.compile(r"\bjoin\s*\(|\bstop_and_join\s*\(")
R3_WINDOW = 10  # lines of lookback for the join / quiescence evidence

# R4 -----------------------------------------------------------------------
GATE_FIELD_RE = re.compile(r"(?:\.|->)\s*(?:pause_|parks_)(?!\w)")
GATE_HOME = os.path.join("src", "sync", "counters.hpp")

# R5 -----------------------------------------------------------------------
SECTION_MARKERS = {
    "EbrReadSection": "reader:",
    "EbrWriterSection": "writer:",
    "QuiescentSection": "quiescent:",
}
SECTION_RE = re.compile(r"\b(EbrReadSection|EbrWriterSection|QuiescentSection)\b")
R5_WINDOW = 6  # justification comments may span a few lines above the claim


def is_under(rel, *parts):
    prefix = os.path.join(*parts)
    return rel == prefix or rel.startswith(prefix + os.sep)


def check_file(path, rel, violations):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        violations.append((path, 0, f"unreadable: {e}"))
        return
    code, comments = split_code_and_comment(lines)

    # Pass 1: names declared as StopFlag anywhere in the file (members are
    # routinely declared below their first use, so this cannot be inline).
    stopflag_names = set()
    for code_line in code:
        for m in STOPFLAG_DECL_RE.finditer(code_line):
            stopflag_names.add(m.group(1))

    in_sync = is_under(rel, "src", "sync")
    in_dataplane = is_under(rel, "src", "dataplane")
    in_src = is_under(rel, "src")

    # Brace-depth scope tracking for R1: guards live while the block they
    # were constructed in stays open.
    depth = 0
    guard_depths = []  # brace depth each live claim was made at
    pending_requires = False

    for idx, code_line in enumerate(code):
        lineno = idx + 1
        allowed = any(ALLOW_RE.search(c) for c in comments[max(0, idx - 1) : idx + 1])

        # -- scope tracking (R1) ------------------------------------------
        if GUARD_RE.search(code_line):
            guard_depths.append(depth)
        if REQUIRES_EBR_RE.search(code_line):
            pending_requires = True
        if pending_requires:
            if "{" in code_line:
                # The annotated function's body opens here; the claim covers
                # exactly that body.
                guard_depths.append(depth + 1)
                pending_requires = False
            elif ";" in code_line:
                pending_requires = False  # declaration without a body

        # -- R1: lookups dominated by a read-side claim -------------------
        if in_dataplane and LOOKUP_CALL_RE.search(code_line) and not allowed:
            if not guard_depths:
                violations.append(
                    (
                        path,
                        lineno,
                        "[R1] lookup call without a dominating read-side claim "
                        "(construct a reader ::Guard / psync section in an "
                        "enclosing scope, or annotate the enclosing function "
                        "POPTRIE_REQUIRES_SHARED(psync::cap::ebr))",
                    )
                )

        # -- R2: retire() containment -------------------------------------
        if (
            in_src
            and rel not in RETIRE_ALLOWED
            and RETIRE_CALL_RE.search(code_line)
            and not allowed
        ):
            violations.append(
                (
                    path,
                    lineno,
                    "[R2] retire() outside the update/compact paths "
                    "(allowed: src/poptrie/updater.ipp, "
                    "src/poptrie/compactor.ipp, src/sync/ebr.*) -- retirement "
                    "is single-writer machinery; route reclamation through "
                    "the updater or compactor",
                )
            )

        # -- R3: StopFlag rearm only in a no-poller window -----------------
        if stopflag_names and not allowed:
            for m in RESET_CALL_RE.finditer(code_line):
                if m.group(1) not in stopflag_names:
                    continue
                lo = max(0, idx - R3_WINDOW)
                window_code = code[lo : idx + 1]
                window_comments = comments[lo : idx + 1]
                evidence = any(
                    JOIN_RE.search(c) or "QuiescentSection" in c for c in window_code
                ) or any("quiescent:" in c for c in window_comments)
                if not evidence:
                    violations.append(
                        (
                            path,
                            lineno,
                            f"[R3] StopFlag '{m.group(1)}.reset()' without a "
                            "join()/QuiescentSection in the preceding "
                            f"{R3_WINDOW} lines -- rearming while a poller "
                            "still runs loses the shutdown signal",
                        )
                    )

        # -- R4: PauseGate handshake fields are private protocol ----------
        if rel != GATE_HOME and GATE_FIELD_RE.search(code_line) and not allowed:
            violations.append(
                (
                    path,
                    lineno,
                    "[R4] direct access to a PauseGate handshake field "
                    "(.pause_/.parks_) outside src/sync/counters.hpp -- use "
                    "request_pause()/parked_since()/resume()/enter_park(), "
                    "the generation-counter protocol is correct only whole",
                )
            )

        # -- R5: capability claims carry their justification --------------
        if not in_sync and not allowed:
            for m in SECTION_RE.finditer(code_line):
                marker = SECTION_MARKERS[m.group(1)]
                lo = max(0, idx - R5_WINDOW)
                if not any(marker in c for c in comments[lo : idx + 1]):
                    violations.append(
                        (
                            path,
                            lineno,
                            f"[R5] {m.group(1)} claim without an adjacent "
                            f"'// {marker}' justification comment (same line "
                            f"or the {R5_WINDOW} lines above) naming the "
                            "protocol that makes the claim true",
                        )
                    )

        # -- advance scope state ------------------------------------------
        depth += code_line.count("{") - code_line.count("}")
        while guard_depths and depth < guard_depths[-1]:
            guard_depths.pop()


def scan(source_root):
    if not os.path.isdir(os.path.join(source_root, "src")):
        print(
            f"check_concurrency: no src/ under source root: {source_root}",
            file=sys.stderr,
        )
        return None
    violations = []
    for path, rel in walk_sources(source_root, SCAN_DIRS):
        check_file(path, rel, violations)
    return violations


def self_test():
    """Known-bad corpus: every fixture violation must be flagged (and the
    clean twins must stay clean) or the linter itself is broken."""
    runner = CorpusRunner(scan)
    expect = runner.expect

    anchor = {"src/poptrie/poptrie.hpp": "struct Poptrie {};\n"}

    # R1: a naked lookup in the dataplane, then its three legal forms.
    bad_r1 = (
        "void worker(Engine& e, const unsigned* k, int* out) {\n"
        "    e.lookup_batch(k, out, 64);\n"
        "}\n"
    )
    guarded_r1 = (
        "void worker(Reader& r, Engine& e, const unsigned* k, int* out) {\n"
        "    const typename Reader::Guard guard{r};\n"
        "    e.lookup_batch(k, out, 64);\n"
        "}\n"
    )
    annotated_r1 = (
        "void serve(const unsigned* k, int* out) const noexcept\n"
        "    POPTRIE_REQUIRES_SHARED(psync::cap::ebr)\n"
        "{\n"
        "    fib().lookup_batch(k, out, 64);\n"
        "}\n"
    )
    scope_ended_r1 = (
        "void worker(Reader& r, Engine& e, const unsigned* k, int* out) {\n"
        "    {\n"
        "        const typename Reader::Guard guard{r};\n"
        "    }\n"
        "    e.lookup_batch(k, out, 64);\n"
        "}\n"
    )
    allowed_r1 = (
        "// check-concurrency: allow -- concept requires-expression\n"
        "{ ce.lookup_batch(keys, out, n) } noexcept;\n"
    )
    # The lane-dispatched free-function entry points need the same claim:
    # a naked lanes::run in an engine races reclamation exactly like a
    # member lookup_batch would.
    bad_lanes = (
        "void serve(const unsigned* k, int* out, unsigned long n) {\n"
        "    poptrie::lanes::run(path_, view_, k, out, n);\n"
        "}\n"
    )
    annotated_lanes = (
        "void serve(const unsigned* k, int* out, unsigned long n) const noexcept\n"
        "    POPTRIE_REQUIRES_SHARED(psync::cap::ebr)\n"
        "{\n"
        "    poptrie::lanes::run(path_, view_, k, out, n);\n"
        "}\n"
    )
    bad_pipelined = (
        "void drain(const View& v, const unsigned* k, int* out, unsigned long n) {\n"
        "    batch::lookup_batch_pipelined<true, 8>(v, k, out, n, 18);\n"
        "}\n"
    )
    expect("R1 naked lookup flagged", {**anchor, "src/dataplane/w.hpp": bad_r1}, 1)
    expect("R1 guard dominates", {**anchor, "src/dataplane/w.hpp": guarded_r1}, 0)
    expect("R1 REQUIRES dominates", {**anchor, "src/dataplane/w.hpp": annotated_r1}, 0)
    expect("R1 closed scope is dead", {**anchor, "src/dataplane/w.hpp": scope_ended_r1}, 1)
    expect("R1 escape hatch", {**anchor, "src/dataplane/w.hpp": allowed_r1}, 0)
    expect("R1 naked lanes::run flagged", {**anchor, "src/dataplane/pe.hpp": bad_lanes}, 1)
    expect("R1 annotated lanes::run", {**anchor, "src/dataplane/pe.hpp": annotated_lanes}, 0)
    expect(
        "R1 naked pipelined walk flagged",
        {**anchor, "src/dataplane/pe.hpp": bad_pipelined},
        1,
    )

    # R2: retirement outside the sanctioned paths (the fixture text is fine
    # inside updater.ipp, a leak from router code).
    retire_code = "void f(psync::EbrDomain& d) { d.retire([] {}); }\n"
    expect("R2 leak flagged", {**anchor, "src/router/router.cpp": retire_code}, 1)
    expect("R2 updater allowed", {**anchor, "src/poptrie/updater.ipp": retire_code}, 0)
    expect("R2 tests out of scope", {**anchor, "tests/test_ebr.cpp": retire_code}, 0)

    # R3: rearm without evidence vs. after a join; unique_ptr::reset exempt.
    bad_r3 = (
        "struct Dp {\n"
        "    void stop() {\n"
        "        stop_.reset();\n"
        "    }\n"
        "    psync::StopFlag stop_;\n"
        "};\n"
    )
    good_r3 = (
        "struct Dp {\n"
        "    void stop() {\n"
        "        pool_->join();\n"
        "        stop_.reset();\n"
        "    }\n"
        "    psync::StopFlag stop_;\n"
        "};\n"
    )
    uptr_r3 = "void g(std::unique_ptr<int>& p) { p.reset(); }\n"
    expect("R3 blind rearm flagged", {**anchor, "src/dataplane/dp.hpp": bad_r3}, 1)
    expect("R3 rearm after join", {**anchor, "src/dataplane/dp.hpp": good_r3}, 0)
    expect("R3 unique_ptr exempt", {**anchor, "src/dataplane/dp.hpp": uptr_r3}, 0)

    # R4: handshake bypass vs. prose about the fields.
    bad_r4 = "bool peek(psync::PauseGate& g) { return g.pause_.load(); }\n"
    prose_r4 = "// the gate's pause_ and parks_ fields are private protocol\nint x;\n"
    expect("R4 bypass flagged", {**anchor, "src/dataplane/churn.cpp": bad_r4}, 1)
    expect("R4 prose ignored", {**anchor, "src/dataplane/churn.cpp": prose_r4}, 0)

    # R5: unjustified claim, justified claim, wrong-kind marker.
    bad_r5 = "void t() { const psync::QuiescentSection q; }\n"
    good_r5 = (
        "void t() {\n"
        "    // quiescent: single-threaded test, no reader thread exists.\n"
        "    const psync::QuiescentSection q;\n"
        "}\n"
    )
    wrong_marker_r5 = (
        "void t() {\n"
        "    // writer: wrong kind of justification for a quiescence claim.\n"
        "    const psync::QuiescentSection q;\n"
        "}\n"
    )
    expect("R5 unjustified claim flagged", {**anchor, "tests/test_x.cpp": bad_r5}, 1)
    expect("R5 justified claim", {**anchor, "tests/test_x.cpp": good_r5}, 0)
    expect("R5 wrong marker flagged", {**anchor, "tests/test_x.cpp": wrong_marker_r5}, 1)

    return runner.finish("check_concurrency")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__, add_help=True)
    parser.add_argument(
        "--source-root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        metavar="DIR",
        help="repository root to scan (default: this script's repo)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in known-bad corpus instead of scanning",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as e:
        return 0 if e.code == 0 else 2
    if args.self_test:
        return self_test()
    return report(scan(args.source_root), "check_concurrency")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
