#!/usr/bin/env python3
"""make_fuzz_seeds.py -- deterministic seed-corpus generator for fuzz/corpus.

The committed seed corpus is generated, not hand-hexed: this script encodes
structurally interesting route tables in each harness's input format (see
fuzz/common.hpp for the op encoding) so the fuzzers start from deep program
states instead of spending their budget rediscovering "insert a route".
Regenerate with:  tools/make_fuzz_seeds.py [--out fuzz/corpus]

Seeds are deterministic (no RNG, no timestamps): regenerating must produce
byte-identical files or the corpus would churn in every PR.
"""

from __future__ import annotations

import argparse
import os
import struct

# --- encoding helpers (mirror fuzz/common.hpp's ByteReader/decode_ops) ------


def u16(v):
    return struct.pack("<H", v)


def u32(v):
    return struct.pack("<I", v)


def u128(v):
    # ByteReader::u128v reads hi u64 first, then lo.
    return struct.pack("<Q", (v >> 64) & (2**64 - 1)) + struct.pack("<Q", v & (2**64 - 1))


def length_byte(length, width):
    """A byte that decode_length maps to `length` via the uniform branch."""
    for b in range(128, 256):
        if b % (width + 1) == length:
            return bytes([b])
    raise ValueError(f"unencodable length {length} for width {width}")


def v4(a, b, c, d):
    return (a << 24) | (b << 16) | (c << 8) | d


def fresh4(addr, length, hop):
    """Mode-0 (fresh) IPv4 announce op."""
    return bytes([0x00]) + u32(addr) + length_byte(length, 32) + u16(hop - 1)


def fresh6(addr, length, hop):
    return bytes([0x00]) + u128(addr) + length_byte(length, 128) + u16(hop - 1)


def withdraw4(addr, length):
    return bytes([0x10]) + u32(addr) + length_byte(length, 32)


def dup(index, hop):
    """Mode-2 announce over history[index % len(history)] with a new hop."""
    return bytes([0x02, index]) + u16(hop - 1)


def sibling(index, hop):
    return bytes([0x03, index]) + u16(hop - 1)


def child(index, branch, hop):
    return bytes([0x05 | (branch << 3), index]) + u16(hop - 1)


def parent(index, hop):
    return bytes([0x04, index]) + u16(hop - 1)


def config(direct_bits, leaf_compression=True, route_aggregation=False, leaf_dict=False):
    """A byte decode_config maps to the given Poptrie configuration."""
    choices = [0, 6, 12, 16, 17, 18]
    b = choices.index(direct_bits)
    if leaf_dict:
        b |= 0x20
    if leaf_compression:
        b |= 0x40
    if route_aggregation:
        b |= 0x80
    return bytes([b])


# --- per-harness seeds -------------------------------------------------------


def seeds_differential():
    out = {}

    # Default-route-only: the whole address space answered by one /0 —
    # exercises the "leaf at the root" shape in every structure.
    out["default_route_only"] = (
        config(16) + b"\x00" + fresh4(0, 0, 10) + u32(v4(8, 8, 8, 8)) + u32(v4(255, 255, 255, 255))
    )

    # Full /24 sweep: 128 consecutive /24s under 10.42.0.0/16 with rotating
    # hops, under direct pointing that cuts through them (direct_bits=16).
    sweep = config(16) + b"\x00"
    for i in range(128):
        sweep += fresh4(v4(10, 42, i, 0), 24, 1 + (i % 7))
    out["full_24_sweep"] = sweep

    # Nested stack around the stride boundaries: /0 through /32 along one
    # path, so every level of the trie holds a route.
    nested = config(6, leaf_compression=True, route_aggregation=True) + b"\x00"
    for length in (0, 1, 6, 8, 12, 16, 17, 18, 19, 24, 25, 30, 31, 32):
        nested += fresh4(v4(192, 168, 37, 5), length, 1 + length)
    out["nested_path_v4"] = nested

    # IPv6 sparse: a handful of routes scattered across the 128-bit space,
    # typical DFZ lengths (/32, /48, /64) plus a host route and the default.
    v6 = config(18) + b"\x01"
    v6 += fresh6(0, 0, 1)
    v6 += fresh6(0x20010DB8 << 96, 32, 2)
    v6 += fresh6((0x20010DB8 << 96) | (0xCAFE << 64), 48, 3)
    v6 += fresh6((0x20010DB8 << 96) | (0xCAFE << 64) | (0x1 << 48), 64, 4)
    v6 += fresh6((0xFE80 << 112) | 0x1, 128, 5)
    out["ipv6_sparse"] = v6

    # Sibling flood: one fresh /24 then alternating sibling/child derivations
    # packing one 64-ary node with dense leaves.
    flood = config(16) + b"\x00" + fresh4(v4(10, 0, 0, 0), 24, 1)
    for i in range(60):
        flood += sibling(i % 8, 2 + i) + child(i % 8, i & 1, 40 + i)
    out["sibling_flood"] = flood

    # Dictionary-coded leaves (config bit 0x20): a /24 sweep with few
    # distinct hops, compacted by the harness into 8-bit dict runs under
    # s=18 direct pointing, then the full probe replay over the decode path.
    dict_sweep = config(18, leaf_dict=True) + b"\x00"
    for i in range(96):
        dict_sweep += fresh4(v4(10, 50 + (i // 48), i % 48, 0), 24, 1 + (i % 5))
    out["leaf_dict_sweep"] = dict_sweep

    # IPv6 under leaf_dict: sparse DFZ-style table, compact engages the
    # dictionary on the v6 trie's leaf runs.
    dict6 = config(16, leaf_dict=True) + b"\x01"
    dict6 += fresh6(0, 0, 1)
    for i in range(24):
        dict6 += fresh6((0x20010D00 + i) << 96, 32, 1 + (i % 3))
    out["leaf_dict_ipv6"] = dict6

    return out


def seeds_update_rebuild():
    out = {}

    # Announce/withdraw churn with checkpoints every 4 ops (sel=2 -> mask 3).
    churn = config(16) + bytes([0x02])
    for i in range(24):
        churn += fresh4(v4(10, 42, i, 0), 24, 1 + i)
    for i in range(12):
        churn += withdraw4(v4(10, 42, 2 * i, 0), 24)
    out["announce_withdraw_churn"] = churn

    # Same-prefix hop modification (mode-2 dups): checkpoint after every op.
    mods = config(6) + bytes([0x00]) + fresh4(v4(172, 16, 0, 0), 12, 1)
    for i in range(16):
        mods += dup(0, 2 + i)
    out["hop_modify_storm"] = mods

    # IPv6 with sparse checkpoints (sel bit7 set, mask 15).
    v6 = config(18) + bytes([0x84])
    v6 += fresh6(0x20010DB8 << 96, 32, 1)
    for i in range(20):
        v6 += child(0, i & 1, 2 + i)
    out["ipv6_child_walk"] = v6

    return out


def seeds_parser():
    out = {
        "addr_v4": b"192.168.0.1",
        "addr_v6": b"2001:db8::cafe:1",
        "prefix_v4": b"10.0.0.0/8",
        "prefix_v6": b"2001:db8::/32",
        "table_v4": b"0.0.0.0/0 1\n10.0.0.0/8 2\n10.1.0.0/16 3\n192.0.2.0/24 4\n",
        "table_v6": b"::/0 1\n2001:db8::/32 2\n2001:db8:cafe::/48 3\n",
        # Malformed forms the parsers must reject (not crash on):
        "reject_octet_overflow": b"999.1.1.1",
        "reject_prefix_too_long": b"1.2.3.4/33",
        "reject_double_colon_twice": b"1::2::3",
        "reject_trailing_garbage": b"10.0.0.0/8x 1\n",
    }
    return out


def seeds_buddy():
    out = {}

    # Power-of-two ladder: alloc 1,2,4,...,256 then free in reverse.
    ladder = bytes([0x0A])  # capacity 2^10
    for s in range(9):
        ladder += bytes([0x00, s])  # alloc 2^s
    ladder += bytes([0x07])  # audit checkpoint
    for i in range(9):
        ladder += bytes([0x03, 8 - i])  # free newest-first
    out["pow2_ladder"] = ladder

    # Fragmentation: odd sizes (2^s +/- 1), interleaved frees, a grow.
    frag = bytes([0x06])  # capacity 2^6
    for s in range(2, 7):
        frag += bytes([0x01, 0x40 | s])  # alloc 2^s - 1
        frag += bytes([0x02, 0x80 | s])  # alloc 2^s + 1
    frag += bytes([0x03, 0x01, 0x04, 0x02, 0x06])  # free, free, grow
    for s in range(2, 5):
        frag += bytes([0x00, 0x80 | s])
    frag += bytes([0x07])
    out["fragmentation_mix"] = frag

    return out


def seeds_aggregate():
    out = {}

    # Mergeable siblings: pairs of /25s with equal hops under distinct /24s —
    # the canonical aggregation input.
    sib = bytes([0x02])  # direct_bits=16, v4
    for i in range(12):
        sib += fresh4(v4(10, 7, i, 0), 25, 1 + (i % 3))
        sib += sibling(0, 1 + (i % 3))  # same hop as its pair: mergeable
    out["mergeable_siblings"] = sib

    # Redundant children: /16 cover with same-hop /24s inside (droppable),
    # plus one differing hop that must survive.
    red = bytes([0x01])  # direct_bits=6, v4
    red += fresh4(v4(10, 9, 0, 0), 16, 5)
    for i in range(10):
        red += fresh4(v4(10, 9, i, 0), 24, 5)
    red += fresh4(v4(10, 9, 200, 0), 24, 6)
    out["redundant_children"] = red

    # IPv6 nesting (sel bit7).
    v6 = bytes([0x83])
    v6 += fresh6(0x20010DB8 << 96, 32, 1)
    for i in range(8):
        v6 += child(0, i & 1, 1)  # same hop as parent: redundant
    out["ipv6_redundant_nest"] = v6

    return out


def seeds_snapshot_roundtrip():
    out = {}

    # Input layout (fuzz_snapshot_roundtrip.cpp): config byte, sel byte
    # (0x40 = compact before serialize, 0x80 = IPv6), u32 flip selector
    # (low bits pick the corrupted byte, top 3 bits the flipped bit), then
    # the common op stream and trailing probe keys.

    # Compacted v4 churn: announce a /24 sweep, withdraw half, compact,
    # snapshot. Flip selector 0 lands the corruption in the image header.
    churn = config(16) + bytes([0x40]) + u32(0)
    for i in range(24):
        churn += fresh4(v4(10, 42, i, 0), 24, 1 + i)
    for i in range(12):
        churn += withdraw4(v4(10, 42, 2 * i, 0), 24)
    out["compacted_churn_v4"] = churn

    # Uncompacted basic mode (no leafvec, no direct pointing): the snapshot
    # must capture a churned, never-compacted pool extent faithfully. The
    # flip selector points well past the header, into the node section.
    basic = config(0, leaf_compression=False) + bytes([0x00]) + u32(0x00000400)
    basic += fresh4(v4(192, 168, 0, 0), 16, 1)
    for i in range(16):
        basic += child(0, i & 1, 2 + i)
    out["uncompacted_basic_v4"] = basic

    # IPv6, compacted, direct_bits=18: deep child walk plus a host route;
    # high flip selector exercises bit 7 at a large payload offset.
    v6 = config(18) + bytes([0xC0]) + u32(0xE0010000)
    v6 += fresh6(0x20010DB8 << 96, 32, 1)
    for i in range(20):
        v6 += child(0, i & 1, 2 + i)
    v6 += fresh6((0xFE80 << 112) | 0x1, 128, 5)
    out["ipv6_compacted_walk"] = v6

    # Default route only: smallest meaningful image (one leaf run behind a
    # full direct table); corruption lands in the direct section.
    out["default_route_only"] = (
        config(16) + bytes([0x40]) + u32(0x00002000) + fresh4(0, 0, 10)
    )

    return out


HARNESSES = {
    "fuzz_differential": seeds_differential,
    "fuzz_update_rebuild": seeds_update_rebuild,
    "fuzz_parser": seeds_parser,
    "fuzz_buddy": seeds_buddy,
    "fuzz_aggregate": seeds_aggregate,
    "fuzz_snapshot_roundtrip": seeds_snapshot_roundtrip,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="fuzz/corpus", help="corpus root (default fuzz/corpus)")
    args = parser.parse_args()

    total = 0
    for harness, gen in HARNESSES.items():
        d = os.path.join(args.out, harness)
        os.makedirs(d, exist_ok=True)
        for name, blob in gen().items():
            path = os.path.join(d, name)
            with open(path, "wb") as f:
                f.write(blob)
            total += 1
    print(f"make_fuzz_seeds: wrote {total} seeds under {args.out}")


if __name__ == "__main__":
    main()
