# image_e2e.cmake -- multi-step snapshot-image e2e harness.
#
# expect_exit.cmake runs exactly one command and can only materialize text
# fixtures; the image tests need a pipeline -- write a real image, corrupt
# its *binary* contents, then assert --verify-image's exact exit code:
#
#   cmake -DFSCK=<poptrie_fsck> -DIMG=<path> -DMODE=<mode> -DEXPECT=<code>
#         [-DSAVE_ARGS=<a|b|c>] [-DSAVE_EXPECT=<code>]
#         [-DPYTHON3=<python> -DCORRUPT=<corrupt_file.py>]  -P image_e2e.cmake
#
# MODE 'none' skips corruption (clean round trip, or an image saved from a
# FIB with an --inject-fault already in it); any other MODE is handed to
# corrupt_file.py, which needs PYTHON3 + CORRUPT. SAVE_EXPECT (default 0)
# is the expected exit of the --save-image run: saving a deliberately
# faulted FIB exits 1 from its own audit while still writing the image.

if(NOT DEFINED FSCK OR NOT DEFINED IMG OR NOT DEFINED MODE OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "image_e2e.cmake needs -DFSCK, -DIMG, -DMODE and -DEXPECT")
endif()
if(NOT DEFINED SAVE_EXPECT)
  set(SAVE_EXPECT 0)
endif()

file(REMOVE "${IMG}")
string(REPLACE "|" ";" SAVE_ARGS "${SAVE_ARGS}")
execute_process(COMMAND ${FSCK} ${SAVE_ARGS} --save-image ${IMG} RESULT_VARIABLE code)
if(NOT code EQUAL SAVE_EXPECT)
  message(FATAL_ERROR "--save-image: expected exit ${SAVE_EXPECT}, got '${code}'")
endif()
if(NOT EXISTS "${IMG}")
  message(FATAL_ERROR "--save-image exited ${code} but wrote no image at ${IMG}")
endif()

if(NOT MODE STREQUAL "none")
  if(NOT DEFINED PYTHON3 OR NOT DEFINED CORRUPT)
    message(FATAL_ERROR "MODE '${MODE}' needs -DPYTHON3 and -DCORRUPT")
  endif()
  execute_process(COMMAND ${PYTHON3} ${CORRUPT} ${MODE} ${IMG} RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "corrupt_file.py ${MODE} failed with '${code}'")
  endif()
endif()

execute_process(COMMAND ${FSCK} --verify-image ${IMG} RESULT_VARIABLE code)
if(NOT code EQUAL EXPECT)
  message(FATAL_ERROR
    "--verify-image after '${MODE}': expected exit ${EXPECT}, got '${code}'")
endif()
