#!/usr/bin/env python3
"""Deterministic binary corruption for the snapshot-image e2e tests.

    corrupt_file.py <mode> <path>

Modes mirror the failure classes --verify-image must catch:

  truncate  -- cut the file to half its size (header intact, payload short)
  flipbit   -- flip one bit in the middle of the payload (checksum mismatch)
  version   -- stamp format_version = 999 and RE-SEAL the header checksum,
               so the loader's rejection is the version check specifically,
               not a checksum side effect

The header layout constants below must match snapshot::ImageHeader
(src/snapshot/snapshot.hpp): format_version is the uint32 at offset 8,
header_checksum the uint64 at offset 280 of the 288-byte header, computed
as FNV-1a 64 over the header with the checksum field zeroed.
"""
import struct
import sys

HEADER_BYTES = 288
VERSION_OFF = 8
HEADER_CHECKSUM_OFF = 280


def fnv1a64(data: bytes) -> int:
    h = 0xCBF29CE484222325
    for b in data:
        h ^= b
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    mode, path = sys.argv[1], sys.argv[2]
    with open(path, "rb") as f:
        data = bytearray(f.read())
    if len(data) <= HEADER_BYTES:
        print(f"corrupt_file.py: {path} is too small to be an image", file=sys.stderr)
        return 2

    if mode == "truncate":
        data = data[: len(data) // 2]
    elif mode == "flipbit":
        data[(HEADER_BYTES + len(data)) // 2] ^= 0x10
    elif mode == "version":
        struct.pack_into("<I", data, VERSION_OFF, 999)
        header = bytearray(data[:HEADER_BYTES])
        header[HEADER_CHECKSUM_OFF : HEADER_CHECKSUM_OFF + 8] = bytes(8)
        struct.pack_into("<Q", data, HEADER_CHECKSUM_OFF, fnv1a64(bytes(header)))
    else:
        print(f"corrupt_file.py: unknown mode '{mode}'", file=sys.stderr)
        return 2

    with open(path, "wb") as f:
        f.write(data)
    return 0


if __name__ == "__main__":
    sys.exit(main())
