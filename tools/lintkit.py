#!/usr/bin/env python3
"""lintkit.py -- shared plumbing for the repo's source-level linters.

check_atomics.py (memory-order placement), check_concurrency.py (EBR/
quiescence protocol shapes) and astcheck/ (hot-path purity + bit-arithmetic
provenance) all need the same four pieces:

  * the source-suffix vocabulary (which files count as C++ sources);
  * a comment/string stripper that yields parallel (code, comment) line
    lists, so prose about atomics or shifts never trips a rule and
    justification comments can be searched separately from code;
  * the escape-hatch / justification-comment window convention: a marker on
    the same line or up to N lines above the flagged construct;
  * the known-bad-corpus self-test runner: every linter ships fixtures that
    MUST stay flagged (and clean twins that must stay clean), or the linter
    itself is broken. The runner writes each fixture tree to a temp dir,
    scans it, and compares the violation count.

This module owns those pieces; the linters import them. It has a self-test
of its own (`python3 tools/lintkit.py --self-test`) covering the stripper's
edge cases, because every downstream rule depends on it being right.
"""

from __future__ import annotations

import os
import sys
import tempfile

SOURCE_SUFFIXES = (".hpp", ".cpp", ".ipp", ".h", ".cc")


def split_code_and_comment(lines):
    """Returns parallel lists (code, comment) with literals blanked from code.

    A tiny state machine over //, /* */, "...", '...'; good enough for this
    codebase (no raw strings near atomics, no trigraphs). Preprocessor lines
    keep their text in `code` so `#include <atomic>` stays invisible (angle
    brackets, not an identifier match) while macros using atomics still scan.
    """
    code_lines, comment_lines = [], []
    in_block = False
    for line in lines:
        code, comment = [], []
        i, n = 0, len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    comment.append(line[i:])
                    i = n
                else:
                    comment.append(line[i:end])
                    i = end + 2
                    in_block = False
                continue
            ch = line[i]
            if ch == "/" and i + 1 < n and line[i + 1] == "/":
                comment.append(line[i + 2 :])
                i = n
            elif ch == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                i += 2
            elif ch in "\"'":
                quote = ch
                code.append(" ")  # blank out the literal entirely
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
            else:
                code.append(ch)
                i += 1
        code_lines.append("".join(code))
        comment_lines.append("".join(comment))
    return code_lines, comment_lines


def comment_window(comments, idx, lookback):
    """The justification-comment window convention: the comment texts that
    may carry a marker for a construct on line index `idx` — the same line
    and up to `lookback` lines above it."""
    return comments[max(0, idx - lookback) : idx + 1]


def marker_in_window(comments, idx, lookback, regex):
    """True when `regex` (a compiled pattern) matches a comment within the
    window — the shape of every escape hatch and justification rule."""
    return any(regex.search(c) for c in comment_window(comments, idx, lookback))


def walk_sources(root, subdirs=None):
    """Yields (path, rel) for every source file under `root` (or under the
    given subdirectories of it, skipping ones that do not exist), rel being
    the path relative to `root`. Deterministic order."""
    tops = [root] if subdirs is None else [os.path.join(root, s) for s in subdirs]
    for top in tops:
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(SOURCE_SUFFIXES):
                    continue
                path = os.path.join(dirpath, name)
                yield path, os.path.relpath(path, root)


def write_tree(root, tree):
    """Materializes a {relpath: text} fixture tree under `root`."""
    for rel, text in tree.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)


class CorpusRunner:
    """Known-bad-corpus self-test driver shared by every linter.

    `scan` is a callable taking the fixture root directory and returning a
    list of violations (anything with a printable third element) or None on
    scan error. Each expect() writes the fixture tree, scans it, and records
    a failure unless exactly `want` violations came back.
    """

    def __init__(self, scan):
        self.scan = scan
        self.failures = []
        self.scenarios = 0

    def expect(self, name, tree, want):
        self.scenarios += 1
        with tempfile.TemporaryDirectory() as tmp:
            write_tree(tmp, tree)
            got = self.scan(tmp)
            n = None if got is None else len(got)
            if n != want:
                detail = "scan error" if got is None else self._describe(got)
                self.failures.append(f"{name}: expected {want} violation(s), got {detail}")

    @staticmethod
    def _describe(violations):
        out = []
        for v in violations:
            if isinstance(v, tuple) and len(v) >= 3:
                out.append(v[2])
            else:
                out.append(str(v))
        return out

    def finish(self, tool, scenarios=None):
        """Prints the verdict and returns the process exit code."""
        if self.failures:
            for f in self.failures:
                print(f"self-test FAILED: {f}", file=sys.stderr)
            return 1
        print(f"{tool}: self-test passed ({scenarios or self.scenarios} scenarios)")
        return 0


def report(violations, tool):
    """Prints violations in file:line: message form and returns the exit
    code: 0 clean, 1 violations, 2 scan error (violations is None)."""
    if violations is None:
        return 2
    for path, lineno, msg in violations:
        print(f"{path}:{lineno}: {msg}", file=sys.stderr)
    if violations:
        print(f"{tool}: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"{tool}: clean")
    return 0


def _self_test():
    failures = []

    def expect(name, cond):
        if not cond:
            failures.append(name)

    code, comment = split_code_and_comment(
        [
            "int a = 1; // trailing note",
            'const char* s = "std::atomic in a string";',
            "int b; /* open block",
            "still comment */ int c;",
            "char q = 'x'; int d;",
            "// whole-line comment",
        ]
    )
    expect("code keeps statements", "int a = 1;" in code[0])
    expect("trailing comment extracted", "trailing note" in comment[0])
    expect("string literal blanked", "atomic" not in code[1])
    expect("block comment spans lines", "open block" in comment[2] and "still comment" in comment[3])
    expect("code resumes after block close", "int c;" in code[3])
    expect("char literal blanked", "x" not in code[4] and "int d;" in code[4])
    expect("whole-line comment has no code", code[5].strip() == "")

    import re

    marker = re.compile(r"ok:")
    comments = ["", "ok: above", "", "ok: same"]
    expect("marker same line", marker_in_window(comments, 3, 0, marker))
    expect("marker one above", marker_in_window(comments, 2, 1, marker))
    expect("marker out of window", not marker_in_window(comments, 2, 0, marker))

    with tempfile.TemporaryDirectory() as tmp:
        write_tree(tmp, {"src/a.hpp": "int x;\n", "src/sub/b.cpp": "int y;\n", "src/notes.md": "no\n"})
        rels = [rel for _p, rel in walk_sources(tmp)]
        expect("walk finds sources only", rels == [os.path.join("src", "a.hpp"), os.path.join("src", "sub", "b.cpp")])

    runner = CorpusRunner(lambda root: [("p", 1, "v")])
    runner.expect("one violation", {"x.hpp": "int x;\n"}, 1)
    runner.expect("mismatch recorded", {"x.hpp": "int x;\n"}, 0)
    expect("corpus runner counts", runner.scenarios == 2 and len(runner.failures) == 1)

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("lintkit: self-test passed (12 checks)")
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(_self_test())
    print(__doc__)
    sys.exit(0)
