"""acrules.py -- the three astcheck rule families over acmodel.FileModel.

HP1 hot-path purity: functions tagged poptrie::hot (POPTRIE_HOT) must not
    transitively reach heap allocation, locks, throwing constructs,
    syscalls, iostream, or runtime lane-dispatch probes (CPUID feature
    tests, getenv — the lane path resolves once at lanes::select() time,
    never per burst). The call graph is walked per file/TU from every
    hot root; calls resolve to same-model definitions (the clang frontend
    feeds per-TU models, so cross-header edges resolve there). Exempt
    callees (poptrie::hot_exempt) stop the walk, but an exemption without
    a `hot-exempt:` justification comment is itself a finding.

HP2 shift-width safety: every shift whose count is not provably < the
    operand bit-width is flagged. "Provably" means: a literal/constant
    expression below the width, a dominating mask (& 63, % 64, & kMask),
    a bounding for-loop or guard (`if (off >= kWidth) return`), or a count
    variable whose every assignment flows from a bounded producer such as
    chunk()/popcount(). `// shift-ok: <why>` (same line or the two above)
    vouches for anything the prover cannot see.

HP3 pool-index provenance: inside hot functions, indices into the Poptrie
    pools (nodes_/leaves_/direct_) must flow from the popcount accessors
    -- base+popcount chains, extract(), chunk(), load_acquire() -- never
    raw arithmetic. A local-variable fixpoint tracks provenance through
    assignments; `// index-ok: <why>` vouches for the rest.

`// astcheck: allow` (same line or the two above) is the last-resort
escape hatch for all three families, mirroring check-atomics: allow.

Findings are (path, lineno, message) tuples, lintkit.report-compatible.
"""

from __future__ import annotations

import re

import lintkit

LOOKBACK = 2
ALLOW_RE = re.compile(r"astcheck:\s*allow")
SHIFT_OK_RE = re.compile(r"shift-ok:")
INDEX_OK_RE = re.compile(r"index-ok:")

HP2_DIR_PREFIXES = ("src/poptrie", "src/netbase")


_CONTINUATION_HEAD_RE = re.compile(r"^\s*(<<|>>|\?|:[^:]|\)|,|&&|\|\||\.|->)")


def _stmt_start(fm, lineno):
    """First line of the statement containing `lineno`: walks up while the
    previous code line is a continuation (non-blank and not ended by one of
    `;{}`), so a justification comment above a multi-line expression reaches
    every line of it. A `}`-ended previous line is still a continuation when
    the current line opens with a token that cannot begin a statement (the
    brace was a braced-init like `value_type{0}`, not a block close)."""
    start = lineno
    while start > 1:
        prev = fm.code[start - 2].rstrip()
        if not prev.strip() or prev.endswith((";", "{")):
            break
        if prev.endswith("}") and not _CONTINUATION_HEAD_RE.match(fm.code[start - 1]):
            break
        start -= 1
    return start


def _allowed(fm, lineno, extra_re=None):
    # Anchor the lookback window at both the site line (trailing comments)
    # and the start of its statement (comments above a multi-line expression).
    anchors = {lineno - 1, _stmt_start(fm, lineno) - 1}
    for regex in (ALLOW_RE,) + ((extra_re,) if extra_re is not None else ()):
        if any(lintkit.marker_in_window(fm.comments, idx, LOOKBACK, regex) for idx in anchors):
            return True
    return False


# ---------------------------------------------------------------------------
# HP1

def check_hp1(fm, findings):
    idx = fm.function_index()
    for fn in fm.functions:
        if fn.exempt and not fn.exempt_justified and not _allowed(fm, fn.line):
            findings.append(
                (
                    fm.path,
                    fn.line,
                    f"[HP1] '{fn.name}' is marked poptrie::hot_exempt without a "
                    "'// hot-exempt: <why>' justification comment (head or the "
                    "two lines above); the exemption IS the place to say why",
                )
            )
    reported = set()
    for root in fm.functions:
        if not root.hot:
            continue
        visited = {id(root)}
        stack = [(root, (root.name,))]
        while stack:
            fn, trail = stack.pop()
            for c in fn.constructs:
                if _allowed(fm, c.line):
                    continue
                key = (c.line, c.token)
                if key in reported:
                    continue
                reported.add(key)
                via = "" if fn is root else f" via call path {' -> '.join(trail)}"
                findings.append(
                    (
                        fm.path,
                        c.line,
                        f"[HP1] hot function '{root.name}' reaches {c.why} "
                        f"('{c.token}'){via}; the lookup path must stay free of "
                        "allocation/locks/throw/syscalls/io/dispatch probes -- "
                        "hoist it out, or mark the callee POPTRIE_HOT_EXEMPT "
                        "with a 'hot-exempt:' justification",
                    )
                )
            for call in fn.calls:
                for callee in idx.get(call.name, ()):
                    if id(callee) in visited:
                        continue
                    visited.add(id(callee))
                    if callee.exempt:
                        continue  # justified-or-not handled above
                    stack.append((callee, trail + (callee.name,)))


# ---------------------------------------------------------------------------
# HP2

CONST_TOKEN_RE = re.compile(r"^(?:k[A-Z]\w*|[A-Z][A-Z0-9_]+|sizeof|alignof|std|numeric_limits|digits|CHAR_BIT|true|false|u?int(?:8|16|32|64|128)_t|size_t|uint|unsigned|int|long|char|short|bool|auto|const|constexpr|static_cast|uint64|uint32)$")
INT_LIT_RE = re.compile(r"\b(0[xX][0-9a-fA-F']+|\d[\d']*)(?:[uUlLzZ]*)\b")
IDENT_RE = re.compile(r"\b[A-Za-z_]\w*\b")
MASK_AND_RE = re.compile(r"&\s*(0[xX][0-9a-fA-F']+|\d+)\b")
MASK_NAME_RE = re.compile(r"[&%]\s*k\w*[Mm]ask\b|&\s*\(\s*k\w+\s*-\s*1\s*\)|&\s*\w*[Mm]ask\w*\b")
MOD_RE = re.compile(r"%\s*(\d+)\b")
BOUNDED_PRODUCER_RE = re.compile(r"\bchunk\s*\(|\bpopcount\w*\s*\(|\bcount_leading_zeros\s*\(|\bcount_trailing_zeros\s*\(|\bctz\w*\s*\(|\bclz\w*\s*\(|&\s*(?:0[xX][0-9a-fA-F']+|\d+)|%\s*\d+")


def _int_value(tok):
    t = tok.replace("'", "").rstrip("uUlLzZ")
    try:
        return int(t, 0)
    except ValueError:
        return None


def _strip_parens(expr):
    expr = expr.strip()
    while expr.startswith("(") and expr.endswith(")"):
        depth = 0
        for i, c in enumerate(expr):
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0 and i != len(expr) - 1:
                    return expr
        expr = expr[1:-1].strip()
    return expr


def _expr_idents(expr):
    return [t for t in IDENT_RE.findall(expr) if not CONST_TOKEN_RE.match(t) and _int_value(t) is None]


def _mask_bounds(expr, width):
    m = MASK_AND_RE.search(expr)
    if m:
        v = _int_value(m.group(1))
        if v is not None and v < width and (v + 1) & v == 0:
            return True
    m = MOD_RE.search(expr)
    if m and int(m.group(1)) <= width:
        return True
    return MASK_NAME_RE.search(expr) is not None


def _var_bounded(var, fn, site_line, width):
    body = fn.body
    # (a) bounding for-loop: for (... var = LIT; var < BOUND; ...)
    for _ln, text in body:
        m = re.search(rf"for\s*\(\s*(?:[\w:<>,\s]+\s)?{re.escape(var)}\s*=\s*(\w+)\s*;[^;]*\b{re.escape(var)}\s*<=?\s*([^;]+);", text)
        if m:
            init, bound = _int_value(m.group(1)), m.group(2).strip()
            bv = _int_value(bound)
            if (init is not None) and (bv is not None and bv <= width or not _expr_idents(bound)):
                return True
    # (b) dominating guard before the shift site
    guarded_next = 0
    for ln, text in body:
        if ln >= site_line:
            break
        if guarded_next and re.search(r"\b(return|continue|break|goto)\b", text):
            return True
        guarded_next = max(0, guarded_next - 1)
        g = re.search(rf"if\s*\(\s*{re.escape(var)}\s*>=\s*[\w:().\s]+\)", text)
        if g:
            rest = text[g.end():]
            if re.search(r"\b(return|continue|break|goto)\b", rest):
                return True
            guarded_next = 2  # the early-out may sit on the next lines
        if re.search(rf"\bassert\s*\(\s*{re.escape(var)}\s*<=?\s*", text):
            return True
    # (c) every assignment flows from a bounded producer
    assigns = []
    joined = " ".join(t for _ln, t in body).split(";")
    for stmt in joined:
        for m in re.finditer(rf"(?<![\w.]){re.escape(var)}\s*=(?![=])\s*(.+)", stmt):
            assigns.append(m.group(1))
    if assigns and all(BOUNDED_PRODUCER_RE.search(rhs) or not _expr_idents(rhs) and _all_literals_below(rhs, width) for rhs in assigns):
        return True
    return False


def _all_literals_below(expr, width):
    vals = [_int_value(t) for t in INT_LIT_RE.findall(expr)]
    return all(v is None or v < width for v in vals)


def _classify_shift(site, fn, fm):
    """Returns None when provably safe, else the reason string."""
    expr = _strip_parens(site.count)
    width = site.width
    idents = _expr_idents(expr)
    if not idents:
        lit = _int_value(expr)
        if lit is not None and lit >= width:
            return f"literal shift count {lit} >= operand width {width}"
        return None  # literal/constant arithmetic below width
    if _mask_bounds(expr, width):
        return None
    if all(CONST_TOKEN_RE.match(t) for t in IDENT_RE.findall(expr)):
        return None
    if fn is not None and all(_var_bounded(v, fn, site.line, width) for v in idents):
        return None
    return f"count '{expr}' is not provably < operand width {width}"


def check_hp2(fm, findings, in_scope_file):
    def visit(shifts, fn):
        for s in shifts:
            if _allowed(fm, s.line, SHIFT_OK_RE):
                continue
            reason = _classify_shift(s, fn, fm)
            if reason is not None:
                findings.append(
                    (
                        fm.path,
                        s.line,
                        f"[HP2] '{s.op}' {reason}: bound it with a mask (& {s.width - 1}), "
                        "a % modulo, a dominating guard, a bounded producer such as "
                        "chunk()/popcount(), or vouch with '// shift-ok: <why>'",
                    )
                )

    for fn in fm.functions:
        if in_scope_file or fn.hot:
            visit(fn.shifts, fn)
    if in_scope_file:
        visit(fm.toplevel_shifts, None)


# ---------------------------------------------------------------------------
# HP3

SANCTIONED_MARK_RE = re.compile(
    r"\bpopcount\w*\s*\(|(?<![\w.])pop\s*\(|\bload_acquire\b|\bload_relaxed\b"
    r"|\bextract\s*[<(]|\bchunk\s*\(|\bbase0\b|\bbase1\b|\broot_\b"
    r"|\bold_child_index\s*\(|\bold_leaf_value\s*\(|\bbump_offset\s*\(|\bdirect_index\s*\("
)
ASSIGN_RE = re.compile(r"(?:^|[;{}(\s])((?:\w+\s+)*)([A-Za-z_]\w*)(\s*\[[^\]]*\])?\s*(=|\+=|\|=|&=|\^=)(?![=])\s*([^;]+)")
HP3_IGNORED_IDENTS = frozenset({"std", "size_t", "size", "data", "get", "first", "second"})


def _statements(fn):
    """Body text re-joined into `;`-separated statements, so assignments
    whose right-hand side wraps across lines stay whole."""
    return fn.body_text().replace("\n", " ").split(";")


def _sanctioned_vars(fn):
    assigns = []
    for stmt in _statements(fn):
        for m in ASSIGN_RE.finditer(stmt + ";"):
            assigns.append((m.group(2), m.group(5)))
    sanctioned = set()
    changed = True
    while changed:
        changed = False
        for lhs, rhs in assigns:
            if lhs in sanctioned:
                continue
            if SANCTIONED_MARK_RE.search(rhs):
                sanctioned.add(lhs)
                changed = True
                continue
            idents = _expr_idents(rhs)
            if idents and all(i in sanctioned or i in HP3_IGNORED_IDENTS for i in idents):
                sanctioned.add(lhs)
                changed = True
    return sanctioned


def _index_ok(expr, sanctioned):
    if SANCTIONED_MARK_RE.search(expr):
        return True
    # `index[l]`: the pool index is the *value* of the sanctioned array
    # `index`; the inner subscript (a lane counter) indexes the local
    # array, not the pool. Drop such groups when their base is sanctioned.
    prev = None
    while prev != expr:
        prev = expr
        expr = re.sub(
            r"\b(" + "|".join(re.escape(s) for s in sanctioned) + r")\s*\[[^\][]*\]" if sanctioned else r"$^",
            " ",
            expr,
        )
    idents = _expr_idents(expr)
    if not idents:
        return True  # constant index (root slot, literal probe)
    return all(i in sanctioned or i in HP3_IGNORED_IDENTS for i in idents)


def check_hp3(fm, findings):
    for fn in fm.functions:
        if not fn.hot:
            continue
        sanctioned = _sanctioned_vars(fn)
        for sub in fn.subscripts:
            if _allowed(fm, sub.line, INDEX_OK_RE):
                continue
            if _index_ok(sub.index, sanctioned):
                continue
            findings.append(
                (
                    fm.path,
                    sub.line,
                    f"[HP3] index '{sub.index}' into {sub.array}[] does not flow "
                    "from the popcount accessors (base0/base1 + popcount, extract(), "
                    "chunk(), load_acquire()); pool indices must carry provenance, "
                    "or vouch with '// index-ok: <why>'",
                )
            )


# ---------------------------------------------------------------------------

def _hp2_in_scope(rel):
    norm = rel.replace("\\", "/")
    return any(norm == p or norm.startswith(p + "/") for p in HP2_DIR_PREFIXES)


def check_all(models):
    """Runs all three families; returns lintkit.report-compatible findings
    sorted by (path, line)."""
    findings = []
    for fm in models:
        check_hp1(fm, findings)
        check_hp2(fm, findings, _hp2_in_scope(fm.rel))
        check_hp3(fm, findings)
    findings.sort(key=lambda v: (v[0], v[1]))
    return findings
