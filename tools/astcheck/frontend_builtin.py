"""frontend_builtin.py -- clang-free source model extraction for astcheck.

The authoritative frontend is clang's JSON AST dump (frontend_clang.py),
but the repo must lint on toolchains that only ship GCC, and the ctest
`lint` label has to pass everywhere. This frontend rebuilds the same
acmodel.FileModel from a lexical parse that understands just enough C++:

  * comment/string stripping via lintkit.split_code_and_comment;
  * preprocessor lines (and their backslash continuations) are blanked so
    directive text never confuses brace tracking;
  * a brace classifier: every `{` at paren-depth 0 either opens a function
    body (its "head" -- the code since the last top-level `;`/`{`/`}` --
    names a function), or an opaque scope (namespace/class/initializer).
    Braces inside parentheses (default arguments) are ignored; nested
    braces inside a function body, lambdas included, stay part of that
    function's body;
  * per-function extraction of call sites, HP1-banned constructs, shift
    sites (template argument lists blanked first so `vector<vector<T>>`
    is not a shift), and pool subscripts.

Known blind spots, accepted on purpose: `#if`/`#else` branches with
unbalanced braces can over-extend a body, and macro-generated functions
are invisible. The clang frontend has neither problem; CI runs it.
"""

from __future__ import annotations

import re

import lintkit
from acmodel import CallSite, Construct, FileModel, FunctionInfo, ShiftSite, SubscriptSite

# ---------------------------------------------------------------------------
# head classification

# Names that can precede '(' in a head without being the function name.
HEAD_SKIP = frozenset(
    {
        "if", "for", "while", "switch", "do", "else", "return", "catch",
        "case", "goto", "new", "delete", "throw", "sizeof", "alignof",
        "decltype", "noexcept", "requires", "static_assert", "assert",
        "alignas", "defined", "using", "typedef", "template", "public",
        "private", "protected", "__attribute__", "__declspec",
    }
)

NAME_RE = re.compile(r"(~?[A-Za-z_]\w*)\s*\(")
OPERATOR_RE = re.compile(r"\boperator\s*(\(\s*\)|\[\s*\]|[<>!=+\-*/%&|^~=]{1,3}|\bnew\b|\bdelete\b)")
CONTAINER_RE = re.compile(r"(?:^|[^\w:])(namespace|class|struct|union|enum)\b")


def _top_level_positions(text, ch):
    """Positions of `ch` in `text` at paren/bracket depth 0."""
    out, depth = [], 0
    for i, c in enumerate(text):
        if c in "([":
            depth += 1
        elif c in ")]":
            depth = max(0, depth - 1)
        elif c == ch and depth == 0:
            out.append(i)
    return out


def _blank_template_prefix(head):
    """Blanks `template <...>` parameter lists (angle-depth aware) so their
    default arguments (`bool SoftPopcount = false`) are not mistaken for a
    top-level initializer `=`."""
    out = head
    for m in re.finditer(r"\btemplate\s*<", head):
        depth, paren, i = 1, 0, m.end()
        while i < len(head) and depth:
            c = head[i]
            if c == "(":
                paren += 1
            elif c == ")":
                paren = max(0, paren - 1)
            elif paren == 0 and c == "<":
                depth += 1
            elif paren == 0 and c == ">":
                depth -= 1
            i += 1
        out = out[: m.start()] + " " * (i - m.start()) + out[i:]
    return out


def head_function_name(head):
    """The function name a head declares, or None when the head is not a
    function definition head (namespace, class, initializer, control)."""
    if "(" not in head:
        return None
    head = _blank_template_prefix(head)
    # operator overloads first: `operator[](...)` / `operator()(...)` would
    # otherwise be skipped ("operator" is not the callable name token).
    om = OPERATOR_RE.search(head)
    if om is not None and "(" in head[om.end():] + ("(" if om.group(1).strip().startswith("(") else ""):
        return "operator" + "".join(om.group(1).split())
    # A top-level `=` means initialization (`auto k = ...{`), not a
    # definition head; `operator=` was already handled above.
    for pos in _top_level_positions(head, "="):
        prev = head[pos - 1] if pos > 0 else ""
        nxt = head[pos + 1] if pos + 1 < len(head) else ""
        if prev in "=!<>+-*/%&|^" or nxt == "=":
            continue  # comparison / compound-assign fragment
        return None
    # First identifier followed by a depth-0 '(' that is not a known
    # keyword/macro is the declared name (ctor init-lists come later and
    # are never first).
    depth = 0
    for m in NAME_RE.finditer(head):
        seg = head[: m.start(1)]
        depth = seg.count("(") + seg.count("[") - seg.count(")") - seg.count("]")
        if depth != 0:
            continue
        name = m.group(1)
        if name in HEAD_SKIP or name.startswith("POPTRIE_"):
            continue
        return name
    return None


def head_is_container(head):
    """namespace/class/struct/union/enum heads open scopes that may hold
    functions but are not functions themselves. The template prefix is
    blanked first so `template <class Addr> void f()` is not mistaken for
    a class head (while `template <class T> class Foo` still is one)."""
    return CONTAINER_RE.search(_blank_template_prefix(head)) is not None


# ---------------------------------------------------------------------------
# annotation discovery (shared with the clang frontend, which detects
# hotness lexically too -- clang's AnnotateAttr JSON omits the annotation
# string in some versions, and the macro spelling is what the tree uses)

HOT_RE = re.compile(r"\bPOPTRIE_HOT\b|poptrie::hot\b")
EXEMPT_RE = re.compile(r"\bPOPTRIE_HOT_EXEMPT\b|poptrie::hot_exempt\b")
JUSTIFY_RE = re.compile(r"hot-exempt:")


def annotate_function(fn, raw_lines, comments):
    """Sets hot/exempt/exempt_justified from the head's raw text (the
    annotate attribute string lives inside a string literal, which the
    stripper blanks, so raw lines are consulted) and the comment window:
    the justification may sit up to 2 lines above the head or anywhere in
    the head itself."""
    lo, hi = fn.line - 1, max(fn.line, fn.body_open)
    head_raw = "\n".join(raw_lines[lo:hi])
    fn.exempt = EXEMPT_RE.search(head_raw) is not None
    fn.hot = not fn.exempt and HOT_RE.search(head_raw) is not None
    window = comments[max(0, lo - 2): hi]
    fn.exempt_justified = any(JUSTIFY_RE.search(c) for c in window)


# ---------------------------------------------------------------------------
# body extraction: calls, constructs, shifts, subscripts

CALL_RE = re.compile(r"(~?[A-Za-z_]\w*)\s*\(")
CALL_SKIP = HEAD_SKIP | {"operator"}

BANNED_CALLS = {
    # kind, why
    "malloc": ("alloc", "C heap allocation"),
    "calloc": ("alloc", "C heap allocation"),
    "realloc": ("alloc", "C heap allocation"),
    "free": ("alloc", "C heap release"),
    "posix_memalign": ("alloc", "aligned heap allocation"),
    "aligned_alloc": ("alloc", "aligned heap allocation"),
    "strdup": ("alloc", "allocating string copy"),
    "make_unique": ("alloc", "heap allocation"),
    "make_shared": ("alloc", "heap allocation"),
    "push_back": ("alloc", "container growth may reallocate"),
    "emplace_back": ("alloc", "container growth may reallocate"),
    "emplace": ("alloc", "container growth may reallocate"),
    "resize": ("alloc", "container resize may reallocate"),
    "reserve": ("alloc", "container reserve reallocates"),
    "shrink_to_fit": ("alloc", "container reallocation"),
    "lock": ("lock", "blocking mutex acquire"),
    "unlock": ("lock", "mutex release implies a lock was taken"),
    "try_lock": ("lock", "mutex acquire attempt"),
    "lock_shared": ("lock", "blocking shared-mutex acquire"),
    "mmap": ("syscall", "memory-mapping syscall"),
    "munmap": ("syscall", "memory-mapping syscall"),
    "madvise": ("syscall", "memory-advise syscall"),
    "ioctl": ("syscall", "device syscall"),
    "poll": ("syscall", "blocking syscall"),
    "select": ("syscall", "blocking syscall"),
    "epoll_wait": ("syscall", "blocking syscall"),
    "usleep": ("syscall", "sleeping syscall"),
    "nanosleep": ("syscall", "sleeping syscall"),
    "sleep_for": ("syscall", "thread sleep"),
    "sleep_until": ("syscall", "thread sleep"),
    "yield": ("syscall", "scheduler yield"),
    # Lane dispatch (poptrie/lanes.hpp) resolves once, at select() time; a
    # feature probe or environment read inside a hot function means the
    # per-burst path is re-deciding its kernel on every call.
    "getenv": ("dispatch", "environment lookup; POPTRIE_FORCE_LANES resolves at select() time"),
    "__builtin_cpu_supports": ("dispatch", "runtime CPUID feature probe; resolve the lane path once at select() time"),
    "__builtin_cpu_is": ("dispatch", "runtime CPUID feature probe; resolve the lane path once at select() time"),
    "__get_cpuid": ("dispatch", "runtime CPUID probe; resolve the lane path once at select() time"),
    "__get_cpuid_count": ("dispatch", "runtime CPUID probe; resolve the lane path once at select() time"),
    "printf": ("io", "stdio output"),
    "fprintf": ("io", "stdio output"),
    "snprintf": ("io", "stdio formatting"),
    "puts": ("io", "stdio output"),
    "fwrite": ("io", "stdio output"),
    "fopen": ("io", "file open"),
    "perror": ("io", "stdio output"),
}

NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")  # `= delete`-safe; skip none
DELETE_RE = re.compile(r"(?<![\w.])delete(\s*\[\s*\])?\b")
THROW_RE = re.compile(r"\bthrow\b")
IO_TOKEN_RE = re.compile(r"\bstd\s*::\s*(cout|cerr|clog|cin|endl)\b")
LOCK_TOKEN_RE = re.compile(r"\b(?:std\s*::\s*)?(lock_guard|unique_lock|scoped_lock|shared_lock|MutexLock)\b")


def extract_constructs(code, lineno, out):
    m = NEW_RE.search(code)
    if m and not re.search(r"operator\s*$", code[: m.start()]):
        out.append(Construct("alloc", lineno, "new", "heap allocation (new expression)"))
    m = DELETE_RE.search(code)
    if m and not re.search(r"[=(,]\s*$", code[: m.start()]) and not re.search(r"operator\s*$", code[: m.start()]):
        # `= delete;` declarations and `operator delete` are not statements.
        out.append(Construct("alloc", lineno, "delete", "heap release (delete expression)"))
    if THROW_RE.search(code):
        out.append(Construct("throw", lineno, "throw", "throwing construct"))
    m = IO_TOKEN_RE.search(code)
    if m:
        out.append(Construct("io", lineno, m.group(0), "iostream on the hot path"))
    m = LOCK_TOKEN_RE.search(code)
    if m:
        out.append(Construct("lock", lineno, m.group(1), "scoped lock acquisition"))


CAST_NAMES = frozenset({"static_cast", "dynamic_cast", "reinterpret_cast", "const_cast"})


def extract_calls(code, lineno, out, constructs):
    # Blank template argument lists first so `make_unique<int>(` is seen
    # as a call to make_unique.
    for m in CALL_RE.finditer(blank_templates(code)):
        name = m.group(1)
        if name in CALL_SKIP or name in CAST_NAMES or name.startswith("POPTRIE_"):
            continue
        prev = code[: m.start(1)].rstrip()
        if prev.endswith("]"):  # arr[i](
            continue
        out.append(CallSite(name, lineno))
        if name in BANNED_CALLS:
            kind, why = BANNED_CALLS[name]
            constructs.append(Construct(kind, lineno, name + "()", why))


# -- shifts -----------------------------------------------------------------

TMPL_RE = re.compile(r"(?<=[\w,])<([^<>;{}!?&|()=]|<[^<>]*>)*>(?=[\s>:)(&,;*\w{])")
SHIFT_RE = re.compile(r"(<<|>>)=?")
STREAM_NAME_RE = re.compile(r"(?:^|[^\w])(\w*(?:cout|cerr|clog|os|oss|out|stream|ss|log))\s*$")
EXPR_STOP = "&|^<>=!?:,;"


def blank_templates(s):
    """Blanks template argument lists so `>>` closers are not shifts.
    Conservative: only angle groups whose content looks type-ish."""
    prev = None
    while prev != s:
        prev = s
        s = TMPL_RE.sub(lambda m: " " * len(m.group(0)), s)
    return s


def _count_expr(text):
    """The shift-count expression starting at `text` (just after the
    operator): consumed until a depth-0 stop token or closing bracket."""
    depth = 0
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c in "([":
            depth += 1
        elif c in ")]}":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0 and c in EXPR_STOP:
            break
        out.append(c)
        i += 1
    return "".join(out).strip()


def _lhs_is_stream(before, file_code_text):
    m = STREAM_NAME_RE.search(before.rstrip())
    if m is None:
        return False
    tok = m.group(1)
    if tok in ("cout", "cerr", "clog") or tok.endswith(("cout", "cerr", "clog")):
        return True
    return re.search(r"\b\w*(?:stream|ostream)\b[^;\n]*\b" + re.escape(tok) + r"\b", file_code_text) is not None


def extract_shifts(code, lineno, out, file_code_text):
    blanked = blank_templates(code)
    stream_line = False
    for m in SHIFT_RE.finditer(blanked):
        op = m.group(0)
        before = blanked[: m.start()]
        after = blanked[m.end():]
        if re.search(r"operator\s*$", before):
            continue
        if m.start() > 0 and blanked[m.start() - 1] in "<>":
            continue  # <<< / >>> fragment
        if op.startswith(">>"):
            # Unblanked template closer: more '<' than '>' opened before it.
            if before.count("<") - 2 * before.count("<<") > before.count(">") - 2 * before.count(">>"):
                continue
        if _lhs_is_stream(before, file_code_text):
            stream_line = True  # stream insert/extract chain, not a shift
        if stream_line:
            continue  # chained stream inserts/extracts on this line
        count = _count_expr(after)
        if not count:
            continue
        out.append(ShiftSite(lineno, op, count))


# -- pool subscripts --------------------------------------------------------

POOL_RE = re.compile(r"\b(nodes_|leaves_|direct_)\s*\[")


def extract_subscripts(code, lineno, out):
    for m in POOL_RE.finditer(code):
        depth = 1
        i = m.end()
        start = i
        while i < len(code) and depth:
            if code[i] == "[":
                depth += 1
            elif code[i] == "]":
                depth -= 1
            i += 1
        out.append(SubscriptSite(lineno, m.group(1), code[start: i - 1].strip()))


# ---------------------------------------------------------------------------
# the scope machine

def parse_source(raw_lines, path, rel):
    code, comments = lintkit.split_code_and_comment(raw_lines)

    # Blank preprocessor directives (with continuations) before scanning.
    pcode, in_pre = [], False
    for c in code:
        if in_pre or c.lstrip().startswith("#"):
            in_pre = c.rstrip().endswith("\\")
            pcode.append("")
        else:
            in_pre = False
            pcode.append(c)

    model = FileModel(path=path, rel=rel, comments=comments, code=pcode)

    scope = []  # list of FunctionInfo-or-None, one per open brace
    active_fn = None
    head_parts = []  # [(lineno, chars)]
    head_first = None
    paren = 0
    init_depth = 0  # inside a ctor-member-initializer braced init
    CTOR_INIT_PENDING = re.compile(r"\)\s*:")
    HEAD_TAIL_IDENT = re.compile(r"[\w>]\s*$")

    def reset_head():
        nonlocal head_parts, head_first
        head_parts, head_first = [], None

    for idx, line in enumerate(pcode):
        lineno = idx + 1
        body_buf = []
        line_chars = []
        for ch in line:
            if active_fn is not None:
                body_buf.append(ch)
            if ch == "(":
                paren += 1
            elif ch == ")":
                paren = max(0, paren - 1)
            if paren > 0 or ch not in "{};":
                line_chars.append(ch)
                continue
            # scope-affecting char at paren depth 0
            if line_chars:
                if head_first is None:
                    head_first = lineno
                head_parts.append((lineno, "".join(line_chars)))
                line_chars = []
            if ch == "{":
                if active_fn is not None:
                    scope.append(None)  # nested block of the same body
                else:
                    head = " ".join(t for _ln, t in head_parts).strip()
                    # `Ctor() : member_{...}` -- the brace after a pending
                    # member name is an initializer, not a body; keep the
                    # head alive until the real body brace (which follows
                    # a `}` or `)`).
                    if CTOR_INIT_PENDING.search(head) and HEAD_TAIL_IDENT.search(head):
                        init_depth += 1
                        head_parts.append((lineno, "{"))
                        continue
                    name = None
                    if head and not head_is_container(head):
                        name = head_function_name(head)
                    if name is not None:
                        fn = FunctionInfo(name=name, line=head_first or lineno, body_open=lineno, head=head)
                        scope.append(fn)
                        active_fn = fn
                        body_buf = []  # body starts after this brace
                    else:
                        scope.append(None)
                reset_head()
            elif ch == "}":
                if init_depth > 0:
                    init_depth -= 1
                    head_parts.append((lineno, "}"))
                    continue
                top = scope.pop() if scope else None
                if top is not None:
                    top.end_line = lineno
                    if body_buf and body_buf[-1] == "}":
                        body_buf.pop()  # the function's own closer
                    text = "".join(body_buf)
                    if text.strip():
                        top.body.append((lineno, text))
                    body_buf = []
                    model.functions.append(top)
                    active_fn = None
                reset_head()
            else:  # ';'
                init_depth = 0  # defensive: a ';' ends any initializer
                reset_head()
        if line_chars and line_chars != [" "] * len(line_chars):
            text = "".join(line_chars)
            if text.strip():
                if head_first is None and active_fn is None:
                    head_first = lineno
                if active_fn is None:
                    head_parts.append((lineno, text))
        if active_fn is not None and body_buf:
            text = "".join(body_buf)
            if text.strip():
                active_fn.body.append((lineno, text))
    # Unclosed scopes at EOF (unbalanced #if branches): finalize anyway.
    while scope:
        top = scope.pop()
        if top is not None:
            top.end_line = len(pcode)
            model.functions.append(top)

    file_code_text = "\n".join(pcode)
    fn_lines = {}
    for fn in model.functions:
        annotate_function(fn, raw_lines, comments)
        for ln, text in fn.body:
            extract_constructs(text, ln, fn.constructs)
            extract_calls(text, ln, fn.calls, fn.constructs)
            extract_shifts(text, ln, fn.shifts, file_code_text)
            extract_subscripts(text, ln, fn.subscripts)
            fn_lines[ln] = fn
    # Shifts outside any function (namespace-scope constants).
    for idx, text in enumerate(pcode):
        ln = idx + 1
        if ln in fn_lines or not text.strip():
            continue
        extract_shifts(text, ln, model.toplevel_shifts, file_code_text)
    return model


def parse_file(path, rel):
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    return parse_source(raw, path, rel)


def parse_tree(source_root, subdirs=("src",)):
    """FileModels for every source file under the given subdirs."""
    return [parse_file(p, rel) for p, rel in lintkit.walk_sources(source_root, subdirs)]
