# astcheck -- hot-path purity and bit-arithmetic provenance analyzer.
# Run as a directory:  python3 tools/astcheck --help
# The package is executed via __main__.py; modules use flat imports so the
# directory-execution form works without installing anything.
