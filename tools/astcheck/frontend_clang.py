"""frontend_clang.py -- the authoritative astcheck frontend: clang JSON AST
dumps over compile_commands.json.

For every translation unit whose main file lives under src/, this runs

    clang++ <original flags> -fsyntax-only -Wno-everything \
            -Xclang -ast-dump=json

and walks the dump to *augment* the builtin models: AST-found constructs
(CXXNewExpr, CXXThrowExpr, banned CallExprs...), precise call edges
(DeclRefExpr -> referencedDecl, resolved across headers within the TU),
shift operators with type-aware operand widths, and pool subscripts. The
builtin lexical pass still supplies function bodies (HP2's bound prover
reads source text) and hot/exempt annotation discovery -- clang's
AnnotateAttr JSON omits the annotation string in some releases, and the
macro spelling is the repo's source of truth anyway.

Dumps are cached under --cache-dir, keyed by a digest of the clang
version, the compile command, the main file's contents, and a whole-tree
header fingerprint (any header edit invalidates everything -- conservative
but correct, and the common no-header-change CI run reuses every entry).

Clang's JSON quirk: "loc"/"range" objects omit file/line when unchanged
from the previously printed node, so the walker carries them as state.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import re
import shlex
import subprocess
import sys

import lintkit
from acmodel import CallSite, Construct, ShiftSite, SubscriptSite
from frontend_builtin import BANNED_CALLS

TOOL = "astcheck"

POOL_NAMES = ("nodes_", "leaves_", "direct_")


# ---------------------------------------------------------------------------
# compile_commands + caching

def _tu_command(entry):
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry["command"])
    out = []
    skip = False
    for a in argv[1:]:
        if skip:
            skip = False
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip = True
            continue
        if a in ("-c", "-MD", "-MMD", "-MP") or a.startswith("-fdiagnostics"):
            continue
        out.append(a)
    return out


def _clang_binary():
    import shutil

    return shutil.which("clang++") or shutil.which("clang")


def _tree_fingerprint(source_root):
    h = hashlib.sha256()
    for path, rel in lintkit.walk_sources(source_root, ("src",)):
        h.update(rel.encode())
        try:
            with open(path, "rb") as f:
                h.update(hashlib.sha256(f.read()).digest())
        except OSError:
            pass
    return h.hexdigest()


def _dump_tu(clang, entry, cache_dir, tree_fp):
    args = _tu_command(entry)
    cmd = [clang] + args + ["-fsyntax-only", "-Wno-everything", "-Xclang", "-ast-dump=json"]
    key = hashlib.sha256()
    key.update("\0".join(cmd).encode())
    key.update(tree_fp.encode())
    try:
        with open(os.path.join(entry.get("directory", "."), entry["file"]), "rb") as f:
            key.update(f.read())
    except OSError:
        pass
    digest = key.hexdigest()
    if cache_dir:
        os.makedirs(cache_dir, exist_ok=True)
        cached = os.path.join(cache_dir, digest + ".json.gz")
        if os.path.isfile(cached):
            with gzip.open(cached, "rt", encoding="utf-8") as f:
                return json.load(f)
    proc = subprocess.run(
        cmd, cwd=entry.get("directory", "."), capture_output=True, text=True, check=False
    )
    if proc.returncode != 0 or not proc.stdout:
        print(f"{TOOL}: clang AST dump failed for {entry['file']}:\n{proc.stderr[:2000]}", file=sys.stderr)
        return None
    data = json.loads(proc.stdout)
    if cache_dir:
        tmp = cached + ".tmp"
        with gzip.open(tmp, "wt", encoding="utf-8") as f:
            json.dump(data, f)
        os.replace(tmp, cached)
    return data


# ---------------------------------------------------------------------------
# AST walk

_WIDTH_HINTS = (
    (re.compile(r"__int128|_BitInt\(128\)|u128"), 128),
    (re.compile(r"uint64|int64|\blong\b|size_t|size_type|uintptr"), 64),
    (re.compile(r"uint32|int32|\bint\b|unsigned|uint\b"), 32),
    (re.compile(r"uint16|int16|short"), 16),
    (re.compile(r"uint8|int8|\bchar\b"), 8),
)


def _type_width(qual_type):
    for rx, w in _WIDTH_HINTS:
        if rx.search(qual_type or ""):
            return w
    return 64


class _Walker:
    """Carries clang's elided file/line state and collects per-file sites."""

    def __init__(self, source_root):
        self.source_root = os.path.abspath(source_root)
        self.cur_file = ""
        self.cur_line = 0
        self.sites = {}  # abs file -> {"constructs": [...], "calls": [...], ...}
        self.fn_stack = []  # (abs_file, name) of enclosing FunctionDecl-ish
        self._text_cache = {}

    # -- location bookkeeping

    def _update_loc(self, loc):
        if not isinstance(loc, dict):
            return
        for key in ("expansionLoc", "spellingLoc"):
            if key in loc:
                self._update_loc(loc[key])
                return
        if "file" in loc:
            self.cur_file = loc["file"]
        if "line" in loc:
            self.cur_line = loc["line"]

    def _in_tree(self):
        f = os.path.abspath(self.cur_file) if self.cur_file else ""
        return f.startswith(os.path.join(self.source_root, "src") + os.sep), f

    def _bucket(self, f):
        return self.sites.setdefault(
            f, {"constructs": [], "calls": [], "shifts": [], "subscripts": []}
        )

    def _src_slice(self, node):
        """Source text for a node's range, best effort."""
        rng = node.get("range")
        if not isinstance(rng, dict):
            return ""
        b, e = rng.get("begin", {}), rng.get("end", {})
        for key in ("expansionLoc", "spellingLoc"):
            if key in b:
                b = b[key]
            if key in e:
                e = e[key]
        off, eoff = b.get("offset"), e.get("offset")
        if off is None or eoff is None:
            return ""
        f = os.path.abspath(self.cur_file) if self.cur_file else ""
        text = self._text_cache.get(f)
        if text is None:
            try:
                with open(f, encoding="utf-8", errors="replace") as fh:
                    text = fh.read()
            except OSError:
                text = ""
            self._text_cache[f] = text
        return text[off: eoff + e.get("tokLen", 0)]

    # -- node handlers

    def walk(self, node):
        if not isinstance(node, dict):
            return
        self._update_loc(node.get("loc", {}))
        rng = node.get("range")
        if isinstance(rng, dict):
            self._update_loc(rng.get("begin", {}))
        kind = node.get("kind", "")
        in_tree, f = self._in_tree()
        line = self.cur_line

        pushed = False
        if kind in (
            "FunctionDecl",
            "CXXMethodDecl",
            "CXXConstructorDecl",
            "CXXDestructorDecl",
            "CXXConversionDecl",
        ) and any(c.get("kind") == "CompoundStmt" for c in node.get("inner", []) if isinstance(c, dict)):
            self.fn_stack.append((f, node.get("name", "")))
            pushed = True
        elif in_tree and self.fn_stack:
            if kind == "CXXNewExpr":
                self._bucket(f)["constructs"].append(
                    Construct("alloc", line, "new", "heap allocation (new expression)")
                )
            elif kind == "CXXDeleteExpr":
                self._bucket(f)["constructs"].append(
                    Construct("alloc", line, "delete", "heap release (delete expression)")
                )
            elif kind == "CXXThrowExpr":
                self._bucket(f)["constructs"].append(
                    Construct("throw", line, "throw", "throwing construct")
                )
            elif kind in ("CallExpr", "CXXMemberCallExpr", "CXXOperatorCallExpr"):
                name = self._callee_name(node)
                if name:
                    self._bucket(f)["calls"].append(CallSite(name, line))
                    if name in BANNED_CALLS:
                        k, why = BANNED_CALLS[name]
                        self._bucket(f)["constructs"].append(Construct(k, line, name + "()", why))
            elif kind in ("BinaryOperator", "CompoundAssignOperator") and node.get("opcode") in (
                "<<", ">>", "<<=", ">>=",
            ):
                inner = [c for c in node.get("inner", []) if isinstance(c, dict)]
                if len(inner) == 2:
                    width = _type_width(node.get("type", {}).get("qualType", ""))
                    count = self._src_slice(inner[1]).strip()
                    if count and "<<" not in count and ">>" not in count:
                        self._bucket(f)["shifts"].append(
                            ShiftSite(line, node["opcode"], count, width)
                        )
            elif kind == "ArraySubscriptExpr":
                base = self._subscript_pool(node)
                if base:
                    inner = [c for c in node.get("inner", []) if isinstance(c, dict)]
                    idx_text = self._src_slice(inner[1]).strip() if len(inner) == 2 else ""
                    self._bucket(f)["subscripts"].append(SubscriptSite(line, base, idx_text))

        for child in node.get("inner", []) or []:
            self.walk(child)
        if pushed:
            self.fn_stack.pop()

    @staticmethod
    def _callee_name(node):
        def find(n):
            if not isinstance(n, dict):
                return None
            k = n.get("kind")
            if k == "DeclRefExpr":
                return (n.get("referencedDecl") or {}).get("name")
            if k == "MemberExpr":
                name = n.get("name") or n.get("member")
                if name:
                    return name
            for c in n.get("inner", []) or []:
                got = find(c)
                if got:
                    return got
            return None

        inner = node.get("inner", []) or []
        return find(inner[0]) if inner else None

    @staticmethod
    def _subscript_pool(node):
        def find(n, depth=0):
            if not isinstance(n, dict) or depth > 4:
                return None
            if n.get("kind") == "MemberExpr":
                name = n.get("name") or n.get("member") or ""
                if name in POOL_NAMES:
                    return name
            for c in n.get("inner", []) or []:
                got = find(c, depth + 1)
                if got:
                    return got
            return None

        inner = node.get("inner", []) or []
        return find(inner[0]) if inner else None


# ---------------------------------------------------------------------------

def augment(models, compile_commands, cache_dir, source_root):
    """Adds clang-found sites to the builtin models in place. Returns False
    on an environment/scan error (reported), True otherwise."""
    if not os.path.isfile(compile_commands):
        print(
            f"{TOOL}: compile_commands.json not found at {compile_commands}; configure "
            "with `cmake -B build -S .` (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default) "
            "or pass --compile-commands",
            file=sys.stderr,
        )
        return False
    clang = _clang_binary()
    if clang is None:
        print(f"{TOOL}: clang frontend requested but no clang/clang++ on PATH", file=sys.stderr)
        return False
    with open(compile_commands, encoding="utf-8") as f:
        entries = json.load(f)
    root = os.path.abspath(source_root)
    src_prefix = os.path.join(root, "src") + os.sep
    tus = []
    for e in entries:
        main = os.path.abspath(os.path.join(e.get("directory", "."), e["file"]))
        if main.startswith(src_prefix):
            tus.append(e)
    if not tus:
        print(f"{TOOL}: no src/ translation units in {compile_commands}", file=sys.stderr)
        return False
    tree_fp = _tree_fingerprint(source_root)
    walker = _Walker(source_root)
    for e in tus:
        data = _dump_tu(clang, e, cache_dir, tree_fp)
        if data is None:
            return False
        walker.walk(data)
    _merge(models, walker.sites, root)
    return True


def _merge(models, sites, root):
    """Folds clang sites into the builtin FileModels: a clang site lands in
    the function whose line range contains it; duplicates (same line + same
    token/op) are dropped -- the builtin pass already saw those."""
    by_abs = {os.path.abspath(m.path): m for m in models}
    for f, buckets in sites.items():
        fm = by_abs.get(f)
        if fm is None:
            continue
        for fn in fm.functions:
            lo, hi = fn.body_open, fn.end_line
            for c in buckets["constructs"]:
                if lo <= c.line <= hi and not any(
                    x.line == c.line and x.token == c.token for x in fn.constructs
                ):
                    fn.constructs.append(c)
            for c in buckets["calls"]:
                if lo <= c.line <= hi and not any(
                    x.line == c.line and x.name == c.name for x in fn.calls
                ):
                    fn.calls.append(c)
            for s in buckets["shifts"]:
                if lo <= s.line <= hi:
                    match = [x for x in fn.shifts if x.line == s.line and x.op.startswith(s.op[:2])]
                    if match:
                        for x in match:
                            x.width = s.width  # clang knows the operand type
                    else:
                        fn.shifts.append(s)
            for s in buckets["subscripts"]:
                if lo <= s.line <= hi and not any(
                    x.line == s.line and x.array == s.array for x in fn.subscripts
                ):
                    fn.subscripts.append(s)
