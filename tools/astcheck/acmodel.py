"""acmodel.py -- the shared source model both astcheck front-ends produce.

The builtin frontend (frontend_builtin.py) fills this model from a lexical
function-scope parse; the clang frontend (frontend_clang.py) augments the
same model with AST-precise sites from `clang -Xclang -ast-dump=json`.
The rules (acrules.py) only ever see this model, so HP1/HP2/HP3 behave
identically under either frontend -- clang just *finds more* and resolves
calls across translation units.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CallSite:
    """A call expression inside a function body. `name` is the unqualified
    callee name (member and namespace qualifiers stripped); resolution to a
    definition happens in the rules against the per-file (builtin) or
    per-TU (clang) function index."""

    name: str
    line: int


@dataclass
class Construct:
    """A hot-path-banned construct (HP1): heap allocation, lock, throw,
    syscall, or iostream. `kind` is the rule bucket, `token` the matched
    source text, `why` a short human explanation used in the finding."""

    kind: str  # "alloc" | "lock" | "throw" | "syscall" | "io"
    line: int
    token: str
    why: str


@dataclass
class ShiftSite:
    """A `<<`/`>>`/`<<=`/`>>=` whose count operand must be proven
    `< operand width` (HP2). `count` is the extracted count expression
    text; `width` the operand bit-width when the frontend could tell
    (clang knows the type; the builtin frontend guesses 64)."""

    line: int
    op: str
    count: str
    width: int = 64


@dataclass
class SubscriptSite:
    """An index into one of the Poptrie pools (HP3): `nodes_[...]`,
    `leaves_[...]`, `direct_[...]`. `index` is the index expression text."""

    line: int
    array: str
    index: str


@dataclass
class FunctionInfo:
    """One function definition with everything the rules need."""

    name: str
    line: int  # line of the head (first head line)
    body_open: int = 0  # line of the opening brace
    end_line: int = 0  # line of the closing brace
    hot: bool = False  # carries poptrie::hot (POPTRIE_HOT)
    exempt: bool = False  # carries poptrie::hot_exempt
    exempt_justified: bool = False  # hot-exempt: comment present
    head: str = ""  # joined head text (code only)
    body: list = field(default_factory=list)  # [(lineno, code_text)]
    calls: list = field(default_factory=list)  # [CallSite]
    constructs: list = field(default_factory=list)  # [Construct]
    shifts: list = field(default_factory=list)  # [ShiftSite]
    subscripts: list = field(default_factory=list)  # [SubscriptSite]

    def body_text(self):
        return "\n".join(t for _ln, t in self.body)


@dataclass
class FileModel:
    """One parsed source file: its functions plus the file-level comment
    lines (index = lineno-1) used for escape-hatch windows, and any shifts
    found outside function bodies (namespace-scope constants)."""

    path: str
    rel: str
    functions: list = field(default_factory=list)  # [FunctionInfo]
    comments: list = field(default_factory=list)  # parallel comment lines
    code: list = field(default_factory=list)  # stripped code lines
    toplevel_shifts: list = field(default_factory=list)  # [ShiftSite]

    def function_index(self):
        """name -> [FunctionInfo] for same-file call resolution."""
        idx = {}
        for fn in self.functions:
            idx.setdefault(fn.name, []).append(fn)
        return idx
