"""acselftest.py -- astcheck's known-bad fixture corpus (repo convention:
every rule ships scenarios that MUST stay flagged, plus clean twins that
must stay clean, or the analyzer itself is broken).

Each fixture is a tiny source tree written to a temp dir and scanned with
the builtin frontend (the corpus must pass on clang-free hosts; CI also
replays the real-tree scan under the clang frontend)."""

from __future__ import annotations

import lintkit


def _hot(body, sig="void f()", mark="POPTRIE_HOT"):
    return f"{mark} {sig} {{\n{body}\n}}\n"


def self_test():
    import accli

    runner = lintkit.CorpusRunner(lambda tmp: accli.scan(tmp, frontend="builtin"))
    expect = runner.expect

    d = "src/dataplane/fix.hpp"  # outside the HP2 always-on dirs
    p = "src/poptrie/fix.hpp"  # inside them

    # ---- HP1: hot-path purity ------------------------------------------
    expect("hot new", {d: _hot("  return new int(3);", "int* f()")}, 1)
    expect(
        "hot new[] and delete[]",
        {d: _hot("  int* p = new int[4];\n  delete[] p;\n  return 0;", "int f()")},
        2,
    )
    expect(
        "hot malloc/free",
        {d: _hot("  void* p = malloc(16);\n  free(p);")},
        2,
    )
    expect(
        "transitive allocation one hop",
        {d: "inline int* helper() { return new int(1); }\n" + _hot("  return helper();", "int* f()")},
        1,
    )
    expect(
        "transitive allocation two hops",
        {
            d: "inline int* deep() { return new int(1); }\n"
            "inline int* mid() { return deep(); }\n" + _hot("  return mid();", "int* f()")
        },
        1,
    )
    expect(
        "hot mutex lock/unlock",
        {d: _hot("  m.lock();\n  m.unlock();", "void f(psync::Mutex& m)")},
        2,
    )
    expect(
        "hot scoped lock_guard",
        {d: _hot("  std::lock_guard<std::mutex> g(m);", "void f(std::mutex& m)")},
        1,
    )
    expect("hot throw", {d: _hot('  throw std::runtime_error("x");')}, 1)
    expect("hot iostream", {d: _hot("  std::cout << 1;")}, 1)
    expect("hot printf", {d: _hot('  printf("%d", 1);')}, 1)
    expect("hot usleep syscall", {d: _hot("  usleep(10);")}, 1)
    expect("hot push_back", {d: _hot("  v.push_back(1);", "void f(std::vector<int>& v)")}, 1)
    expect("hot reserve", {d: _hot("  v.reserve(64);", "void f(std::vector<int>& v)")}, 1)
    expect(
        "hot make_unique",
        {d: _hot("  auto q = std::make_unique<int>(3);\n  (void)q;")},
        1,
    )
    expect(
        "hot_exempt without justification",
        {d: _hot("  std::cout << 1;", "void log_miss()", mark="POPTRIE_HOT_EXEMPT")},
        1,
    )
    # Lane-dispatch probes on the hot path: the kernel choice must be made
    # once at lanes::select() time, not re-probed per burst.
    expect(
        "hot runtime cpuid probe",
        {d: _hot('  if (__builtin_cpu_supports("avx2")) { fast(k, o, n); return; }\n'
                 "  slow(k, o, n);",
                 "void dispatch(const unsigned* k, int* o, unsigned long n)")},
        1,
    )
    expect(
        "hot getenv lane override",
        {d: _hot('  const char* e = getenv("POPTRIE_FORCE_LANES");\n  return e != nullptr;',
                 "bool forced()")},
        1,
    )
    expect(
        "transitive cpuid probe via helper",
        {
            d: 'inline bool has_simd() { return __builtin_cpu_supports("avx2") != 0; }\n'
            + _hot("  return has_simd() ? 2 : 1;", "int width()")
        },
        1,
    )

    # ---- HP2: shift-width safety ---------------------------------------
    expect(
        "unbounded runtime shift count (poptrie dir)",
        {p: "inline unsigned long f(unsigned long k, unsigned s) {\n  return k << s;\n}\n"},
        1,
    )
    expect(
        "literal shift count >= width",
        {p: "inline unsigned long f(unsigned long k) {\n  return k << 64;\n}\n"},
        1,
    )
    expect(
        "unbounded shift in hot function outside poptrie dir",
        {d: _hot("  return x << n;", "unsigned long f(unsigned long x, unsigned n)")},
        1,
    )

    # ---- HP3: pool-index provenance ------------------------------------
    expect(
        "loop counter indexes a pool",
        {
            p: _hot(
                "  unsigned acc = 0;\n  for (unsigned i = 0; i < n; ++i) { acc += nodes_[i].base0; }\n  return acc;",
                "unsigned f(unsigned n) const",
            )
        },
        1,
    )
    expect(
        "raw arithmetic pool index",
        {p: _hot("  return leaves_[base + off * 2];", "unsigned f(unsigned base, unsigned off) const")},
        1,
    )

    # ---- clean twins ----------------------------------------------------
    clean_poptrie = (
        "inline constexpr unsigned kWidth = 64;\n"
        "inline constexpr unsigned kStride = 6;\n"
        "inline constexpr unsigned long kTop = 1ULL << (kWidth - 1);\n"
        "struct Fix {\n"
        "  POPTRIE_HOT unsigned chunk(unsigned long key, unsigned off) const {\n"
        "    if (off >= kWidth) { return 0; }\n"
        "    return static_cast<unsigned>((key << off) >> (kWidth - kStride));\n"
        "  }\n"
        "  POPTRIE_HOT unsigned short lookup(unsigned long key) const {\n"
        "    unsigned cur = root_;\n"
        "    unsigned v = chunk(key, 0);\n"
        "    unsigned long bit = 1ULL << v;\n"
        "    unsigned idx = nodes_[cur].base1 + popcount64(bits & (bit - 1));\n"
        "    return leaves_[idx];\n"
        "  }\n"
        "  POPTRIE_HOT unsigned long spread(unsigned long x) const {\n"
        "    unsigned long acc = 0;\n"
        "    for (unsigned s = 0; s < kWidth; s += kStride) { acc |= x << s; }\n"
        "    return acc;\n"
        "  }\n"
        "  POPTRIE_HOT unsigned short probe(unsigned slot) const {\n"
        "    return direct_[slot];  // index-ok: slot precomputed from extract() by the caller\n"
        "  }\n"
        "};\n"
        "inline unsigned long low_mask(unsigned v) {\n"
        "  return ~0ULL >> (63 - v);  // shift-ok: callers guarantee v in [0,63]\n"
        "}\n"
        "inline unsigned long masked(unsigned long x, unsigned n) {\n"
        "  return x << (n & 63);\n"
        "}\n"
    )
    clean_dataplane = (
        "// hot-exempt: error path only, runs once per malformed packet batch\n"
        "POPTRIE_HOT_EXEMPT inline void report_bad() { printf(\"bad\\n\"); }\n"
        "inline int* cold_make() { return new int(1); }\n"
        "// Cold selection code may probe freely: only hot paths are barred\n"
        "// from runtime dispatch.\n"
        "inline bool select_path() { return __builtin_cpu_supports(\"avx2\") != 0; }\n"
    )
    expect("clean tree", {p: clean_poptrie, d: clean_dataplane}, 0)
    expect(
        "astcheck: allow escape hatch",
        {d: _hot("  // astcheck: allow -- fixture for the last-resort hatch\n  return new int(3);", "int* f()")},
        0,
    )

    return runner.finish("astcheck")
