"""Entry point so `python3 tools/astcheck` works as a directory-run.

Python puts the package directory itself on sys.path for directory
execution; the tools/ parent is added here so the shared lintkit module
resolves. Modules inside the package use flat imports on purpose."""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
for p in (_HERE, os.path.dirname(_HERE)):
    if p not in sys.path:
        sys.path.insert(0, p)

import accli  # noqa: E402

if __name__ == "__main__":
    sys.exit(accli.main(sys.argv[1:]))
