"""accli.py -- astcheck command line: frontend selection + scan + report.

Usage: python3 tools/astcheck [options]
  --source-root DIR      repo root to scan (default: cwd); src/ is analyzed
  --frontend WHICH       auto | builtin | clang   (default auto)
  --compile-commands P   compile_commands.json for the clang frontend
                         (default: <source-root>/build/compile_commands.json)
  --cache-dir DIR        AST-dump cache for the clang frontend
                         (default: <source-root>/build/astcheck-cache)
  --self-test            run the known-bad fixture corpus instead of scanning
  --list-hot             print discovered hot/exempt functions and exit

Front-ends: `clang` drives `clang++ -Xclang -ast-dump=json` over
compile_commands.json (per-TU call graph, type-aware shift widths);
`builtin` is the clang-free lexical fallback so the ctest `lint` label
passes on GCC-only hosts. `auto` picks clang when both the binary and the
compilation database exist, else falls back to builtin with a note.

Exit codes: 0 clean, 1 violations found, 2 usage/environment error
(including a missing compile_commands.json under --frontend clang -- the
lint target must fail loudly there, never skip silently).
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys

import acrules
import frontend_builtin
import lintkit

TOOL = "astcheck"


def _default_db(source_root):
    for cand in ("build", "."):
        p = os.path.join(source_root, cand, "compile_commands.json")
        if os.path.isfile(p):
            return p
    return os.path.join(source_root, "build", "compile_commands.json")


def resolve_frontend(args):
    """Returns ("builtin"| "clang", note_or_None) or (None, error) on a
    hard failure (exit 2)."""
    db = args.compile_commands or _default_db(args.source_root)
    clang = shutil.which("clang++") or shutil.which("clang")
    if args.frontend == "clang":
        if not os.path.isfile(db):
            return None, (
                f"{TOOL}: compile_commands.json not found at {db}; configure with "
                "`cmake -B build -S .` (CMAKE_EXPORT_COMPILE_COMMANDS is ON by "
                "default) or pass --compile-commands"
            )
        if clang is None:
            return None, f"{TOOL}: --frontend clang requested but no clang/clang++ on PATH"
        return "clang", None
    if args.frontend == "builtin":
        return "builtin", None
    # auto
    if clang is not None and os.path.isfile(db):
        return "clang", None
    why = "no clang/clang++ on PATH" if clang is None else f"no compile_commands.json at {db}"
    return "builtin", f"{TOOL}: note: using builtin frontend ({why})"


def scan(source_root, frontend="builtin", compile_commands=None, cache_dir=None):
    """Returns lintkit.report-compatible findings, or None on scan error."""
    if not os.path.isdir(os.path.join(source_root, "src")):
        print(f"{TOOL}: no src/ under {source_root}", file=sys.stderr)
        return None
    models = frontend_builtin.parse_tree(source_root)
    if frontend == "clang":
        import frontend_clang

        db = compile_commands or _default_db(source_root)
        ok = frontend_clang.augment(models, db, cache_dir, source_root)
        if not ok:
            return None
    return acrules.check_all(models)


def list_hot(source_root):
    models = frontend_builtin.parse_tree(source_root)
    for fm in models:
        for fn in fm.functions:
            if fn.hot or fn.exempt:
                tag = "hot" if fn.hot else ("exempt" if fn.exempt_justified else "exempt(UNJUSTIFIED)")
                print(f"{fm.rel}:{fn.line}: {tag} {fn.name}")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(prog=TOOL, description=__doc__, add_help=True)
    parser.add_argument("--source-root", default=".", help="repo root (src/ is scanned)")
    parser.add_argument("--frontend", choices=("auto", "builtin", "clang"), default="auto")
    parser.add_argument("--compile-commands", default=None, metavar="PATH")
    parser.add_argument("--cache-dir", default=None, metavar="DIR")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--list-hot", action="store_true")
    try:
        args = parser.parse_args(argv)
    except SystemExit as e:
        return 0 if e.code == 0 else 2
    if args.self_test:
        import acselftest

        return acselftest.self_test()
    if args.list_hot:
        return list_hot(args.source_root)
    frontend, note = resolve_frontend(args)
    if frontend is None:
        print(note, file=sys.stderr)
        return 2
    if note:
        print(note, file=sys.stderr)
    cache = args.cache_dir or os.path.join(args.source_root, "build", "astcheck-cache")
    return lintkit.report(scan(args.source_root, frontend, args.compile_commands, cache), TOOL)
