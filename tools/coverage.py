#!/usr/bin/env python3
"""coverage.py -- line-coverage reporting with a per-scope floor.

Drives whichever instrumentation the build was configured with
(-DPOPTRIE_COVERAGE=ON):

  * GCC   (--coverage):              aggregates .gcda files via `gcov
                                     --json-format --stdout`;
  * Clang (-fprofile-instr-generate): merges .profraw with llvm-profdata and
                                     exports lcov via `llvm-cov export`.

Either way the result is one per-source-file table of (covered, instrumented)
line counts, merged across translation units (a header line is covered if ANY
TU executed it). The floor (--min-line, percent) is enforced per --scope
(a source-dir-relative prefix such as src/poptrie); files outside every scope
are reported but not gated, so slow-moving corners (tools/, bench/) cannot
mask a regression in the core lookup/update code.

Exit codes: 0 floor met, 1 floor violated (or tests failed), 2 environment or
usage error (no instrumentation data, missing tools).

Typical use (what the `coverage` CMake target runs):
    cmake -B build -DPOPTRIE_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
    cmake --build build -j
    tools/coverage.py --build-dir build --source-dir . --run-ctest \
        --min-line 80 --scope src/poptrie --scope src/rib
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys


def find_files(root, suffix):
    out = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if name.endswith(suffix):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def run_ctest(build_dir, label_exclude):
    cmd = ["ctest", "--test-dir", build_dir, "--output-on-failure", "-j", str(os.cpu_count() or 2)]
    if label_exclude:
        cmd += ["-LE", label_exclude]
    print(f"coverage: running {' '.join(cmd)}", flush=True)
    return subprocess.call(cmd)


class Coverage:
    """file -> {line_number -> max observed count} merged across TUs."""

    def __init__(self, source_dir):
        self.source_dir = os.path.realpath(source_dir)
        self.files = {}  # rel path -> dict line -> count

    def add_line(self, path, line, count):
        real = os.path.realpath(path)
        if not real.startswith(self.source_dir + os.sep):
            return  # system header or generated file: not ours to gate
        rel = os.path.relpath(real, self.source_dir)
        lines = self.files.setdefault(rel, {})
        lines[line] = max(lines.get(line, 0), count)

    def totals(self, prefix=None):
        covered = instrumented = 0
        for rel, lines in self.files.items():
            if prefix is not None and not (rel == prefix or rel.startswith(prefix + os.sep)):
                continue
            instrumented += len(lines)
            covered += sum(1 for c in lines.values() if c > 0)
        return covered, instrumented


def collect_gcov(build_dir, cov):
    gcda = find_files(build_dir, ".gcda")
    if not gcda:
        return False
    gcov = shutil.which("gcov")
    if gcov is None:
        print("coverage: .gcda files present but gcov not found", file=sys.stderr)
        sys.exit(2)
    for path in gcda:
        # Run from the object directory so gcov resolves the matching .gcno.
        proc = subprocess.run(
            [gcov, "--json-format", "--stdout", os.path.basename(path)],
            cwd=os.path.dirname(path),
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            print(f"coverage: gcov failed on {path}: {proc.stderr.strip()}", file=sys.stderr)
            continue
        # --stdout emits one JSON document per input file.
        for doc in proc.stdout.splitlines():
            doc = doc.strip()
            if not doc:
                continue
            try:
                data = json.loads(doc)
            except json.JSONDecodeError:
                continue
            cwd = data.get("current_working_directory", "")
            for f in data.get("files", []):
                src = f["file"]
                if not os.path.isabs(src):
                    src = os.path.join(cwd, src)
                for line in f.get("lines", []):
                    cov.add_line(src, line["line_number"], line["count"])
    return True


def is_elf_executable(path):
    if not os.access(path, os.X_OK) or os.path.isdir(path):
        return False
    try:
        with open(path, "rb") as f:
            return f.read(4) == b"\x7fELF"
    except OSError:
        return False


def collect_llvm(build_dir, cov):
    profraw = find_files(build_dir, ".profraw")
    if not profraw:
        return False
    profdata_tool = shutil.which("llvm-profdata")
    llvm_cov = shutil.which("llvm-cov")
    if profdata_tool is None or llvm_cov is None:
        print("coverage: .profraw files present but llvm-profdata/llvm-cov not found", file=sys.stderr)
        sys.exit(2)
    merged = os.path.join(build_dir, "coverage.profdata")
    subprocess.check_call([profdata_tool, "merge", "-sparse", "-o", merged] + profraw)
    binaries = [p for p in find_files(build_dir, "") if is_elf_executable(p)]
    if not binaries:
        print("coverage: no instrumented binaries found in the build dir", file=sys.stderr)
        sys.exit(2)
    cmd = [llvm_cov, "export", "--format=lcov", f"-instr-profile={merged}", binaries[0]]
    for b in binaries[1:]:
        cmd += ["-object", b]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"coverage: llvm-cov export failed: {proc.stderr.strip()}", file=sys.stderr)
        sys.exit(2)
    current = None
    for line in proc.stdout.splitlines():
        if line.startswith("SF:"):
            current = line[3:]
        elif line.startswith("DA:") and current:
            lineno, count = line[3:].split(",")[:2]
            cov.add_line(current, int(lineno), int(count))
    return True


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--source-dir", required=True)
    parser.add_argument(
        "--run-ctest",
        action="store_true",
        help="run the test suite first to produce fresh counters",
    )
    parser.add_argument(
        "--ctest-label-exclude",
        default="",
        metavar="REGEX",
        help="ctest -LE filter while gathering coverage (e.g. 'fuzz-smoke')",
    )
    parser.add_argument(
        "--min-line",
        type=float,
        default=0.0,
        metavar="PCT",
        help="line-coverage floor in percent, enforced per --scope",
    )
    parser.add_argument(
        "--scope",
        action="append",
        default=[],
        metavar="PREFIX",
        help="source-dir-relative prefix the floor applies to (repeatable)",
    )
    args = parser.parse_args(argv)

    if not os.path.isdir(args.build_dir):
        print(f"coverage: not a directory: {args.build_dir}", file=sys.stderr)
        return 2

    tests_failed = False
    if args.run_ctest:
        # Clang's runtime writes .profraw per process; give every process a
        # unique file inside the build dir so nothing lands in cwd.
        os.environ.setdefault(
            "LLVM_PROFILE_FILE", os.path.join(os.path.abspath(args.build_dir), "prof-%p.profraw")
        )
        if run_ctest(args.build_dir, args.ctest_label_exclude) != 0:
            # Keep going: a coverage report for a failing suite is still
            # useful for debugging, but the overall run must not pass.
            print("coverage: ctest reported failures", file=sys.stderr)
            tests_failed = True

    cov = Coverage(args.source_dir)
    got = collect_gcov(args.build_dir, cov) or collect_llvm(args.build_dir, cov)
    if not got:
        print(
            "coverage: no .gcda or .profraw data under the build dir.\n"
            "Reconfigure with -DPOPTRIE_COVERAGE=ON (Debug recommended), rebuild,"
            " and run the tests (or pass --run-ctest).",
            file=sys.stderr,
        )
        return 2

    def pct(covered, instrumented):
        return 100.0 * covered / instrumented if instrumented else 100.0

    print()
    print(f"{'file':60} {'covered':>9} {'lines':>7} {'pct':>7}")
    for rel in sorted(cov.files):
        c, t = cov.totals(rel)
        print(f"{rel:60} {c:9d} {t:7d} {pct(c, t):6.1f}%")

    failed = tests_failed
    print()
    for scope in args.scope or ["."]:
        prefix = None if scope == "." else scope.rstrip("/")
        c, t = cov.totals(prefix)
        p = pct(c, t)
        status = "ok"
        if t == 0:
            status = "FAIL (no instrumented lines -- wrong --scope?)"
            failed = True
        elif p < args.min_line:
            status = f"FAIL (floor {args.min_line:.1f}%)"
            failed = True
        print(f"scope {scope:20} {c}/{t} lines = {p:.1f}%  [{status}]")
    c, t = cov.totals(None)
    print(f"total {'(all sources)':20} {c}/{t} lines = {pct(c, t):.1f}%")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
