// tools/lpmd — the LPM forwarding daemon: the repo's first binary that
// behaves like a router rather than a library.
//
// Builds (or loads) a routing table, compiles the selected engine, spawns N
// forwarding workers behind sharded SPSC rings, and feeds them synthetic
// traffic (just-in-time xorshift addresses or a pre-materialized §4.7-style
// trace) for a fixed duration or until SIGINT. Optionally a control-plane
// thread replays a BGP-style update feed through the Router concurrently
// with forwarding (--engine poptrie only), exercising §3.5 end-to-end.
// Periodic stats lines go to stdout; a final summary (and --json record)
// prints on shutdown.
//
// Exit codes follow the poptrie_fsck convention: 0 clean, 1 --check
// violation (nothing forwarded, ring drops, or churn shortfall), 2
// usage/input error.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchkit/cli.hpp"
#include "benchkit/json.hpp"
#include "benchkit/provenance.hpp"
#include "benchkit/stats.hpp"
#include "dataplane/churn.hpp"
#include "dataplane/dataplane.hpp"
#include "poptrie/config.hpp"
#include "dataplane/engines.hpp"
#include "rib/aggregate.hpp"
#include "snapshot/snapshot.hpp"
#include "workload/tablegen.hpp"
#include "workload/tableio.hpp"
#include "workload/trafficgen.hpp"
#include "workload/xorshift.hpp"

namespace {

volatile std::sig_atomic_t g_interrupted = 0;
extern "C" void handle_signal(int) { g_interrupted = 1; }

// SIGUSR1 requests a mid-run snapshot save (--snapshot-save): the producer
// loop notices the flag and runs the save through the same pause handshake
// compaction uses, so the image is written at a true quiescent point.
volatile std::sig_atomic_t g_snapshot_requested = 0;
extern "C" void handle_sigusr1(int) { g_snapshot_requested = 1; }

struct Options {
    std::string engine = "poptrie";
    std::string lanes;  // pipelined engine: forced lane path ("" = auto/env)
    unsigned workers = 4;
    std::size_t routes = 50'000;
    std::string file;  // load table from file instead of generating
    double duration = 5.0;
    double rate_mpps = 0;  // 0 = unpaced
    std::string pattern = "random";
    std::size_t burst = 256;
    std::size_t ring_capacity = std::size_t{1} << 14;
    bool pin = false;
    unsigned direct_bits = 18;
    std::size_t churn_updates = 0;
    double churn_rate = 0;
    std::size_t compact_every = 0;  // compact the FIB every N churn updates
    double stats_interval = 1.0;
    bool json = false;
    std::string json_out;
    bool check = false;
    std::uint64_t seed = 1;
    std::string snapshot_save;       // write a FIB image here (poptrie only)
    std::string snapshot_load;       // serve this FIB image (engine snapshot)
    std::string snapshot_placement = "auto";  // auto | map | copy
};

struct RunResult {
    dataplane::StatsSnapshot stats;
    benchkit::LatencyPercentiles latency;
    double elapsed = 0;
    std::uint64_t churn_applied = 0;
    std::uint64_t pool_growths = 0;
    std::uint64_t compactions = 0;
    std::uint64_t snapshots_saved = 0;
    bool has_fib_stats = false;
    poptrie::Stats fib_stats{};  // post-run fragmentation view (poptrie only)
    std::string fib_backing;     // arena backing of the served FIB, if any
};

/// One-line fragmentation view of both FIB pools, printed at each quiescent
/// point (compaction, final summary) — the same counters poptrie_fsck
/// --stats reports.
void print_frag(const poptrie::Stats& s, const char* tag)
{
    std::printf("[%s] node pool used=%zu hw=%zu free_blocks=%zu | "
                "leaf pool used=%zu hw=%zu free_blocks=%zu\n",
                tag, s.node_pool_used, s.node_high_water, s.node_free_blocks,
                s.leaf_pool_used, s.leaf_high_water, s.leaf_free_blocks);
}

/// Producer loop + periodic stats, shared by every engine instantiation.
/// `compact_fib` (poptrie + --compact-every only) runs at churn quiescent
/// points: the churn thread is parked and the worker pool stopped around the
/// call, then both resume — the storage swap inside Poptrie::compact() is
/// not reader-safe, so the whole pipeline pauses.
template <class Engine>
RunResult run_pipeline(dataplane::Dataplane<Engine>& dp, const Options& opt,
                       const std::vector<std::uint32_t>& trace,
                       dataplane::ChurnRunner* churn,
                       const std::function<void()>& compact_fib = {},
                       const std::function<void()>& save_snapshot = {})
{
    using clock = std::chrono::steady_clock;
    dp.start();

    std::vector<std::uint32_t> chunk(opt.burst);
    workload::Xorshift128 rng(opt.seed ^ 0xFEEDF00D);
    std::size_t trace_pos = 0;
    std::uint64_t produced = 0;
    const auto t0 = clock::now();
    const auto interval = std::chrono::duration_cast<clock::duration>(
        std::chrono::duration<double>(opt.stats_interval));
    auto next_stats = t0 + interval;
    dataplane::StatsSnapshot last_snap;
    double last_t = 0;
    std::uint64_t next_compact =
        opt.compact_every > 0 ? opt.compact_every : ~std::uint64_t{0};
    std::uint64_t compactions = 0;
    std::uint64_t snapshots_saved = 0;

    const auto elapsed_s = [&] {
        return std::chrono::duration<double>(clock::now() - t0).count();
    };

    while (g_interrupted == 0) {
        const double t = elapsed_s();
        if (opt.duration > 0 && t >= opt.duration) break;

        // Pacing: with --rate-mpps, don't run ahead of the address budget.
        if (opt.rate_mpps > 0 &&
            static_cast<double>(produced) > t * opt.rate_mpps * 1e6) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else {
            if (opt.pattern == "trace") {
                for (std::size_t i = 0; i < opt.burst; ++i) {
                    chunk[i] = trace[trace_pos++];
                    if (trace_pos == trace.size()) trace_pos = 0;
                }
            } else {
                for (std::size_t i = 0; i < opt.burst; ++i) chunk[i] = rng.next();
            }
            dp.offer(chunk.data(), opt.burst);
            // Pace on offered load, not accepted: a saturated ring must not
            // make the producer spin faster (drops then reflect overload).
            produced += opt.burst;
        }

        // SIGUSR1-triggered snapshot: same pause handshake as compaction —
        // the churn writer (if any) parks, the workers join, the image is
        // written at a genuine quiescent point, then everything resumes.
        if (save_snapshot && g_snapshot_requested != 0) {
            g_snapshot_requested = 0;
            const auto pause_start = clock::now();
            if (churn != nullptr) churn->pause();
            dp.stop();
            save_snapshot();
            dp.start();
            if (churn != nullptr) churn->resume();
            ++snapshots_saved;
            if (opt.rate_mpps > 0) {
                const double paused =
                    std::chrono::duration<double>(clock::now() - pause_start).count();
                produced += static_cast<std::uint64_t>(paused * opt.rate_mpps * 1e6);
            }
        }

        if (compact_fib && churn != nullptr && churn->applied() >= next_compact) {
            const auto pause_start = clock::now();
            churn->pause();  // parks the writer (or joins a finished feed)
            dp.stop();       // joins the workers: no reader holds a guard
            compact_fib();
            dp.start();
            churn->resume();
            ++compactions;
            next_compact = churn->applied() + opt.compact_every;
            // Forfeit the paused window's address budget: catching it up
            // would burst into the just-restarted rings faster than the
            // workers drain and count the pause as ring drops.
            if (opt.rate_mpps > 0) {
                const double paused =
                    std::chrono::duration<double>(clock::now() - pause_start).count();
                produced += static_cast<std::uint64_t>(paused * opt.rate_mpps * 1e6);
            }
        }

        const auto now = clock::now();
        if (now >= next_stats) {
            const auto snap = dp.stats();
            const double now_s = std::chrono::duration<double>(now - t0).count();
            const double mlps =
                benchkit::to_mlps(snap.lookups() - last_snap.lookups(), now_s - last_t);
            const std::string churn_note =
                churn != nullptr ? " churn=" + std::to_string(churn->applied()) : "";
            std::printf("[%7.2fs] fwd=%llu miss=%llu drops=%llu rate=%s%s\n", now_s,
                        static_cast<unsigned long long>(snap.forwarded),
                        static_cast<unsigned long long>(snap.no_route),
                        static_cast<unsigned long long>(snap.ring_drops),
                        benchkit::fmt_mlps(mlps).c_str(), churn_note.c_str());
            std::fflush(stdout);
            last_snap = snap;
            last_t = now_s;
            next_stats = now + interval;
        }
    }

    RunResult r;
    r.elapsed = elapsed_s();
    dp.stop();
    // quiescent: dp.stop() joined every worker; the churn thread (if any)
    // only touches the router, never the per-worker latency recorders.
    const psync::QuiescentSection quiescent;
    r.stats = dp.stats();
    r.latency = benchkit::latency_percentiles(dp.merged_latency());
    if (churn != nullptr) r.churn_applied = churn->applied();
    r.compactions = compactions;
    r.snapshots_saved = snapshots_saved;
    return r;
}

int finish(const Options& opt, const RunResult& r, std::string_view engine_name)
{
    std::printf("\n--- lpmd summary (%s, %u workers, %.2fs) ---\n",
                std::string(engine_name).c_str(), opt.workers, r.elapsed);
    std::printf("offered    %llu\n", static_cast<unsigned long long>(r.stats.offered));
    std::printf("forwarded  %llu\n", static_cast<unsigned long long>(r.stats.forwarded));
    std::printf("no-route   %llu\n", static_cast<unsigned long long>(r.stats.no_route));
    std::printf("ring-drops %llu\n", static_cast<unsigned long long>(r.stats.ring_drops));
    std::printf("batches    %llu\n", static_cast<unsigned long long>(r.stats.batches));
    std::printf("rate       %s\n",
                benchkit::fmt_mlps(benchkit::to_mlps(r.stats.lookups(), r.elapsed)).c_str());
    std::printf("latency/burst p50=%.0fns p99=%.0fns p99.9=%.0fns (n=%zu)\n",
                r.latency.p50, r.latency.p99, r.latency.p999, r.latency.n);
    if (opt.churn_updates > 0)
        std::printf("churn      %llu updates applied\n",
                    static_cast<unsigned long long>(r.churn_applied));
    if (opt.compact_every > 0)
        std::printf("compact    %llu passes (every %zu updates)\n",
                    static_cast<unsigned long long>(r.compactions), opt.compact_every);
    if (!opt.snapshot_save.empty())
        std::printf("snapshot   %llu mid-run save(s) + final image %s\n",
                    static_cast<unsigned long long>(r.snapshots_saved),
                    opt.snapshot_save.c_str());
    if (!r.fib_backing.empty())
        std::printf("backing    %s\n", r.fib_backing.c_str());
    if (r.has_fib_stats) print_frag(r.fib_stats, "summary");

    if (opt.json || !opt.json_out.empty()) {
        benchkit::JsonRecords rec;
        rec.begin_record();
        rec.field("tool", std::string_view{"lpmd"});
        rec.field("engine", engine_name);
        rec.field("workers", std::uint64_t{opt.workers});
        rec.field("elapsed_s", r.elapsed);
        rec.field("offered", r.stats.offered);
        rec.field("forwarded", r.stats.forwarded);
        rec.field("no_route", r.stats.no_route);
        rec.field("ring_drops", r.stats.ring_drops);
        rec.field("mlps", benchkit::to_mlps(r.stats.lookups(), r.elapsed));
        rec.field("lat_p50_ns", r.latency.p50);
        rec.field("lat_p99_ns", r.latency.p99);
        rec.field("lat_p999_ns", r.latency.p999);
        rec.field("churn_applied", r.churn_applied);
        rec.field("compactions", r.compactions);
        // Benchkit provenance must distinguish a FIB built in-process from
        // one restored off disk, and say which pages serve it.
        rec.field("fib_source", engine_name == "snapshot"
                                    ? std::string_view{"snapshot"}
                                    : std::string_view{"built"});
        if (!r.fib_backing.empty()) rec.field("fib_backing", r.fib_backing);
        rec.field("snapshots_saved", r.snapshots_saved);
        if (r.has_fib_stats) {
            rec.field("node_free_blocks", std::uint64_t{r.fib_stats.node_free_blocks});
            rec.field("leaf_free_blocks", std::uint64_t{r.fib_stats.leaf_free_blocks});
            rec.field("node_high_water", std::uint64_t{r.fib_stats.node_high_water});
            rec.field("leaf_high_water", std::uint64_t{r.fib_stats.leaf_high_water});
        }
        benchkit::stamp_provenance(rec);
        if (opt.json) rec.write(stdout);
        if (!opt.json_out.empty() && !rec.write_file(opt.json_out)) {
            std::fprintf(stderr, "lpmd: cannot write %s\n", opt.json_out.c_str());
            return 2;
        }
    }

    if (opt.check) {
        bool ok = true;
        if (r.stats.forwarded == 0) {
            std::fprintf(stderr, "lpmd --check: FAILED, nothing was forwarded\n");
            ok = false;
        }
        if (r.stats.ring_drops != 0) {
            std::fprintf(stderr, "lpmd --check: FAILED, %llu ring drops\n",
                         static_cast<unsigned long long>(r.stats.ring_drops));
            ok = false;
        }
        if (opt.churn_updates > 0 && r.churn_applied < opt.churn_updates) {
            std::fprintf(stderr, "lpmd --check: FAILED, churn applied %llu < %zu\n",
                         static_cast<unsigned long long>(r.churn_applied),
                         opt.churn_updates);
            ok = false;
        }
        if (r.pool_growths != 0) {
            std::fprintf(stderr,
                         "lpmd --check: FAILED, FIB pools grew %llu time(s) under "
                         "live readers (raise headroom)\n",
                         static_cast<unsigned long long>(r.pool_growths));
            ok = false;
        }
        if (!ok) return 1;
        std::printf("lpmd --check: ok\n");
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help(
            "lpmd",
            "  --engine=E          poptrie | pipelined | snapshot | sail | dir24 |\n"
            "                      treebitmap (default poptrie)\n"
            "  --lanes=P           pipelined engine lane path: scalar | pipelined |\n"
            "                      avx2 | avx512 (default: POPTRIE_FORCE_LANES, else\n"
            "                      best usable; an unusable forced path exits 2)\n"
            "  --workers=N         forwarding threads (default 4)\n"
            "  --routes=N          synthetic table size (default 50000)\n"
            "  --file=PATH         load IPv4 table from file instead of generating\n"
            "  --duration=S        run time in seconds, 0 = until SIGINT (default 5)\n"
            "  --rate-mpps=X       paced offered load, 0 = unpaced (default 0)\n"
            "  --pattern=P         random | trace (default random)\n"
            "  --burst=N           worker burst / producer chunk size (default 256)\n"
            "  --ring-capacity=N   per-worker ring capacity (default 16384)\n"
            "  --pin               pin workers to CPUs\n"
            "  --direct-bits=N     poptrie direct-pointing bits (default 18)\n"
            "  --churn-updates=N   concurrent route updates to apply (default 0)\n"
            "  --churn-rate=R      updates/s pacing, 0 = unpaced (default 0)\n"
            "  --compact-every=N   compact the FIB every N churn updates, pausing\n"
            "                      the pipeline at a quiescent point (default 0)\n"
            "  --snapshot-save=F   write a FIB image to F at shutdown, and at any\n"
            "                      quiescent point on SIGUSR1 (--engine poptrie)\n"
            "  --snapshot-load=F   serve the FIB image F (--engine snapshot)\n"
            "  --snapshot-placement=P  auto | map | copy (default auto): mmap the\n"
            "                      image or copy it into arena pages\n"
            "  --stats-interval=S  seconds between stats lines (default 1)\n"
            "  --json              print a machine-readable summary record\n"
            "  --json-out=FILE     write the summary record to FILE (benchctl)\n"
            "  --check             exit 1 unless forwarded>0 and ring-drops==0"))
        return 0;

    Options opt;
    opt.engine = args.get("engine", opt.engine);
    opt.lanes = args.get("lanes", "");
    opt.workers = static_cast<unsigned>(args.get_u64("workers", opt.workers));
    opt.routes = args.get_u64("routes", opt.routes);
    opt.file = args.get("file", "");
    opt.duration = args.get_double("duration", opt.duration);
    opt.rate_mpps = args.get_double("rate-mpps", opt.rate_mpps);
    opt.pattern = args.get("pattern", opt.pattern);
    opt.burst = args.get_u64("burst", opt.burst);
    opt.ring_capacity = args.get_u64("ring-capacity", opt.ring_capacity);
    opt.pin = args.has("pin");
    opt.direct_bits = static_cast<unsigned>(args.get_u64("direct-bits", opt.direct_bits));
    opt.churn_updates = args.get_u64("churn-updates", opt.churn_updates);
    opt.churn_rate = args.get_double("churn-rate", opt.churn_rate);
    opt.compact_every = args.get_u64("compact-every", opt.compact_every);
    opt.stats_interval = args.get_double("stats-interval", opt.stats_interval);
    opt.json = args.has("json");
    opt.json_out = args.json_out();
    opt.check = args.has("check");
    opt.seed = args.seed(opt.seed);
    opt.snapshot_save = args.get("snapshot-save", "");
    opt.snapshot_load = args.get("snapshot-load", "");
    opt.snapshot_placement = args.get("snapshot-placement", opt.snapshot_placement);

    if (opt.workers == 0 || opt.burst == 0 || opt.stats_interval <= 0) {
        std::fprintf(stderr,
                     "lpmd: --workers, --burst and --stats-interval must be nonzero\n");
        return 2;
    }
    if (opt.pattern != "random" && opt.pattern != "trace") {
        std::fprintf(stderr, "lpmd: unknown --pattern '%s'\n", opt.pattern.c_str());
        return 2;
    }
    const bool engine_known = opt.engine == "poptrie" || opt.engine == "pipelined" ||
                              opt.engine == "snapshot" || opt.engine == "sail" ||
                              opt.engine == "dir24" || opt.engine == "treebitmap";
    if (!engine_known) {
        std::fprintf(stderr, "lpmd: unknown --engine '%s'\n", opt.engine.c_str());
        return 2;
    }
    if (opt.churn_updates > 0 && opt.engine != "poptrie") {
        // The pipelined engine's SIMD/plain-load paths are sound only with no
        // concurrent updater (kSupportsChurn = false); the baselines have no
        // update machinery at all.
        std::fprintf(stderr, "lpmd: --churn-updates requires --engine poptrie\n");
        return 2;
    }
    if (!opt.lanes.empty() && opt.engine != "pipelined") {
        std::fprintf(stderr, "lpmd: --lanes requires --engine pipelined\n");
        return 2;
    }
    // Resolve the lane path up front so a forced-but-unusable path fails
    // before any table is built. select() never silently falls back: an
    // explicit --lanes (or POPTRIE_FORCE_LANES) naming an unusable path is
    // an error here, not a degraded run.
    poptrie::lanes::Selection lane_sel;
    if (opt.engine == "pipelined") {
        std::optional<poptrie::lanes::LanePath> request;
        if (!opt.lanes.empty()) {
            request = poptrie::lanes::parse(opt.lanes);
            if (!request) {
                std::fprintf(stderr, "lpmd: unknown --lanes '%s'\n", opt.lanes.c_str());
                return 2;
            }
        }
        lane_sel = poptrie::lanes::select(request);
        if (!lane_sel.ok) {
            std::fprintf(stderr, "lpmd: lane path unusable: %s\n",
                         lane_sel.note.c_str());
            return 2;
        }
    }
    if (opt.compact_every > 0 && opt.churn_updates == 0) {
        std::fprintf(stderr, "lpmd: --compact-every requires --churn-updates\n");
        return 2;
    }
    if (!opt.snapshot_save.empty() && opt.engine != "poptrie") {
        std::fprintf(stderr, "lpmd: --snapshot-save requires --engine poptrie\n");
        return 2;
    }
    if (opt.engine == "snapshot" && opt.snapshot_load.empty()) {
        std::fprintf(stderr, "lpmd: --engine snapshot requires --snapshot-load\n");
        return 2;
    }
    if (!opt.snapshot_load.empty() && opt.engine != "snapshot") {
        std::fprintf(stderr, "lpmd: --snapshot-load requires --engine snapshot\n");
        return 2;
    }
    if (opt.engine == "snapshot" && opt.pattern == "trace") {
        // The §4.7-style trace is materialized from the routing table; a
        // restored image carries no RIB to derive destinations from.
        std::fprintf(stderr, "lpmd: --engine snapshot supports --pattern random only\n");
        return 2;
    }
    snapshot::LoadOptions load_opt;
    if (opt.snapshot_placement == "map") {
        load_opt.placement = snapshot::LoadOptions::Placement::kMap;
    } else if (opt.snapshot_placement == "copy") {
        load_opt.placement = snapshot::LoadOptions::Placement::kCopy;
    } else if (opt.snapshot_placement != "auto") {
        std::fprintf(stderr, "lpmd: unknown --snapshot-placement '%s'\n",
                     opt.snapshot_placement.c_str());
        return 2;
    }

    try {
        // --- warm start: serve a restored image, no table build at all ---
        if (opt.engine == "snapshot") {
            snapshot::SnapshotFib4 fib =
                snapshot::SnapshotFib4::load_file(opt.snapshot_load, load_opt);
            const auto mem = fib.memory_report();
            std::printf("lpmd: snapshot %s: %llu nodes, %llu leaves, "
                        "direct-bits=%u, %llu bytes, backing=%s\n",
                        opt.snapshot_load.c_str(),
                        static_cast<unsigned long long>(fib.node_count()),
                        static_cast<unsigned long long>(fib.leaf_count()),
                        fib.header().direct_bits,
                        static_cast<unsigned long long>(fib.image_bytes()),
                        alloc::backing_name(mem.backing));
            benchkit::note_arena_backing(alloc::backing_name(mem.backing));

            std::signal(SIGINT, handle_signal);
            std::signal(SIGTERM, handle_signal);

            dataplane::DataplaneConfig dcfg;
            dcfg.workers = opt.workers;
            dcfg.ring_capacity = opt.ring_capacity;
            dcfg.burst = opt.burst;
            dcfg.pin_cpus = opt.pin;

            dataplane::Dataplane<dataplane::SnapshotEngine> dp{
                dataplane::SnapshotEngine{fib}, dcfg};
            auto r = run_pipeline(dp, opt, {}, nullptr);
            r.fib_backing = alloc::backing_name(mem.backing);
            return finish(opt, r, "snapshot");
        }

        // --- table ---
        rib::RouteList<netbase::Ipv4Addr> routes;
        if (!opt.file.empty()) {
            routes = workload::load_table4_file(opt.file);
        } else {
            workload::TableGenConfig tg;
            tg.seed = opt.seed;
            tg.target_routes = opt.routes;
            tg.next_hops = 64;
            routes = workload::generate_table(tg);
        }
        rib::RadixTrie<netbase::Ipv4Addr> rib;
        rib.insert_all(routes);
        std::printf("lpmd: %zu routes, engine=%s, workers=%u, pattern=%s\n",
                    routes.size(), opt.engine.c_str(), opt.workers,
                    opt.pattern.c_str());

        std::vector<std::uint32_t> trace;
        if (opt.pattern == "trace") {
            workload::TraceConfig tc;
            tc.seed = opt.seed + 7;
            tc.packets = 2'000'000;
            tc.distinct_destinations = std::min<std::size_t>(200'000, routes.size() * 4);
            trace = workload::make_real_trace_like(rib, tc);
        }

        std::signal(SIGINT, handle_signal);
        std::signal(SIGTERM, handle_signal);

        dataplane::DataplaneConfig dcfg;
        dcfg.workers = opt.workers;
        dcfg.ring_capacity = opt.ring_capacity;
        dcfg.burst = opt.burst;
        dcfg.pin_cpus = opt.pin;

        if (opt.engine == "poptrie") {
            poptrie::Config pcfg;
            pcfg.direct_bits = opt.direct_bits;
            // Pool growth is not safe under concurrent lookups (§3.5), so a
            // churning daemon builds with enough headroom that the update
            // feed never has to grow; --check verifies it indeed did not.
            if (opt.churn_updates > 0) pcfg.pool_headroom_log2 = 6;
            router::Router4 router{pcfg};
            dataplane::load_routes(router, routes);
            // Bulk loading grew the pools to a near-exact fit; apply the
            // headroom now, while no forwarding thread is running yet.
            if (opt.churn_updates > 0) {
                // quiescent: no forwarding or churn thread has started.
                const psync::QuiescentSection quiescent;
                router.reserve_fib_headroom();
            }
            // Growths so far happened quiescently (bulk load); only growth
            // after this point runs under live readers.
            const auto growths_before = router.fib().update_counters().pool_growths;
            benchkit::note_arena_backing(
                alloc::backing_name(router.fib().memory_report().backing));
            dataplane::Dataplane<dataplane::PoptrieEngine> dp{
                dataplane::PoptrieEngine{router}, dcfg};
            std::unique_ptr<dataplane::ChurnRunner> churn;
            if (opt.churn_updates > 0)
                churn = std::make_unique<dataplane::ChurnRunner>(
                    router, routes,
                    dataplane::ChurnConfig{.updates = opt.churn_updates,
                                           .rate_per_sec = opt.churn_rate});
            const std::function<void()> compact_fn =
                opt.compact_every > 0 ? std::function<void()>([&router] {
                    // quiescent: run_pipeline only invokes this after
                    // churn->pause() parked the writer and dp.stop() joined
                    // the workers (the std::function boundary hides the
                    // caller's capabilities from the analysis).
                    const psync::QuiescentSection quiescent;
                    router.compact_fib();
                    print_frag(router.fib().stats(), "compact");
                })
                                      : std::function<void()>{};
            const std::function<void()> save_fn =
                !opt.snapshot_save.empty() ? std::function<void()>([&router, &opt] {
                    // quiescent: run_pipeline only invokes this after the
                    // churn writer is parked and the workers are joined (the
                    // std::function boundary hides the caller's
                    // capabilities from the analysis). Compact first so the
                    // image is the canonical minimal layout.
                    const psync::QuiescentSection quiescent;
                    router.compact_fib();
                    router.save_fib_snapshot(opt.snapshot_save);
                    std::printf("[snapshot] image written to %s\n",
                                opt.snapshot_save.c_str());
                    std::fflush(stdout);
                })
                                           : std::function<void()>{};
            if (!opt.snapshot_save.empty()) std::signal(SIGUSR1, handle_sigusr1);
            auto r = run_pipeline(dp, opt, trace, churn.get(), compact_fn, save_fn);
            if (churn) churn->stop_and_join();
            {
                // writer: workers and churn thread joined above; only this
                // thread still touches the domain.
                const psync::EbrWriterSection writer;
                router.drain();
            }
            r.pool_growths = router.fib().update_counters().pool_growths - growths_before;
            if (!opt.snapshot_save.empty()) {
                // Final image: everything is joined and drained, so this is
                // the run's last quiescent point.
                // quiescent: workers stopped, churn joined, domain drained.
                const psync::QuiescentSection quiescent;
                router.compact_fib();
                router.save_fib_snapshot(opt.snapshot_save);
                std::printf("[snapshot] image written to %s\n", opt.snapshot_save.c_str());
            }
            r.fib_backing = alloc::backing_name(router.fib().memory_report().backing);
            if (opt.churn_updates > 0) {
                // Quiescent now (workers stopped, churn joined): snapshot the
                // fragmentation counters for the summary / JSON record.
                r.fib_stats = router.fib().stats();
                r.has_fib_stats = true;
            }
            return finish(opt, r, "poptrie");
        }
        if (opt.engine == "pipelined") {
            // Same build as the poptrie engine, then served read-only through
            // the resolved lane path. No churn machinery exists in this
            // configuration (rejected above), so the PlainView hoist is sound.
            poptrie::Config pcfg;
            pcfg.direct_bits = opt.direct_bits;
            router::Router4 router{pcfg};
            dataplane::load_routes(router, routes);
            benchkit::note_arena_backing(
                alloc::backing_name(router.fib().memory_report().backing));
            dataplane::PipelinedEngine engine{router.fib(), lane_sel.path};
            const std::string ename{engine.name()};
            std::printf("lpmd: lane path %s (%s)\n",
                        std::string(poptrie::lanes::name(lane_sel.path)).c_str(),
                        lane_sel.forced ? "forced" : "auto");
            dataplane::Dataplane<dataplane::PipelinedEngine> dp{std::move(engine),
                                                                dcfg};
            return finish(opt, run_pipeline(dp, opt, trace, nullptr), ename);
        }
        // Read-only baselines are compiled from the aggregated FIB source,
        // matching how every bench builds them (bench/common.hpp).
        const auto fib_src = rib::aggregate(rib);
        if (opt.engine == "sail") {
            const baselines::Sail sail{fib_src};
            dataplane::Dataplane<dataplane::SailEngine> dp{
                dataplane::SailEngine{sail, "sail"}, dcfg};
            return finish(opt, run_pipeline(dp, opt, trace, nullptr), "sail");
        }
        if (opt.engine == "dir24") {
            const baselines::Dir24 dir24{fib_src};
            dataplane::Dataplane<dataplane::Dir24Engine> dp{
                dataplane::Dir24Engine{dir24, "dir24"}, dcfg};
            return finish(opt, run_pipeline(dp, opt, trace, nullptr), "dir24");
        }
        const baselines::TreeBitmap16 tbm{fib_src};
        dataplane::Dataplane<dataplane::TreeBitmapEngine> dp{
            dataplane::TreeBitmapEngine{tbm, "treebitmap"}, dcfg};
        return finish(opt, run_pipeline(dp, opt, trace, nullptr), "treebitmap");
    } catch (const baselines::StructuralLimit& e) {
        std::fprintf(stderr, "lpmd: engine cannot encode this table: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "lpmd: %s\n", e.what());
        return 2;
    }
}
