#!/usr/bin/env python3
"""End-to-end contract tests for tools/astcheck.

Each scenario copies the real src/ tree into a scratch root, optionally seeds
a violation, and runs astcheck as a subprocess — proving the analyzer catches
regressions in the *actual* tree, not only in its synthetic self-test corpus:

  * clean_copy           an unmodified copy scans clean (exit 0);
  * seeded_hp1_new       a heap allocation injected into the real
                         Poptrie::lookup_impl body fails the scan with HP1
                         (this is the CI-leg guarantee: hot-path `new` cannot
                         land);
  * seeded_hp1_new_file  a brand-new hot function allocating is also caught
                         (covers files the tree does not have yet);
  * seeded_hp2_shift     an unproven variable shift in src/poptrie fails
                         with HP2;
  * missing_db_clang     --frontend clang without a compile_commands.json is
                         a usage error (exit 2) with the configure hint.

Exit code: 0 when every scenario passes, 1 otherwise.
"""
import os
import shutil
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ASTCHECK = os.path.join(REPO, "tools", "astcheck")

LOOKUP_IMPL_SIG = "NextHop lookup_impl(value_type key, unsigned direct_bits) const noexcept"

SEEDED_HOT_FILE = """\
// seeded fixture written by tools/test_astcheck.py -- never committed.
#pragma once
#include "sync/annotations.hpp"

namespace poptrie {

POPTRIE_HOT inline int* seeded_hot_alloc()
{
    return new int(42);
}

}  // namespace poptrie
"""

SEEDED_SHIFT_FILE = """\
// seeded fixture written by tools/test_astcheck.py -- never committed.
#pragma once
#include <cstdint>

namespace poptrie {

inline std::uint64_t seeded_unbounded_shift(std::uint64_t x, unsigned n)
{
    return x << n;
}

}  // namespace poptrie
"""


def run_astcheck(root, *extra):
    return subprocess.run(
        [sys.executable, ASTCHECK, "--source-root", root, *extra],
        capture_output=True, text=True, timeout=120)


def copy_src(tmp):
    root = os.path.join(tmp, "tree")
    os.makedirs(root)
    shutil.copytree(os.path.join(REPO, "src"), os.path.join(root, "src"))
    return root


def inject_into_lookup_impl(root, stmt):
    """Inserts `stmt` as the first statement of Poptrie::lookup_impl."""
    path = os.path.join(root, "src", "poptrie", "poptrie.hpp")
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()
    for i, line in enumerate(lines):
        if LOOKUP_IMPL_SIG in line:
            for j in range(i + 1, min(i + 4, len(lines))):
                if lines[j].strip() == "{":
                    lines.insert(j + 1, "        " + stmt + "\n")
                    with open(path, "w", encoding="utf-8") as f:
                        f.writelines(lines)
                    return
    raise AssertionError(
        "could not find Poptrie::lookup_impl in poptrie.hpp -- "
        "update LOOKUP_IMPL_SIG in tools/test_astcheck.py")


def main():
    failures = []

    def check(name, cond, detail=""):
        if cond:
            print(f"  ok: {name}")
        else:
            failures.append(name)
            print(f"  FAIL: {name}{': ' + detail if detail else ''}")

    with tempfile.TemporaryDirectory(prefix="astcheck_e2e_") as tmp:
        root = copy_src(tmp)
        r = run_astcheck(root, "--frontend", "builtin")
        check("clean_copy", r.returncode == 0, r.stdout + r.stderr)

        inject_into_lookup_impl(root, "auto* seeded = new int(0); (void)seeded;")
        r = run_astcheck(root, "--frontend", "builtin")
        check("seeded_hp1_new",
              r.returncode == 1 and "[HP1]" in r.stderr and "lookup_impl" in r.stderr,
              f"exit={r.returncode} out={(r.stdout + r.stderr)[:400]}")

    with tempfile.TemporaryDirectory(prefix="astcheck_e2e_") as tmp:
        root = copy_src(tmp)
        with open(os.path.join(root, "src", "poptrie", "seeded_probe.hpp"), "w",
                  encoding="utf-8") as f:
            f.write(SEEDED_HOT_FILE)
        r = run_astcheck(root, "--frontend", "builtin")
        check("seeded_hp1_new_file",
              r.returncode == 1 and "[HP1]" in r.stderr and "seeded_probe" in r.stderr,
              f"exit={r.returncode} out={(r.stdout + r.stderr)[:400]}")

    with tempfile.TemporaryDirectory(prefix="astcheck_e2e_") as tmp:
        root = copy_src(tmp)
        with open(os.path.join(root, "src", "poptrie", "seeded_shift.hpp"), "w",
                  encoding="utf-8") as f:
            f.write(SEEDED_SHIFT_FILE)
        r = run_astcheck(root, "--frontend", "builtin")
        check("seeded_hp2_shift",
              r.returncode == 1 and "[HP2]" in r.stderr and "seeded_shift" in r.stderr,
              f"exit={r.returncode} out={(r.stdout + r.stderr)[:400]}")

    with tempfile.TemporaryDirectory(prefix="astcheck_e2e_") as tmp:
        root = copy_src(tmp)
        r = run_astcheck(root, "--frontend", "clang",
                         "--compile-commands", os.path.join(tmp, "nope", "compile_commands.json"))
        err = r.stdout + r.stderr
        check("missing_db_clang",
              r.returncode == 2 and "compile_commands.json" in err and "cmake" in err,
              f"exit={r.returncode} out={err[:400]}")

    if failures:
        print(f"test_astcheck: {len(failures)} scenario(s) FAILED: {', '.join(failures)}")
        return 1
    print("test_astcheck: all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
