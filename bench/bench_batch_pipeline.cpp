// Batch-pipeline benchmark — single-core lookup rate (Mlps) of the lane
// paths (scalar / software-pipelined / AVX2 / AVX-512) across burst width,
// table size, and traffic pattern. This is the Figure-8-style evidence for
// DESIGN.md §12: how much memory-level parallelism the interleaved state
// machine and the gather kernels actually extract on this host.
//
// Every cell is gated on checksum equivalence against the scalar walk over
// the identical key stream: a lane path that returns even one different next
// hop fails the whole run (exit 1). A fast wrong kernel must never produce
// a number.
//
// benchctl runs this as the `pipe.*` family; the committed baselines pin the
// ≥512k-route sweep where the pipelined walk must hold ≥1.5× scalar.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchkit/json.hpp"
#include "benchkit/provenance.hpp"
#include "common.hpp"
#include "poptrie/lanes.hpp"

using namespace bench;
namespace lanes = poptrie::lanes;

namespace {

/// Key-stream length. A power of two and a multiple of every burst width,
/// so the timed loop never sees a partial burst except where we ask for one.
constexpr std::size_t kStream = 1u << 20;

std::vector<std::uint32_t> make_stream(std::string_view pattern, const Dataset& d,
                                       std::uint64_t seed)
{
    std::vector<std::uint32_t> keys;
    keys.reserve(kStream);
    if (pattern == "random") {
        workload::Xorshift128 rng(seed);
        for (std::size_t i = 0; i < kStream; ++i) keys.push_back(rng.next());
    } else if (pattern == "repeated") {
        // §4.2's repeated pattern: each random destination issued 16 times.
        workload::Xorshift128 rng(seed);
        while (keys.size() < kStream) {
            const std::uint32_t a = rng.next();
            for (int i = 0; i < 16 && keys.size() < kStream; ++i) keys.push_back(a);
        }
    } else if (pattern == "flows") {
        // Interleaved flows: every packet draws uniformly from a pool of 4096
        // distinct destinations. The working set stays cache-resident like
        // "repeated", but consecutive packets rarely share a destination, so
        // the scalar walk's branches stay unpredictable — the regime where a
        // branchless gather kernel earns its keep.
        constexpr std::size_t kFlows = 4096;
        workload::Xorshift128 rng(seed);
        std::vector<std::uint32_t> pool;
        pool.reserve(kFlows);
        for (std::size_t i = 0; i < kFlows; ++i) pool.push_back(rng.next());
        for (std::size_t i = 0; i < kStream; ++i)
            keys.push_back(pool[rng.next() & (kFlows - 1)]);
    } else if (pattern == "trace") {
        workload::TraceConfig tc;
        tc.seed = seed;
        tc.packets = kStream;
        keys = workload::make_real_trace_like(d.rib, tc);
        keys.resize(kStream);
    } else {
        std::fprintf(stderr, "bench_batch_pipeline: unknown pattern '%s'\n",
                     std::string(pattern).c_str());
        std::exit(2);
    }
    return keys;
}

/// One burst through `path`. For the pipelined path the burst width is also
/// the interleave width (a template parameter — the state-machine arrays are
/// stack-resident per instantiation); the SIMD kernels always process
/// 8-lane groups inside whatever burst they are handed.
void run_burst(lanes::LanePath path, unsigned width, const lanes::View4& view,
               const std::uint32_t* keys, NextHop* out, std::size_t n)
{
    namespace pb = poptrie::batch;
    if (path == lanes::LanePath::kPipelined) {
        if (view.leaf_compression) {
            switch (width) {
            case 8: pb::lookup_batch_pipelined<true, 8>(view, keys, out, n, view.direct_bits); break;
            case 16: pb::lookup_batch_pipelined<true, 16>(view, keys, out, n, view.direct_bits); break;
            default: pb::lookup_batch_pipelined<true, 32>(view, keys, out, n, view.direct_bits); break;
            }
        } else {
            switch (width) {
            case 8: pb::lookup_batch_pipelined<false, 8>(view, keys, out, n, view.direct_bits); break;
            case 16: pb::lookup_batch_pipelined<false, 16>(view, keys, out, n, view.direct_bits); break;
            default: pb::lookup_batch_pipelined<false, 32>(view, keys, out, n, view.direct_bits); break;
            }
        }
    } else {
        lanes::run(path, view, keys, out, n);
    }
}

/// Order-sensitive fold so a permuted (not just wrong) result also fails.
std::uint64_t fold_checksum(std::uint64_t h, const NextHop* out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) h = h * 1099511628211ULL + out[i];
    return h;
}

std::uint64_t checksum_pass(lanes::LanePath path, unsigned width,
                            const lanes::View4& view,
                            const std::vector<std::uint32_t>& keys)
{
    std::vector<NextHop> out(width);
    std::uint64_t h = 14695981039346656037ULL;
    for (std::size_t i = 0; i < keys.size(); i += width) {
        const std::size_t n = std::min<std::size_t>(width, keys.size() - i);
        run_burst(path, width, view, keys.data() + i, out.data(), n);
        h = fold_checksum(h, out.data(), n);
    }
    return h;
}

double timed_mlps(lanes::LanePath path, unsigned width, const lanes::View4& view,
                  const std::vector<std::uint32_t>& keys, double duration,
                  ChecksumSink& sink)
{
    using clock = std::chrono::steady_clock;
    std::vector<NextHop> out(width);
    std::uint64_t consumed = 0;
    std::size_t done = 0;
    const auto t0 = clock::now();
    const auto deadline = t0 + std::chrono::duration_cast<clock::duration>(
                                   std::chrono::duration<double>(duration));
    for (;;) {
        // Check the clock once per full pass over the stream, not per burst.
        for (std::size_t i = 0; i < keys.size(); i += width)
            run_burst(path, width, view, keys.data() + i, out.data(), width);
        consumed += out[0];
        done += keys.size();
        if (clock::now() >= deadline) break;
    }
    const double elapsed = std::chrono::duration<double>(clock::now() - t0).count();
    sink.add(consumed);
    return benchkit::to_mlps(done, elapsed);
}

std::vector<std::string> split_list(const std::string& list)
{
    std::vector<std::string> out;
    for (std::size_t pos = 0; pos < list.size();) {
        const auto comma = std::min(list.find(',', pos), list.size());
        out.push_back(list.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help(
            "bench_batch_pipeline",
            "  --routes-list=L   comma-separated table sizes (default 100000,600000)\n"
            "  --direct-list=L   comma-separated direct-pointing bits (default 18,0;\n"
            "                    0 forces full-depth walks — the latency-bound regime)\n"
            "  --patterns=L      comma-separated from random,repeated,flows,trace\n"
            "                    (default random,repeated,flows,trace)\n"
            "  --bursts-list=L   comma-separated burst widths from 8,16,32\n"
            "                    (default 8,16,32)\n"
            "  --duration=S      seconds per cell (default 0.5, --full: 2)\n"
            "  --json            emit a JSON record per cell"))
        return 0;

    const auto routes_list = split_list(args.get("routes-list", "100000,600000"));
    const auto direct_list = split_list(args.get("direct-list", "18,0"));
    const auto patterns =
        split_list(args.get("patterns", "random,repeated,flows,trace"));
    const auto bursts = split_list(args.get("bursts-list", "8,16,32"));
    const double duration = args.get_double("duration", args.has("full") ? 2.0 : 0.5);
    const auto seed = args.seed(1);

    std::printf("Batch pipeline: single-core lane-path lookup rate\n");
    std::printf("# burst = keys per lookup_batch call; pipelined interleave width = burst.\n");
    std::printf("# Every cell is checksum-gated against the scalar walk first.\n\n");
    print_host_note();

    std::vector<lanes::LanePath> paths{lanes::LanePath::kScalar};
    for (const lanes::LanePath p : lanes::kAllPaths)
        if (p != lanes::LanePath::kScalar && lanes::compiled_in(p) && lanes::cpu_supports(p))
            paths.push_back(p);
    for (const lanes::LanePath p : lanes::kAllPaths)
        if (!lanes::compiled_in(p) || !lanes::cpu_supports(p))
            std::printf("# lane-path %s unavailable: %s\n",
                        std::string(lanes::name(p)).c_str(),
                        lanes::compiled_in(p) ? "cpu lacks support" : "not compiled in");

    benchkit::TablePrinter table({{"Routes", 7},
                                  {"Direct", 6},
                                  {"Pattern", 8, false},
                                  {"Burst", 5},
                                  {"Path", 9, false},
                                  {"Rate[Mlps]", 10},
                                  {"vs scalar", 9}});
    table.print_header();
    benchkit::JsonRecords json;
    ChecksumSink sink;

    for (const auto& routes_str : routes_list) {
        const auto n_routes = std::strtoull(routes_str.c_str(), nullptr, 10);
        workload::TableGenConfig tg;
        tg.seed = seed;
        tg.target_routes = n_routes;
        tg.next_hops = 64;
        const auto d = load_routes("synthetic", workload::generate_table(tg));
        for (const auto& direct_str : direct_list) {
        const auto direct_bits = static_cast<unsigned>(
            std::strtoul(direct_str.c_str(), nullptr, 10));
        poptrie::Config pcfg;
        pcfg.direct_bits = direct_bits;
        const poptrie::Poptrie4 fib{d.rib, pcfg};
        const lanes::View4 view = fib.batch_view();

        for (const auto& pattern : patterns) {
            const auto keys = make_stream(pattern, d, seed ^ n_routes);
            for (const auto& burst_str : bursts) {
                const auto width = static_cast<unsigned>(
                    std::strtoul(burst_str.c_str(), nullptr, 10));
                if (width != 8 && width != 16 && width != 32) {
                    std::fprintf(stderr, "bench_batch_pipeline: bad burst '%s'\n",
                                 burst_str.c_str());
                    return 2;
                }
                const std::uint64_t want =
                    checksum_pass(lanes::LanePath::kScalar, width, view, keys);
                double scalar_mlps = 0;
                for (const lanes::LanePath p : paths) {
                    const std::uint64_t got = checksum_pass(p, width, view, keys);
                    if (got != want) {
                        std::fprintf(stderr,
                                     "bench_batch_pipeline: checksum mismatch: path %s "
                                     "routes=%llu direct=%u pattern=%s burst=%u\n",
                                     std::string(lanes::name(p)).c_str(),
                                     static_cast<unsigned long long>(n_routes),
                                     direct_bits, pattern.c_str(), width);
                        return 1;
                    }
                    const double mlps = timed_mlps(p, width, view, keys, duration, sink);
                    if (p == lanes::LanePath::kScalar) scalar_mlps = mlps;
                    const double speedup = scalar_mlps > 0 ? mlps / scalar_mlps : 0;
                    table.print_row({std::to_string(n_routes),
                                     std::to_string(direct_bits), pattern,
                                     std::to_string(width),
                                     std::string(lanes::name(p)), benchkit::fmt(mlps, 2),
                                     benchkit::fmt(speedup, 2)});
                    json.begin_record();
                    json.field("routes", std::uint64_t{n_routes});
                    json.field("direct_bits", std::uint64_t{direct_bits});
                    json.field("pattern", pattern);
                    json.field("burst", std::uint64_t{width});
                    json.field("path", lanes::name(p));
                    json.field("mlps", mlps);
                    json.field("speedup_vs_scalar", speedup);
                    json.field("checksum_ok", true);
                    benchkit::stamp_provenance(json);
                }
            }
        }
        }
    }

    if (args.has("json")) json.write(stdout);
    const auto json_path = args.json_out();
    if (!json_path.empty() && !json.write_file(json_path)) {
        std::fprintf(stderr, "bench_batch_pipeline: cannot write %s\n", json_path.c_str());
        return 2;
    }
    return 0;
}
