// Table 2 — effect of the Poptrie extensions on REAL-Tier1-A: for each of
// basic / leafvec / leafvec+aggregation at s = 0, 16, 18, report the number
// of internal nodes and leaves, the memory footprint, the compile time from
// the radix RIB, and the random-pattern lookup rate.
#include <chrono>

#include "common.hpp"

using namespace bench;

namespace {

struct PaperRow {
    const char* variant;
    unsigned s;
    std::size_t inodes, leaves;
    double mem_mib, compile_ms, rate;
};
// Table 2's published values for side-by-side comparison.
constexpr PaperRow kPaper[] = {
    {"basic", 0, 64'009, 4'032'568, 8.67, 31.07, 87.71},
    {"basic", 16, 172'101, 10'862'901, 23.60, 64.18, 130.72},
    {"basic", 18, 61'282, 3'911'422, 9.40, 36.06, 170.69},
    {"leafvec", 0, 64'009, 280'673, 2.00, 32.60, 89.15},
    {"leafvec", 16, 172'101, 347'449, 4.85, 62.97, 154.33},
    {"leafvec", 18, 61'282, 265'320, 2.91, 33.37, 191.95},
    {"poptrie", 0, 43'191, 263'381, 1.49, 32.84, 96.27},
    {"poptrie", 16, 86'171, 274'145, 2.75, 65.91, 198.28},
    {"poptrie", 18, 40'760, 245'034, 2.40, 33.24, 240.52},
};

}  // namespace

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_table2_extensions")) return 0;
    const auto lookups = args.lookups(std::size_t{1} << 22, std::size_t{1} << 26);
    const auto trials = args.trials();

    std::printf("Table 2: Poptrie options on REAL-Tier1-A(-like): compilation, size, rate\n\n");
    print_host_note();
    const auto d = load_dataset(workload::real_tier1_a());
    std::printf("# dataset %s: %zu routes (aggregated FIB source: %zu)\n\n", d.name.c_str(),
                d.rib.route_count(), d.fib_src.route_count());

    // Radix baseline row (memory + rate; it *is* the RIB, no compilation).
    ChecksumSink sink;
    benchkit::TablePrinter table({{"Variant", 16, false},
                                  {"s", 2},
                                  {"# inodes", 9},
                                  {"# leaves", 10},
                                  {"Mem[MiB]", 8},
                                  {"Compile(std)[ms]", 16},
                                  {"Rate(std)[Mlps]", 16},
                                  {"paper Mlps", 10}});
    table.print_header();
    {
        const auto r = benchkit::measure_random(
            [&](std::uint32_t a) { return d.rib.lookup(Ipv4Addr{a}); },
            lookups / 8, trials);
        sink.add(r.checksum);
        table.print_row({"Radix", "-", "-", "-", benchkit::fmt_mib(d.rib.memory_bytes()), "-",
                         benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std), "8.82"});
    }

    std::size_t paper_idx = 0;
    for (const auto& variant : {std::pair{"basic", poptrie::Config{}},
                                std::pair{"leafvec", poptrie::Config{}},
                                std::pair{"poptrie", poptrie::Config{}}}) {
        for (const unsigned s : {0u, 16u, 18u}) {
            poptrie::Config cfg;
            cfg.direct_bits = s;
            cfg.leaf_compression = std::string{variant.first} != "basic";
            cfg.route_aggregation = std::string{variant.first} == "poptrie";

            // Compile time: paper measures RIB -> Poptrie compilation.
            std::vector<double> compile_ms;
            std::unique_ptr<poptrie::Poptrie4> pt;
            for (unsigned t = 0; t < std::max(1u, trials / 2); ++t) {
                const auto t0 = std::chrono::steady_clock::now();
                pt = std::make_unique<poptrie::Poptrie4>(d.rib, cfg);
                compile_ms.push_back(
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
            }
            const auto cms = benchkit::mean_std(compile_ms);
            const auto stats = pt->stats();

            const auto r =
                cfg.leaf_compression
                    ? benchkit::measure_random(
                          [&](std::uint32_t a) { return pt->lookup_raw<true>(a); }, lookups,
                          trials)
                    : benchkit::measure_random(
                          [&](std::uint32_t a) { return pt->lookup_raw<false>(a); }, lookups,
                          trials);
            sink.add(r.checksum);

            const auto& paper = kPaper[paper_idx++];
            table.print_row({variant.first, std::to_string(s),
                             benchkit::fmt_count(stats.internal_nodes),
                             benchkit::fmt_count(stats.leaves),
                             benchkit::fmt_mib(stats.memory_bytes),
                             benchkit::fmt_mean_std(cms.mean, cms.std),
                             benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std),
                             benchkit::fmt(paper.rate, 2)});
        }
    }
    return 0;
}
