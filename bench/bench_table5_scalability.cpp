// Table 5 — scalability on the future-envisioned synthetic tables: random
// lookup rates of SAIL, D18R(modified) and Poptrie18 on SYN1/SYN2 of both
// Tier-1 datasets. SAIL must come out N/A on the SYN2 tables (C16 chunk-id
// overflow, §4.8), and unmodified DXR must fail on all four, reproducing the
// paper's structural-limit findings.
#include "common.hpp"

#include "benchkit/json.hpp"
#include "benchkit/provenance.hpp"

using namespace bench;

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_table5_scalability",
                         "  --json-out=FILE   write poptrie-bench/1 records to FILE\n"
                         "                    (structural limits are first-class rows:\n"
                         "                    {\"status\":\"structural_limit\"})"))
        return 0;
    const auto lookups = args.lookups(std::size_t{1} << 22, std::size_t{1} << 25);
    const auto trials = args.trials();

    std::printf("Table 5: lookup rates on synthetic large RIBs (random traffic)\n");
    std::printf("# paper (Mlps):      SYN1-A    SYN1-B    SYN2-A    SYN2-B\n"
                "#   SAIL             102.86     99.98       N/A       N/A\n"
                "#   D18R(modified)   115.45    117.48    102.59    104.22\n"
                "#   Poptrie18        188.02    187.69    174.42    175.04\n"
                "# 100GbE wire rate: 148.8 Mlps\n\n");
    print_host_note();
    ChecksumSink sink;
    benchkit::JsonRecords json;
    const auto emit = [&json](const char* dataset, std::size_t routes, const char* structure,
                              double mlps, double mlps_std, const std::string& error) {
        json.begin_record();
        json.field("tool", std::string_view{"bench_table5_scalability"});
        json.field("dataset", std::string_view{dataset});
        json.field("routes", std::uint64_t{routes});
        json.field("structure", std::string_view{structure});
        json.field("status", std::string_view{error.empty() ? "ok" : "structural_limit"});
        if (error.empty()) {
            json.field("mlps", mlps);
            json.field("mlps_std", mlps_std);
        } else {
            json.field("error", std::string_view{error});
        }
        benchkit::stamp_provenance(json);
    };

    struct Target {
        const char* name;
        workload::DatasetSpec base;
        int level;
        std::size_t target;
    };
    const Target targets[] = {
        {"SYN1-Tier1-A", workload::real_tier1_a(), 1, 764'847},
        {"SYN1-Tier1-B", workload::real_tier1_b(), 1, 756'406},
        {"SYN2-Tier1-A", workload::real_tier1_a(), 2, 885'645},
        {"SYN2-Tier1-B", workload::real_tier1_b(), 2, 876'944},
    };

    benchkit::TablePrinter table({{"Dataset", 13, false},
                                  {"routes", 8},
                                  {"SAIL", 13},
                                  {"D18R", 15},
                                  {"Poptrie18", 13}});
    table.print_header();
    for (const auto& t : targets) {
        const auto base = workload::make_table(t.base);
        const auto d =
            load_routes(t.name, workload::make_syn(base, t.level, t.target));
        BuildSelection sel;
        sel.treebitmap = false;
        sel.poptrie16 = false;
        const auto s = build_structures(d, sel);

        std::string sail_cell = "N/A";
        if (s.sail) {
            const auto r = benchkit::measure_random(
                [&](std::uint32_t a) { return s.sail->lookup(Ipv4Addr{a}); }, lookups, trials);
            sink.add(r.checksum);
            sail_cell = benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std);
            emit(t.name, d.routes.size(), "sail", r.mlps_mean, r.mlps_std, {});
        } else {
            emit(t.name, d.routes.size(), "sail", 0, 0, s.sail_error);
        }
        std::string dxr_cell = "N/A";
        if (s.d18r) {
            const auto r = benchkit::measure_random(
                [&](std::uint32_t a) { return s.d18r->lookup(Ipv4Addr{a}); }, lookups, trials);
            sink.add(r.checksum);
            dxr_cell = benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std) +
                       (s.dxr_modified ? "+" : "");
            emit(t.name, d.routes.size(), s.dxr_modified ? "d18r_modified" : "d18r",
                 r.mlps_mean, r.mlps_std, {});
        } else {
            emit(t.name, d.routes.size(), "d18r", 0, 0, s.dxr_error);
        }
        const auto p18 = benchkit::measure_random(
            [&](std::uint32_t a) { return s.poptrie18->lookup_raw<true>(a); }, lookups, trials);
        sink.add(p18.checksum);
        emit(t.name, d.routes.size(), "poptrie18", p18.mlps_mean, p18.mlps_std, {});
        table.print_row({std::string{t.name}, benchkit::fmt_count(d.routes.size()), sail_cell, dxr_cell,
                         benchkit::fmt_mean_std(p18.mlps_mean, p18.mlps_std)});
        if (!s.sail) std::printf("    SAIL N/A: %s\n", s.sail_error.c_str());
        if (s.dxr_modified)
            std::printf("    D18R+ = modified 20-bit-base format (unmodified DXR: %s)\n",
                        s.dxr_error.c_str());
    }
    if (!args.json_out().empty() && !json.write_file(args.json_out())) {
        std::fprintf(stderr, "bench_table5_scalability: cannot write %s\n",
                     args.json_out().c_str());
        return 2;
    }
    return 0;
}
