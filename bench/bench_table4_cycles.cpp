// Table 4 — per-lookup CPU cycles (mean, 50th/75th/95th/99th percentiles)
// for SAIL, D16R/D18R, Poptrie16/18 under random traffic with a fixed seed,
// on both Tier-1 datasets (§4.6).
#include "benchkit/json.hpp"
#include "benchkit/provenance.hpp"
#include "common.hpp"

using namespace bench;

namespace {

struct PaperRow {
    const char* algo;
    double mean, p50, p75, p95, p99;
};
constexpr PaperRow kPaperA[] = {
    {"SAIL", 57.43, 22, 76, 279, 299},      {"D16R", 60.92, 44, 49, 189, 255},
    {"D18R", 54.84, 46, 48, 154, 207},      {"Poptrie16", 54.58, 43, 48, 150, 192},
    {"Poptrie18", 53.59, 46, 48, 150, 169},
};
constexpr PaperRow kPaperB[] = {
    {"SAIL", 56.34, 22, 75, 279, 290},      {"D16R", 61.86, 44, 50, 182, 277},
    {"D18R", 56.88, 47, 49, 154, 187},      {"Poptrie16", 55.53, 43, 48, 141, 167},
    {"Poptrie18", 55.82, 46, 48, 150, 166},
};

}  // namespace

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_table4_cycles",
                         "  --dataset=D  a | b | both (default both)"))
        return 0;
    // Paper: 2^24 lookups; quick default 2^22.
    const auto n = args.lookups(std::size_t{1} << 22, std::size_t{1} << 24);
    const auto seed = args.seed(0);
    const auto dataset = args.get("dataset", "both");
    if (dataset != "a" && dataset != "b" && dataset != "both") {
        std::fprintf(stderr, "bench_table4_cycles: --dataset must be a, b or both\n");
        return 2;
    }

    std::printf("Table 4: per-lookup CPU cycles by random traffic (TSC-based; the paper\n"
                "used PMCs on a single-task OS — compare distribution shape, Fig. 10)\n\n");
    ChecksumSink sink;
    benchkit::TablePrinter table({{"Algorithm", 10, false},
                                  {"Mean", 7},
                                  {"50th", 6},
                                  {"75th", 6},
                                  {"95th", 6},
                                  {"99th", 6},
                                  {"paper mean/50/95/99", 20, false}});
    benchkit::JsonRecords json;

    int which = 0;
    for (const auto& spec : {workload::real_tier1_a(), workload::real_tier1_b()}) {
        const bool wanted = dataset == "both" || (which == 0 ? dataset == "a" : dataset == "b");
        if (!wanted) {
            ++which;
            continue;
        }
        const auto d = load_dataset(spec);
        const auto s = build_structures(d);
        std::printf("\n=== %s ===\n", d.name.c_str());
        table.print_header();
        const auto* paper = which == 0 ? kPaperA : kPaperB;

        const auto row = [&](const char* name, auto&& lookup, const PaperRow& p) {
            const benchkit::Percentiles pct(sample_cycles(lookup, n, sink, seed));
            table.print_row(
                {name, benchkit::fmt(pct.mean(), 2), benchkit::fmt(pct.percentile(50), 0),
                 benchkit::fmt(pct.percentile(75), 0), benchkit::fmt(pct.percentile(95), 0),
                 benchkit::fmt(pct.percentile(99), 0),
                 benchkit::fmt(p.mean, 1) + "/" + benchkit::fmt(p.p50, 0) + "/" +
                     benchkit::fmt(p.p95, 0) + "/" + benchkit::fmt(p.p99, 0)});
            json.begin_record();
            json.field("bench", std::string_view{"table4"});
            json.field("dataset", d.name);
            json.field("algorithm", std::string_view{name});
            json.field("lookups", std::uint64_t{n});
            json.field("mean_cycles", pct.mean());
            json.field("p50_cycles", pct.percentile(50));
            json.field("p75_cycles", pct.percentile(75));
            json.field("p95_cycles", pct.percentile(95));
            json.field("p99_cycles", pct.percentile(99));
            benchkit::stamp_provenance(json);
        };
        row("SAIL", [&](std::uint32_t a) { return s.sail->lookup(Ipv4Addr{a}); }, paper[0]);
        row("D16R", [&](std::uint32_t a) { return s.d16r->lookup(Ipv4Addr{a}); }, paper[1]);
        row("D18R", [&](std::uint32_t a) { return s.d18r->lookup(Ipv4Addr{a}); }, paper[2]);
        row("Poptrie16", [&](std::uint32_t a) { return s.poptrie16->lookup_raw<true>(a); },
            paper[3]);
        row("Poptrie18", [&](std::uint32_t a) { return s.poptrie18->lookup_raw<true>(a); },
            paper[4]);
        ++which;
    }

    const auto json_path = args.json_out();
    if (!json_path.empty() && !json.write_file(json_path)) {
        std::fprintf(stderr, "bench_table4_cycles: cannot write %s\n", json_path.c_str());
        return 2;
    }
    return 0;
}
