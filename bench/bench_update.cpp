// §4.9 — update performance: (a) replay of an hour-scale BGP update feed
// against a full table (per-update latency, replaced objects per update),
// (b) randomized full-route insertion time, both on Poptrie18 with the
// lock-free incremental updater.
#include <algorithm>
#include <chrono>

#include "benchkit/json.hpp"
#include "benchkit/provenance.hpp"
#include "common.hpp"

using namespace bench;

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_update",
                         "  --updates=N   feed length (default 23446)\n"
                         "  --no-insert   skip the full-route insertion phase"))
        return 0;
    const auto n_updates = args.get_u64("updates", 23'446);  // the paper's hour of linx-p52

    std::printf("Section 4.9: incremental update performance (Poptrie18)\n");
    std::printf("# paper: 23,446 updates in 58.90 ms => 2.51 us/update; per update\n"
                "# 0.041 top-level slots, 6.05 leaves, 0.48 inodes replaced; full-route\n"
                "# randomized insertion 5.10 us/prefix (Tier1-A), 4.57 (Tier1-B)\n\n");
    benchkit::JsonRecords json;

    // (a) update feed on an RV-linx-p52-like table.
    {
        const auto specs = workload::routeviews_specs();
        const auto spec = *std::find_if(specs.begin(), specs.end(), [](const auto& s) {
            return s.name == "RV-linx-p52";
        });
        auto d = load_dataset(spec);
        poptrie::Config cfg;
        cfg.direct_bits = 18;
        poptrie::Poptrie4 pt{d.rib, cfg};

        workload::UpdateFeedConfig ucfg;
        ucfg.updates = n_updates;
        ucfg.next_hops = spec.config.next_hops;
        const auto feed = workload::make_update_feed(d.routes, ucfg);

        const auto t0 = std::chrono::steady_clock::now();
        for (const auto& ev : feed) pt.apply(d.rib, ev.prefix, ev.next_hop);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        const auto& c = pt.update_counters();
        const auto per = [&](std::uint64_t v) {
            return static_cast<double>(v) / static_cast<double>(c.updates);
        };
        const double us_per_update = ms * 1000.0 / static_cast<double>(feed.size());
        std::printf("update feed on %s: %zu updates (%.1f%% announce)\n", d.name.c_str(),
                    feed.size(), 100.0 * ucfg.announce_fraction);
        std::printf("  total %.2f ms => %.2f us/update (paper: 58.90 ms, 2.51 us)\n", ms,
                    us_per_update);
        std::printf("  replaced per update: %.3f top-level slots (paper 0.041),"
                    " %.2f leaves (paper 6.05), %.2f inodes (paper 0.48)\n",
                    per(c.direct_stores), per(c.leaves_allocated), per(c.nodes_allocated));
        std::printf("  pool growths during updates: %llu\n\n",
                    static_cast<unsigned long long>(c.pool_growths));
        json.begin_record();
        json.field("bench", std::string_view{"update"});
        json.field("phase", std::string_view{"feed"});
        json.field("dataset", d.name);
        json.field("updates", std::uint64_t{feed.size()});
        json.field("us_per_update", us_per_update);
        json.field("leaves_per_update", per(c.leaves_allocated));
        json.field("inodes_per_update", per(c.nodes_allocated));
        json.field("pool_growths", c.pool_growths);
        benchkit::stamp_provenance(json);
    }

    // (b) randomized full-route insertion.
    if (!args.has("no-insert")) {
        for (const auto& spec : {workload::real_tier1_a(), workload::real_tier1_b()}) {
            auto routes = workload::make_table(spec);
            workload::Xorshift128 rng(args.seed(3));
            for (std::size_t i = routes.size(); i > 1; --i)
                std::swap(routes[i - 1],
                          routes[rng.next_below(static_cast<std::uint32_t>(i))]);

            rib::RadixTrie<Ipv4Addr> rib;
            poptrie::Config cfg;
            cfg.direct_bits = 18;
            poptrie::Poptrie4 pt{rib, cfg};
            const auto t0 = std::chrono::steady_clock::now();
            for (const auto& r : routes) pt.apply(rib, r.prefix, r.next_hop);
            const double secs =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
            const double us_per_prefix = secs * 1e6 / static_cast<double>(routes.size());
            std::printf("full-route randomized insertion on %s: %zu prefixes in %.2f s"
                        " => %.2f us/prefix\n",
                        spec.name.c_str(), routes.size(), secs, us_per_prefix);
            json.begin_record();
            json.field("bench", std::string_view{"update"});
            json.field("phase", std::string_view{"insert"});
            json.field("dataset", spec.name);
            json.field("prefixes", std::uint64_t{routes.size()});
            json.field("us_per_prefix", us_per_prefix);
            benchkit::stamp_provenance(json);
        }
    }

    const auto json_path = args.json_out();
    if (!json_path.empty() && !json.write_file(json_path)) {
        std::fprintf(stderr, "bench_update: cannot write %s\n", json_path.c_str());
        return 2;
    }
    return 0;
}
