// Figure 9 — average random-pattern lookup rate of Radix, Tree BitMap,
// SAIL, D16R, Poptrie16, D18R, Poptrie18 across the 35 Table 1 datasets
// (error bars = std over trials). The quick default measures a
// representative subset of datasets; --full (or --datasets=35) runs all 35.
#include "common.hpp"

using namespace bench;

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_figure9_datasets",
                         "  --datasets=N  how many of the 35 datasets (default 8 quick / 35 full)"))
        return 0;
    const auto lookups = args.lookups(std::size_t{1} << 20, std::size_t{1} << 23);
    const auto trials = args.trials();
    auto specs = workload::all_ipv4_specs();
    const auto n_datasets = std::min<std::size_t>(
        specs.size(), args.get_u64("datasets", args.has("full") ? specs.size() : 8));
    specs.resize(n_datasets);

    std::printf("Figure 9: average lookup rate for random addresses across datasets\n");
    std::printf("# paper: Poptrie18 wins on all 35 datasets, 1.04-1.34x over D18R,\n"
                "# 1.37-2.62x over SAIL, 3.52-6.78x over Tree BitMap, 24.5-46.1x over Radix\n\n");
    print_host_note();
    ChecksumSink sink;
    benchkit::TablePrinter table({{"Dataset", 16, false},
                                  {"Radix", 12},
                                  {"TreeBM", 12},
                                  {"SAIL", 13},
                                  {"D16R", 13},
                                  {"Poptrie16", 13},
                                  {"D18R", 13},
                                  {"Poptrie18", 13},
                                  {"win", 9, false}});
    table.print_header();

    double worst_ratio_vs_d18r = 1e9;
    double best_ratio_vs_d18r = 0;
    std::size_t poptrie_wins = 0;
    for (const auto& spec : specs) {
        const auto d = load_dataset(spec);
        const auto s = build_structures(d);
        const auto measure = [&](auto&& lookup, std::size_t scale_down = 1) {
            const auto r = benchkit::measure_random(lookup, lookups / scale_down, trials);
            sink.add(r.checksum);
            return r;
        };
        const auto radix =
            measure([&](std::uint32_t a) { return d.rib.lookup(Ipv4Addr{a}); }, 8);
        const auto tbm =
            measure([&](std::uint32_t a) { return s.tbm64->lookup(Ipv4Addr{a}); }, 2);
        const auto sail = measure([&](std::uint32_t a) { return s.sail->lookup(Ipv4Addr{a}); });
        const auto d16 = measure([&](std::uint32_t a) { return s.d16r->lookup(Ipv4Addr{a}); });
        const auto p16 =
            measure([&](std::uint32_t a) { return s.poptrie16->lookup_raw<true>(a); });
        const auto d18 = measure([&](std::uint32_t a) { return s.d18r->lookup(Ipv4Addr{a}); });
        const auto p18 =
            measure([&](std::uint32_t a) { return s.poptrie18->lookup_raw<true>(a); });

        const double best_poptrie = std::max(p16.mlps_mean, p18.mlps_mean);
        const double best_other = std::max({radix.mlps_mean, tbm.mlps_mean, sail.mlps_mean,
                                            d16.mlps_mean, d18.mlps_mean});
        if (best_poptrie > best_other) ++poptrie_wins;
        worst_ratio_vs_d18r = std::min(worst_ratio_vs_d18r, p18.mlps_mean / d18.mlps_mean);
        best_ratio_vs_d18r = std::max(best_ratio_vs_d18r, p18.mlps_mean / d18.mlps_mean);

        const auto cell = [](const benchkit::RateResult& r) {
            return benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std, 1);
        };
        table.print_row({spec.name, cell(radix), cell(tbm), cell(sail), cell(d16), cell(p16),
                         cell(d18), cell(p18),
                         best_poptrie > best_other ? "poptrie" : "other"});
    }
    std::printf("\nPoptrie (best of 16/18) fastest on %zu/%zu datasets;"
                " Poptrie18/D18R ratio range %.2f-%.2f\n",
                poptrie_wins, specs.size(), worst_ratio_vs_d18r, best_ratio_vs_d18r);
    return 0;
}
