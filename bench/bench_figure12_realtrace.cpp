// Figure 12 (+ §4.5's sequential/repeated numbers) — lookup rates for the
// real-trace pattern on REAL-RENET, and the high-locality synthetic
// patterns on REAL-Tier1-B, for Tree BitMap, SAIL, D16R/D18R, Poptrie16/18.
#include "common.hpp"

using namespace bench;

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_figure12_realtrace",
                         "  --packets=N  trace length (default 4M quick / 16M full)"))
        return 0;
    const auto trials = args.trials();
    const auto lookups = args.lookups(std::size_t{1} << 22, std::size_t{1} << 25);
    const auto packets = args.get_u64("packets", args.has("full") ? 16'000'000 : 4'000'000);
    ChecksumSink sink;

    // --- Figure 12: real-trace on REAL-RENET ---
    std::printf("Figure 12: average lookup rate for real-trace on REAL-RENET\n");
    std::printf("# paper: Poptrie18 = 3.02x Tree BitMap, 1.61x D18R, 1.22x SAIL\n\n");
    {
        const auto d = load_dataset(workload::real_renet());
        const auto s = build_structures(d);
        workload::TraceConfig tc;
        tc.packets = packets;
        const auto trace = workload::make_real_trace_like(d.rib, tc);
        std::printf("# trace: %zu packets, depth>18: %.1f%% (paper 32.5%%), depth>24: %.1f%%"
                    " (paper 21.8%%)\n\n",
                    trace.size(), 100 * workload::deep_fraction(d.rib, trace, 18),
                    100 * workload::deep_fraction(d.rib, trace, 24));
        benchkit::TablePrinter table(
            {{"Algorithm", 12, false}, {"Rate(std)[Mlps]", 16}, {"vs Poptrie18", 12}});
        table.print_header();
        struct Row {
            const char* name;
            benchkit::RateResult r;
        };
        std::vector<Row> rows;
        const auto measure = [&](const char* name, auto&& lookup) {
            const auto r = benchkit::measure_trace(lookup, trace, trials);
            sink.add(r.checksum);
            rows.push_back({name, r});
        };
        measure("Tree BitMap", [&](std::uint32_t a) { return s.tbm64->lookup(Ipv4Addr{a}); });
        measure("SAIL", [&](std::uint32_t a) { return s.sail->lookup(Ipv4Addr{a}); });
        measure("D16R", [&](std::uint32_t a) { return s.d16r->lookup(Ipv4Addr{a}); });
        measure("Poptrie16", [&](std::uint32_t a) { return s.poptrie16->lookup_raw<true>(a); });
        measure("D18R", [&](std::uint32_t a) { return s.d18r->lookup(Ipv4Addr{a}); });
        measure("Poptrie18", [&](std::uint32_t a) { return s.poptrie18->lookup_raw<true>(a); });
        const double p18 = rows.back().r.mlps_mean;
        for (const auto& row : rows)
            table.print_row({row.name, benchkit::fmt_mean_std(row.r.mlps_mean, row.r.mlps_std),
                             benchkit::fmt(p18 / row.r.mlps_mean, 2) + "x"});
    }

    // --- §4.5: sequential and repeated on REAL-Tier1-B ---
    std::printf("\nSection 4.5: high-locality patterns on REAL-Tier1-B\n");
    std::printf("# paper sequential: SAIL 1264, D16R 628, D18R 911, Poptrie16 955, Poptrie18 1122\n");
    std::printf("# paper repeated:   SAIL 492,  D16R 382, D18R 454, Poptrie16 470, Poptrie18 480\n\n");
    {
        const auto d = load_dataset(workload::real_tier1_b());
        const auto s = build_structures(d);
        benchkit::TablePrinter table({{"Algorithm", 12, false},
                                      {"sequential[Mlps]", 16},
                                      {"repeated[Mlps]", 16}});
        table.print_header();
        const auto row = [&](const char* name, auto&& lookup) {
            const auto seq = benchkit::measure_sequential(lookup, lookups, trials);
            const auto rep = benchkit::measure_repeated(lookup, lookups, trials);
            sink.add(seq.checksum + rep.checksum);
            table.print_row({name, benchkit::fmt_mean_std(seq.mlps_mean, seq.mlps_std),
                             benchkit::fmt_mean_std(rep.mlps_mean, rep.mlps_std)});
        };
        row("SAIL", [&](std::uint32_t a) { return s.sail->lookup(Ipv4Addr{a}); });
        row("D16R", [&](std::uint32_t a) { return s.d16r->lookup(Ipv4Addr{a}); });
        row("D18R", [&](std::uint32_t a) { return s.d18r->lookup(Ipv4Addr{a}); });
        row("Poptrie16", [&](std::uint32_t a) { return s.poptrie16->lookup_raw<true>(a); });
        row("Poptrie18", [&](std::uint32_t a) { return s.poptrie18->lookup_raw<true>(a); });
    }
    return 0;
}
