// Table 3 — memory footprint and random-pattern lookup rate of every
// algorithm on the two Tier-1 datasets: Radix, Tree BitMap (16/64-ary),
// SAIL, D16R/D18R, Poptrie0/16/18.
#include "common.hpp"

using namespace bench;

namespace {

struct PaperCell {
    double mem_a, rate_a, mem_b, rate_b;
};
// Table 3's published values (REAL-Tier1-A, REAL-Tier1-B).
const std::pair<const char*, PaperCell> kPaper[] = {
    {"Radix", {30.48, 8.82, 29.34, 8.92}},
    {"Tree BitMap", {2.62, 56.24, 2.54, 62.13}},
    {"Tree BitMap (64-ary)", {3.10, 61.61, 2.89, 68.82}},
    {"SAIL", {44.24, 158.22, 42.62, 159.39}},
    {"D16R", {1.16, 116.63, 0.93, 114.30}},
    {"D18R", {1.91, 179.92, 1.71, 168.80}},
    {"Poptrie0", {1.49, 96.27, 1.32, 92.99}},
    {"Poptrie16", {2.75, 198.28, 1.87, 191.83}},
    {"Poptrie18", {2.40, 240.52, 2.25, 218.97}},
};

}  // namespace

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_table3_algorithms")) return 0;
    const auto lookups = args.lookups(std::size_t{1} << 22, std::size_t{1} << 26);
    const auto trials = args.trials();

    std::printf("Table 3: memory footprint and random lookup rate per algorithm\n\n");
    print_host_note();
    ChecksumSink sink;

    benchkit::TablePrinter table({{"Algorithm", 21, false},
                                  {"Mem[MiB]", 8},
                                  {"Rate[Mlps]", 14},
                                  {"paper Mem", 9},
                                  {"paper Rate", 10}});

    int which = 0;
    for (const auto& spec : {workload::real_tier1_a(), workload::real_tier1_b()}) {
        const auto d = load_dataset(spec);
        BuildSelection sel;
        sel.poptrie0 = true;
        const auto s = build_structures(d, sel);
        std::printf("\n=== %s (%zu routes) ===\n", d.name.c_str(), d.rib.route_count());
        table.print_header();

        const auto row = [&](const char* name, std::size_t mem, auto&& lookup,
                             std::size_t scale_down = 1) {
            const auto r = benchkit::measure_random(lookup, lookups / scale_down, trials);
            sink.add(r.checksum);
            double pm = 0;
            double pr = 0;
            for (const auto& [pname, cell] : kPaper) {
                if (std::string{pname} == name) {
                    pm = which == 0 ? cell.mem_a : cell.mem_b;
                    pr = which == 0 ? cell.rate_a : cell.rate_b;
                }
            }
            table.print_row({name, benchkit::fmt_mib(mem),
                             benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std),
                             benchkit::fmt(pm, 2), benchkit::fmt(pr, 2)});
        };

        row("Radix", d.rib.memory_bytes(),
            [&](std::uint32_t a) { return d.rib.lookup(Ipv4Addr{a}); }, 8);
        row("Tree BitMap", s.tbm16->memory_bytes(),
            [&](std::uint32_t a) { return s.tbm16->lookup(Ipv4Addr{a}); }, 2);
        row("Tree BitMap (64-ary)", s.tbm64->memory_bytes(),
            [&](std::uint32_t a) { return s.tbm64->lookup(Ipv4Addr{a}); }, 2);
        row("SAIL", s.sail->memory_bytes(),
            [&](std::uint32_t a) { return s.sail->lookup(Ipv4Addr{a}); });
        row("D16R", s.d16r->memory_bytes(),
            [&](std::uint32_t a) { return s.d16r->lookup(Ipv4Addr{a}); });
        row("D18R", s.d18r->memory_bytes(),
            [&](std::uint32_t a) { return s.d18r->lookup(Ipv4Addr{a}); });
        row("Poptrie0", s.poptrie0->stats().memory_bytes,
            [&](std::uint32_t a) { return s.poptrie0->lookup_raw<true>(a); });
        row("Poptrie16", s.poptrie16->stats().memory_bytes,
            [&](std::uint32_t a) { return s.poptrie16->lookup_raw<true>(a); });
        row("Poptrie18", s.poptrie18->stats().memory_bytes,
            [&](std::uint32_t a) { return s.poptrie18->lookup_raw<true>(a); });
        ++which;
    }
    return 0;
}
