// bench/bench_churn_locality.cpp — the cache-locality lifecycle of one FIB.
//
// The paper's lookup numbers (Table 5) are measured on freshly built tables,
// whose DFS-ordered pools are what makes "the whole FIB fits in cache" true
// in the strong sense: a lookup's node chain is contiguous. A long §3.5
// churn feed preserves correctness and compactness but scatters the hot
// subtrees across the pools in allocation order, so this bench measures the
// four points of the lifecycle on the SAME final RIB:
//
//   fresh      the initial build, before any update (baseline context)
//   churned    after the update feed (default 1M events, §4.9-style mix)
//   compacted  after one quiescent Poptrie::compact() pass
//   rebuilt    a from-scratch build of the final RIB (the locality ceiling)
//
// plus the buddy fragmentation counters at each point and the wall time of
// the compaction pass itself. The headline gate is compact_vs_rebuild:
// compacted throughput as a fraction of the full rebuild's (the issue's
// acceptance bar is >= 0.97 on a quiet machine). Emits poptrie-bench/1
// records for benchctl (suite component: churn_locality).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "benchkit/cli.hpp"
#include "benchkit/json.hpp"
#include "benchkit/provenance.hpp"
#include "benchkit/runner.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/radix_trie.hpp"
#include "workload/tablegen.hpp"
#include "workload/updatefeed.hpp"

namespace {

struct PhaseResult {
    const char* phase;
    benchkit::RateResult rate;
    poptrie::Stats stats;
};

PhaseResult measure_phase(const char* phase, const poptrie::Poptrie4& pt,
                          std::size_t lookups, unsigned trials, std::uint64_t seed)
{
    PhaseResult r;
    r.phase = phase;
    r.rate = benchkit::measure_random(
        [&pt](std::uint32_t a) { return pt.lookup(netbase::Ipv4Addr{a}); }, lookups,
        trials, seed);
    r.stats = pt.stats();
    std::printf("%-10s %8.2f Mlps (±%.2f)   node hw=%zu free_blocks=%zu | "
                "leaf hw=%zu free_blocks=%zu\n",
                phase, r.rate.mlps_mean, r.rate.mlps_std, r.stats.node_high_water,
                r.stats.node_free_blocks, r.stats.leaf_high_water,
                r.stats.leaf_free_blocks);
    return r;
}

void emit_phase(benchkit::JsonRecords& json, const PhaseResult& r)
{
    json.begin_record();
    json.field("tool", std::string_view{"bench_churn_locality"});
    json.field("phase", std::string_view{r.phase});
    json.field("mlps", r.rate.mlps_mean);
    json.field("mlps_std", r.rate.mlps_std);
    json.field("node_high_water", std::uint64_t{r.stats.node_high_water});
    json.field("leaf_high_water", std::uint64_t{r.stats.leaf_high_water});
    json.field("node_free_blocks", std::uint64_t{r.stats.node_free_blocks});
    json.field("leaf_free_blocks", std::uint64_t{r.stats.leaf_free_blocks});
    json.field("node_pool_used", std::uint64_t{r.stats.node_pool_used});
    json.field("leaf_pool_used", std::uint64_t{r.stats.leaf_pool_used});
    benchkit::stamp_provenance(json);
}

}  // namespace

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help(
            "bench_churn_locality",
            "  --routes=N        synthetic table size (default 150000)\n"
            "  --updates=N       churn feed length (default 1000000)\n"
            "  --lookups=N       lookups per trial (default 2097152)\n"
            "  --trials=N        timed trials per phase (default 5)\n"
            "  --direct-bits=N   direct pointing bits (default 18)\n"
            "  --hugepages=M     arena policy: auto | on | off (default auto)\n"
            "  --seed=S          table/feed/probe seed (default 1)\n"
            "  --json-out=FILE   write poptrie-bench/1 records to FILE"))
        return 0;

    const std::size_t n_routes = args.get_u64("routes", 150'000);
    const std::size_t n_updates = args.get_u64("updates", 1'000'000);
    const std::size_t lookups = args.get_u64("lookups", std::size_t{1} << 21);
    const auto trials = static_cast<unsigned>(args.get_u64("trials", 5));
    const std::uint64_t seed = args.seed(1);
    const std::string hugepages = args.get("hugepages", "auto");

    poptrie::Config cfg;
    cfg.direct_bits = static_cast<unsigned>(args.get_u64("direct-bits", 18));
    if (hugepages == "on") {
        cfg.hugepages = alloc::HugepagePolicy::kOn;
    } else if (hugepages == "off") {
        cfg.hugepages = alloc::HugepagePolicy::kOff;
    } else if (hugepages != "auto") {
        std::fprintf(stderr, "bench_churn_locality: --hugepages must be auto|on|off\n");
        return 2;
    }

    // Table-5-style synthetic table (§4.6 generator), then the §4.9-shaped
    // update feed against it; withdrawals and re-announcements of new
    // prefixes scatter the pools the way a long BGP session would.
    workload::TableGenConfig gen;
    gen.seed = seed;
    gen.target_routes = n_routes;
    const auto routes = workload::generate_table(gen);
    rib::RadixTrie<netbase::Ipv4Addr> rib;
    rib.insert_all(routes);

    std::printf("# churn locality: %zu routes, %zu updates, %zu lookups x %u trials, "
                "direct_bits=%u, hugepages=%s\n",
                routes.size(), n_updates, lookups, trials, cfg.direct_bits,
                hugepages.c_str());

    auto pt = std::make_unique<poptrie::Poptrie4>(rib, cfg);
    benchkit::note_arena_backing(
        alloc::backing_name(pt->memory_report().backing));

    const auto fresh = measure_phase("fresh", *pt, lookups, trials, seed + 100);

    // quiescent: single-threaded bench — no reader thread ever exists, so
    // the drain and the storage-moving compact() below are safe.
    const psync::QuiescentSection quiescent;
    workload::UpdateFeedConfig ucfg;
    ucfg.seed = seed + 11;
    ucfg.updates = n_updates;
    const auto feed = workload::make_update_feed(routes, ucfg);
    for (const auto& ev : feed) pt->apply(rib, ev.prefix, ev.next_hop);
    pt->drain();

    const auto churned = measure_phase("churned", *pt, lookups, trials, seed + 100);

    const auto c0 = std::chrono::steady_clock::now();
    pt->compact();
    const double compact_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - c0)
            .count();

    const auto compacted = measure_phase("compacted", *pt, lookups, trials, seed + 100);

    const poptrie::Poptrie4 rebuilt_pt{rib, cfg};
    const auto rebuilt = measure_phase("rebuilt", rebuilt_pt, lookups, trials, seed + 100);

    // churned/compacted/rebuilt resolve the same RIB with the same probe
    // stream, so identical checksums double as a cheap equivalence check
    // (fresh may differ: the feed changed the RIB after it was measured).
    if (compacted.rate.checksum != churned.rate.checksum ||
        compacted.rate.checksum != rebuilt.rate.checksum) {
        std::fprintf(stderr,
                     "bench_churn_locality: checksum divergence across phases "
                     "(churned=%llx compacted=%llx rebuilt=%llx)\n",
                     static_cast<unsigned long long>(churned.rate.checksum),
                     static_cast<unsigned long long>(compacted.rate.checksum),
                     static_cast<unsigned long long>(rebuilt.rate.checksum));
        return 1;
    }

    const double compact_vs_rebuild =
        rebuilt.rate.mlps_mean > 0 ? compacted.rate.mlps_mean / rebuilt.rate.mlps_mean : 0;
    const double churn_slowdown =
        fresh.rate.mlps_mean > 0 ? churned.rate.mlps_mean / fresh.rate.mlps_mean : 0;
    std::printf("compact    %.1f ms, compacted/rebuilt = %.3f, churned/fresh = %.3f\n",
                compact_ms, compact_vs_rebuild, churn_slowdown);
    std::printf("# checksum %016llx\n",
                static_cast<unsigned long long>(compacted.rate.checksum));

    if (!args.json_out().empty()) {
        benchkit::JsonRecords json;
        for (const auto* r : {&fresh, &churned, &compacted, &rebuilt}) emit_phase(json, *r);
        json.begin_record();
        json.field("tool", std::string_view{"bench_churn_locality"});
        json.field("phase", std::string_view{"summary"});
        json.field("routes", std::uint64_t{routes.size()});
        json.field("updates", std::uint64_t{n_updates});
        json.field("compact_ms", compact_ms);
        json.field("compact_vs_rebuild", compact_vs_rebuild);
        json.field("churn_slowdown", churn_slowdown);
        benchkit::stamp_provenance(json);
        if (!json.write_file(args.json_out())) {
            std::fprintf(stderr, "bench_churn_locality: cannot write %s\n",
                         args.json_out().c_str());
            return 2;
        }
    }
    return 0;
}
