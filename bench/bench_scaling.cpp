// bench/bench_scaling.cpp — the million-route scale-out study.
//
// The paper's tables stop near 900k routes; this bench charts what happens
// on the way to 10M: random-probe Mlps and the p99.9 per-lookup cycle tail
// versus route count, across the L2 / L3 / TLB cache cliffs, for Poptrie18
// in basic and compressed-leaf (Config::leaf_dict) modes plus the SAIL /
// D18R / Dir24 baselines. Baselines that hit their structural ceilings on
// huge tables are first-class data: the row is emitted with
// {"status":"structural_limit"} and the sweep continues — a baseline that
// cannot represent the table at all IS the scalability result (§4.8 writ
// large).
//
// The two compressed-leaf acceptance gates (--gate):
//   * resident-bytes reduction >= 25% at the largest swept size;
//   * median-Mlps cost <= 10% vs basic at that size.
// Checksum equivalence basic-vs-dict is enforced at EVERY size — a wrong
// decode exits 1 before it can post a number.
//
// Emits poptrie-bench/1 records (suite component: scale; family scale.*).
#include "common.hpp"

#include "benchkit/json.hpp"
#include "benchkit/provenance.hpp"

namespace {

std::vector<std::size_t> split_sizes(const std::string& list)
{
    std::vector<std::size_t> out;
    std::size_t pos = 0;
    while (pos < list.size()) {
        const auto comma = list.find(',', pos);
        const auto end = comma == std::string::npos ? list.size() : comma;
        out.push_back(static_cast<std::size_t>(std::stoull(list.substr(pos, end - pos))));
        pos = end + 1;
    }
    return out;
}

struct Row {
    std::string structure;
    bool ok = false;
    std::string error;
    double mlps = 0;
    double mlps_std = 0;
    double p999_cycles = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t checksum = 0;
};

void emit_row(benchkit::JsonRecords& json, std::size_t size, const Row& r)
{
    json.begin_record();
    json.field("tool", std::string_view{"bench_scaling"});
    json.field("routes", std::uint64_t{size});
    json.field("structure", std::string_view{r.structure});
    json.field("status", std::string_view{r.ok ? "ok" : "structural_limit"});
    if (r.ok) {
        json.field("mlps", r.mlps);
        json.field("mlps_std", r.mlps_std);
        json.field("p999_cycles", r.p999_cycles);
        if (r.resident_bytes != 0)
            json.field("resident_bytes", std::uint64_t{r.resident_bytes});
    } else {
        json.field("error", std::string_view{r.error});
    }
    benchkit::stamp_provenance(json);
}

}  // namespace

int main(int argc, char** argv)
{
    using namespace bench;
    const benchkit::Args args(argc, argv);
    if (args.handle_help(
            "bench_scaling",
            "  --sizes-list=L    comma-separated route counts\n"
            "                    (default 100000,250000,500000,1000000,2000000,5000000)\n"
            "  --lookups=N       lookups per trial (default 2097152)\n"
            "  --trials=N        timed trials per cell (default 3)\n"
            "  --tail-samples=N  per-lookup cycle samples for p99.9 (default 262144)\n"
            "  --seed=S          table seed (default 42)\n"
            "  --next-hops=N     distinct next hops (default 100; >256 defeats the dict)\n"
            "  --no-baselines    skip SAIL/D18R/Dir24 (Poptrie-only sweep)\n"
            "  --gate            enforce the compressed-leaf acceptance gates at the\n"
            "                    largest size (>=25% bytes reduction, <=10% Mlps cost)\n"
            "  --json-out=FILE   write poptrie-bench/1 records to FILE"))
        return 0;

    const auto sizes =
        split_sizes(args.get("sizes-list", "100000,250000,500000,1000000,2000000,5000000"));
    const std::size_t lookups = args.get_u64("lookups", std::size_t{1} << 21);
    const auto trials = static_cast<unsigned>(args.get_u64("trials", 3));
    const std::size_t tail_samples = args.get_u64("tail-samples", std::size_t{1} << 18);
    const std::uint64_t seed = args.seed(42);
    const auto next_hops = static_cast<unsigned>(args.get_u64("next-hops", 100));
    const bool baselines = !args.has("no-baselines");
    const bool gate = args.has("gate");

    std::printf("# scale-out sweep: sizes={");
    for (std::size_t i = 0; i < sizes.size(); ++i)
        std::printf("%s%zu", i != 0 ? "," : "", sizes[i]);
    std::printf("} lookups=%zu x%u, tail=%zu samples, next_hops=%u\n", lookups, trials,
                tail_samples, next_hops);
    print_host_note();
    ChecksumSink sink;
    benchkit::JsonRecords json;

    benchkit::TablePrinter table({{"routes", 9},
                                  {"structure", 14, false},
                                  {"Mlps", 14},
                                  {"p99.9 cyc", 10},
                                  {"resident MiB", 12}});
    table.print_header();

    double gate_basic_mlps = 0, gate_dict_mlps = 0;
    std::uint64_t gate_basic_bytes = 0, gate_dict_bytes = 0;
    bool gate_dict_encoded = false;

    for (const std::size_t n : sizes) {
        workload::ScaledTableConfig gen;
        gen.seed = seed;
        gen.target_routes = n;
        gen.next_hops = next_hops;
        const auto routes = workload::generate_scaled_table(gen);
        Rib4 rib;
        rib.insert_all(routes);

        std::vector<Row> rows;
        const auto measure_into = [&](Row& r, auto&& lookup) {
            const auto rate = benchkit::measure_random(lookup, lookups, trials, seed + 9);
            auto cycles = sample_cycles(lookup, tail_samples, sink, seed + 11);
            const benchkit::Percentiles pct(std::move(cycles));
            r.ok = true;
            r.mlps = rate.mlps_mean;
            r.mlps_std = rate.mlps_std;
            r.p999_cycles = pct.percentile(99.9);
            r.checksum = rate.checksum;
            sink.add(rate.checksum);
        };

        // Poptrie18, basic leaves then dictionary-coded leaves; both
        // compacted so the layouts differ only in the leaf encoding.
        Row basic;
        basic.structure = "poptrie18";
        Row dict;
        dict.structure = "poptrie18-dict";
        std::uint64_t dict_slots = 0;
        {
            // quiescent: single-threaded bench — no reader thread exists, so
            // compact() at build time is safe.
            const psync::QuiescentSection quiescent;
            poptrie::Config cfg;
            cfg.direct_bits = 18;
            auto pt = std::make_unique<poptrie::Poptrie4>(rib, cfg);
            pt->compact();
            basic.resident_bytes = pt->stats().memory_bytes;
            measure_into(basic, [&pt](std::uint32_t a) { return pt->lookup_raw<true>(a); });

            cfg.leaf_dict = true;
            auto ptd = std::make_unique<poptrie::Poptrie4>(rib, cfg);
            ptd->compact();
            const auto st = ptd->stats();
            dict.resident_bytes = st.memory_bytes;
            dict_slots = st.leaf8_slots;
            measure_into(dict, [&ptd](std::uint32_t a) { return ptd->lookup_raw<true>(a); });
        }
        if (basic.checksum != dict.checksum) {
            std::fprintf(stderr,
                         "bench_scaling: basic/dict checksum divergence at %zu routes "
                         "(%llx vs %llx)\n",
                         n, static_cast<unsigned long long>(basic.checksum),
                         static_cast<unsigned long long>(dict.checksum));
            return 1;
        }
        rows.push_back(basic);
        rows.push_back(dict);

        if (baselines) {
            const Rib4 fib_src = rib::aggregate(rib);
            Row sail;
            sail.structure = "sail";
            try {
                const baselines::Sail s(fib_src);
                measure_into(sail, [&s](std::uint32_t a) { return s.lookup(Ipv4Addr{a}); });
            } catch (const baselines::StructuralLimit& e) {
                sail.error = e.what();
            }
            rows.push_back(sail);

            Row d18r;
            d18r.structure = "d18r";
            try {
                const baselines::Dxr d(fib_src, baselines::DxrOptions{18, true});
                measure_into(d18r, [&d](std::uint32_t a) { return d.lookup(Ipv4Addr{a}); });
            } catch (const baselines::StructuralLimit& e) {
                d18r.error = e.what();
            }
            rows.push_back(d18r);

            Row dir24;
            dir24.structure = "dir24";
            try {
                const baselines::Dir24 d(fib_src);
                measure_into(dir24, [&d](std::uint32_t a) { return d.lookup(Ipv4Addr{a}); });
            } catch (const baselines::StructuralLimit& e) {
                dir24.error = e.what();
            }
            rows.push_back(dir24);
        }

        for (const auto& r : rows) {
            if (r.ok) {
                table.print_row(
                    {benchkit::fmt_count(n), r.structure,
                     benchkit::fmt_mean_std(r.mlps, r.mlps_std),
                     benchkit::fmt(r.p999_cycles, 0),
                     r.resident_bytes != 0
                         ? benchkit::fmt(static_cast<double>(r.resident_bytes) / (1 << 20), 2)
                         : std::string{"-"}});
            } else {
                table.print_row({benchkit::fmt_count(n), r.structure, "structural-limit",
                                 "-", "-"});
                std::printf("    %s: %s\n", r.structure.c_str(), r.error.c_str());
            }
            emit_row(json, n, r);
        }

        if (n == sizes.back()) {
            gate_basic_mlps = basic.mlps;
            gate_dict_mlps = dict.mlps;
            gate_basic_bytes = basic.resident_bytes;
            gate_dict_bytes = dict.resident_bytes;
            gate_dict_encoded = dict_slots != 0;
        }
    }

    // Headline compressed-leaf summary at the largest size.
    const double reduction =
        gate_basic_bytes != 0
            ? 1.0 - static_cast<double>(gate_dict_bytes) / static_cast<double>(gate_basic_bytes)
            : 0.0;
    const double mlps_cost =
        gate_basic_mlps > 0 ? 1.0 - gate_dict_mlps / gate_basic_mlps : 0.0;
    std::printf("\nleaf-dict at %zu routes: resident bytes %.1f%% smaller, "
                "Mlps cost %.1f%%%s\n",
                sizes.back(), reduction * 100, mlps_cost * 100,
                gate_dict_encoded ? "" : " (dict NOT encoded: >256 distinct next hops)");
    json.begin_record();
    json.field("tool", std::string_view{"bench_scaling"});
    json.field("structure", std::string_view{"summary"});
    json.field("routes", std::uint64_t{sizes.back()});
    json.field("status", std::string_view{"ok"});
    json.field("dict_bytes_reduction", reduction);
    json.field("dict_mlps_cost", mlps_cost);
    json.field("dict_encoded", gate_dict_encoded ? 1.0 : 0.0);
    benchkit::stamp_provenance(json);

    if (!args.json_out().empty() && !json.write_file(args.json_out())) {
        std::fprintf(stderr, "bench_scaling: cannot write %s\n", args.json_out().c_str());
        return 2;
    }

    if (gate) {
        bool failed = false;
        if (!gate_dict_encoded) {
            std::fprintf(stderr, "bench_scaling --gate: dictionary was not encoded\n");
            failed = true;
        }
        if (reduction < 0.25) {
            std::fprintf(stderr,
                         "bench_scaling --gate: bytes reduction %.1f%% < 25%% target\n",
                         reduction * 100);
            failed = true;
        }
        if (mlps_cost > 0.10) {
            std::fprintf(stderr, "bench_scaling --gate: Mlps cost %.1f%% > 10%% budget\n",
                         mlps_cost * 100);
            failed = true;
        }
        if (failed) return 1;
        std::printf("gate: PASS (reduction %.1f%% >= 25%%, cost %.1f%% <= 10%%)\n",
                    reduction * 100, mlps_cost * 100);
    }
    return 0;
}
