// bench/common.hpp — shared scaffolding for the per-table/figure bench
// binaries: dataset construction, structure building (with §4.8 structural
// limits surfaced instead of crashing), per-lookup cycle sampling, and
// checksum consumption so the optimizer cannot elide measured loops.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/dir24.hpp"
#include "baselines/dxr.hpp"
#include "baselines/sail.hpp"
#include "baselines/treebitmap.hpp"
#include "benchkit/cli.hpp"
#include "benchkit/cycles.hpp"
#include "benchkit/runner.hpp"
#include "benchkit/stats.hpp"
#include "benchkit/table_printer.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/aggregate.hpp"
#include "rib/radix_trie.hpp"
#include "workload/datasets.hpp"
#include "workload/tablegen.hpp"
#include "workload/trafficgen.hpp"
#include "workload/updatefeed.hpp"

namespace bench {

using netbase::Ipv4Addr;
using rib::NextHop;
using Rib4 = rib::RadixTrie<Ipv4Addr>;

/// Accumulates checksums from measured loops and prints them once at exit,
/// so lookups have observable effects and cannot be dead-code-eliminated.
class ChecksumSink {
public:
    void add(std::uint64_t v) noexcept { sum_ ^= v; }
    ~ChecksumSink() { std::printf("# checksum %016llx\n", static_cast<unsigned long long>(sum_)); }

private:
    std::uint64_t sum_ = 0;
};

/// One dataset, loaded: the raw RIB (what "Radix" is measured on) and the
/// aggregated FIB source every compiled structure is built from — the paper
/// applies route aggregation RIB→FIB and notes it "is applicable to other
/// lookup technologies as well".
struct Dataset {
    std::string name;
    rib::RouteList<Ipv4Addr> routes;
    Rib4 rib;      // raw
    Rib4 fib_src;  // aggregated
};

inline Dataset load_dataset(const workload::DatasetSpec& spec)
{
    Dataset d;
    d.name = spec.name;
    d.routes = workload::make_table(spec);
    d.rib.insert_all(d.routes);
    d.fib_src = rib::aggregate(d.rib);
    return d;
}

inline Dataset load_routes(std::string name, rib::RouteList<Ipv4Addr> routes)
{
    Dataset d;
    d.name = std::move(name);
    d.routes = std::move(routes);
    d.rib.insert_all(d.routes);
    d.fib_src = rib::aggregate(d.rib);
    return d;
}

/// Compiled structures for one dataset. Baselines that hit a structural
/// limit are left empty with the reason recorded (Table 5's "N/A" cells).
struct Structures {
    std::unique_ptr<baselines::TreeBitmap16> tbm16;
    std::unique_ptr<baselines::TreeBitmap64> tbm64;
    std::unique_ptr<baselines::Sail> sail;
    std::string sail_error;
    std::unique_ptr<baselines::Dxr> d16r;
    std::unique_ptr<baselines::Dxr> d18r;
    std::string dxr_error;
    bool dxr_modified = false;  // true when the §4.8 extension was required
    std::unique_ptr<baselines::Dir24> dir24;
    std::string dir24_error;
    std::unique_ptr<poptrie::Poptrie4> poptrie0;
    std::unique_ptr<poptrie::Poptrie4> poptrie16;
    std::unique_ptr<poptrie::Poptrie4> poptrie18;
};

struct BuildSelection {
    bool treebitmap = true;
    bool sail = true;
    bool dxr = true;
    bool dir24 = false;
    bool poptrie0 = false;
    bool poptrie16 = true;
    bool poptrie18 = true;
};

inline Structures build_structures(const Dataset& d, const BuildSelection& sel = {})
{
    Structures s;
    if (sel.treebitmap) {
        s.tbm16 = std::make_unique<baselines::TreeBitmap16>(d.fib_src);
        s.tbm64 = std::make_unique<baselines::TreeBitmap64>(d.fib_src);
    }
    if (sel.sail) {
        try {
            s.sail = std::make_unique<baselines::Sail>(d.fib_src);
        } catch (const baselines::StructuralLimit& e) {
            s.sail_error = e.what();
        }
    }
    if (sel.dxr) {
        try {
            s.d16r = std::make_unique<baselines::Dxr>(d.fib_src,
                                                      baselines::DxrOptions{16, false});
            s.d18r = std::make_unique<baselines::Dxr>(d.fib_src,
                                                      baselines::DxrOptions{18, false});
        } catch (const baselines::StructuralLimit& e) {
            s.dxr_error = e.what();
            try {
                s.d16r = std::make_unique<baselines::Dxr>(d.fib_src,
                                                          baselines::DxrOptions{16, true});
                s.d18r = std::make_unique<baselines::Dxr>(d.fib_src,
                                                          baselines::DxrOptions{18, true});
                s.dxr_modified = true;
            } catch (const baselines::StructuralLimit& e2) {
                s.dxr_error = e2.what();
            }
        }
    }
    if (sel.dir24) {
        try {
            s.dir24 = std::make_unique<baselines::Dir24>(d.fib_src);
        } catch (const baselines::StructuralLimit& e) {
            s.dir24_error = e.what();
        }
    }
    const auto make_poptrie = [&](unsigned bits) {
        poptrie::Config cfg;
        cfg.direct_bits = bits;
        return std::make_unique<poptrie::Poptrie4>(d.rib, cfg);
    };
    if (sel.poptrie0) s.poptrie0 = make_poptrie(0);
    if (sel.poptrie16) s.poptrie16 = make_poptrie(16);
    if (sel.poptrie18) s.poptrie18 = make_poptrie(18);
    return s;
}

/// Samples per-lookup TSC cycles for `lookup` over `n` addresses from a
/// fixed-seed xorshift stream (§4.6 uses "the same seed ... to precisely
/// compare different algorithms"), with the measured bracket overhead
/// subtracted. Also returns the addresses when `addresses` is non-null so
/// Fig. 11 can bucket the samples by binary radix depth.
template <class Lookup>
std::vector<std::uint64_t> sample_cycles(Lookup&& lookup, std::size_t n,
                                         ChecksumSink& sink, std::uint64_t seed = 0,
                                         std::vector<std::uint32_t>* addresses = nullptr)
{
    const auto overhead = benchkit::calibrate_tsc_overhead();
    std::vector<std::uint64_t> cycles;
    cycles.reserve(n);
    if (addresses != nullptr) addresses->reserve(n);
    workload::Xorshift128 rng(seed);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t a = rng.next();
        const auto t0 = benchkit::tsc_begin();
        sum += static_cast<std::uint64_t>(lookup(a));
        const auto t1 = benchkit::tsc_end();
        const auto raw = t1 - t0;
        cycles.push_back(raw > overhead ? raw - overhead : 0);
        if (addresses != nullptr) addresses->push_back(a);
    }
    sink.add(sum);
    return cycles;
}

/// The 100GbE minimum-packet wire rate the paper uses as its reference line.
inline constexpr double kWireRate100GbE = 148.8;

inline void print_host_note()
{
    std::printf("# Host note: absolute Mlps depend on this machine's CPU/caches; the\n"
                "# paper's i7-4770K @3.9GHz numbers are printed as 'paper' references.\n"
                "# Compare shapes and ratios, not absolutes (see EXPERIMENTS.md).\n");
}

}  // namespace bench
