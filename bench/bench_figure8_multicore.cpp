// Figure 8 — aggregated random-pattern lookup rate of Poptrie18 by thread
// count (1..4 in the paper; up to the host's core count here), on
// REAL-Tier1-A and REAL-Tier1-B. The structure is shared read-only, so the
// paper expects near-linear scaling.
#include <thread>

#include "common.hpp"
#include "dataplane/worker_pool.hpp"

using namespace bench;

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_figure8_multicore",
                         "  --threads=N  max thread count\n"
                         "  --pin        pin measurement threads to CPUs"))
        return 0;
    const bool pin = args.has("pin");
    const auto lookups = args.lookups(std::size_t{1} << 22, std::size_t{1} << 25);
    const auto trials = args.trials();
    const auto max_threads = static_cast<unsigned>(args.get_u64(
        "threads", std::min(4u, std::max(1u, std::thread::hardware_concurrency()))));

    std::printf("Figure 8: aggregated lookup rate by number of threads (Poptrie18)\n");
    std::printf("# paper: ~914 Mlps at 4 threads on Tier1-A (241 x ~3.8 scaling)\n\n");
    print_host_note();
    ChecksumSink sink;
    benchkit::TablePrinter table({{"Dataset", 13, false},
                                  {"Threads", 7},
                                  {"Rate(std)[Mlps]", 16},
                                  {"Scaling", 7}});
    table.print_header();

    for (const auto& spec : {workload::real_tier1_a(), workload::real_tier1_b()}) {
        const auto d = load_dataset(spec);
        poptrie::Config cfg;
        cfg.direct_bits = 18;
        const poptrie::Poptrie4 pt{d.rib, cfg};
        double base = 0;
        for (unsigned threads = 1; threads <= max_threads; ++threads) {
            const auto r = dataplane::measure_random_multithread(
                [&](std::uint32_t a) { return pt.lookup_raw<true>(a); }, lookups, threads,
                trials, pin);
            sink.add(r.checksum);
            if (threads == 1) base = r.mlps_mean;
            table.print_row({d.name, std::to_string(threads),
                             benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std),
                             benchkit::fmt(r.mlps_mean / base, 2) + "x"});
        }
    }
    return 0;
}
