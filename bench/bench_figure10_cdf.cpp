// Figure 10 — CDF of per-lookup CPU cycles on REAL-Tier1-A for SAIL,
// D16R/D18R, Poptrie16/18 (random traffic, one shared seed). Prints the CDF
// as a table of cycle values x algorithms, plus an ASCII plot.
#include "common.hpp"

using namespace bench;

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_figure10_cdf")) return 0;
    const auto n = args.lookups(std::size_t{1} << 22, std::size_t{1} << 24);
    const auto seed = args.seed(0);

    std::printf("Figure 10: CDF of CPU cycles per lookup (REAL-Tier1-A)\n");
    std::printf("# paper shape: SAIL steepest below ~22 cycles but a long tail past 279;\n"
                "# Poptrie18/D18R nearly identical below 120 cycles, Poptrie18 shortest tail\n\n");
    const auto d = load_dataset(workload::real_tier1_a());
    const auto s = build_structures(d);
    ChecksumSink sink;

    struct Algo {
        const char* name;
        benchkit::Percentiles pct;
    };
    std::vector<Algo> algos;
    algos.push_back({"SAIL", benchkit::Percentiles(sample_cycles(
                                 [&](std::uint32_t a) { return s.sail->lookup(Ipv4Addr{a}); },
                                 n, sink, seed))});
    algos.push_back({"D16R", benchkit::Percentiles(sample_cycles(
                                 [&](std::uint32_t a) { return s.d16r->lookup(Ipv4Addr{a}); },
                                 n, sink, seed))});
    algos.push_back({"Poptrie16",
                     benchkit::Percentiles(sample_cycles(
                         [&](std::uint32_t a) { return s.poptrie16->lookup_raw<true>(a); }, n,
                         sink, seed))});
    algos.push_back({"D18R", benchkit::Percentiles(sample_cycles(
                                 [&](std::uint32_t a) { return s.d18r->lookup(Ipv4Addr{a}); },
                                 n, sink, seed))});
    algos.push_back({"Poptrie18",
                     benchkit::Percentiles(sample_cycles(
                         [&](std::uint32_t a) { return s.poptrie18->lookup_raw<true>(a); }, n,
                         sink, seed))});

    // CDF sampled at paper-scale x values (0..350 cycles).
    std::vector<std::uint64_t> xs;
    for (std::uint64_t x = 0; x <= 350; x += 10) xs.push_back(x);
    std::printf("cycles");
    for (const auto& a : algos) std::printf("%11s", a.name);
    std::printf("\n");
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::printf("%6llu", static_cast<unsigned long long>(xs[i]));
        for (const auto& a : algos) std::printf("%11.4f", a.pct.cdf_at({xs[i]})[0]);
        std::printf("\n");
    }

    // ASCII rendering, one row per 5% of CDF.
    std::printf("\nASCII CDF (x: cycles 0..350, marks at the cycle count where each\n"
                "algorithm first reaches the row's CDF level)\n");
    for (int level = 95; level >= 5; level -= 5) {
        std::printf("%3d%% |", level);
        std::string line(71, ' ');
        for (std::size_t k = 0; k < algos.size(); ++k) {
            const double c = algos[k].pct.percentile(level);
            const auto pos = static_cast<std::size_t>(std::min(c / 5.0, 70.0));
            line[pos] = static_cast<char>('1' + k);
        }
        std::printf("%s\n", line.c_str());
    }
    std::printf("      0 cycles");
    std::printf("%56s\n", "350 cycles");
    for (std::size_t k = 0; k < algos.size(); ++k)
        std::printf("  (%zu) %s\n", k + 1, algos[k].name);
    return 0;
}
