// Table 6 (+ §4.10's DXR comparison) — IPv6: Poptrie6 size, compile time and
// random-lookup rate for s = 0, 16, 18 on a ~20k-prefix table, queried with
// random addresses inside 2000::/8 (each synthesized from four xorshift
// draws, as in the paper), plus D16R/D18R-style DXR6.
#include <chrono>

#include "baselines/dxr.hpp"
#include "common.hpp"
#include "workload/tablegen.hpp"

using namespace bench;
using netbase::Ipv6Addr;
using netbase::u128;

namespace {

Ipv6Addr random_2000(workload::Xorshift128& rng)
{
    u128 v = (static_cast<u128>(rng.next()) << 96) | (static_cast<u128>(rng.next()) << 64) |
             (static_cast<u128>(rng.next()) << 32) | rng.next();
    v &= ~(u128{0xFF} << 120);
    v |= u128{0x20} << 120;
    return Ipv6Addr{v};
}

}  // namespace

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_table6_ipv6")) return 0;
    const auto lookups = args.lookups(std::size_t{1} << 22, std::size_t{1} << 25);
    const auto trials = args.trials();

    std::printf("Table 6: Poptrie on the IPv6 routing table (random in 2000::/8)\n");
    std::printf("# paper: s=0: 414KiB/7.2ms/138.5 Mlps; s=16: 709KiB/4.8ms/209.8;\n"
                "#        s=18: 1437KiB/4.7ms/211.3; D16R 163.1, D18R 169.9 Mlps\n\n");
    print_host_note();
    ChecksumSink sink;

    workload::TableGen6Config gen;
    gen.seed = args.seed(1);
    const auto routes = workload::generate_table6(gen);
    rib::RadixTrie<Ipv6Addr> rib;
    rib.insert_all(routes);
    std::printf("# table: %zu prefixes, %u next hops\n\n", routes.size(), gen.next_hops);

    benchkit::TablePrinter table({{"Structure", 12, false},
                                  {"# inodes", 8},
                                  {"# leaves", 8},
                                  {"Mem[KiB]", 8},
                                  {"Compile(std)[ms]", 16},
                                  {"Rate(std)[Mlps]", 16}});
    table.print_header();

    for (const unsigned s : {0u, 16u, 18u}) {
        poptrie::Config cfg;
        cfg.direct_bits = s;
        std::vector<double> compile_ms;
        std::unique_ptr<poptrie::Poptrie6> pt;
        for (unsigned t = 0; t < std::max(1u, trials / 2); ++t) {
            const auto t0 = std::chrono::steady_clock::now();
            pt = std::make_unique<poptrie::Poptrie6>(rib, cfg);
            compile_ms.push_back(std::chrono::duration<double, std::milli>(
                                     std::chrono::steady_clock::now() - t0)
                                     .count());
        }
        const auto cms = benchkit::mean_std(compile_ms);
        const auto stats = pt->stats();
        const auto r = benchkit::measure_random_keys(
            [&](Ipv6Addr a) { return pt->lookup(a); },
            [](workload::Xorshift128& rng) { return random_2000(rng); }, lookups, trials);
        sink.add(r.checksum);
        table.print_row({"Poptrie" + std::to_string(s), benchkit::fmt_count(stats.internal_nodes),
                         benchkit::fmt_count(stats.leaves),
                         benchkit::fmt(static_cast<double>(stats.memory_bytes) / 1024.0, 0),
                         benchkit::fmt_mean_std(cms.mean, cms.std),
                         benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std)});
    }

    for (const unsigned k : {16u, 18u}) {
        const baselines::Dxr6 dxr{rib, k};
        const auto r = benchkit::measure_random_keys(
            [&](Ipv6Addr a) { return dxr.lookup(a); },
            [](workload::Xorshift128& rng) { return random_2000(rng); }, lookups, trials);
        sink.add(r.checksum);
        table.print_row({"D" + std::to_string(k) + "R (v6)", "-",
                         benchkit::fmt_count(dxr.range_count()),
                         benchkit::fmt(static_cast<double>(dxr.memory_bytes()) / 1024.0, 0), "-",
                         benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std)});
    }
    std::printf("\n# wire rate reference: 148.8 Mlps (100GbE, min packets)\n");
    return 0;
}
