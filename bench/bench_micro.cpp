// Microbenchmarks (google-benchmark) of the hot-path primitives: the popcnt
// indexing trick (§3.2), chunk extraction, xorshift generation overhead
// (§4.2 measures it at ~1.22 ns), and single-structure lookups at several
// table sizes for quick regression tracking.
#include <benchmark/benchmark.h>

#include "netbase/bits.hpp"
#include "poptrie/poptrie.hpp"
#include "workload/tablegen.hpp"
#include "workload/xorshift.hpp"

namespace {

void BM_Xorshift(benchmark::State& state)
{
    workload::Xorshift128 rng(1);
    for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xorshift);

void BM_PopcountHardware(benchmark::State& state)
{
    workload::Xorshift128 rng(1);
    std::uint64_t v = rng.next64();
    for (auto _ : state) {
        benchmark::DoNotOptimize(netbase::popcount64(v));
        v = v * 0x9E3779B97F4A7C15ull + 1;
    }
}
BENCHMARK(BM_PopcountHardware);

void BM_PopcountSoftware(benchmark::State& state)
{
    workload::Xorshift128 rng(1);
    std::uint64_t v = rng.next64();
    for (auto _ : state) {
        benchmark::DoNotOptimize(netbase::popcount64_soft(v));
        v = v * 0x9E3779B97F4A7C15ull + 1;
    }
}
BENCHMARK(BM_PopcountSoftware);

void BM_PoptrieLookup(benchmark::State& state)
{
    workload::TableGenConfig cfg;
    cfg.seed = 1;
    cfg.target_routes = static_cast<std::size_t>(state.range(0));
    cfg.next_hops = 64;
    rib::RadixTrie<netbase::Ipv4Addr> rib;
    rib.insert_all(workload::generate_table(cfg));
    poptrie::Config pcfg;
    pcfg.direct_bits = 18;
    const poptrie::Poptrie<netbase::Ipv4Addr> pt{rib, pcfg};
    workload::Xorshift128 rng(2);
    for (auto _ : state) benchmark::DoNotOptimize(pt.lookup_raw<true>(rng.next()));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PoptrieLookup)->Arg(10'000)->Arg(100'000)->Arg(500'000);

void BM_RadixLookup(benchmark::State& state)
{
    workload::TableGenConfig cfg;
    cfg.seed = 1;
    cfg.target_routes = static_cast<std::size_t>(state.range(0));
    cfg.next_hops = 64;
    rib::RadixTrie<netbase::Ipv4Addr> rib;
    rib.insert_all(workload::generate_table(cfg));
    workload::Xorshift128 rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(rib.lookup(netbase::Ipv4Addr{rng.next()}));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RadixLookup)->Arg(10'000)->Arg(100'000);

}  // namespace

BENCHMARK_MAIN();
