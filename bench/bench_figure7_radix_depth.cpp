// Figure 7 — heat map of binary radix depth vs matched prefix length over
// the IPv4 address space on REAL-Tier1-A. The paper scans all 2^32
// addresses; the quick default samples uniformly (the full sweep is
// available with --full). Output: a matrix of log10-bucketed counts plus the
// marginal the paper discusses (how often the depth exceeds the matched
// length).
#include <array>
#include <cmath>

#include "common.hpp"

using namespace bench;

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_figure7_radix_depth",
                         "  --full sweeps all 2^32 addresses (minutes)"))
        return 0;
    const bool full = args.has("full");
    const auto samples = args.lookups(std::size_t{1} << 24, std::size_t{1} << 32);

    std::printf("Figure 7: binary radix depth vs matched prefix length (REAL-Tier1-A)\n");
    std::printf("# %s of the address space\n\n",
                full ? "exhaustive sweep" : "uniform sample");
    const auto d = load_dataset(workload::real_tier1_a());

    // counts[matched_len][radix_depth]
    std::array<std::array<std::uint64_t, 33>, 33> counts{};
    std::uint64_t deeper = 0;
    std::uint64_t total = 0;
    const auto record = [&](std::uint32_t a) {
        const auto det = d.rib.lookup_detail(Ipv4Addr{a});
        const unsigned len = det.matched ? det.matched_length : 0;
        counts[len][std::min(det.radix_depth, 32u)]++;
        if (det.radix_depth > len) ++deeper;
        ++total;
    };
    if (full) {
        std::uint32_t a = 0;
        do {
            record(a);
        } while (++a != 0);
    } else {
        workload::Xorshift128 rng(args.seed(1));
        for (std::size_t i = 0; i < samples; ++i) record(rng.next());
    }

    // Heat map: rows = radix depth (y-axis), columns = prefix length
    // (x-axis), cell = floor(log10(count)) as in the paper's colour scale.
    std::printf("rows: binary radix depth 0..32 (top=32); cols: matched prefix length 0..32\n");
    std::printf("cell: digit d means 10^d <= count < 10^(d+1); '.' means zero\n\n");
    for (int depth = 32; depth >= 0; --depth) {
        std::printf("%2d |", depth);
        for (int len = 0; len <= 32; ++len) {
            const auto c = counts[static_cast<std::size_t>(len)][static_cast<std::size_t>(depth)];
            if (c == 0)
                std::printf(" .");
            else
                std::printf(" %d", static_cast<int>(std::log10(static_cast<double>(c))));
        }
        std::printf("\n");
    }
    std::printf("    +");
    for (int len = 0; len <= 32; ++len) std::printf("--");
    std::printf("\n     ");
    for (int len = 0; len <= 32; ++len) std::printf("%2d", len % 10);
    std::printf("\n\n");

    std::printf("addresses whose radix depth exceeds the matched prefix length: %.1f%%\n",
                100.0 * static_cast<double>(deeper) / static_cast<double>(total));
    const auto frac_deeper_than = [&](unsigned t) {
        std::uint64_t n = 0;
        for (unsigned len = 0; len <= 32; ++len)
            for (unsigned depth = t + 1; depth <= 32; ++depth) n += counts[len][depth];
        return 100.0 * static_cast<double>(n) / static_cast<double>(total);
    };
    std::printf("share of address space with radix depth > 18: %.1f%% (paper §4.7: 22.1%%)\n",
                frac_deeper_than(18));
    std::printf("share of address space with radix depth > 24: %.2f%% (paper §4.7: 1.66%%)\n",
                frac_deeper_than(24));
    return 0;
}
