// Ablation bench (beyond the paper's tables): isolates each design choice
// DESIGN.md calls out on REAL-Tier1-A:
//   * direct-pointing width sweep s in {0, 8, 12, 14, 16, 18, 20, 22}
//     (memory/speed trade-off around the paper's chosen 16/18);
//   * hardware popcnt vs the software fallback (§3.2's claim that popcnt is
//     the enabling instruction);
//   * leafvec and route aggregation on/off at s = 18 (memory vs rate);
//   * Tree BitMap stride 4 vs 6 (the "64-ary Tree BitMap still loses" point
//     of §4.5) and DIR-24-8 as the direct-pointing ancestor.
#include "baselines/multiway.hpp"
#include "benchkit/json.hpp"
#include "benchkit/provenance.hpp"
#include "common.hpp"
#include "rib/patricia.hpp"

using namespace bench;

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_ablation_options",
                         "  --only=S  run one section: direct | popcnt | leafvec |"
                         " strides | batch (default all)"))
        return 0;
    const auto lookups = args.lookups(std::size_t{1} << 22, std::size_t{1} << 25);
    const auto trials = args.trials();
    const auto only = args.get("only", "all");
    if (only != "all" && only != "direct" && only != "popcnt" && only != "leafvec" &&
        only != "strides" && only != "batch") {
        std::fprintf(stderr, "bench_ablation_options: unknown --only '%s'\n", only.c_str());
        return 2;
    }
    const auto want = [&](const char* section) { return only == "all" || only == section; };
    ChecksumSink sink;
    benchkit::JsonRecords json;
    print_host_note();

    const auto d = load_dataset(workload::real_tier1_a());

    if (want("direct")) {
    std::printf("\nAblation 1: direct-pointing width sweep (leafvec + aggregation)\n\n");
    {
        benchkit::TablePrinter table({{"s", 2},
                                      {"Mem[MiB]", 8},
                                      {"direct[MiB]", 11},
                                      {"Rate(std)[Mlps]", 16}});
        table.print_header();
        for (const unsigned s : {0u, 8u, 12u, 14u, 16u, 18u, 20u, 22u}) {
            poptrie::Config cfg;
            cfg.direct_bits = s;
            const poptrie::Poptrie4 pt{d.rib, cfg};
            const auto r = benchkit::measure_random(
                [&](std::uint32_t a) { return pt.lookup_raw<true>(a); }, lookups, trials);
            sink.add(r.checksum);
            const auto stats = pt.stats();
            table.print_row({std::to_string(s), benchkit::fmt_mib(stats.memory_bytes),
                             benchkit::fmt_mib(stats.direct_slots * 4),
                             benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std)});
        }
    }
    }

    if (want("popcnt")) {
    std::printf("\nAblation 2: hardware popcnt vs software fallback (Poptrie18)\n\n");
    {
        poptrie::Config cfg;
        cfg.direct_bits = 18;
        const poptrie::Poptrie4 pt{d.rib, cfg};
        const auto hw = benchkit::measure_random(
            [&](std::uint32_t a) { return pt.lookup_raw<true, false>(a); }, lookups, trials);
        const auto sw = benchkit::measure_random(
            [&](std::uint32_t a) { return pt.lookup_raw<true, true>(a); }, lookups, trials);
        sink.add(hw.checksum + sw.checksum);
        std::printf("  popcnt instruction: %s Mlps\n",
                    benchkit::fmt_mean_std(hw.mlps_mean, hw.mlps_std).c_str());
        std::printf("  byte-table popcount: %s Mlps (%.1f%% of hardware; the\n"
                    "    Hacker's-Delight bitwise version is idiom-folded to popcnt by GCC)\n",
                    benchkit::fmt_mean_std(sw.mlps_mean, sw.mlps_std).c_str(),
                    100.0 * sw.mlps_mean / hw.mlps_mean);
        for (const auto& [variant, r] :
             {std::pair{"hardware", hw}, std::pair{"software", sw}}) {
            json.begin_record();
            json.field("bench", std::string_view{"ablation"});
            json.field("section", std::string_view{"popcnt"});
            json.field("popcount", std::string_view{variant});
            json.field("mlps", r.mlps_mean);
            json.field("mlps_std", r.mlps_std);
            benchkit::stamp_provenance(json);
        }
    }
    }

    if (want("leafvec")) {
    std::printf("\nAblation 3: leafvec / route aggregation at s = 18\n\n");
    {
        benchkit::TablePrinter table({{"leafvec", 7},
                                      {"aggregation", 11},
                                      {"# inodes", 9},
                                      {"# leaves", 10},
                                      {"Mem[MiB]", 8},
                                      {"Rate(std)[Mlps]", 16}});
        table.print_header();
        for (const bool lc : {false, true}) {
            for (const bool agg : {false, true}) {
                poptrie::Config cfg;
                cfg.direct_bits = 18;
                cfg.leaf_compression = lc;
                cfg.route_aggregation = agg;
                const poptrie::Poptrie4 pt{d.rib, cfg};
                const auto r =
                    lc ? benchkit::measure_random(
                             [&](std::uint32_t a) { return pt.lookup_raw<true>(a); }, lookups,
                             trials)
                       : benchkit::measure_random(
                             [&](std::uint32_t a) { return pt.lookup_raw<false>(a); }, lookups,
                             trials);
                sink.add(r.checksum);
                const auto stats = pt.stats();
                table.print_row({lc ? "on" : "off", agg ? "on" : "off",
                                 benchkit::fmt_count(stats.internal_nodes),
                                 benchkit::fmt_count(stats.leaves),
                                 benchkit::fmt_mib(stats.memory_bytes),
                                 benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std)});
            }
        }
    }
    }

    if (want("strides")) {
    std::printf("\nAblation 4: multibit-trie strides and the direct-pointing ancestor\n\n");
    {
        BuildSelection sel;
        sel.sail = false;
        sel.dxr = false;
        sel.poptrie16 = false;
        sel.poptrie18 = false;
        sel.dir24 = true;
        const auto s = build_structures(d, sel);
        benchkit::TablePrinter table(
            {{"Structure", 22, false}, {"Mem[MiB]", 8}, {"Rate(std)[Mlps]", 16}});
        table.print_header();
        const auto row = [&](const char* name, std::size_t mem, auto&& lookup) {
            const auto r = benchkit::measure_random(lookup, lookups / 2, trials);
            sink.add(r.checksum);
            table.print_row({name, benchkit::fmt_mib(mem),
                             benchkit::fmt_mean_std(r.mlps_mean, r.mlps_std)});
        };
        rib::PatriciaTrie<Ipv4Addr> patricia;
        patricia.insert_all(d.routes);
        row("Radix (binary)", d.rib.memory_bytes(),
            [&](std::uint32_t a) { return d.rib.lookup(Ipv4Addr{a}); });
        row("Patricia (compressed)", patricia.memory_bytes(),
            [&](std::uint32_t a) { return patricia.lookup(Ipv4Addr{a}); });
        row("Tree BitMap (16-ary)", s.tbm16->memory_bytes(),
            [&](std::uint32_t a) { return s.tbm16->lookup(Ipv4Addr{a}); });
        row("Tree BitMap (64-ary)", s.tbm64->memory_bytes(),
            [&](std::uint32_t a) { return s.tbm64->lookup(Ipv4Addr{a}); });
        const baselines::MultiwayTrie4 naive{d.fib_src};
        row("64-ary trie (Fig. 1)", naive.memory_bytes(),
            [&](std::uint32_t a) { return naive.lookup(Ipv4Addr{a}); });
        row("DIR-24-8-BASIC", s.dir24->memory_bytes(),
            [&](std::uint32_t a) { return s.dir24->lookup(Ipv4Addr{a}); });
    }
    }

    if (want("batch")) {
    std::printf("\nAblation 5: batched lookup (lockstep lanes + prefetch, Poptrie18)\n\n");
    {
        poptrie::Config cfg;
        cfg.direct_bits = 18;
        const poptrie::Poptrie4 pt{d.rib, cfg};
        // Pre-materialized keys for both paths so only the lookup strategy
        // differs.
        std::vector<std::uint32_t> keys(lookups);
        workload::Xorshift128 rng(1);
        for (auto& k : keys) k = rng.next();
        std::vector<rib::NextHop> out(keys.size());

        const auto scalar = benchkit::measure_trace(
            [&](std::uint32_t a) { return pt.lookup_raw<true>(a); }, keys, trials);
        sink.add(scalar.checksum);
        std::printf("  scalar:           %s Mlps\n",
                    benchkit::fmt_mean_std(scalar.mlps_mean, scalar.mlps_std).c_str());
        const auto batch_record = [&](std::string_view variant, unsigned lanes, double mlps,
                                      double dispersion) {
            json.begin_record();
            json.field("bench", std::string_view{"ablation"});
            json.field("section", std::string_view{"batch"});
            json.field("variant", variant);
            json.field("lanes", std::uint64_t{lanes});
            json.field("mlps", mlps);
            json.field("mlps_mad", dispersion);
            json.field("speedup_vs_scalar", scalar.mlps_mean > 0 ? mlps / scalar.mlps_mean : 0);
            benchkit::stamp_provenance(json);
        };
        batch_record("scalar", 1, scalar.mlps_mean, scalar.mlps_std);
        // reader: single-threaded bench over a table that never changes — the
        // batch walks below are trivially inside a read-side critical section.
        const psync::EbrReadSection section;
        for (const unsigned lanes : {2u, 4u, 8u, 16u}) {
            std::vector<double> rates;
            std::uint64_t cs = 0;
            for (unsigned t = 0; t < trials; ++t) {
                const auto t0 = std::chrono::steady_clock::now();
                switch (lanes) {
                case 2: pt.lookup_batch<true, 2>(keys.data(), out.data(), keys.size()); break;
                case 4: pt.lookup_batch<true, 4>(keys.data(), out.data(), keys.size()); break;
                case 8: pt.lookup_batch<true, 8>(keys.data(), out.data(), keys.size()); break;
                default:
                    pt.lookup_batch<true, 16>(keys.data(), out.data(), keys.size());
                    break;
                }
                const double secs =
                    std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                        .count();
                rates.push_back(static_cast<double>(keys.size()) / secs / 1e6);
                for (const auto v : out) cs += v;
            }
            sink.add(cs);
            const auto ms = benchkit::mean_std(rates);
            std::printf("  batch x%-2u lanes:  %s Mlps (%.2fx scalar)\n", lanes,
                        benchkit::fmt_mean_std(ms.mean, ms.std).c_str(),
                        ms.mean / scalar.mlps_mean);
            // Median-of-trials + MAD: the dispersion benchctl's noise bands
            // consume (one preempted trial must not skew the record).
            batch_record("batch", lanes, benchkit::median(rates), benchkit::mad(rates));
        }
    }
    }

    const auto json_path = args.json_out();
    if (!json_path.empty() && !json.write_file(json_path)) {
        std::fprintf(stderr, "bench_ablation_options: cannot write %s\n", json_path.c_str());
        return 2;
    }
    return 0;
}
