// bench/bench_snapshot.cpp — the warm-start lifecycle of one FIB image.
//
// A restart that rebuilds the FIB from a RIB dump pays the full §3 build
// cost before the first packet can be answered; a restart that maps a
// snapshot image (DESIGN.md §11) pays only header validation plus page
// faults. This bench puts numbers on that trade on the SAME table:
//
//   live           build + compact, then measure in-memory throughput
//   save           serialize + write + rename (the persist cost)
//   load (map)     open + mmap + validate, then the first probe pass
//                  (page-fault cost) and steady-state throughput
//   load (copy)    the copy-in fallback path, same measurements
//
// The probe-stream checksums must agree across live/map/copy — the bench
// exits non-zero on divergence, so a layout bug cannot produce a plausible
// number. Emits poptrie-bench/1 records for benchctl (suite component:
// snapshot; metric family snap.*).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "benchkit/cli.hpp"
#include "benchkit/json.hpp"
#include "benchkit/provenance.hpp"
#include "benchkit/runner.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/radix_trie.hpp"
#include "snapshot/snapshot.hpp"
#include "workload/tablegen.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

struct LoadResult {
    double load_ms = 0;
    double first_pass_ms = 0;
    std::uint64_t first_checksum = 0;
    benchkit::RateResult rate;
    std::string backing;
};

LoadResult measure_load(const std::string& path, snapshot::LoadOptions::Placement placement,
                        const char* phase, std::size_t lookups, unsigned trials,
                        std::uint64_t seed)
{
    LoadResult r;
    snapshot::LoadOptions opt;
    opt.placement = placement;
    const auto t0 = std::chrono::steady_clock::now();
    const auto fib = snapshot::SnapshotFib4::load_file(path, opt);
    r.load_ms = ms_since(t0);
    r.backing = alloc::backing_name(fib.memory_report().backing);

    // First probe pass: on the mapped path this is where the page faults
    // land, i.e. the real "time until the table answers at speed" tail.
    const auto f0 = std::chrono::steady_clock::now();
    const benchkit::RateResult first = benchkit::measure_random(
        [&fib](std::uint32_t a) { return fib.lookup(netbase::Ipv4Addr{a}); }, lookups, 1,
        seed);
    r.first_pass_ms = ms_since(f0);
    r.first_checksum = first.checksum;

    r.rate = benchkit::measure_random(
        [&fib](std::uint32_t a) { return fib.lookup(netbase::Ipv4Addr{a}); }, lookups,
        trials, seed);
    std::printf("%-13s %8.2f Mlps (±%.2f)   load=%.2f ms first_pass=%.2f ms backing=%s\n",
                phase, r.rate.mlps_mean, r.rate.mlps_std, r.load_ms, r.first_pass_ms,
                r.backing.c_str());
    return r;
}

void emit_phase(benchkit::JsonRecords& json, const char* phase, const benchkit::RateResult& rate,
                const LoadResult* load)
{
    json.begin_record();
    json.field("tool", std::string_view{"bench_snapshot"});
    json.field("phase", std::string_view{phase});
    json.field("mlps", rate.mlps_mean);
    json.field("mlps_std", rate.mlps_std);
    if (load != nullptr) {
        json.field("load_ms", load->load_ms);
        json.field("first_pass_ms", load->first_pass_ms);
        json.field("backing", std::string_view{load->backing});
    }
    benchkit::stamp_provenance(json);
}

}  // namespace

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help(
            "bench_snapshot",
            "  --routes=N        synthetic table size (default 150000)\n"
            "  --lookups=N       lookups per trial (default 2097152)\n"
            "  --trials=N        timed trials per phase (default 5)\n"
            "  --direct-bits=N   direct pointing bits (default 18)\n"
            "  --image=FILE      image path (default: under the temp dir)\n"
            "  --seed=S          table/probe seed (default 1)\n"
            "  --json-out=FILE   write poptrie-bench/1 records to FILE"))
        return 0;

    const std::size_t n_routes = args.get_u64("routes", 150'000);
    const std::size_t lookups = args.get_u64("lookups", std::size_t{1} << 21);
    const auto trials = static_cast<unsigned>(args.get_u64("trials", 5));
    const std::uint64_t seed = args.seed(1);
    std::string image = args.get("image", "");
    if (image.empty())
        image = (std::filesystem::temp_directory_path() /
                 ("bench_snapshot_" + std::to_string(::getpid()) + ".img"))
                    .string();

    poptrie::Config cfg;
    cfg.direct_bits = static_cast<unsigned>(args.get_u64("direct-bits", 18));

    workload::TableGenConfig gen;
    gen.seed = seed;
    gen.target_routes = n_routes;
    const auto routes = workload::generate_table(gen);
    rib::RadixTrie<netbase::Ipv4Addr> rib;
    rib.insert_all(routes);

    std::printf("# snapshot lifecycle: %zu routes, %zu lookups x %u trials, "
                "direct_bits=%u, image=%s\n",
                routes.size(), lookups, trials, cfg.direct_bits, image.c_str());

    // quiescent: single-threaded bench — no reader thread ever exists, so
    // compact() and the serialize under save() are safe.
    const psync::QuiescentSection quiescent;
    auto pt = std::make_unique<poptrie::Poptrie4>(rib, cfg);
    pt->compact();
    benchkit::note_arena_backing(alloc::backing_name(pt->memory_report().backing));

    const auto live = benchkit::measure_random(
        [&pt](std::uint32_t a) { return pt->lookup(netbase::Ipv4Addr{a}); }, lookups, trials,
        seed + 100);
    std::printf("%-13s %8.2f Mlps (±%.2f)\n", "live", live.mlps_mean, live.mlps_std);

    const auto s0 = std::chrono::steady_clock::now();
    snapshot::save(*pt, image);
    const double save_ms = ms_since(s0);
    const auto image_bytes = std::filesystem::file_size(image);
    std::printf("%-13s %8.2f ms   (%zu bytes)\n", "save", save_ms,
                static_cast<std::size_t>(image_bytes));

    const auto mapped = measure_load(image, snapshot::LoadOptions::Placement::kMap,
                                     "snapshot-map", lookups, trials, seed + 100);
    const auto copied = measure_load(image, snapshot::LoadOptions::Placement::kCopy,
                                     "snapshot-copy", lookups, trials, seed + 100);
    std::filesystem::remove(image);

    // All three measure the same table with the same probe stream: any
    // checksum disagreement means the image did not round-trip. (The first
    // probe pass runs one trial, so it checks map-vs-copy, not vs steady.)
    if (mapped.first_checksum != copied.first_checksum ||
        mapped.rate.checksum != live.checksum || copied.rate.checksum != live.checksum) {
        std::fprintf(stderr,
                     "bench_snapshot: checksum divergence (live=%llx map=%llx copy=%llx)\n",
                     static_cast<unsigned long long>(live.checksum),
                     static_cast<unsigned long long>(mapped.rate.checksum),
                     static_cast<unsigned long long>(copied.rate.checksum));
        return 1;
    }

    const double snapshot_vs_live =
        live.mlps_mean > 0 ? mapped.rate.mlps_mean / live.mlps_mean : 0;
    std::printf("save %.1f ms, load(map) %.2f ms, load(copy) %.2f ms, "
                "snapshot/live = %.3f\n",
                save_ms, mapped.load_ms, copied.load_ms, snapshot_vs_live);
    std::printf("# checksum %016llx\n", static_cast<unsigned long long>(live.checksum));

    if (!args.json_out().empty()) {
        benchkit::JsonRecords json;
        emit_phase(json, "live", live, nullptr);
        emit_phase(json, "snapshot_map", mapped.rate, &mapped);
        emit_phase(json, "snapshot_copy", copied.rate, &copied);
        json.begin_record();
        json.field("tool", std::string_view{"bench_snapshot"});
        json.field("phase", std::string_view{"summary"});
        json.field("routes", std::uint64_t{routes.size()});
        json.field("image_bytes", std::uint64_t{image_bytes});
        json.field("save_ms", save_ms);
        json.field("snapshot_vs_live", snapshot_vs_live);
        benchkit::stamp_provenance(json);
        if (!json.write_file(args.json_out())) {
            std::fprintf(stderr, "bench_snapshot: cannot write %s\n", args.json_out().c_str());
            return 2;
        }
    }
    return 0;
}
