// Dataplane pipeline benchmark — end-to-end forwarding rate (Mlps) and
// per-burst latency percentiles (p50/p99/p99.9) by engine, worker count,
// and churn, through the same sharded-ring worker pipeline lpmd runs.
//
// This measures what Fig. 8 cannot: not the raw structure walk, but the
// structure embedded in a forwarding loop — ring pop, EBR guard, batched
// lookup, counters — and what concurrent §3.5 route churn does to the tail.
// The producer saturates the rings, so Mlps is the workers' drain rate.
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchkit/json.hpp"
#include "benchkit/provenance.hpp"
#include "common.hpp"
#include "dataplane/churn.hpp"
#include "dataplane/dataplane.hpp"
#include "dataplane/engines.hpp"
#include "router/router.hpp"

using namespace bench;

namespace {

struct CellResult {
    double mlps = 0;
    benchkit::LatencyPercentiles lat;
    std::uint64_t ring_drops = 0;
    std::uint64_t churn_applied = 0;
};

struct RunOptions {
    double duration = 1.0;
    std::size_t burst = 256;
    bool pin = false;
    std::uint64_t seed = 1;
};

/// Saturating producer: offer random addresses as fast as the rings accept
/// them for `duration` seconds, then report the workers' drain rate.
template <class Engine>
CellResult run_cell(Engine engine, unsigned workers, const RunOptions& opt,
                    dataplane::ChurnRunner* churn)
{
    using clock = std::chrono::steady_clock;
    dataplane::DataplaneConfig cfg;
    cfg.workers = workers;
    cfg.burst = opt.burst;
    cfg.pin_cpus = opt.pin;
    dataplane::Dataplane<Engine> dp{std::move(engine), cfg};
    dp.start();

    std::vector<std::uint32_t> chunk(opt.burst);
    workload::Xorshift128 rng(opt.seed ^ 0xBE4C);
    const auto t0 = clock::now();
    const auto deadline =
        t0 + std::chrono::duration_cast<clock::duration>(
                 std::chrono::duration<double>(opt.duration));
    while (clock::now() < deadline) {
        for (std::size_t i = 0; i < opt.burst; ++i) chunk[i] = rng.next();
        dp.offer(chunk.data(), opt.burst);
    }
    const double elapsed = std::chrono::duration<double>(clock::now() - t0).count();
    dp.stop();

    // quiescent: dp.stop() joined every worker; only this thread remains.
    const psync::QuiescentSection quiescent;
    CellResult r;
    const auto s = dp.stats();
    r.mlps = benchkit::to_mlps(s.lookups(), elapsed);
    r.lat = benchkit::latency_percentiles(dp.merged_latency());
    r.ring_drops = s.ring_drops;
    if (churn != nullptr) {
        churn->stop_and_join();
        r.churn_applied = churn->applied();
    }
    return r;
}

}  // namespace

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help(
            "bench_dataplane",
            "  --routes=N        table size (default 100000)\n"
            "  --duration=S      seconds per cell (default 1, --full: 3)\n"
            "  --max-workers=N   worker counts 1,2,..,N doubling (default 4)\n"
            "  --workers-list=L  explicit comma-separated worker counts (overrides\n"
            "                    --max-workers; e.g. 1,4 for benchctl's smoke cells)\n"
            "  --burst=N         burst size (default 256)\n"
            "  --churn=N         updates applied live per poptrie cell (default 20000)\n"
            "  --pin             pin workers to CPUs\n"
            "  --json            emit a JSON record per cell"))
        return 0;

    const auto routes_n = args.get_u64("routes", 100'000);
    const double duration = args.get_double("duration", args.has("full") ? 3.0 : 1.0);
    const auto max_workers = static_cast<unsigned>(args.get_u64(
        "max-workers", std::min(4u, std::max(1u, std::thread::hardware_concurrency()))));
    std::vector<unsigned> worker_counts;
    if (const auto list = args.get("workers-list", ""); !list.empty()) {
        for (std::size_t pos = 0; pos < list.size();) {
            const auto comma = std::min(list.find(',', pos), list.size());
            const unsigned w =
                static_cast<unsigned>(std::strtoul(list.substr(pos, comma - pos).c_str(),
                                                   nullptr, 10));
            if (w == 0) {
                std::fprintf(stderr, "bench_dataplane: bad --workers-list '%s'\n",
                             list.c_str());
                return 2;
            }
            worker_counts.push_back(w);
            pos = comma + 1;
        }
    } else {
        for (unsigned w = 1; w <= max_workers; w *= 2) worker_counts.push_back(w);
    }
    const auto churn_updates = args.get_u64("churn", 20'000);
    RunOptions opt;
    opt.duration = duration;
    opt.burst = args.get_u64("burst", opt.burst);
    opt.pin = args.has("pin");
    opt.seed = args.seed(1);

    std::printf("Dataplane: end-to-end forwarding rate and per-burst latency\n");
    std::printf("# pipeline: SPSC rings -> %zu-address bursts -> batched lookup "
                "(one EBR guard per burst)\n\n",
                opt.burst);
    print_host_note();

    workload::TableGenConfig tg;
    tg.seed = opt.seed;
    tg.target_routes = routes_n;
    tg.next_hops = 64;
    const auto d = load_routes("synthetic", workload::generate_table(tg));

    poptrie::Config pcfg;
    pcfg.direct_bits = 18;
    // Churn cells update while workers read: build with headroom so the
    // pools never grow mid-run (growth is not reader-safe; §3.5).
    pcfg.pool_headroom_log2 = 6;
    router::Router4 router{pcfg};
    dataplane::load_routes(router, d.routes);
    {
        // quiescent: no worker thread has been spawned yet.
        const psync::QuiescentSection quiescent;
        router.reserve_fib_headroom();
    }
    // Lane path for the pipelined engine rows: best usable (or the
    // POPTRIE_FORCE_LANES override). A forced-but-unusable path is a hard
    // error — a bench must never silently measure a different kernel.
    const auto lane_sel = poptrie::lanes::select();
    if (!lane_sel.ok) {
        std::fprintf(stderr, "bench_dataplane: lane path unusable: %s\n",
                     lane_sel.note.c_str());
        return 2;
    }
    std::printf("# pipelined engine lane path: %s\n",
                std::string(poptrie::lanes::name(lane_sel.path)).c_str());

    const baselines::TreeBitmap16 tbm{d.fib_src};
    std::unique_ptr<baselines::Sail> sail;
    std::string sail_error;
    try {
        sail = std::make_unique<baselines::Sail>(d.fib_src);
    } catch (const baselines::StructuralLimit& e) {
        // The table exceeds SAIL's chunk-id space: its cells are recorded
        // as first-class structural-limit rows, not silently dropped.
        sail_error = e.what();
    }

    benchkit::TablePrinter table({{"Engine", 10, false},
                                  {"Workers", 7},
                                  {"Churn", 7},
                                  {"Rate[Mlps]", 10},
                                  {"p50[ns]", 8},
                                  {"p99[ns]", 8},
                                  {"p99.9[ns]", 9}});
    table.print_header();
    benchkit::JsonRecords json;

    const auto report = [&](std::string_view engine, unsigned workers, bool churn,
                            const CellResult& r, std::string_view lane = {}) {
        table.print_row({std::string(engine), std::to_string(workers),
                         churn ? std::to_string(r.churn_applied) : "-",
                         benchkit::fmt(r.mlps, 2), benchkit::fmt(r.lat.p50, 0),
                         benchkit::fmt(r.lat.p99, 0), benchkit::fmt(r.lat.p999, 0)});
        json.begin_record();
        json.field("engine", engine);
        json.field("workers", std::uint64_t{workers});
        json.field("churn", churn);
        json.field("churn_applied", r.churn_applied);
        json.field("mlps", r.mlps);
        json.field("lat_p50_ns", r.lat.p50);
        json.field("lat_p99_ns", r.lat.p99);
        json.field("lat_p999_ns", r.lat.p999);
        json.field("ring_drops", r.ring_drops);
        if (!lane.empty()) json.field("lane_path", lane);
        benchkit::stamp_provenance(json);
    };

    for (const unsigned workers : worker_counts) {
        report("poptrie", workers, false,
               run_cell(dataplane::PoptrieEngine{router}, workers, opt, nullptr));
        if (churn_updates > 0) {
            dataplane::ChurnRunner churn{
                router, d.routes, dataplane::ChurnConfig{.updates = churn_updates}};
            report("poptrie", workers, true,
                   run_cell(dataplane::PoptrieEngine{router}, workers, opt, &churn));
            {
                // writer: run_cell stopped the workers and joined the churn
                // thread; only this thread remains.
                const psync::EbrWriterSection writer;
                router.drain();
            }
        }
        // The same live trie served read-only through the lane-dispatched
        // batch paths. No churn by contract (kSupportsChurn = false): the
        // cell runs at a quiescent point — the previous cell's workers and
        // churn writer are joined and drained. The JSON engine label stays
        // "pipelined" (the lane path is a separate field) so benchctl metric
        // names are stable across hosts with different vector widths.
        report("pipelined", workers, false,
               run_cell(dataplane::PipelinedEngine{router.fib(), lane_sel.path},
                        workers, opt, nullptr),
               poptrie::lanes::name(lane_sel.path));
        report("treebitmap", workers, false,
               run_cell(dataplane::TreeBitmapEngine{tbm, "treebitmap"}, workers, opt,
                        nullptr));
        if (sail) {
            report("sail", workers, false,
                   run_cell(dataplane::SailEngine{*sail, "sail"}, workers, opt, nullptr));
        } else {
            table.print_row({"sail", std::to_string(workers), "-", "structural-limit",
                             "-", "-", "-"});
            json.begin_record();
            json.field("engine", std::string_view{"sail"});
            json.field("workers", std::uint64_t{workers});
            json.field("status", std::string_view{"structural_limit"});
            json.field("error", std::string_view{sail_error});
            benchkit::stamp_provenance(json);
        }
    }

    if (args.has("json")) json.write(stdout);
    const auto json_path = args.json_out();
    if (!json_path.empty() && !json.write_file(json_path)) {
        std::fprintf(stderr, "bench_dataplane: cannot write %s\n", json_path.c_str());
        return 2;
    }
    return 0;
}
