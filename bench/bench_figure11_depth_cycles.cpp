// Figure 11 — per-lookup CPU cycle quartiles (5/25/50/75/95th) bucketed by
// the query address's binary radix depth, per algorithm, on REAL-Tier1-A.
// The paper's headline: Poptrie18's 95th percentile stays flat (<= ~172
// cycles) at every depth, while SAIL and DXR blow past ~234 cycles at depths
// 24-25.
#include <map>

#include "common.hpp"

using namespace bench;

int main(int argc, char** argv)
{
    const benchkit::Args args(argc, argv);
    if (args.handle_help("bench_figure11_depth_cycles")) return 0;
    const auto n = args.lookups(std::size_t{1} << 22, std::size_t{1} << 24);
    const auto seed = args.seed(0);

    std::printf("Figure 11: per-lookup cycle candles by binary radix depth (REAL-Tier1-A)\n\n");
    const auto d = load_dataset(workload::real_tier1_a());
    const auto s = build_structures(d);
    ChecksumSink sink;

    // Precompute the depth of every queried address once (same seed for all
    // algorithms, as in the paper).
    std::vector<std::uint8_t> depths;
    {
        workload::Xorshift128 rng(seed);
        depths.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            depths.push_back(static_cast<std::uint8_t>(
                d.rib.lookup_detail(Ipv4Addr{rng.next()}).radix_depth));
    }

    const auto run = [&](const char* name, auto&& lookup) {
        const auto cycles = sample_cycles(lookup, n, sink, seed);
        std::map<unsigned, std::vector<std::uint64_t>> buckets;
        for (std::size_t i = 0; i < n; ++i)
            buckets[(depths[i] + 1) / 2 * 2].push_back(cycles[i]);  // even buckets, like the x-axis
        std::printf("\n--- %s ---\n", name);
        benchkit::TablePrinter table({{"depth", 5},
                                      {"n", 9},
                                      {"p5", 6},
                                      {"p25", 6},
                                      {"median", 6},
                                      {"p75", 6},
                                      {"p95", 6}});
        table.print_header();
        for (auto& [depth, samples] : buckets) {
            if (samples.size() < 50) continue;  // too few for stable candles
            const auto c = benchkit::candle(std::move(samples));
            table.print_row({std::to_string(depth), benchkit::fmt_count(c.n),
                             benchkit::fmt(c.p5, 0), benchkit::fmt(c.p25, 0),
                             benchkit::fmt(c.p50, 0), benchkit::fmt(c.p75, 0),
                             benchkit::fmt(c.p95, 0)});
        }
    };

    run("SAIL", [&](std::uint32_t a) { return s.sail->lookup(Ipv4Addr{a}); });
    run("D16R", [&](std::uint32_t a) { return s.d16r->lookup(Ipv4Addr{a}); });
    run("Poptrie16", [&](std::uint32_t a) { return s.poptrie16->lookup_raw<true>(a); });
    run("D18R", [&](std::uint32_t a) { return s.d18r->lookup(Ipv4Addr{a}); });
    run("Poptrie18", [&](std::uint32_t a) { return s.poptrie18->lookup_raw<true>(a); });
    return 0;
}
