// Tests for the Patricia (path-compressed) trie: LPM semantics identical to
// the binary radix trie, with the compressed-structure invariants holding
// through arbitrary insert/erase churn.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "rib/patricia.hpp"
#include "workload/tablegen.hpp"
#include "workload/updatefeed.hpp"

using namespace testhelpers;
using rib::kNoRoute;
using rib::PatriciaTrie;

namespace {
Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }
}  // namespace

TEST(Patricia, EmptyMisses)
{
    PatriciaTrie<Ipv4Addr> t;
    EXPECT_EQ(t.lookup(Ipv4Addr{1}), kNoRoute);
    EXPECT_EQ(t.node_count(), 0u);
    EXPECT_TRUE(t.invariants_hold());
}

TEST(Patricia, SplitOnDivergence)
{
    PatriciaTrie<Ipv4Addr> t;
    t.insert(pfx("10.1.0.0/16"), 1);
    EXPECT_EQ(t.node_count(), 1u);  // single compressed edge
    t.insert(pfx("10.2.0.0/16"), 2);
    // Diverge at bit 13 (10.1 vs 10.2): one split node + two leaves.
    EXPECT_EQ(t.node_count(), 3u);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.5.5")), 1);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.2.5.5")), 2);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.3.5.5")), kNoRoute);
    EXPECT_TRUE(t.invariants_hold());
}

TEST(Patricia, RouteAtSplitPoint)
{
    PatriciaTrie<Ipv4Addr> t;
    t.insert(pfx("10.1.0.0/16"), 1);
    t.insert(pfx("10.0.0.0/8"), 2);  // lands exactly on the split point
    EXPECT_EQ(t.node_count(), 2u);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.0.1")), 1);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.9.0.1")), 2);
    EXPECT_TRUE(t.invariants_hold());
}

TEST(Patricia, InsertReplaces)
{
    PatriciaTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    t.insert(pfx("10.0.0.0/8"), 9);
    EXPECT_EQ(t.route_count(), 1u);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.1.1")), 9);
}

TEST(Patricia, EraseMergesChains)
{
    PatriciaTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    t.insert(pfx("10.1.0.0/16"), 2);
    t.insert(pfx("10.2.0.0/16"), 3);
    const auto nodes_full = t.node_count();
    EXPECT_TRUE(t.erase(pfx("10.1.0.0/16")));
    EXPECT_LT(t.node_count(), nodes_full);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.1.1")), 1);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.2.1.1")), 3);
    EXPECT_TRUE(t.invariants_hold());
    EXPECT_FALSE(t.erase(pfx("10.1.0.0/16")));
    EXPECT_TRUE(t.erase(pfx("10.2.0.0/16")));
    EXPECT_TRUE(t.erase(pfx("10.0.0.0/8")));
    EXPECT_EQ(t.node_count(), 0u);
    EXPECT_EQ(t.route_count(), 0u);
}

TEST(Patricia, EraseInteriorRouteKeepsSplitNode)
{
    PatriciaTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    t.insert(pfx("10.1.0.0/16"), 2);
    t.insert(pfx("10.2.0.0/16"), 3);
    // The /8 sits above a branching node; erasing it must keep the branch.
    EXPECT_TRUE(t.erase(pfx("10.0.0.0/8")));
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.1.1")), 2);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.9.1.1")), kNoRoute);
    EXPECT_TRUE(t.invariants_hold());
}

TEST(Patricia, FindExact)
{
    PatriciaTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    t.insert(pfx("10.1.2.0/24"), 2);
    EXPECT_EQ(t.find(pfx("10.0.0.0/8")), 1);
    EXPECT_EQ(t.find(pfx("10.1.2.0/24")), 2);
    EXPECT_EQ(t.find(pfx("10.1.0.0/16")), kNoRoute);  // interior split point
    EXPECT_EQ(t.find(pfx("11.0.0.0/8")), kNoRoute);
}

TEST(Patricia, MatchesRadixOnCornerTable)
{
    const auto routes = corner_case_table();
    const auto oracle = load(routes);
    PatriciaTrie<Ipv4Addr> t;
    t.insert_all(routes);
    EXPECT_TRUE(t.invariants_hold());
    EXPECT_EQ(boundary_and_random_mismatches(
                  oracle, routes, [&](Ipv4Addr a) { return t.lookup(a); }, 200'000),
              0u);
}

TEST(Patricia, MatchesRadixOnGeneratedTableAndUsesFewerNodes)
{
    workload::TableGenConfig gen;
    gen.seed = 31;
    gen.target_routes = 50'000;
    gen.next_hops = 29;
    gen.igp_routes = 2'000;
    const auto routes = workload::generate_table(gen);
    const auto oracle = load(routes);
    PatriciaTrie<Ipv4Addr> t;
    t.insert_all(routes);
    EXPECT_TRUE(t.invariants_hold());
    EXPECT_LT(t.node_count(), oracle.node_count() / 2);  // path compression pays
    EXPECT_EQ(boundary_and_random_mismatches(
                  oracle, routes, [&](Ipv4Addr a) { return t.lookup(a); }, 300'000),
              0u);
}

TEST(Patricia, ChurnPropertyAgainstRadix)
{
    // Random interleaved insert/erase churn; the two tries must stay
    // equivalent and the Patricia invariants must hold throughout.
    workload::TableGenConfig gen;
    gen.seed = 33;
    gen.target_routes = 5'000;
    gen.next_hops = 9;
    const auto routes = workload::generate_table(gen);
    auto radix = load(routes);
    PatriciaTrie<Ipv4Addr> pat;
    pat.insert_all(routes);

    workload::UpdateFeedConfig ucfg;
    ucfg.updates = 4'000;
    ucfg.next_hops = 9;
    const auto feed = workload::make_update_feed(routes, ucfg);
    workload::Xorshift128 rng(3);
    for (const auto& ev : feed) {
        if (ev.next_hop == kNoRoute) {
            EXPECT_EQ(pat.erase(ev.prefix), radix.erase(ev.prefix));
        } else {
            pat.insert(ev.prefix, ev.next_hop);
            radix.insert(ev.prefix, ev.next_hop);
        }
        EXPECT_EQ(pat.route_count(), radix.route_count());
        const auto probe = Ipv4Addr{ev.prefix.bits() | (rng.next() &
                                                        ~netbase::high_mask<std::uint32_t>(
                                                            ev.prefix.length()))};
        ASSERT_EQ(pat.lookup(probe), radix.lookup(probe));
    }
    EXPECT_TRUE(pat.invariants_hold());
    workload::Xorshift128 rng2(4);
    for (int i = 0; i < 200'000; ++i) {
        const Ipv4Addr a{rng2.next()};
        ASSERT_EQ(pat.lookup(a), radix.lookup(a));
    }
}

TEST(Patricia, Ipv6)
{
    PatriciaTrie<netbase::Ipv6Addr> t;
    t.insert(*netbase::parse_prefix6("2001:db8::/32"), 1);
    t.insert(*netbase::parse_prefix6("2001:db8:1::/48"), 2);
    t.insert(*netbase::parse_prefix6("2001:db8:1::42/128"), 3);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db8:1::42")), 3);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db8:1::43")), 2);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db8:2::1")), 1);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db9::1")), kNoRoute);
    EXPECT_TRUE(t.invariants_hold());
    EXPECT_TRUE(t.erase(*netbase::parse_prefix6("2001:db8:1::/48")));
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db8:1::43")), 1);
}
