// Tests for Poptrie compilation: node layout invariants, leafvec semantics
// (§3.3), direct pointing (§3.4), statistics and small-table exhaustiveness.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "poptrie/poptrie.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;
using poptrie::Config;
using poptrie::Poptrie4;
using rib::kNoRoute;

namespace {
Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }
}  // namespace

TEST(PoptrieBuild, EmptyTableAlwaysMisses)
{
    for (const unsigned s : {0u, 8u, 16u, 18u}) {
        Config cfg;
        cfg.direct_bits = s;
        const Poptrie4 pt{cfg};
        workload::Xorshift128 rng(1);
        for (int i = 0; i < 10000; ++i)
            ASSERT_EQ(pt.lookup(Ipv4Addr{rng.next()}), kNoRoute) << "s=" << s;
    }
}

TEST(PoptrieBuild, SingleDefaultRoute)
{
    rib::RadixTrie<Ipv4Addr> t;
    t.insert(pfx("0.0.0.0/0"), 7);
    for (const unsigned s : {0u, 16u, 18u}) {
        Config cfg;
        cfg.direct_bits = s;
        const Poptrie4 pt{t, cfg};
        EXPECT_EQ(pt.lookup(Ipv4Addr{0}), 7);
        EXPECT_EQ(pt.lookup(Ipv4Addr{0xFFFFFFFF}), 7);
        EXPECT_EQ(pt.lookup(Ipv4Addr{0x12345678}), 7);
    }
}

TEST(PoptrieBuild, SingleHostRoute)
{
    rib::RadixTrie<Ipv4Addr> t;
    t.insert(pfx("1.2.3.4/32"), 9);
    for (const unsigned s : {0u, 16u, 18u}) {
        Config cfg;
        cfg.direct_bits = s;
        const Poptrie4 pt{t, cfg};
        EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("1.2.3.4")), 9);
        EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("1.2.3.5")), kNoRoute);
        EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("1.2.3.3")), kNoRoute);
    }
}

TEST(PoptrieBuild, NodeIs24Bytes)
{
    // §3: "the total size of an internal node is only 16 bytes" basic /
    // 24 bytes with leafvec. The struct is the leafvec layout; stats()
    // accounts 16 bytes in basic mode.
    EXPECT_EQ(sizeof(Poptrie4::Node), 24u);
}

TEST(PoptrieBuild, StatsAccounting)
{
    const auto t = load(corner_case_table());
    Config cfg;
    cfg.direct_bits = 16;
    const Poptrie4 pt{t, cfg};
    const auto s = pt.stats();
    EXPECT_GT(s.internal_nodes, 0u);
    EXPECT_GT(s.leaves, 0u);
    EXPECT_EQ(s.direct_slots, std::size_t{1} << 16);
    EXPECT_EQ(s.memory_bytes,
              s.internal_nodes * 24 + s.leaves * 2 + s.direct_slots * 4);
    EXPECT_GE(s.allocated_bytes, s.internal_nodes * 24 + s.leaves * 2);
}

TEST(PoptrieBuild, BasicModeAccountsSixteenByteNodes)
{
    const auto t = load(corner_case_table());
    Config cfg;
    cfg.direct_bits = 0;
    cfg.leaf_compression = false;
    cfg.route_aggregation = false;
    const Poptrie4 pt{t, cfg};
    const auto s = pt.stats();
    EXPECT_EQ(s.memory_bytes, s.internal_nodes * 16 + s.leaves * 2);
}

TEST(PoptrieBuild, LeafCompressionShrinksLeaves)
{
    // §3.3: "reduces more than 90% of leaves" on real tables; on the corner
    // table it must at least shrink and never grow.
    const auto t = load(corner_case_table());
    Config basic;
    basic.direct_bits = 0;
    basic.leaf_compression = false;
    basic.route_aggregation = false;
    Config leafvec = basic;
    leafvec.leaf_compression = true;
    const Poptrie4 pb{t, basic};
    const Poptrie4 pl{t, leafvec};
    EXPECT_LT(pl.stats().leaves, pb.stats().leaves);
    EXPECT_EQ(pl.stats().internal_nodes, pb.stats().internal_nodes);
}

TEST(PoptrieBuild, UniformNodeCompressesToOneLeaf)
{
    // One /6 route spans a whole 64-slot root node: with leafvec the node
    // has exactly 2 leaves (miss run + route run) at s=0... the root node's
    // 64 slots are /6 blocks: slot 3 (000011b) holds the route, so runs are
    // [miss][route][miss] -> 3 leaves.
    rib::RadixTrie<Ipv4Addr> t;
    t.insert(pfx("12.0.0.0/6"), 4);
    Config cfg;
    cfg.direct_bits = 0;
    const Poptrie4 pt{t, cfg};
    const auto s = pt.stats();
    EXPECT_EQ(s.internal_nodes, 1u);
    EXPECT_EQ(s.leaves, 3u);
}

TEST(PoptrieBuild, AggregationReducesSize)
{
    workload::TableGenConfig gen;
    gen.seed = 3;
    gen.target_routes = 20'000;
    gen.next_hops = 9;
    const auto routes = workload::generate_table(gen);
    const auto t = load(routes);
    Config with;
    with.direct_bits = 16;
    Config without = with;
    without.route_aggregation = false;
    const Poptrie4 pw{t, with};
    const Poptrie4 po{t, without};
    EXPECT_LT(pw.stats().memory_bytes, po.stats().memory_bytes);
    // And identical lookup results.
    workload::Xorshift128 rng(8);
    for (int i = 0; i < 200'000; ++i) {
        const Ipv4Addr a{rng.next()};
        ASSERT_EQ(pw.lookup(a), po.lookup(a));
    }
}

TEST(PoptrieBuild, ExhaustiveOnDenseSlice)
{
    // All addresses of a densely-routed /16 and its borders, across the
    // direct-pointing boundary configurations.
    workload::Xorshift128 rng(4242);
    rib::RadixTrie<Ipv4Addr> t;
    t.insert(pfx("0.0.0.0/0"), 1);
    for (int i = 0; i < 500; ++i) {
        const unsigned len = 16 + rng.next_below(17);
        const std::uint32_t addr = 0x0A140000u | (rng.next() & 0xFFFF);
        t.insert(Prefix4{Ipv4Addr{addr}, len}, static_cast<NextHop>(2 + rng.next_below(6)));
    }
    for (const unsigned s : {0u, 12u, 16u, 18u, 20u}) {
        for (const bool lc : {true, false}) {
            Config cfg;
            cfg.direct_bits = s;
            cfg.leaf_compression = lc;
            const Poptrie4 pt{t, cfg};
            EXPECT_EQ(exhaustive_mismatches(
                          t, [&](Ipv4Addr a) { return pt.lookup(a); }, 0x0A13FF00u,
                          0x0A150100u),
                      0u)
                << "s=" << s << " leafvec=" << lc;
        }
    }
}

TEST(PoptrieBuild, SoftwarePopcountAgrees)
{
    const auto t = load(corner_case_table());
    Config cfg;
    cfg.direct_bits = 16;
    const Poptrie4 pt{t, cfg};
    workload::Xorshift128 rng(5);
    for (int i = 0; i < 100'000; ++i) {
        const std::uint32_t a = rng.next();
        ASSERT_EQ((pt.lookup_raw<true, true>(a)), (pt.lookup_raw<true, false>(a)));
    }
}

TEST(PoptrieBuild, MoveSemantics)
{
    const auto t = load(corner_case_table());
    Config cfg;
    cfg.direct_bits = 16;
    Poptrie4 a{t, cfg};
    const auto want = a.lookup(*netbase::parse_ipv4("10.32.5.193"));
    const Poptrie4 b{std::move(a)};
    EXPECT_EQ(b.lookup(*netbase::parse_ipv4("10.32.5.193")), want);
}
