// Tests for the measurement kit: statistics, CLI parsing, formatting, and
// the runner loops' bookkeeping.
#include <gtest/gtest.h>

#include "benchkit/cli.hpp"
#include "benchkit/cycles.hpp"
#include "benchkit/runner.hpp"
#include "benchkit/stats.hpp"
#include "benchkit/table_printer.hpp"

using namespace benchkit;

TEST(Stats, MeanStd)
{
    const auto r = mean_std({2, 4, 4, 4, 5, 5, 7, 9});
    EXPECT_DOUBLE_EQ(r.mean, 5.0);
    EXPECT_NEAR(r.std, 2.138, 0.001);  // sample std (n-1)
    EXPECT_EQ(mean_std({}).mean, 0.0);
    EXPECT_EQ(mean_std({3.5}).std, 0.0);
}

TEST(Stats, Percentiles)
{
    std::vector<std::uint64_t> s;
    for (std::uint64_t i = 1; i <= 100; ++i) s.push_back(i);
    const Percentiles p(std::move(s));
    EXPECT_NEAR(p.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(p.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(p.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(p.percentile(95), 95.05, 0.001);
    EXPECT_NEAR(p.mean(), 50.5, 1e-9);
}

TEST(Stats, CdfAt)
{
    const Percentiles p({10, 20, 30, 40});
    const auto cdf = p.cdf_at({5, 10, 25, 40, 100});
    EXPECT_DOUBLE_EQ(cdf[0], 0.0);
    EXPECT_DOUBLE_EQ(cdf[1], 0.25);
    EXPECT_DOUBLE_EQ(cdf[2], 0.5);
    EXPECT_DOUBLE_EQ(cdf[3], 1.0);
    EXPECT_DOUBLE_EQ(cdf[4], 1.0);
}

TEST(Stats, Candle)
{
    std::vector<std::uint64_t> s;
    for (std::uint64_t i = 0; i < 1000; ++i) s.push_back(i);
    const auto c = candle(std::move(s));
    EXPECT_LT(c.p5, c.p25);
    EXPECT_LT(c.p25, c.p50);
    EXPECT_LT(c.p50, c.p75);
    EXPECT_LT(c.p75, c.p95);
    EXPECT_EQ(c.n, 1000u);
}

TEST(Cli, FlagsAndValues)
{
    const char* argv[] = {"bench", "--full", "--lookups=1024", "--name=foo", "--ratio=0.5"};
    const Args args(5, const_cast<char**>(argv));
    EXPECT_TRUE(args.has("full"));
    EXPECT_FALSE(args.has("quick"));
    EXPECT_EQ(args.get_u64("lookups", 0), 1024u);
    EXPECT_EQ(args.get_u64("missing", 7), 7u);
    EXPECT_EQ(args.get("name", ""), "foo");
    EXPECT_DOUBLE_EQ(args.get_double("ratio", 0), 0.5);
    EXPECT_EQ(args.lookups(100, 200), 1024u);  // explicit override wins
    EXPECT_EQ(args.trials(), 10u);             // --full default
}

TEST(Cli, QuickDefaults)
{
    const char* argv[] = {"bench"};
    const Args args(1, const_cast<char**>(argv));
    EXPECT_EQ(args.lookups(100, 200), 100u);
    EXPECT_EQ(args.trials(), 3u);
    EXPECT_EQ(args.seed(42), 42u);
}

TEST(Cli, PrefixNamesDoNotCollide)
{
    const char* argv[] = {"bench", "--lookups-extra=5"};
    const Args args(2, const_cast<char**>(argv));
    EXPECT_EQ(args.get_u64("lookups", 7), 7u);  // "--lookups-extra" != "--lookups"
}

TEST(Printer, Formatting)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmt_mean_std(240.5151, 5.468), "240.52 (5.47)");
    EXPECT_EQ(fmt_mib(2u * 1024 * 1024), "2.00");
    EXPECT_EQ(fmt_count(531489), "531,489");
    EXPECT_EQ(fmt_count(7), "7");
    EXPECT_EQ(fmt_count(1000), "1,000");
}

TEST(Runner, ChecksumAndDeterminism)
{
    // A fake lookup whose result is a function of the address: repeated runs
    // with the same seed must produce identical checksums.
    const auto lookup = [](std::uint32_t a) { return static_cast<std::uint16_t>(a >> 16); };
    const auto r1 = measure_random(lookup, 10'000, 2, 9);
    const auto r2 = measure_random(lookup, 10'000, 2, 9);
    EXPECT_EQ(r1.checksum, r2.checksum);
    EXPECT_GT(r1.mlps_mean, 0.0);
}

TEST(Runner, RepeatedIssuesEachAddressSixteenTimes)
{
    std::uint32_t distinct = 0;
    std::uint32_t last = 0;
    std::uint32_t run = 0;
    bool ok = true;
    const auto lookup = [&](std::uint32_t a) {
        if (a != last || run == 0) {
            if (run != 0 && run != kRepeatFactor) ok = false;
            last = a;
            run = 0;
            ++distinct;
        }
        ++run;
        return std::uint16_t{1};
    };
    (void)measure_repeated(lookup, 1'600, 1, 3);
    EXPECT_TRUE(ok);
    EXPECT_EQ(distinct, 100u);
}

TEST(Runner, TraceReplaysExactly)
{
    const std::vector<std::uint32_t> trace{1, 2, 3, 2, 1};
    std::uint64_t sum = 0;
    const auto r = measure_trace(
        [&](std::uint32_t a) {
            sum += a;
            return static_cast<std::uint16_t>(a);
        },
        trace, 2);
    EXPECT_EQ(sum, 18u);  // 9 per trial x 2 trials
    EXPECT_EQ(r.checksum, 18u);
}

TEST(Runner, MultithreadAggregates)
{
    const auto lookup = [](std::uint32_t a) { return static_cast<std::uint16_t>(a & 7); };
    const auto r = measure_random_multithread(lookup, 50'000, 2, 2);
    EXPECT_GT(r.mlps_mean, 0.0);
    EXPECT_GT(r.checksum, 0u);
}

TEST(Cycles, CalibrationIsSane)
{
    const auto overhead = calibrate_tsc_overhead();
    EXPECT_GT(overhead, 0u);
    EXPECT_LT(overhead, 10'000u);
    const double hz = tsc_hz();
    EXPECT_GT(hz, 1e8);   // > 100 MHz
    EXPECT_LT(hz, 1e11);  // < 100 GHz
}
