// Tests for the measurement kit: statistics, CLI parsing, formatting, and
// the runner loops' bookkeeping.
#include <gtest/gtest.h>

#include "benchkit/cli.hpp"
#include "benchkit/cycles.hpp"
#include "benchkit/json.hpp"
#include "benchkit/provenance.hpp"
#include "benchkit/runner.hpp"
#include "benchkit/stats.hpp"
#include "benchkit/table_printer.hpp"

using namespace benchkit;

TEST(Stats, MeanStd)
{
    const auto r = mean_std({2, 4, 4, 4, 5, 5, 7, 9});
    EXPECT_DOUBLE_EQ(r.mean, 5.0);
    EXPECT_NEAR(r.std, 2.138, 0.001);  // sample std (n-1)
    EXPECT_EQ(mean_std({}).mean, 0.0);
    EXPECT_EQ(mean_std({3.5}).std, 0.0);
}

TEST(Stats, MedianOddEvenAndDegenerate)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
    EXPECT_DOUBLE_EQ(median({7.5}), 7.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, MadIsRobustToOutliers)
{
    // median 3, |dev| = [2, 1, 0, 1, 2] -> MAD 1.
    EXPECT_DOUBLE_EQ(mad({1, 2, 3, 4, 5}), 1.0);
    // One preempted trial must not inflate the dispersion benchctl's noise
    // bands consume — that is the whole point of MAD over stddev.
    EXPECT_DOUBLE_EQ(mad({10, 10, 10, 10, 1000}), 0.0);
    EXPECT_DOUBLE_EQ(mad({}), 0.0);
    EXPECT_DOUBLE_EQ(mad({42.0}), 0.0);
}

TEST(Stats, Percentiles)
{
    std::vector<std::uint64_t> s;
    for (std::uint64_t i = 1; i <= 100; ++i) s.push_back(i);
    const Percentiles p(std::move(s));
    EXPECT_NEAR(p.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(p.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(p.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(p.percentile(95), 95.05, 0.001);
    EXPECT_NEAR(p.mean(), 50.5, 1e-9);
}

TEST(Stats, CdfAt)
{
    const Percentiles p({10, 20, 30, 40});
    const auto cdf = p.cdf_at({5, 10, 25, 40, 100});
    EXPECT_DOUBLE_EQ(cdf[0], 0.0);
    EXPECT_DOUBLE_EQ(cdf[1], 0.25);
    EXPECT_DOUBLE_EQ(cdf[2], 0.5);
    EXPECT_DOUBLE_EQ(cdf[3], 1.0);
    EXPECT_DOUBLE_EQ(cdf[4], 1.0);
}

TEST(Stats, Candle)
{
    std::vector<std::uint64_t> s;
    for (std::uint64_t i = 0; i < 1000; ++i) s.push_back(i);
    const auto c = candle(std::move(s));
    EXPECT_LT(c.p5, c.p25);
    EXPECT_LT(c.p25, c.p50);
    EXPECT_LT(c.p50, c.p75);
    EXPECT_LT(c.p75, c.p95);
    EXPECT_EQ(c.n, 1000u);
}

TEST(Cli, FlagsAndValues)
{
    const char* argv[] = {"bench", "--full", "--lookups=1024", "--name=foo", "--ratio=0.5"};
    const Args args(5, const_cast<char**>(argv));
    EXPECT_TRUE(args.has("full"));
    EXPECT_FALSE(args.has("quick"));
    EXPECT_EQ(args.get_u64("lookups", 0), 1024u);
    EXPECT_EQ(args.get_u64("missing", 7), 7u);
    EXPECT_EQ(args.get("name", ""), "foo");
    EXPECT_DOUBLE_EQ(args.get_double("ratio", 0), 0.5);
    EXPECT_EQ(args.lookups(100, 200), 1024u);  // explicit override wins
    EXPECT_EQ(args.trials(), 10u);             // --full default
}

TEST(Cli, QuickDefaults)
{
    const char* argv[] = {"bench"};
    const Args args(1, const_cast<char**>(argv));
    EXPECT_EQ(args.lookups(100, 200), 100u);
    EXPECT_EQ(args.trials(), 3u);
    EXPECT_EQ(args.seed(42), 42u);
}

TEST(Cli, SpaceSeparatedValuesNormalize)
{
    // lpmd and the e2e tests pass "--name value"; the constructor joins the
    // pair into "--name=value". A following "--flag" is never consumed.
    const char* argv[] = {"lpmd", "--engine", "poptrie", "--workers", "4", "--check",
                          "--rate-mpps", "2.5"};
    const Args args(8, const_cast<char**>(argv));
    EXPECT_EQ(args.get("engine", ""), "poptrie");
    EXPECT_EQ(args.get_u64("workers", 0), 4u);
    EXPECT_TRUE(args.has("check"));
    EXPECT_DOUBLE_EQ(args.get_double("rate-mpps", 0), 2.5);
}

TEST(Json, EscapingAndDump)
{
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");

    JsonRecords rec;
    EXPECT_EQ(rec.dump(), "[]");
    rec.begin_record();
    rec.field("name", std::string_view{"pop\"trie"});
    rec.field("mlps", 12.3456, 2);
    rec.field("count", std::uint64_t{42});
    rec.field("ok", true);
    rec.begin_record();
    rec.field("ok", false);
    EXPECT_EQ(rec.record_count(), 2u);
    EXPECT_EQ(rec.dump(),
              "[{\"name\":\"pop\\\"trie\",\"mlps\":12.35,\"count\":42,\"ok\":true},"
              "{\"ok\":false}]");
}

TEST(Json, WriteFileRoundTripsDump)
{
    JsonRecords rec;
    rec.begin_record();
    rec.field("k", std::uint64_t{1});
    const std::string path = ::testing::TempDir() + "benchkit_write_file.json";
    ASSERT_TRUE(rec.write_file(path));
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[64] = {};
    const auto n = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(std::string(buf, n), rec.dump() + "\n");
    EXPECT_FALSE(rec.write_file("/nonexistent-dir/x.json"));
}

TEST(Json, ProvenanceStampsEveryField)
{
    // Every benchmark emission carries git_sha/build_type/native so a run
    // file is attributable to an exact build (benchctl depends on this).
    const auto p = provenance();
    EXPECT_FALSE(p.git_sha.empty());
    EXPECT_FALSE(p.build_type.empty());
    JsonRecords rec;
    rec.begin_record();
    rec.field("k", std::uint64_t{1});
    stamp_provenance(rec);
    const auto out = rec.dump();
    EXPECT_NE(out.find("\"git_sha\":\""), std::string::npos);
    EXPECT_NE(out.find("\"build_type\":\""), std::string::npos);
    EXPECT_NE(out.find("\"native\":"), std::string::npos);
    // Memory-layout environment: page size and THP mode are always stamped;
    // arena_backing appears once a tool notes what its FIB actually got.
    EXPECT_NE(out.find("\"page_size_bytes\":"), std::string::npos);
    EXPECT_NE(out.find("\"thp\":\""), std::string::npos);
    EXPECT_EQ(out.find("\"arena_backing\":"), std::string::npos);

    benchkit::note_arena_backing("thp-advised");
    JsonRecords rec2;
    rec2.begin_record();
    stamp_provenance(rec2);
    EXPECT_NE(rec2.dump().find("\"arena_backing\":\"thp-advised\""), std::string::npos);
    benchkit::note_arena_backing("");  // leave no residue for other tests
}

TEST(Cli, PrefixNamesDoNotCollide)
{
    const char* argv[] = {"bench", "--lookups-extra=5"};
    const Args args(2, const_cast<char**>(argv));
    EXPECT_EQ(args.get_u64("lookups", 7), 7u);  // "--lookups-extra" != "--lookups"
}

TEST(Printer, Formatting)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmt_mean_std(240.5151, 5.468), "240.52 (5.47)");
    EXPECT_EQ(fmt_mib(2u * 1024 * 1024), "2.00");
    EXPECT_EQ(fmt_count(531489), "531,489");
    EXPECT_EQ(fmt_count(7), "7");
    EXPECT_EQ(fmt_count(1000), "1,000");
}

TEST(Runner, ChecksumAndDeterminism)
{
    // A fake lookup whose result is a function of the address: repeated runs
    // with the same seed must produce identical checksums.
    const auto lookup = [](std::uint32_t a) { return static_cast<std::uint16_t>(a >> 16); };
    const auto r1 = measure_random(lookup, 10'000, 2, 9);
    const auto r2 = measure_random(lookup, 10'000, 2, 9);
    EXPECT_EQ(r1.checksum, r2.checksum);
    EXPECT_GT(r1.mlps_mean, 0.0);
}

TEST(Runner, RepeatedIssuesEachAddressSixteenTimes)
{
    std::uint32_t distinct = 0;
    std::uint32_t last = 0;
    std::uint32_t run = 0;
    bool ok = true;
    const auto lookup = [&](std::uint32_t a) {
        if (a != last || run == 0) {
            if (run != 0 && run != kRepeatFactor) ok = false;
            last = a;
            run = 0;
            ++distinct;
        }
        ++run;
        return std::uint16_t{1};
    };
    (void)measure_repeated(lookup, 1'600, 1, 3);
    EXPECT_TRUE(ok);
    EXPECT_EQ(distinct, 100u);
}

TEST(Runner, TraceReplaysExactly)
{
    const std::vector<std::uint32_t> trace{1, 2, 3, 2, 1};
    std::uint64_t sum = 0;
    const auto r = measure_trace(
        [&](std::uint32_t a) {
            sum += a;
            return static_cast<std::uint16_t>(a);
        },
        trace, 2);
    EXPECT_EQ(sum, 18u);  // 9 per trial x 2 trials
    EXPECT_EQ(r.checksum, 18u);
}

// The multithreaded measurement loop moved to dataplane/worker_pool.hpp;
// its test lives in test_dataplane.cpp.

TEST(Stats, ReservoirKeepsEverythingBelowCapacity)
{
    Reservoir r(8);
    for (std::uint64_t i = 0; i < 8; ++i) r.add(i * 10);
    EXPECT_EQ(r.samples().size(), 8u);
    EXPECT_EQ(r.observed(), 8u);
    // Below capacity the reservoir is the stream, in order.
    for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(r.samples()[i], i * 10);
}

TEST(Stats, ReservoirBoundsMemoryAndIsDeterministic)
{
    Reservoir a(64, 99);
    Reservoir b(64, 99);
    for (std::uint64_t i = 0; i < 100'000; ++i) {
        a.add(i);
        b.add(i);
    }
    EXPECT_EQ(a.samples().size(), 64u);
    EXPECT_EQ(a.observed(), 100'000u);
    EXPECT_EQ(a.samples(), b.samples());  // same seed, same stream → identical
    // A uniform sample of 0..99999 should not be confined to either end.
    const auto p = latency_percentiles(a);
    EXPECT_GT(p.p50, 10'000.0);
    EXPECT_LT(p.p50, 90'000.0);
}

TEST(Stats, ReservoirMergePreservesObservedCount)
{
    Reservoir a(32, 1);
    Reservoir b(32, 2);
    for (std::uint64_t i = 0; i < 1'000; ++i) a.add(i);
    for (std::uint64_t i = 0; i < 500; ++i) b.add(i + 1'000'000);
    Reservoir merged(32, 3);
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(merged.samples().size(), 32u);
    EXPECT_EQ(merged.observed(), 1'500u);
}

TEST(Stats, LatencyPercentilesMatchPercentileHelper)
{
    std::vector<std::uint64_t> s;
    for (std::uint64_t i = 1; i <= 1000; ++i) s.push_back(i);
    const auto lp = latency_percentiles(s);
    const Percentiles p(std::move(s));
    EXPECT_DOUBLE_EQ(lp.p50, p.percentile(50));
    EXPECT_DOUBLE_EQ(lp.p99, p.percentile(99));
    EXPECT_DOUBLE_EQ(lp.p999, p.percentile(99.9));
    EXPECT_EQ(lp.n, 1000u);
    EXPECT_EQ(latency_percentiles(std::vector<std::uint64_t>{}).n, 0u);
}

TEST(Stats, MlpsFormatting)
{
    EXPECT_EQ(fmt_mlps(412.3651), "412.37 Mlps");
    EXPECT_EQ(fmt_mlps(0.5, 1), "0.5 Mlps");
    EXPECT_DOUBLE_EQ(to_mlps(2'000'000, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(to_mlps(100, 0.0), 0.0);  // guard, not a division crash
}

TEST(Cycles, CalibrationIsSane)
{
    const auto overhead = calibrate_tsc_overhead();
    EXPECT_GT(overhead, 0u);
    EXPECT_LT(overhead, 10'000u);
    const double hz = tsc_hz();
    EXPECT_GT(hz, 1e8);   // > 100 MHz
    EXPECT_LT(hz, 1e11);  // < 100 GHz
}
