// Tests for the snapshot subsystem (src/snapshot, DESIGN.md §11): versioned
// on-disk FIB images. The core property is round-trip lookup equivalence —
// build → (churn) → compact → save → load must resolve every probe exactly
// like the live trie and the RIB oracle, for both address families and for
// both load placements (mmap and copy-in). The rejection tests prove the
// loader refuses every corruption class: flipped payload bits, short reads,
// bad magic, wrong format version, and a family mismatch.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "alloc/arena.hpp"
#include "benchkit/provenance.hpp"
#include "helpers.hpp"
#include "poptrie/poptrie.hpp"
#include "snapshot/snapshot.hpp"
#include "sync/annotations.hpp"
#include "workload/tablegen.hpp"
#include "workload/updatefeed.hpp"

using namespace testhelpers;
using netbase::Ipv6Addr;
using poptrie::Config;
using poptrie::Poptrie4;
using poptrie::Poptrie6;
using snapshot::ImageError;
using snapshot::ImageIoError;
using snapshot::LoadOptions;
using snapshot::SnapshotFib4;
using snapshot::SnapshotFib6;

namespace {

std::string temp_path(const std::string& name) { return ::testing::TempDir() + name; }

/// Save-and-reload through a real file, the way lpmd does it.
SnapshotFib4 round_trip(const Poptrie4& pt, const std::string& name,
                        const LoadOptions& opt = {})
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    const auto path = temp_path(name);
    snapshot::save(pt, path);
    return SnapshotFib4::load_file(path, opt);
}

}  // namespace

TEST(Snapshot, RoundTripCornerTableAllConfigs)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    for (const unsigned db : {0u, 12u, 18u}) {
        auto rib = load(corner_case_table());
        Config cfg;
        cfg.direct_bits = db;
        Poptrie4 pt{rib, cfg};
        pt.compact();
        const auto img = snapshot::serialize(pt);
        const auto fib = SnapshotFib4::load_buffer(img.data(), img.size());
        EXPECT_EQ(fib.node_count(), pt.stats().node_high_water);
        EXPECT_EQ(boundary_and_random_mismatches(
                      rib, corner_case_table(),
                      [&](Ipv4Addr a) { return fib.lookup(a); }, 50'000, db + 1),
                  0u)
            << "direct_bits=" << db;
        EXPECT_TRUE(snapshot::verify_image(fib).ok())
            << snapshot::verify_image(fib).summary();
    }
}

TEST(Snapshot, RoundTripGeneratedTableAfterChurnAndCompact)
{
    workload::TableGenConfig gen;
    gen.seed = 11;
    gen.target_routes = 30'000;
    const auto routes = workload::generate_table(gen);
    auto rib = load(routes);
    Poptrie4 pt{rib, Config{}};

    workload::UpdateFeedConfig ucfg;
    ucfg.seed = 12;
    ucfg.updates = 3'000;
    for (const auto& ev : workload::make_update_feed(routes, ucfg))
        pt.apply(rib, ev.prefix, ev.next_hop);
    pt.drain();

    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    pt.compact();
    const auto fib = round_trip(pt, "snap_churned.img");
    EXPECT_EQ(boundary_and_random_mismatches(
                  rib, routes, [&](Ipv4Addr a) { return fib.lookup(a); }, 100'000),
              0u);
    EXPECT_TRUE(snapshot::verify_image(fib).ok());
}

TEST(Snapshot, RoundTripWithoutCompaction)
{
    // An uncompacted FIB serializes its full touched extent (free-pool holes
    // included); the image must still resolve identically.
    workload::TableGenConfig gen;
    gen.seed = 21;
    gen.target_routes = 10'000;
    const auto routes = workload::generate_table(gen);
    auto rib = load(routes);
    Poptrie4 pt{rib, Config{}};
    workload::UpdateFeedConfig ucfg;
    ucfg.seed = 22;
    ucfg.updates = 1'000;
    for (const auto& ev : workload::make_update_feed(routes, ucfg))
        pt.apply(rib, ev.prefix, ev.next_hop);
    pt.drain();

    const auto fib = round_trip(pt, "snap_uncompacted.img");
    EXPECT_EQ(boundary_and_random_mismatches(
                  rib, routes, [&](Ipv4Addr a) { return fib.lookup(a); }, 50'000),
              0u);
}

TEST(Snapshot, BatchLookupMatchesScalar)
{
    auto rib = load(corner_case_table());
    Poptrie4 pt{rib, Config{}};
    const auto fib = round_trip(pt, "snap_batch.img");
    workload::Xorshift128 rng(33);
    std::vector<std::uint32_t> keys(4096);
    for (auto& k : keys) k = rng.next();
    std::vector<rib::NextHop> out(keys.size());
    fib.lookup_batch(keys.data(), out.data(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        ASSERT_EQ(out[i], fib.lookup(Ipv4Addr{keys[i]})) << i;
}

TEST(Snapshot, RoundTripIPv6)
{
    workload::TableGen6Config gen;
    gen.seed = 41;
    gen.target_routes = 10'000;
    const auto routes = workload::generate_table6(gen);
    rib::RadixTrie<Ipv6Addr> rib;
    rib.insert_all(routes);
    Poptrie6 pt{rib, Config{}};
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    pt.compact();
    const auto path = temp_path("snap_v6.img");
    snapshot::save(pt, path);
    const auto fib = SnapshotFib6::load_file(path);

    for (const auto& r : routes) {
        for (const auto v :
             {r.prefix.first_address().value(), r.prefix.last_address().value(),
              r.prefix.first_address().value() - 1, r.prefix.last_address().value() + 1}) {
            const Ipv6Addr a{v};
            ASSERT_EQ(fib.lookup(a), rib.lookup(a)) << netbase::to_string(a);
        }
    }
    workload::Xorshift128 rng(42);
    for (int i = 0; i < 100'000; ++i) {
        using u128 = Ipv6Addr::value_type;
        const Ipv6Addr a{(u128{rng.next()} << 96) | (u128{rng.next()} << 64) |
                         (u128{rng.next()} << 32) | rng.next()};
        ASSERT_EQ(fib.lookup(a), rib.lookup(a)) << netbase::to_string(a);
    }
    EXPECT_TRUE(snapshot::verify_image(fib).ok());
}

TEST(Snapshot, ConfigEchoPreserved)
{
    auto rib = load(corner_case_table());
    Config cfg;
    cfg.direct_bits = 0;
    cfg.leaf_compression = false;
    cfg.route_aggregation = false;
    Poptrie4 pt{rib, cfg};
    const auto fib = round_trip(pt, "snap_basic.img");
    EXPECT_EQ(fib.config().direct_bits, 0u);
    EXPECT_FALSE(fib.config().leaf_compression);
    EXPECT_FALSE(fib.config().route_aggregation);
    EXPECT_EQ(boundary_and_random_mismatches(
                  rib, corner_case_table(),
                  [&](Ipv4Addr a) { return fib.lookup(a); }, 50'000),
              0u);
}

TEST(Snapshot, ProvenanceStampSurvives)
{
    auto rib = load(corner_case_table());
    Poptrie4 pt{rib, Config{}};
    const auto fib = round_trip(pt, "snap_prov.img");
    // The writer's build fingerprint rides in the header (NUL-padded).
    const auto prov = benchkit::provenance();
    EXPECT_EQ(std::string(fib.header().git_sha),
              std::string(prov.git_sha.substr(0, sizeof(fib.header().git_sha) - 1)));
}

TEST(Snapshot, ChecksumFlipRejected)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    auto rib = load(corner_case_table());
    Poptrie4 pt{rib, Config{}};
    auto img = snapshot::serialize(pt);
    img[(sizeof(snapshot::ImageHeader) + img.size()) / 2] ^= 0x01;
    EXPECT_THROW(SnapshotFib4::load_buffer(img.data(), img.size()), ImageError);
}

TEST(Snapshot, ShortReadRejected)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    auto rib = load(corner_case_table());
    Poptrie4 pt{rib, Config{}};
    const auto img = snapshot::serialize(pt);
    EXPECT_THROW(SnapshotFib4::load_buffer(img.data(), img.size() / 2), ImageError);
    EXPECT_THROW(SnapshotFib4::load_buffer(img.data(), sizeof(snapshot::ImageHeader) / 2),
                 ImageError);
}

TEST(Snapshot, BadMagicAndWrongVersionRejected)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    auto rib = load(corner_case_table());
    Poptrie4 pt{rib, Config{}};
    const auto img = snapshot::serialize(pt);

    auto bad_magic = img;
    bad_magic[0] ^= 0xFF;
    EXPECT_THROW(SnapshotFib4::load_buffer(bad_magic.data(), bad_magic.size()), ImageError);

    // Re-seal the header checksum so the version check itself, not the
    // checksum side effect, does the rejecting.
    auto bad_version = img;
    snapshot::ImageHeader hdr;
    std::memcpy(&hdr, bad_version.data(), sizeof(hdr));
    hdr.format_version = snapshot::kFormatVersion + 7;
    hdr.header_checksum = 0;
    hdr.header_checksum = snapshot::fnv1a64(&hdr, sizeof(hdr));
    std::memcpy(bad_version.data(), &hdr, sizeof(hdr));
    try {
        static_cast<void>(SnapshotFib4::load_buffer(bad_version.data(), bad_version.size()));
        FAIL() << "wrong-version image was accepted";
    } catch (const ImageError& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
    }
}

TEST(Snapshot, FamilyMismatchRejected)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    auto rib = load(corner_case_table());
    Poptrie4 pt{rib, Config{}};
    const auto path = temp_path("snap_family.img");
    snapshot::save(pt, path);
    EXPECT_THROW(SnapshotFib6::load_file(path), ImageError);
    EXPECT_NO_THROW(SnapshotFib4::load_file(path));
}

TEST(Snapshot, MissingFileIsIoError)
{
    EXPECT_THROW(SnapshotFib4::load_file(temp_path("snap_never_written.img")),
                 ImageIoError);
}

TEST(Snapshot, PlacementControlsBacking)
{
    auto rib = load(corner_case_table());
    Poptrie4 pt{rib, Config{}};

    LoadOptions map_opt;
    map_opt.placement = LoadOptions::Placement::kMap;
    const auto mapped = round_trip(pt, "snap_backing.img", map_opt);
#if defined(__linux__)
    EXPECT_EQ(mapped.memory_report().backing, alloc::Backing::kFileMapped);
#endif

    LoadOptions copy_opt;
    copy_opt.placement = LoadOptions::Placement::kCopy;
    const auto copied = round_trip(pt, "snap_backing.img", copy_opt);
    EXPECT_NE(copied.memory_report().backing, alloc::Backing::kFileMapped);

    // Both placements must of course resolve identically.
    workload::Xorshift128 rng(55);
    for (int i = 0; i < 50'000; ++i) {
        const Ipv4Addr a{rng.next()};
        ASSERT_EQ(mapped.lookup(a), copied.lookup(a)) << netbase::to_string(a);
    }
}

TEST(Snapshot, ImageIsByteStableForSameFib)
{
    // Two serializations of the same compacted trie are byte-identical:
    // compact() produces the canonical DFS layout and the header carries no
    // wall-clock state, so images are reproducible (and diffable) artifacts.
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    auto rib = load(corner_case_table());
    Poptrie4 pt{rib, Config{}};
    pt.compact();
    EXPECT_EQ(snapshot::serialize(pt), snapshot::serialize(pt));
}
