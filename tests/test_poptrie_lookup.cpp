// Parameterized cross-validation of Poptrie lookups against the radix RIB
// over generated full-size-ish tables: every combination of direct-pointing
// width, leaf compression and route aggregation must resolve identically.
#include <gtest/gtest.h>

#include <tuple>

#include "helpers.hpp"
#include "poptrie/poptrie.hpp"
#include "workload/datasets.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;
using poptrie::Config;
using poptrie::Poptrie4;

namespace {

struct Case {
    unsigned direct_bits;
    bool leaf_compression;
    bool route_aggregation;
};

std::string case_name(const testing::TestParamInfo<Case>& info)
{
    return "s" + std::to_string(info.param.direct_bits) +
           (info.param.leaf_compression ? "_leafvec" : "_basic") +
           (info.param.route_aggregation ? "_agg" : "_raw");
}

class PoptrieLookup : public testing::TestWithParam<Case> {
protected:
    static void SetUpTestSuite()
    {
        workload::TableGenConfig cfg;
        cfg.seed = 1234;
        cfg.target_routes = 60'000;
        cfg.next_hops = 64;
        cfg.igp_routes = 3'000;
        routes_ = new rib::RouteList<Ipv4Addr>(workload::generate_table(cfg));
        rib_ = new rib::RadixTrie<Ipv4Addr>(load(*routes_));
    }
    static void TearDownTestSuite()
    {
        delete routes_;
        delete rib_;
        routes_ = nullptr;
        rib_ = nullptr;
    }
    static rib::RouteList<Ipv4Addr>* routes_;
    static rib::RadixTrie<Ipv4Addr>* rib_;
};

rib::RouteList<Ipv4Addr>* PoptrieLookup::routes_ = nullptr;
rib::RadixTrie<Ipv4Addr>* PoptrieLookup::rib_ = nullptr;

TEST_P(PoptrieLookup, MatchesRadixAtBoundariesAndRandom)
{
    const auto [s, lc, agg] = std::tuple{GetParam().direct_bits, GetParam().leaf_compression,
                                         GetParam().route_aggregation};
    Config cfg;
    cfg.direct_bits = s;
    cfg.leaf_compression = lc;
    cfg.route_aggregation = agg;
    const Poptrie4 pt{*rib_, cfg};
    EXPECT_EQ(boundary_and_random_mismatches(
                  *rib_, *routes_, [&](Ipv4Addr a) { return pt.lookup(a); }, 500'000),
              0u);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, PoptrieLookup,
                         testing::Values(Case{0, true, true}, Case{0, true, false},
                                         Case{0, false, true}, Case{0, false, false},
                                         Case{12, true, true}, Case{12, false, false},
                                         Case{16, true, true}, Case{16, true, false},
                                         Case{16, false, true}, Case{16, false, false},
                                         Case{18, true, true}, Case{18, true, false},
                                         Case{18, false, true}, Case{18, false, false},
                                         Case{20, true, true}, Case{22, true, true}),
                         case_name);

// Scaled-down instances of every Table 1 dataset family, validated against
// the radix oracle with the default (Poptrie18) configuration.
class DatasetFamilies : public testing::TestWithParam<int> {};

TEST_P(DatasetFamilies, DefaultConfigMatchesRadix)
{
    auto spec = workload::all_ipv4_specs()[static_cast<std::size_t>(GetParam())];
    spec.config.target_routes /= 10;  // scaled for test runtime
    spec.config.igp_routes /= 10;
    const auto routes = workload::make_table(spec);
    const auto rib = load(routes);
    const Poptrie4 pt{rib};
    EXPECT_EQ(boundary_and_random_mismatches(
                  rib, routes, [&](Ipv4Addr a) { return pt.lookup(a); }, 200'000),
              0u)
        << spec.name;
}

INSTANTIATE_TEST_SUITE_P(TableOne, DatasetFamilies,
                         testing::Values(0, 1, 2, 3, 10, 14, 25, 33),
                         [](const testing::TestParamInfo<int>& info) {
                             auto name = workload::all_ipv4_specs()
                                             [static_cast<std::size_t>(info.param)]
                                                 .name;
                             for (auto& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

// The three lookup entry points (config-dispatched, pinned template, soft
// popcount) agree on every table.
TEST(PoptrieLookupVariants, EntryPointsAgree)
{
    const auto routes = corner_case_table();
    const auto rib = load(routes);
    Config cfg;
    cfg.direct_bits = 18;
    const Poptrie4 pt{rib, cfg};
    workload::Xorshift128 rng(31);
    for (int i = 0; i < 200'000; ++i) {
        const std::uint32_t a = rng.next();
        const auto want = pt.lookup(Ipv4Addr{a});
        ASSERT_EQ((pt.lookup_raw<true, false>(a)), want);
        ASSERT_EQ((pt.lookup_raw<true, true>(a)), want);
    }
}

}  // namespace
