// Tests for the hugepage-backed arena and its pool container. The CI-critical
// case is the fallback path: a HugepagePolicy::kOn arena on a machine with an
// empty hugepage reservation (every CI runner) must still hand out usable
// zeroed memory and report truthfully that MAP_HUGETLB was tried and refused
// — set_force_hugetlb_failure makes that deterministic everywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>

#include "alloc/arena.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/radix_trie.hpp"

using alloc::Arena;
using alloc::ArenaVector;
using alloc::Backing;
using alloc::HugepagePolicy;

namespace {

/// RAII so a failed ASSERT cannot leave the hook set for later tests.
struct ForceHugetlbFailure {
    ForceHugetlbFailure() { alloc::set_force_hugetlb_failure(true); }
    ~ForceHugetlbFailure() { alloc::set_force_hugetlb_failure(false); }
};

}  // namespace

TEST(Arena, MapsZeroedUsableMemory)
{
    for (const auto policy :
         {HugepagePolicy::kAuto, HugepagePolicy::kOn, HugepagePolicy::kOff}) {
        Arena arena{policy};
        auto block = arena.map(100 * sizeof(std::uint64_t));
        ASSERT_NE(block.ptr, nullptr);
        EXPECT_GE(block.bytes, 100 * sizeof(std::uint64_t));
        auto* p = static_cast<std::uint64_t*>(block.ptr);
        for (int i = 0; i < 100; ++i) ASSERT_EQ(p[i], 0u);
        p[0] = 0xDEADBEEF;  // writable
        const auto report = arena.report();
        EXPECT_EQ(report.bytes_reserved, block.bytes);
        arena.unmap(block);
        EXPECT_EQ(arena.report().bytes_reserved, 0u);
    }
}

TEST(Arena, OffPolicyNeverUsesHugepages)
{
    Arena arena{HugepagePolicy::kOff};
    auto block = arena.map(1 << 20);
    EXPECT_TRUE(block.backing == Backing::kNormalPages || block.backing == Backing::kHeap);
    const auto report = arena.report();
    EXPECT_FALSE(report.hugetlb_requested);
    EXPECT_FALSE(report.hugetlb_failed);
    arena.unmap(block);
}

TEST(Arena, HugetlbFallbackIsGracefulAndReported)
{
    ForceHugetlbFailure forced;
    Arena arena{HugepagePolicy::kOn};
    auto block = arena.map(4 << 20);  // two 2 MiB hugepages' worth
    ASSERT_NE(block.ptr, nullptr);
    EXPECT_NE(block.backing, Backing::kHugetlb);
    static_cast<char*>(block.ptr)[0] = 1;  // usable despite the refusal

    const auto report = arena.report();
    EXPECT_TRUE(report.hugetlb_requested);
    EXPECT_TRUE(report.hugetlb_failed);
    EXPECT_NE(report.backing, Backing::kHugetlb);
    EXPECT_GT(report.page_size, 0u);
    arena.unmap(block);
}

TEST(Arena, ReportTracksWeakestLiveBacking)
{
    Arena arena{HugepagePolicy::kAuto};
    auto a = arena.map(1 << 16);
    auto b = arena.map(1 << 16);
    const auto report = arena.report();
    // Two live blocks: the aggregate backing can be no stronger than either.
    EXPECT_LE(static_cast<int>(report.backing),
              static_cast<int>(std::min(a.backing, b.backing)));
    EXPECT_EQ(report.bytes_reserved, a.bytes + b.bytes);
    arena.unmap(a);
    arena.unmap(b);
}

TEST(Arena, BackingNamesAreStable)
{
    EXPECT_STREQ(alloc::backing_name(Backing::kHeap), "heap");
    EXPECT_STREQ(alloc::backing_name(Backing::kNormalPages), "normal-pages");
    EXPECT_STREQ(alloc::backing_name(Backing::kThpAdvised), "thp-advised");
    EXPECT_STREQ(alloc::backing_name(Backing::kHugetlb), "hugetlb");
}

TEST(Arena, ThpStatusIsNonEmpty)
{
    // "always", "madvise", "never", or "unavailable" — never an empty string
    // (provenance stamps this verbatim).
    EXPECT_FALSE(alloc::thp_status().empty());
}

TEST(ArenaVector, ResizeZeroFillsAndPreservesContents)
{
    Arena arena;
    ArenaVector<std::uint32_t> v{&arena};
    EXPECT_TRUE(v.empty());
    v.resize(10);
    for (std::size_t i = 0; i < 10; ++i) {
        ASSERT_EQ(v[i], 0u);
        v[i] = static_cast<std::uint32_t>(i + 1);
    }
    v.resize(100'000);  // forces at least one remap
    for (std::size_t i = 0; i < 10; ++i) ASSERT_EQ(v[i], i + 1);
    for (std::size_t i = 10; i < 100'000; ++i) ASSERT_EQ(v[i], 0u);
    EXPECT_EQ(v.size(), 100'000u);
    EXPECT_GE(v.capacity(), v.size());

    // Shrink keeps storage; regrow within capacity re-zeroes the tail.
    v.resize(5);
    v.resize(20);
    for (std::size_t i = 5; i < 20; ++i) ASSERT_EQ(v[i], 0u);
}

TEST(ArenaVector, AssignAndMove)
{
    Arena arena;
    ArenaVector<std::uint16_t> v{&arena};
    v.assign(1000, 42);
    ASSERT_EQ(v.size(), 1000u);
    for (const auto x : v) ASSERT_EQ(x, 42);

    ArenaVector<std::uint16_t> w{std::move(v)};
    EXPECT_EQ(w.size(), 1000u);
    EXPECT_EQ(w[999], 42);
    EXPECT_EQ(v.size(), 0u);  // NOLINT(bugprone-use-after-move): defined state

    ArenaVector<std::uint16_t> z{&arena};
    z.resize(3);
    z = std::move(w);
    EXPECT_EQ(z.size(), 1000u);
    EXPECT_EQ(z[0], 42);
    EXPECT_EQ(arena.report().bytes_reserved, z.capacity() * sizeof(std::uint16_t));
}

// End-to-end: a Poptrie configured with hugepages=kOn on a hugepage-less
// machine still builds, resolves, and reports the fallback through
// memory_report() — exactly what CI runners exercise implicitly.
TEST(ArenaPoptrie, PoptrieFallsBackCleanlyUnderForcedHugetlbFailure)
{
    ForceHugetlbFailure forced;
    rib::RadixTrie<netbase::Ipv4Addr> rib;
    rib.insert(*netbase::parse_prefix4("10.0.0.0/8"), 4);
    rib.insert(*netbase::parse_prefix4("10.64.0.0/10"), 5);
    poptrie::Config cfg;
    cfg.direct_bits = 16;
    cfg.hugepages = HugepagePolicy::kOn;
    poptrie::Poptrie4 pt{rib, cfg};

    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("10.65.0.1")), 5);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("10.1.1.1")), 4);

    const auto report = pt.memory_report();
    EXPECT_TRUE(report.hugetlb_requested);
    EXPECT_TRUE(report.hugetlb_failed);
    EXPECT_NE(report.backing, Backing::kHugetlb);
    EXPECT_GT(report.bytes_reserved, 0u);
}
