// IPv6 tests (§4.10): Poptrie6 across configurations and DXR6, validated
// against the IPv6 radix trie on generated tables and crafted corner cases.
#include <gtest/gtest.h>

#include <gtest/gtest-param-test.h>

#include "baselines/dxr.hpp"
#include "baselines/treebitmap.hpp"
#include "poptrie/poptrie.hpp"
#include "workload/tablegen.hpp"
#include "workload/xorshift.hpp"

using netbase::Ipv6Addr;
using netbase::Prefix6;
using netbase::u128;
using poptrie::Config;
using poptrie::Poptrie6;
using rib::kNoRoute;
using rib::NextHop;

namespace {

Prefix6 pfx(const char* text) { return *netbase::parse_prefix6(text); }
Ipv6Addr addr(const char* text) { return *netbase::parse_ipv6(text); }

// Random address inside 2000::/8, as the paper's IPv6 query generator
// ("four xorshift 32-bit random number generations to generate a 128-bit
// random address").
Ipv6Addr random_2000(workload::Xorshift128& rng)
{
    u128 v = (static_cast<u128>(rng.next()) << 96) | (static_cast<u128>(rng.next()) << 64) |
             (static_cast<u128>(rng.next()) << 32) | rng.next();
    v &= ~(u128{0xFF} << 120);
    v |= u128{0x20} << 120;
    return Ipv6Addr{v};
}

rib::RadixTrie<Ipv6Addr> corner_rib6()
{
    rib::RadixTrie<Ipv6Addr> t;
    t.insert(pfx("::/0"), 1);
    t.insert(pfx("2000::/3"), 2);
    t.insert(pfx("2001:db8::/32"), 3);
    t.insert(pfx("2001:db8:0:1::/64"), 4);
    t.insert(pfx("2001:db8:0:1::8000/113"), 5);
    t.insert(pfx("2001:db8:0:1::ffff/128"), 6);
    t.insert(pfx("2400::/12"), 7);
    t.insert(pfx("2400:8000::/17"), 8);
    t.insert(pfx("fe80::/10"), 9);
    return t;
}

}  // namespace

class Poptrie6Configs : public testing::TestWithParam<unsigned> {};

TEST_P(Poptrie6Configs, CornerCasesResolve)
{
    const auto rib = corner_rib6();
    Config cfg;
    cfg.direct_bits = GetParam();
    const Poptrie6 pt{rib, cfg};
    EXPECT_EQ(pt.lookup(addr("::1")), 1);
    EXPECT_EQ(pt.lookup(addr("3000::1")), 2);
    EXPECT_EQ(pt.lookup(addr("2001:db8:ffff::1")), 3);
    EXPECT_EQ(pt.lookup(addr("2001:db8:0:1::1")), 4);
    EXPECT_EQ(pt.lookup(addr("2001:db8:0:1::9000")), 5);
    EXPECT_EQ(pt.lookup(addr("2001:db8:0:1::ffff")), 6);
    EXPECT_EQ(pt.lookup(addr("2001:db8:0:1::fffe")), 5);
    EXPECT_EQ(pt.lookup(addr("2400:7fff::1")), 7);
    EXPECT_EQ(pt.lookup(addr("2400:8000::1")), 8);
    EXPECT_EQ(pt.lookup(addr("fe80::1234")), 9);
    EXPECT_EQ(pt.lookup(addr("fec0::1")), 1);
}

TEST_P(Poptrie6Configs, MatchesRadixOnGeneratedTable)
{
    workload::TableGen6Config gen;
    gen.seed = 2;
    gen.target_routes = 20'000;
    gen.next_hops = 13;
    const auto routes = workload::generate_table6(gen);
    rib::RadixTrie<Ipv6Addr> rib;
    rib.insert_all(routes);
    Config cfg;
    cfg.direct_bits = GetParam();
    const Poptrie6 pt{rib, cfg};
    workload::Xorshift128 rng(3);
    for (int i = 0; i < 300'000; ++i) {
        const auto a = random_2000(rng);
        ASSERT_EQ(pt.lookup(a), rib.lookup(a)) << netbase::to_string(a);
    }
    // Boundary probes at every route edge.
    for (const auto& r : routes) {
        for (const u128 v : {r.prefix.first_address().value(), r.prefix.last_address().value(),
                             r.prefix.first_address().value() - 1,
                             r.prefix.last_address().value() + 1}) {
            const Ipv6Addr a{v};
            ASSERT_EQ(pt.lookup(a), rib.lookup(a)) << netbase::to_string(a);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(DirectBits, Poptrie6Configs, testing::Values(0u, 12u, 16u, 18u),
                         [](const testing::TestParamInfo<unsigned>& info) {
                             return "s" + std::to_string(info.param);
                         });

TEST(Poptrie6, UpdateFeed)
{
    auto rib = corner_rib6();
    Config cfg;
    cfg.direct_bits = 16;
    Poptrie6 pt{rib, cfg};
    pt.apply(rib, pfx("2001:db8:0:2::/64"), 11);
    EXPECT_EQ(pt.lookup(addr("2001:db8:0:2::5")), 11);
    pt.apply(rib, pfx("2001:db8:0:1::/64"), kNoRoute);
    EXPECT_EQ(pt.lookup(addr("2001:db8:0:1::1")), 3);
    EXPECT_EQ(pt.lookup(addr("2001:db8:0:1::9000")), 5);  // /113 survives
    pt.apply(rib, pfx("::/0"), 12);
    EXPECT_EQ(pt.lookup(addr("fec0::1")), 12);
    workload::Xorshift128 rng(5);
    for (int i = 0; i < 100'000; ++i) {
        const auto a = random_2000(rng);
        ASSERT_EQ(pt.lookup(a), rib.lookup(a));
    }
}

TEST(Dxr6, CornerCasesResolve)
{
    const auto rib = corner_rib6();
    const baselines::Dxr6 d{rib, 18};
    EXPECT_EQ(d.lookup(addr("3000::1")), 2);
    EXPECT_EQ(d.lookup(addr("2001:db8:0:1::9000")), 5);
    EXPECT_EQ(d.lookup(addr("2001:db8:0:1::ffff")), 6);
    EXPECT_EQ(d.lookup(addr("2400:8000::1")), 8);
    EXPECT_EQ(d.lookup(addr("fe80::1234")), 9);
}

TEST(Dxr6, MatchesRadixOnGeneratedTable)
{
    workload::TableGen6Config gen;
    gen.seed = 4;
    gen.target_routes = 20'000;
    gen.next_hops = 13;
    const auto routes = workload::generate_table6(gen);
    rib::RadixTrie<Ipv6Addr> rib;
    rib.insert_all(routes);
    for (const unsigned k : {16u, 18u}) {
        const baselines::Dxr6 d{rib, k};
        workload::Xorshift128 rng(6);
        for (int i = 0; i < 200'000; ++i) {
            const auto a = random_2000(rng);
            ASSERT_EQ(d.lookup(a), rib.lookup(a)) << netbase::to_string(a) << " k=" << k;
        }
    }
}

TEST(TreeBitmap6, MatchesRadixOnGeneratedTable)
{
    workload::TableGen6Config gen;
    gen.seed = 8;
    gen.target_routes = 5'000;
    const auto routes = workload::generate_table6(gen);
    rib::RadixTrie<Ipv6Addr> rib;
    rib.insert_all(routes);
    const baselines::TreeBitmap<Ipv6Addr, 6> t{rib};
    workload::Xorshift128 rng(7);
    for (int i = 0; i < 100'000; ++i) {
        const auto a = random_2000(rng);
        ASSERT_EQ(t.lookup(a), rib.lookup(a)) << netbase::to_string(a);
    }
}
