// TSan-targeted concurrency stress for the §3.5 contract: lock-free readers
// racing a single writer that replays an update feed, with differential
// checks against the RIB oracle. Designed to run under
// -DPOPTRIE_SANITIZE=thread, where the sanitizer proves the absence of data
// races on the publication protocol (release stores of base0/base1/direct
// slots/root, acquire loads in lookup, EBR grace periods); without a
// sanitizer it still verifies linearizable-looking results and exact
// post-quiescence equivalence.
//
// Sizes are deliberately modest — TSan executes ~10x slower — but every
// publication path is exercised: direct-slot swaps, in-place base pointer
// replacement, root replacement (direct_bits == 0), reader registration
// racing reclamation, and EBR-deferred frees under continuous readers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "analysis/audit.hpp"
#include "helpers.hpp"
#include "poptrie/poptrie.hpp"
#include "workload/tablegen.hpp"
#include "workload/updatefeed.hpp"

using namespace testhelpers;
using poptrie::Config;
using poptrie::Poptrie4;

namespace {

/// Spawns `n` reader threads doing guarded lookups until `stop`; each records
/// how many lookups returned a next hop outside [0, max_hop].
class ReaderPool {
public:
    ReaderPool(Poptrie4& pt, int n, NextHop max_hop, std::atomic<bool>& stop)
    {
        for (int r = 0; r < n; ++r) {
            threads_.emplace_back([&pt, max_hop, &stop, this, r] {
                auto slot = pt.register_reader();
                workload::Xorshift128 rng(0xACE1u + static_cast<unsigned>(r));
                while (!stop.load(std::memory_order_relaxed)) {
                    const psync::EbrDomain::Guard g{slot};
                    for (int i = 0; i < 256; ++i) {
                        const auto nh = pt.lookup(Ipv4Addr{rng.next()});
                        if (nh > max_hop) invalid_.fetch_add(1, std::memory_order_relaxed);
                    }
                    lookups_.fetch_add(256, std::memory_order_relaxed);
                }
            });
        }
    }

    /// Joins all reader threads; counters are final afterwards.
    void join() { threads_.clear(); }

    [[nodiscard]] std::size_t invalid() const { return invalid_.load(); }
    [[nodiscard]] std::uint64_t lookups() const { return lookups_.load(); }

private:
    std::vector<std::jthread> threads_;
    std::atomic<std::size_t> invalid_{0};
    std::atomic<std::uint64_t> lookups_{0};
};

}  // namespace

// Readers hammer random lookups while the writer replays a synthetic BGP
// feed. The writer differentially checks the FIB against the RIB after every
// batch (writer-side reads are always safe) and runs the structural auditor
// at the end, with readers still running.
TEST(TsanStress, ReadersVsUpdateFeedWithDifferentialBatches)
{
    // writer: this thread replays the feed alone; every reader runs in a
    // ReaderPool jthread under its own EbrDomain::Guard.
    const psync::EbrWriterSection writer;
    workload::TableGenConfig gen;
    gen.seed = 21;
    gen.target_routes = 10'000;
    gen.next_hops = 17;
    const auto routes = workload::generate_table(gen);
    auto rib = load(routes);

    Config cfg;
    cfg.direct_bits = 16;
    cfg.pool_headroom_log2 = 3;  // growth is not reader-safe; keep headroom
    Poptrie4 pt{rib, cfg};

    workload::UpdateFeedConfig ucfg;
    ucfg.updates = 2'000;
    ucfg.next_hops = 17;
    const auto feed = workload::make_update_feed(routes, ucfg);

    std::atomic<bool> stop{false};
    ReaderPool readers(pt, 4, 17, stop);

    workload::Xorshift128 probe_rng(1234);
    std::size_t applied = 0;
    for (const auto& ev : feed) {
        pt.apply(rib, ev.prefix, ev.next_hop);
        if (++applied % 100 == 0) {
            // Differential batch: the updated prefix's span plus random probes.
            for (int i = 0; i < 256; ++i) {
                const Ipv4Addr a{probe_rng.next()};
                ASSERT_EQ(pt.lookup(a), rib.lookup(a)) << "after " << applied << " updates";
            }
        }
    }

    // Structural audit with readers still racing (audit reads writer-side
    // state only, plus lookups, which are reader-safe by contract).
    analysis::AuditOptions aopt;
    aopt.random_probes = 1'024;
    aopt.max_boundary_routes = 0;
    const auto report = analysis::audit(pt, rib, aopt);
    EXPECT_TRUE(report.ok()) << report.summary();

    stop = true;
    readers.join();
    EXPECT_GT(readers.lookups(), 0u);
    EXPECT_EQ(readers.invalid(), 0u);
    EXPECT_EQ(pt.update_counters().pool_growths, 0u)
        << "headroom exhausted: growth under readers invalidates the test premise";
    pt.drain();
    analysis::audit_or_abort(pt, rib);
}

// direct_bits == 0 pins the §3.5 atomic swap on the root index itself: every
// shape-changing update republishes root_, which readers pick up with an
// acquire load. This is the path a missing atomic on root_ breaks first.
TEST(TsanStress, RootRepublicationUnderReaders)
{
    // writer: this thread applies all updates; readers live in ReaderPool.
    const psync::EbrWriterSection writer;
    const auto routes = corner_case_table();
    auto rib = load(routes);
    Config cfg;
    cfg.direct_bits = 0;
    cfg.pool_headroom_log2 = 6;
    Poptrie4 pt{rib, cfg};

    std::atomic<bool> stop{false};
    ReaderPool readers(pt, 3, 202, stop);  // hops installed below are 1..202

    // Alternately install and withdraw prefixes at several depths so the
    // root node's shape keeps changing (leaf <-> internal transitions).
    const auto p8 = *netbase::parse_prefix4("99.0.0.0/8");
    const auto p20 = *netbase::parse_prefix4("99.1.16.0/20");
    const auto p32 = *netbase::parse_prefix4("99.1.16.77/32");
    for (int i = 0; i < 3'000; ++i) {
        const auto hop = static_cast<NextHop>(1 + (i % 200));
        pt.apply(rib, p8, hop);
        pt.apply(rib, p20, static_cast<NextHop>(hop + 1));
        pt.apply(rib, p32, static_cast<NextHop>(hop + 2));
        if (i % 3 == 0) {
            pt.apply(rib, p32, rib::kNoRoute);
            pt.apply(rib, p20, rib::kNoRoute);
            pt.apply(rib, p8, rib::kNoRoute);
        }
    }
    stop = true;
    readers.join();
    EXPECT_EQ(readers.invalid(), 0u);
    pt.drain();
    EXPECT_EQ(pt.update_counters().pool_growths, 0u);
    analysis::audit_or_abort(pt, rib);
}

// Reader registration racing updates and reclamation: register_reader() takes
// the domain mutex while min_active_epoch() scans under the same mutex; this
// test makes those paths actually interleave.
TEST(TsanStress, ReaderRegistrationRacesReclamation)
{
    // writer: this thread applies all updates; churner threads only ever
    // hold read-side guards.
    const psync::EbrWriterSection writer;
    workload::TableGenConfig gen;
    gen.seed = 33;
    gen.target_routes = 2'000;
    gen.next_hops = 9;
    const auto routes = workload::generate_table(gen);
    auto rib = load(routes);

    Config cfg;
    cfg.direct_bits = 12;
    cfg.pool_headroom_log2 = 4;
    Poptrie4 pt{rib, cfg};

    std::atomic<bool> stop{false};
    std::vector<std::jthread> churners;
    for (int t = 0; t < 3; ++t) {
        churners.emplace_back([&pt, &stop, t] {
            workload::Xorshift128 rng(500 + static_cast<unsigned>(t));
            while (!stop.load(std::memory_order_relaxed)) {
                // A short-lived reader per iteration: registration and a few
                // guarded lookups, racing the writer's scan.
                auto slot = pt.register_reader();
                const psync::EbrDomain::Guard g{slot};
                for (int i = 0; i < 64; ++i) (void)pt.lookup(Ipv4Addr{rng.next()});
            }
        });
    }

    const auto p = *netbase::parse_prefix4("10.20.0.0/16");
    for (int i = 0; i < 4'000; ++i)
        pt.apply(rib, p, static_cast<NextHop>(1 + (i % 7)));
    stop = true;
    churners.clear();
    pt.drain();
    analysis::audit_or_abort(pt, rib);
}
