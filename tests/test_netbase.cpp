// Unit tests for the address/prefix/bit-helper foundation.
#include <gtest/gtest.h>

#include "netbase/bits.hpp"
#include "netbase/ipv4.hpp"
#include "netbase/ipv6.hpp"
#include "netbase/prefix.hpp"
#include "workload/xorshift.hpp"

using namespace netbase;

TEST(Ipv4, ParseValid)
{
    EXPECT_EQ(parse_ipv4("0.0.0.0")->value(), 0u);
    EXPECT_EQ(parse_ipv4("255.255.255.255")->value(), 0xFFFFFFFFu);
    EXPECT_EQ(parse_ipv4("10.0.0.1")->value(), 0x0A000001u);
    EXPECT_EQ(parse_ipv4("192.168.1.2")->value(), 0xC0A80102u);
    EXPECT_EQ(parse_ipv4("1.2.3.4")->value(), 0x01020304u);
}

TEST(Ipv4, ParseInvalid)
{
    EXPECT_FALSE(parse_ipv4(""));
    EXPECT_FALSE(parse_ipv4("1.2.3"));
    EXPECT_FALSE(parse_ipv4("1.2.3.4.5"));
    EXPECT_FALSE(parse_ipv4("256.0.0.1"));
    EXPECT_FALSE(parse_ipv4("1.2.3.4 "));
    EXPECT_FALSE(parse_ipv4(" 1.2.3.4"));
    EXPECT_FALSE(parse_ipv4("1..2.3"));
    EXPECT_FALSE(parse_ipv4("a.b.c.d"));
    EXPECT_FALSE(parse_ipv4("1.2.3.-4"));
    EXPECT_FALSE(parse_ipv4("1.2.3.0004"));
}

// One EXPECT per rejected malformed form, grouped by failure class, so a
// regression names the exact form that started parsing. These mirror the
// adversarial shapes fuzz_parser generates; anything accepted here must
// survive a to_string/parse round trip (checked there), so the reject set is
// the hardening contract.
TEST(Ipv4, RejectsMalformedForms)
{
    // Wrong separator or separator count.
    EXPECT_FALSE(parse_ipv4("1,2,3,4"));
    EXPECT_FALSE(parse_ipv4("1.2.3.4."));
    EXPECT_FALSE(parse_ipv4("...."));
    EXPECT_FALSE(parse_ipv4(".1.2.3.4"));
    // Out-of-range or over-wide octets.
    EXPECT_FALSE(parse_ipv4("999.1.1.1"));
    EXPECT_FALSE(parse_ipv4("1.2.3.256"));
    EXPECT_FALSE(parse_ipv4("3000000000.1.1.1"));
    // Signs, radix prefixes and stray characters are not octets.
    EXPECT_FALSE(parse_ipv4("+1.2.3.4"));
    EXPECT_FALSE(parse_ipv4("1.2.3.+4"));
    EXPECT_FALSE(parse_ipv4("0x1.2.3.4"));
    EXPECT_FALSE(parse_ipv4("1.2.3.4x"));
    EXPECT_FALSE(parse_ipv4("1.2 .3.4"));
    EXPECT_FALSE(parse_ipv4("1.2.\t3.4"));
    // CIDR notation is not an address.
    EXPECT_FALSE(parse_ipv4("1.2.3.4/8"));
}

TEST(Ipv4, FormatRoundTrip)
{
    workload::Xorshift128 rng(1);
    for (int i = 0; i < 1000; ++i) {
        const Ipv4Addr a{rng.next()};
        const auto parsed = parse_ipv4(to_string(a));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->value(), a.value());
    }
}

TEST(Ipv4, OctetConstructor)
{
    EXPECT_EQ(Ipv4Addr(10, 1, 2, 3).value(), 0x0A010203u);
    EXPECT_LT(Ipv4Addr(10, 0, 0, 0), Ipv4Addr(11, 0, 0, 0));
}

TEST(Ipv6, ParseBasic)
{
    EXPECT_EQ(parse_ipv6("::")->value(), u128{0});
    EXPECT_EQ(parse_ipv6("::1")->value(), u128{1});
    EXPECT_EQ(parse_ipv6("2001:db8::")->high(), 0x20010db800000000ull);
    const auto full = parse_ipv6("1:2:3:4:5:6:7:8");
    ASSERT_TRUE(full);
    EXPECT_EQ(full->high(), 0x0001000200030004ull);
    EXPECT_EQ(full->low(), 0x0005000600070008ull);
}

TEST(Ipv6, ParseGapPositions)
{
    EXPECT_EQ(parse_ipv6("1::")->high(), 0x0001000000000000ull);
    EXPECT_EQ(parse_ipv6("1::8")->low(), 0x0000000000000008ull);
    EXPECT_EQ(parse_ipv6("::8:9")->low(), 0x0000000000080009ull);
    EXPECT_EQ(parse_ipv6("1:2::7:8")->high(), 0x0001000200000000ull);
}

TEST(Ipv6, ParseEmbeddedIpv4)
{
    const auto a = parse_ipv6("::ffff:192.0.2.1");
    ASSERT_TRUE(a);
    EXPECT_EQ(a->low(), 0x0000FFFFC0000201ull);
}

TEST(Ipv6, ParseInvalid)
{
    EXPECT_FALSE(parse_ipv6(""));
    EXPECT_FALSE(parse_ipv6(":::"));
    EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7"));      // too few groups, no gap
    EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7:8:9"));  // too many groups
    EXPECT_FALSE(parse_ipv6("1::2::3"));            // two gaps
    EXPECT_FALSE(parse_ipv6("12345::"));            // group too wide
    EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7:8::"));  // gap with 8 groups
    EXPECT_FALSE(parse_ipv6("g::"));
    EXPECT_FALSE(parse_ipv6("1:"));
}

TEST(Ipv6, RejectsMalformedForms)
{
    // Colon placement.
    EXPECT_FALSE(parse_ipv6(":1:2:3:4:5:6:7:8"));  // leading single colon
    EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7:8:"));  // trailing single colon
    EXPECT_FALSE(parse_ipv6("1::2:"));
    EXPECT_FALSE(parse_ipv6(":::1"));
    EXPECT_FALSE(parse_ipv6("::1::"));
    // Group contents.
    EXPECT_FALSE(parse_ipv6("::g"));
    EXPECT_FALSE(parse_ipv6("fffff::"));
    EXPECT_FALSE(parse_ipv6("1:-2::"));
    EXPECT_FALSE(parse_ipv6(" ::1"));
    EXPECT_FALSE(parse_ipv6("::1 "));
    // Embedded IPv4 tails: malformed tail, tail overflowing the group count,
    // tail anywhere but the end.
    EXPECT_FALSE(parse_ipv6("::1.2.3.4.5"));
    EXPECT_FALSE(parse_ipv6("::1.2.3.999"));
    EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7:1.2.3.4"));
    EXPECT_FALSE(parse_ipv6("1.2.3.4::"));
    EXPECT_FALSE(parse_ipv6("1.2.3.4"));  // a bare v4 address is not a v6 one
    // CIDR notation is not an address.
    EXPECT_FALSE(parse_ipv6("2001:db8::/32"));
}

TEST(Ipv6, FormatCanonical)
{
    EXPECT_EQ(to_string(Ipv6Addr{0, 0}), "::");
    EXPECT_EQ(to_string(Ipv6Addr{0, 1}), "::1");
    EXPECT_EQ(to_string(*parse_ipv6("2001:db8:0:0:1:0:0:1")), "2001:db8::1:0:0:1");
    EXPECT_EQ(to_string(*parse_ipv6("2001:0:0:1:0:0:0:1")), "2001:0:0:1::1");
}

TEST(Ipv6, FormatRoundTrip)
{
    workload::Xorshift128 rng(2);
    for (int i = 0; i < 1000; ++i) {
        // Sparse values exercise the "::" compressor harder.
        u128 v = 0;
        for (int g = 0; g < 8; ++g)
            if (rng.next() & 1) v |= static_cast<u128>(rng.next() & 0xFFFF) << (16 * g);
        const Ipv6Addr a{v};
        const auto parsed = parse_ipv6(to_string(a));
        ASSERT_TRUE(parsed.has_value()) << to_string(a);
        EXPECT_EQ(parsed->value() == a.value(), true) << to_string(a);
    }
}

TEST(Bits, Extract)
{
    EXPECT_EQ(extract(std::uint32_t{0xC0000000}, 0, 2), 3u);
    EXPECT_EQ(extract(std::uint32_t{0x00000001}, 31, 1), 1u);
    EXPECT_EQ(extract(std::uint32_t{0x12345678}, 0, 32), 0x12345678u);
    EXPECT_EQ(extract(std::uint32_t{0xABCD0000}, 4, 8), 0xBCu);
    const u128 v6 = u128{0x2001'0db8'0000'0000ull} << 64;
    EXPECT_EQ(extract(v6, 0, 16), 0x2001u);
    EXPECT_EQ(extract(v6, 16, 16), 0x0db8u);
}

TEST(Bits, HighMask)
{
    EXPECT_EQ(high_mask<std::uint32_t>(0), 0u);
    EXPECT_EQ(high_mask<std::uint32_t>(1), 0x80000000u);
    EXPECT_EQ(high_mask<std::uint32_t>(24), 0xFFFFFF00u);
    EXPECT_EQ(high_mask<std::uint32_t>(32), 0xFFFFFFFFu);
    EXPECT_EQ(high_mask<u128>(128), ~u128{0});
    EXPECT_EQ(high_mask<u128>(1), u128{1} << 127);
}

TEST(Bits, PopcountVariantsMatchHardware)
{
    workload::Xorshift128 rng(3);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.next64();
        EXPECT_EQ(popcount64_soft(v), popcount64(v));
        EXPECT_EQ(popcount64_table(v), popcount64(v));
    }
    EXPECT_EQ(popcount64_soft(0), 0);
    EXPECT_EQ(popcount64_soft(~0ull), 64);
    EXPECT_EQ(popcount64_table(0), 0);
    EXPECT_EQ(popcount64_table(~0ull), 64);
}

TEST(Bits, LowMaskInclusive)
{
    EXPECT_EQ(low_mask_inclusive(0), 1ull);
    EXPECT_EQ(low_mask_inclusive(5), 63ull);
    EXPECT_EQ(low_mask_inclusive(63), ~0ull);
}

TEST(Bits, CountLeadingZeros)
{
    EXPECT_EQ(count_leading_zeros(std::uint32_t{0}), 32u);
    EXPECT_EQ(count_leading_zeros(std::uint32_t{1}), 31u);
    EXPECT_EQ(count_leading_zeros(std::uint32_t{0x80000000u}), 0u);
    EXPECT_EQ(count_leading_zeros(u128{0}), 128u);
    EXPECT_EQ(count_leading_zeros(u128{1}), 127u);
    EXPECT_EQ(count_leading_zeros(u128{1} << 127), 0u);
    EXPECT_EQ(count_leading_zeros(u128{1} << 64), 63u);
    EXPECT_EQ(count_leading_zeros(u128{1} << 63), 64u);
}

TEST(Bits, CommonPrefixLength)
{
    EXPECT_EQ(common_prefix_length(0xFF000000u, 0xFF000000u, 32), 32u);
    EXPECT_EQ(common_prefix_length(0xFF000000u, 0xFE000000u, 32), 7u);
    EXPECT_EQ(common_prefix_length(0x00000000u, 0x80000000u, 32), 0u);
    EXPECT_EQ(common_prefix_length(0xFF000000u, 0xFF000001u, 8), 8u);  // capped
    const u128 a = u128{0x2001} << 112;
    const u128 b = u128{0x2002} << 112;
    EXPECT_EQ(common_prefix_length(a, b, 128), 14u);
}

TEST(Prefix, ParentChildRoundTripProperty)
{
    workload::Xorshift128 rng(17);
    for (int i = 0; i < 5000; ++i) {
        const unsigned len = 1 + rng.next_below(32);
        const Prefix4 p{Ipv4Addr{rng.next()}, len};
        const unsigned b = netbase::bit_at(p.bits(), len - 1);
        EXPECT_EQ(p.parent().child(b), p);
        EXPECT_TRUE(p.parent().contains(p));
        if (len < 32) {
            EXPECT_EQ(p.child(0).parent(), p);
            EXPECT_EQ(p.child(1).parent(), p);
            // The two children tile the parent exactly.
            EXPECT_EQ(p.child(0).first_address(), p.first_address());
            EXPECT_EQ(p.child(1).last_address(), p.last_address());
            EXPECT_EQ(p.child(0).last_address().value() + 1,
                      p.child(1).first_address().value());
        }
    }
}

TEST(Prefix, CanonicalizationAndContains)
{
    const Prefix4 p{Ipv4Addr{0x0A0B0C0D}, 8};
    EXPECT_EQ(p.bits(), 0x0A000000u);
    EXPECT_TRUE(p.contains(Ipv4Addr{0x0AFFFFFF}));
    EXPECT_FALSE(p.contains(Ipv4Addr{0x0B000000}));
    EXPECT_EQ(p.first_address().value(), 0x0A000000u);
    EXPECT_EQ(p.last_address().value(), 0x0AFFFFFFu);
}

TEST(Prefix, NestingAndChildren)
{
    const Prefix4 p{Ipv4Addr{0xC0A80000}, 16};
    EXPECT_EQ(p.child(0).length(), 17u);
    EXPECT_EQ(p.child(1).bits(), 0xC0A88000u);
    EXPECT_EQ(p.child(1).parent(), p);
    EXPECT_TRUE(p.contains(p.child(0)));
    EXPECT_TRUE(p.contains(p.child(1)));
    EXPECT_FALSE(p.child(0).contains(p));
}

TEST(Prefix, ZeroLengthCoversEverything)
{
    const Prefix4 def{Ipv4Addr{0xDEADBEEF}, 0};
    EXPECT_EQ(def.bits(), 0u);
    EXPECT_TRUE(def.contains(Ipv4Addr{0}));
    EXPECT_TRUE(def.contains(Ipv4Addr{0xFFFFFFFF}));
    EXPECT_EQ(def.last_address().value(), 0xFFFFFFFFu);
}

TEST(Prefix, FullLength)
{
    const Prefix4 host{Ipv4Addr{0x01020304}, 32};
    EXPECT_EQ(host.first_address(), host.last_address());
    EXPECT_TRUE(host.contains(Ipv4Addr{0x01020304}));
    EXPECT_FALSE(host.contains(Ipv4Addr{0x01020305}));
}

TEST(Prefix, ParseFormat)
{
    const auto p = parse_prefix4("192.168.1.0/24");
    ASSERT_TRUE(p);
    EXPECT_EQ(to_string(*p), "192.168.1.0/24");
    EXPECT_EQ(to_string(*parse_prefix4("192.168.1.77/24")), "192.168.1.0/24");
    EXPECT_FALSE(parse_prefix4("192.168.1.0/33"));
    EXPECT_FALSE(parse_prefix4("192.168.1.0"));
    EXPECT_FALSE(parse_prefix4("foo/24"));

    const auto p6 = parse_prefix6("2001:db8::/32");
    ASSERT_TRUE(p6);
    EXPECT_EQ(to_string(*p6), "2001:db8::/32");
    EXPECT_FALSE(parse_prefix6("2001:db8::/129"));
}

TEST(Prefix, RejectsMalformedForms)
{
    // Length field problems.
    EXPECT_FALSE(parse_prefix4("1.2.3.4/"));
    EXPECT_FALSE(parse_prefix4("1.2.3.4/-1"));
    EXPECT_FALSE(parse_prefix4("1.2.3.4/+8"));
    EXPECT_FALSE(parse_prefix4("1.2.3.4/999"));
    EXPECT_FALSE(parse_prefix4("1.2.3.4/8 "));
    EXPECT_FALSE(parse_prefix4("1.2.3.4/ 8"));
    EXPECT_FALSE(parse_prefix4("1.2.3.4/8x"));
    EXPECT_FALSE(parse_prefix4("1.2.3.4//8"));
    // Missing or malformed address part.
    EXPECT_FALSE(parse_prefix4("/24"));
    EXPECT_FALSE(parse_prefix4("256.0.0.0/8"));
    // Family confusion.
    EXPECT_FALSE(parse_prefix4("2001:db8::/32"));
    EXPECT_FALSE(parse_prefix6("10.0.0.0/8"));
    EXPECT_FALSE(parse_prefix6("2001:db8::/"));
    EXPECT_FALSE(parse_prefix6("2001:db8::/12a"));
    // Boundary lengths that ARE legal must stay accepted.
    EXPECT_TRUE(parse_prefix4("0.0.0.0/0"));
    EXPECT_TRUE(parse_prefix4("255.255.255.255/32"));
    EXPECT_TRUE(parse_prefix6("::/0"));
    EXPECT_TRUE(parse_prefix6("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff/128"));
}

TEST(Prefix, Ordering)
{
    const Prefix4 a{Ipv4Addr{0x0A000000}, 8};
    const Prefix4 b{Ipv4Addr{0x0A000000}, 16};
    const Prefix4 c{Ipv4Addr{0x0B000000}, 8};
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_EQ(a, (Prefix4{Ipv4Addr{0x0AFFFFFF}, 8}));
}

TEST(Xorshift, KnownSequenceIsDeterministic)
{
    workload::Xorshift128 a;
    workload::Xorshift128 b;
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
    // Marsaglia's default-seeded first output.
    workload::Xorshift128 c;
    EXPECT_EQ(c.next(), 3701687786u);
}

TEST(Xorshift, SeedsDiverge)
{
    workload::Xorshift128 a(1);
    workload::Xorshift128 b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Xorshift, NextBelowInRange)
{
    workload::Xorshift128 rng(9);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}
