// Tests for quiescent-point FIB compaction (Poptrie::compact): after a
// compaction pass the table must resolve exactly like the RIB, the auditor
// must see the canonical DFS bump layout (AuditOptions::expect_compacted),
// incremental updates must keep working on the compacted pools, and the
// buddy allocators must come out at least as dense as the churned ones.
// The concurrent case — readers paused at a quiescent point around the
// call — runs under TSan in CI (ctest -L compact).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "analysis/audit.hpp"
#include "helpers.hpp"
#include "poptrie/poptrie.hpp"
#include "router/router.hpp"
#include "sync/annotations.hpp"
#include "workload/tablegen.hpp"
#include "workload/updatefeed.hpp"

using namespace testhelpers;
using analysis::AuditOptions;
using poptrie::Config;
using poptrie::Poptrie4;
using poptrie::Poptrie6;
using rib::kNoRoute;

namespace {

Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }

void expect_equivalent(const rib::RadixTrie<Ipv4Addr>& rib, const Poptrie4& pt,
                       std::size_t n_random, std::uint64_t seed)
{
    workload::Xorshift128 rng(seed);
    for (std::size_t i = 0; i < n_random; ++i) {
        const Ipv4Addr a{rng.next()};
        ASSERT_EQ(pt.lookup(a), rib.lookup(a)) << netbase::to_string(a);
    }
}

void expect_compacted_audit(const Poptrie4& pt, const rib::RadixTrie<Ipv4Addr>& rib)
{
    AuditOptions opt;
    opt.expect_compacted = true;
    const auto report = analysis::audit(pt, rib, opt);
    EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace

TEST(PoptrieCompact, FreshBuildSurvivesCompaction)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    for (const unsigned db : {0u, 12u, 16u, 18u}) {
        auto rib = load(corner_case_table());
        Config cfg;
        cfg.direct_bits = db;
        Poptrie4 pt{rib, cfg};
        pt.compact();
        expect_compacted_audit(pt, rib);
        EXPECT_EQ(boundary_and_random_mismatches(
                      rib, corner_case_table(),
                      [&](Ipv4Addr a) { return pt.lookup(a); }, 20'000, db + 1),
                  0u)
            << "direct_bits=" << db;
    }
}

TEST(PoptrieCompact, EmptyTable)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    rib::RadixTrie<Ipv4Addr> rib;
    Config cfg;
    cfg.direct_bits = 16;
    Poptrie4 pt{rib, cfg};
    pt.compact();
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("1.2.3.4")), kNoRoute);
    expect_compacted_audit(pt, rib);
    // Still updatable afterwards.
    pt.apply(rib, pfx("10.0.0.0/8"), 7);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("10.1.2.3")), 7);
    POPTRIE_AUDIT_ASSERT(pt, rib);
}

TEST(PoptrieCompact, ChurnedTableCompactsToEquivalentDenseLayout)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    workload::TableGenConfig gen;
    gen.seed = 17;
    gen.target_routes = 20'000;
    gen.next_hops = 31;
    const auto routes = workload::generate_table(gen);
    auto rib = load(routes);

    Config cfg;
    cfg.direct_bits = 16;
    Poptrie4 pt{rib, cfg};

    workload::UpdateFeedConfig ucfg;
    ucfg.updates = 10'000;
    ucfg.next_hops = 31;
    for (const auto& ev : workload::make_update_feed(routes, ucfg))
        pt.apply(rib, ev.prefix, ev.next_hop);
    pt.drain();

    const auto before = pt.stats();
    pt.compact();
    const auto after = pt.stats();

    expect_compacted_audit(pt, rib);
    expect_equivalent(rib, pt, 200'000, 3);

    // Compaction reorders, it does not shrink: the structure (and therefore
    // the buddy `used` accounting) is unchanged. The layout's density bound:
    // each run pays < its own block size in alignment padding, so the bump
    // extent is under twice the live slots — no matter how scattered the
    // churned pools were.
    EXPECT_EQ(after.internal_nodes, before.internal_nodes);
    EXPECT_EQ(after.leaves, before.leaves);
    EXPECT_EQ(after.node_pool_used, before.node_pool_used);
    EXPECT_EQ(after.leaf_pool_used, before.leaf_pool_used);
    EXPECT_LE(after.node_high_water, 2 * after.node_pool_used);
    EXPECT_LE(after.leaf_high_water, 2 * after.leaf_pool_used);
}

TEST(PoptrieCompact, CompactionIsIdempotent)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    workload::TableGenConfig gen;
    gen.seed = 23;
    gen.target_routes = 5'000;
    const auto routes = workload::generate_table(gen);
    auto rib = load(routes);
    Config cfg;
    cfg.direct_bits = 16;
    Poptrie4 pt{rib, cfg};

    pt.compact();
    const auto first = pt.stats();
    pt.compact();
    const auto second = pt.stats();
    expect_compacted_audit(pt, rib);
    expect_equivalent(rib, pt, 50'000, 5);
    EXPECT_EQ(first.node_high_water, second.node_high_water);
    EXPECT_EQ(first.leaf_high_water, second.leaf_high_water);
}

TEST(PoptrieCompact, UpdatesKeepWorkingAfterCompaction)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    workload::TableGenConfig gen;
    gen.seed = 31;
    gen.target_routes = 10'000;
    gen.next_hops = 19;
    const auto routes = workload::generate_table(gen);
    auto rib = load(routes);
    Config cfg;
    cfg.direct_bits = 16;
    Poptrie4 pt{rib, cfg};

    workload::UpdateFeedConfig ucfg;
    ucfg.updates = 4'000;
    ucfg.next_hops = 19;
    const auto feed = workload::make_update_feed(routes, ucfg);
    const std::size_t half = feed.size() / 2;

    for (std::size_t i = 0; i < half; ++i) pt.apply(rib, feed[i].prefix, feed[i].next_hop);
    pt.compact();
    expect_compacted_audit(pt, rib);
    // Second half of the churn lands on the compacted pools.
    for (std::size_t i = half; i < feed.size(); ++i)
        pt.apply(rib, feed[i].prefix, feed[i].next_hop);
    pt.drain();
    POPTRIE_AUDIT_ASSERT(pt, rib);
    expect_equivalent(rib, pt, 200'000, 7);
}

TEST(PoptrieCompact, WithdrawAllThenCompactReleasesStructure)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    auto routes = corner_case_table();
    auto rib = load(routes);
    Config cfg;
    cfg.direct_bits = 16;
    Poptrie4 pt{rib, cfg};
    for (const auto& r : routes) pt.apply(rib, r.prefix, kNoRoute);
    pt.compact();
    expect_compacted_audit(pt, rib);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("10.32.5.193")), kNoRoute);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("0.0.0.0")), kNoRoute);
}

TEST(PoptrieCompact, Ipv6ChurnCompactEquivalence)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    workload::TableGen6Config gen;
    gen.seed = 9;
    const auto routes = workload::generate_table6(gen);
    rib::RadixTrie<netbase::Ipv6Addr> rib;
    rib.insert_all(routes);
    Config cfg;
    cfg.direct_bits = 16;
    Poptrie6 pt{rib, cfg};

    // Address-family-generic churn: withdraw a third, then compact.
    workload::Xorshift128 rng(41);
    for (std::size_t i = 0; i < routes.size(); ++i)
        if (rng.next() % 3 == 0) pt.apply(rib, routes[i].prefix, kNoRoute);
    pt.drain();
    pt.compact();

    AuditOptions opt;
    opt.expect_compacted = true;
    const auto report = analysis::audit(pt, rib, opt);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(PoptrieCompact, RouterCompactFib)
{
    // quiescent: single-threaded test — no reader thread ever exists.
    const psync::QuiescentSection quiescent;
    router::Router4 rt;
    const router::Adjacency<Ipv4Addr> gw1{*netbase::parse_ipv4("192.0.2.1"), "eth0"};
    const router::Adjacency<Ipv4Addr> gw2{*netbase::parse_ipv4("192.0.2.2"), "eth1"};
    rt.add_route(pfx("10.0.0.0/8"), gw1);
    rt.add_route(pfx("10.1.0.0/16"), gw2);
    rt.add_route(pfx("172.16.0.0/12"), gw2);
    ASSERT_TRUE(rt.remove_route(pfx("172.16.0.0/12")));
    rt.compact_fib();
    const auto* a = rt.resolve(*netbase::parse_ipv4("10.1.2.3"));
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(*a, gw2);
    const auto* b = rt.resolve(*netbase::parse_ipv4("10.2.0.1"));
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(*b, gw1);
    EXPECT_EQ(rt.resolve(*netbase::parse_ipv4("172.17.0.1")), nullptr);
    EXPECT_EQ(rt.resolve(*netbase::parse_ipv4("8.8.8.8")), nullptr);
}

// The deployment shape lpmd --compact-every uses: reader threads run between
// compactions, are paused (joined) at the quiescent point, and fresh readers
// resume on the compacted pools while churn continues. TSan verifies no
// lookup ever races the storage swap; the audit verifies each pass's layout.
TEST(PoptrieCompactConcurrent, QuiescentCompactionBetweenReaderPhases)
{
    workload::TableGenConfig gen;
    gen.seed = 77;
    gen.target_routes = 15'000;
    gen.next_hops = 23;
    const auto routes = workload::generate_table(gen);
    auto rib = load(routes);

    Config cfg;
    cfg.direct_bits = 16;
    cfg.pool_headroom_log2 = 3;  // pool growth is not reader-safe
    Poptrie4 pt{rib, cfg};
    {
        // quiescent: no reader thread has been spawned yet.
        const psync::QuiescentSection quiescent;
        pt.reserve_headroom();
    }

    workload::UpdateFeedConfig ucfg;
    ucfg.updates = 3'000;
    ucfg.next_hops = 23;
    const auto feed = workload::make_update_feed(routes, ucfg);
    const std::size_t per_phase = feed.size() / 3;

    std::atomic<std::size_t> invalid{0};
    for (std::size_t phase = 0; phase < 3; ++phase) {
        std::atomic<bool> stop{false};
        std::vector<std::jthread> readers;
        for (int r = 0; r < 3; ++r) {
            readers.emplace_back([&, r, phase] {
                auto slot = pt.register_reader();
                workload::Xorshift128 rng(100 * phase + r + 1);
                while (!stop.load(std::memory_order_relaxed)) {
                    const psync::EbrDomain::Guard g{slot};
                    for (int i = 0; i < 256; ++i)
                        if (pt.lookup(Ipv4Addr{rng.next()}) > 23)
                            invalid.fetch_add(1, std::memory_order_relaxed);
                }
            });
        }
        const std::size_t lo = phase * per_phase;
        const std::size_t hi = (phase == 2) ? feed.size() : lo + per_phase;
        for (std::size_t i = lo; i < hi; ++i) pt.apply(rib, feed[i].prefix, feed[i].next_hop);
        stop = true;
        readers.clear();  // join: quiescent point — no reader holds a guard
        {
            // quiescent: this phase's readers joined on the line above and
            // the next phase's have not started.
            const psync::QuiescentSection quiescent;
            pt.compact();
        }
        AuditOptions opt;
        opt.random_probes = 512;
        opt.max_boundary_routes = 0;
        opt.expect_compacted = true;
        const auto report = analysis::audit(pt, rib, opt);
        ASSERT_TRUE(report.ok()) << "phase " << phase << "\n" << report.summary();
    }
    EXPECT_EQ(invalid.load(), 0u);
    expect_equivalent(rib, pt, 100'000, 9);
}
