// Unit and property tests for the buddy allocator substrate.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "alloc/buddy_allocator.hpp"
#include "analysis/audit.hpp"
#include "workload/xorshift.hpp"

using alloc::BuddyAllocator;

TEST(Buddy, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(BuddyAllocator{0}.capacity(), 1u);
    EXPECT_EQ(BuddyAllocator{1}.capacity(), 1u);
    EXPECT_EQ(BuddyAllocator{3}.capacity(), 4u);
    EXPECT_EQ(BuddyAllocator{1000}.capacity(), 1024u);
    EXPECT_EQ(BuddyAllocator{1024}.capacity(), 1024u);
}

TEST(Buddy, AllocateSplitsAndAligns)
{
    BuddyAllocator a{64};
    const auto x = a.allocate(16);
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ(*x % 16, 0u);
    const auto y = a.allocate(3);  // rounds to 4
    ASSERT_TRUE(y.has_value());
    EXPECT_EQ(*y % 4, 0u);
    EXPECT_EQ(a.used(), 20u);
}

TEST(Buddy, ExhaustionReturnsNullopt)
{
    BuddyAllocator a{8};
    EXPECT_TRUE(a.allocate(8).has_value());
    EXPECT_FALSE(a.allocate(1).has_value());
    EXPECT_FALSE(a.allocate(9).has_value());  // larger than capacity
}

TEST(Buddy, FreeCoalescesBuddies)
{
    BuddyAllocator a{8};
    const auto x = a.allocate(4);
    const auto y = a.allocate(4);
    ASSERT_TRUE(x && y);
    EXPECT_FALSE(a.allocate(8).has_value());
    a.free(*x, 4);
    a.free(*y, 4);
    EXPECT_TRUE(a.all_free());
    EXPECT_TRUE(a.allocate(8).has_value());  // merged back into one block
}

TEST(Buddy, LargestFreeRunTracksFragmentation)
{
    BuddyAllocator a{16};
    EXPECT_EQ(a.largest_free_run(), 16u);
    const auto x = a.allocate(1);
    ASSERT_TRUE(x);
    EXPECT_EQ(a.largest_free_run(), 8u);
    a.free(*x, 1);
    EXPECT_EQ(a.largest_free_run(), 16u);
}

TEST(Buddy, GrowDoublesAndKeepsAllocations)
{
    BuddyAllocator a{4};
    const auto x = a.allocate(4);
    ASSERT_TRUE(x);
    EXPECT_FALSE(a.allocate(1));
    a.grow();
    EXPECT_EQ(a.capacity(), 8u);
    const auto y = a.allocate(4);
    ASSERT_TRUE(y);
    EXPECT_NE(*x, *y);
}

TEST(Buddy, GrowCoalescesWithFreeLowerHalf)
{
    BuddyAllocator a{4};
    a.grow();  // entirely free: should become one block of 8
    EXPECT_EQ(a.largest_free_run(), 8u);
    EXPECT_TRUE(a.allocate(8).has_value());
}

// Property test: random allocate/free interleavings never hand out
// overlapping runs, and freeing everything coalesces back to one block.
TEST(Buddy, PropertyNoOverlapAndFullCoalesce)
{
    workload::Xorshift128 rng(77);
    for (int round = 0; round < 20; ++round) {
        BuddyAllocator a{256};
        // offset -> size of live allocations
        std::map<std::uint32_t, std::uint32_t> live;
        for (int step = 0; step < 2000; ++step) {
            if (live.empty() || (rng.next() & 1)) {
                const std::uint32_t want = 1 + rng.next_below(32);
                const auto got = a.allocate(want);
                if (!got) continue;
                // No overlap with any live allocation.
                const auto rounded = std::bit_ceil(want);
                auto it = live.upper_bound(*got);
                if (it != live.end()) {
                    EXPECT_GE(it->first, *got + rounded);
                }
                if (it != live.begin()) {
                    --it;
                    EXPECT_LE(it->first + std::bit_ceil(it->second), *got);
                }
                live[*got] = want;
            } else {
                auto it = live.begin();
                std::advance(it, rng.next_below(static_cast<std::uint32_t>(live.size())));
                a.free(it->first, it->second);
                live.erase(it);
            }
        }
        for (const auto& [off, size] : live) a.free(off, size);
        EXPECT_TRUE(a.all_free());
        EXPECT_EQ(a.largest_free_run(), 256u);
    }
}

// --- Edge cases driven through the structural auditor ---------------------

TEST(BuddyEdge, DoubleFreeAssertsInDebugAndAuditsDirtyInRelease)
{
    BuddyAllocator a{16};
    const auto x = a.allocate(4);
    const auto y = a.allocate(4);
    const auto z = a.allocate(4);
    ASSERT_TRUE(x && y && z);
    a.free(*x, 4);  // legitimate: buddy (*y) is live, so no coalescing
    EXPECT_DEBUG_DEATH(a.free(*x, 4), "double free");
#ifdef NDEBUG
    // Release build: the double free executed in-process — used_ underflowed
    // while the std::set deduplicated the block, so free+used no longer
    // covers the pool. The auditor must flag it.
    const auto report = analysis::audit_allocator(a);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.summary().find("free-used-capacity-mismatch"), std::string::npos)
        << report.summary();
#else
    // Debug build: the double free died in the forked death-test child; the
    // parent allocator is untouched and must still audit clean.
    EXPECT_TRUE(analysis::audit_allocator(a).ok());
#endif
}

TEST(BuddyEdge, MisalignedFreeAssertsInDebug)
{
    BuddyAllocator a{16};
    const auto x = a.allocate(4);
    ASSERT_TRUE(x);
    EXPECT_DEBUG_DEATH(a.free(*x + 1, 4), "misaligned");
#ifndef NDEBUG
    EXPECT_TRUE(analysis::audit_allocator(a).ok());
#endif
}

TEST(BuddyEdge, ExhaustionGrowthPathStaysAuditClean)
{
    BuddyAllocator a{8};
    std::vector<BuddyAllocator::index_type> held;
    // Exhaust the pool with single-slot allocations.
    while (const auto got = a.allocate(1)) held.push_back(*got);
    EXPECT_EQ(held.size(), 8u);
    EXPECT_EQ(a.largest_free_run(), 0u);
    EXPECT_TRUE(analysis::audit_allocator(a).ok());

    // Grow and verify the new upper half is immediately allocatable as one
    // max-order block of the old capacity.
    a.grow();
    EXPECT_EQ(a.capacity(), 16u);
    EXPECT_EQ(a.largest_free_run(), 8u);
    EXPECT_TRUE(analysis::audit_allocator(a).ok());
    const auto big = a.allocate(8);
    ASSERT_TRUE(big);
    EXPECT_EQ(*big % 8, 0u);
    EXPECT_TRUE(analysis::audit_allocator(a).ok());

    // Free everything; repeated growth must keep coalescing to one block.
    a.free(*big, 8);
    for (const auto off : held) a.free(off, 1);
    EXPECT_TRUE(a.all_free());
    a.grow();
    EXPECT_EQ(a.largest_free_run(), 32u);
    EXPECT_TRUE(analysis::audit_allocator(a).ok());
}

TEST(BuddyEdge, MaxOrderAllocationUsesWholePool)
{
    BuddyAllocator a{64};
    const auto x = a.allocate(64);
    ASSERT_TRUE(x);
    EXPECT_EQ(*x, 0u);
    EXPECT_EQ(a.used(), 64u);
    EXPECT_EQ(a.largest_free_run(), 0u);
    EXPECT_TRUE(analysis::audit_allocator(a).ok());
    // A request one past capacity (even after rounding) must fail cleanly.
    EXPECT_FALSE(a.allocate(65).has_value());
    a.free(*x, 64);
    EXPECT_TRUE(a.all_free());
    EXPECT_TRUE(analysis::audit_allocator(a).ok());
}

// Every returned index is aligned to the rounded (power-of-two) block size,
// for every request size the poptrie node/leaf pools actually use (1..64
// covers one full stride's fan-out).
TEST(BuddyEdge, AlignmentPropertyForAllRequestSizes)
{
    for (BuddyAllocator::index_type count = 1; count <= 64; ++count) {
        BuddyAllocator a{256};
        const auto block = BuddyAllocator::block_size_for(count);
        EXPECT_EQ(block, std::bit_ceil(count));
        std::vector<BuddyAllocator::index_type> held;
        while (const auto got = a.allocate(count)) {
            EXPECT_EQ(*got % block, 0u) << "count=" << count;
            held.push_back(*got);
        }
        EXPECT_EQ(held.size(), 256u / block);
        EXPECT_TRUE(analysis::audit_allocator(a).ok()) << "count=" << count;
        for (const auto off : held) a.free(off, count);
        EXPECT_TRUE(a.all_free());
        EXPECT_EQ(a.largest_free_run(), 256u);
        EXPECT_TRUE(analysis::audit_allocator(a).ok()) << "count=" << count;
    }
}
