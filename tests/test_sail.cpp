// Tests for the SAIL_L baseline: level pivoting, BCN encoding limits, and
// the §4.8 structural failure mode.
#include <gtest/gtest.h>

#include "baselines/sail.hpp"
#include "helpers.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;
using baselines::Sail;
using rib::kNoRoute;

namespace {
Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }
}  // namespace

TEST(Sail, EmptyTableMisses)
{
    const rib::RadixTrie<Ipv4Addr> rib;
    const Sail s{rib};
    EXPECT_EQ(s.lookup(Ipv4Addr{0x01020304}), kNoRoute);
    EXPECT_EQ(s.mixed16_blocks(), 0u);
    EXPECT_EQ(s.level32_chunks(), 0u);
    // The full level-16/24 arrays are always allocated (the paper's 44 MiB
    // footprint is dominated by the 32 MiB level-24 array).
    EXPECT_GE(s.memory_bytes(), (std::size_t{1} << 25));
}

TEST(Sail, ShortPrefixResolvesAtLevel16)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 3);
    const Sail s{rib};
    EXPECT_EQ(s.mixed16_blocks(), 0u);  // uniform /16 blocks only
    EXPECT_EQ(s.lookup(*netbase::parse_ipv4("10.200.1.1")), 3);
    EXPECT_EQ(s.lookup(*netbase::parse_ipv4("11.0.0.0")), kNoRoute);
}

TEST(Sail, MidPrefixDescendsToLevel24)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 1);
    rib.insert(pfx("10.1.128.0/17"), 2);
    const Sail s{rib};
    EXPECT_EQ(s.mixed16_blocks(), 1u);
    EXPECT_EQ(s.level32_chunks(), 0u);
    EXPECT_EQ(s.lookup(*netbase::parse_ipv4("10.1.127.1")), 1);
    EXPECT_EQ(s.lookup(*netbase::parse_ipv4("10.1.200.1")), 2);
}

TEST(Sail, LongPrefixCreatesLevel32Chunk)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 1);
    rib.insert(pfx("10.1.2.128/25"), 2);
    rib.insert(pfx("10.1.2.200/32"), 3);
    const Sail s{rib};
    EXPECT_EQ(s.mixed16_blocks(), 1u);
    EXPECT_EQ(s.level32_chunks(), 1u);
    EXPECT_EQ(s.lookup(*netbase::parse_ipv4("10.1.2.127")), 1);
    EXPECT_EQ(s.lookup(*netbase::parse_ipv4("10.1.2.129")), 2);
    EXPECT_EQ(s.lookup(*netbase::parse_ipv4("10.1.2.200")), 3);
    EXPECT_EQ(s.lookup(*netbase::parse_ipv4("10.1.2.201")), 2);
}

TEST(Sail, ExhaustiveOnDenseSlice)
{
    workload::Xorshift128 rng(4242);
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("0.0.0.0/0"), 1);
    for (int i = 0; i < 500; ++i) {
        const unsigned len = 16 + rng.next_below(17);
        const std::uint32_t addr = 0x0A140000u | (rng.next() & 0xFFFF);
        rib.insert(Prefix4{Ipv4Addr{addr}, len}, static_cast<NextHop>(2 + rng.next_below(6)));
    }
    const Sail s{rib};
    EXPECT_EQ(exhaustive_mismatches(
                  rib, [&](Ipv4Addr a) { return s.lookup(a); }, 0x0A13FF00u, 0x0A150100u),
              0u);
}

TEST(Sail, MatchesRadixOnGeneratedTable)
{
    workload::TableGenConfig gen;
    gen.seed = 23;
    gen.target_routes = 40'000;
    gen.next_hops = 50;
    gen.igp_routes = 2'000;
    const auto routes = workload::generate_table(gen);
    const auto rib = load(routes);
    const Sail s{rib};
    EXPECT_EQ(boundary_and_random_mismatches(
                  rib, routes, [&](Ipv4Addr a) { return s.lookup(a); }, 300'000),
              0u);
}

TEST(Sail, NextHopWiderThan15BitsThrows)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), static_cast<NextHop>(0x8000));
    EXPECT_THROW(Sail{rib}, baselines::StructuralLimit);
}

TEST(Sail, ChunkIdOverflowThrows)
{
    // §4.8: more than 2^15 level-32 chunks overflows the 15-bit chunk id.
    // Put a /25 into 33,000 distinct /24 blocks.
    rib::RadixTrie<Ipv4Addr> rib;
    for (std::uint32_t i = 0; i < 33'000; ++i) {
        rib.insert(Prefix4{Ipv4Addr{0x0A000000u + (i << 8)}, 25},
                   static_cast<NextHop>(1 + (i % 5)));
    }
    EXPECT_THROW(Sail{rib}, baselines::StructuralLimit);
}

TEST(Sail, MemoryFootprintScalesWithLevel32Chunks)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 1);
    const Sail small{rib};
    rib.insert(pfx("10.1.2.128/25"), 2);
    rib.insert(pfx("10.2.3.128/25"), 2);
    const Sail larger{rib};
    EXPECT_EQ(larger.level32_chunks(), 2u);
    EXPECT_EQ(larger.memory_bytes() - small.memory_bytes(), 2u * 256 * 2);
}
