// Tests for epoch-based reclamation: grace-period semantics and a threaded
// stress that would crash or trip sanitizers if reclamation ran early.
//
// Several tests below deliberately play BOTH EBR roles — reader and writer —
// on one thread to probe grace-period edges (a reader pinned across a retire,
// a reader entering after the retire epoch). Clang's thread-safety analysis
// models capabilities per-function and would reject holding the shared and
// exclusive cap::ebr at once, so those test bodies live in POPTRIE_NO_TSA
// helpers: the single-threaded harness is the out-of-band argument for
// safety. Single-role tests carry regular scoped claims instead.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/ebr.hpp"

using psync::EbrDomain;

TEST(Ebr, ReclaimsImmediatelyWithNoReaders)
{
    // writer: single-threaded test; this thread is the only one touching the
    // domain, so it trivially holds the exclusive updater role.
    const psync::EbrWriterSection writer;
    EbrDomain d;
    int freed = 0;
    d.retire([&] { ++freed; });
    d.retire([&] { ++freed; });
    EXPECT_EQ(d.pending(), 2u);
    EXPECT_EQ(d.try_reclaim(), 2u);
    EXPECT_EQ(freed, 2);
    EXPECT_EQ(d.pending(), 0u);
}

// Single-threaded reader+writer role mix; see the header comment for why
// this is NO_TSA.
static void active_reader_blocks_reclamation() POPTRIE_NO_TSA
{
    EbrDomain d;
    auto reader = d.register_reader();
    int freed = 0;
    reader.enter();
    d.retire([&] { ++freed; });
    EXPECT_EQ(d.try_reclaim(), 0u);  // reader entered before/at retire epoch
    EXPECT_EQ(freed, 0);
    reader.exit();
    EXPECT_GE(d.try_reclaim(), 1u);
    EXPECT_EQ(freed, 1);
}

TEST(Ebr, ActiveReaderBlocksReclamation) { active_reader_blocks_reclamation(); }

// Single-threaded reader+writer role mix; see the header comment for why
// this is NO_TSA.
static void reader_entering_after_retire_does_not_block_forever() POPTRIE_NO_TSA
{
    EbrDomain d;
    auto reader = d.register_reader();
    int freed = 0;
    d.retire([&] { ++freed; });
    // Advance the epoch first so the new reader's epoch is newer than the
    // retire epoch.
    (void)d.try_reclaim();
    reader.enter();
    (void)d.try_reclaim();
    reader.exit();
    d.drain();
    EXPECT_EQ(freed, 1);
}

TEST(Ebr, ReaderEnteringAfterRetireDoesNotBlockForever)
{
    reader_entering_after_retire_does_not_block_forever();
}

TEST(Ebr, DrainRunsEverything)
{
    // writer: single-threaded test; no reader exists, this thread owns the
    // updater role outright.
    const psync::EbrWriterSection writer;
    EbrDomain d;
    int freed = 0;
    for (int i = 0; i < 100; ++i) d.retire([&] { ++freed; });
    d.drain();
    EXPECT_EQ(freed, 100);
}

// Single-threaded reader+writer role mix; see the header comment for why
// this is NO_TSA.
static void guard_is_raii() POPTRIE_NO_TSA
{
    EbrDomain d;
    auto reader = d.register_reader();
    int freed = 0;
    {
        const EbrDomain::Guard g{reader};
        d.retire([&] { ++freed; });
        EXPECT_EQ(d.try_reclaim(), 0u);
    }
    d.drain();
    EXPECT_EQ(freed, 1);
}

TEST(Ebr, GuardIsRaii) { guard_is_raii(); }

// Single-threaded reader+writer role mix; see the header comment for why
// this is NO_TSA.
static void destroyed_reader_unblocks_reclamation() POPTRIE_NO_TSA
{
    // Regression: a Reader destroyed while inside a critical section must
    // return its slot as quiescent — before the RAII lifecycle existed, a
    // worker thread exiting mid-guard pinned the minimum epoch forever.
    EbrDomain d;
    int freed = 0;
    {
        auto reader = d.register_reader();
        reader.enter();  // never exits explicitly
        d.retire([&] { ++freed; });
        EXPECT_EQ(d.try_reclaim(), 0u);
    }
    EXPECT_GE(d.try_reclaim(), 1u);  // slot freed by the destructor
    EXPECT_EQ(freed, 1);
}

TEST(Ebr, DestroyedReaderUnblocksReclamation) { destroyed_reader_unblocks_reclamation(); }

TEST(Ebr, SlotRecyclingKeepsRegistrationBounded)
{
    // Repeated register/destroy cycles (worker pools starting and stopping)
    // must reuse parked slots, not grow the slot table.
    EbrDomain d;
    for (int cycle = 0; cycle < 100; ++cycle) {
        auto a = d.register_reader();
        auto b = d.register_reader();
        const EbrDomain::Guard g{a};
        (void)b;
    }
    const auto diag = d.diag();
    EXPECT_EQ(diag.registered_readers, 0u);
    EXPECT_EQ(diag.slot_capacity, 2u);  // peak concurrent readers, not 200
}

// Single-threaded reader+writer role mix; see the header comment for why
// this is NO_TSA.
static void moved_reader_keeps_slot_alive() POPTRIE_NO_TSA
{
    EbrDomain d;
    auto a = d.register_reader();
    EXPECT_EQ(d.diag().registered_readers, 1u);
    auto b = std::move(a);  // ownership transfers, no release
    EXPECT_EQ(d.diag().registered_readers, 1u);
    int freed = 0;
    b.enter();
    d.retire([&] { ++freed; });
    EXPECT_EQ(d.try_reclaim(), 0u);  // the moved-to reader still blocks
    b.exit();
    d.drain();
    EXPECT_EQ(freed, 1);
    a = std::move(b);  // move-assign releases a's (empty) state first
    EXPECT_EQ(d.diag().registered_readers, 1u);
}

TEST(Ebr, MovedReaderKeepsSlotAlive) { moved_reader_keeps_slot_alive(); }

// Threaded stress: a writer repeatedly unlinks a value and retires the old
// storage while readers keep dereferencing through an atomic pointer under
// Guard protection. Use-after-free here means EBR freed too early (crashes
// or reads a poisoned value).
TEST(Ebr, ThreadedUseAfterFreeStress)
{
    // writer: the main thread is the single updater; every reader runs in
    // its own jthread lambda under an EbrDomain::Guard.
    const psync::EbrWriterSection writer;
    EbrDomain d;
    struct Box {
        std::atomic<int> value{42};
    };
    std::atomic<Box*> current{new Box};
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> bad{0};

    std::vector<std::jthread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            auto slot = d.register_reader();
            while (!stop.load(std::memory_order_relaxed)) {
                const EbrDomain::Guard g{slot};
                for (int i = 0; i < 64; ++i) {
                    Box* b = current.load(std::memory_order_acquire);
                    if (b->value.load(std::memory_order_relaxed) != 42)
                        bad.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (int i = 0; i < 20'000; ++i) {
        Box* fresh = new Box;
        Box* old = current.exchange(fresh, std::memory_order_acq_rel);
        d.retire([old] {
            old->value.store(-1, std::memory_order_relaxed);  // poison
            delete old;
        });
        if ((i & 63) == 0) (void)d.try_reclaim();
    }
    stop = true;
    readers.clear();
    d.drain();
    delete current.load();
    EXPECT_EQ(bad.load(), 0u);
}
