// test_sync_gate.cpp — edge cases of the PauseGate quiescent-point handshake
// and the StopFlag rearm contract (sync/counters.hpp).
//
// The gate's correctness hinges on the park *generation counter*: a boolean
// acknowledgement would let an ack from a previous pause satisfy a new
// request, and the orchestrator would mutate state the worker still owns.
// These tests pin that property, the pause→resume→pause reentry shape lpmd
// --compact-every relies on, and the destruction/rearm windows.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "sync/annotations.hpp"
#include "sync/counters.hpp"

namespace {

TEST(PauseGate, StaleAckDoesNotSatisfyNewRequest)
{
    // Single-threaded protocol walk: this thread plays both roles in
    // sequence, which is exactly what makes the stale-ack hazard visible.
    psync::PauseGate gate;

    const auto t1 = gate.request_pause();
    EXPECT_FALSE(gate.parked_since(t1));  // no ack yet
    gate.enter_park();                    // worker acks request #1
    EXPECT_TRUE(gate.parked_since(t1));
    gate.resume();

    // Request #2. The park from request #1 is already in the counter, so a
    // boolean flag would report "parked" here — the generation token must
    // not.
    const auto t2 = gate.request_pause();
    EXPECT_FALSE(gate.parked_since(t2))
        << "a stale ack from the previous pause satisfied a new request";
    gate.enter_park();
    EXPECT_TRUE(gate.parked_since(t2));
    gate.resume();
}

TEST(PauseGate, PauseResumePauseReentryWithWorkerThread)
{
    psync::PauseGate gate;
    psync::StopFlag stop;
    psync::EventCounter bursts;  // worker progress, visible to the test

    std::jthread worker([&] {
        while (!stop.requested()) {
            if (gate.pause_requested()) {
                gate.enter_park();
                while (gate.pause_requested() && !stop.requested())
                    std::this_thread::yield();
            }
            bursts.add(1);
            std::this_thread::yield();
        }
    });

    auto wait_parked = [&](std::uint64_t token) {
        while (!gate.parked_since(token)) std::this_thread::yield();
    };

    // Pause #1: worker parks, orchestrator owns the shared state.
    const auto t1 = gate.request_pause();
    wait_parked(t1);
    const auto parked_at = bursts.read();
    gate.resume();

    // The orchestrator must observe forward progress before re-pausing: a
    // worker still spinning in its park loop would see resume()'s false and
    // the new request's true as one unbroken "paused" and never re-ack.
    // (lpmd gets this spacing for free — compaction points are thousands of
    // updates apart.)
    while (bursts.read() == parked_at) std::this_thread::yield();

    // Pause #2 must get its own, fresh acknowledgement.
    const auto t2 = gate.request_pause();
    wait_parked(t2);
    EXPECT_NE(t1, t2) << "second pause reused the first pause's generation";
    gate.resume();

    stop.request();
}

TEST(PauseGate, DestructionAfterParkedWorkerReleased)
{
    // Shutdown while the worker sits parked: the orchestrator must release
    // the park (resume) alongside the stop request, and the gate must be
    // destroyed only after the join. Declaration order encodes the contract:
    // the jthread is declared after the gate, so it joins before the gate
    // dies; a parked-at-stop-time worker exits cleanly through the release.
    psync::PauseGate gate;
    psync::StopFlag stop;
    psync::EventCounter parks;
    std::jthread worker([&] {
        while (!stop.requested()) {
            if (gate.pause_requested()) {
                gate.enter_park();
                parks.add(1);
                while (gate.pause_requested() && !stop.requested())
                    std::this_thread::yield();
            }
            std::this_thread::yield();
        }
    });

    const auto t = gate.request_pause();
    while (!gate.parked_since(t)) std::this_thread::yield();

    // Worker is parked right now. Stop and release, then join (jthread).
    stop.request();
    gate.resume();
    worker.join();
    EXPECT_EQ(parks.read(), 1u);
    // gate and stop are destroyed after the join — the worker can no longer
    // touch them. Reaching the end of scope without a hang is the assertion.
}

TEST(StopFlag, RearmOnlyBetweenGenerations)
{
    psync::StopFlag stop;
    psync::EventCounter observed;  // stop events seen across generations

    {
        std::jthread gen1([&] {
            while (!stop.requested()) std::this_thread::yield();
            observed.add(1);
        });
        stop.request();
    }  // gen1 joined
    EXPECT_EQ(observed.read(), 1u);
    EXPECT_TRUE(stop.requested());

    {
        // quiescent: the generation-1 poller joined at the brace above and
        // generation 2 is not yet spawned — no thread can miss the rearm.
        const psync::QuiescentSection quiescent;
        stop.reset();
    }
    EXPECT_FALSE(stop.requested());

    {
        std::jthread gen2([&] {
            while (!stop.requested()) std::this_thread::yield();
            observed.add(1);
        });
        stop.request();
    }  // gen2 joined
    EXPECT_EQ(observed.read(), 2u);
}

}  // namespace
