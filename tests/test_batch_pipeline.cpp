// tests/test_batch_pipeline.cpp — the pipelined/SIMD batch lookup paths
// (poptrie/lookup_pipelined.ipp + poptrie/lanes.hpp; DESIGN.md §12).
//
// The contract under test: every lane path — scalar reference, interleaved
// pipelined walk, AVX2 kernel, AVX-512 kernel — returns bit-identical
// results on every table shape and burst size, and the dispatch ladder
// (compiled_in / cpu_supports / POPTRIE_FORCE_LANES) never silently
// substitutes a different path for a forced one.
//
// CI's simd-dispatch step greps this binary's output for one
// `lane-path <name>: exercised|skipped (...)` line per compiled-in path, so
// a runner without AVX-512 shows an explicit skip instead of silence.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dataplane/engines.hpp"
#include "helpers.hpp"
#include "poptrie/lanes.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/route.hpp"
#include "router/router.hpp"
#include "snapshot/snapshot.hpp"
#include "sync/annotations.hpp"
#include "workload/tablegen.hpp"
#include "workload/xorshift.hpp"

namespace {

using netbase::Ipv4Addr;
using poptrie::Poptrie4;
using rib::NextHop;
namespace lanes = poptrie::lanes;

std::vector<lanes::LanePath> usable_paths()
{
    std::vector<lanes::LanePath> v;
    for (const lanes::LanePath p : lanes::kAllPaths)
        if (lanes::compiled_in(p) && lanes::cpu_supports(p)) v.push_back(p);
    return v;
}

/// Keys that exercise every structural corner of corner_case_table():
/// direct-step leaves, deep /32 chains, defaults, boundary addresses.
std::vector<std::uint32_t> probe_keys(const rib::RouteList<Ipv4Addr>& routes,
                                      std::size_t n_random, std::uint64_t seed = 99)
{
    std::vector<std::uint32_t> keys;
    for (const auto& r : routes) {
        const auto lo = r.prefix.first_address().value();
        const auto hi = r.prefix.last_address().value();
        keys.push_back(lo);
        keys.push_back(hi);
        keys.push_back(lo - 1);
        keys.push_back(hi + 1);
    }
    workload::Xorshift128 rng(seed);
    for (std::size_t i = 0; i < n_random; ++i) keys.push_back(rng.next());
    return keys;
}

/// Runs `path` over `keys` against `fib`'s view and compares every result
/// with the scalar lookup() (itself validated against the radix oracle by
/// test_poptrie_lookup).
void expect_path_matches_scalar(const Poptrie4& fib, lanes::LanePath path,
                                const std::vector<std::uint32_t>& keys)
{
    const lanes::View4 view = fib.batch_view();
    std::vector<NextHop> got(keys.size() + 1, 0xBEEF);
    lanes::run(path, view, keys.data(), got.data(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        ASSERT_EQ(got[i], fib.lookup(Ipv4Addr{keys[i]}))
            << "path " << lanes::name(path) << " key #" << i << " = " << keys[i];
    EXPECT_EQ(got[keys.size()], 0xBEEF) << "wrote past n";
}

poptrie::Config cfg_default()
{
    return {};
}
poptrie::Config cfg_no_direct()
{
    poptrie::Config c;
    c.direct_bits = 0;
    return c;
}
poptrie::Config cfg_basic()
{
    poptrie::Config c;
    c.leaf_compression = false;
    c.route_aggregation = false;
    return c;
}

TEST(BatchPipeline, AllPathsMatchScalarOnCornerTable)
{
    const auto routes = testhelpers::corner_case_table();
    const auto rib = testhelpers::load(routes);
    const auto keys = probe_keys(routes, 4096);
    for (const auto& cfg : {cfg_default(), cfg_no_direct(), cfg_basic()}) {
        const Poptrie4 fib(rib, cfg);
        for (const lanes::LanePath p : usable_paths())
            expect_path_matches_scalar(fib, p, keys);
    }
}

TEST(BatchPipeline, AllPathsMatchScalarOnGeneratedTable)
{
    workload::TableGenConfig tcfg;
    tcfg.target_routes = 20'000;
    tcfg.igp_routes = 2'000;
    const auto routes = workload::generate_table(tcfg);
    const auto rib = testhelpers::load(routes);
    const Poptrie4 fib(rib);
    std::vector<std::uint32_t> keys;
    workload::Xorshift128 rng(7);
    for (int i = 0; i < 8192; ++i) keys.push_back(rng.next());
    for (const lanes::LanePath p : usable_paths())
        expect_path_matches_scalar(fib, p, keys);
}

TEST(BatchPipeline, BurstSizesIncludingEmptyAndNonMultiples)
{
    const auto routes = testhelpers::corner_case_table();
    const auto rib = testhelpers::load(routes);
    const Poptrie4 fib(rib);
    const auto all_keys = probe_keys(routes, 64);
    // 0, 1, lane-width-1, lane-width, +1, odd primes, and a long burst:
    // retirement and tail handling off-by-ones live at these sizes.
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                std::size_t{7}, std::size_t{8}, std::size_t{9},
                                std::size_t{13}, std::size_t{31}, std::size_t{32},
                                std::size_t{33}, std::size_t{100}}) {
        ASSERT_LE(n, all_keys.size());
        const std::vector<std::uint32_t> keys(all_keys.begin(),
                                              all_keys.begin() + static_cast<long>(n));
        for (const lanes::LanePath p : usable_paths())
            expect_path_matches_scalar(fib, p, keys);
    }
}

TEST(BatchPipeline, EmptyTableEveryPath)
{
    // An empty FIB has an *empty node pool* under direct pointing — the SIMD
    // kernels must not gather through retired/inactive lanes (masked
    // gathers), or this test faults.
    for (const auto& cfg : {cfg_default(), cfg_no_direct()}) {
        const Poptrie4 fib(cfg);
        std::vector<std::uint32_t> keys;
        workload::Xorshift128 rng(3);
        for (int i = 0; i < 256; ++i) keys.push_back(rng.next());
        for (const lanes::LanePath p : usable_paths()) {
            std::vector<NextHop> got(keys.size(), 7);
            lanes::run(p, fib.batch_view(), keys.data(), got.data(), keys.size());
            for (const NextHop h : got) ASSERT_EQ(h, rib::kNoRoute);
        }
    }
}

TEST(BatchPipeline, AllDefaultRouteTable)
{
    rib::RouteList<Ipv4Addr> routes{{*netbase::parse_prefix4("0.0.0.0/0"), 42}};
    const auto rib = testhelpers::load(routes);
    for (const auto& cfg : {cfg_default(), cfg_no_direct(), cfg_basic()}) {
        const Poptrie4 fib(rib, cfg);
        std::vector<std::uint32_t> keys;
        workload::Xorshift128 rng(5);
        for (int i = 0; i < 333; ++i) keys.push_back(rng.next());
        for (const lanes::LanePath p : usable_paths()) {
            std::vector<NextHop> got(keys.size(), 0);
            lanes::run(p, fib.batch_view(), keys.data(), got.data(), keys.size());
            for (const NextHop h : got) ASSERT_EQ(h, 42);
        }
    }
}

TEST(BatchPipeline, OutOfOrderLaneRetirement)
{
    // One burst whose lanes retire at maximally different depths: lane 0
    // walks to a /32 chain, lane 1 resolves at the direct step, alternating.
    // The interleave/SIMD state machines must keep retired lanes retired
    // while deep lanes continue.
    const auto routes = testhelpers::corner_case_table();
    const auto rib = testhelpers::load(routes);
    const Poptrie4 fib(rib);
    const std::uint32_t deep = netbase::parse_prefix4("10.32.5.193/32")->first_address().value();
    const std::uint32_t shallow = netbase::parse_prefix4("200.0.0.0/30")->first_address().value();
    const std::uint32_t direct_leaf = 0x30303030;  // 48.x: default route via direct slot
    std::vector<std::uint32_t> keys;
    for (int i = 0; i < 32; ++i)
        keys.push_back(i % 2 == 0 ? deep : (i % 4 == 1 ? shallow : direct_leaf));
    for (const lanes::LanePath p : usable_paths())
        expect_path_matches_scalar(fib, p, keys);
}

TEST(BatchPipeline, PoptrieLookupBatchBurstWidths)
{
    // The churn-safe Poptrie::lookup_batch is a Lanes template; the bench
    // sweeps 8/16/32. All widths must agree with the scalar path.
    const auto routes = testhelpers::corner_case_table();
    const auto rib = testhelpers::load(routes);
    const Poptrie4 fib(rib);
    const auto keys = probe_keys(routes, 500);
    std::vector<NextHop> w8(keys.size());
    std::vector<NextHop> w16(keys.size());
    std::vector<NextHop> w32(keys.size());
    // reader: single-threaded test, no concurrent updater exists.
    const psync::EbrReadSection section;
    fib.lookup_batch<true, 8>(keys.data(), w8.data(), keys.size());
    fib.lookup_batch<true, 16>(keys.data(), w16.data(), keys.size());
    fib.lookup_batch<true, 32>(keys.data(), w32.data(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(w8[i], fib.lookup(Ipv4Addr{keys[i]}));
        ASSERT_EQ(w16[i], w8[i]);
        ASSERT_EQ(w32[i], w8[i]);
    }
}

TEST(BatchPipeline, SnapshotFibServesEveryUsablePath)
{
    const auto routes = testhelpers::corner_case_table();
    const auto rib = testhelpers::load(routes);
    const Poptrie4 fib(rib);
    // quiescent: single-threaded test, no readers or writer exist.
    const psync::QuiescentSection q;
    const auto image = snapshot::serialize(fib);
    auto snap = snapshot::SnapshotFib4::load_buffer(image.data(), image.size());
    const auto keys = probe_keys(routes, 1024);
    for (const lanes::LanePath p : usable_paths()) {
        snap.set_lane_path(p);
        ASSERT_EQ(snap.lane_path(), p);
        std::vector<NextHop> got(keys.size());
        snap.lookup_batch(keys.data(), got.data(), keys.size());
        for (std::size_t i = 0; i < keys.size(); ++i)
            ASSERT_EQ(got[i], fib.lookup(Ipv4Addr{keys[i]}))
                << "snapshot path " << lanes::name(p) << " key " << keys[i];
    }
}

TEST(BatchPipeline, PipelinedEngineMatchesPoptrieEngine)
{
    const auto routes = testhelpers::corner_case_table();
    router::Router4 router;
    for (const auto& r : routes)
        router.add_route(r.prefix,
                         {netbase::Ipv4Addr{0x0A000000u + r.next_hop}, "eth0"});
    const auto keys = probe_keys(routes, 512);
    std::vector<NextHop> want(keys.size());
    {
        dataplane::PoptrieEngine base(router);
        auto reader = base.make_reader();
        const dataplane::EbrReader::Guard guard(reader);
        base.lookup_batch(keys.data(), want.data(), keys.size());
    }
    for (const lanes::LanePath p : usable_paths()) {
        dataplane::PipelinedEngine eng(router.fib(), p);
        EXPECT_EQ(eng.lane_path(), p);
        EXPECT_EQ(eng.name(), std::string("pipelined[") + std::string(lanes::name(p)) + "]");
        auto reader = eng.make_reader();
        const dataplane::NullReader::Guard guard(reader);
        std::vector<NextHop> got(keys.size());
        eng.lookup_batch(keys.data(), got.data(), keys.size());
        for (std::size_t i = 0; i < keys.size(); ++i) ASSERT_EQ(got[i], want[i]);
    }
    static_assert(!dataplane::PipelinedEngine::kSupportsChurn,
                  "SIMD gathers are plain loads; churn needs the AtomicView engine");
}

class ForceLanesEnv : public ::testing::Test {
protected:
    void SetUp() override
    {
        const char* old = std::getenv("POPTRIE_FORCE_LANES");
        if (old != nullptr) saved_ = old;
    }
    void TearDown() override
    {
        if (saved_.empty())
            ::unsetenv("POPTRIE_FORCE_LANES");
        else
            ::setenv("POPTRIE_FORCE_LANES", saved_.c_str(), 1);
    }
    std::string saved_;
};

TEST_F(ForceLanesEnv, SelectHonorsEnvironment)
{
    for (const lanes::LanePath p : usable_paths()) {
        ::setenv("POPTRIE_FORCE_LANES", std::string(lanes::name(p)).c_str(), 1);
        const auto sel = lanes::select();
        EXPECT_TRUE(sel.ok) << sel.note;
        EXPECT_TRUE(sel.forced);
        EXPECT_EQ(sel.path, p);
    }
}

TEST_F(ForceLanesEnv, SelectRejectsUnknownValue)
{
    ::setenv("POPTRIE_FORCE_LANES", "sse9", 1);
    const auto sel = lanes::select();
    EXPECT_FALSE(sel.ok);
    EXPECT_NE(sel.note.find("sse9"), std::string::npos);
}

TEST_F(ForceLanesEnv, SelectRefusesUnusableForcedPath)
{
    // Whichever SIMD rung is missing (not compiled in, or CPU-unsupported)
    // must be refused, not silently downgraded. On a machine where every
    // path is usable there is nothing to refuse — assert the automatic
    // choice instead.
    ::unsetenv("POPTRIE_FORCE_LANES");
    bool found_unusable = false;
    for (const lanes::LanePath p : lanes::kAllPaths) {
        if (lanes::compiled_in(p) && lanes::cpu_supports(p)) continue;
        found_unusable = true;
        const auto sel = lanes::select(p);
        EXPECT_FALSE(sel.ok) << lanes::name(p);
        EXPECT_FALSE(sel.note.empty());
        EXPECT_TRUE(lanes::compiled_in(sel.path) && lanes::cpu_supports(sel.path))
            << "fallback suggestion must itself be usable";
    }
    if (!found_unusable) {
        const auto sel = lanes::select();
        EXPECT_TRUE(sel.ok);
        EXPECT_FALSE(sel.forced);
        EXPECT_TRUE(lanes::compiled_in(sel.path) && lanes::cpu_supports(sel.path));
    }
}

TEST_F(ForceLanesEnv, ExplicitRequestBeatsEnvironment)
{
    ::setenv("POPTRIE_FORCE_LANES", "scalar", 1);
    const auto sel = lanes::select(lanes::LanePath::kPipelined);
    EXPECT_TRUE(sel.ok);
    EXPECT_EQ(sel.path, lanes::LanePath::kPipelined);
}

TEST(LaneDispatch, CompiledPathsExercisedOrExplicitlySkipped)
{
    // The run-log contract for CI's simd-dispatch step: one line per
    // compiled-in path, either exercised (equivalence ran above in this
    // binary) or skipped with the reason. Silence = failure at the CI layer.
    const auto routes = testhelpers::corner_case_table();
    const auto rib = testhelpers::load(routes);
    const Poptrie4 fib(rib);
    const auto keys = probe_keys(routes, 256);
    for (const lanes::LanePath p : lanes::kAllPaths) {
        if (!lanes::compiled_in(p)) {
            std::printf("lane-path %s: not compiled in\n",
                        std::string(lanes::name(p)).c_str());
            continue;
        }
        if (!lanes::cpu_supports(p)) {
            std::printf("lane-path %s: skipped (cpu lacks support)\n",
                        std::string(lanes::name(p)).c_str());
            continue;
        }
        expect_path_matches_scalar(fib, p, keys);
        std::printf("lane-path %s: exercised\n", std::string(lanes::name(p)).c_str());
    }
}

}  // namespace
