// Tests for the DXR baseline: range construction, short/long formats,
// structural limits, the "modified" variant, and D16R/D18R equivalence.
#include <gtest/gtest.h>

#include "baselines/dxr.hpp"
#include "baselines/flatten.hpp"
#include "helpers.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;
using baselines::Dxr;
using baselines::DxrOptions;
using rib::kNoRoute;

namespace {
Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }
}  // namespace

TEST(Flatten, EmptyTableIsOneMissRun)
{
    const rib::RadixTrie<Ipv4Addr> rib;
    const auto runs = baselines::flatten(rib);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].start, 0u);
    EXPECT_EQ(runs[0].next_hop, kNoRoute);
}

TEST(Flatten, RunsCoverSpaceInOrderWithNoAdjacentDuplicates)
{
    const auto rib = load(corner_case_table());
    const auto runs = baselines::flatten(rib);
    ASSERT_FALSE(runs.empty());
    EXPECT_EQ(runs.front().start, 0u);
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_LT(runs[i - 1].start, runs[i].start);
        EXPECT_NE(runs[i - 1].next_hop, runs[i].next_hop);
    }
    // Each run's start resolves to its hop, as does the address just before
    // the next run.
    for (std::size_t i = 0; i < runs.size(); ++i) {
        EXPECT_EQ(rib.lookup(Ipv4Addr{runs[i].start}), runs[i].next_hop);
        const std::uint32_t last =
            i + 1 < runs.size() ? runs[i + 1].start - 1 : 0xFFFFFFFFu;
        EXPECT_EQ(rib.lookup(Ipv4Addr{last}), runs[i].next_hop);
    }
}

TEST(Dxr, EmptyTableMisses)
{
    const rib::RadixTrie<Ipv4Addr> rib;
    const Dxr d{rib};
    EXPECT_EQ(d.lookup(Ipv4Addr{0x01020304}), kNoRoute);
    EXPECT_EQ(d.range_count(), 0u);  // all chunks are single-hop leaves
}

TEST(Dxr, SingleHopChunksEncodeDirectly)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 3);  // every /18-chunk inside is uniform
    const Dxr d{rib, {.direct_bits = 18}};
    EXPECT_EQ(d.range_count(), 0u);
    EXPECT_EQ(d.lookup(*netbase::parse_ipv4("10.200.1.1")), 3);
    EXPECT_EQ(d.lookup(*netbase::parse_ipv4("11.0.0.0")), kNoRoute);
}

TEST(Dxr, BinarySearchBoundaries)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 1);
    rib.insert(pfx("10.0.7.0/24"), 2);
    rib.insert(pfx("10.0.9.32/27"), 3);
    for (const unsigned k : {16u, 18u}) {
        const Dxr d{rib, {.direct_bits = k}};
        for (const char* probe : {"10.0.6.255", "10.0.7.0", "10.0.7.255", "10.0.8.0",
                                  "10.0.9.31", "10.0.9.32", "10.0.9.63", "10.0.9.64"}) {
            const auto a = *netbase::parse_ipv4(probe);
            ASSERT_EQ(d.lookup(a), rib.lookup(a)) << probe << " k=" << k;
        }
    }
}

TEST(Dxr, ShortFormatUsedForAlignedSmallHops)
{
    // Boundaries at /24 granularity within a /16 chunk (aligned to 256 =
    // 2^(16-8)) and hops < 256: the short format must kick in and the memory
    // footprint must shrink accordingly.
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/16"), 1);
    rib.insert(pfx("10.0.128.0/24"), 2);
    const Dxr d16{rib, {.direct_bits = 16}};
    const Dxr d16mod{rib, {.direct_bits = 16, .modified = true}};
    EXPECT_EQ(d16.range_count(), d16mod.range_count());
    EXPECT_LT(d16.memory_bytes(), d16mod.memory_bytes());  // short = 2B vs 4B ranges
    for (const char* probe : {"10.0.127.255", "10.0.128.0", "10.0.128.255", "10.0.129.0"}) {
        const auto a = *netbase::parse_ipv4(probe);
        EXPECT_EQ(d16.lookup(a), rib.lookup(a)) << probe;
        EXPECT_EQ(d16mod.lookup(a), rib.lookup(a)) << probe;
    }
}

TEST(Dxr, LongFormatForUnalignedOrWideHops)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/16"), 1);
    rib.insert(pfx("10.0.128.16/28"), 300);  // unaligned + hop > 255
    const Dxr d{rib, {.direct_bits = 16}};
    EXPECT_EQ(d.lookup(*netbase::parse_ipv4("10.0.128.20")), 300);
    EXPECT_EQ(d.lookup(*netbase::parse_ipv4("10.0.128.15")), 1);
    EXPECT_EQ(d.lookup(*netbase::parse_ipv4("10.0.128.32")), 1);
}

TEST(Dxr, ExhaustiveOnDenseSlice)
{
    workload::Xorshift128 rng(4242);
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("0.0.0.0/0"), 1);
    for (int i = 0; i < 500; ++i) {
        const unsigned len = 16 + rng.next_below(17);
        const std::uint32_t addr = 0x0A140000u | (rng.next() & 0xFFFF);
        rib.insert(Prefix4{Ipv4Addr{addr}, len}, static_cast<NextHop>(2 + rng.next_below(6)));
    }
    for (const unsigned k : {16u, 18u}) {
        for (const bool mod : {false, true}) {
            const Dxr d{rib, {.direct_bits = k, .modified = mod}};
            EXPECT_EQ(exhaustive_mismatches(
                          rib, [&](Ipv4Addr a) { return d.lookup(a); }, 0x0A13FF00u,
                          0x0A150100u),
                      0u)
                << "k=" << k << " modified=" << mod;
        }
    }
}

TEST(Dxr, MatchesRadixOnGeneratedTable)
{
    workload::TableGenConfig gen;
    gen.seed = 22;
    gen.target_routes = 40'000;
    gen.next_hops = 120;
    gen.igp_routes = 2'000;
    const auto routes = workload::generate_table(gen);
    const auto rib = load(routes);
    for (const unsigned k : {16u, 18u}) {
        const Dxr d{rib, {.direct_bits = k}};
        EXPECT_EQ(boundary_and_random_mismatches(
                      rib, routes, [&](Ipv4Addr a) { return d.lookup(a); }, 300'000),
                  0u)
            << "k=" << k;
    }
}

TEST(Dxr, StructuralLimitThrowsAndModifiedExtends)
{
    // §4.8: the unmodified encoding tops out at 2^19 ranges. Build a table
    // with ~600k alternating /24 next hops to exceed it. The modified
    // variant (2^20) must succeed on the same table.
    rib::RadixTrie<Ipv4Addr> rib;
    std::uint32_t addr = 0x0A000000;
    for (int i = 0; i < 600'000; ++i) {
        // Hops > 255 keep every chunk in the 4-byte long format, so the
        // range count hits the 19-bit base limit head on.
        rib.insert(Prefix4{Ipv4Addr{addr}, 24}, static_cast<NextHop>(256 + (i & 511)));
        addr += 256;
    }
    EXPECT_THROW((Dxr{rib, {.direct_bits = 18}}), baselines::StructuralLimit);
    const Dxr mod{rib, {.direct_bits = 18, .modified = true}};
    EXPECT_GT(mod.range_count(), std::size_t{1} << 19);
    EXPECT_EQ(mod.lookup(*netbase::parse_ipv4("10.0.1.7")),
              rib.lookup(*netbase::parse_ipv4("10.0.1.7")));
}

TEST(Dxr, PerChunkRangeCountLimit)
{
    // More than 4095 ranges inside one /18 chunk (alternating /32 hosts).
    rib::RadixTrie<Ipv4Addr> rib;
    for (std::uint32_t i = 0; i < 10'000; ++i)
        rib.insert(Prefix4{Ipv4Addr{0x0A000000u + i * 2}, 32},
                   static_cast<NextHop>(1 + (i % 7)));
    EXPECT_THROW((Dxr{rib, {.direct_bits = 18}}), baselines::StructuralLimit);
}
