// Tests for the Tree Bitmap baseline (16-ary and 64-ary).
#include <gtest/gtest.h>

#include "baselines/treebitmap.hpp"
#include "helpers.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;
using baselines::TreeBitmap16;
using baselines::TreeBitmap64;
using rib::kNoRoute;

namespace {
Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }
}  // namespace

TEST(TreeBitmap, EmptyTableMisses)
{
    const rib::RadixTrie<Ipv4Addr> rib;
    const TreeBitmap64 t{rib};
    EXPECT_EQ(t.lookup(Ipv4Addr{0x12345678}), kNoRoute);
    EXPECT_EQ(t.node_count(), 1u);  // just the zeroed root
}

TEST(TreeBitmap, InternalBitmapHoldsShortPrefixes)
{
    // Lengths 0..k-1 live inside the root node.
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("0.0.0.0/0"), 1);
    rib.insert(pfx("128.0.0.0/1"), 2);
    rib.insert(pfx("192.0.0.0/3"), 3);
    const TreeBitmap64 t{rib};
    EXPECT_EQ(t.node_count(), 1u);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("1.1.1.1")), 1);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("129.1.1.1")), 2);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("193.1.1.1")), 3);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("224.1.1.1")), 2);
}

TEST(TreeBitmap, StrideBoundaryPrefixLandsInChildNode)
{
    // A /6 (16-ary: /4) is length 0 within the child: the boundary case the
    // internal/external bitmap split gets wrong most easily.
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("12.0.0.0/6"), 4);
    const TreeBitmap64 t64{rib};
    EXPECT_EQ(t64.node_count(), 2u);
    EXPECT_EQ(t64.lookup(*netbase::parse_ipv4("12.1.2.3")), 4);
    EXPECT_EQ(t64.lookup(*netbase::parse_ipv4("16.0.0.0")), kNoRoute);
    rib::RadixTrie<Ipv4Addr> rib4;
    rib4.insert(pfx("16.0.0.0/4"), 5);
    const TreeBitmap16 t16{rib4};
    EXPECT_EQ(t16.lookup(*netbase::parse_ipv4("17.0.0.0")), 5);
    EXPECT_EQ(t16.lookup(*netbase::parse_ipv4("32.0.0.0")), kNoRoute);
}

TEST(TreeBitmap, BacktracksToBestUpstreamMatch)
{
    // Descend two nodes deep, fail, and fall back to a match recorded in an
    // ancestor node.
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 1);
    rib.insert(pfx("10.32.5.0/24"), 2);
    const TreeBitmap64 t{rib};
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.32.5.9")), 2);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.32.6.9")), 1);   // deep miss
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.200.1.1")), 1);  // shallow miss
}

TEST(TreeBitmap, HostRoutes)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("1.2.3.4/32"), 9);
    rib.insert(pfx("255.255.255.255/32"), 8);
    for (const auto k16 : {false, true}) {
        if (k16) {
            const TreeBitmap16 t{rib};
            EXPECT_EQ(t.lookup(*netbase::parse_ipv4("1.2.3.4")), 9);
            EXPECT_EQ(t.lookup(*netbase::parse_ipv4("1.2.3.5")), kNoRoute);
        } else {
            const TreeBitmap64 t{rib};
            EXPECT_EQ(t.lookup(*netbase::parse_ipv4("1.2.3.4")), 9);
            EXPECT_EQ(t.lookup(*netbase::parse_ipv4("255.255.255.255")), 8);
            EXPECT_EQ(t.lookup(*netbase::parse_ipv4("255.255.255.254")), kNoRoute);
        }
    }
}

TEST(TreeBitmap, ExhaustiveOnDenseSlice)
{
    workload::Xorshift128 rng(4242);
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("0.0.0.0/0"), 1);
    for (int i = 0; i < 500; ++i) {
        const unsigned len = 16 + rng.next_below(17);
        const std::uint32_t addr = 0x0A140000u | (rng.next() & 0xFFFF);
        rib.insert(Prefix4{Ipv4Addr{addr}, len}, static_cast<NextHop>(2 + rng.next_below(6)));
    }
    const TreeBitmap64 t64{rib};
    const TreeBitmap16 t16{rib};
    EXPECT_EQ(exhaustive_mismatches(
                  rib, [&](Ipv4Addr a) { return t64.lookup(a); }, 0x0A13FF00u, 0x0A150100u),
              0u);
    EXPECT_EQ(exhaustive_mismatches(
                  rib, [&](Ipv4Addr a) { return t16.lookup(a); }, 0x0A13FF00u, 0x0A150100u),
              0u);
}

TEST(TreeBitmap, MatchesRadixOnGeneratedTable)
{
    workload::TableGenConfig gen;
    gen.seed = 21;
    gen.target_routes = 40'000;
    gen.next_hops = 33;
    gen.igp_routes = 2'000;
    const auto routes = workload::generate_table(gen);
    const auto rib = load(routes);
    const TreeBitmap64 t64{rib};
    const TreeBitmap16 t16{rib};
    EXPECT_EQ(boundary_and_random_mismatches(
                  rib, routes, [&](Ipv4Addr a) { return t64.lookup(a); }, 300'000),
              0u);
    EXPECT_EQ(boundary_and_random_mismatches(
                  rib, routes, [&](Ipv4Addr a) { return t16.lookup(a); }, 300'000),
              0u);
}

TEST(TreeBitmap, SixtyFourAryUsesFewerNodes)
{
    const auto rib = load(corner_case_table());
    const TreeBitmap64 t64{rib};
    const TreeBitmap16 t16{rib};
    EXPECT_LT(t64.node_count(), t16.node_count());
}
