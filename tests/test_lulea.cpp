// Tests for the Lulea-style compressed table (Degermark et al. 1997).
#include <gtest/gtest.h>

#include "baselines/lulea.hpp"
#include "helpers.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;
using baselines::Lulea;
using rib::kNoRoute;

namespace {
Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }
}  // namespace

TEST(Lulea, EmptyTableMisses)
{
    const rib::RadixTrie<Ipv4Addr> rib;
    const Lulea t{rib};
    EXPECT_EQ(t.lookup(Ipv4Addr{0x01020304}), kNoRoute);
    EXPECT_EQ(t.level24_chunks(), 0u);
    // The whole empty space is one head: Lulea's compression at its best.
    EXPECT_LT(t.memory_bytes(), 32u * 1024);
}

TEST(Lulea, HeadsMergeEqualNeighbours)
{
    // Two adjacent /16s with the same hop share one head; a different hop
    // between them forces three.
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/15"), 3);
    const Lulea merged{rib};
    rib.insert(pfx("10.0.0.0/16"), 4);
    const Lulea split{rib};
    EXPECT_GT(split.memory_bytes(), merged.memory_bytes());
    EXPECT_EQ(split.lookup(*netbase::parse_ipv4("10.0.1.1")), 4);
    EXPECT_EQ(split.lookup(*netbase::parse_ipv4("10.1.1.1")), 3);
    EXPECT_EQ(split.lookup(*netbase::parse_ipv4("10.2.1.1")), kNoRoute);
}

TEST(Lulea, ThreeLevelDescent)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 1);
    rib.insert(pfx("10.1.128.0/17"), 2);   // level-24 chunk
    rib.insert(pfx("10.1.2.128/25"), 3);   // level-32 chunk
    rib.insert(pfx("10.1.2.200/32"), 4);
    const Lulea t{rib};
    EXPECT_EQ(t.level24_chunks(), 1u);
    EXPECT_EQ(t.level32_chunks(), 1u);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.2.0.1")), 1);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.200.1")), 2);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.2.127")), 1);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.2.129")), 3);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.2.200")), 4);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.2.201")), 3);
}

TEST(Lulea, CodewordBoundaries)
{
    // Heads landing exactly on 16-bit codeword and 64-bit base-group
    // boundaries of the level-16 vector (positions 15/16/63/64 of the
    // top-16-bit space) are where the offset/base arithmetic can break.
    rib::RadixTrie<Ipv4Addr> rib;
    for (const std::uint32_t block : {15u, 16u, 63u, 64u, 4095u, 4096u}) {
        rib.insert(Prefix4{Ipv4Addr{block << 16}, 16},
                   static_cast<NextHop>(1 + (block % 7)));
    }
    const Lulea t{rib};
    for (const std::uint32_t block : {15u, 16u, 63u, 64u, 4095u, 4096u}) {
        EXPECT_EQ(t.lookup(Ipv4Addr{(block << 16) | 0x1234}),
                  static_cast<NextHop>(1 + (block % 7)))
            << block;
    }
    // The empty blocks around each routed pair resolve to nothing.
    for (const std::uint32_t gap : {14u, 17u, 62u, 65u, 4094u, 4097u})
        EXPECT_EQ(t.lookup(Ipv4Addr{gap << 16}), kNoRoute) << gap;
}

TEST(Lulea, ExhaustiveOnDenseSlice)
{
    workload::Xorshift128 rng(4242);
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("0.0.0.0/0"), 1);
    for (int i = 0; i < 500; ++i) {
        const unsigned len = 16 + rng.next_below(17);
        const std::uint32_t addr = 0x0A140000u | (rng.next() & 0xFFFF);
        rib.insert(Prefix4{Ipv4Addr{addr}, len}, static_cast<NextHop>(2 + rng.next_below(6)));
    }
    const Lulea t{rib};
    EXPECT_EQ(exhaustive_mismatches(
                  rib, [&](Ipv4Addr a) { return t.lookup(a); }, 0x0A13FF00u, 0x0A150100u),
              0u);
}

TEST(Lulea, MatchesRadixOnGeneratedTable)
{
    workload::TableGenConfig gen;
    gen.seed = 61;
    gen.target_routes = 40'000;
    gen.next_hops = 19;
    gen.igp_routes = 2'000;
    const auto routes = workload::generate_table(gen);
    const auto rib = load(routes);
    const Lulea t{rib};
    EXPECT_EQ(boundary_and_random_mismatches(
                  rib, routes, [&](Ipv4Addr a) { return t.lookup(a); }, 300'000),
              0u);
}

TEST(Lulea, WideNextHopThrows)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), static_cast<NextHop>(0x8000));
    EXPECT_THROW(Lulea{rib}, baselines::StructuralLimit);
}
