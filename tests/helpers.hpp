// tests/helpers.hpp — shared fixtures: small hand-built tables, generated
// tables, and cross-validation loops used by every structure's test.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/linear.hpp"
#include "rib/radix_trie.hpp"
#include "rib/route.hpp"
#include "workload/xorshift.hpp"

namespace testhelpers {

using netbase::Ipv4Addr;
using netbase::Prefix4;
using rib::NextHop;

/// A small hand-crafted table exercising every structural corner: default
/// route, nested prefixes (hole punching), sibling pairs that could merge,
/// a full /32, prefixes straddling the direct-pointing boundary (/15-/19),
/// and 6-bit-stride boundaries (/6, /12, /18, /24, /30).
inline rib::RouteList<Ipv4Addr> corner_case_table()
{
    const auto p = [](const char* text) { return *netbase::parse_prefix4(text); };
    return {
        {p("0.0.0.0/0"), 1},        {p("10.0.0.0/8"), 2},
        {p("10.32.0.0/11"), 3},     {p("10.32.0.0/16"), 4},
        {p("10.32.5.0/24"), 5},     {p("10.32.5.128/25"), 6},
        {p("10.32.5.192/30"), 7},   {p("10.32.5.193/32"), 8},
        {p("10.33.0.0/16"), 4},     // same hop as sibling space: aggregation bait
        {p("12.0.0.0/6"), 9},       // stride boundary /6
        {p("14.1.0.0/12"), 10},     // canonicalizes to 14.0.0.0/12, nested in the /6
        {p("14.16.0.0/12"), 10},    {p("192.168.0.0/18"), 11},
        {p("192.168.64.0/18"), 11}, {p("192.168.128.0/18"), 12},
        {p("192.168.192.0/18"), 12},
        {p("100.64.0.0/15"), 13},   {p("100.66.0.0/17"), 14},
        {p("100.66.128.0/19"), 15}, {p("200.0.0.0/30"), 16},
        {p("200.0.0.4/30"), 16},    {p("223.255.255.252/30"), 17},
        {p("223.255.255.255/32"), 18},
    };
}

/// Exhaustively validates `lookup` against the radix trie over every address
/// in [lo, hi] (inclusive). Returns the number of mismatches (0 expected).
template <class LookupFn>
std::size_t exhaustive_mismatches(const rib::RadixTrie<Ipv4Addr>& oracle, LookupFn&& lookup,
                                  std::uint32_t lo, std::uint32_t hi)
{
    std::size_t bad = 0;
    std::uint32_t a = lo;
    for (;;) {
        if (lookup(Ipv4Addr{a}) != oracle.lookup(Ipv4Addr{a})) ++bad;
        if (a == hi) break;
        ++a;
    }
    return bad;
}

/// Validates `lookup` against the oracle at every route boundary (first/last
/// address, and one address outside on each side) plus `n_random` xorshift
/// addresses. These are where off-by-one bugs live.
template <class LookupFn>
std::size_t boundary_and_random_mismatches(const rib::RadixTrie<Ipv4Addr>& oracle,
                                           const rib::RouteList<Ipv4Addr>& routes,
                                           LookupFn&& lookup, std::size_t n_random,
                                           std::uint64_t seed = 12345)
{
    std::size_t bad = 0;
    const auto check = [&](std::uint32_t a) {
        if (lookup(Ipv4Addr{a}) != oracle.lookup(Ipv4Addr{a})) ++bad;
    };
    for (const auto& r : routes) {
        const auto lo = r.prefix.first_address().value();
        const auto hi = r.prefix.last_address().value();
        check(lo);
        check(hi);
        check(lo - 1);  // wraps at 0: still a valid probe address
        check(hi + 1);
    }
    workload::Xorshift128 rng(seed);
    for (std::size_t i = 0; i < n_random; ++i) check(rng.next());
    return bad;
}

/// Loads a route list into a fresh radix trie.
inline rib::RadixTrie<Ipv4Addr> load(const rib::RouteList<Ipv4Addr>& routes)
{
    rib::RadixTrie<Ipv4Addr> t;
    t.insert_all(routes);
    return t;
}

}  // namespace testhelpers
