// Tests for the binary radix trie (RIB substrate / "Radix" baseline).
#include <gtest/gtest.h>

#include "baselines/linear.hpp"
#include "helpers.hpp"
#include "rib/radix_trie.hpp"
#include "rib/table_stats.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;
using rib::kNoRoute;
using rib::RadixTrie;

namespace {
Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }
}  // namespace

TEST(Radix, EmptyTrieMisses)
{
    RadixTrie<Ipv4Addr> t;
    EXPECT_EQ(t.lookup(Ipv4Addr{0x01020304}), kNoRoute);
    EXPECT_EQ(t.route_count(), 0u);
    EXPECT_EQ(t.node_count(), 0u);
    EXPECT_EQ(t.root(), nullptr);
}

TEST(Radix, LongestPrefixWins)
{
    RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    t.insert(pfx("10.1.0.0/16"), 2);
    t.insert(pfx("10.1.2.0/24"), 3);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.2.3")), 3);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.3.1")), 2);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.2.0.1")), 1);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("11.0.0.1")), kNoRoute);
}

TEST(Radix, InsertReplacesExisting)
{
    RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    t.insert(pfx("10.0.0.0/8"), 7);
    EXPECT_EQ(t.route_count(), 1u);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.9.9.9")), 7);
}

TEST(Radix, DefaultRouteAndHostRoute)
{
    RadixTrie<Ipv4Addr> t;
    t.insert(pfx("0.0.0.0/0"), 1);
    t.insert(pfx("255.255.255.255/32"), 2);
    EXPECT_EQ(t.lookup(Ipv4Addr{0}), 1);
    EXPECT_EQ(t.lookup(Ipv4Addr{0xFFFFFFFF}), 2);
    EXPECT_EQ(t.lookup(Ipv4Addr{0xFFFFFFFE}), 1);
}

TEST(Radix, EraseRestoresShorterMatch)
{
    RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    t.insert(pfx("10.1.0.0/16"), 2);
    EXPECT_TRUE(t.erase(pfx("10.1.0.0/16")));
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.1.0.1")), 1);
    EXPECT_FALSE(t.erase(pfx("10.1.0.0/16")));  // already gone
    EXPECT_FALSE(t.erase(pfx("10.2.0.0/16")));  // never present
}

TEST(Radix, ErasePrunesNodes)
{
    RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    const auto base_nodes = t.node_count();
    t.insert(pfx("10.1.2.3/32"), 2);
    EXPECT_GT(t.node_count(), base_nodes);
    t.erase(pfx("10.1.2.3/32"));
    EXPECT_EQ(t.node_count(), base_nodes);
    t.erase(pfx("10.0.0.0/8"));
    EXPECT_EQ(t.node_count(), 0u);
    EXPECT_EQ(t.route_count(), 0u);
}

TEST(Radix, EraseKeepsNodesNeededByOthers)
{
    RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/16"), 1);
    t.insert(pfx("10.0.128.0/17"), 2);
    t.erase(pfx("10.0.0.0/16"));
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.0.200.1")), 2);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv4("10.0.1.1")), kNoRoute);
}

TEST(Radix, FindExact)
{
    RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    EXPECT_EQ(t.find(pfx("10.0.0.0/8")), 1);
    EXPECT_EQ(t.find(pfx("10.0.0.0/9")), kNoRoute);
    EXPECT_EQ(t.find(pfx("11.0.0.0/8")), kNoRoute);
}

TEST(Radix, LookupDetailDepthExceedsMatchedLength)
{
    // Fig. 7's effect: deciding that only the /8 matches requires descending
    // to where the /24 would have been.
    RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    t.insert(pfx("10.1.2.0/24"), 2);
    const auto d = t.lookup_detail(*netbase::parse_ipv4("10.1.2.255"));
    EXPECT_EQ(d.next_hop, 2);
    EXPECT_EQ(d.matched_length, 24u);
    const auto shallow = t.lookup_detail(*netbase::parse_ipv4("10.1.3.1"));
    EXPECT_EQ(shallow.next_hop, 1);
    EXPECT_EQ(shallow.matched_length, 8u);
    EXPECT_GT(shallow.radix_depth, 8u);  // walked past /8 before giving up
}

TEST(Radix, LookupDetailMissHasMatchedFalse)
{
    RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    const auto d = t.lookup_detail(*netbase::parse_ipv4("11.0.0.1"));
    EXPECT_FALSE(d.matched);
    EXPECT_EQ(d.next_hop, kNoRoute);
}

TEST(Radix, ForEachRouteRoundTrips)
{
    const auto routes = corner_case_table();
    const auto t = load(routes);
    const auto out = t.routes();
    EXPECT_EQ(out.size(), routes.size());
    const auto reloaded = load(out);
    workload::Xorshift128 rng(5);
    for (int i = 0; i < 100000; ++i) {
        const Ipv4Addr a{rng.next()};
        EXPECT_EQ(t.lookup(a), reloaded.lookup(a));
    }
}

TEST(Radix, MatchesLinearOracle)
{
    const auto routes = corner_case_table();
    const auto t = load(routes);
    const baselines::LinearLpm4 oracle(routes);
    workload::Xorshift128 rng(6);
    for (int i = 0; i < 50000; ++i) {
        const Ipv4Addr a{rng.next()};
        ASSERT_EQ(t.lookup(a), oracle.lookup(a)) << netbase::to_string(a);
    }
    for (const auto& r : routes) {
        for (const auto v : {r.prefix.first_address().value(),
                             r.prefix.last_address().value(),
                             r.prefix.first_address().value() - 1,
                             r.prefix.last_address().value() + 1}) {
            ASSERT_EQ(t.lookup(Ipv4Addr{v}), oracle.lookup(Ipv4Addr{v}));
        }
    }
}

TEST(Radix, MarkSubtreeStopsAtMoreSpecificRoutes)
{
    RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    t.insert(pfx("10.1.0.0/16"), 2);
    t.insert(pfx("10.1.2.0/24"), 3);
    t.mark_subtree(pfx("10.0.0.0/8"));
    // The /16's node is a boundary: it is on the path but its subtree is
    // shadowed from the /8's change.
    const auto* n = t.root();
    ASSERT_NE(n, nullptr);
    EXPECT_TRUE(n->marked);
    t.clear_marks(pfx("10.0.0.0/8"));
    EXPECT_FALSE(t.root()->marked);
}

TEST(Radix, TableStats)
{
    const auto routes = corner_case_table();
    const auto stats = rib::compute_stats(routes);
    EXPECT_EQ(stats.prefix_count, routes.size());
    EXPECT_EQ(stats.max_length, 32u);
    EXPECT_EQ(stats.length_histogram[0], 1u);
    EXPECT_EQ(stats.length_histogram[18], 4u);
    EXPECT_GT(stats.distinct_next_hops, 10u);
    EXPECT_EQ(stats.longer_than(24), 7u);  // /25, /30 x4, /32 x2
}

TEST(Radix, Ipv6Basics)
{
    rib::RadixTrie<netbase::Ipv6Addr> t;
    const auto p1 = *netbase::parse_prefix6("2001:db8::/32");
    const auto p2 = *netbase::parse_prefix6("2001:db8:1::/48");
    t.insert(p1, 1);
    t.insert(p2, 2);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db8:1::5")), 2);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db8:2::5")), 1);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db9::1")), kNoRoute);
    EXPECT_TRUE(t.erase(p2));
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db8:1::5")), 1);
}

TEST(Radix, Ipv6FullLengthRoute)
{
    rib::RadixTrie<netbase::Ipv6Addr> t;
    const auto host = *netbase::parse_prefix6("2001:db8::1/128");
    t.insert(host, 9);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db8::1")), 9);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db8::2")), kNoRoute);
}
