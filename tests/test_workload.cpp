// Tests for the workload layer: the substitution generators must actually
// have the properties DESIGN.md claims for them.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "helpers.hpp"
#include "rib/table_stats.hpp"
#include "workload/datasets.hpp"
#include "workload/tablegen.hpp"
#include "workload/trafficgen.hpp"
#include "workload/updatefeed.hpp"
#include "workload/zipf.hpp"

using namespace testhelpers;

TEST(TableGen, DeterministicPerSeed)
{
    workload::TableGenConfig cfg;
    cfg.seed = 5;
    cfg.target_routes = 5'000;
    const auto a = workload::generate_table(cfg);
    const auto b = workload::generate_table(cfg);
    EXPECT_EQ(a, b);
    cfg.seed = 6;
    EXPECT_NE(workload::generate_table(cfg), a);
}

TEST(TableGen, HitsTargetsAndHasNoDuplicates)
{
    workload::TableGenConfig cfg;
    cfg.seed = 7;
    cfg.target_routes = 30'000;
    cfg.next_hops = 21;
    cfg.igp_routes = 1'500;
    const auto routes = workload::generate_table(cfg);
    EXPECT_GE(routes.size(), cfg.target_routes);
    EXPECT_LE(routes.size(), cfg.target_routes + cfg.igp_routes + 10);
    std::set<Prefix4> prefixes;
    for (const auto& r : routes) {
        EXPECT_NE(r.next_hop, rib::kNoRoute);
        prefixes.insert(r.prefix);
    }
    EXPECT_EQ(prefixes.size(), routes.size());
    const auto stats = rib::compute_stats(routes);
    EXPECT_LE(stats.distinct_next_hops, 21u);
    EXPECT_GE(stats.distinct_next_hops, 15u);
}

TEST(TableGen, LengthDistributionPeaksAt24)
{
    workload::TableGenConfig cfg;
    cfg.seed = 8;
    cfg.target_routes = 50'000;
    const auto stats = rib::compute_stats(workload::generate_table(cfg));
    // /24 is the modal length with roughly half the mass (§4.1).
    EXPECT_GT(stats.length_histogram[24], stats.prefix_count * 4 / 10);
    for (unsigned l = 8; l < 24; ++l)
        EXPECT_LT(stats.length_histogram[l], stats.length_histogram[24]);
    EXPECT_EQ(stats.longer_than(24), 0u);  // no IGP requested
}

TEST(TableGen, IgpRoutesAreLongAndClustered)
{
    workload::TableGenConfig cfg;
    cfg.seed = 9;
    cfg.target_routes = 20'000;
    cfg.igp_routes = 2'000;
    const auto routes = workload::generate_table(cfg);
    const auto stats = rib::compute_stats(routes);
    EXPECT_GE(stats.longer_than(24), cfg.igp_routes * 9 / 10);
    // Clustered: the >24 routes occupy far fewer /16 blocks than their count.
    std::unordered_set<std::uint32_t> blocks;
    for (const auto& r : routes)
        if (r.prefix.length() > 24) blocks.insert(r.prefix.bits() >> 16);
    EXPECT_LT(blocks.size(), 200u);
}

TEST(TableGen, BinaryRadixDepthExceedsMatchedLength)
{
    // The generator must reproduce Fig. 7's effect: deep descents deciding
    // shallow matches.
    workload::TableGenConfig cfg;
    cfg.seed = 10;
    cfg.target_routes = 30'000;
    const auto rib = load(workload::generate_table(cfg));
    workload::Xorshift128 rng(1);
    std::size_t deeper = 0;
    std::size_t matched = 0;
    for (int i = 0; i < 100'000; ++i) {
        const auto d = rib.lookup_detail(Ipv4Addr{rng.next()});
        if (!d.matched) continue;
        ++matched;
        if (d.radix_depth > d.matched_length) ++deeper;
    }
    ASSERT_GT(matched, 50'000u);
    EXPECT_GT(static_cast<double>(deeper) / static_cast<double>(matched), 0.05);
}

TEST(SynExpand, ProceduresMatchSpec)
{
    rib::RouteList<Ipv4Addr> input{
        {*netbase::parse_prefix4("10.0.0.0/14"), 3},
        {*netbase::parse_prefix4("10.32.0.0/20"), 4},
        {*netbase::parse_prefix4("10.64.5.0/24"), 5},
        {*netbase::parse_prefix4("10.64.6.1/32"), 6},
    };
    const auto syn1 = workload::syn_expand(input, 1);
    // /14 -> 4 pieces, /20 -> 2, /24 untouched (eligibility caps at /23, see
    // header), /32 untouched.
    EXPECT_EQ(syn1.size(), 4u + 2u + 1u + 1u);
    const auto syn2 = workload::syn_expand(input, 2);
    // /14 -> 8, /20 -> 4, /24 -> 2 (SYN2 splits /24s; SYN1 does not), /32
    // untouched.
    EXPECT_EQ(syn2.size(), 8u + 4u + 2u + 1u);

    // Pieces tile the original exactly and carry offset next hops.
    const auto t = load(syn2);
    std::set<rib::NextHop> hops;
    t.for_each_route([&](const Prefix4& p, rib::NextHop nh) {
        if ((*netbase::parse_prefix4("10.0.0.0/14")).contains(p)) {
            EXPECT_EQ(p.length(), 17u);
            hops.insert(nh);
        }
    });
    EXPECT_EQ(hops.size(), 8u);  // 8 distinct hops, n + i * max_hop
}

TEST(SynExpand, TargetSubsampling)
{
    workload::TableGenConfig cfg;
    cfg.seed = 11;
    cfg.target_routes = 40'000;
    const auto base = workload::generate_table(cfg);
    const std::size_t target = 55'000;
    const auto syn = workload::syn_expand(base, 1, target);
    EXPECT_NEAR(static_cast<double>(syn.size()), static_cast<double>(target),
                static_cast<double>(target) * 0.02);
    // Deterministic.
    EXPECT_EQ(workload::syn_expand(base, 1, target), syn);
}

TEST(SynExpand, PreservesCoverageOfSplitSpace)
{
    // Every address covered by the original table is still covered, though
    // possibly by a different (offset) next hop.
    workload::TableGenConfig cfg;
    cfg.seed = 12;
    cfg.target_routes = 5'000;
    const auto base = workload::generate_table(cfg);
    const auto syn = workload::syn_expand(base, 2);
    const auto base_rib = load(base);
    const auto syn_rib = load(syn);
    workload::Xorshift128 rng(2);
    for (int i = 0; i < 100'000; ++i) {
        const Ipv4Addr a{rng.next()};
        EXPECT_EQ(base_rib.lookup(a) == rib::kNoRoute, syn_rib.lookup(a) == rib::kNoRoute);
    }
}

TEST(Datasets, RegistryMirrorsTableOne)
{
    const auto specs = workload::all_ipv4_specs();
    EXPECT_EQ(specs.size(), 35u);  // 32 RouteViews + 3 REAL
    EXPECT_EQ(specs[0].name, "REAL-Tier1-A");
    EXPECT_EQ(specs[0].config.next_hops, 13u);
    EXPECT_GT(specs[0].config.igp_routes, 0u);
    std::set<std::string> names;
    std::set<std::uint64_t> seeds;
    for (const auto& s : specs) {
        names.insert(s.name);
        seeds.insert(s.config.seed);
    }
    EXPECT_EQ(names.size(), 35u);
    EXPECT_EQ(seeds.size(), 35u);
}

TEST(TableGen6, TargetsAndLengths)
{
    workload::TableGen6Config cfg;
    cfg.seed = 3;
    const auto routes = workload::generate_table6(cfg);
    EXPECT_GE(routes.size(), cfg.target_routes * 99 / 100);
    const auto stats = rib::compute_stats(routes);
    EXPECT_GT(stats.length_histogram[48], stats.prefix_count / 4);
    EXPECT_GT(stats.length_histogram[32], stats.prefix_count / 8);
    EXPECT_LE(stats.max_length, 64u);
    for (const auto& r : routes) {
        EXPECT_EQ(netbase::extract(r.prefix.bits(), 0, 3), 1u)
            << "outside 2000::/3: " << netbase::to_string(r.prefix);
    }
}

TEST(Zipf, HeadIsHeavy)
{
    const workload::ZipfSampler zipf(10'000, 1.05);
    workload::Xorshift128 rng(4);
    std::size_t head = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        if (zipf.sample(rng) < 100) ++head;
    // With alpha ~1, the top 1% of ranks draws a large share.
    EXPECT_GT(head, static_cast<std::size_t>(n) / 4);
}

TEST(Trace, DepthMixMatchesConfig)
{
    const auto spec = workload::real_renet();
    auto cfg = spec.config;
    cfg.target_routes = 40'000;  // scaled for test speed
    cfg.igp_routes = 4'000;
    const auto rib = load(workload::generate_table(cfg));
    workload::TraceConfig tc;
    tc.distinct_destinations = 30'000;
    tc.packets = 200'000;
    const auto trace = workload::make_real_trace_like(rib, tc);
    ASSERT_EQ(trace.size(), tc.packets);
    const double d18 = workload::deep_fraction(rib, trace, 18);
    const double d24 = workload::deep_fraction(rib, trace, 24);
    // §4.7: 32.5% deeper than 18, 21.8% deeper than 24. Zipf popularity
    // reweights the distinct-address mix, so allow a generous band.
    EXPECT_GT(d18, 0.15);
    EXPECT_LT(d18, 0.55);
    EXPECT_GT(d24, 0.08);
    EXPECT_LT(d24, 0.45);
    EXPECT_GT(d18, d24);
}

TEST(Trace, HasTemporalLocality)
{
    const auto rib = load(corner_case_table());
    workload::TraceConfig tc;
    tc.distinct_destinations = 1'000;
    tc.packets = 50'000;
    const auto trace = workload::make_real_trace_like(rib, tc);
    std::size_t same_as_prev = 0;
    for (std::size_t i = 1; i < trace.size(); ++i)
        if (trace[i] == trace[i - 1]) ++same_as_prev;
    EXPECT_GT(static_cast<double>(same_as_prev) / static_cast<double>(trace.size()), 0.3);
}

TEST(UpdateFeed, MixAndConsistency)
{
    workload::TableGenConfig cfg;
    cfg.seed = 13;
    cfg.target_routes = 10'000;
    const auto routes = workload::generate_table(cfg);
    workload::UpdateFeedConfig ucfg;
    ucfg.updates = 5'000;
    const auto feed = workload::make_update_feed(routes, ucfg);
    ASSERT_EQ(feed.size(), ucfg.updates);
    std::size_t announces = 0;
    for (const auto& ev : feed)
        if (ev.next_hop != rib::kNoRoute) ++announces;
    EXPECT_NEAR(static_cast<double>(announces) / static_cast<double>(feed.size()),
                ucfg.announce_fraction, 0.03);
    // Withdrawals always target prefixes that are present when applied.
    auto rib = load(routes);
    for (const auto& ev : feed) {
        if (ev.next_hop == rib::kNoRoute) {
            EXPECT_TRUE(rib.erase(ev.prefix)) << netbase::to_string(ev.prefix);
        } else {
            rib.insert(ev.prefix, ev.next_hop);
        }
    }
}
