// Tests for §3's route aggregation: the transformation must preserve the
// longest-prefix-match result for every address while shrinking the table.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "rib/aggregate.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;
using rib::kNoRoute;

namespace {
Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }
}  // namespace

TEST(Aggregate, EmptyTable)
{
    rib::RadixTrie<Ipv4Addr> t;
    EXPECT_TRUE(rib::aggregate_routes(t).empty());
}

TEST(Aggregate, MergesGaplessSiblings)
{
    rib::RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/9"), 5);
    t.insert(pfx("10.128.0.0/9"), 5);
    const auto out = rib::aggregate_routes(t);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].prefix, pfx("10.0.0.0/8"));
    EXPECT_EQ(out[0].next_hop, 5);
}

TEST(Aggregate, DoesNotMergeSiblingsWithDifferentHops)
{
    rib::RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/9"), 5);
    t.insert(pfx("10.128.0.0/9"), 6);
    EXPECT_EQ(rib::aggregate_routes(t).size(), 2u);
}

TEST(Aggregate, DoesNotMergeAcrossGaps)
{
    // 10.0.0.0/9 with hop 5 and only *half* of the sibling covered: merging
    // to /8 would wrongly capture the uncovered quarter.
    rib::RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/9"), 5);
    t.insert(pfx("10.128.0.0/10"), 5);
    const auto out = rib::aggregate_routes(t);
    EXPECT_EQ(out.size(), 2u);
}

TEST(Aggregate, RemovesRedundantChild)
{
    rib::RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 5);
    t.insert(pfx("10.1.0.0/16"), 5);  // same hop as what it would inherit
    const auto out = rib::aggregate_routes(t);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].prefix, pfx("10.0.0.0/8"));
}

TEST(Aggregate, KeepsNonRedundantChild)
{
    rib::RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 5);
    t.insert(pfx("10.1.0.0/16"), 6);
    EXPECT_EQ(rib::aggregate_routes(t).size(), 2u);
}

TEST(Aggregate, CollapsesFullyShadowedParent)
{
    // The parent's space is entirely covered by children with one hop: a
    // single route represents the whole subtree even though the parent's own
    // hop differs (no address actually resolves to it).
    rib::RadixTrie<Ipv4Addr> t;
    t.insert(pfx("10.0.0.0/8"), 1);
    t.insert(pfx("10.0.0.0/9"), 2);
    t.insert(pfx("10.128.0.0/9"), 2);
    const auto out = rib::aggregate_routes(t);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].prefix, pfx("10.0.0.0/8"));
    EXPECT_EQ(out[0].next_hop, 2);
}

TEST(Aggregate, PreservesSemanticsOnCornerTable)
{
    const auto routes = corner_case_table();
    const auto original = load(routes);
    const auto compact = load(rib::aggregate_routes(original));
    EXPECT_LE(compact.route_count(), original.route_count());
    EXPECT_EQ(boundary_and_random_mismatches(
                  original, routes,
                  [&](Ipv4Addr a) { return compact.lookup(a); }, 200'000),
              0u);
}

TEST(Aggregate, ExhaustiveEquivalenceOnDenseSlice)
{
    // Dense random routes inside 10.20.0.0/16; exhaustive check of all 65536
    // addresses of the slice plus its surroundings.
    workload::Xorshift128 rng(42);
    rib::RadixTrie<Ipv4Addr> original;
    for (int i = 0; i < 400; ++i) {
        const unsigned len = 16 + rng.next_below(17);
        const std::uint32_t addr = 0x0A140000u | (rng.next() & 0xFFFF);
        original.insert(Prefix4{Ipv4Addr{addr}, len},
                        static_cast<NextHop>(1 + rng.next_below(5)));
    }
    const auto compact = load(rib::aggregate_routes(original));
    EXPECT_EQ(exhaustive_mismatches(
                  original, [&](Ipv4Addr a) { return compact.lookup(a); }, 0x0A13FF00u,
                  0x0A150100u),
              0u);
}

TEST(Aggregate, PropertyRandomTables)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        workload::TableGenConfig cfg;
        cfg.seed = seed;
        cfg.target_routes = 4000;
        cfg.next_hops = 7;
        cfg.igp_routes = 300;
        const auto routes = workload::generate_table(cfg);
        const auto original = load(routes);
        const auto compact = load(rib::aggregate_routes(original));
        EXPECT_LT(compact.route_count(), original.route_count()) << "seed " << seed;
        EXPECT_EQ(boundary_and_random_mismatches(
                      original, routes,
                      [&](Ipv4Addr a) { return compact.lookup(a); }, 50'000, seed),
                  0u)
            << "seed " << seed;
    }
}

TEST(Aggregate, IdempotentOnAggregatedTable)
{
    const auto original = load(corner_case_table());
    const auto once = rib::aggregate_routes(original);
    const auto twice = rib::aggregate_routes(load(once));
    EXPECT_EQ(once.size(), twice.size());
}

TEST(Aggregate, Ipv6Semantics)
{
    rib::RadixTrie<netbase::Ipv6Addr> t;
    t.insert(*netbase::parse_prefix6("2001:db8::/33"), 3);
    t.insert(*netbase::parse_prefix6("2001:db8:8000::/33"), 3);
    t.insert(*netbase::parse_prefix6("2001:db8:1::/48"), 3);  // redundant
    const auto out = rib::aggregate_routes(t);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].prefix, *netbase::parse_prefix6("2001:db8::/32"));
}
