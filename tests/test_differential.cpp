// Differential sweep: the paper validated its implementations by "comparing
// all lookup results of all algorithms for each address of the whole IPv4
// space". This is the repository's equivalent: for a parameterized set of
// seeds and table shapes, EVERY structure (radix, Patricia, Tree BitMap
// 16/64, SAIL, D16R/D18R plain+modified, DIR-24-8, Poptrie in four configs)
// is built from the same table — raw and aggregated — and must agree at
// every route boundary and on a large random sample. One test failure here
// localizes to whichever structure disagrees with the radix oracle.
#include <gtest/gtest.h>

#include "baselines/dir24.hpp"
#include "baselines/dxr.hpp"
#include "baselines/lulea.hpp"
#include "baselines/sail.hpp"
#include "baselines/treebitmap.hpp"
#include "helpers.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/aggregate.hpp"
#include "rib/patricia.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;

namespace {

struct Shape {
    std::uint64_t seed;
    std::size_t routes;
    unsigned next_hops;
    std::size_t igp;
};

class Differential : public testing::TestWithParam<Shape> {};

TEST_P(Differential, AllStructuresAgree)
{
    const auto shape = GetParam();
    workload::TableGenConfig gen;
    gen.seed = shape.seed;
    gen.target_routes = shape.routes;
    gen.next_hops = shape.next_hops;
    gen.igp_routes = shape.igp;
    const auto routes = workload::generate_table(gen);
    const auto oracle = load(routes);
    const auto aggregated = rib::aggregate(oracle);

    rib::PatriciaTrie<Ipv4Addr> patricia;
    patricia.insert_all(routes);
    const baselines::TreeBitmap16 tbm16{aggregated};
    const baselines::TreeBitmap64 tbm64{aggregated};
    const baselines::Sail sail{aggregated};
    const baselines::Dxr d16r{aggregated, {.direct_bits = 16}};
    const baselines::Dxr d18r{aggregated, {.direct_bits = 18}};
    const baselines::Dxr d18m{aggregated, {.direct_bits = 18, .modified = true}};
    const baselines::Dir24 dir24{aggregated};
    const baselines::Lulea lulea{aggregated};
    poptrie::Config c0;
    c0.direct_bits = 0;
    poptrie::Config c18;
    c18.direct_bits = 18;
    poptrie::Config c18basic;
    c18basic.direct_bits = 18;
    c18basic.leaf_compression = false;
    c18basic.route_aggregation = false;
    poptrie::Config c16raw;
    c16raw.direct_bits = 16;
    c16raw.route_aggregation = false;
    const poptrie::Poptrie4 p0{oracle, c0};
    const poptrie::Poptrie4 p18{oracle, c18};
    const poptrie::Poptrie4 p18b{oracle, c18basic};
    const poptrie::Poptrie4 p16r{oracle, c16raw};

    const auto check_all = [&](Ipv4Addr a) {
        const auto want = oracle.lookup(a);
        ASSERT_EQ(patricia.lookup(a), want) << "patricia " << netbase::to_string(a);
        ASSERT_EQ(tbm16.lookup(a), want) << "tbm16 " << netbase::to_string(a);
        ASSERT_EQ(tbm64.lookup(a), want) << "tbm64 " << netbase::to_string(a);
        ASSERT_EQ(sail.lookup(a), want) << "sail " << netbase::to_string(a);
        ASSERT_EQ(d16r.lookup(a), want) << "d16r " << netbase::to_string(a);
        ASSERT_EQ(d18r.lookup(a), want) << "d18r " << netbase::to_string(a);
        ASSERT_EQ(d18m.lookup(a), want) << "d18r-mod " << netbase::to_string(a);
        ASSERT_EQ(dir24.lookup(a), want) << "dir24 " << netbase::to_string(a);
        ASSERT_EQ(lulea.lookup(a), want) << "lulea " << netbase::to_string(a);
        ASSERT_EQ(p0.lookup(a), want) << "poptrie0 " << netbase::to_string(a);
        ASSERT_EQ(p18.lookup(a), want) << "poptrie18 " << netbase::to_string(a);
        ASSERT_EQ(p18b.lookup(a), want) << "poptrie18-basic " << netbase::to_string(a);
        ASSERT_EQ(p16r.lookup(a), want) << "poptrie16-raw " << netbase::to_string(a);
    };

    for (const auto& r : routes) {
        const auto lo = r.prefix.first_address().value();
        const auto hi = r.prefix.last_address().value();
        check_all(Ipv4Addr{lo});
        check_all(Ipv4Addr{hi});
        check_all(Ipv4Addr{lo - 1});
        check_all(Ipv4Addr{hi + 1});
    }
    workload::Xorshift128 rng(shape.seed * 7919);
    for (int i = 0; i < 150'000; ++i) check_all(Ipv4Addr{rng.next()});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Differential,
    testing::Values(Shape{101, 2'000, 5, 0},       // small, few hops
                    Shape{102, 2'000, 500, 100},   // hop-diverse
                    Shape{103, 20'000, 13, 1'500}, // tier1-like, IGP-heavy
                    Shape{104, 20'000, 300, 0},    // RouteViews-like
                    Shape{105, 60'000, 60, 3'000}, // larger
                    Shape{106, 500, 2, 50}),       // tiny, near-binary hops
    [](const testing::TestParamInfo<Shape>& info) {
        return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
