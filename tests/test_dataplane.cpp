// Tests for the dataplane subsystem: the SPSC ring primitive, the worker
// pool scaffolding, the Dataplane pipeline end-to-end (counter conservation
// and agreement with direct lookups), and forwarding under live route churn
// (the §3.5 concurrency contract; run under TSan by the tsan CI leg).
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "dataplane/churn.hpp"
#include "dataplane/dataplane.hpp"
#include "dataplane/engines.hpp"
#include "dataplane/worker_pool.hpp"
#include "sync/annotations.hpp"
#include "sync/counters.hpp"
#include "sync/spsc_ring.hpp"
#include "workload/tablegen.hpp"
#include "workload/xorshift.hpp"

namespace {

using netbase::Ipv4Addr;

// --- SPSC ring -----------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(psync::SpscRing<int>(1).capacity(), 2u);
    EXPECT_EQ(psync::SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(psync::SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(psync::SpscRing<int>(1000).capacity(), 1024u);
    EXPECT_EQ(psync::SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRing, FullAndEmptySingleThread)
{
    psync::SpscRing<int> ring(4);
    // One thread legitimately plays both SPSC roles when nothing runs
    // concurrently; the tokens make that claim visible to the analysis.
    const psync::SpscProducerToken producer{ring};
    const psync::SpscConsumerToken consumer{ring};
    EXPECT_TRUE(ring.empty());
    int v = 0;
    EXPECT_FALSE(ring.try_pop(v));  // empty pop fails
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_FALSE(ring.try_push(99));  // full push fails
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.try_pop(v));
        EXPECT_EQ(v, i);  // FIFO
    }
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, BatchPushAcceptsPartially)
{
    psync::SpscRing<int> ring(8);
    const psync::SpscProducerToken producer{ring};  // single-threaded test
    const psync::SpscConsumerToken consumer{ring};
    std::vector<int> in(6);
    std::iota(in.begin(), in.end(), 0);
    EXPECT_EQ(ring.push(in.data(), in.size()), 6u);
    EXPECT_EQ(ring.push(in.data(), in.size()), 2u);  // only 2 slots left
    EXPECT_EQ(ring.push(in.data(), in.size()), 0u);  // full

    std::vector<int> out(16, -1);
    EXPECT_EQ(ring.pop(out.data(), out.size()), 8u);  // batch pop drains all
    const std::vector<int> expect{0, 1, 2, 3, 4, 5, 0, 1};
    EXPECT_EQ(std::vector<int>(out.begin(), out.begin() + 8), expect);
    EXPECT_EQ(ring.pop(out.data(), out.size()), 0u);
}

TEST(SpscRing, WraparoundPreservesFifo)
{
    // A tiny ring cycled far past its capacity: every element must come out
    // exactly once, in order, across many index wraps.
    psync::SpscRing<std::uint32_t> ring(4);
    const psync::SpscProducerToken producer{ring};  // single-threaded test
    const psync::SpscConsumerToken consumer{ring};
    std::uint32_t next_in = 0;
    std::uint32_t next_out = 0;
    std::uint32_t buf[3];
    for (int round = 0; round < 1000; ++round) {
        std::uint32_t in[3];
        for (auto& x : in) x = next_in++;
        const std::size_t pushed = ring.push(in, 3);
        next_in -= static_cast<std::uint32_t>(3 - pushed);  // unconsumed retry later
        const std::size_t popped = ring.pop(buf, 3);
        for (std::size_t i = 0; i < popped; ++i) EXPECT_EQ(buf[i], next_out++);
    }
    while (ring.pop(buf, 1) == 1) EXPECT_EQ(buf[0], next_out++);
    EXPECT_EQ(next_in, next_out);
}

TEST(SpscRing, CrossThreadTransferIntegrity)
{
    // One producer, one consumer, small ring: every value arrives exactly
    // once, in order. Under TSan this also checks the acquire/release pairing
    // on head_/tail_.
    psync::SpscRing<std::uint64_t> ring(64);
    constexpr std::uint64_t kCount = 200'000;
    std::thread producer([&] {
        const psync::SpscProducerToken token{ring};  // this thread is the one producer
        std::uint64_t next = 0;
        std::uint64_t batch[17];
        while (next < kCount) {
            std::size_t n = 0;
            while (n < 17 && next + n < kCount) {
                batch[n] = next + n;
                ++n;
            }
            next += ring.push(batch, n);
        }
    });
    const psync::SpscConsumerToken consumer{ring};  // main thread is the one consumer
    std::uint64_t expect = 0;
    std::uint64_t out[32];
    while (expect < kCount) {
        const std::size_t n = ring.pop(out, 32);
        for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expect++);
        if (n == 0) std::this_thread::yield();
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

// --- worker pool ---------------------------------------------------------

TEST(WorkerPool, RunsBodyOncePerWorker)
{
    std::vector<psync::EventCounter> hits(4);
    {
        dataplane::WorkerPool pool({.threads = 4}, [&](unsigned w) { hits[w].add(w + 1); });
        pool.join();
        pool.join();  // idempotent
    }
    for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(hits[w].read(), w + 1);
}

TEST(WorkerPool, MultithreadAggregates)
{
    // Moved from test_benchkit.cpp when the measurement loop moved to the
    // shared pool scaffolding.
    const auto lookup = [](std::uint32_t a) { return static_cast<std::uint16_t>(a & 7); };
    const auto r = dataplane::measure_random_multithread(lookup, 50'000, 2, 2);
    EXPECT_GT(r.mlps_mean, 0.0);
    EXPECT_GT(r.checksum, 0u);
}

// --- dataplane pipeline --------------------------------------------------

rib::RouteList<Ipv4Addr> small_table(std::size_t routes)
{
    workload::TableGenConfig tg;
    tg.seed = 5;
    tg.target_routes = routes;
    tg.next_hops = 32;
    return workload::generate_table(tg);
}

TEST(Dataplane, CountsAgreeWithDirectLookups)
{
    const auto routes = small_table(3'000);
    router::Router4 router;
    dataplane::load_routes(router, routes);

    // Fixed address set; what the pipeline forwards must equal what direct
    // lookups resolve (workers only reorder, never change, the resolution).
    std::vector<std::uint32_t> addrs(40'000);
    workload::Xorshift128 rng(77);
    for (auto& a : addrs) a = rng.next();
    std::uint64_t expect_hits = 0;
    for (const auto a : addrs)
        expect_hits += (router.lookup_index(Ipv4Addr{a}) != rib::kNoRoute) ? 1 : 0;

    dataplane::DataplaneConfig cfg;
    cfg.workers = 2;
    cfg.burst = 64;
    cfg.ring_capacity = 1 << 16;  // larger than the offered set: no drops
    dataplane::Dataplane<dataplane::PoptrieEngine> dp{dataplane::PoptrieEngine{router},
                                                      cfg};
    dp.start();
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < addrs.size(); i += 128)
        accepted += dp.offer(addrs.data() + i, std::min<std::size_t>(128, addrs.size() - i));
    dp.stop();  // workers drain their rings before exiting

    EXPECT_EQ(accepted, addrs.size());
    const auto s = dp.stats();
    EXPECT_EQ(s.offered, addrs.size());
    EXPECT_EQ(s.ring_drops, 0u);
    EXPECT_EQ(s.forwarded + s.no_route, addrs.size());  // conservation
    EXPECT_EQ(s.forwarded, expect_hits);                // agreement
    EXPECT_GT(s.batches, 0u);
    {
        // quiescent: dp.stop() above joined every worker.
        const psync::QuiescentSection quiescent;
        EXPECT_GT(dp.merged_latency().observed(), 0u);
    }
}

TEST(Dataplane, DropsAreCountedWhenRingsStayFull)
{
    const auto routes = small_table(500);
    router::Router4 router;
    dataplane::load_routes(router, routes);
    dataplane::DataplaneConfig cfg;
    cfg.workers = 1;
    cfg.ring_capacity = 16;
    dataplane::Dataplane<dataplane::PoptrieEngine> dp{dataplane::PoptrieEngine{router},
                                                      cfg};
    // Workers never started: the ring fills, then every offer drops.
    std::vector<std::uint32_t> addrs(64, 1);
    (void)dp.offer(addrs.data(), addrs.size());
    const auto s = dp.stats();
    EXPECT_EQ(s.offered, 64u);
    EXPECT_EQ(s.ring_drops, 64u - 16u);
}

/// PoptrieEngine plus validation: every resolved next hop must be kNoRoute
/// or a plausibly-interned adjacency index — a torn or reclaimed-under-foot
/// read would surface as garbage in the full 16-bit range.
class ValidatingEngine {
public:
    using addr_type = Ipv4Addr;
    using key_type = addr_type::value_type;

    ValidatingEngine(router::Router4& router, psync::EventCounter& invalid,
                     rib::NextHop max_index) noexcept
        : inner_(router), invalid_(&invalid), max_index_(max_index)
    {
    }

    [[nodiscard]] std::string_view name() const noexcept { return "validating"; }

    void lookup_batch(const key_type* keys, rib::NextHop* out, std::size_t n) const noexcept
        POPTRIE_REQUIRES_SHARED(psync::cap::ebr)
    {
        inner_.lookup_batch(keys, out, n);
        std::uint64_t bad = 0;
        for (std::size_t i = 0; i < n; ++i)
            bad += (out[i] != rib::kNoRoute && out[i] > max_index_) ? 1 : 0;
        if (bad != 0) invalid_->add(bad);
    }

    [[nodiscard]] dataplane::EbrReader make_reader() const { return inner_.make_reader(); }

private:
    dataplane::PoptrieEngine inner_;
    psync::EventCounter* invalid_;
    rib::NextHop max_index_;
};

static_assert(dataplane::LpmEngine<ValidatingEngine>);

TEST(Dataplane, ForwardingStaysValidUnderLiveChurn)
{
    // 4 workers forwarding while the control thread applies a full update
    // feed — the §3.5 end-to-end claim. Run under TSan by the tsan CI leg.
    const auto routes = small_table(2'000);
    poptrie::Config pcfg;
    pcfg.pool_headroom_log2 = 6;  // pool growth is not reader-safe (§3.5)
    router::Router4 router{pcfg};
    dataplane::load_routes(router, routes);
    {
        // quiescent: no worker thread has been spawned yet.
        const psync::QuiescentSection quiescent;
        router.reserve_fib_headroom();
    }
    const auto growths_at_start = router.fib().update_counters().pool_growths;

    // Adjacency indices are interned: 32 table hops plus the feed's next-hop
    // space (default 419 ids, same adjacency_for mapping) stay far below
    // this; anything above is a corrupt read.
    constexpr rib::NextHop kMaxPlausibleIndex = 2'048;
    psync::EventCounter invalid;

    dataplane::DataplaneConfig cfg;
    cfg.workers = 4;
    cfg.burst = 32;
    dataplane::Dataplane<ValidatingEngine> dp{
        ValidatingEngine{router, invalid, kMaxPlausibleIndex}, cfg};
    dp.start();

    dataplane::ChurnRunner churn{router, routes, dataplane::ChurnConfig{.updates = 3'000}};

    workload::Xorshift128 rng(13);
    std::vector<std::uint32_t> chunk(256);
    while (!churn.finished()) {
        for (auto& a : chunk) a = rng.next();
        (void)dp.offer(chunk.data(), chunk.size());
    }
    churn.stop_and_join();
    dp.stop();
    {
        // writer: churn thread and workers joined above; this thread is the
        // only one left touching the domain.
        const psync::EbrWriterSection writer;
        router.drain();
    }

    EXPECT_EQ(churn.applied(), 3'000u);
    EXPECT_EQ(churn.announcements() + churn.withdrawals(), churn.applied());
    EXPECT_EQ(router.fib().update_counters().pool_growths, growths_at_start)
        << "headroom exhausted: growth under live readers is a race";
    const auto s = dp.stats();
    EXPECT_GT(s.forwarded, 0u);
    EXPECT_EQ(s.forwarded + s.no_route + s.ring_drops, s.offered);
    EXPECT_EQ(invalid.read(), 0u);
}

TEST(ChurnRunner, AppliesWholeFeedAndCounts)
{
    const auto routes = small_table(1'000);
    router::Router4 router;
    dataplane::load_routes(router, routes);
    const auto before = router.route_count();
    dataplane::ChurnRunner churn{router, routes, dataplane::ChurnConfig{.updates = 500}};
    // stop_and_join() requests *early* stop; wait for the feed to complete
    // first (under TSan the thread is slow enough for the flag to win).
    while (!churn.finished()) std::this_thread::yield();
    churn.stop_and_join();
    EXPECT_TRUE(churn.finished());
    EXPECT_EQ(churn.applied(), 500u);
    EXPECT_EQ(churn.announcements() + churn.withdrawals(), 500u);
    EXPECT_GT(churn.announcements(), churn.withdrawals());  // 77.4% / 22.6% mix
    // The table evolved but stayed the same order of magnitude.
    EXPECT_GT(router.route_count(), before / 2);
    // writer: the churn thread joined above; only this thread remains.
    const psync::EbrWriterSection writer;
    router.drain();
}

}  // namespace
