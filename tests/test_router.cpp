// Tests for the router integration layer: adjacency interning/recycling,
// RIB/FIB consistency through add/remove churn, and the 2^16 index limit.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "router/router.hpp"
#include "sync/annotations.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;
using router::Adjacency;
using router::Router4;

namespace {
Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }
Ipv4Addr ip(const char* text) { return *netbase::parse_ipv4(text); }
Adjacency<Ipv4Addr> adj(const char* gw, std::string iface)
{
    return {ip(gw), std::move(iface)};
}
}  // namespace

TEST(Router, ResolveReturnsInstalledAdjacency)
{
    Router4 r;
    r.add_route(pfx("10.0.0.0/8"), adj("192.168.0.1", "eth0"));
    const auto* a = r.resolve(ip("10.1.2.3"));
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->gateway, ip("192.168.0.1"));
    EXPECT_EQ(a->interface, "eth0");
    EXPECT_EQ(r.resolve(ip("11.0.0.0")), nullptr);
}

TEST(Router, AdjacencyInterning)
{
    Router4 r;
    r.add_route(pfx("10.0.0.0/8"), adj("192.168.0.1", "eth0"));
    r.add_route(pfx("20.0.0.0/8"), adj("192.168.0.1", "eth0"));  // same adjacency
    r.add_route(pfx("30.0.0.0/8"), adj("192.168.0.2", "eth0"));  // different gateway
    r.add_route(pfx("40.0.0.0/8"), adj("192.168.0.1", "eth1"));  // different iface
    EXPECT_EQ(r.adjacency_count(), 3u);
    EXPECT_EQ(r.lookup_index(ip("10.1.1.1")), r.lookup_index(ip("20.1.1.1")));
    EXPECT_NE(r.lookup_index(ip("10.1.1.1")), r.lookup_index(ip("30.1.1.1")));
}

TEST(Router, ReplaceRouteSwapsAdjacency)
{
    Router4 r;
    r.add_route(pfx("10.0.0.0/8"), adj("192.168.0.1", "eth0"));
    r.add_route(pfx("10.0.0.0/8"), adj("192.168.0.9", "eth2"));
    EXPECT_EQ(r.route_count(), 1u);
    EXPECT_EQ(r.adjacency_count(), 1u);  // old adjacency released
    EXPECT_EQ(r.resolve(ip("10.1.1.1"))->interface, "eth2");
}

TEST(Router, RemoveRouteReleasesAndRecyclesIndices)
{
    Router4 r;
    r.add_route(pfx("10.0.0.0/8"), adj("192.168.0.1", "eth0"));
    const auto idx1 = r.lookup_index(ip("10.1.1.1"));
    EXPECT_TRUE(r.remove_route(pfx("10.0.0.0/8")));
    EXPECT_FALSE(r.remove_route(pfx("10.0.0.0/8")));
    EXPECT_EQ(r.adjacency_count(), 0u);
    EXPECT_EQ(r.resolve(ip("10.1.1.1")), nullptr);
    // A new adjacency reuses the freed 16-bit index.
    r.add_route(pfx("20.0.0.0/8"), adj("192.168.0.7", "eth3"));
    EXPECT_EQ(r.lookup_index(ip("20.1.1.1")), idx1);
}

TEST(Router, LongestPrefixSemanticsThroughChurn)
{
    // writer: single-threaded test — this thread is the sole updater.
    const psync::EbrWriterSection writer;
    Router4 r;
    r.add_route(pfx("0.0.0.0/0"), adj("10.0.0.1", "up0"));
    r.add_route(pfx("10.0.0.0/8"), adj("10.0.0.2", "core0"));
    r.add_route(pfx("10.1.0.0/16"), adj("10.0.0.3", "core1"));
    EXPECT_EQ(r.resolve(ip("10.1.2.3"))->interface, "core1");
    EXPECT_EQ(r.resolve(ip("10.2.2.3"))->interface, "core0");
    EXPECT_EQ(r.resolve(ip("99.1.1.1"))->interface, "up0");
    r.remove_route(pfx("10.1.0.0/16"));
    EXPECT_EQ(r.resolve(ip("10.1.2.3"))->interface, "core0");
    r.drain();
}

TEST(Router, MirrorsRibThroughRandomChurn)
{
    Router4 r;
    workload::TableGenConfig gen;
    gen.seed = 71;
    gen.target_routes = 8'000;
    gen.next_hops = 40;
    const auto routes = workload::generate_table(gen);
    for (const auto& rt : routes) {
        r.add_route(rt.prefix,
                    adj("192.168.0.1", "bundle" + std::to_string(rt.next_hop)));
    }
    EXPECT_EQ(r.route_count(), routes.size());
    EXPECT_EQ(r.adjacency_count(), 40u);
    // FIB resolves identically to the RIB it mirrors.
    workload::Xorshift128 rng(5);
    for (int i = 0; i < 200'000; ++i) {
        const Ipv4Addr a{rng.next()};
        ASSERT_EQ(r.lookup_index(a), r.rib().lookup(a));
    }
    // Withdraw half, re-check.
    for (std::size_t i = 0; i < routes.size(); i += 2) r.remove_route(routes[i].prefix);
    for (int i = 0; i < 100'000; ++i) {
        const Ipv4Addr a{rng.next()};
        ASSERT_EQ(r.lookup_index(a), r.rib().lookup(a));
    }
}

TEST(Router, AdjacencyTableFullThrows)
{
    Router4 r;
    // 65535 distinct interfaces exhaust the index space; one more throws.
    for (unsigned i = 1; i <= 0xFFFF; ++i) {
        const Prefix4 p{Ipv4Addr{i << 12}, 20};
        r.add_route(p, adj("192.168.0.1", "if" + std::to_string(i)));
    }
    EXPECT_THROW(r.add_route(pfx("1.2.3.0/24"), adj("192.168.0.1", "overflow")),
                 router::AdjacencyTableFull);
}

TEST(Router, Ipv6Family)
{
    router::Router6 r;
    r.add_route(*netbase::parse_prefix6("2001:db8::/32"),
                {*netbase::parse_ipv6("fe80::1"), "eth0"});
    const auto* a = r.resolve(*netbase::parse_ipv6("2001:db8::42"));
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->interface, "eth0");
    EXPECT_EQ(r.resolve(*netbase::parse_ipv6("2001:db9::42")), nullptr);
}

TEST(Router, SaveFibSnapshotRoundTripsIndices)
{
    Router4 r;
    for (unsigned i = 0; i < 64; ++i) {
        const Prefix4 p{Ipv4Addr{(10u << 24) | (i << 16)}, 16};
        r.add_route(p, adj("192.168.0.1", "if" + std::to_string(i % 7)));
    }

    // quiescent: single-threaded test — no forwarding thread exists.
    const psync::QuiescentSection quiescent;
    const std::string path = ::testing::TempDir() + "router_fib.snap";
    r.save_fib_snapshot(path);

    const auto fib = snapshot::SnapshotFib4::load_file(path);
    for (unsigned i = 0; i < 64; ++i) {
        const Ipv4Addr a{(10u << 24) | (i << 16) | 0x1234u};
        EXPECT_EQ(fib.lookup(a), r.lookup_index(a));
        // The image stores FIB indices; the live router maps them on to the
        // same adjacency the restored index denotes.
        ASSERT_NE(r.resolve(a), nullptr);
        EXPECT_EQ(r.resolve(a)->interface, "if" + std::to_string(i % 7));
    }
    std::remove(path.c_str());
}
