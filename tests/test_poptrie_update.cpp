// Tests for §3.5 incremental update: after every applied change the FIB must
// resolve exactly like the updated RIB (and like a freshly rebuilt FIB), the
// update counters must move, and retired memory must be reclaimed.
#include <gtest/gtest.h>

#include "analysis/audit.hpp"
#include "helpers.hpp"
#include "poptrie/poptrie.hpp"
#include "sync/annotations.hpp"
#include "workload/tablegen.hpp"
#include "workload/updatefeed.hpp"

using namespace testhelpers;
using poptrie::Config;
using poptrie::Poptrie4;
using rib::kNoRoute;

namespace {
Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }

void expect_equivalent(const rib::RadixTrie<Ipv4Addr>& rib, const Poptrie4& pt,
                       std::size_t n_random, std::uint64_t seed)
{
    workload::Xorshift128 rng(seed);
    for (std::size_t i = 0; i < n_random; ++i) {
        const Ipv4Addr a{rng.next()};
        ASSERT_EQ(pt.lookup(a), rib.lookup(a)) << netbase::to_string(a);
    }
}
}  // namespace

TEST(PoptrieUpdate, InsertIntoEmpty)
{
    rib::RadixTrie<Ipv4Addr> rib;
    Config cfg;
    cfg.direct_bits = 16;
    Poptrie4 pt{rib, cfg};
    pt.apply(rib, pfx("10.0.0.0/8"), 3);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("10.1.2.3")), 3);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("11.0.0.0")), kNoRoute);
    EXPECT_EQ(pt.update_counters().updates, 1u);
}

TEST(PoptrieUpdate, WithdrawRestoresParent)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 1);
    rib.insert(pfx("10.1.0.0/16"), 2);
    Config cfg;
    cfg.direct_bits = 18;
    Poptrie4 pt{rib, cfg};
    pt.apply(rib, pfx("10.1.0.0/16"), kNoRoute);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("10.1.2.3")), 1);
    expect_equivalent(rib, pt, 100'000, 1);
}

TEST(PoptrieUpdate, ShortPrefixSpansManyDirectSlots)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.32.5.0/24"), 2);
    Config cfg;
    cfg.direct_bits = 18;
    Poptrie4 pt{rib, cfg};
    pt.apply(rib, pfx("12.0.0.0/7"), 9);  // covers 2^11 direct slots
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("12.200.1.1")), 9);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("13.255.255.255")), 9);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("14.0.0.0")), kNoRoute);
    pt.apply(rib, pfx("12.0.0.0/7"), kNoRoute);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("12.200.1.1")), kNoRoute);
    expect_equivalent(rib, pt, 100'000, 2);
}

TEST(PoptrieUpdate, DefaultRouteUpdate)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 1);
    for (const unsigned s : {0u, 16u}) {
        rib::RadixTrie<Ipv4Addr> r2;
        r2.insert(pfx("10.0.0.0/8"), 1);
        Config cfg;
        cfg.direct_bits = s;
        Poptrie4 pt{r2, cfg};
        pt.apply(r2, pfx("0.0.0.0/0"), 5);
        EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("200.1.1.1")), 5);
        EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("10.1.1.1")), 1);
        pt.apply(r2, pfx("0.0.0.0/0"), kNoRoute);
        EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("200.1.1.1")), kNoRoute);
    }
}

TEST(PoptrieUpdate, NextHopChangeOnly)
{
    // A pure path change keeps every node shape identical: the in-place
    // base swap path. Counters must show no direct-slot replacement.
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 1);
    rib.insert(pfx("10.32.5.0/24"), 2);
    Config cfg;
    cfg.direct_bits = 18;
    Poptrie4 pt{rib, cfg};
    const auto before = pt.update_counters().direct_stores;
    pt.apply(rib, pfx("10.32.5.0/24"), 7);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("10.32.5.99")), 7);
    EXPECT_EQ(pt.update_counters().direct_stores, before);
    expect_equivalent(rib, pt, 50'000, 3);
}

TEST(PoptrieUpdate, HostRouteChurnDeepensAndCollapses)
{
    // writer: single-threaded test — this thread is the sole updater.
    const psync::EbrWriterSection writer;
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 1);
    Config cfg;
    cfg.direct_bits = 16;
    Poptrie4 pt{rib, cfg};
    const auto nodes_before = pt.stats().internal_nodes;
    pt.apply(rib, pfx("10.1.2.3/32"), 4);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("10.1.2.3")), 4);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("10.1.2.2")), 1);
    EXPECT_GT(pt.stats().internal_nodes, nodes_before);
    pt.apply(rib, pfx("10.1.2.3/32"), kNoRoute);
    pt.drain();
    EXPECT_EQ(pt.stats().internal_nodes, nodes_before);  // subtree collapsed
    expect_equivalent(rib, pt, 50'000, 4);
}

// The big one: random update feeds against every config; after every event
// the FIB must match the RIB at the changed prefix's boundaries, and at the
// end everywhere (sampled).
struct UpdateCase {
    unsigned direct_bits;
    bool leaf_compression;
    bool route_aggregation;
};

class PoptrieUpdateFeed : public testing::TestWithParam<UpdateCase> {};

TEST_P(PoptrieUpdateFeed, StaysEquivalentThroughFeed)
{
    // writer: single-threaded test — this thread is the sole updater.
    const psync::EbrWriterSection writer;
    const auto param = GetParam();
    workload::TableGenConfig gen;
    gen.seed = 99;
    gen.target_routes = 20'000;
    gen.next_hops = 17;
    gen.igp_routes = 1'000;
    const auto routes = workload::generate_table(gen);
    auto rib = load(routes);
    Config cfg;
    cfg.direct_bits = param.direct_bits;
    cfg.leaf_compression = param.leaf_compression;
    cfg.route_aggregation = param.route_aggregation;
    Poptrie4 pt{rib, cfg};

    workload::UpdateFeedConfig ucfg;
    ucfg.updates = 2'000;
    ucfg.next_hops = 17;
    ucfg.seed = 1 + param.direct_bits;
    const auto feed = workload::make_update_feed(routes, ucfg);
    for (const auto& ev : feed) {
        pt.apply(rib, ev.prefix, ev.next_hop);
        const auto lo = ev.prefix.first_address().value();
        const auto hi = ev.prefix.last_address().value();
        for (const auto a : {lo, hi, lo ^ 1u, hi ^ 1u, lo - 1, hi + 1}) {
            ASSERT_EQ(pt.lookup(Ipv4Addr{a}), rib.lookup(Ipv4Addr{a}))
                << netbase::to_string(ev.prefix) << " probe " << netbase::to_string(Ipv4Addr{a});
        }
    }
    expect_equivalent(rib, pt, 300'000, 5);
    EXPECT_EQ(pt.update_counters().updates, feed.size());
    pt.drain();
    POPTRIE_AUDIT_ASSERT(pt, rib);

    // Equivalent to a from-scratch rebuild.
    const Poptrie4 rebuilt{rib, cfg};
    workload::Xorshift128 rng(6);
    for (int i = 0; i < 100'000; ++i) {
        const Ipv4Addr a{rng.next()};
        ASSERT_EQ(pt.lookup(a), rebuilt.lookup(a));
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, PoptrieUpdateFeed,
                         testing::Values(UpdateCase{0, true, true}, UpdateCase{0, false, false},
                                         UpdateCase{16, true, true},
                                         UpdateCase{16, false, true},
                                         UpdateCase{18, true, false},
                                         UpdateCase{18, true, true}),
                         [](const testing::TestParamInfo<UpdateCase>& info) {
                             return "s" + std::to_string(info.param.direct_bits) +
                                    (info.param.leaf_compression ? "_leafvec" : "_basic") +
                                    (info.param.route_aggregation ? "_agg" : "_raw");
                         });

TEST(PoptrieUpdate, WithdrawEverythingReturnsToEmpty)
{
    // writer: single-threaded test — this thread is the sole updater.
    const psync::EbrWriterSection writer;
    const auto routes = corner_case_table();
    auto rib = load(routes);
    Config cfg;
    cfg.direct_bits = 16;
    Poptrie4 pt{rib, cfg};
    for (const auto& r : routes) pt.apply(rib, r.prefix, kNoRoute);
    pt.drain();
    EXPECT_EQ(rib.route_count(), 0u);
    workload::Xorshift128 rng(7);
    for (int i = 0; i < 100'000; ++i)
        ASSERT_EQ(pt.lookup(Ipv4Addr{rng.next()}), kNoRoute);
    // With direct pointing, an empty FIB needs no nodes and no leaves at
    // all: the pools must have been fully reclaimed (no leaks through the
    // retire/EBR path).
    const auto s = pt.stats();
    EXPECT_EQ(s.internal_nodes, 0u);
    EXPECT_EQ(s.leaves, 0u);
    EXPECT_EQ(s.node_pool_used, 0u);
    EXPECT_EQ(s.leaf_pool_used, 0u);
    POPTRIE_AUDIT_ASSERT(pt, rib);
}

TEST(PoptrieUpdate, ChurnDoesNotLeakPoolSpace)
{
    // Announce/withdraw the same set repeatedly: pool usage must return to
    // the same footprint every cycle (buddy coalescing + EBR reclamation).
    // writer: single-threaded test — this thread is the sole updater.
    const psync::EbrWriterSection writer;
    rib::RadixTrie<Ipv4Addr> rib;
    Config cfg;
    cfg.direct_bits = 16;
    Poptrie4 pt{rib, cfg};
    const auto routes = corner_case_table();
    std::size_t baseline_nodes = 0;
    std::size_t baseline_leaves = 0;
    for (int cycle = 0; cycle < 10; ++cycle) {
        for (const auto& r : routes) pt.apply(rib, r.prefix, r.next_hop);
        pt.drain();
        const auto s = pt.stats();
        if (cycle == 0) {
            baseline_nodes = s.node_pool_used;
            baseline_leaves = s.leaf_pool_used;
        } else {
            EXPECT_EQ(s.node_pool_used, baseline_nodes) << "cycle " << cycle;
            EXPECT_EQ(s.leaf_pool_used, baseline_leaves) << "cycle " << cycle;
        }
        for (const auto& r : routes) pt.apply(rib, r.prefix, kNoRoute);
        pt.drain();
        const auto e = pt.stats();
        EXPECT_EQ(e.node_pool_used, 0u) << "cycle " << cycle;
        EXPECT_EQ(e.leaf_pool_used, 0u) << "cycle " << cycle;
    }
}

TEST(PoptrieUpdate, FullInsertionMatchesBuild)
{
    // §4.9's second experiment: inserting a full table route-by-route in
    // randomized order ends at the same resolution as compiling at once.
    // writer: single-threaded test — this thread is the sole updater.
    const psync::EbrWriterSection writer;
    workload::TableGenConfig gen;
    gen.seed = 17;
    gen.target_routes = 5'000;
    gen.next_hops = 11;
    auto routes = workload::generate_table(gen);
    workload::Xorshift128 rng(8);
    for (std::size_t i = routes.size(); i > 1; --i)
        std::swap(routes[i - 1], routes[rng.next_below(static_cast<std::uint32_t>(i))]);

    rib::RadixTrie<Ipv4Addr> rib;
    Config cfg;
    cfg.direct_bits = 18;
    Poptrie4 pt{rib, cfg};
    for (const auto& r : routes) pt.apply(rib, r.prefix, r.next_hop);
    const Poptrie4 rebuilt{rib, cfg};
    for (int i = 0; i < 200'000; ++i) {
        const Ipv4Addr a{rng.next()};
        ASSERT_EQ(pt.lookup(a), rebuilt.lookup(a));
    }
    pt.drain();
    POPTRIE_AUDIT_ASSERT(pt, rib);
    POPTRIE_AUDIT_ASSERT(rebuilt, rib);
}

TEST(PoptrieUpdate, CountersAccumulate)
{
    rib::RadixTrie<Ipv4Addr> rib;
    Config cfg;
    cfg.direct_bits = 18;
    Poptrie4 pt{rib, cfg};
    pt.apply(rib, pfx("10.1.2.0/24"), 1);
    pt.apply(rib, pfx("10.1.2.128/25"), 2);
    const auto& c = pt.update_counters();
    EXPECT_EQ(c.updates, 2u);
    EXPECT_GT(c.leaves_allocated, 0u);
    EXPECT_GT(c.direct_stores, 0u);
}
