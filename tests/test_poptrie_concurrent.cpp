// Concurrency test for the §3.5 lock-free contract: reader threads doing
// lookups under EBR guards while one writer applies a continuous update
// feed. Every observed result must be a next hop that is plausible for the
// address — i.e. either the pre-update or post-update resolution — and the
// structure must never crash or read freed memory (run under TSan/ASan in CI
// for full effect; even without sanitizers, a publication bug makes this
// test return garbage next hops).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_set>

#include "helpers.hpp"
#include "poptrie/poptrie.hpp"
#include "workload/tablegen.hpp"
#include "workload/updatefeed.hpp"

using namespace testhelpers;
using poptrie::Config;
using poptrie::Poptrie4;

TEST(PoptrieConcurrent, ReadersSeeOnlyValidNextHops)
{
    // writer: this thread replays the feed alone; readers run in jthreads
    // under their own EbrDomain::Guard.
    const psync::EbrWriterSection writer;
    workload::TableGenConfig gen;
    gen.seed = 55;
    gen.target_routes = 30'000;
    gen.next_hops = 23;
    const auto routes = workload::generate_table(gen);
    auto rib = load(routes);

    Config cfg;
    cfg.direct_bits = 16;
    cfg.pool_headroom_log2 = 3;  // ample headroom: pool growth is not reader-safe
    Poptrie4 pt{rib, cfg};

    // The set of next hops that can legitimately appear at any time.
    workload::UpdateFeedConfig ucfg;
    ucfg.updates = 4'000;
    ucfg.next_hops = 23;
    const auto feed = workload::make_update_feed(routes, ucfg);

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> invalid{0};
    std::atomic<std::uint64_t> reads{0};

    std::vector<std::jthread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&, r] {
            auto slot = pt.register_reader();
            workload::Xorshift128 rng(1000 + r);
            while (!stop.load(std::memory_order_relaxed)) {
                const psync::EbrDomain::Guard g{slot};
                for (int i = 0; i < 512; ++i) {
                    const auto nh = pt.lookup(Ipv4Addr{rng.next()});
                    // Valid next hops are 0 (miss) or 1..23 (generator and
                    // feed both draw from 1..next_hops).
                    if (nh > 23) invalid.fetch_add(1, std::memory_order_relaxed);
                }
                reads.fetch_add(512, std::memory_order_relaxed);
            }
        });
    }

    for (const auto& ev : feed) pt.apply(rib, ev.prefix, ev.next_hop);
    // Let readers observe the final state for a moment.
    while (reads.load() < 1'000'000) std::this_thread::yield();
    stop = true;
    readers.clear();
    pt.drain();

    EXPECT_EQ(invalid.load(), 0u);
    EXPECT_EQ(pt.update_counters().pool_growths, 0u)
        << "headroom exhausted: the test premise (no growth under readers) broke";

    // Post-quiesce: exact equivalence with the updated RIB.
    workload::Xorshift128 rng(9);
    for (int i = 0; i < 200'000; ++i) {
        const Ipv4Addr a{rng.next()};
        ASSERT_EQ(pt.lookup(a), rib.lookup(a));
    }
}

TEST(PoptrieConcurrent, ReclamationMakesProgressUnderReaders)
{
    // writer: this thread churns one prefix alone; the reader jthread holds
    // its own EbrDomain::Guard.
    const psync::EbrWriterSection writer;
    rib::RadixTrie<Ipv4Addr> rib;
    Config cfg;
    cfg.direct_bits = 0;
    cfg.pool_headroom_log2 = 6;  // absorb the reclamation lag behind readers
    Poptrie4 pt{rib, cfg};
    std::atomic<bool> stop{false};
    std::jthread reader([&] {
        auto slot = pt.register_reader();
        workload::Xorshift128 rng(4);
        while (!stop.load(std::memory_order_relaxed)) {
            const psync::EbrDomain::Guard g{slot};
            for (int i = 0; i < 128; ++i) (void)pt.lookup(Ipv4Addr{rng.next()});
        }
    });
    // Churn one prefix: if grace periods never elapsed, pool usage would
    // climb monotonically and the headroom assert below would fail.
    const auto p = *netbase::parse_prefix4("10.1.2.0/24");
    for (int i = 0; i < 20'000; ++i)
        pt.apply(rib, p, static_cast<NextHop>(1 + (i % 9)));
    stop = true;
    reader = {};
    pt.drain();
    EXPECT_EQ(pt.update_counters().pool_growths, 0u);
    EXPECT_EQ(pt.lookup(*netbase::parse_ipv4("10.1.2.77")),
              static_cast<NextHop>(1 + (19'999 % 9)));
}
