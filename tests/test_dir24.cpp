// Tests for the DIR-24-8-BASIC baseline.
#include <gtest/gtest.h>

#include "baselines/dir24.hpp"
#include "helpers.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;
using baselines::Dir24;
using rib::kNoRoute;

namespace {
Prefix4 pfx(const char* text) { return *netbase::parse_prefix4(text); }
}  // namespace

TEST(Dir24, EmptyTableMisses)
{
    const rib::RadixTrie<Ipv4Addr> rib;
    const Dir24 d{rib};
    EXPECT_EQ(d.lookup(Ipv4Addr{0x01020304}), kNoRoute);
    EXPECT_EQ(d.chunk_count(), 0u);
}

TEST(Dir24, ShortPrefixOneAccess)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 3);
    rib.insert(pfx("10.1.2.0/24"), 4);
    const Dir24 d{rib};
    EXPECT_EQ(d.chunk_count(), 0u);  // nothing longer than /24
    EXPECT_EQ(d.lookup(*netbase::parse_ipv4("10.1.2.200")), 4);
    EXPECT_EQ(d.lookup(*netbase::parse_ipv4("10.1.3.200")), 3);
}

TEST(Dir24, LongPrefixSpillsToTbl8)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), 1);
    rib.insert(pfx("10.1.2.128/25"), 2);
    const Dir24 d{rib};
    EXPECT_EQ(d.chunk_count(), 1u);
    EXPECT_EQ(d.lookup(*netbase::parse_ipv4("10.1.2.127")), 1);
    EXPECT_EQ(d.lookup(*netbase::parse_ipv4("10.1.2.128")), 2);
    EXPECT_EQ(d.lookup(*netbase::parse_ipv4("10.1.2.255")), 2);
    EXPECT_EQ(d.lookup(*netbase::parse_ipv4("10.1.3.0")), 1);
}

TEST(Dir24, ExhaustiveOnDenseSlice)
{
    workload::Xorshift128 rng(4242);
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("0.0.0.0/0"), 1);
    for (int i = 0; i < 500; ++i) {
        const unsigned len = 16 + rng.next_below(17);
        const std::uint32_t addr = 0x0A140000u | (rng.next() & 0xFFFF);
        rib.insert(Prefix4{Ipv4Addr{addr}, len}, static_cast<NextHop>(2 + rng.next_below(6)));
    }
    const Dir24 d{rib};
    EXPECT_EQ(exhaustive_mismatches(
                  rib, [&](Ipv4Addr a) { return d.lookup(a); }, 0x0A13FF00u, 0x0A150100u),
              0u);
}

TEST(Dir24, MatchesRadixOnGeneratedTable)
{
    workload::TableGenConfig gen;
    gen.seed = 24;
    gen.target_routes = 40'000;
    gen.next_hops = 40;
    gen.igp_routes = 2'000;
    const auto routes = workload::generate_table(gen);
    const auto rib = load(routes);
    const Dir24 d{rib};
    EXPECT_EQ(boundary_and_random_mismatches(
                  rib, routes, [&](Ipv4Addr a) { return d.lookup(a); }, 300'000),
              0u);
}

TEST(Dir24, WideNextHopThrows)
{
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert(pfx("10.0.0.0/8"), static_cast<NextHop>(0x8001));
    EXPECT_THROW(Dir24{rib}, baselines::StructuralLimit);
}

TEST(LinearOracle, DeduplicatesWithReplaceSemantics)
{
    rib::RouteList<Ipv4Addr> routes{{pfx("10.0.0.0/8"), 1}, {pfx("10.0.0.0/8"), 5}};
    const baselines::LinearLpm4 l(routes);
    EXPECT_EQ(l.route_count(), 1u);
    EXPECT_EQ(l.lookup(*netbase::parse_ipv4("10.1.1.1")), 5);
    EXPECT_EQ(l.lookup(*netbase::parse_ipv4("11.1.1.1")), kNoRoute);
}
