// Tests for the text table format: round trips, comment/whitespace
// handling, and precise error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hpp"
#include "workload/tablegen.hpp"
#include "workload/tableio.hpp"

using namespace testhelpers;
using workload::TableIoError;

TEST(TableIo, RoundTripIpv4)
{
    workload::TableGenConfig gen;
    gen.seed = 51;
    gen.target_routes = 5'000;
    gen.igp_routes = 200;
    const auto routes = workload::generate_table(gen);
    std::stringstream buffer;
    workload::save_table(buffer, routes);
    const auto loaded = workload::load_table4(buffer);
    EXPECT_EQ(loaded, routes);
}

TEST(TableIo, RoundTripIpv6)
{
    workload::TableGen6Config gen;
    gen.seed = 52;
    gen.target_routes = 2'000;
    const auto routes = workload::generate_table6(gen);
    std::stringstream buffer;
    workload::save_table(buffer, routes);
    const auto loaded = workload::load_table6(buffer);
    EXPECT_EQ(loaded, routes);
}

TEST(TableIo, CommentsAndWhitespace)
{
    std::stringstream in{
        "# header comment\n"
        "\n"
        "  10.0.0.0/8 1  \n"
        "\t192.168.0.0/16\t42\t# trailing comment\n"
        "   # indented comment\n"};
    const auto routes = workload::load_table4(in);
    ASSERT_EQ(routes.size(), 2u);
    EXPECT_EQ(routes[0].prefix, *netbase::parse_prefix4("10.0.0.0/8"));
    EXPECT_EQ(routes[1].next_hop, 42);
}

TEST(TableIo, ErrorsCarryLineNumbers)
{
    const auto expect_error_at = [](const char* text, std::size_t line) {
        std::stringstream in{text};
        try {
            (void)workload::load_table4(in);
            FAIL() << "expected TableIoError for: " << text;
        } catch (const TableIoError& e) {
            EXPECT_EQ(e.line(), line) << e.what();
        }
    };
    expect_error_at("10.0.0.0/8 1\nbogus\n", 2);                  // no next hop
    expect_error_at("10.0.0.0/33 1\n", 1);                        // bad length
    expect_error_at("10.0.0.0/8 hop\n", 1);                       // bad hop
    expect_error_at("10.0.0.0/8 0\n", 1);                         // hop 0 reserved
    expect_error_at("10.0.0.0/8 70000\n", 1);                     // hop > 2^16-1
    expect_error_at("# fine\n10.0.0.0/8 1\n300.0.0.0/8 1\n", 3);  // bad octet
}

TEST(TableIo, MissingFileThrows)
{
    EXPECT_THROW((void)workload::load_table4_file("/nonexistent/table.txt"),
                 std::runtime_error);
}

TEST(TableIo, FileRoundTrip)
{
    const std::string path = testing::TempDir() + "/poptrie_tableio_test.txt";
    const auto routes = corner_case_table();
    workload::save_table_file(path, routes);
    const auto loaded = workload::load_table4_file(path);
    EXPECT_EQ(loaded, routes);
    std::remove(path.c_str());
}
