// Tests for the structural invariant auditor (analysis/audit.hpp): clean
// tables must audit clean across every configuration and through update
// churn, and — just as important — injected corruption must be *detected*.
// An auditor that never fires is indistinguishable from no auditor.
#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <string_view>

#include "analysis/audit.hpp"
#include "helpers.hpp"
#include "poptrie/poptrie.hpp"
#include "workload/tablegen.hpp"
#include "workload/updatefeed.hpp"

using namespace testhelpers;
using analysis::AuditAccess;
using analysis::AuditOptions;
using analysis::AuditReport;
using poptrie::Config;
using poptrie::Poptrie4;
using poptrie::Poptrie6;

namespace {

bool has_check(const AuditReport& r, std::string_view name)
{
    for (const auto& v : r.violations())
        if (v.check == name) return true;
    return false;
}

/// Indices of every reachable node, BFS order (roots first).
template <class Addr>
std::vector<std::uint32_t> reachable_nodes(const poptrie::Poptrie<Addr>& pt)
{
    const auto& nodes = AuditAccess::nodes(pt);
    std::vector<std::uint32_t> out;
    std::deque<std::uint32_t> queue;
    if (pt.config().direct_bits == 0) {
        queue.push_back(AuditAccess::root(pt));
    } else {
        for (const std::uint32_t v : AuditAccess::direct(pt))
            if (!(v & poptrie::Poptrie<Addr>::kDirectLeafBit)) queue.push_back(v);
    }
    while (!queue.empty()) {
        const auto idx = queue.front();
        queue.pop_front();
        out.push_back(idx);
        const auto& n = nodes[idx];
        const auto nkids = static_cast<unsigned>(netbase::popcount64(n.vector));
        for (unsigned i = 0; i < nkids; ++i) queue.push_back(n.base1 + i);
    }
    return out;
}

/// First reachable node satisfying `pred`, or nullopt.
template <class Addr, class Pred>
std::optional<std::uint32_t> find_node(const poptrie::Poptrie<Addr>& pt, Pred&& pred)
{
    for (const auto idx : reachable_nodes(pt))
        if (pred(AuditAccess::nodes(pt)[idx])) return idx;
    return std::nullopt;
}

}  // namespace

TEST(Audit, CleanOnCornerTableAllConfigs)
{
    const auto routes = corner_case_table();
    const auto rib = load(routes);
    for (const unsigned direct_bits : {0u, 12u, 16u, 18u}) {
        for (const bool leafvec : {true, false}) {
            for (const bool aggregate : {true, false}) {
                Config cfg;
                cfg.direct_bits = direct_bits;
                cfg.leaf_compression = leafvec;
                cfg.route_aggregation = aggregate;
                const Poptrie4 pt{rib, cfg};
                const auto report = analysis::audit(pt, rib);
                EXPECT_TRUE(report.ok())
                    << "direct_bits=" << direct_bits << " leafvec=" << leafvec
                    << " aggregate=" << aggregate << "\n"
                    << report.summary();
                EXPECT_GT(report.nodes_checked, 0u);
                EXPECT_GT(report.probes_checked, 0u);
            }
        }
    }
}

TEST(Audit, CleanOnEmptyTable)
{
    for (const unsigned direct_bits : {0u, 16u}) {
        Config cfg;
        cfg.direct_bits = direct_bits;
        const Poptrie4 pt{cfg};
        const rib::RadixTrie<Ipv4Addr> empty;
        const auto report = analysis::audit(pt, empty);
        EXPECT_TRUE(report.ok()) << report.summary();
    }
}

TEST(Audit, CleanThroughUpdateChurn)
{
    // writer: single-threaded test — this thread is the sole updater.
    const psync::EbrWriterSection writer;
    workload::TableGenConfig gen;
    gen.seed = 7;
    gen.target_routes = 20'000;
    gen.next_hops = 31;
    const auto routes = workload::generate_table(gen);
    auto rib = load(routes);

    Config cfg;
    cfg.direct_bits = 16;
    Poptrie4 pt{rib, cfg};
    analysis::audit_or_abort(pt, rib);

    workload::UpdateFeedConfig ucfg;
    ucfg.updates = 1'000;
    ucfg.next_hops = 31;
    const auto feed = workload::make_update_feed(routes, ucfg);

    // Cheap structural audit after every single update; full audit with
    // differential probing every 100.
    AuditOptions cheap;
    cheap.random_probes = 32;
    cheap.max_boundary_routes = 0;
    std::size_t applied = 0;
    for (const auto& ev : feed) {
        pt.apply(rib, ev.prefix, ev.next_hop);
        ++applied;
        const auto report = analysis::audit(pt, rib, cheap);
        ASSERT_TRUE(report.ok()) << "after update " << applied << "\n" << report.summary();
        if (applied % 100 == 0) analysis::audit_or_abort(pt, rib);
    }
    pt.drain();
    const auto final_report = analysis::audit(pt, rib);
    EXPECT_TRUE(final_report.ok()) << final_report.summary();
}

TEST(Audit, CleanIPv6ThroughUpdateChurn)
{
    // writer: single-threaded test — this thread is the sole updater.
    const psync::EbrWriterSection writer;
    workload::TableGen6Config gen;
    gen.seed = 3;
    const auto routes = workload::generate_table6(gen);
    rib::RadixTrie<netbase::Ipv6Addr> rib;
    rib.insert_all(routes);

    Config cfg;
    cfg.direct_bits = 16;
    Poptrie6 pt{rib, cfg};
    analysis::audit_or_abort(pt, rib);

    // Address-family-generic churn: withdraw, re-announce, revive.
    workload::Xorshift128 rng(99);
    std::vector<bool> live(routes.size(), true);
    AuditOptions cheap;
    cheap.random_probes = 32;
    cheap.max_boundary_routes = 0;
    for (int i = 0; i < 500; ++i) {
        const std::size_t j = rng.next_below(static_cast<std::uint32_t>(routes.size()));
        if (live[j] && rng.next_below(4) == 0) {
            pt.apply(rib, routes[j].prefix, rib::kNoRoute);
            live[j] = false;
        } else {
            pt.apply(rib, routes[j].prefix, static_cast<NextHop>(1 + rng.next_below(13)));
            live[j] = true;
        }
        const auto report = analysis::audit(pt, rib, cheap);
        ASSERT_TRUE(report.ok()) << "after update " << i << "\n" << report.summary();
    }
    pt.drain();
    analysis::audit_or_abort(pt, rib);
}

// ---------------------------------------------------------------------------
// Fault injection: every class of corruption the auditor claims to cover
// must actually trip it. All mutations go through AuditAccess on a fresh
// Poptrie so tests stay independent.

namespace {

Poptrie4 corner_poptrie(unsigned direct_bits = 0)
{
    Config cfg;
    cfg.direct_bits = direct_bits;
    return Poptrie4{load(corner_case_table()), cfg};
}

}  // namespace

TEST(AuditFaultInjection, DetectsClearedLeafRunStart)
{
    auto pt = corner_poptrie();
    const auto rib = load(corner_case_table());
    const auto idx = find_node(pt, [](const Poptrie4::Node& n) {
        return n.leafvec != 0 && n.vector != ~std::uint64_t{0};
    });
    ASSERT_TRUE(idx.has_value());
    auto& node = AuditAccess::nodes(pt)[*idx];
    node.leafvec &= node.leafvec - 1;  // clear the first run-start bit
    const auto report = analysis::audit(pt, rib);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_check(report, "leafvec-first-run-missing") ||
                has_check(report, "leaf-count-mismatch"))
        << report.summary();
}

TEST(AuditFaultInjection, DetectsLeafvecBitOnInternalSlot)
{
    auto pt = corner_poptrie();
    const auto rib = load(corner_case_table());
    const auto idx =
        find_node(pt, [](const Poptrie4::Node& n) { return n.vector != 0; });
    ASSERT_TRUE(idx.has_value());
    auto& node = AuditAccess::nodes(pt)[*idx];
    node.leafvec |= node.vector & (~node.vector + 1);  // lowest internal slot
    const auto report = analysis::audit(pt, rib);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_check(report, "leafvec-overlaps-vector")) << report.summary();
}

TEST(AuditFaultInjection, DetectsBase1OutOfRange)
{
    auto pt = corner_poptrie();
    const auto rib = load(corner_case_table());
    const auto idx =
        find_node(pt, [](const Poptrie4::Node& n) { return n.vector != 0; });
    ASSERT_TRUE(idx.has_value());
    AuditAccess::nodes(pt)[*idx].base1 = 0x0FFF'FFFFu;
    const auto report = analysis::audit(pt, rib);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_check(report, "node-run-out-of-range")) << report.summary();
}

TEST(AuditFaultInjection, DetectsBase0OutOfRange)
{
    auto pt = corner_poptrie();
    const auto rib = load(corner_case_table());
    const auto idx =
        find_node(pt, [](const Poptrie4::Node& n) { return n.leafvec != 0; });
    ASSERT_TRUE(idx.has_value());
    AuditAccess::nodes(pt)[*idx].base0 = 0x0FFF'FFFFu;
    const auto report = analysis::audit(pt, rib);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_check(report, "leaf-run-out-of-range")) << report.summary();
}

TEST(AuditFaultInjection, DetectsNonMinimalLeafRun)
{
    auto pt = corner_poptrie();
    const auto rib = load(corner_case_table());
    const auto idx = find_node(pt, [](const Poptrie4::Node& n) {
        return netbase::popcount64(n.leafvec) >= 2;
    });
    ASSERT_TRUE(idx.has_value());
    const auto& node = AuditAccess::nodes(pt)[*idx];
    auto& leaves = AuditAccess::leaves(pt);
    leaves[node.base0 + 1] = leaves[node.base0];
    const auto report = analysis::audit(pt, rib);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_check(report, "leaf-run-not-minimal")) << report.summary();
}

TEST(AuditFaultInjection, DetectsLeafValueCorruption)
{
    auto pt = corner_poptrie();
    const auto rib = load(corner_case_table());
    const auto idx =
        find_node(pt, [](const Poptrie4::Node& n) { return n.leafvec != 0; });
    ASSERT_TRUE(idx.has_value());
    const auto& node = AuditAccess::nodes(pt)[*idx];
    auto& leaves = AuditAccess::leaves(pt);
    leaves[node.base0] = static_cast<NextHop>(leaves[node.base0] + 7);
    const auto report = analysis::audit(pt, rib);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_check(report, "lookup-mismatch") ||
                has_check(report, "leaf-run-not-minimal"))
        << report.summary();
}

TEST(AuditFaultInjection, DetectsVectorCorruption)
{
    auto pt = corner_poptrie();
    const auto rib = load(corner_case_table());
    const auto idx =
        find_node(pt, [](const Poptrie4::Node& n) { return n.vector != 0; });
    ASSERT_TRUE(idx.has_value());
    AuditAccess::nodes(pt)[*idx].vector ^= 1;
    EXPECT_FALSE(analysis::audit(pt, rib).ok());
}

TEST(AuditFaultInjection, DetectsDirectSlotCorruption)
{
    auto pt = corner_poptrie(16);
    const auto rib = load(corner_case_table());
    auto& direct = AuditAccess::direct(pt);
    // Leaf payload above the 16-bit next-hop range.
    direct[0] = Poptrie4::kDirectLeafBit | 0x0001'0000u;
    auto report = analysis::audit(pt, rib);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_check(report, "direct-leaf-overflow")) << report.summary();

    // Internal index pointing outside the node pool.
    direct[0] = 0x0FFF'FFFFu;
    report = analysis::audit(pt, rib);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_check(report, "root-index-out-of-range")) << report.summary();
}

TEST(AuditFaultInjection, DetectsAliasedSubtree)
{
    auto pt = corner_poptrie(16);
    const auto rib = load(corner_case_table());
    auto& direct = AuditAccess::direct(pt);
    // Point two direct slots at the same internal node.
    std::optional<std::size_t> first;
    for (std::size_t d = 0; d < direct.size(); ++d) {
        if (direct[d] & Poptrie4::kDirectLeafBit) continue;
        if (!first) {
            first = d;
        } else {
            direct[d] = direct[*first];
            break;
        }
    }
    ASSERT_TRUE(first.has_value());
    const auto report = analysis::audit(pt, rib);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_check(report, "node-aliased") ||
                has_check(report, "node-runs-overlap"))
        << report.summary();
}

// ---------------------------------------------------------------------------
// Sub-auditors in isolation.

// Plays both EBR roles (reader guard + retire/drain) on one thread to walk
// the auditor through every domain state; TSA models capabilities
// per-function and would reject the role mix, so the body is NO_TSA — the
// single-threaded harness is the out-of-band safety argument.
static void audit_ebr_clean_domain_and_retire_flow() POPTRIE_NO_TSA
{
    psync::EbrDomain d;
    EXPECT_TRUE(analysis::audit_ebr(d).ok());
    auto reader = d.register_reader();
    int freed = 0;
    d.retire([&] { ++freed; });
    EXPECT_TRUE(analysis::audit_ebr(d).ok());
    {
        const psync::EbrDomain::Guard g{reader};
        EXPECT_TRUE(analysis::audit_ebr(d).ok());
    }
    d.drain();
    EXPECT_EQ(freed, 1);
    EXPECT_TRUE(analysis::audit_ebr(d).ok());
}

TEST(AuditEbr, CleanDomainAndRetireFlow) { audit_ebr_clean_domain_and_retire_flow(); }

TEST(AuditAllocator, CleanFreshAndAfterChurn)
{
    alloc::BuddyAllocator a{256};
    EXPECT_TRUE(analysis::audit_allocator(a).ok());
    workload::Xorshift128 rng(5);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> held;
    for (int step = 0; step < 3000; ++step) {
        if (held.empty() || (rng.next() & 1)) {
            const std::uint32_t want = 1 + rng.next_below(32);
            if (const auto got = a.allocate(want)) held.emplace_back(*got, want);
        } else {
            const auto i = rng.next_below(static_cast<std::uint32_t>(held.size()));
            a.free(held[i].first, held[i].second);
            held.erase(held.begin() + i);
        }
        if (step % 100 == 0) {
            const auto report = analysis::audit_allocator(a);
            ASSERT_TRUE(report.ok()) << report.summary();
        }
    }
    for (const auto& [off, count] : held) a.free(off, count);
    const auto report = analysis::audit_allocator(a);
    EXPECT_TRUE(report.ok()) << report.summary();
}
