// tests/test_scale.cpp — the million-route scale-out contracts (ctest label
// `scale`):
//   * golden-hash determinism of the scaled generators: the output is a pure
//     function of the config — same seed, same FIB, byte-for-byte, across
//     platforms and standard libraries (the hashes below were captured from
//     two independent runs and pin the cross-platform contract);
//   * compressed-leaf (Config::leaf_dict) lookup equivalence against basic
//     mode, through compact(), post-compact churn, recompaction, and a
//     snapshot round trip;
//   * the 32-bit pool/slot-index audit: unsatisfiable pool targets surface
//     as netbase::StructuralLimit, never UB or a silently-wrapped size.
#include <gtest/gtest.h>

#include <cstdint>

#include "alloc/buddy_allocator.hpp"
#include "netbase/structural_limit.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/radix_trie.hpp"
#include "snapshot/snapshot.hpp"
#include "workload/tablegen.hpp"
#include "workload/trafficgen.hpp"
#include "workload/xorshift.hpp"

namespace {

using netbase::Ipv4Addr;
using Rib4 = rib::RadixTrie<Ipv4Addr>;

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) { return (h ^ v) * 0x100000001B3ull; }

std::uint64_t hash_routes(const rib::RouteList<Ipv4Addr>& routes)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const auto& r : routes) {
        h = fnv(h, r.prefix.bits());
        h = fnv(h, r.prefix.length());
        h = fnv(h, r.next_hop);
    }
    return h;
}

std::uint64_t hash_routes6(const rib::RouteList<netbase::Ipv6Addr>& routes)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const auto& r : routes) {
        h = fnv(h, static_cast<std::uint64_t>(r.prefix.bits() >> 64));
        h = fnv(h, static_cast<std::uint64_t>(r.prefix.bits()));
        h = fnv(h, r.prefix.length());
        h = fnv(h, r.next_hop);
    }
    return h;
}

}  // namespace

// --- generator determinism -------------------------------------------------

TEST(ScaleGen, GoldenHashIpv4)
{
    workload::ScaledTableConfig cfg;
    cfg.seed = 42;
    cfg.target_routes = 100'000;
    cfg.next_hops = 100;
    const auto routes = workload::generate_scaled_table(cfg);
    ASSERT_EQ(routes.size(), 100'000u);
    EXPECT_EQ(hash_routes(routes), 0x22c9f675e9078530ull);
    // Same config again: byte-identical, not merely equal-sized.
    EXPECT_EQ(hash_routes(workload::generate_scaled_table(cfg)), 0x22c9f675e9078530ull);
}

TEST(ScaleGen, GoldenHashIpv6)
{
    workload::ScaledTable6Config cfg;
    cfg.seed = 42;
    cfg.target_routes = 50'000;
    cfg.next_hops = 100;
    const auto routes = workload::generate_scaled_table6(cfg);
    ASSERT_EQ(routes.size(), 50'000u);
    EXPECT_EQ(hash_routes6(routes), 0x3a4d0acab3fa47c5ull);
    EXPECT_EQ(hash_routes6(workload::generate_scaled_table6(cfg)), 0x3a4d0acab3fa47c5ull);
}

TEST(ScaleGen, GoldenHashTrace)
{
    workload::ScaledTableConfig cfg;
    cfg.seed = 42;
    cfg.target_routes = 200'000;
    cfg.next_hops = 100;
    const auto routes = workload::generate_scaled_table(cfg);
    workload::ScaledTraceConfig tc;
    tc.seed = 9;
    tc.packets = 1'000'000;
    const auto trace = workload::make_scaled_trace(routes, tc);
    ASSERT_EQ(trace.size(), 1'000'000u);
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const auto a : trace) h = fnv(h, a);
    EXPECT_EQ(h, 0x355a301ec8de9bb9ull);
}

TEST(ScaleGen, SeedChangesOutput)
{
    workload::ScaledTableConfig a;
    a.target_routes = 20'000;
    auto b = a;
    b.seed = a.seed + 1;
    EXPECT_NE(hash_routes(workload::generate_scaled_table(a)),
              hash_routes(workload::generate_scaled_table(b)));
}

TEST(ScaleGen, ExactTargetAndDefaultRoute)
{
    workload::ScaledTableConfig cfg;
    cfg.target_routes = 30'000;
    const auto routes = workload::generate_scaled_table(cfg);
    ASSERT_EQ(routes.size(), 30'000u);
    EXPECT_EQ(routes.front().prefix.length(), 0u);  // default-route anchor
}

TEST(ScaleGen, InfeasibleTargetIsStructuralLimit)
{
    // ~20M is the modeled IPv4 ceiling; 1e9 routes cannot fit the per-length
    // capacity caps and must be a clean rejection, not an endless loop.
    workload::ScaledTableConfig cfg;
    cfg.target_routes = 1'000'000'000;
    EXPECT_THROW((void)workload::generate_scaled_table(cfg), netbase::StructuralLimit);
}

// --- compressed-leaf vs basic equivalence ----------------------------------

namespace {

/// Builds basic and dict FIBs from the same 60k-route scaled table and
/// cross-checks every probe pattern the bench uses. Returns the pair for
/// further abuse.
struct DictPair {
    Rib4 rib;
    std::unique_ptr<poptrie::Poptrie4> basic;
    std::unique_ptr<poptrie::Poptrie4> dict;
};

DictPair make_pair_compacted(std::size_t n_routes)
{
    DictPair p;
    workload::ScaledTableConfig cfg;
    cfg.seed = 7;
    cfg.target_routes = n_routes;
    cfg.next_hops = 100;
    p.rib.insert_all(workload::generate_scaled_table(cfg));
    // quiescent: single-threaded test — no reader exists to wait for.
    const psync::QuiescentSection quiescent;
    poptrie::Config pc;
    pc.direct_bits = 18;
    p.basic = std::make_unique<poptrie::Poptrie4>(p.rib, pc);
    p.basic->compact();
    pc.leaf_dict = true;
    p.dict = std::make_unique<poptrie::Poptrie4>(p.rib, pc);
    p.dict->compact();
    return p;
}

void expect_equivalent(const DictPair& p, std::uint64_t seed, std::size_t probes)
{
    workload::Xorshift128 rng(seed);
    for (std::size_t i = 0; i < probes; ++i) {
        const std::uint32_t a = rng.next();
        const auto want = p.rib.lookup(Ipv4Addr{a});
        ASSERT_EQ(p.basic->lookup(Ipv4Addr{a}), want) << "basic diverged at " << a;
        ASSERT_EQ(p.dict->lookup(Ipv4Addr{a}), want) << "dict diverged at " << a;
    }
}

}  // namespace

TEST(ScaleDict, CompactedEquivalence)
{
    const auto p = make_pair_compacted(60'000);
    // The dictionary must actually be engaged, or this test proves nothing.
    const auto st = p.dict->stats();
    ASSERT_GT(st.leaf8_slots, 0u);
    ASSERT_GT(st.leaf_dict_entries, 0u);
    ASSERT_LE(st.leaf_dict_entries, 256u);
    EXPECT_LT(st.memory_bytes, p.basic->stats().memory_bytes);
    expect_equivalent(p, 0xABCD, 200'000);
}

TEST(ScaleDict, ChurnAndRecompactEquivalence)
{
    auto p = make_pair_compacted(60'000);
    // Post-compact churn: updates allocate plain 16-bit runs next to the
    // dict-coded ones; both modes must keep agreeing with the RIB oracle.
    workload::Xorshift128 rng(99);
    // quiescent: single-threaded test — no reader exists to wait for.
    const psync::QuiescentSection quiescent;
    for (int i = 0; i < 4'000; ++i) {
        const std::uint32_t bits = rng.next() & netbase::high_mask<std::uint32_t>(24);
        const netbase::Prefix4 pfx{Ipv4Addr{bits}, 24};
        const auto hop = static_cast<rib::NextHop>(1 + rng.next() % 100);
        // apply() inserts into the RIB itself; the second call sees the
        // route already present and recompiles to the same state.
        p.basic->apply(p.rib, pfx, hop);
        p.dict->apply(p.rib, pfx, hop);
    }
    p.basic->drain();
    p.dict->drain();
    expect_equivalent(p, 0x1234, 100'000);
    // Recompaction re-encodes the churned table from scratch.
    p.basic->compact();
    p.dict->compact();
    expect_equivalent(p, 0x5678, 100'000);
}

TEST(ScaleDict, SnapshotRoundTripEquivalence)
{
    const auto p = make_pair_compacted(60'000);
    std::vector<std::uint8_t> basic_img, dict_img;
    {
        // quiescent: single-threaded test — no reader exists to wait for.
        const psync::QuiescentSection quiescent;
        basic_img = snapshot::serialize(*p.basic);
        dict_img = snapshot::serialize(*p.dict);
    }
    const auto basic_fib =
        snapshot::SnapshotFib<Ipv4Addr>::load_buffer(basic_img.data(), basic_img.size());
    const auto dict_fib =
        snapshot::SnapshotFib<Ipv4Addr>::load_buffer(dict_img.data(), dict_img.size());
    EXPECT_FALSE(basic_fib.config().leaf_dict);
    EXPECT_TRUE(dict_fib.config().leaf_dict);
    EXPECT_GT(dict_fib.leaf8_count(), 0u);
    EXPECT_LT(dict_img.size(), basic_img.size());
    workload::Xorshift128 rng(0x9E37);
    for (std::size_t i = 0; i < 200'000; ++i) {
        const std::uint32_t a = rng.next();
        const auto want = p.rib.lookup(Ipv4Addr{a});
        ASSERT_EQ(basic_fib.lookup(Ipv4Addr{a}), want) << "snapshot basic diverged at " << a;
        ASSERT_EQ(dict_fib.lookup(Ipv4Addr{a}), want) << "snapshot dict diverged at " << a;
    }
}

// --- 32-bit index audit (satellite: clean StructuralLimit, never wrap) -----

TEST(ScaleLimits, BuddyCtorRejectsOverCapacity)
{
    using alloc::BuddyAllocator;
    EXPECT_NO_THROW(BuddyAllocator{BuddyAllocator::kMaxCapacity});
    EXPECT_THROW(BuddyAllocator{BuddyAllocator::kMaxCapacity + 1},
                 netbase::StructuralLimit);
}

TEST(ScaleLimits, BuddyGrowRejectsAtCeiling)
{
    alloc::BuddyAllocator a{alloc::BuddyAllocator::kMaxCapacity};
    EXPECT_EQ(a.capacity(), alloc::BuddyAllocator::kMaxCapacity);
    EXPECT_THROW(a.grow(), netbase::StructuralLimit);
}

TEST(ScaleLimits, HeadroomOverflowIsStructuralLimit)
{
    // 1M routes yield tens of thousands of internal nodes; with maximum
    // headroom (x 65536) the node-pool target exceeds the 2^31 slot-index
    // space, so the grow loop must hit the allocator ceiling and throw
    // before attempting any resize. The old uint32 arithmetic wrapped this
    // to a tiny target and built a corrupt table; it must be a clean
    // StructuralLimit instead. (A table small enough that the node target
    // stays below 2^31 would instead grow a multi-GiB node pool chasing the
    // leaf-pool overflow — the route count here is load-bearing.)
    workload::ScaledTableConfig cfg;
    cfg.seed = 3;
    cfg.target_routes = 1'000'000;
    Rib4 rib;
    rib.insert_all(workload::generate_scaled_table(cfg));
    poptrie::Config pc;
    pc.direct_bits = 18;
    pc.pool_headroom_log2 = poptrie::kMaxPoolHeadroomLog2;
    EXPECT_THROW((void)poptrie::Poptrie4(rib, pc), netbase::StructuralLimit);
}
