// Tests for the uncompressed multiway-trie baseline (paper Fig. 1) and for
// Poptrie's batched lookup extension.
#include <gtest/gtest.h>

#include "baselines/multiway.hpp"
#include "helpers.hpp"
#include "poptrie/poptrie.hpp"
#include "sync/annotations.hpp"
#include "workload/tablegen.hpp"

using namespace testhelpers;
using baselines::MultiwayTrie4;
using poptrie::Poptrie4;
using rib::kNoRoute;

TEST(Multiway, EmptyTableMisses)
{
    const rib::RadixTrie<Ipv4Addr> rib;
    const MultiwayTrie4 t{rib};
    EXPECT_EQ(t.lookup(Ipv4Addr{0x01020304}), kNoRoute);
    EXPECT_EQ(t.node_count(), 1u);
}

TEST(Multiway, MatchesRadixOnCornerTable)
{
    const auto routes = corner_case_table();
    const auto rib = load(routes);
    const MultiwayTrie4 t{rib};
    EXPECT_EQ(boundary_and_random_mismatches(
                  rib, routes, [&](Ipv4Addr a) { return t.lookup(a); }, 200'000),
              0u);
}

TEST(Multiway, MatchesRadixOnGeneratedTable)
{
    workload::TableGenConfig gen;
    gen.seed = 41;
    gen.target_routes = 40'000;
    gen.next_hops = 25;
    gen.igp_routes = 2'000;
    const auto routes = workload::generate_table(gen);
    const auto rib = load(routes);
    const MultiwayTrie4 t{rib};
    EXPECT_EQ(boundary_and_random_mismatches(
                  rib, routes, [&](Ipv4Addr a) { return t.lookup(a); }, 300'000),
              0u);
}

TEST(Multiway, CompressionAblation)
{
    // The whole point of §3.1: on the same table, the uncompressed Fig. 1
    // trie costs an order of magnitude more memory than Poptrie.
    workload::TableGenConfig gen;
    gen.seed = 42;
    gen.target_routes = 30'000;
    const auto rib = load(workload::generate_table(gen));
    const MultiwayTrie4 naive{rib};
    poptrie::Config cfg;
    cfg.direct_bits = 0;
    cfg.route_aggregation = false;
    const Poptrie4 pt{rib, cfg};
    EXPECT_GT(naive.memory_bytes(), pt.stats().memory_bytes * 8);
    // Same node population (both expand the same radix by 6-bit strides).
    EXPECT_EQ(naive.node_count(), pt.stats().internal_nodes);
}

TEST(Multiway, Ipv6)
{
    rib::RadixTrie<netbase::Ipv6Addr> rib;
    rib.insert(*netbase::parse_prefix6("2001:db8::/32"), 1);
    rib.insert(*netbase::parse_prefix6("2001:db8:1::/48"), 2);
    const baselines::MultiwayTrie<netbase::Ipv6Addr> t{rib};
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db8:1::7")), 2);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db8:2::7")), 1);
    EXPECT_EQ(t.lookup(*netbase::parse_ipv6("2001:db9::7")), kNoRoute);
}

// ---------------------------------------------------------------------------

class PoptrieBatch : public testing::TestWithParam<unsigned> {};

TEST_P(PoptrieBatch, MatchesScalarLookups)
{
    // reader: single-threaded test, no updater exists — the batch lookups
    // below are trivially inside a read-side critical section.
    const psync::EbrReadSection section;
    workload::TableGenConfig gen;
    gen.seed = 43;
    gen.target_routes = 30'000;
    gen.next_hops = 31;
    gen.igp_routes = 1'000;
    const auto rib = load(workload::generate_table(gen));
    poptrie::Config cfg;
    cfg.direct_bits = GetParam();
    const Poptrie4 pt{rib, cfg};

    workload::Xorshift128 rng(6);
    // Deliberately not a multiple of any lane width, to cover the tail path.
    std::vector<std::uint32_t> keys(100'003);
    for (auto& k : keys) k = rng.next();
    std::vector<rib::NextHop> out(keys.size());

    pt.lookup_batch<true, 8>(keys.data(), out.data(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        ASSERT_EQ(out[i], pt.lookup_raw<true>(keys[i])) << i;

    std::vector<rib::NextHop> out2(keys.size());
    pt.lookup_batch<true, 2>(keys.data(), out2.data(), keys.size());
    EXPECT_EQ(out, out2);

    std::vector<rib::NextHop> out4(keys.size());
    pt.lookup_batch<true, 16>(keys.data(), out4.data(), keys.size());
    EXPECT_EQ(out, out4);
}

INSTANTIATE_TEST_SUITE_P(DirectBits, PoptrieBatch, testing::Values(0u, 16u, 18u),
                         [](const testing::TestParamInfo<unsigned>& info) {
                             return "s" + std::to_string(info.param);
                         });

TEST(PoptrieBatch, EmptyAndTinyInputs)
{
    // reader: single-threaded test, no updater exists.
    const psync::EbrReadSection section;
    const auto rib = load(corner_case_table());
    const Poptrie4 pt{rib};
    std::vector<std::uint32_t> keys{0x0A200501u};
    std::vector<rib::NextHop> out(1, 0xFFFF);
    pt.lookup_batch<true>(keys.data(), out.data(), 0);  // no-op
    EXPECT_EQ(out[0], 0xFFFF);
    pt.lookup_batch<true>(keys.data(), out.data(), 1);  // pure tail path
    EXPECT_EQ(out[0], pt.lookup(Ipv4Addr{keys[0]}));
}

TEST(PoptrieBatch, BasicModeAgrees)
{
    // reader: single-threaded test, no updater exists.
    const psync::EbrReadSection section;
    const auto rib = load(corner_case_table());
    poptrie::Config cfg;
    cfg.leaf_compression = false;
    cfg.route_aggregation = false;
    const Poptrie4 pt{rib, cfg};
    workload::Xorshift128 rng(7);
    std::vector<std::uint32_t> keys(4'099);
    for (auto& k : keys) k = rng.next();
    std::vector<rib::NextHop> out(keys.size());
    pt.lookup_batch<false>(keys.data(), out.data(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        ASSERT_EQ(out[i], pt.lookup_raw<false>(keys[i]));
}
