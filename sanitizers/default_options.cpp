// sanitizers/default_options.cpp — baked-in default sanitizer runtime
// options for test and tool executables.
//
// The sanitizer runtimes call these hooks (if defined) before reading the
// *SAN_OPTIONS environment variables, so the suppression files in this
// directory are picked up automatically by `ctest` with no environment
// plumbing — and an explicit environment variable still overrides every
// default here. The file is only added to executables when the build was
// configured with POPTRIE_SANITIZE; hooks for runtimes that are not linked
// are simply never called.
#ifdef POPTRIE_SANITIZER_SUPP_DIR

extern "C" {

const char* __asan_default_options()
{
    return "suppressions=" POPTRIE_SANITIZER_SUPP_DIR "/asan.supp"
           ":detect_stack_use_after_return=1";
}

const char* __lsan_default_options()
{
    return "suppressions=" POPTRIE_SANITIZER_SUPP_DIR "/lsan.supp";
}

const char* __ubsan_default_options()
{
    return "suppressions=" POPTRIE_SANITIZER_SUPP_DIR "/ubsan.supp"
           ":print_stacktrace=1:halt_on_error=1";
}

const char* __tsan_default_options()
{
    return "suppressions=" POPTRIE_SANITIZER_SUPP_DIR "/tsan.supp"
           ":halt_on_error=1:second_deadlock_stack=1";
}

}  // extern "C"

#endif  // POPTRIE_SANITIZER_SUPP_DIR
