# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_netbase[1]_include.cmake")
include("/root/repo/build/tests/test_buddy[1]_include.cmake")
include("/root/repo/build/tests/test_ebr[1]_include.cmake")
include("/root/repo/build/tests/test_radix[1]_include.cmake")
include("/root/repo/build/tests/test_patricia[1]_include.cmake")
include("/root/repo/build/tests/test_aggregate[1]_include.cmake")
include("/root/repo/build/tests/test_poptrie_build[1]_include.cmake")
include("/root/repo/build/tests/test_poptrie_lookup[1]_include.cmake")
include("/root/repo/build/tests/test_poptrie_update[1]_include.cmake")
include("/root/repo/build/tests/test_poptrie_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_treebitmap[1]_include.cmake")
include("/root/repo/build/tests/test_dxr[1]_include.cmake")
include("/root/repo/build/tests/test_sail[1]_include.cmake")
include("/root/repo/build/tests/test_lulea[1]_include.cmake")
include("/root/repo/build/tests/test_dir24[1]_include.cmake")
include("/root/repo/build/tests/test_multiway_batch[1]_include.cmake")
include("/root/repo/build/tests/test_ipv6[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_tableio[1]_include.cmake")
include("/root/repo/build/tests/test_router[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_benchkit[1]_include.cmake")
