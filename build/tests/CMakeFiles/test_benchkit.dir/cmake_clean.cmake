file(REMOVE_RECURSE
  "CMakeFiles/test_benchkit.dir/test_benchkit.cpp.o"
  "CMakeFiles/test_benchkit.dir/test_benchkit.cpp.o.d"
  "test_benchkit"
  "test_benchkit.pdb"
  "test_benchkit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
