file(REMOVE_RECURSE
  "CMakeFiles/test_sail.dir/test_sail.cpp.o"
  "CMakeFiles/test_sail.dir/test_sail.cpp.o.d"
  "test_sail"
  "test_sail.pdb"
  "test_sail[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
