# Empty dependencies file for test_sail.
# This may be replaced when dependencies are built.
