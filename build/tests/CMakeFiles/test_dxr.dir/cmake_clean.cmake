file(REMOVE_RECURSE
  "CMakeFiles/test_dxr.dir/test_dxr.cpp.o"
  "CMakeFiles/test_dxr.dir/test_dxr.cpp.o.d"
  "test_dxr"
  "test_dxr.pdb"
  "test_dxr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dxr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
