# Empty compiler generated dependencies file for test_dxr.
# This may be replaced when dependencies are built.
