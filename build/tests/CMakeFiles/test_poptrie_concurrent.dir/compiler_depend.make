# Empty compiler generated dependencies file for test_poptrie_concurrent.
# This may be replaced when dependencies are built.
