file(REMOVE_RECURSE
  "CMakeFiles/test_poptrie_concurrent.dir/test_poptrie_concurrent.cpp.o"
  "CMakeFiles/test_poptrie_concurrent.dir/test_poptrie_concurrent.cpp.o.d"
  "test_poptrie_concurrent"
  "test_poptrie_concurrent.pdb"
  "test_poptrie_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poptrie_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
