# Empty dependencies file for test_multiway_batch.
# This may be replaced when dependencies are built.
