file(REMOVE_RECURSE
  "CMakeFiles/test_multiway_batch.dir/test_multiway_batch.cpp.o"
  "CMakeFiles/test_multiway_batch.dir/test_multiway_batch.cpp.o.d"
  "test_multiway_batch"
  "test_multiway_batch.pdb"
  "test_multiway_batch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiway_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
