# Empty compiler generated dependencies file for test_treebitmap.
# This may be replaced when dependencies are built.
