file(REMOVE_RECURSE
  "CMakeFiles/test_treebitmap.dir/test_treebitmap.cpp.o"
  "CMakeFiles/test_treebitmap.dir/test_treebitmap.cpp.o.d"
  "test_treebitmap"
  "test_treebitmap.pdb"
  "test_treebitmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_treebitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
