file(REMOVE_RECURSE
  "CMakeFiles/test_lulea.dir/test_lulea.cpp.o"
  "CMakeFiles/test_lulea.dir/test_lulea.cpp.o.d"
  "test_lulea"
  "test_lulea.pdb"
  "test_lulea[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lulea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
