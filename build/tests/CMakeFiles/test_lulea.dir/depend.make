# Empty dependencies file for test_lulea.
# This may be replaced when dependencies are built.
