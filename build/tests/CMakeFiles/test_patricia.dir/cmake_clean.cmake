file(REMOVE_RECURSE
  "CMakeFiles/test_patricia.dir/test_patricia.cpp.o"
  "CMakeFiles/test_patricia.dir/test_patricia.cpp.o.d"
  "test_patricia"
  "test_patricia.pdb"
  "test_patricia[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_patricia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
