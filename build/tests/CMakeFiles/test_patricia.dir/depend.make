# Empty dependencies file for test_patricia.
# This may be replaced when dependencies are built.
