# Empty compiler generated dependencies file for test_poptrie_build.
# This may be replaced when dependencies are built.
