file(REMOVE_RECURSE
  "CMakeFiles/test_poptrie_build.dir/test_poptrie_build.cpp.o"
  "CMakeFiles/test_poptrie_build.dir/test_poptrie_build.cpp.o.d"
  "test_poptrie_build"
  "test_poptrie_build.pdb"
  "test_poptrie_build[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poptrie_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
