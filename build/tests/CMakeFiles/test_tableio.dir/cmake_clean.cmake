file(REMOVE_RECURSE
  "CMakeFiles/test_tableio.dir/test_tableio.cpp.o"
  "CMakeFiles/test_tableio.dir/test_tableio.cpp.o.d"
  "test_tableio"
  "test_tableio.pdb"
  "test_tableio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tableio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
