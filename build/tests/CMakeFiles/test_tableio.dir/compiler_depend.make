# Empty compiler generated dependencies file for test_tableio.
# This may be replaced when dependencies are built.
