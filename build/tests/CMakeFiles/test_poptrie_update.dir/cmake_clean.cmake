file(REMOVE_RECURSE
  "CMakeFiles/test_poptrie_update.dir/test_poptrie_update.cpp.o"
  "CMakeFiles/test_poptrie_update.dir/test_poptrie_update.cpp.o.d"
  "test_poptrie_update"
  "test_poptrie_update.pdb"
  "test_poptrie_update[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poptrie_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
