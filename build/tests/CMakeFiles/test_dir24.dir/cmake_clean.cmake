file(REMOVE_RECURSE
  "CMakeFiles/test_dir24.dir/test_dir24.cpp.o"
  "CMakeFiles/test_dir24.dir/test_dir24.cpp.o.d"
  "test_dir24"
  "test_dir24.pdb"
  "test_dir24[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dir24.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
