# Empty dependencies file for test_dir24.
# This may be replaced when dependencies are built.
