# Empty dependencies file for test_poptrie_lookup.
# This may be replaced when dependencies are built.
