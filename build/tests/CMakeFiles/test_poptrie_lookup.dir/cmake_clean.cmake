file(REMOVE_RECURSE
  "CMakeFiles/test_poptrie_lookup.dir/test_poptrie_lookup.cpp.o"
  "CMakeFiles/test_poptrie_lookup.dir/test_poptrie_lookup.cpp.o.d"
  "test_poptrie_lookup"
  "test_poptrie_lookup.pdb"
  "test_poptrie_lookup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poptrie_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
