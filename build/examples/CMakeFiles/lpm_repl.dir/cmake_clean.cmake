file(REMOVE_RECURSE
  "CMakeFiles/lpm_repl.dir/lpm_repl.cpp.o"
  "CMakeFiles/lpm_repl.dir/lpm_repl.cpp.o.d"
  "lpm_repl"
  "lpm_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpm_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
