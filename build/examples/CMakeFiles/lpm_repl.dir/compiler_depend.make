# Empty compiler generated dependencies file for lpm_repl.
# This may be replaced when dependencies are built.
