# Empty compiler generated dependencies file for ipv6_lookup.
# This may be replaced when dependencies are built.
