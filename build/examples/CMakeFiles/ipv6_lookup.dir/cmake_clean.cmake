file(REMOVE_RECURSE
  "CMakeFiles/ipv6_lookup.dir/ipv6_lookup.cpp.o"
  "CMakeFiles/ipv6_lookup.dir/ipv6_lookup.cpp.o.d"
  "ipv6_lookup"
  "ipv6_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipv6_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
