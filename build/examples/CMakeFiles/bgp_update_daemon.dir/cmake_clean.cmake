file(REMOVE_RECURSE
  "CMakeFiles/bgp_update_daemon.dir/bgp_update_daemon.cpp.o"
  "CMakeFiles/bgp_update_daemon.dir/bgp_update_daemon.cpp.o.d"
  "bgp_update_daemon"
  "bgp_update_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_update_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
