# Empty dependencies file for bgp_update_daemon.
# This may be replaced when dependencies are built.
