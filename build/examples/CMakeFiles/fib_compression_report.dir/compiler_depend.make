# Empty compiler generated dependencies file for fib_compression_report.
# This may be replaced when dependencies are built.
