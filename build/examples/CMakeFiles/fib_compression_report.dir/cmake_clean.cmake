file(REMOVE_RECURSE
  "CMakeFiles/fib_compression_report.dir/fib_compression_report.cpp.o"
  "CMakeFiles/fib_compression_report.dir/fib_compression_report.cpp.o.d"
  "fib_compression_report"
  "fib_compression_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fib_compression_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
