
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/software_router.cpp" "examples/CMakeFiles/software_router.dir/software_router.cpp.o" "gcc" "examples/CMakeFiles/software_router.dir/software_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/poptrie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/benchkit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
