# Empty dependencies file for software_router.
# This may be replaced when dependencies are built.
