file(REMOVE_RECURSE
  "CMakeFiles/software_router.dir/software_router.cpp.o"
  "CMakeFiles/software_router.dir/software_router.cpp.o.d"
  "software_router"
  "software_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
