file(REMOVE_RECURSE
  "CMakeFiles/netbase.dir/netbase/ipv4.cpp.o"
  "CMakeFiles/netbase.dir/netbase/ipv4.cpp.o.d"
  "CMakeFiles/netbase.dir/netbase/ipv6.cpp.o"
  "CMakeFiles/netbase.dir/netbase/ipv6.cpp.o.d"
  "CMakeFiles/netbase.dir/netbase/prefix.cpp.o"
  "CMakeFiles/netbase.dir/netbase/prefix.cpp.o.d"
  "libnetbase.a"
  "libnetbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
