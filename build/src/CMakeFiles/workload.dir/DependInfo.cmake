
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/datasets.cpp" "src/CMakeFiles/workload.dir/workload/datasets.cpp.o" "gcc" "src/CMakeFiles/workload.dir/workload/datasets.cpp.o.d"
  "/root/repo/src/workload/tablegen.cpp" "src/CMakeFiles/workload.dir/workload/tablegen.cpp.o" "gcc" "src/CMakeFiles/workload.dir/workload/tablegen.cpp.o.d"
  "/root/repo/src/workload/tableio.cpp" "src/CMakeFiles/workload.dir/workload/tableio.cpp.o" "gcc" "src/CMakeFiles/workload.dir/workload/tableio.cpp.o.d"
  "/root/repo/src/workload/trafficgen.cpp" "src/CMakeFiles/workload.dir/workload/trafficgen.cpp.o" "gcc" "src/CMakeFiles/workload.dir/workload/trafficgen.cpp.o.d"
  "/root/repo/src/workload/updatefeed.cpp" "src/CMakeFiles/workload.dir/workload/updatefeed.cpp.o" "gcc" "src/CMakeFiles/workload.dir/workload/updatefeed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
