file(REMOVE_RECURSE
  "CMakeFiles/workload.dir/workload/datasets.cpp.o"
  "CMakeFiles/workload.dir/workload/datasets.cpp.o.d"
  "CMakeFiles/workload.dir/workload/tablegen.cpp.o"
  "CMakeFiles/workload.dir/workload/tablegen.cpp.o.d"
  "CMakeFiles/workload.dir/workload/tableio.cpp.o"
  "CMakeFiles/workload.dir/workload/tableio.cpp.o.d"
  "CMakeFiles/workload.dir/workload/trafficgen.cpp.o"
  "CMakeFiles/workload.dir/workload/trafficgen.cpp.o.d"
  "CMakeFiles/workload.dir/workload/updatefeed.cpp.o"
  "CMakeFiles/workload.dir/workload/updatefeed.cpp.o.d"
  "libworkload.a"
  "libworkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
