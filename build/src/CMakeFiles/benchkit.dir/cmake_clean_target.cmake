file(REMOVE_RECURSE
  "libbenchkit.a"
)
