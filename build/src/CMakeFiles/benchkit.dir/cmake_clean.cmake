file(REMOVE_RECURSE
  "CMakeFiles/benchkit.dir/benchkit/cli.cpp.o"
  "CMakeFiles/benchkit.dir/benchkit/cli.cpp.o.d"
  "CMakeFiles/benchkit.dir/benchkit/cycles.cpp.o"
  "CMakeFiles/benchkit.dir/benchkit/cycles.cpp.o.d"
  "CMakeFiles/benchkit.dir/benchkit/runner.cpp.o"
  "CMakeFiles/benchkit.dir/benchkit/runner.cpp.o.d"
  "CMakeFiles/benchkit.dir/benchkit/stats.cpp.o"
  "CMakeFiles/benchkit.dir/benchkit/stats.cpp.o.d"
  "CMakeFiles/benchkit.dir/benchkit/table_printer.cpp.o"
  "CMakeFiles/benchkit.dir/benchkit/table_printer.cpp.o.d"
  "libbenchkit.a"
  "libbenchkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
