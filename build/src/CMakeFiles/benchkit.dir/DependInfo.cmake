
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchkit/cli.cpp" "src/CMakeFiles/benchkit.dir/benchkit/cli.cpp.o" "gcc" "src/CMakeFiles/benchkit.dir/benchkit/cli.cpp.o.d"
  "/root/repo/src/benchkit/cycles.cpp" "src/CMakeFiles/benchkit.dir/benchkit/cycles.cpp.o" "gcc" "src/CMakeFiles/benchkit.dir/benchkit/cycles.cpp.o.d"
  "/root/repo/src/benchkit/runner.cpp" "src/CMakeFiles/benchkit.dir/benchkit/runner.cpp.o" "gcc" "src/CMakeFiles/benchkit.dir/benchkit/runner.cpp.o.d"
  "/root/repo/src/benchkit/stats.cpp" "src/CMakeFiles/benchkit.dir/benchkit/stats.cpp.o" "gcc" "src/CMakeFiles/benchkit.dir/benchkit/stats.cpp.o.d"
  "/root/repo/src/benchkit/table_printer.cpp" "src/CMakeFiles/benchkit.dir/benchkit/table_printer.cpp.o" "gcc" "src/CMakeFiles/benchkit.dir/benchkit/table_printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
