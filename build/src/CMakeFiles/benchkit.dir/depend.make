# Empty dependencies file for benchkit.
# This may be replaced when dependencies are built.
