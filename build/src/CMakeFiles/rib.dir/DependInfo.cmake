
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rib/aggregate.cpp" "src/CMakeFiles/rib.dir/rib/aggregate.cpp.o" "gcc" "src/CMakeFiles/rib.dir/rib/aggregate.cpp.o.d"
  "/root/repo/src/rib/patricia.cpp" "src/CMakeFiles/rib.dir/rib/patricia.cpp.o" "gcc" "src/CMakeFiles/rib.dir/rib/patricia.cpp.o.d"
  "/root/repo/src/rib/radix_trie.cpp" "src/CMakeFiles/rib.dir/rib/radix_trie.cpp.o" "gcc" "src/CMakeFiles/rib.dir/rib/radix_trie.cpp.o.d"
  "/root/repo/src/rib/table_stats.cpp" "src/CMakeFiles/rib.dir/rib/table_stats.cpp.o" "gcc" "src/CMakeFiles/rib.dir/rib/table_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
