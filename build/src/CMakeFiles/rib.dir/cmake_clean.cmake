file(REMOVE_RECURSE
  "CMakeFiles/rib.dir/rib/aggregate.cpp.o"
  "CMakeFiles/rib.dir/rib/aggregate.cpp.o.d"
  "CMakeFiles/rib.dir/rib/patricia.cpp.o"
  "CMakeFiles/rib.dir/rib/patricia.cpp.o.d"
  "CMakeFiles/rib.dir/rib/radix_trie.cpp.o"
  "CMakeFiles/rib.dir/rib/radix_trie.cpp.o.d"
  "CMakeFiles/rib.dir/rib/table_stats.cpp.o"
  "CMakeFiles/rib.dir/rib/table_stats.cpp.o.d"
  "librib.a"
  "librib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
