file(REMOVE_RECURSE
  "librib.a"
)
