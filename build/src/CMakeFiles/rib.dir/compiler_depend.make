# Empty compiler generated dependencies file for rib.
# This may be replaced when dependencies are built.
