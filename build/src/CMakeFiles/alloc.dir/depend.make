# Empty dependencies file for alloc.
# This may be replaced when dependencies are built.
