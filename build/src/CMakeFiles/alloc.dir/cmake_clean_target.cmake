file(REMOVE_RECURSE
  "liballoc.a"
)
