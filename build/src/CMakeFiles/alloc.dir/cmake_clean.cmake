file(REMOVE_RECURSE
  "CMakeFiles/alloc.dir/alloc/buddy_allocator.cpp.o"
  "CMakeFiles/alloc.dir/alloc/buddy_allocator.cpp.o.d"
  "liballoc.a"
  "liballoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
