file(REMOVE_RECURSE
  "CMakeFiles/baselines.dir/baselines/dir24.cpp.o"
  "CMakeFiles/baselines.dir/baselines/dir24.cpp.o.d"
  "CMakeFiles/baselines.dir/baselines/dxr.cpp.o"
  "CMakeFiles/baselines.dir/baselines/dxr.cpp.o.d"
  "CMakeFiles/baselines.dir/baselines/linear.cpp.o"
  "CMakeFiles/baselines.dir/baselines/linear.cpp.o.d"
  "CMakeFiles/baselines.dir/baselines/lulea.cpp.o"
  "CMakeFiles/baselines.dir/baselines/lulea.cpp.o.d"
  "CMakeFiles/baselines.dir/baselines/sail.cpp.o"
  "CMakeFiles/baselines.dir/baselines/sail.cpp.o.d"
  "CMakeFiles/baselines.dir/baselines/treebitmap.cpp.o"
  "CMakeFiles/baselines.dir/baselines/treebitmap.cpp.o.d"
  "libbaselines.a"
  "libbaselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
