
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dir24.cpp" "src/CMakeFiles/baselines.dir/baselines/dir24.cpp.o" "gcc" "src/CMakeFiles/baselines.dir/baselines/dir24.cpp.o.d"
  "/root/repo/src/baselines/dxr.cpp" "src/CMakeFiles/baselines.dir/baselines/dxr.cpp.o" "gcc" "src/CMakeFiles/baselines.dir/baselines/dxr.cpp.o.d"
  "/root/repo/src/baselines/linear.cpp" "src/CMakeFiles/baselines.dir/baselines/linear.cpp.o" "gcc" "src/CMakeFiles/baselines.dir/baselines/linear.cpp.o.d"
  "/root/repo/src/baselines/lulea.cpp" "src/CMakeFiles/baselines.dir/baselines/lulea.cpp.o" "gcc" "src/CMakeFiles/baselines.dir/baselines/lulea.cpp.o.d"
  "/root/repo/src/baselines/sail.cpp" "src/CMakeFiles/baselines.dir/baselines/sail.cpp.o" "gcc" "src/CMakeFiles/baselines.dir/baselines/sail.cpp.o.d"
  "/root/repo/src/baselines/treebitmap.cpp" "src/CMakeFiles/baselines.dir/baselines/treebitmap.cpp.o" "gcc" "src/CMakeFiles/baselines.dir/baselines/treebitmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
