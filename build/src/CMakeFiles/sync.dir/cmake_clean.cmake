file(REMOVE_RECURSE
  "CMakeFiles/sync.dir/sync/ebr.cpp.o"
  "CMakeFiles/sync.dir/sync/ebr.cpp.o.d"
  "libsync.a"
  "libsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
