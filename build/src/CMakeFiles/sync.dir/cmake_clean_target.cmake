file(REMOVE_RECURSE
  "libsync.a"
)
