# Empty dependencies file for sync.
# This may be replaced when dependencies are built.
