# Empty compiler generated dependencies file for poptrie.
# This may be replaced when dependencies are built.
