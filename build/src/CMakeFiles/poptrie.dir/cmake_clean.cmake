file(REMOVE_RECURSE
  "CMakeFiles/poptrie.dir/poptrie/poptrie.cpp.o"
  "CMakeFiles/poptrie.dir/poptrie/poptrie.cpp.o.d"
  "libpoptrie.a"
  "libpoptrie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poptrie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
