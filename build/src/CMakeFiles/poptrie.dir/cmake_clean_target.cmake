file(REMOVE_RECURSE
  "libpoptrie.a"
)
