file(REMOVE_RECURSE
  "../bench/bench_ablation_options"
  "../bench/bench_ablation_options.pdb"
  "CMakeFiles/bench_ablation_options.dir/bench_ablation_options.cpp.o"
  "CMakeFiles/bench_ablation_options.dir/bench_ablation_options.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
