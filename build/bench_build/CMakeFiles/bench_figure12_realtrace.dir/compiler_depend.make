# Empty compiler generated dependencies file for bench_figure12_realtrace.
# This may be replaced when dependencies are built.
