file(REMOVE_RECURSE
  "../bench/bench_figure12_realtrace"
  "../bench/bench_figure12_realtrace.pdb"
  "CMakeFiles/bench_figure12_realtrace.dir/bench_figure12_realtrace.cpp.o"
  "CMakeFiles/bench_figure12_realtrace.dir/bench_figure12_realtrace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure12_realtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
