file(REMOVE_RECURSE
  "../bench/bench_figure9_datasets"
  "../bench/bench_figure9_datasets.pdb"
  "CMakeFiles/bench_figure9_datasets.dir/bench_figure9_datasets.cpp.o"
  "CMakeFiles/bench_figure9_datasets.dir/bench_figure9_datasets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure9_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
