# Empty compiler generated dependencies file for bench_figure9_datasets.
# This may be replaced when dependencies are built.
