# Empty compiler generated dependencies file for bench_table6_ipv6.
# This may be replaced when dependencies are built.
