file(REMOVE_RECURSE
  "../bench/bench_table6_ipv6"
  "../bench/bench_table6_ipv6.pdb"
  "CMakeFiles/bench_table6_ipv6.dir/bench_table6_ipv6.cpp.o"
  "CMakeFiles/bench_table6_ipv6.dir/bench_table6_ipv6.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_ipv6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
