file(REMOVE_RECURSE
  "../bench/bench_figure11_depth_cycles"
  "../bench/bench_figure11_depth_cycles.pdb"
  "CMakeFiles/bench_figure11_depth_cycles.dir/bench_figure11_depth_cycles.cpp.o"
  "CMakeFiles/bench_figure11_depth_cycles.dir/bench_figure11_depth_cycles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure11_depth_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
