# Empty compiler generated dependencies file for bench_figure11_depth_cycles.
# This may be replaced when dependencies are built.
