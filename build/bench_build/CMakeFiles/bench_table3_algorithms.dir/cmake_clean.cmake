file(REMOVE_RECURSE
  "../bench/bench_table3_algorithms"
  "../bench/bench_table3_algorithms.pdb"
  "CMakeFiles/bench_table3_algorithms.dir/bench_table3_algorithms.cpp.o"
  "CMakeFiles/bench_table3_algorithms.dir/bench_table3_algorithms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
