file(REMOVE_RECURSE
  "../bench/bench_table2_extensions"
  "../bench/bench_table2_extensions.pdb"
  "CMakeFiles/bench_table2_extensions.dir/bench_table2_extensions.cpp.o"
  "CMakeFiles/bench_table2_extensions.dir/bench_table2_extensions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
