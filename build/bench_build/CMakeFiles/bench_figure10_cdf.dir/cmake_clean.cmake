file(REMOVE_RECURSE
  "../bench/bench_figure10_cdf"
  "../bench/bench_figure10_cdf.pdb"
  "CMakeFiles/bench_figure10_cdf.dir/bench_figure10_cdf.cpp.o"
  "CMakeFiles/bench_figure10_cdf.dir/bench_figure10_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure10_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
