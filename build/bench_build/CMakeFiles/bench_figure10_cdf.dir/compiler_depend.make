# Empty compiler generated dependencies file for bench_figure10_cdf.
# This may be replaced when dependencies are built.
