file(REMOVE_RECURSE
  "../bench/bench_figure7_radix_depth"
  "../bench/bench_figure7_radix_depth.pdb"
  "CMakeFiles/bench_figure7_radix_depth.dir/bench_figure7_radix_depth.cpp.o"
  "CMakeFiles/bench_figure7_radix_depth.dir/bench_figure7_radix_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7_radix_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
