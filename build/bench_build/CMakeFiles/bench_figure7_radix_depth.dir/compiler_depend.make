# Empty compiler generated dependencies file for bench_figure7_radix_depth.
# This may be replaced when dependencies are built.
