file(REMOVE_RECURSE
  "../bench/bench_figure8_multicore"
  "../bench/bench_figure8_multicore.pdb"
  "CMakeFiles/bench_figure8_multicore.dir/bench_figure8_multicore.cpp.o"
  "CMakeFiles/bench_figure8_multicore.dir/bench_figure8_multicore.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure8_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
