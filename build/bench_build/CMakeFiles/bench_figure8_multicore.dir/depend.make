# Empty dependencies file for bench_figure8_multicore.
# This may be replaced when dependencies are built.
