# Empty dependencies file for bench_table4_cycles.
# This may be replaced when dependencies are built.
