// lpm_repl — an interactive FIB workbench on stdin/stdout, tying the whole
// public API together: table files, the generator, the incremental updater
// and the statistics. Pipe commands in or type them:
//
//   $ ./lpm_repl my_table.txt          # or no argument for a generated table
//   > lookup 8.8.8.8
//   8.8.8.8 -> next hop 7 (matched via RIB: 8.0.0.0/9)
//   > add 8.8.8.0/24 42
//   > del 8.0.0.0/9
//   > stats
//   > bench 4000000
//   > save /tmp/table.txt
//   > quit
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "poptrie/poptrie.hpp"
#include "workload/tablegen.hpp"
#include "workload/tableio.hpp"
#include "workload/xorshift.hpp"

namespace {

void help()
{
    std::printf("commands:\n"
                "  lookup <addr>        longest-prefix match\n"
                "  add <prefix> <hop>   announce/replace a route (incremental update)\n"
                "  del <prefix>         withdraw a route\n"
                "  stats                table and FIB statistics\n"
                "  bench [n]            n random lookups (default 4M)\n"
                "  save <path>          write the table to a file\n"
                "  help | quit\n");
}

}  // namespace

int main(int argc, char** argv)
{
    using netbase::Ipv4Addr;

    rib::RadixTrie<Ipv4Addr> rib;
    if (argc > 1) {
        try {
            const auto routes = workload::load_table4_file(argv[1]);
            rib.insert_all(routes);
            std::printf("loaded %zu routes from %s\n", routes.size(), argv[1]);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error loading %s: %s\n", argv[1], e.what());
            return 1;
        }
    } else {
        workload::TableGenConfig gen;
        gen.target_routes = 100'000;
        gen.next_hops = 64;
        gen.igp_routes = 4'000;
        rib.insert_all(workload::generate_table(gen));
        std::printf("no table file given: generated %zu synthetic routes\n",
                    rib.route_count());
    }
    poptrie::Poptrie4 fib{rib};
    std::printf("FIB compiled (Poptrie18). Type 'help' for commands.\n");

    std::string line;
    while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
        std::istringstream in(line);
        std::string cmd;
        if (!(in >> cmd)) continue;
        if (cmd == "quit" || cmd == "exit") break;
        if (cmd == "help") {
            help();
        } else if (cmd == "lookup") {
            std::string text;
            in >> text;
            const auto addr = netbase::parse_ipv4(text);
            if (!addr) {
                std::printf("malformed address '%s'\n", text.c_str());
                continue;
            }
            const auto hop = fib.lookup(*addr);
            const auto detail = rib.lookup_detail(*addr);
            if (hop == rib::kNoRoute) {
                std::printf("%s -> no route (radix searched %u bits deep)\n", text.c_str(),
                            detail.radix_depth);
            } else {
                std::printf("%s -> next hop %u (matched /%u, radix depth %u)\n",
                            text.c_str(), hop, detail.matched_length, detail.radix_depth);
            }
        } else if (cmd == "add") {
            std::string ptext;
            unsigned hop = 0;
            in >> ptext >> hop;
            const auto prefix = netbase::parse_prefix4(ptext);
            if (!prefix || hop == 0 || hop > 0xFFFF) {
                std::printf("usage: add <a.b.c.d/len> <hop 1..65535>\n");
                continue;
            }
            fib.apply(rib, *prefix, static_cast<rib::NextHop>(hop));
            std::printf("announced %s -> %u (%zu routes)\n",
                        netbase::to_string(*prefix).c_str(), hop, rib.route_count());
        } else if (cmd == "del") {
            std::string ptext;
            in >> ptext;
            const auto prefix = netbase::parse_prefix4(ptext);
            if (!prefix) {
                std::printf("usage: del <a.b.c.d/len>\n");
                continue;
            }
            const auto had = rib.find(*prefix) != rib::kNoRoute;
            fib.apply(rib, *prefix, rib::kNoRoute);
            std::printf(had ? "withdrawn %s (%zu routes)\n" : "%s was not present (%zu routes)\n",
                        netbase::to_string(*prefix).c_str(), rib.route_count());
        } else if (cmd == "stats") {
            const auto s = fib.stats();
            const auto& u = fib.update_counters();
            std::printf("RIB: %zu routes, %zu radix nodes (%.2f MiB)\n", rib.route_count(),
                        rib.node_count(),
                        static_cast<double>(rib.memory_bytes()) / 1048576.0);
            std::printf("FIB: %zu inodes, %zu leaves, %.2f MiB; %llu updates applied\n",
                        s.internal_nodes, s.leaves,
                        static_cast<double>(s.memory_bytes) / 1048576.0,
                        static_cast<unsigned long long>(u.updates));
        } else if (cmd == "bench") {
            std::size_t n = 4'000'000;
            in >> n;
            workload::Xorshift128 rng(1);
            std::uint64_t sink = 0;
            const auto t0 = std::chrono::steady_clock::now();
            for (std::size_t i = 0; i < n; ++i) sink += fib.lookup_raw<true>(rng.next());
            const double secs =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
            std::printf("%zu random lookups in %.3f s = %.1f Mlps (checksum %llx)\n", n, secs,
                        static_cast<double>(n) / secs / 1e6,
                        static_cast<unsigned long long>(sink));
        } else if (cmd == "save") {
            std::string path;
            in >> path;
            try {
                workload::save_table_file(path, rib.routes());
                std::printf("saved %zu routes to %s\n", rib.route_count(), path.c_str());
            } catch (const std::exception& e) {
                std::printf("save failed: %s\n", e.what());
            }
        } else {
            std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
        }
    }
    return 0;
}
