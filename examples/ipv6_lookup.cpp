// ipv6_lookup — §4.10's claim in practice: the same Poptrie template works
// unchanged over 128-bit keys. Builds an IPv6 FIB, shows longest-prefix
// semantics down to /128 host routes, compares against DXR6, and measures
// the random-lookup rate inside 2000::/8.
//
// Run:  ./ipv6_lookup
#include <chrono>
#include <cstdio>

#include "baselines/dxr.hpp"
#include "poptrie/poptrie.hpp"
#include "workload/tablegen.hpp"
#include "workload/xorshift.hpp"

int main()
{
    using netbase::Ipv6Addr;
    using netbase::u128;

    // A small curated table, then a generated 20k-prefix one.
    rib::RadixTrie<Ipv6Addr> rib;
    const struct {
        const char* prefix;
        rib::NextHop next_hop;
    } routes[] = {
        {"::/0", 1},
        {"2000::/3", 2},
        {"2001:db8::/32", 3},
        {"2001:db8:cafe::/48", 4},
        {"2001:db8:cafe:1::/64", 5},
        {"2001:db8:cafe:1::42/128", 6},
    };
    for (const auto& r : routes) rib.insert(*netbase::parse_prefix6(r.prefix), r.next_hop);
    const poptrie::Poptrie6 fib{rib};

    std::printf("longest-prefix matching over nested IPv6 prefixes:\n");
    for (const char* dst :
         {"2001:db8:cafe:1::42", "2001:db8:cafe:1::43", "2001:db8:cafe:2::1",
          "2001:db8:1::1", "2002::1", "fe80::1"}) {
        const auto addr = *netbase::parse_ipv6(dst);
        std::printf("  %-22s -> next hop %u\n", dst, fib.lookup(addr));
    }

    // Full-size table + throughput.
    std::printf("\nbuilding a %u-prefix IPv6 table (lengths peaked at /32 and /48)...\n",
                20'440);
    workload::TableGen6Config gen;
    const auto big_routes = workload::generate_table6(gen);
    rib::RadixTrie<Ipv6Addr> big;
    big.insert_all(big_routes);
    const auto t0 = std::chrono::steady_clock::now();
    const poptrie::Poptrie6 big_fib{big};
    const double build_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    const auto s = big_fib.stats();
    std::printf("  compiled in %.1f ms: %zu inodes, %zu leaves, %.0f KiB\n", build_ms,
                s.internal_nodes, s.leaves, static_cast<double>(s.memory_bytes) / 1024.0);

    const baselines::Dxr6 dxr{big, 18};
    const auto bench = [&](const char* name, auto&& lookup) {
        workload::Xorshift128 rng(1);
        std::uint64_t sink = 0;
        const std::size_t n = 4'000'000;
        const auto b0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < n; ++i) {
            u128 v = (static_cast<u128>(rng.next()) << 96) |
                     (static_cast<u128>(rng.next()) << 64) |
                     (static_cast<u128>(rng.next()) << 32) | rng.next();
            v = (v & ~(u128{0xFF} << 120)) | (u128{0x20} << 120);  // inside 2000::/8
            sink += lookup(Ipv6Addr{v});
        }
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - b0).count();
        std::printf("  %-10s %.1f Mlps (checksum %llx)\n", name,
                    static_cast<double>(n) / secs / 1e6,
                    static_cast<unsigned long long>(sink));
    };
    std::printf("\nrandom lookups in 2000::/8 (paper: Poptrie18 211 Mlps, D18R 170):\n");
    bench("Poptrie18", [&](Ipv6Addr a) { return big_fib.lookup(a); });
    bench("DXR6(18)", [&](Ipv6Addr a) { return dxr.lookup(a); });
    bench("Radix", [&](Ipv6Addr a) { return big.lookup(a); });
    return 0;
}
