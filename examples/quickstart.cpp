// quickstart — the five-minute tour of the public API:
//   1. parse routes into a RIB (the binary radix trie),
//   2. compile a Poptrie FIB from it,
//   3. look up addresses,
//   4. apply a live route change with the lock-free incremental updater,
//   5. read the size statistics.
//
// Run:  ./quickstart
#include <cstdio>

#include "poptrie/poptrie.hpp"

int main()
{
    using netbase::Ipv4Addr;

    // 1. A RIB with a handful of routes. Next hops are 16-bit FIB indices;
    //    in a real router they index an adjacency table.
    rib::RadixTrie<Ipv4Addr> rib;
    const struct {
        const char* prefix;
        rib::NextHop next_hop;
    } routes[] = {
        {"0.0.0.0/0", 1},       // default route
        {"10.0.0.0/8", 2},      // corporate aggregate
        {"10.32.0.0/11", 3},    // region
        {"10.32.5.0/24", 4},    // site
        {"10.32.5.192/28", 5},  // rack (hole-punches the /24)
        {"192.0.2.0/24", 6},
    };
    for (const auto& r : routes) rib.insert(*netbase::parse_prefix4(r.prefix), r.next_hop);

    // 2. Compile the FIB. The default Config is the paper's best variant
    //    ("Poptrie18": leafvec compression + route aggregation + direct
    //    pointing over the top 18 bits).
    const poptrie::Poptrie4 fib{rib};

    // 3. Longest-prefix-match lookups.
    for (const char* dst : {"10.32.5.200", "10.32.5.1", "10.32.99.1", "10.200.0.1",
                            "192.0.2.55", "8.8.8.8"}) {
        const auto addr = *netbase::parse_ipv4(dst);
        std::printf("%-14s -> next hop %u (radix agrees: %s)\n", dst, fib.lookup(addr),
                    fib.lookup(addr) == rib.lookup(addr) ? "yes" : "NO!");
    }

    // 4. A BGP update arrives: 10.32.0.0/11 moves to next hop 7. apply()
    //    updates the RIB and patches the FIB in place; concurrent readers
    //    (none here) would keep working throughout.
    poptrie::Poptrie4 live{rib};
    live.apply(rib, *netbase::parse_prefix4("10.32.0.0/11"), 7);
    std::printf("\nafter update: 10.32.99.1 -> next hop %u (was 3)\n",
                live.lookup(*netbase::parse_ipv4("10.32.99.1")));

    // 5. Structure statistics (the numbers Table 2 reports).
    const auto s = fib.stats();
    std::printf("\nFIB size: %zu internal nodes, %zu leaves, %.1f KiB"
                " (plus %.0f KiB direct-pointing array)\n",
                s.internal_nodes, s.leaves,
                static_cast<double>(s.internal_nodes * 24 + s.leaves * 2) / 1024.0,
                static_cast<double>(s.direct_slots * 4) / 1024.0);
    return 0;
}
