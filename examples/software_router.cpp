// software_router — the paper's motivating scenario (§1): a software IP
// forwarding plane on commodity CPUs. This example simulates the data plane
// end to end:
//
//   * a full-size Tier-1-like FIB (half a million routes),
//   * a synthetic packet stream with realistic destination locality,
//   * N forwarding threads sharing one read-only Poptrie,
//   * per-next-hop forwarding counters and a drop path for lookup misses,
//   * a throughput report against the 100GbE wire-rate bar (148.8 Mlps).
//
// Run:  ./software_router [threads] [million_packets]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "poptrie/poptrie.hpp"
#include "workload/datasets.hpp"
#include "workload/trafficgen.hpp"

int main(int argc, char** argv)
{
    using netbase::Ipv4Addr;
    const unsigned threads = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2;
    const std::size_t packets =
        (argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8) * 1'000'000;

    std::printf("building FIB from a Tier-1-like table...\n");
    const auto spec = workload::real_tier1_a();
    const auto routes = workload::make_table(spec);
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert_all(routes);
    const poptrie::Poptrie4 fib{rib};
    const auto stats = fib.stats();
    std::printf("  %zu routes -> %.2f MiB FIB (%zu inodes, %zu leaves)\n", routes.size(),
                static_cast<double>(stats.memory_bytes) / 1048576.0, stats.internal_nodes,
                stats.leaves);

    std::printf("generating %zu packets of locality-realistic traffic...\n", packets);
    workload::TraceConfig tc;
    tc.packets = packets;
    tc.distinct_destinations = 100'000;
    const auto trace = workload::make_real_trace_like(rib, tc);

    // Forwarding plane: each thread owns a slice of the stream (a hardware
    // RSS queue would do this on a real box) and counts per-hop packets.
    std::printf("forwarding on %u thread(s)...\n", threads);
    std::vector<std::vector<std::uint64_t>> counters(
        threads, std::vector<std::uint64_t>(65536, 0));
    std::vector<std::uint64_t> drops(threads, 0);
    const auto t0 = std::chrono::steady_clock::now();
    {
        std::vector<std::jthread> workers;
        for (unsigned w = 0; w < threads; ++w) {
            workers.emplace_back([&, w] {
                auto& mine = counters[w];
                const std::size_t lo = trace.size() * w / threads;
                const std::size_t hi = trace.size() * (w + 1) / threads;
                for (std::size_t i = lo; i < hi; ++i) {
                    const auto hop = fib.lookup_raw<true>(trace[i]);
                    if (hop == rib::kNoRoute)
                        ++drops[w];
                    else
                        ++mine[hop];
                }
            });
        }
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    std::uint64_t forwarded = 0;
    std::uint64_t dropped = 0;
    std::vector<std::pair<std::uint64_t, unsigned>> top;
    for (unsigned hop = 0; hop < 65536; ++hop) {
        std::uint64_t n = 0;
        for (unsigned w = 0; w < threads; ++w) n += counters[w][hop];
        forwarded += n;
        if (n > 0) top.push_back({n, hop});
    }
    for (const auto d : drops) dropped += d;
    std::sort(top.rbegin(), top.rend());

    const double mlps = static_cast<double>(trace.size()) / secs / 1e6;
    std::printf("\nforwarded %llu packets (%llu dropped/no-route) in %.2f s = %.1f Mlps\n",
                static_cast<unsigned long long>(forwarded),
                static_cast<unsigned long long>(dropped), secs, mlps);
    std::printf("100GbE wire rate needs 148.8 Mlps: this plane sustains %.1f%% of it\n",
                100.0 * mlps / 148.8);
    std::printf("\ntop next hops by traffic:\n");
    for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size()); ++i)
        std::printf("  next hop %5u: %llu packets (%.1f%%)\n", top[i].second,
                    static_cast<unsigned long long>(top[i].first),
                    100.0 * static_cast<double>(top[i].first) /
                        static_cast<double>(forwarded));
    return 0;
}
