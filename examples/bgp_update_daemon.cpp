// bgp_update_daemon — the §3.5 story end to end: a control-plane thread
// applies a live BGP update feed to the FIB with the lock-free incremental
// updater while data-plane threads keep looking up packets the whole time,
// protected only by epoch guards (no locks anywhere on the read path).
//
// Prints update latency percentiles, the replaced-objects-per-update
// accounting the paper reports in §4.9, and the reader throughput observed
// *while the table was being modified*.
//
// Run:  ./bgp_update_daemon [updates] [reader_threads]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "benchkit/stats.hpp"
#include "poptrie/poptrie.hpp"
#include "workload/datasets.hpp"
#include "workload/updatefeed.hpp"
#include "workload/xorshift.hpp"

int main(int argc, char** argv)
{
    using netbase::Ipv4Addr;
    const std::size_t n_updates =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 23'446;
    const unsigned n_readers = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 2;

    std::printf("loading RV-linx-p52-like table and compiling Poptrie18...\n");
    auto specs = workload::routeviews_specs();
    const auto& spec = specs[2];  // RV-linx-p52, the paper's update dataset
    const auto routes = workload::make_table(spec);
    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert_all(routes);
    poptrie::Config cfg;
    cfg.direct_bits = 18;
    cfg.pool_headroom_log2 = 3;  // room for churn without pool growth
    poptrie::Poptrie4 fib{rib, cfg};

    workload::UpdateFeedConfig ucfg;
    ucfg.updates = n_updates;
    ucfg.next_hops = spec.config.next_hops;
    const auto feed = workload::make_update_feed(routes, ucfg);
    std::printf("feed: %zu updates (%s)\n", feed.size(), spec.name.c_str());

    // Data plane: free-running readers.
    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> reader_lookups(n_readers, 0);
    std::vector<std::jthread> readers;
    for (unsigned r = 0; r < n_readers; ++r) {
        readers.emplace_back([&, r] {
            auto slot = fib.register_reader();
            workload::Xorshift128 rng(100 + r);
            std::uint64_t count = 0;
            std::uint64_t sink = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                const psync::EbrDomain::Guard g{slot};
                for (int i = 0; i < 1024; ++i) sink += fib.lookup_raw<true>(rng.next());
                count += 1024;
            }
            reader_lookups[r] = count;
            if (sink == 42) std::printf("!");  // consume
        });
    }

    // Control plane: apply the feed, timing each update.
    std::vector<std::uint64_t> latencies_ns;
    latencies_ns.reserve(feed.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& ev : feed) {
        const auto u0 = std::chrono::steady_clock::now();
        fib.apply(rib, ev.prefix, ev.next_hop);
        latencies_ns.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - u0)
                .count()));
    }
    const double total_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    stop = true;
    readers.clear();
    {
        // writer: every reader jthread joined on the line above.
        const psync::EbrWriterSection writer;
        fib.drain();
    }

    const benchkit::Percentiles lat(std::move(latencies_ns));
    const auto& c = fib.update_counters();
    std::printf("\napplied %llu updates in %.2f s: mean %.2f us, p50 %.2f us,"
                " p99 %.2f us (paper mean: 2.51 us)\n",
                static_cast<unsigned long long>(c.updates), total_secs, lat.mean() / 1e3,
                lat.percentile(50) / 1e3, lat.percentile(99) / 1e3);
    std::printf("replaced per update: %.3f direct slots, %.2f inodes, %.2f leaves"
                " (paper: 0.041 / 0.48 / 6.05)\n",
                static_cast<double>(c.direct_stores) / static_cast<double>(c.updates),
                static_cast<double>(c.nodes_allocated) / static_cast<double>(c.updates),
                static_cast<double>(c.leaves_allocated) / static_cast<double>(c.updates));
    std::printf("pool growths (reader-unsafe events): %llu\n",
                static_cast<unsigned long long>(c.pool_growths));

    std::uint64_t total_lookups = 0;
    for (const auto n : reader_lookups) total_lookups += n;
    std::printf("\nreaders sustained %.1f Mlps aggregate *during* the update storm\n",
                static_cast<double>(total_lookups) / total_secs / 1e6);

    // Sanity: the FIB now matches the RIB everywhere (sampled).
    workload::Xorshift128 rng(7);
    std::size_t bad = 0;
    for (int i = 0; i < 1'000'000; ++i) {
        const Ipv4Addr a{rng.next()};
        if (fib.lookup(a) != rib.lookup(a)) ++bad;
    }
    std::printf("post-feed consistency check vs RIB: %zu mismatches in 1M probes\n", bad);
    return bad == 0 ? 0 : 1;
}
