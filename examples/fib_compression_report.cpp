// fib_compression_report — a table-engineering tool built on the library:
// given a (generated) routing table, reports how each §3 mechanism earns its
// keep — route aggregation at the RIB level, leafvec compression, direct
// pointing — and how every structure in the repository sizes up on the same
// table. Useful for choosing a configuration for a given memory budget.
//
// Run:  ./fib_compression_report [routes] [next_hops]
#include <cstdio>
#include <cstdlib>

#include "baselines/dir24.hpp"
#include "baselines/dxr.hpp"
#include "baselines/lulea.hpp"
#include "baselines/sail.hpp"
#include "baselines/treebitmap.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/aggregate.hpp"
#include "rib/patricia.hpp"
#include "rib/table_stats.hpp"
#include "workload/tablegen.hpp"

int main(int argc, char** argv)
{
    using netbase::Ipv4Addr;
    workload::TableGenConfig gen;
    gen.target_routes =
        argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 520'000;
    gen.next_hops = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 13;
    gen.igp_routes = gen.target_routes / 35;

    const auto routes = workload::generate_table(gen);
    const auto stats = rib::compute_stats(routes);
    std::printf("table: %zu prefixes, %zu next hops, longest /%u\n", stats.prefix_count,
                stats.distinct_next_hops, stats.max_length);
    std::printf("prefix length histogram (non-zero):\n  ");
    for (unsigned l = 0; l <= 32; ++l)
        if (stats.length_histogram[l] != 0)
            std::printf("/%u:%zu  ", l, stats.length_histogram[l]);
    std::printf("\n\n");

    rib::RadixTrie<Ipv4Addr> rib;
    rib.insert_all(routes);
    const auto aggregated = rib::aggregate_routes(rib);
    std::printf("route aggregation (S3): %zu -> %zu routes (-%.1f%%)\n", routes.size(),
                aggregated.size(),
                100.0 * (1.0 - static_cast<double>(aggregated.size()) /
                                   static_cast<double>(routes.size())));

    const auto mib = [](std::size_t bytes) {
        return static_cast<double>(bytes) / 1048576.0;
    };
    std::printf("\nPoptrie configuration space (memory in MiB):\n");
    std::printf("  %-28s %10s %10s %8s\n", "config", "inodes", "leaves", "MiB");
    for (const bool leafvec : {false, true}) {
        for (const bool agg : {false, true}) {
            for (const unsigned s : {0u, 16u, 18u}) {
                poptrie::Config cfg;
                cfg.leaf_compression = leafvec;
                cfg.route_aggregation = agg;
                cfg.direct_bits = s;
                const poptrie::Poptrie4 pt{rib, cfg};
                const auto ps = pt.stats();
                char name[64];
                std::snprintf(name, sizeof name, "%s%s s=%u",
                              leafvec ? "leafvec" : "basic  ", agg ? "+agg" : "    ", s);
                std::printf("  %-28s %10zu %10zu %8.2f\n", name, ps.internal_nodes,
                            ps.leaves, mib(ps.memory_bytes));
            }
        }
    }

    std::printf("\nall structures on the aggregated table:\n");
    rib::RadixTrie<Ipv4Addr> fib_src;
    fib_src.insert_all(aggregated);
    std::printf("  %-24s %8.2f MiB\n", "Radix (raw RIB)", mib(rib.memory_bytes()));
    {
        rib::PatriciaTrie<Ipv4Addr> patricia;
        patricia.insert_all(routes);
        std::printf("  %-24s %8.2f MiB\n", "Patricia (raw RIB)", mib(patricia.memory_bytes()));
    }
    std::printf("  %-24s %8.2f MiB\n", "Tree BitMap (16-ary)",
                mib(baselines::TreeBitmap16{fib_src}.memory_bytes()));
    std::printf("  %-24s %8.2f MiB\n", "Tree BitMap (64-ary)",
                mib(baselines::TreeBitmap64{fib_src}.memory_bytes()));
    try {
        std::printf("  %-24s %8.2f MiB\n", "SAIL",
                    mib(baselines::Sail{fib_src}.memory_bytes()));
    } catch (const baselines::StructuralLimit& e) {
        std::printf("  %-24s %s\n", "SAIL", e.what());
    }
    try {
        std::printf("  %-24s %8.2f MiB\n", "Lulea (1997)",
                    mib(baselines::Lulea{fib_src}.memory_bytes()));
    } catch (const baselines::StructuralLimit& e) {
        std::printf("  %-24s %s\n", "Lulea (1997)", e.what());
    }
    try {
        std::printf("  %-24s %8.2f MiB\n", "D18R",
                    mib(baselines::Dxr{fib_src, {.direct_bits = 18}}.memory_bytes()));
    } catch (const baselines::StructuralLimit& e) {
        std::printf("  %-24s %s\n", "D18R", e.what());
    }
    try {
        std::printf("  %-24s %8.2f MiB\n", "DIR-24-8",
                    mib(baselines::Dir24{fib_src}.memory_bytes()));
    } catch (const baselines::StructuralLimit& e) {
        std::printf("  %-24s %s\n", "DIR-24-8", e.what());
    }
    return 0;
}
