#include "benchkit/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "benchkit/table_printer.hpp"

namespace benchkit {

MeanStd mean_std(const std::vector<double>& samples)
{
    MeanStd r;
    if (samples.empty()) return r;
    r.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
             static_cast<double>(samples.size());
    if (samples.size() > 1) {
        double ss = 0;
        for (const double v : samples) ss += (v - r.mean) * (v - r.mean);
        r.std = std::sqrt(ss / static_cast<double>(samples.size() - 1));
    }
    return r;
}

double median(std::vector<double> samples)
{
    if (samples.empty()) return 0;
    const auto mid = samples.size() / 2;
    std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid),
                     samples.end());
    const double hi = samples[mid];
    if (samples.size() % 2 == 1) return hi;
    const double lo =
        *std::max_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid));
    return (lo + hi) / 2.0;
}

double mad(std::vector<double> samples)
{
    if (samples.empty()) return 0;
    const double m = median(samples);
    for (double& v : samples) v = std::abs(v - m);
    return median(std::move(samples));
}

Percentiles::Percentiles(std::vector<std::uint64_t> samples) : sorted_(std::move(samples))
{
    std::sort(sorted_.begin(), sorted_.end());
    if (!sorted_.empty())
        mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
                static_cast<double>(sorted_.size());
}

double Percentiles::percentile(double q) const noexcept
{
    if (sorted_.empty()) return 0;
    const double pos = q / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return static_cast<double>(sorted_[lo]) * (1 - frac) +
           static_cast<double>(sorted_[hi]) * frac;
}

std::vector<double> Percentiles::cdf_at(const std::vector<std::uint64_t>& xs) const
{
    std::vector<double> out;
    out.reserve(xs.size());
    for (const auto x : xs) {
        const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
        out.push_back(sorted_.empty()
                          ? 0.0
                          : static_cast<double>(it - sorted_.begin()) /
                                static_cast<double>(sorted_.size()));
    }
    return out;
}

Candle candle(std::vector<std::uint64_t> samples)
{
    const Percentiles p(std::move(samples));
    Candle c;
    c.p5 = p.percentile(5);
    c.p25 = p.percentile(25);
    c.p50 = p.percentile(50);
    c.p75 = p.percentile(75);
    c.p95 = p.percentile(95);
    c.n = p.count();
    return c;
}

Reservoir::Reservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    // Same seed mixing as workload::Xorshift128, inlined so stats.hpp does
    // not grow a workload include for one PRNG.
    rng_state_[0] = 123456789u ^ static_cast<std::uint32_t>(seed);
    rng_state_[1] = 362436069u ^ static_cast<std::uint32_t>(seed >> 32);
    rng_state_[2] = 521288629u ^ static_cast<std::uint32_t>(seed * 0x9E3779B9u);
    rng_state_[3] = 88675123u ^ static_cast<std::uint32_t>((seed >> 16) * 0x85EBCA6Bu);
    if ((rng_state_[0] | rng_state_[1] | rng_state_[2] | rng_state_[3]) == 0)
        rng_state_[0] = 1;
    samples_.reserve(capacity_);
}

std::uint32_t Reservoir::next_u32() noexcept
{
    const std::uint32_t t = rng_state_[0] ^ (rng_state_[0] << 11);
    rng_state_[0] = rng_state_[1];
    rng_state_[1] = rng_state_[2];
    rng_state_[2] = rng_state_[3];
    rng_state_[3] = rng_state_[3] ^ (rng_state_[3] >> 19) ^ t ^ (t >> 8);
    return rng_state_[3];
}

void Reservoir::add(std::uint64_t sample)
{
    ++observed_;
    if (samples_.size() < capacity_) {
        samples_.push_back(sample);
        return;
    }
    // Algorithm R: keep with probability capacity/observed, replacing a
    // uniformly chosen incumbent (Lemire multiply-shift for the bound).
    const auto j = static_cast<std::uint64_t>(
        (static_cast<std::uint64_t>(next_u32()) * observed_) >> 32);
    if (j < capacity_) samples_[static_cast<std::size_t>(j)] = sample;
}

void Reservoir::merge(const Reservoir& other)
{
    // Replaying the other side's retained samples keeps the result a valid
    // bounded sample of the union; exact weighting is not worth the
    // bookkeeping for percentile estimation at these sample sizes.
    for (const auto s : other.samples_) add(s);
    observed_ += other.observed_ - other.samples_.size();
}

LatencyPercentiles latency_percentiles(std::vector<std::uint64_t> samples)
{
    const Percentiles p(std::move(samples));
    LatencyPercentiles lp;
    lp.p50 = p.percentile(50);
    lp.p99 = p.percentile(99);
    lp.p999 = p.percentile(99.9);
    lp.n = p.count();
    return lp;
}

LatencyPercentiles latency_percentiles(const Reservoir& reservoir)
{
    return latency_percentiles(reservoir.samples());
}

std::string fmt_mlps(double mlps, int decimals) { return fmt(mlps, decimals) + " Mlps"; }

double to_mlps(std::uint64_t lookups, double seconds)
{
    if (seconds <= 0) return 0;
    return static_cast<double>(lookups) / seconds / 1e6;
}

}  // namespace benchkit
