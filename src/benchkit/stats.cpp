#include "benchkit/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace benchkit {

MeanStd mean_std(const std::vector<double>& samples)
{
    MeanStd r;
    if (samples.empty()) return r;
    r.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
             static_cast<double>(samples.size());
    if (samples.size() > 1) {
        double ss = 0;
        for (const double v : samples) ss += (v - r.mean) * (v - r.mean);
        r.std = std::sqrt(ss / static_cast<double>(samples.size() - 1));
    }
    return r;
}

Percentiles::Percentiles(std::vector<std::uint64_t> samples) : sorted_(std::move(samples))
{
    std::sort(sorted_.begin(), sorted_.end());
    if (!sorted_.empty())
        mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
                static_cast<double>(sorted_.size());
}

double Percentiles::percentile(double q) const noexcept
{
    if (sorted_.empty()) return 0;
    const double pos = q / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return static_cast<double>(sorted_[lo]) * (1 - frac) +
           static_cast<double>(sorted_[hi]) * frac;
}

std::vector<double> Percentiles::cdf_at(const std::vector<std::uint64_t>& xs) const
{
    std::vector<double> out;
    out.reserve(xs.size());
    for (const auto x : xs) {
        const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
        out.push_back(sorted_.empty()
                          ? 0.0
                          : static_cast<double>(it - sorted_.begin()) /
                                static_cast<double>(sorted_.size()));
    }
    return out;
}

Candle candle(std::vector<std::uint64_t> samples)
{
    const Percentiles p(std::move(samples));
    Candle c;
    c.p5 = p.percentile(5);
    c.p25 = p.percentile(25);
    c.p50 = p.percentile(50);
    c.p75 = p.percentile(75);
    c.p95 = p.percentile(95);
    c.n = p.count();
    return c;
}

}  // namespace benchkit
