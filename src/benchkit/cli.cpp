#include "benchkit/cli.hpp"

#include <charconv>
#include <cstdio>

namespace benchkit {
namespace {

std::string_view value_of(const std::string& arg, std::string_view name)
{
    // arg is "--name=value" or "--name"; name is passed without dashes.
    if (arg.size() < name.size() + 2 || arg[0] != '-' || arg[1] != '-') return {};
    const std::string_view body{arg.data() + 2, arg.size() - 2};
    if (!body.starts_with(name)) return {};
    if (body.size() == name.size()) return "";  // present, no value
    if (body[name.size()] != '=') return {};
    return body.substr(name.size() + 1);
}

}  // namespace

Args::Args(int argc, char** argv)
{
    // "--name value" is normalized to "--name=value": a bare "--name"
    // followed by a token that is not itself a flag takes it as the value.
    // No bench or tool takes positional arguments, so this is unambiguous.
    for (int i = 1; i < argc; ++i) {
        std::string arg{argv[i]};
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-' &&
            arg.find('=') == std::string::npos && i + 1 < argc &&
            argv[i + 1][0] != '-') {
            arg += '=';
            arg += argv[++i];
        }
        args_.push_back(std::move(arg));
    }
}

bool Args::has(std::string_view name) const
{
    for (const auto& a : args_)
        if (value_of(a, name).data() != nullptr) return true;
    return false;
}

std::string Args::get(std::string_view name, std::string fallback) const
{
    for (const auto& a : args_) {
        const auto v = value_of(a, name);
        if (v.data() != nullptr && !v.empty()) return std::string{v};
    }
    return fallback;
}

std::uint64_t Args::get_u64(std::string_view name, std::uint64_t fallback) const
{
    const auto s = get(name, "");
    if (s.empty()) return fallback;
    std::uint64_t v = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    return (ec == std::errc{} && p == s.data() + s.size()) ? v : fallback;
}

double Args::get_double(std::string_view name, double fallback) const
{
    const auto s = get(name, "");
    if (s.empty()) return fallback;
    double v = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    return (ec == std::errc{} && p == s.data() + s.size()) ? v : fallback;
}

std::size_t Args::lookups(std::size_t quick, std::size_t full) const
{
    const auto base = has("full") ? full : quick;
    return static_cast<std::size_t>(get_u64("lookups", base));
}

unsigned Args::trials() const
{
    const unsigned base = has("full") ? 10 : 3;
    return static_cast<unsigned>(get_u64("trials", base));
}

std::uint64_t Args::seed(std::uint64_t fallback) const { return get_u64("seed", fallback); }

bool Args::handle_help(std::string_view bench_name, std::string_view extra) const
{
    if (!has("help")) return false;
    std::printf("%.*s — Poptrie reproduction bench\n"
                "  --quick (default) | --full   measurement scale\n"
                "  --lookups=N  --trials=N  --seed=N\n"
                "  --json-out=FILE  write machine-readable records (benchctl)\n",
                static_cast<int>(bench_name.size()), bench_name.data());
    if (!extra.empty())
        std::printf("%.*s\n", static_cast<int>(extra.size()), extra.data());
    return true;
}

}  // namespace benchkit
