// benchkit/runner.hpp — measurement loops shared by every bench binary.
//
// Conventions follow §4.2/§4.5:
//   * random: addresses from xorshift generated just-in-time inside the
//     timed loop (its ~1 ns cost is part of the number, as in the paper:
//     "we did not exclude this overhead from the results");
//   * sequential: the address counter increments inside the loop;
//   * repeated: each random address issued kRepeat (16) times;
//   * trace: replay of a pre-materialized address array;
//   * every loop folds results into a checksum the caller must consume, so
//     the optimizer cannot delete the lookups;
//   * rates are reported in Mlps over `trials` runs with mean and std, like
//     the paper's ten-trial averages.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "benchkit/stats.hpp"
#include "workload/xorshift.hpp"

namespace benchkit {

/// Mlps over `trials` timed runs.
struct RateResult {
    double mlps_mean = 0;
    double mlps_std = 0;
    std::uint64_t checksum = 0;  ///< consume this (print/volatile) to defeat DCE
};

inline constexpr unsigned kRepeatFactor = 16;  // §4.2's "repeated" pattern

namespace detail {
inline double seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace detail

/// random pattern. `lookup(uint32_t) -> integer`.
template <class Lookup>
RateResult measure_random(Lookup&& lookup, std::size_t lookups, unsigned trials,
                          std::uint64_t seed = 0)
{
    RateResult r;
    std::vector<double> rates;
    for (unsigned t = 0; t < trials; ++t) {
        workload::Xorshift128 rng(seed);  // same seed per trial, as in §4.6
        std::uint64_t sum = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < lookups; ++i)
            sum += static_cast<std::uint64_t>(lookup(rng.next()));
        const double secs = detail::seconds_since(t0);
        rates.push_back(static_cast<double>(lookups) / secs / 1e6);
        r.checksum += sum;
    }
    const auto ms = mean_std(rates);
    r.mlps_mean = ms.mean;
    r.mlps_std = ms.std;
    return r;
}

/// sequential pattern: addresses 0, 1, 2, ... wrapping at 2^32.
template <class Lookup>
RateResult measure_sequential(Lookup&& lookup, std::size_t lookups, unsigned trials)
{
    RateResult r;
    std::vector<double> rates;
    for (unsigned t = 0; t < trials; ++t) {
        std::uint64_t sum = 0;
        std::uint32_t addr = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < lookups; ++i)
            sum += static_cast<std::uint64_t>(lookup(addr++));
        const double secs = detail::seconds_since(t0);
        rates.push_back(static_cast<double>(lookups) / secs / 1e6);
        r.checksum += sum;
    }
    const auto ms = mean_std(rates);
    r.mlps_mean = ms.mean;
    r.mlps_std = ms.std;
    return r;
}

/// repeated pattern: each random address issued kRepeatFactor times.
template <class Lookup>
RateResult measure_repeated(Lookup&& lookup, std::size_t lookups, unsigned trials,
                            std::uint64_t seed = 0)
{
    RateResult r;
    std::vector<double> rates;
    for (unsigned t = 0; t < trials; ++t) {
        workload::Xorshift128 rng(seed);
        std::uint64_t sum = 0;
        const auto t0 = std::chrono::steady_clock::now();
        std::size_t done = 0;
        while (done < lookups) {
            const std::uint32_t addr = rng.next();
            for (unsigned k = 0; k < kRepeatFactor; ++k)
                sum += static_cast<std::uint64_t>(lookup(addr));
            done += kRepeatFactor;
        }
        const double secs = detail::seconds_since(t0);
        rates.push_back(static_cast<double>(done) / secs / 1e6);
        r.checksum += sum;
    }
    const auto ms = mean_std(rates);
    r.mlps_mean = ms.mean;
    r.mlps_std = ms.std;
    return r;
}

/// trace replay (§4.7): the array is loaded in advance, as in the paper.
template <class Lookup>
RateResult measure_trace(Lookup&& lookup, const std::vector<std::uint32_t>& trace,
                         unsigned trials)
{
    RateResult r;
    std::vector<double> rates;
    for (unsigned t = 0; t < trials; ++t) {
        std::uint64_t sum = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (const auto addr : trace) sum += static_cast<std::uint64_t>(lookup(addr));
        const double secs = detail::seconds_since(t0);
        rates.push_back(static_cast<double>(trace.size()) / secs / 1e6);
        r.checksum += sum;
    }
    const auto ms = mean_std(rates);
    r.mlps_mean = ms.mean;
    r.mlps_std = ms.std;
    return r;
}

/// random pattern over 128-bit keys inside a /8-style scope (§4.10 queries
/// "random addresses within 2000::/8"): `make_key(rng) -> key`,
/// `lookup(key) -> integer`.
template <class Lookup, class MakeKey>
RateResult measure_random_keys(Lookup&& lookup, MakeKey&& make_key, std::size_t lookups,
                               unsigned trials, std::uint64_t seed = 0)
{
    RateResult r;
    std::vector<double> rates;
    for (unsigned t = 0; t < trials; ++t) {
        workload::Xorshift128 rng(seed);
        std::uint64_t sum = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < lookups; ++i)
            sum += static_cast<std::uint64_t>(lookup(make_key(rng)));
        const double secs = detail::seconds_since(t0);
        rates.push_back(static_cast<double>(lookups) / secs / 1e6);
        r.checksum += sum;
    }
    const auto ms = mean_std(rates);
    r.mlps_mean = ms.mean;
    r.mlps_std = ms.std;
    return r;
}

// Multithreaded measurement (Fig. 8) lives in dataplane/worker_pool.hpp:
// dataplane::measure_random_multithread shares the thread/affinity
// scaffolding with the forwarding pipeline instead of rolling its own.

}  // namespace benchkit
