// benchkit/provenance.hpp — build provenance stamped into every JsonRecords
// emission, so a benchmark artifact is traceable to a commit and a build
// configuration without trusting the filename it was saved under.
//
// The values are baked in at configure time (src/CMakeLists.txt defines them
// on provenance.cpp only, so a SHA change rebuilds one translation unit).
// benchctl cross-checks the stamped git_sha against the live checkout and
// flags stale builds.
// Memory-layout provenance rides along: the page size, the kernel's THP
// mode, and — when the tool under measurement reports it via
// note_arena_backing() — the backing the FIB arena actually obtained. A
// hugepage-backed run and a 4 KiB-page run of the same commit are different
// experiments (§4.4 is a cache/TLB argument), and the records must say so.
#pragma once

#include <string>
#include <string_view>

namespace benchkit {

class JsonRecords;

/// The compiled-in provenance triple.
struct Provenance {
    std::string_view git_sha;     ///< short SHA at configure time, or "unknown"
    std::string_view build_type;  ///< CMAKE_BUILD_TYPE, e.g. "Release"
    bool native = false;          ///< POPTRIE_NATIVE (-march=native) on?
};

[[nodiscard]] Provenance provenance() noexcept;

/// Appends "git_sha", "build_type" and "native" fields to the current
/// record, plus the memory-layout environment: "page_size_bytes"
/// (sysconf), "thp" (alloc::thp_status()), and "arena_backing" when
/// note_arena_backing() was called. Every machine-readable emitter (bench
/// --json-out, lpmd --json, bench_dataplane --json) calls this once per
/// record.
void stamp_provenance(JsonRecords& rec);

/// Records the backing the measured structure's arena actually obtained
/// (alloc::backing_name of Poptrie::memory_report().backing) for subsequent
/// stamp_provenance() calls. Process-wide, call from the setup path before
/// emitting records; unset, records carry no "arena_backing" field.
void note_arena_backing(std::string backing);

}  // namespace benchkit
