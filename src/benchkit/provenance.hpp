// benchkit/provenance.hpp — build provenance stamped into every JsonRecords
// emission, so a benchmark artifact is traceable to a commit and a build
// configuration without trusting the filename it was saved under.
//
// The values are baked in at configure time (src/CMakeLists.txt defines them
// on provenance.cpp only, so a SHA change rebuilds one translation unit).
// benchctl cross-checks the stamped git_sha against the live checkout and
// flags stale builds.
#pragma once

#include <string_view>

namespace benchkit {

class JsonRecords;

/// The compiled-in provenance triple.
struct Provenance {
    std::string_view git_sha;     ///< short SHA at configure time, or "unknown"
    std::string_view build_type;  ///< CMAKE_BUILD_TYPE, e.g. "Release"
    bool native = false;          ///< POPTRIE_NATIVE (-march=native) on?
};

[[nodiscard]] Provenance provenance() noexcept;

/// Appends "git_sha", "build_type" and "native" fields to the current
/// record. Every machine-readable emitter (bench --json-out, lpmd --json,
/// bench_dataplane --json) calls this once per record.
void stamp_provenance(JsonRecords& rec);

}  // namespace benchkit
