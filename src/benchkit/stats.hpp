// benchkit/stats.hpp — summary statistics for bench output: means with
// standard deviation (the paper's "(std.)" columns), percentiles (Table 4),
// CDFs (Fig. 10), quartile candlesticks (Fig. 11), and bounded-memory
// latency reservoirs with tail percentiles (bench_dataplane).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace benchkit {

/// Mean and sample standard deviation, as the paper reports for its ten
/// repeated experiments.
struct MeanStd {
    double mean = 0;
    double std = 0;
};
[[nodiscard]] MeanStd mean_std(const std::vector<double>& samples);

/// Median of the samples (0 when empty). Robust location estimate for the
/// continuous-benchmarking records: one descheduled trial shifts a mean but
/// not a median-of-k.
[[nodiscard]] double median(std::vector<double> samples);

/// Median absolute deviation around the median (unscaled). The noise band
/// benchctl gates on is max(8%, 3×MAD) — MAD stays finite under the heavy
/// tails a shared-tenancy host produces, where std does not.
[[nodiscard]] double mad(std::vector<double> samples);

/// Percentiles over a sample set (sorted internally; `q` in [0, 100]).
class Percentiles {
public:
    explicit Percentiles(std::vector<std::uint64_t> samples);

    [[nodiscard]] double percentile(double q) const noexcept;
    [[nodiscard]] double mean() const noexcept { return mean_; }
    [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }

    /// CDF points at the given x values: fraction of samples <= x.
    [[nodiscard]] std::vector<double> cdf_at(const std::vector<std::uint64_t>& xs) const;

private:
    std::vector<std::uint64_t> sorted_;
    double mean_ = 0;
};

/// Fig. 11 candlestick: 5th/25th/50th/75th/95th percentiles.
struct Candle {
    double p5 = 0, p25 = 0, p50 = 0, p75 = 0, p95 = 0;
    std::size_t n = 0;
};
[[nodiscard]] Candle candle(std::vector<std::uint64_t> samples);

/// Bounded-memory uniform sample reservoir (Vitter's algorithm R) for
/// streams too long to store — the dataplane records one latency sample per
/// forwarded burst, which at tens of Mlps is far more values than a bench
/// wants to keep. Deterministic: the replacement choices come from a seeded
/// xorshift, so repeated runs over the same stream sample identically.
class Reservoir {
public:
    explicit Reservoir(std::size_t capacity = 4096, std::uint64_t seed = 0x5EED);

    void add(std::uint64_t sample);

    /// Merges another reservoir into this one (used to fold per-worker
    /// reservoirs into a run-level one; keeps a uniform-ish sample by
    /// feeding the other side's samples through the same stream logic).
    void merge(const Reservoir& other);

    /// Samples retained so far (unsorted, <= capacity).
    [[nodiscard]] const std::vector<std::uint64_t>& samples() const noexcept
    {
        return samples_;
    }
    /// Stream length observed (>= samples().size()).
    [[nodiscard]] std::uint64_t observed() const noexcept { return observed_; }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    std::size_t capacity_;
    std::uint64_t observed_ = 0;
    std::uint32_t rng_state_[4];  // inlined xorshift128 (header stays light)
    std::vector<std::uint64_t> samples_;

    std::uint32_t next_u32() noexcept;
};

/// The dataplane's tail-latency summary: p50/p99/p99.9 over a sample set.
struct LatencyPercentiles {
    double p50 = 0, p99 = 0, p999 = 0;
    std::size_t n = 0;  ///< samples the percentiles were computed from
};
[[nodiscard]] LatencyPercentiles latency_percentiles(std::vector<std::uint64_t> samples);
[[nodiscard]] LatencyPercentiles latency_percentiles(const Reservoir& reservoir);

/// Formats a lookup rate in Mlps ("412.37 Mlps"); the shared convention for
/// the dataplane bench and lpmd stats lines.
[[nodiscard]] std::string fmt_mlps(double mlps, int decimals = 2);

/// Rate from a count and a duration, in Mlps.
[[nodiscard]] double to_mlps(std::uint64_t lookups, double seconds);

}  // namespace benchkit
