// benchkit/stats.hpp — summary statistics for bench output: means with
// standard deviation (the paper's "(std.)" columns), percentiles (Table 4),
// CDFs (Fig. 10) and quartile candlesticks (Fig. 11).
#pragma once

#include <cstdint>
#include <vector>

namespace benchkit {

/// Mean and sample standard deviation, as the paper reports for its ten
/// repeated experiments.
struct MeanStd {
    double mean = 0;
    double std = 0;
};
[[nodiscard]] MeanStd mean_std(const std::vector<double>& samples);

/// Percentiles over a sample set (sorted internally; `q` in [0, 100]).
class Percentiles {
public:
    explicit Percentiles(std::vector<std::uint64_t> samples);

    [[nodiscard]] double percentile(double q) const noexcept;
    [[nodiscard]] double mean() const noexcept { return mean_; }
    [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }

    /// CDF points at the given x values: fraction of samples <= x.
    [[nodiscard]] std::vector<double> cdf_at(const std::vector<std::uint64_t>& xs) const;

private:
    std::vector<std::uint64_t> sorted_;
    double mean_ = 0;
};

/// Fig. 11 candlestick: 5th/25th/50th/75th/95th percentiles.
struct Candle {
    double p5 = 0, p25 = 0, p50 = 0, p75 = 0, p95 = 0;
    std::size_t n = 0;
};
[[nodiscard]] Candle candle(std::vector<std::uint64_t> samples);

}  // namespace benchkit
