// benchkit/runner.cpp — the measurement loops are header-only templates
// (runner.hpp); this TU anchors the library and holds nothing else.
#include "benchkit/runner.hpp"
