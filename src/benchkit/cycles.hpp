// benchkit/cycles.hpp — per-lookup CPU cycle measurement (§4.6).
//
// The paper reads the CPU's performance monitoring counters under a
// single-task OS and subtracts the constant 83-cycle read overhead. User
// space on a stock kernel gets the serialized time-stamp counter instead:
// rdtscp (+ lfence) brackets, with the measured empty-bracket overhead
// calibrated at startup and subtracted, and statistics taken over millions
// of lookups to wash out interference — the same statistical approach the
// paper applies ("we statistically analyze the distribution of the CPU
// cycles in a large number of lookups").
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace benchkit {

/// Serialized timestamp read: all older instructions have retired before the
/// counter is sampled.
[[nodiscard]] inline std::uint64_t tsc_begin() noexcept
{
#if defined(__x86_64__) || defined(__i386__)
    _mm_lfence();
    const std::uint64_t t = __rdtsc();
    _mm_lfence();
    return t;
#else
    return 0;
#endif
}

/// Serialized timestamp read for the end of a measured region.
[[nodiscard]] inline std::uint64_t tsc_end() noexcept
{
#if defined(__x86_64__) || defined(__i386__)
    unsigned aux = 0;
    const std::uint64_t t = __rdtscp(&aux);
    _mm_lfence();
    return t;
#else
    return 0;
#endif
}

/// Measured cost of an empty tsc_begin()/tsc_end() bracket on this host
/// (median of many trials). Subtract from raw per-lookup readings, as the
/// paper subtracts its 83-cycle PMC read overhead.
[[nodiscard]] std::uint64_t calibrate_tsc_overhead();

/// TSC ticks per second (measured against the steady clock); used to convert
/// cycle counts to time where needed.
[[nodiscard]] double tsc_hz();

}  // namespace benchkit
