#include "benchkit/table_printer.hpp"

#include <cstdio>

namespace benchkit {

TablePrinter::TablePrinter(std::vector<Column> columns) : columns_(std::move(columns)) {}

void TablePrinter::print_header() const
{
    std::string line;
    std::string rule;
    for (const auto& c : columns_) {
        std::string h = c.header;
        if (h.size() > c.width) h.resize(c.width);
        const auto pad = c.width - h.size();
        line += c.right_align ? std::string(pad, ' ') + h : h + std::string(pad, ' ');
        line += "  ";
        rule += std::string(c.width, '-') + "  ";
    }
    std::printf("%s\n%s\n", line.c_str(), rule.c_str());
}

void TablePrinter::print_row(const std::vector<std::string>& cells) const
{
    std::string line;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        const auto& c = columns_[i];
        std::string v = i < cells.size() ? cells[i] : "";
        if (v.size() > c.width) v.resize(c.width);
        const auto pad = c.width - v.size();
        line += c.right_align ? std::string(pad, ' ') + v : v + std::string(pad, ' ');
        line += "  ";
    }
    std::printf("%s\n", line.c_str());
}

std::string fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string fmt_mean_std(double mean, double std, int decimals)
{
    return fmt(mean, decimals) + " (" + fmt(std, decimals) + ")";
}

std::string fmt_mib(std::size_t bytes)
{
    return fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 2);
}

std::string fmt_count(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    const auto n = digits.size();
    for (std::size_t i = 0; i < n; ++i) {
        out += digits[i];
        const auto remaining = n - 1 - i;
        if (remaining != 0 && remaining % 3 == 0) out += ',';
    }
    return out;
}

}  // namespace benchkit
