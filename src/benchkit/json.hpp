// benchkit/json.hpp — flat JSON record emission for bench results.
//
// The table printer stays the human-facing output; benches that want
// machine-readable results (bench_dataplane, lpmd --json) additionally
// collect flat records here and dump them as one JSON array. Only the shapes
// the benches need are supported: records of string/number/bool fields — no
// nesting, no external dependency.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace benchkit {

/// Escapes a string for inclusion in a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Collects flat records and writes them as a JSON array of objects.
/// Field order within a record is preserved; records are independent (no
/// schema enforcement).
class JsonRecords {
public:
    /// Starts a new record; subsequent field() calls attach to it.
    void begin_record();

    void field(std::string_view key, std::string_view value);
    void field(std::string_view key, double value, int decimals = 3);
    void field(std::string_view key, std::uint64_t value);
    void field(std::string_view key, bool value);

    [[nodiscard]] std::size_t record_count() const noexcept { return records_.size(); }

    /// The whole array as a string ("[]" when empty).
    [[nodiscard]] std::string dump() const;

    /// Writes dump() to `out` with a trailing newline.
    void write(std::FILE* out) const;

    /// Writes dump() to `path` (benchctl's --json-out contract: the human
    /// table keeps stdout, the records go to a file the orchestrator can
    /// parse without scraping). Returns false if the file cannot be opened.
    [[nodiscard]] bool write_file(const std::string& path) const;

private:
    void append_raw(std::string_view key, std::string value);

    std::vector<std::string> records_;  // serialized "k":v,... bodies
};

}  // namespace benchkit
