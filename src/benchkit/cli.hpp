// benchkit/cli.hpp — minimal flag parsing shared by the bench binaries.
//
// Every bench accepts:
//   --quick           fewer lookups/trials (default)
//   --full            paper-scale counts (minutes per bench)
//   --lookups=N       override the per-measurement lookup count
//   --trials=N        override the trial count (paper: 10)
//   --seed=N          override workload seeds
//   --json-out=FILE   write benchkit::JsonRecords to FILE (benchctl's hook)
// plus bench-specific flags documented in each binary's --help.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace benchkit {

/// Parsed command line. Flags are "--name", "--name=value", or
/// "--name value" (the separate-token form is normalized at construction).
class Args {
public:
    Args(int argc, char** argv);

    /// True if "--name" (with or without value) was passed.
    [[nodiscard]] bool has(std::string_view name) const;

    /// Value of "--name=value", or `fallback`.
    [[nodiscard]] std::uint64_t get_u64(std::string_view name, std::uint64_t fallback) const;
    [[nodiscard]] double get_double(std::string_view name, double fallback) const;
    [[nodiscard]] std::string get(std::string_view name, std::string fallback) const;

    /// Standard scale handling: returns `quick` unless --full, then `full`;
    /// --lookups overrides both.
    [[nodiscard]] std::size_t lookups(std::size_t quick, std::size_t full) const;
    /// Trials: 3 quick / 10 full, overridable with --trials.
    [[nodiscard]] unsigned trials() const;
    [[nodiscard]] std::uint64_t seed(std::uint64_t fallback = 0) const;

    /// Path from --json-out=FILE, or empty when the flag is absent. Benches
    /// that support it emit their JsonRecords there for benchctl.
    [[nodiscard]] std::string json_out() const { return get("json-out", ""); }

    /// Prints standard usage plus `extra` and returns true if --help given.
    bool handle_help(std::string_view bench_name, std::string_view extra = {}) const;

private:
    std::vector<std::string> args_;
};

}  // namespace benchkit
