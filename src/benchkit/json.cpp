#include "benchkit/json.hpp"

#include <cstdio>

#include "benchkit/table_printer.hpp"

namespace benchkit {

std::string json_escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void JsonRecords::begin_record() { records_.emplace_back(); }

void JsonRecords::append_raw(std::string_view key, std::string value)
{
    if (records_.empty()) records_.emplace_back();
    std::string& r = records_.back();
    if (!r.empty()) r += ',';
    r += '"';
    r += json_escape(key);
    r += "\":";
    r += value;
}

void JsonRecords::field(std::string_view key, std::string_view value)
{
    append_raw(key, '"' + json_escape(value) + '"');
}

void JsonRecords::field(std::string_view key, double value, int decimals)
{
    append_raw(key, fmt(value, decimals));
}

void JsonRecords::field(std::string_view key, std::uint64_t value)
{
    append_raw(key, std::to_string(value));
}

void JsonRecords::field(std::string_view key, bool value)
{
    append_raw(key, value ? "true" : "false");
}

std::string JsonRecords::dump() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        if (i != 0) out += ',';
        out += '{';
        out += records_[i];
        out += '}';
    }
    out += ']';
    return out;
}

void JsonRecords::write(std::FILE* out) const
{
    const std::string s = dump();
    std::fwrite(s.data(), 1, s.size(), out);
    std::fputc('\n', out);
}

bool JsonRecords::write_file(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    write(f);
    std::fclose(f);
    return true;
}

}  // namespace benchkit
