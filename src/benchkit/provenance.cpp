#include "benchkit/provenance.hpp"

#include "benchkit/json.hpp"

// src/CMakeLists.txt defines these on this file alone; the fallbacks keep
// stray builds (other build systems, IDE single-file checks) compiling.
#ifndef POPTRIE_GIT_SHA
#define POPTRIE_GIT_SHA "unknown"
#endif
#ifndef POPTRIE_BUILD_TYPE
#define POPTRIE_BUILD_TYPE "unknown"
#endif
#ifndef POPTRIE_NATIVE_BUILD
#define POPTRIE_NATIVE_BUILD 0
#endif

namespace benchkit {

Provenance provenance() noexcept
{
    return Provenance{POPTRIE_GIT_SHA, POPTRIE_BUILD_TYPE, POPTRIE_NATIVE_BUILD != 0};
}

void stamp_provenance(JsonRecords& rec)
{
    const auto p = provenance();
    rec.field("git_sha", p.git_sha);
    rec.field("build_type", p.build_type);
    rec.field("native", p.native);
}

}  // namespace benchkit
