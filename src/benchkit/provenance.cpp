#include "benchkit/provenance.hpp"

#include <unistd.h>

#include <cstdint>
#include <utility>

#include "alloc/arena.hpp"
#include "benchkit/json.hpp"

// src/CMakeLists.txt defines these on this file alone; the fallbacks keep
// stray builds (other build systems, IDE single-file checks) compiling.
#ifndef POPTRIE_GIT_SHA
#define POPTRIE_GIT_SHA "unknown"
#endif
#ifndef POPTRIE_BUILD_TYPE
#define POPTRIE_BUILD_TYPE "unknown"
#endif
#ifndef POPTRIE_NATIVE_BUILD
#define POPTRIE_NATIVE_BUILD 0
#endif

namespace benchkit {

namespace {
// Setup-path global (set once before the measurement loop, read at record
// emission); no synchronization by design, like the rest of benchkit.
std::string g_arena_backing;  // NOLINT(runtime/string)
}  // namespace

Provenance provenance() noexcept
{
    return Provenance{POPTRIE_GIT_SHA, POPTRIE_BUILD_TYPE, POPTRIE_NATIVE_BUILD != 0};
}

void stamp_provenance(JsonRecords& rec)
{
    const auto p = provenance();
    rec.field("git_sha", p.git_sha);
    rec.field("build_type", p.build_type);
    rec.field("native", p.native);
    rec.field("page_size_bytes",
              static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE)));
    rec.field("thp", alloc::thp_status());
    if (!g_arena_backing.empty()) rec.field("arena_backing", g_arena_backing);
}

void note_arena_backing(std::string backing) { g_arena_backing = std::move(backing); }

}  // namespace benchkit
