// benchkit/table_printer.hpp — aligned text tables in the paper's style
// ("Rate (std.) [Mlps]" columns etc.), plus small formatting helpers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace benchkit {

/// Fixed-layout table: set up columns once, then print rows of strings.
class TablePrinter {
public:
    struct Column {
        std::string header;
        unsigned width;
        bool right_align = true;
    };

    explicit TablePrinter(std::vector<Column> columns);

    /// Prints the header row and a separator line.
    void print_header() const;

    /// Prints one row; missing cells print empty.
    void print_row(const std::vector<std::string>& cells) const;

private:
    std::vector<Column> columns_;
};

/// Fixed-point formatting: fmt(3.14159, 2) == "3.14".
[[nodiscard]] std::string fmt(double value, int decimals);

/// "mean (std)" in the paper's convention: "240.52 (5.47)".
[[nodiscard]] std::string fmt_mean_std(double mean, double std, int decimals = 2);

/// Bytes → MiB string with 2 decimals.
[[nodiscard]] std::string fmt_mib(std::size_t bytes);

/// Thousands-separated integer ("531,489").
[[nodiscard]] std::string fmt_count(std::uint64_t v);

}  // namespace benchkit
