#include "benchkit/cycles.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

namespace benchkit {

std::uint64_t calibrate_tsc_overhead()
{
    std::vector<std::uint64_t> samples;
    samples.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
        const auto t0 = tsc_begin();
        const auto t1 = tsc_end();
        samples.push_back(t1 - t0);
    }
    std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
    return samples[samples.size() / 2];
}

double tsc_hz()
{
    using clock = std::chrono::steady_clock;
    const auto w0 = clock::now();
    const auto t0 = tsc_begin();
    // ~50 ms busy wait: long enough for a stable ratio, short enough to be
    // unnoticeable at bench startup.
    while (clock::now() - w0 < std::chrono::milliseconds(50)) {
    }
    const auto t1 = tsc_end();
    const auto w1 = clock::now();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(w1 - w0).count();
    return static_cast<double>(t1 - t0) * 1e9 / static_cast<double>(ns);
}

}  // namespace benchkit
