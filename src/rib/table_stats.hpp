// rib/table_stats.hpp — descriptive statistics of a routing table.
//
// Used to print Table 1-style dataset summaries (# of prefixes, # of distinct
// next hops) and the prefix-length histogram the generators are calibrated
// against (§4.1: "most prefixes in the real datasets are distributed in the
// range of prefix length from /11 through /24").
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

#include "rib/route.hpp"

namespace rib {

/// Summary statistics over a route list.
template <class Addr>
struct TableStats {
    std::size_t prefix_count = 0;
    std::size_t distinct_next_hops = 0;
    /// histogram[l] = number of routes with prefix length l.
    std::array<std::size_t, Addr::kWidth + 1> length_histogram{};
    unsigned max_length = 0;

    /// Number of routes with length strictly greater than `len`.
    [[nodiscard]] std::size_t longer_than(unsigned len) const noexcept
    {
        std::size_t n = 0;
        for (unsigned l = len + 1; l <= Addr::kWidth; ++l) n += length_histogram[l];
        return n;
    }
};

/// Computes stats over `routes`.
template <class Addr>
[[nodiscard]] TableStats<Addr> compute_stats(const RouteList<Addr>& routes);

extern template TableStats<netbase::Ipv4Addr> compute_stats(
    const RouteList<netbase::Ipv4Addr>&);
extern template TableStats<netbase::Ipv6Addr> compute_stats(
    const RouteList<netbase::Ipv6Addr>&);

}  // namespace rib
