#include "rib/patricia.hpp"

namespace rib {

template class PatriciaTrie<netbase::Ipv4Addr>;
template class PatriciaTrie<netbase::Ipv6Addr>;

}  // namespace rib
