// rib/aggregate.hpp — route aggregation (§3 of the paper).
//
// "The route aggregation performs merger of a set of prefixes with the
// identical next hop that belong to a subtree without any gap, into the
// single prefix representing the whole subtree" — plus removal of redundant
// prefixes whose next hop equals what they would inherit anyway. The paper
// applies this RIB→FIB step before building Poptrie (it is equally applicable
// to the other structures, and the ablation bench measures it separately).
//
// The transformation is semantics-preserving: for every address, the longest-
// prefix-match result over the aggregated route set equals the result over
// the original set (tests verify this property exhaustively on small tables
// and at all prefix boundaries on large ones).
#pragma once

#include "rib/radix_trie.hpp"
#include "rib/route.hpp"

namespace rib {

/// Returns the aggregated equivalent of `input`'s route set.
template <class Addr>
[[nodiscard]] RouteList<Addr> aggregate_routes(const RadixTrie<Addr>& input);

/// Convenience: aggregates and loads the result into a fresh trie.
template <class Addr>
[[nodiscard]] RadixTrie<Addr> aggregate(const RadixTrie<Addr>& input)
{
    RadixTrie<Addr> out;
    out.insert_all(aggregate_routes(input));
    return out;
}

extern template RouteList<netbase::Ipv4Addr> aggregate_routes(
    const RadixTrie<netbase::Ipv4Addr>&);
extern template RouteList<netbase::Ipv6Addr> aggregate_routes(
    const RadixTrie<netbase::Ipv6Addr>&);

}  // namespace rib
