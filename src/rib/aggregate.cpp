#include "rib/aggregate.hpp"

namespace rib {
namespace {

// Coverage classification of a subtree's address space, considering only the
// routes inside the subtree:
//   kEmpty   — no routes at all: every address resolves to the inherited hop;
//   kFull    — fully covered, every address resolves to `val`;
//   kPartial — the routed portion uniformly resolves to `val`, but gaps
//              remain: uniform overall iff the inherited hop equals `val`;
//   kMixed   — at least two different resolutions regardless of inheritance.
//
// The classification is cached in the radix node's scratch fields between
// the bottom-up compute pass and the top-down emit pass.
enum Kind : std::uint8_t { kEmpty, kFull, kPartial, kMixed };

struct Cov {
    Kind kind = kEmpty;
    NextHop val = kNoRoute;
};

// Resolves a child coverage when gaps are filled by route `r`.
Cov fill(const Cov& c, NextHop r)
{
    switch (c.kind) {
    case kEmpty: return {kFull, r};
    case kFull: return c;
    case kPartial: return c.val == r ? Cov{kFull, r} : Cov{kMixed, kNoRoute};
    case kMixed: return c;
    }
    return c;
}

// Merges sibling coverages when the parent has no route of its own.
Cov merge(const Cov& a, const Cov& b)
{
    if (a.kind == kMixed || b.kind == kMixed) return {kMixed, kNoRoute};
    if (a.kind == kEmpty && b.kind == kEmpty) return {kEmpty, kNoRoute};
    if (a.kind == kEmpty) return {kPartial, b.val};
    if (b.kind == kEmpty) return {kPartial, a.val};
    if (a.val != b.val) return {kMixed, kNoRoute};
    if (a.kind == kFull && b.kind == kFull) return {kFull, a.val};
    return {kPartial, a.val};
}

template <class Node>
Cov compute(const Node* n)
{
    if (n == nullptr) return {kEmpty, kNoRoute};
    const Cov c0 = compute(n->child[0].get());
    const Cov c1 = compute(n->child[1].get());
    Cov result;
    if (n->has_route) {
        // The node's own route fills both children's gaps.
        const Cov e0 = fill(c0, n->next_hop);
        const Cov e1 = fill(c1, n->next_hop);
        result = (e0.kind == kFull && e1.kind == kFull && e0.val == e1.val)
                     ? Cov{kFull, e0.val}
                     : Cov{kMixed, kNoRoute};
    } else {
        result = merge(c0, c1);
    }
    n->scratch_kind = result.kind;
    n->scratch_value = result.val;
    return result;
}

template <class Node, class Prefix, class Out>
void emit(const Node* n, Prefix at, NextHop inherited, Out& out)
{
    if (n == nullptr) return;
    const Cov c{static_cast<Kind>(n->scratch_kind), n->scratch_value};
    switch (c.kind) {
    case kEmpty:
        return;
    case kFull:
        if (c.val != inherited) out.push_back({at, c.val});
        return;
    case kPartial:
        if (c.val == inherited) return;  // gaps and routes both resolve to `inherited`
        break;                           // must descend, like kMixed
    case kMixed:
        break;
    }
    NextHop next_inherited = inherited;
    if (n->has_route) {
        next_inherited = n->next_hop;
        if (n->next_hop != inherited) out.push_back({at, n->next_hop});
    }
    emit(n->child[0].get(), at.child(0), next_inherited, out);
    emit(n->child[1].get(), at.child(1), next_inherited, out);
}

}  // namespace

template <class Addr>
RouteList<Addr> aggregate_routes(const RadixTrie<Addr>& input)
{
    RouteList<Addr> out;
    compute(input.root());
    emit(input.root(), typename RadixTrie<Addr>::prefix_type{}, kNoRoute, out);
    return out;
}

template RouteList<netbase::Ipv4Addr> aggregate_routes(const RadixTrie<netbase::Ipv4Addr>&);
template RouteList<netbase::Ipv6Addr> aggregate_routes(const RadixTrie<netbase::Ipv6Addr>&);

}  // namespace rib
