// rib/radix_trie.hpp — binary radix trie: the RIB substrate and a baseline.
//
// This is the paper's "binary radix tree": one node per bit level, two
// children. It serves three roles here:
//   1. the RIB all FIB structures are compiled from (§3: "the routes are
//      preserved in a separate routing table (RIB) such as radix or Patricia
//      trie");
//   2. the slowest baseline in Tables 2/3 and Figure 9 ("Radix");
//   3. the reference implementation tests validate every other structure
//      against, and the source of the "binary radix depth" metric of Fig. 7.
//
// Nodes carry the `marked` flag the incremental-update procedure of §3.5 uses
// to find which parts of the Poptrie must be rebuilt.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>

#include "netbase/bits.hpp"
#include "netbase/prefix.hpp"
#include "rib/route.hpp"

namespace rib {

/// Binary (one bit per level) radix trie mapping prefixes to next hops.
/// Addr is netbase::Ipv4Addr or netbase::Ipv6Addr.
template <class Addr>
class RadixTrie {
public:
    using value_type = typename Addr::value_type;
    using prefix_type = netbase::Prefix<Addr>;
    static constexpr unsigned kWidth = Addr::kWidth;

    /// Trie node. Exposed (read-only) so FIB compilers can walk the tree.
    struct Node {
        std::unique_ptr<Node> child[2];
        NextHop next_hop = kNoRoute;
        bool has_route = false;
        /// §3.5 update mark: resolution under this node may have changed.
        bool marked = false;
        /// Scratch space for single-threaded analyses (route aggregation's
        /// coverage classification); fits the struct's padding, costs nothing.
        mutable NextHop scratch_value = kNoRoute;
        mutable std::uint8_t scratch_kind = 0;
    };

    RadixTrie() = default;
    RadixTrie(RadixTrie&&) noexcept = default;
    RadixTrie& operator=(RadixTrie&&) noexcept = default;

    /// Inserts `prefix -> next_hop`, replacing any existing route at the same
    /// prefix. `next_hop` must not be kNoRoute.
    void insert(const prefix_type& prefix, NextHop next_hop);

    /// Removes the route at exactly `prefix`. Returns false if absent.
    bool erase(const prefix_type& prefix);

    /// Longest-prefix-match lookup. Returns kNoRoute on miss.
    [[nodiscard]] NextHop lookup(Addr addr) const noexcept;

    /// Extra detail for analysis benches (Fig. 7 / Fig. 11).
    struct LookupDetail {
        NextHop next_hop = kNoRoute;
        /// Bits examined to decide the answer: the paper's "binary radix
        /// depth" (depth of the deepest trie node on the address's path).
        unsigned radix_depth = 0;
        /// Length of the matched prefix (0 when next_hop may still be a
        /// default route at /0; check `matched`).
        unsigned matched_length = 0;
        bool matched = false;
    };
    [[nodiscard]] LookupDetail lookup_detail(Addr addr) const noexcept;

    /// Exact-match: next hop registered at `prefix`, or kNoRoute.
    [[nodiscard]] NextHop find(const prefix_type& prefix) const noexcept;

    /// Number of routes installed.
    [[nodiscard]] std::size_t route_count() const noexcept { return routes_; }

    /// Number of trie nodes allocated.
    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }

    /// Approximate heap footprint (nodes * sizeof(Node)), the number reported
    /// as "Radix" memory in Table 3.
    [[nodiscard]] std::size_t memory_bytes() const noexcept { return nodes_ * sizeof(Node); }

    /// Root node (null when the trie is empty... the root always exists once
    /// any route was inserted; may be null for an empty trie).
    [[nodiscard]] const Node* root() const noexcept { return root_.get(); }

    /// Visits every route as (prefix, next_hop) in trie (DFS, shorter-first)
    /// order.
    template <class F>
    void for_each_route(F&& fn) const
    {
        walk(root_.get(), prefix_type{}, fn);
    }

    /// Collects all routes into a list (convenience for generators/tests).
    [[nodiscard]] RouteList<Addr> routes() const
    {
        RouteList<Addr> out;
        out.reserve(routes_);
        for_each_route([&](const prefix_type& p, NextHop nh) { out.push_back({p, nh}); });
        return out;
    }

    /// Marks every node on and under `prefix`'s node whose resolution can be
    /// affected by a change of the route at `prefix` (stops descending at
    /// nodes shadowed by a more specific route). Creates the path if needed?
    /// No — call after insert / before erase while the node still exists.
    void mark_subtree(const prefix_type& prefix);

    /// Clears marks under `prefix` (after the FIB consumed them).
    void clear_marks(const prefix_type& prefix);

    /// Bulk-load convenience: inserts every route in `list`.
    void insert_all(const RouteList<Addr>& list)
    {
        for (const auto& r : list) insert(r.prefix, r.next_hop);
    }

private:
    // Walks to the node for `prefix`, returns nullptr if the path is absent.
    [[nodiscard]] Node* walk_to(const prefix_type& prefix) const noexcept;

    template <class F>
    static void walk(const Node* n, prefix_type at, F& fn)
    {
        if (n == nullptr) return;
        if (n->has_route) fn(at, n->next_hop);
        if (at.length() < kWidth) {
            walk(n->child[0].get(), at.child(0), fn);
            walk(n->child[1].get(), at.child(1), fn);
        }
    }

    static void mark_rec(Node* n)
    {
        if (n == nullptr) return;
        n->marked = true;
        // A more specific route shadows the change below it — but its node
        // itself is on the boundary and stays marked above. Descend only
        // through unshadowed children.
        for (auto& c : n->child) {
            if (c != nullptr && !c->has_route) mark_rec(c.get());
            // Children that carry their own route shadow everything beneath.
        }
    }

    static void clear_rec(Node* n)
    {
        if (n == nullptr) return;
        n->marked = false;
        clear_rec(n->child[0].get());
        clear_rec(n->child[1].get());
    }

    // Prunes route-less leaf nodes on the path to `prefix` after an erase.
    void prune(const prefix_type& prefix);

    std::unique_ptr<Node> root_;
    std::size_t routes_ = 0;
    std::size_t nodes_ = 0;
};

// ---------------------------------------------------------------------------
// Implementation (template; declarations explicitly instantiated in the .cpp
// for the two address families to keep client compile times down).

template <class Addr>
void RadixTrie<Addr>::insert(const prefix_type& prefix, NextHop next_hop)
{
    assert(next_hop != kNoRoute);
    if (!root_) {
        root_ = std::make_unique<Node>();
        ++nodes_;
    }
    Node* n = root_.get();
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
        const unsigned b = netbase::bit_at(prefix.bits(), depth);
        if (!n->child[b]) {
            n->child[b] = std::make_unique<Node>();
            ++nodes_;
        }
        n = n->child[b].get();
    }
    if (!n->has_route) ++routes_;
    n->has_route = true;
    n->next_hop = next_hop;
}

template <class Addr>
bool RadixTrie<Addr>::erase(const prefix_type& prefix)
{
    Node* n = walk_to(prefix);
    if (n == nullptr || !n->has_route) return false;
    n->has_route = false;
    n->next_hop = kNoRoute;
    --routes_;
    prune(prefix);
    return true;
}

template <class Addr>
typename RadixTrie<Addr>::Node* RadixTrie<Addr>::walk_to(const prefix_type& prefix) const noexcept
{
    Node* n = root_.get();
    for (unsigned depth = 0; n != nullptr && depth < prefix.length(); ++depth)
        n = n->child[netbase::bit_at(prefix.bits(), depth)].get();
    return n;
}

template <class Addr>
void RadixTrie<Addr>::prune(const prefix_type& prefix)
{
    // Re-walk the path recording it, then delete trailing route-less leaves.
    // Path length <= kWidth, so a fixed-size array suffices.
    Node* path[Addr::kWidth + 1];
    unsigned len = 0;
    Node* n = root_.get();
    path[len++] = n;
    for (unsigned depth = 0; n != nullptr && depth < prefix.length(); ++depth) {
        n = n->child[netbase::bit_at(prefix.bits(), depth)].get();
        if (n == nullptr) return;  // path vanished (shouldn't happen right after erase)
        path[len++] = n;
    }
    while (len > 1) {
        Node* leaf = path[len - 1];
        if (leaf->has_route || leaf->child[0] || leaf->child[1]) break;
        Node* parent = path[len - 2];
        const unsigned b = netbase::bit_at(prefix.bits(), len - 2);
        assert(parent->child[b].get() == leaf);
        parent->child[b].reset();
        --nodes_;
        --len;
    }
    if (root_ && !root_->has_route && !root_->child[0] && !root_->child[1]) {
        root_.reset();
        --nodes_;
    }
}

template <class Addr>
NextHop RadixTrie<Addr>::lookup(Addr addr) const noexcept
{
    const value_type key = addr.value();
    NextHop best = kNoRoute;
    const Node* n = root_.get();
    unsigned depth = 0;
    while (n != nullptr) {
        if (n->has_route) best = n->next_hop;
        if (depth == kWidth) break;
        n = n->child[netbase::bit_at(key, depth)].get();
        ++depth;
    }
    return best;
}

template <class Addr>
typename RadixTrie<Addr>::LookupDetail RadixTrie<Addr>::lookup_detail(Addr addr) const noexcept
{
    const value_type key = addr.value();
    LookupDetail out;
    const Node* n = root_.get();
    unsigned depth = 0;
    while (n != nullptr) {
        if (n->has_route) {
            out.next_hop = n->next_hop;
            out.matched_length = depth;
            out.matched = true;
        }
        out.radix_depth = depth;
        if (depth == kWidth) break;
        n = n->child[netbase::bit_at(key, depth)].get();
        ++depth;
    }
    return out;
}

template <class Addr>
NextHop RadixTrie<Addr>::find(const prefix_type& prefix) const noexcept
{
    const Node* n = walk_to(prefix);
    return (n != nullptr && n->has_route) ? n->next_hop : kNoRoute;
}

template <class Addr>
void RadixTrie<Addr>::mark_subtree(const prefix_type& prefix)
{
    // Mark the path from the root down (ancestors see a shape change when
    // nodes appear/disappear), then the affected subtree.
    Node* n = root_.get();
    if (n == nullptr) return;
    n->marked = true;
    for (unsigned depth = 0; n != nullptr && depth < prefix.length(); ++depth) {
        n = n->child[netbase::bit_at(prefix.bits(), depth)].get();
        if (n != nullptr) n->marked = true;
    }
    if (n == nullptr) return;
    // Below the prefix, resolution changes only where this route is the
    // longest match: stop at more specific routes.
    for (auto& c : n->child)
        if (c != nullptr && !c->has_route) mark_rec(c.get());
}

template <class Addr>
void RadixTrie<Addr>::clear_marks(const prefix_type& prefix)
{
    Node* n = root_.get();
    if (n == nullptr) return;
    n->marked = false;
    for (unsigned depth = 0; n != nullptr && depth < prefix.length(); ++depth) {
        n = n->child[netbase::bit_at(prefix.bits(), depth)].get();
        if (n != nullptr) n->marked = false;
    }
    if (n != nullptr) clear_rec(n);
}

using RadixTrie4 = RadixTrie<netbase::Ipv4Addr>;
using RadixTrie6 = RadixTrie<netbase::Ipv6Addr>;

extern template class RadixTrie<netbase::Ipv4Addr>;
extern template class RadixTrie<netbase::Ipv6Addr>;

}  // namespace rib
