#include "rib/table_stats.hpp"

#include <unordered_set>

namespace rib {

template <class Addr>
TableStats<Addr> compute_stats(const RouteList<Addr>& routes)
{
    TableStats<Addr> s;
    std::unordered_set<NextHop> hops;
    for (const auto& r : routes) {
        ++s.prefix_count;
        const auto len = r.prefix.length();
        ++s.length_histogram[len];
        if (len > s.max_length) s.max_length = len;
        hops.insert(r.next_hop);
    }
    s.distinct_next_hops = hops.size();
    return s;
}

template TableStats<netbase::Ipv4Addr> compute_stats(const RouteList<netbase::Ipv4Addr>&);
template TableStats<netbase::Ipv6Addr> compute_stats(const RouteList<netbase::Ipv6Addr>&);

}  // namespace rib
