// rib/patricia.hpp — path-compressed binary trie (Patricia, Morrison 1968).
//
// The paper names "radix or Patricia trie" as the RIB structures FIBs are
// compiled from (§3), and its related work cites Sklower's BSD routing table
// as the classic software LPM. Where the plain radix trie spends one node
// per bit, Patricia collapses non-branching chains into one node per
// *decision*, which roughly halves the node count and the pointer chases on
// real tables — still tens of memory accesses per lookup (§2), which is the
// whole motivation for the compressed multiway structures this repository
// is about.
//
// The node layout here is the "compressed radix tree" formulation: each
// node owns a canonical prefix; a node's children extend its prefix by at
// least one bit; routes sit on the nodes whose prefix equals the route's.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#include "netbase/bits.hpp"
#include "netbase/prefix.hpp"
#include "rib/route.hpp"

namespace rib {

/// Path-compressed LPM trie over Addr (netbase::Ipv4Addr or Ipv6Addr).
template <class Addr>
class PatriciaTrie {
public:
    using value_type = typename Addr::value_type;
    using prefix_type = netbase::Prefix<Addr>;
    static constexpr unsigned kWidth = Addr::kWidth;

    struct Node {
        prefix_type prefix;
        std::unique_ptr<Node> child[2];
        NextHop next_hop = kNoRoute;
        bool has_route = false;
    };

    PatriciaTrie() = default;
    PatriciaTrie(PatriciaTrie&&) noexcept = default;
    PatriciaTrie& operator=(PatriciaTrie&&) noexcept = default;

    /// Inserts `prefix -> next_hop`, replacing any existing route.
    void insert(const prefix_type& prefix, NextHop next_hop);

    /// Removes the route at exactly `prefix`. Returns false if absent.
    bool erase(const prefix_type& prefix);

    /// Longest-prefix-match lookup; kNoRoute on miss.
    [[nodiscard]] NextHop lookup(Addr addr) const noexcept
    {
        NextHop best = kNoRoute;
        const Node* n = root_.get();
        while (n != nullptr) {
            if (!n->prefix.contains(addr)) break;
            if (n->has_route) best = n->next_hop;
            if (n->prefix.length() == kWidth) break;
            n = n->child[netbase::bit_at(addr.value(), n->prefix.length())].get();
        }
        return best;
    }

    /// Exact-match lookup; kNoRoute if `prefix` carries no route.
    [[nodiscard]] NextHop find(const prefix_type& prefix) const noexcept;

    [[nodiscard]] std::size_t route_count() const noexcept { return routes_; }
    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }
    [[nodiscard]] std::size_t memory_bytes() const noexcept { return nodes_ * sizeof(Node); }
    [[nodiscard]] const Node* root() const noexcept { return root_.get(); }

    /// Visits every route as (prefix, next_hop), in trie order.
    template <class F>
    void for_each_route(F&& fn) const
    {
        walk(root_.get(), fn);
    }

    /// Bulk-load convenience.
    void insert_all(const RouteList<Addr>& list)
    {
        for (const auto& r : list) insert(r.prefix, r.next_hop);
    }

    /// Structural invariant check (used by the tests): children strictly
    /// extend their parent's prefix, all leaves carry routes, and no
    /// route-less node has fewer than two children (full path compression).
    [[nodiscard]] bool invariants_hold() const noexcept
    {
        return check(root_.get(), nullptr);
    }

private:
    std::unique_ptr<Node> make_node(const prefix_type& p) const
    {
        auto n = std::make_unique<Node>();
        n->prefix = p;
        return n;
    }

    void insert_at(std::unique_ptr<Node>& slot, const prefix_type& prefix, NextHop next_hop);
    bool erase_at(std::unique_ptr<Node>& slot, const prefix_type& prefix);
    void compress(std::unique_ptr<Node>& slot);

    template <class F>
    static void walk(const Node* n, F& fn)
    {
        if (n == nullptr) return;
        if (n->has_route) fn(n->prefix, n->next_hop);
        walk(n->child[0].get(), fn);
        walk(n->child[1].get(), fn);
    }

    static bool check(const Node* n, const Node* parent) noexcept
    {
        if (n == nullptr) return true;
        if (parent != nullptr) {
            if (n->prefix.length() <= parent->prefix.length()) return false;
            if (!parent->prefix.contains(n->prefix)) return false;
        }
        const bool leaf = !n->child[0] && !n->child[1];
        if (leaf && !n->has_route) return false;
        const bool single_child = (n->child[0] == nullptr) != (n->child[1] == nullptr);
        if (single_child && !n->has_route && parent != nullptr) return false;
        return check(n->child[0].get(), n) && check(n->child[1].get(), n);
    }

    std::unique_ptr<Node> root_;
    std::size_t routes_ = 0;
    std::size_t nodes_ = 0;
};

// ---------------------------------------------------------------------------

template <class Addr>
void PatriciaTrie<Addr>::insert(const prefix_type& prefix, NextHop next_hop)
{
    assert(next_hop != kNoRoute);
    insert_at(root_, prefix, next_hop);
}

template <class Addr>
void PatriciaTrie<Addr>::insert_at(std::unique_ptr<Node>& slot, const prefix_type& prefix,
                                   NextHop next_hop)
{
    if (!slot) {
        slot = make_node(prefix);
        ++nodes_;
        slot->has_route = true;
        slot->next_hop = next_hop;
        ++routes_;
        return;
    }
    Node& n = *slot;
    const unsigned common = netbase::common_prefix_length(
        n.prefix.bits(), prefix.bits(),
        std::min(n.prefix.length(), prefix.length()));

    if (common < n.prefix.length()) {
        // Diverges inside this node's edge: split at `common`.
        const prefix_type mid{prefix.address(), common};
        auto fresh = make_node(mid);
        ++nodes_;
        const unsigned old_bit = netbase::bit_at(n.prefix.bits(), common);
        fresh->child[old_bit] = std::move(slot);
        if (common == prefix.length()) {
            // The new route lives exactly at the split point.
            fresh->has_route = true;
            fresh->next_hop = next_hop;
            ++routes_;
        } else {
            auto leaf = make_node(prefix);
            ++nodes_;
            leaf->has_route = true;
            leaf->next_hop = next_hop;
            ++routes_;
            fresh->child[1 - old_bit] = std::move(leaf);
        }
        slot = std::move(fresh);
        return;
    }
    // n.prefix is a prefix of `prefix`.
    if (prefix.length() == n.prefix.length()) {
        if (!n.has_route) ++routes_;
        n.has_route = true;
        n.next_hop = next_hop;
        return;
    }
    insert_at(n.child[netbase::bit_at(prefix.bits(), n.prefix.length())], prefix, next_hop);
}

template <class Addr>
bool PatriciaTrie<Addr>::erase(const prefix_type& prefix)
{
    return erase_at(root_, prefix);
}

template <class Addr>
bool PatriciaTrie<Addr>::erase_at(std::unique_ptr<Node>& slot, const prefix_type& prefix)
{
    if (!slot) return false;
    Node& n = *slot;
    if (n.prefix.length() > prefix.length() || !n.prefix.contains(prefix)) return false;
    if (n.prefix.length() == prefix.length()) {
        if (n.prefix != prefix || !n.has_route) return false;
        n.has_route = false;
        n.next_hop = kNoRoute;
        --routes_;
        compress(slot);
        return true;
    }
    const unsigned b = netbase::bit_at(prefix.bits(), n.prefix.length());
    if (!erase_at(n.child[b], prefix)) return false;
    compress(slot);
    return true;
}

template <class Addr>
void PatriciaTrie<Addr>::compress(std::unique_ptr<Node>& slot)
{
    if (!slot || slot->has_route) return;
    Node& n = *slot;
    const bool has0 = n.child[0] != nullptr;
    const bool has1 = n.child[1] != nullptr;
    if (!has0 && !has1) {
        slot.reset();
        --nodes_;
        return;
    }
    if (has0 != has1) {
        // Route-less single-child node: splice the child up (its prefix
        // already encodes the full path).
        slot = std::move(n.child[has0 ? 0 : 1]);
        --nodes_;
    }
}

template <class Addr>
NextHop PatriciaTrie<Addr>::find(const prefix_type& prefix) const noexcept
{
    const Node* n = root_.get();
    while (n != nullptr) {
        if (n->prefix.length() > prefix.length() || !n->prefix.contains(prefix)) return kNoRoute;
        if (n->prefix.length() == prefix.length())
            return (n->prefix == prefix && n->has_route) ? n->next_hop : kNoRoute;
        n = n->child[netbase::bit_at(prefix.bits(), n->prefix.length())].get();
    }
    return kNoRoute;
}

using PatriciaTrie4 = PatriciaTrie<netbase::Ipv4Addr>;
using PatriciaTrie6 = PatriciaTrie<netbase::Ipv6Addr>;

extern template class PatriciaTrie<netbase::Ipv4Addr>;
extern template class PatriciaTrie<netbase::Ipv6Addr>;

}  // namespace rib
