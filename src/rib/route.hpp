// rib/route.hpp — routes and next hops.
//
// Throughout the library a "next hop" is a 16-bit FIB index, exactly the leaf
// width the paper uses ("the size of a leaf node is 16 bits, hence the number
// of FIB entries is limited to 2^16", §5). Index 0 is reserved to mean "no
// route": a lookup miss returns kNoRoute, and tables that want a default
// route install 0.0.0.0/0 explicitly.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/prefix.hpp"

namespace rib {

/// FIB index / next-hop identifier. 16 bits as in the paper's leaf nodes.
using NextHop = std::uint16_t;

/// Sentinel next hop returned on lookup miss. Never a valid route target.
inline constexpr NextHop kNoRoute = 0;

/// One routing-table entry: a prefix and the FIB index of its next hop.
template <class Addr>
struct Route {
    netbase::Prefix<Addr> prefix;
    NextHop next_hop = kNoRoute;

    friend constexpr bool operator==(const Route&, const Route&) = default;
};

using Route4 = Route<netbase::Ipv4Addr>;
using Route6 = Route<netbase::Ipv6Addr>;

template <class Addr>
using RouteList = std::vector<Route<Addr>>;

}  // namespace rib
