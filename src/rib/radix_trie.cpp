#include "rib/radix_trie.hpp"

namespace rib {

template class RadixTrie<netbase::Ipv4Addr>;
template class RadixTrie<netbase::Ipv6Addr>;

}  // namespace rib
