// workload/tablegen.hpp — synthetic routing tables.
//
// The paper evaluates on 35 real RIBs (RouteViews archives + three ISP
// tables, Table 1) that are not redistributable; these generators are the
// documented substitution (see DESIGN.md §2). They reproduce the properties
// the evaluated structures are sensitive to:
//   * the empirical BGP prefix-length mix (§4.1: "most of the prefixes are
//     distributed from /11 through /24", with the /24 mode);
//   * nesting/deaggregation, so that the binary radix depth often exceeds
//     the matched prefix length (Fig. 7's hole punching);
//   * small/large next-hop sets (Table 1's 9–530 distinct next hops);
//   * IGP routes longer than /24 concentrated in infrastructure blocks
//     (the REAL-* tables' distinguishing feature, §4.1/§4.7);
//   * clustering of >16-bit routes into a bounded set of /16 blocks, which
//     is what determines whether SAIL's 15-bit chunk ids suffice (§4.8).
//
// The SYN1/SYN2 expansion procedures are the paper's own (§4.1), applied
// verbatim; an optional target count subsamples which prefixes split so the
// table sizes of Table 5 can be matched exactly.
#pragma once

#include <cstdint>
#include <optional>

#include "rib/route.hpp"

namespace workload {

/// Knobs for the IPv4 table generator.
struct TableGenConfig {
    std::uint64_t seed = 1;
    std::size_t target_routes = 520'000;  ///< BGP routes (before IGP extras)
    unsigned next_hops = 100;             ///< distinct BGP next hops
    std::size_t igp_routes = 0;           ///< extra /25–/32 routes (REAL-*)
    unsigned igp_next_hops = 8;           ///< distinct next hops for IGP routes
    unsigned region_slash8 = 147;         ///< allocated address-space size
    /// Fraction of allocated /16 blocks eligible to contain >/16 routes;
    /// tuned so SAIL compiles base tables and SYN1, but not SYN2 (§4.8).
    double deep_pool_fraction = 0.82;
    /// Probability that a prefix is nested inside an earlier, shorter one.
    double nest_fraction = 0.35;
};

/// Generates a RouteViews/Tier1-like IPv4 table.
[[nodiscard]] rib::RouteList<netbase::Ipv4Addr> generate_table(const TableGenConfig& cfg);

/// §4.1 synthetic expansion. level = 1 → SYN1 (≤/16 into 4, /17–/23 into 2),
/// level = 2 → SYN2 (≤/16 into 8, /17–/20 into 4, /21–/24 into 2). The i-th
/// piece gets next hop n + i * (original distinct next-hop count), so split
/// pieces never collide with existing hops, as in the paper. When
/// `target_routes` is set, a deterministic subset of eligible prefixes is
/// split so the result lands within ~0.5% of the target (the paper's SYN
/// tables grew less than a full split implies; see EXPERIMENTS.md).
[[nodiscard]] rib::RouteList<netbase::Ipv4Addr> syn_expand(
    const rib::RouteList<netbase::Ipv4Addr>& input, int level,
    std::optional<std::size_t> target_routes = std::nullopt,
    std::uint64_t seed = 42);

/// Knobs for the IPv6 table generator (§4.10: ~20k prefixes inside 2000::/3,
/// lengths concentrated at /32 and /48).
struct TableGen6Config {
    std::uint64_t seed = 1;
    std::size_t target_routes = 20'440;  ///< the paper's dataset size
    unsigned next_hops = 13;
};

/// Generates an IPv6 table.
[[nodiscard]] rib::RouteList<netbase::Ipv6Addr> generate_table6(const TableGen6Config& cfg);

/// Knobs for the million-route scale-out generators. Unlike TableGenConfig
/// (tuned to reproduce the paper's 2014-era ~520k tables and the SAIL/DXR
/// compile-vs-overflow boundary), these model a SHIP-style allocation
/// hierarchy — RIR-scale super-blocks, skewed LIR sub-allocations, and
/// deaggregated customer prefixes — and stay feasible from 10^5 up to 10^7
/// routes: per-length absolute capacity is bounded by the address space
/// actually available at that length, and surplus demand spills to longer
/// prefixes exactly as registry exhaustion deaggregates real tables.
///
/// Determinism contract: the output is a pure function of this struct — no
/// floating point, no container-order dependence — and is byte-stable across
/// platforms and standard-library implementations (tests/test_scale.cpp pins
/// golden hashes).
struct ScaledTableConfig {
    std::uint64_t seed = 1;
    std::size_t target_routes = 1'000'000;
    unsigned next_hops = 100;  ///< distinct next hops (skewed popularity)
};

/// Generates a scale-out IPv4 table of exactly `target_routes` routes
/// (default-route anchor included). Throws netbase::StructuralLimit if the
/// target exceeds the modeled registry (2^25 ≈ 33.5M prefixes).
[[nodiscard]] rib::RouteList<netbase::Ipv4Addr> generate_scaled_table(
    const ScaledTableConfig& cfg);

/// IPv6 variant: realistic-density tables inside 2000::/3 (mass at /32 and
/// /48), same determinism contract and hierarchy model.
struct ScaledTable6Config {
    std::uint64_t seed = 1;
    std::size_t target_routes = 200'000;
    unsigned next_hops = 100;
};

/// Generates a scale-out IPv6 table of exactly `target_routes` routes.
[[nodiscard]] rib::RouteList<netbase::Ipv6Addr> generate_scaled_table6(
    const ScaledTable6Config& cfg);

}  // namespace workload
