// workload/xorshift.hpp — Marsaglia xorshift RNGs.
//
// §4.2: "232 random IP addresses are generated using xorshift ... which
// allocates only four 32-bit variables", i.e. the xorshift128 generator from
// Marsaglia (2003). We use it both to reproduce the paper's query stream
// (generated just-in-time so the FIB is not pushed out of cache) and as the
// seedable PRNG behind the table generators.
#pragma once

#include <cstdint>

namespace workload {

/// Marsaglia's xorshift128: four 32-bit words of state, period 2^128 - 1.
class Xorshift128 {
public:
    /// Default state is Marsaglia's published constants.
    constexpr Xorshift128() = default;

    /// Seeded state: the seed is mixed into all four words (zero state is
    /// remapped, as an all-zero state would be a fixed point).
    constexpr explicit Xorshift128(std::uint64_t seed) noexcept
    {
        x_ ^= static_cast<std::uint32_t>(seed);
        y_ ^= static_cast<std::uint32_t>(seed >> 32);
        z_ ^= static_cast<std::uint32_t>(seed * 0x9E3779B9u);
        w_ ^= static_cast<std::uint32_t>((seed >> 16) * 0x85EBCA6Bu);
        if ((x_ | y_ | z_ | w_) == 0) x_ = 1;
        // Warm up so that similar seeds diverge.
        for (int i = 0; i < 8; ++i) (void)next();
    }

    /// Next 32-bit value.
    constexpr std::uint32_t next() noexcept
    {
        const std::uint32_t t = x_ ^ (x_ << 11);
        x_ = y_;
        y_ = z_;
        z_ = w_;
        w_ = w_ ^ (w_ >> 19) ^ t ^ (t >> 8);
        return w_;
    }

    /// Next value in [0, bound) without modulo bias worth caring about for
    /// workload generation (Lemire-style multiply-shift).
    constexpr std::uint32_t next_below(std::uint32_t bound) noexcept
    {
        return static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(next()) * bound) >> 32);
    }

    /// Next double in [0, 1).
    constexpr double next_double() noexcept { return next() * 0x1.0p-32; }

    /// Next 64-bit value.
    constexpr std::uint64_t next64() noexcept
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

private:
    std::uint32_t x_ = 123456789;
    std::uint32_t y_ = 362436069;
    std::uint32_t z_ = 521288629;
    std::uint32_t w_ = 88675123;
};

/// Stateless mixing hash (splitmix64 finalizer); used for deterministic
/// per-item decisions (e.g. which /16 blocks are "deep-eligible").
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t v) noexcept
{
    v += 0x9E3779B97F4A7C15ull;
    v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ull;
    v = (v ^ (v >> 27)) * 0x94D049BB133111EBull;
    return v ^ (v >> 31);
}

}  // namespace workload
