#include "workload/datasets.hpp"

namespace workload {
namespace {

// Table 1's RouteViews rows: name, prefix count, distinct next hops.
struct Row {
    const char* name;
    std::size_t prefixes;
    unsigned next_hops;
};
constexpr Row kRouteViewsRows[] = {
    {"RV-linx-p46", 518'231, 308},     {"RV-linx-p50", 512'476, 410},
    {"RV-linx-p52", 514'590, 419},     {"RV-linx-p57", 514'070, 142},
    {"RV-linx-p60", 508'700, 70},      {"RV-linx-p61", 512'476, 149},
    {"RV-nwax-p1", 519'224, 60},       {"RV-nwax-p2", 514'627, 46},
    {"RV-nwax-p5", 519'195, 49},       {"RV-paixisc-p12", 519'142, 68},
    {"RV-paixisc-p14", 524'168, 49},   {"RV-saopaulo-p12", 516'536, 510},
    {"RV-saopaulo-p13", 517'914, 504}, {"RV-saopaulo-p16", 521'405, 528},
    {"RV-saopaulo-p18", 521'874, 522}, {"RV-saopaulo-p2", 523'092, 530},
    {"RV-saopaulo-p20", 523'574, 470}, {"RV-saopaulo-p23", 523'013, 517},
    {"RV-saopaulo-p25", 532'637, 523}, {"RV-saopaulo-p26", 516'408, 479},
    {"RV-saopaulo-p8", 522'296, 477},  {"RV-saopaulo-p9", 515'639, 507},
    {"RV-singapore-p3", 518'620, 136}, {"RV-singapore-p5", 516'557, 129},
    {"RV-sydney-p0", 520'580, 122},    {"RV-sydney-p1", 515'809, 125},
    {"RV-sydney-p3", 517'511, 115},    {"RV-sydney-p4", 519'246, 86},
    {"RV-sydney-p9", 523'400, 127},    {"RV-telxatl-p3", 511'161, 56},
    {"RV-telxatl-p6", 519'537, 42},    {"RV-telxatl-p7", 513'339, 49},
};

}  // namespace

std::vector<DatasetSpec> routeviews_specs()
{
    std::vector<DatasetSpec> specs;
    std::uint64_t seed = 1001;
    for (const auto& row : kRouteViewsRows) {
        TableGenConfig cfg;
        cfg.seed = seed++;
        cfg.target_routes = row.prefixes;
        cfg.next_hops = row.next_hops;
        cfg.igp_routes = 0;
        specs.push_back({row.name, cfg});
    }
    return specs;
}

DatasetSpec real_tier1_a()
{
    TableGenConfig cfg;
    cfg.seed = 2001;
    cfg.target_routes = 516'000;  // + ~15.5k IGP ≈ Table 1's 531,489
    cfg.next_hops = 13;
    cfg.igp_routes = 15'489;
    cfg.igp_next_hops = 13;
    return {"REAL-Tier1-A", cfg};
}

DatasetSpec real_tier1_b()
{
    TableGenConfig cfg;
    cfg.seed = 2002;
    cfg.target_routes = 510'000;  // ≈ Table 1's 524,170 with IGP extras
    cfg.next_hops = 9;
    cfg.igp_routes = 14'170;
    cfg.igp_next_hops = 9;
    return {"REAL-Tier1-B", cfg};
}

DatasetSpec real_renet()
{
    TableGenConfig cfg;
    cfg.seed = 2003;
    cfg.target_routes = 508'000;  // ≈ Table 1's 516,100 with IGP extras
    cfg.next_hops = 32;
    cfg.igp_routes = 8'100;
    cfg.igp_next_hops = 32;
    return {"REAL-RENET", cfg};
}

std::vector<DatasetSpec> all_ipv4_specs()
{
    std::vector<DatasetSpec> specs{real_tier1_a(), real_tier1_b(), real_renet()};
    auto rv = routeviews_specs();
    specs.insert(specs.end(), rv.begin(), rv.end());
    return specs;
}

rib::RouteList<netbase::Ipv4Addr> make_table(const DatasetSpec& spec)
{
    return generate_table(spec.config);
}

rib::RouteList<netbase::Ipv4Addr> make_syn(const rib::RouteList<netbase::Ipv4Addr>& base,
                                           int level, std::size_t target)
{
    return syn_expand(base, level, target);
}

}  // namespace workload
