// workload/trafficgen.hpp — the four §4.2 traffic patterns.
//
//   random     — xorshift addresses generated just-in-time by the bench loop
//                (see Xorshift128); nothing to pregenerate here.
//   sequential — 0.0.0.0 .. 255.255.255.255 in order; also just-in-time.
//   repeated   — each random address issued 16 times.
//   real-trace — the paper replays a MAWI trace (97M packets, 644,790
//                distinct destinations, strong temporal locality, biased
//                toward deep IGP space: 32.5% of packets deeper than /18 and
//                21.8% deeper than /24 in the binary radix, §4.7). The trace
//                is not redistributable, so make_real_trace_like() draws a
//                destination set with those depth properties from the given
//                table, gives it Zipf popularity, and adds bursty temporal
//                locality; it is pre-materialized into an array exactly as
//                the paper does ("we load all the destination IP addresses
//                ... into an array in memory in advance").
#pragma once

#include <cstdint>
#include <vector>

#include "rib/radix_trie.hpp"
#include "rib/route.hpp"

namespace workload {

/// Tunables for the synthetic real-trace.
struct TraceConfig {
    std::uint64_t seed = 7;
    std::size_t distinct_destinations = 644'790;  ///< §4.7's trace
    std::size_t packets = 4'000'000;              ///< scaled-down default
    double zipf_alpha = 1.05;
    double deep18_fraction = 0.325;  ///< packets with binary radix depth > 18
    double deep24_fraction = 0.218;  ///< packets with binary radix depth > 24
    double burst_continue = 0.55;    ///< P(next packet keeps the same dst)
};

/// Builds a destination-address stream with the §4.7 depth mix and locality.
/// `rib` supplies the route set the depths are measured against.
[[nodiscard]] std::vector<std::uint32_t> make_real_trace_like(
    const rib::RadixTrie<netbase::Ipv4Addr>& rib, const TraceConfig& cfg = {});

/// Fraction of `trace` whose binary radix depth exceeds `depth` (used to
/// validate the trace generator against §4.7's numbers).
[[nodiscard]] double deep_fraction(const rib::RadixTrie<netbase::Ipv4Addr>& rib,
                                   const std::vector<std::uint32_t>& trace, unsigned depth);

/// Tunables for the scale-out destination stream (bench_scaling). Unlike
/// make_real_trace_like this needs no RadixTrie — it samples straight from
/// the route list, so it stays O(packets) even against 10M-route tables.
struct ScaledTraceConfig {
    std::uint64_t seed = 7;
    std::size_t packets = 1'000'000;
    /// Per-mille of packets that are uniform random (mostly misses /
    /// default-route hits); the rest land inside a skew-chosen route.
    unsigned miss_permille = 20;
};

/// Destination stream matched to a scale-out table: each packet picks a
/// route with squared-uniform (popularity-skewed) index and a random host
/// suffix inside it, exercising full-depth walks across the whole resident
/// structure. Deterministic in (routes order, cfg).
[[nodiscard]] std::vector<std::uint32_t> make_scaled_trace(
    const rib::RouteList<netbase::Ipv4Addr>& routes, const ScaledTraceConfig& cfg = {});

}  // namespace workload
