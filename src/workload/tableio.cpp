#include "workload/tableio.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "netbase/prefix.hpp"

namespace workload {
namespace {

std::string_view trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

// Parses "<prefix-text> <hop>"; PrefixParser is parse_prefix4/parse_prefix6.
template <class Prefix, class Parser>
rib::RouteList<typename Prefix::addr_type> load_impl(std::istream& in, Parser&& parse_prefix)
{
    rib::RouteList<typename Prefix::addr_type> routes;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string_view body = trim(line);
        if (const auto hash = body.find('#'); hash != std::string_view::npos)
            body = trim(body.substr(0, hash));
        if (body.empty()) continue;

        const auto space = body.find_first_of(" \t");
        if (space == std::string_view::npos)
            throw TableIoError(line_no, "expected '<prefix> <next_hop>'");
        const auto prefix_text = body.substr(0, space);
        const auto hop_text = trim(body.substr(space + 1));

        const auto prefix = parse_prefix(prefix_text);
        if (!prefix)
            throw TableIoError(line_no, "malformed prefix '" + std::string{prefix_text} + "'");
        unsigned hop = 0;
        const auto [p, ec] =
            std::from_chars(hop_text.data(), hop_text.data() + hop_text.size(), hop);
        if (ec != std::errc{} || p != hop_text.data() + hop_text.size())
            throw TableIoError(line_no, "malformed next hop '" + std::string{hop_text} + "'");
        if (hop == rib::kNoRoute || hop > 0xFFFF)
            throw TableIoError(line_no, "next hop must be in [1, 65535]");
        routes.push_back({*prefix, static_cast<rib::NextHop>(hop)});
    }
    return routes;
}

template <class Addr>
void save_impl(std::ostream& out, const rib::RouteList<Addr>& routes)
{
    out << "# poptrie-repro table: " << routes.size() << " routes\n";
    for (const auto& r : routes)
        out << netbase::to_string(r.prefix) << ' ' << r.next_hop << '\n';
}

template <class Loader>
auto load_file(const std::string& path, Loader&& loader)
{
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open '" + path + "' for reading");
    return loader(in);
}

template <class Addr>
void save_file(const std::string& path, const rib::RouteList<Addr>& routes)
{
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
    save_impl(out, routes);
    if (!out.flush()) throw std::runtime_error("write to '" + path + "' failed");
}

}  // namespace

void save_table(std::ostream& out, const rib::RouteList<netbase::Ipv4Addr>& routes)
{
    save_impl(out, routes);
}

void save_table(std::ostream& out, const rib::RouteList<netbase::Ipv6Addr>& routes)
{
    save_impl(out, routes);
}

void save_table_file(const std::string& path, const rib::RouteList<netbase::Ipv4Addr>& routes)
{
    save_file(path, routes);
}

void save_table_file(const std::string& path, const rib::RouteList<netbase::Ipv6Addr>& routes)
{
    save_file(path, routes);
}

rib::RouteList<netbase::Ipv4Addr> load_table4(std::istream& in)
{
    return load_impl<netbase::Prefix4>(in, [](std::string_view t) {
        return netbase::parse_prefix4(t);
    });
}

rib::RouteList<netbase::Ipv6Addr> load_table6(std::istream& in)
{
    return load_impl<netbase::Prefix6>(in, [](std::string_view t) {
        return netbase::parse_prefix6(t);
    });
}

rib::RouteList<netbase::Ipv4Addr> load_table4_file(const std::string& path)
{
    return load_file(path, [](std::istream& in) { return load_table4(in); });
}

rib::RouteList<netbase::Ipv6Addr> load_table6_file(const std::string& path)
{
    return load_file(path, [](std::istream& in) { return load_table6(in); });
}

}  // namespace workload
