#include "workload/trafficgen.hpp"

#include <algorithm>

#include "workload/xorshift.hpp"
#include "workload/zipf.hpp"

namespace workload {
namespace {

using rib::RadixTrie;
using Rib4 = RadixTrie<netbase::Ipv4Addr>;

// Draws an address whose binary radix depth is in (min_depth, max_depth]
// by walking random routes: picks a random route of suitable length and
// randomizes host bits; rejects until the depth predicate holds.
std::uint32_t draw_with_depth(const Rib4& rib,
                              const std::vector<rib::Route<netbase::Ipv4Addr>>& routes,
                              Xorshift128& rng, unsigned min_depth)
{
    for (int attempt = 0; attempt < 256; ++attempt) {
        const auto& r = routes[rng.next_below(static_cast<std::uint32_t>(routes.size()))];
        if (min_depth > 0 && r.prefix.length() <= min_depth) continue;
        const std::uint32_t host_mask =
            r.prefix.length() >= 32
                ? 0u
                : ~netbase::high_mask<std::uint32_t>(r.prefix.length());
        const std::uint32_t addr = r.prefix.bits() | (rng.next() & host_mask);
        const auto detail = rib.lookup_detail(netbase::Ipv4Addr{addr});
        if (detail.radix_depth > min_depth) return addr;
    }
    // Fallback: anything (keeps the generator total even on sparse tables).
    return rng.next();
}

}  // namespace

std::vector<std::uint32_t> make_real_trace_like(const Rib4& rib, const TraceConfig& cfg)
{
    Xorshift128 rng(cfg.seed);
    const auto routes = rib.routes();

    // Destination pool with the target depth mix.
    std::vector<std::uint32_t> pool;
    pool.reserve(cfg.distinct_destinations);
    const auto n24 = static_cast<std::size_t>(static_cast<double>(cfg.distinct_destinations) *
                                              cfg.deep24_fraction);
    const auto n18 = static_cast<std::size_t>(static_cast<double>(cfg.distinct_destinations) *
                                              (cfg.deep18_fraction - cfg.deep24_fraction));
    for (std::size_t i = 0; i < n24; ++i)
        pool.push_back(draw_with_depth(rib, routes, rng, 24));
    for (std::size_t i = 0; i < n18; ++i)
        pool.push_back(draw_with_depth(rib, routes, rng, 18));
    while (pool.size() < cfg.distinct_destinations) {
        // Shallow traffic: uniform over the address space, so its depth
        // profile mirrors the whole-space distribution (§4.7 compares the
        // trace's depth mix against exactly that baseline). Tables built by
        // the generators carry a default route, so these still resolve.
        pool.push_back(rng.next());
    }
    // Shuffle so Zipf rank is uncorrelated with depth class.
    for (std::size_t i = pool.size(); i > 1; --i)
        std::swap(pool[i - 1], pool[rng.next_below(static_cast<std::uint32_t>(i))]);

    // Replay: Zipf popularity + bursts of identical destinations (TCP flows).
    const ZipfSampler zipf(pool.size(), cfg.zipf_alpha);
    std::vector<std::uint32_t> trace;
    trace.reserve(cfg.packets);
    std::uint32_t current = pool[zipf.sample(rng)];
    for (std::size_t i = 0; i < cfg.packets; ++i) {
        trace.push_back(current);
        if (rng.next_double() >= cfg.burst_continue) current = pool[zipf.sample(rng)];
    }
    return trace;
}

double deep_fraction(const Rib4& rib, const std::vector<std::uint32_t>& trace, unsigned depth)
{
    if (trace.empty()) return 0;
    std::size_t deep = 0;
    for (const auto a : trace)
        if (rib.lookup_detail(netbase::Ipv4Addr{a}).radix_depth > depth) ++deep;
    return static_cast<double>(deep) / static_cast<double>(trace.size());
}

std::vector<std::uint32_t> make_scaled_trace(const rib::RouteList<netbase::Ipv4Addr>& routes,
                                             const ScaledTraceConfig& cfg)
{
    Xorshift128 rng(cfg.seed);
    std::vector<std::uint32_t> trace;
    trace.reserve(cfg.packets);
    const auto n = routes.size();
    for (std::size_t i = 0; i < cfg.packets; ++i) {
        const std::uint32_t u = rng.next();
        if (n == 0 || u % 1000 < cfg.miss_permille) {
            trace.push_back(rng.next());
            continue;
        }
        // Squared-uniform route index: a handful of popular prefixes carry
        // most packets, the tail still gets touched.
        const auto skew = static_cast<std::uint32_t>((std::uint64_t{u} * u) >> 32);
        const auto idx = static_cast<std::size_t>((static_cast<std::uint64_t>(skew) * n) >> 32);
        const auto& p = routes[idx].prefix;
        trace.push_back(p.bits() |
                        (rng.next() & ~netbase::high_mask<std::uint32_t>(p.length())));
    }
    return trace;
}

}  // namespace workload
