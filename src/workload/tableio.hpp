// workload/tableio.hpp — plain-text routing-table files.
//
// Format: one route per line, "<prefix> <next_hop>", with '#' comments and
// blank lines ignored:
//
//     # RouteViews-like table, 531489 routes
//     0.0.0.0/0 1
//     10.0.0.0/8 2
//     2001:db8::/32 7        (IPv6 files use IPv6 prefixes)
//
// This keeps generated datasets reproducible across runs and machines, and
// lets users who *do* have real RIB dumps (RouteViews MRT exports convert to
// this with one awk line) run every bench on them.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "rib/route.hpp"

namespace workload {

/// Malformed table file: carries the 1-based line number and the reason.
class TableIoError : public std::runtime_error {
public:
    TableIoError(std::size_t line, const std::string& reason)
        : std::runtime_error("line " + std::to_string(line) + ": " + reason), line_(line)
    {
    }
    [[nodiscard]] std::size_t line() const noexcept { return line_; }

private:
    std::size_t line_;
};

/// Writes `routes` to `out`, one per line, with a size header comment.
void save_table(std::ostream& out, const rib::RouteList<netbase::Ipv4Addr>& routes);
void save_table(std::ostream& out, const rib::RouteList<netbase::Ipv6Addr>& routes);

/// Convenience: writes to a file. Throws std::runtime_error if unwritable.
void save_table_file(const std::string& path, const rib::RouteList<netbase::Ipv4Addr>& routes);
void save_table_file(const std::string& path, const rib::RouteList<netbase::Ipv6Addr>& routes);

/// Parses a table from `in`. Throws TableIoError on malformed lines
/// (bad prefix, bad/absent next hop, next hop 0 or > 65535, trailing junk).
[[nodiscard]] rib::RouteList<netbase::Ipv4Addr> load_table4(std::istream& in);
[[nodiscard]] rib::RouteList<netbase::Ipv6Addr> load_table6(std::istream& in);

/// Convenience: reads from a file. Throws std::runtime_error if unreadable.
[[nodiscard]] rib::RouteList<netbase::Ipv4Addr> load_table4_file(const std::string& path);
[[nodiscard]] rib::RouteList<netbase::Ipv6Addr> load_table6_file(const std::string& path);

}  // namespace workload
