// workload/zipf.hpp — Zipf-distributed sampling for the synthetic traffic
// trace (destination popularity in real Internet traffic is heavy-tailed).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "workload/xorshift.hpp"

namespace workload {

/// Samples ranks in [0, n) with P(rank = k) ∝ 1 / (k + 1)^alpha, via a
/// precomputed CDF and binary search. Build cost O(n), sample cost O(log n).
class ZipfSampler {
public:
    ZipfSampler(std::size_t n, double alpha)
    {
        cdf_.reserve(n);
        double acc = 0;
        for (std::size_t k = 0; k < n; ++k) {
            acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
            cdf_.push_back(acc);
        }
        for (auto& v : cdf_) v /= acc;
    }

    [[nodiscard]] std::size_t sample(Xorshift128& rng) const noexcept
    {
        const double u = rng.next_double();
        std::size_t lo = 0;
        std::size_t hi = cdf_.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

private:
    std::vector<double> cdf_;
};

}  // namespace workload
