#include "workload/updatefeed.hpp"

#include <unordered_map>

#include "workload/xorshift.hpp"

namespace workload {

std::vector<UpdateEvent> make_update_feed(const rib::RouteList<netbase::Ipv4Addr>& table,
                                          const UpdateFeedConfig& cfg)
{
    using netbase::Ipv4Addr;
    using netbase::Prefix4;

    Xorshift128 rng(cfg.seed);
    // Working copy of the present prefixes so withdrawals stay consistent.
    std::vector<Prefix4> present;
    present.reserve(table.size());
    for (const auto& r : table) present.push_back(r.prefix);

    std::vector<UpdateEvent> feed;
    feed.reserve(cfg.updates);
    while (feed.size() < cfg.updates) {
        const bool announce = rng.next_double() < cfg.announce_fraction;
        if (announce) {
            if (rng.next_double() < cfg.new_prefix_fraction) {
                // New more-specific: take an existing prefix and lengthen it.
                const auto& parent =
                    present[rng.next_below(static_cast<std::uint32_t>(present.size()))];
                const unsigned extra = 1 + rng.next_below(3);
                const unsigned len = std::min(32u, parent.length() + extra);
                if (len == parent.length()) continue;
                const std::uint32_t addr =
                    parent.bits() |
                    (rng.next() & ~netbase::high_mask<std::uint32_t>(parent.length()));
                const Prefix4 p{Ipv4Addr{addr}, len};
                feed.push_back(
                    {p, static_cast<rib::NextHop>(1 + rng.next_below(cfg.next_hops))});
                present.push_back(p);
            } else {
                // Path change: re-announce an existing prefix, new next hop.
                const auto& p =
                    present[rng.next_below(static_cast<std::uint32_t>(present.size()))];
                feed.push_back(
                    {p, static_cast<rib::NextHop>(1 + rng.next_below(cfg.next_hops))});
            }
        } else {
            const auto i = rng.next_below(static_cast<std::uint32_t>(present.size()));
            feed.push_back({present[i], rib::kNoRoute});
            present[i] = present.back();
            present.pop_back();
            if (present.empty()) break;
        }
    }
    return feed;
}

}  // namespace workload
