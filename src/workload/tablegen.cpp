#include "workload/tablegen.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/structural_limit.hpp"
#include "workload/xorshift.hpp"

namespace workload {
namespace {

using netbase::Ipv4Addr;
using netbase::Ipv6Addr;
using netbase::Prefix4;
using netbase::Prefix6;
using rib::NextHop;

// Empirical share of each prefix length in a 2014-era full BGP table
// (lengths 8..24; anything shorter is injected explicitly below).
struct LengthShare {
    unsigned length;
    double share;
};
constexpr std::array<LengthShare, 17> kBgpLengthShares{{
    {8, 0.0004},
    {9, 0.0002},
    {10, 0.0006},
    {11, 0.0012},
    {12, 0.0011},
    {13, 0.0020},
    {14, 0.0070},
    {15, 0.0070},
    {16, 0.0250},
    {17, 0.0150},
    {18, 0.0230},
    {19, 0.0470},
    {20, 0.0700},
    {21, 0.0730},
    {22, 0.1120},
    {23, 0.0900},
    {24, 0.5255},
}};

// IGP route length mix (REAL-* tables): point-to-point /30-/31 links,
// /32 loopbacks, a sprinkle of /25-/29 subnets.
constexpr std::array<LengthShare, 8> kIgpLengthShares{{
    {25, 0.04},
    {26, 0.06},
    {27, 0.07},
    {28, 0.08},
    {29, 0.10},
    {30, 0.25},
    {31, 0.05},
    {32, 0.35},
}};

// Picks a length from a share table.
template <std::size_t N>
unsigned pick_length(Xorshift128& rng, const std::array<LengthShare, N>& shares)
{
    double u = rng.next_double();
    for (const auto& s : shares) {
        if (u < s.share) return s.length;
        u -= s.share;
    }
    return shares.back().length;
}

// Skewed next-hop pick: low indices much more popular, as on real routers
// (a handful of transit hops carry most routes).
NextHop pick_next_hop(Xorshift128& rng, unsigned n)
{
    const double u = rng.next_double();
    const auto idx = static_cast<unsigned>(u * u * n);
    return static_cast<NextHop>(1 + std::min(idx, n - 1));
}

// Spatially-correlated next hop: prefixes in the same /18 neighbourhood
// usually come from the same origin/peer and share a next hop on a real
// router. This correlation is what keeps the number of distinct resolution
// runs — and hence DXR's range count — far below the route count; without
// it D18R would blow its 2^19-range limit on ordinary tables, which it does
// not do in the paper.
NextHop pick_next_hop_spatial(Xorshift128& rng, std::uint32_t addr, unsigned n,
                              std::uint64_t seed)
{
    constexpr double kIndependent = 0.15;  // share of "deviant" prefixes
    if (rng.next_double() < kIndependent) return pick_next_hop(rng, n);
    const std::uint64_t h = mix64((addr >> 18) ^ (seed * 0xA24BAED4963EE407ull));
    const double u = static_cast<double>(h & 0xFFFFFF) * 0x1.0p-24;
    const auto idx = static_cast<unsigned>(u * u * n);
    return static_cast<NextHop>(1 + std::min(idx, n - 1));
}

std::uint64_t prefix_key(const Prefix4& p)
{
    return (static_cast<std::uint64_t>(p.bits()) << 6) | p.length();
}

}  // namespace

rib::RouteList<Ipv4Addr> generate_table(const TableGenConfig& cfg)
{
    Xorshift128 rng(cfg.seed);

    // Allocated space: `region_slash8` /8 blocks drawn from 1.0.0.0–223.0.0.0
    // (unicast), deterministically per seed.
    std::vector<std::uint8_t> regions;
    {
        std::vector<std::uint8_t> pool;
        for (unsigned b = 1; b < 224; ++b) pool.push_back(static_cast<std::uint8_t>(b));
        for (unsigned i = 0; i < cfg.region_slash8 && !pool.empty(); ++i) {
            const auto j = rng.next_below(static_cast<std::uint32_t>(pool.size()));
            regions.push_back(pool[j]);
            pool.erase(pool.begin() + j);
        }
        std::sort(regions.begin(), regions.end());
    }
    const auto random_region_base = [&]() -> std::uint32_t {
        const auto r = regions[rng.next_below(static_cast<std::uint32_t>(regions.size()))];
        return static_cast<std::uint32_t>(r) << 24;
    };
    // A /16 block may hold routes longer than /16 iff it hashes into the
    // deep pool. This caps SAIL's level-24 chunk count (see header).
    const auto deep_eligible = [&](std::uint32_t addr) {
        const std::uint32_t block = addr >> 16;
        return (mix64(block ^ (cfg.seed * 0x517CC1B727220A95ull)) % 10'000) <
               static_cast<std::uint64_t>(cfg.deep_pool_fraction * 10'000);
    };

    std::unordered_set<std::uint64_t> seen;
    rib::RouteList<Ipv4Addr> routes;
    routes.reserve(cfg.target_routes + cfg.igp_routes + 8);

    // A few short anchor prefixes (the global table's handful of /8s) plus a
    // default route, so misses are rare and shorter-than-/8 matches exist.
    routes.push_back({Prefix4{Ipv4Addr{0}, 0}, pick_next_hop(rng, cfg.next_hops)});
    seen.insert(prefix_key(routes.back().prefix));
    for (int i = 0; i < 6; ++i) {
        const Prefix4 p{Ipv4Addr{random_region_base()}, 8};
        if (seen.insert(prefix_key(p)).second)
            routes.push_back({p, pick_next_hop(rng, cfg.next_hops)});
    }

    std::size_t failures = 0;
    while (routes.size() < cfg.target_routes && failures < cfg.target_routes * 4) {
        const unsigned len = pick_length(rng, kBgpLengthShares);
        std::uint32_t addr = 0;
        // Deaggregation: nest a fraction of prefixes inside earlier shorter
        // ones so that deciding a short match often requires a deep descent
        // (the paper's binary-radix-depth > prefix-length effect, Fig. 7).
        bool placed = false;
        if (rng.next_double() < cfg.nest_fraction && routes.size() > 64) {
            const auto& parent =
                routes[rng.next_below(static_cast<std::uint32_t>(routes.size()))];
            if (parent.prefix.length() > 0 && parent.prefix.length() < len) {
                addr = parent.prefix.bits() |
                       (rng.next() & ~netbase::high_mask<std::uint32_t>(
                                         parent.prefix.length()));
                placed = true;
            }
        }
        if (!placed) addr = random_region_base() | (rng.next() & 0x00FF'FFFFu);
        // Lengths /15+ respect the deep pool: /15 and /16 allocations sit
        // where deeper routes already live, so SYN1's splits of them (§4.1)
        // rarely open new /16 blocks — that is what lets SAIL compile SYN1
        // but not SYN2 (whose /14 splits land outside the pool), as in §4.8.
        if (len > 14 && !deep_eligible(addr)) {
            ++failures;
            continue;
        }
        const Prefix4 p{Ipv4Addr{addr}, len};
        if (!seen.insert(prefix_key(p)).second) {
            ++failures;
            continue;
        }
        routes.push_back({p, pick_next_hop_spatial(rng, addr, cfg.next_hops, cfg.seed)});
    }

    // IGP routes: long prefixes concentrated in "infrastructure" /16 blocks.
    if (cfg.igp_routes > 0) {
        std::vector<std::uint32_t> infra_blocks;
        const std::size_t n_blocks = std::max<std::size_t>(64, cfg.igp_routes / 100);
        for (std::size_t i = 0; i < n_blocks; ++i) {
            std::uint32_t base;
            do {
                base = random_region_base() | (rng.next_below(256) << 16);
            } while (!deep_eligible(base));
            infra_blocks.push_back(base);
        }
        std::size_t igp_failures = 0;
        std::size_t added = 0;
        while (added < cfg.igp_routes && igp_failures < cfg.igp_routes * 8) {
            const unsigned len = pick_length(rng, kIgpLengthShares);
            const std::uint32_t block =
                infra_blocks[rng.next_below(static_cast<std::uint32_t>(infra_blocks.size()))];
            const std::uint32_t addr = block | (rng.next() & 0xFFFFu);
            const Prefix4 p{Ipv4Addr{addr}, len};
            if (!seen.insert(prefix_key(p)).second) {
                ++igp_failures;
                continue;
            }
            routes.push_back(
                {p, pick_next_hop_spatial(rng, addr, cfg.igp_next_hops, cfg.seed ^ 0x1951)});
            ++added;
        }
    }
    return routes;
}

rib::RouteList<Ipv4Addr> syn_expand(const rib::RouteList<Ipv4Addr>& input, int level,
                                    std::optional<std::size_t> target_routes,
                                    std::uint64_t seed)
{
    // Distinct next hops in the input: split pieces are offset by multiples
    // of this so they "did not overlap any existing next hops" (§4.1).
    NextHop max_hop = 0;
    for (const auto& r : input) max_hop = std::max(max_hop, r.next_hop);

    // SYN1 split eligibility stops at /23 (pieces never exceed /24): the
    // paper's SAIL implementation still compiled SYN1 (Table 5), which
    // bounds its 15-bit level-32 chunk ids below 2^15 — impossible had SYN1
    // created hundreds of thousands of /25s. SYN2 applies the split to /24s
    // as well; the resulting /25 flood is exactly what overflows SAIL's
    // chunk ids and makes it "N/A" on SYN2 (§4.8). See EXPERIMENTS.md for
    // the full reconstruction.
    const auto extra_bits = [&](unsigned len) -> unsigned {
        if (level == 1) {
            if (len <= 16) return 2;
            if (len <= 23) return 1;
        } else {
            if (len <= 16) return 3;
            if (len <= 20) return 2;
            if (len <= 24) return 1;
        }
        return 0;
    };

    // Expected full-split growth, used to derive the per-prefix split
    // probability when a target count is requested.
    double full_growth = 0;
    for (const auto& r : input)
        full_growth += static_cast<double>((1u << extra_bits(r.prefix.length())) - 1);
    double split_probability = 1.0;
    if (target_routes && *target_routes > input.size() && full_growth > 0)
        split_probability =
            std::min(1.0, static_cast<double>(*target_routes - input.size()) / full_growth);

    std::unordered_map<std::uint64_t, NextHop> out;
    out.reserve(input.size() * 2);
    auto keep = [&](const Prefix4& p, NextHop nh) { out.emplace(prefix_key(p), nh); };

    // Pass 1: routes that stay whole (>24, or deterministically unsampled)
    // get priority on collisions, as they are "real" routes.
    std::vector<bool> split(input.size());
    for (std::size_t i = 0; i < input.size(); ++i) {
        const auto bits = extra_bits(input[i].prefix.length());
        const bool sampled =
            bits > 0 && (mix64(prefix_key(input[i].prefix) ^ seed) % 10'000) <
                            static_cast<std::uint64_t>(split_probability * 10'000);
        split[i] = sampled;
        if (!sampled) keep(input[i].prefix, input[i].next_hop);
    }
    // Pass 2: split pieces.
    for (std::size_t i = 0; i < input.size(); ++i) {
        if (!split[i]) continue;
        const auto& r = input[i];
        const unsigned bits = extra_bits(r.prefix.length());
        const unsigned new_len = r.prefix.length() + bits;
        for (unsigned piece = 0; piece < (1u << bits); ++piece) {
            const std::uint32_t addr =
                r.prefix.bits() |
                (static_cast<std::uint32_t>(piece) << (32 - new_len));
            keep(Prefix4{Ipv4Addr{addr}, new_len},
                 static_cast<NextHop>(r.next_hop + piece * max_hop));
        }
    }

    rib::RouteList<Ipv4Addr> result;
    result.reserve(out.size());
    for (const auto& [key, nh] : out)
        result.push_back({Prefix4{Ipv4Addr{static_cast<std::uint32_t>(key >> 6)},
                                  static_cast<unsigned>(key & 63)},
                          nh});
    return result;
}

rib::RouteList<Ipv6Addr> generate_table6(const TableGen6Config& cfg)
{
    Xorshift128 rng(cfg.seed);
    // IPv6 global-table length mix: /32 allocations, /48 assignments, the
    // rest spread across /29-/44 and a tail of /49-/64.
    constexpr std::array<LengthShare, 10> shares{{
        {29, 0.02},
        {32, 0.28},
        {36, 0.04},
        {40, 0.07},
        {44, 0.06},
        {48, 0.42},
        {52, 0.03},
        {56, 0.04},
        {60, 0.02},
        {64, 0.02},
    }};
    std::unordered_set<std::uint64_t> seen;  // hash of (addr, len)
    rib::RouteList<Ipv6Addr> routes;
    routes.reserve(cfg.target_routes);

    // 500 RIR-style /23 super-blocks inside 2000::/3.
    std::vector<netbase::u128> blocks;
    for (int i = 0; i < 500; ++i) {
        const auto b = static_cast<netbase::u128>(0x2000u | (rng.next() & 0x1FFu));
        blocks.push_back(b << 112);
    }
    std::size_t failures = 0;
    while (routes.size() < cfg.target_routes && failures < cfg.target_routes * 4) {
        const unsigned len = pick_length(rng, shares);
        netbase::u128 addr =
            blocks[rng.next_below(static_cast<std::uint32_t>(blocks.size()))];
        addr |= static_cast<netbase::u128>(rng.next64()) << 41;  // bits 23..87-ish
        addr |= rng.next64();
        const Prefix6 p{Ipv6Addr{addr}, len};
        const std::uint64_t key =
            mix64(static_cast<std::uint64_t>(p.bits() >> 64) ^
                  static_cast<std::uint64_t>(p.bits())) ^
            (static_cast<std::uint64_t>(len) << 56);
        if (!seen.insert(key).second) {
            ++failures;
            continue;
        }
        routes.push_back({p, pick_next_hop(rng, cfg.next_hops)});
    }
    return routes;
}

// ---------------------------------------------------------------------------
// Million-route scale-out generators (ScaledTableConfig). All-integer and
// counter-based: every candidate is a pure function of (seed, counter), so
// the emitted route list is byte-stable across platforms — no doubles, no
// hash-container iteration, no rejection-driven RNG state drift.

namespace {

struct PerMille {
    unsigned length;
    unsigned permille;
};

// IPv4 scale-out length mix: the BGP /24 mode, a realistic short-prefix
// body, and a ~2% more-specific tail (/25-/32) that million-route FIBs
// accumulate from deaggregation. Sums to exactly 1000.
constexpr std::array<PerMille, 25> kScaledShares4{{
    {8, 1},   {9, 1},   {10, 1},  {11, 2},  {12, 3},  {13, 5},  {14, 9},
    {15, 9},  {16, 40}, {17, 22}, {18, 30}, {19, 50}, {20, 65}, {21, 70},
    {22, 105}, {23, 85}, {24, 480}, {25, 4}, {26, 4}, {27, 3},  {28, 3},
    {29, 3},  {30, 3},  {31, 1},  {32, 1},
}};

// IPv6 scale-out length mix: mass at /32 (RIR allocations announced whole)
// and /48 (end-site assignments). Sums to exactly 1000.
constexpr std::array<PerMille, 12> kScaledShares6{{
    {24, 5},  {28, 10}, {29, 10}, {32, 280}, {36, 45}, {40, 70},
    {44, 60}, {48, 430}, {52, 30}, {56, 35},  {60, 15}, {64, 10},
}};

template <std::size_t N>
unsigned pick_length_permille(std::uint64_t h, const std::array<PerMille, N>& shares)
{
    auto u = static_cast<unsigned>(h % 1000);
    for (const auto& s : shares) {
        if (u < s.permille) return s.length;
        u -= s.permille;
    }
    return shares.back().length;
}

// Integer spatial next-hop pick: prefixes sharing a /22 neighbourhood share
// a next hop (same rationale as pick_next_hop_spatial above), with a 15%
// independent remainder; the square skews popularity toward low hops. The
// granularity is deliberately finer than a 64-ary node's span below s=18
// direct pointing (a /18): sibling /24s announced separately usually exist
// BECAUSE their paths differ (traffic-engineered deaggregation), so a model
// whose hops are uniform across whole nodes would let leafvec collapse
// nearly every leaf run and understate leaf-array pressure at scale.
NextHop scaled_hop(std::uint32_t neighbourhood, std::uint64_t h, unsigned n,
                   std::uint64_t seed)
{
    const std::uint64_t u =
        (h % 100) < 15
            ? ((h >> 7) & 0xFFFFu)
            : (mix64(neighbourhood ^ (seed * 0xA24BAED4963EE407ull)) & 0xFFFFu);
    const auto idx = static_cast<unsigned>((u * u * n) >> 32);
    return static_cast<NextHop>(1 + std::min(idx, n - 1));
}

}  // namespace

rib::RouteList<Ipv4Addr> generate_scaled_table(const ScaledTableConfig& cfg)
{
    // Modeled registry ceiling, checked up front so an absurd target is an
    // immediate rejection rather than a multi-hour crawl to the dedup
    // failure cap. 2^25 (~33.5M) comfortably covers the 10M sweep ceiling
    // while staying far below where the L2 sub-block space (n_l2 x 2^16
    // host slots) would make dedup collisions dominate generation time.
    if (cfg.target_routes > (std::size_t{1} << 25))
        throw netbase::StructuralLimit(
            "generate_scaled_table: target exceeds the modeled IPv4 registry "
            "(2^25 prefixes)");

    // Allocation hierarchy. L1: 4096 /10 super-blocks across unicast space
    // (first octet 1..223, so the 10-bit block id lives in [4, 896)). L2:
    // /16 sub-allocations inside skew-chosen L1 parents; deep prefixes land
    // inside L2 blocks, shorter ones inside L1 blocks.
    constexpr std::size_t kL1 = 4096;
    std::vector<std::uint32_t> l1(kL1);
    for (std::size_t i = 0; i < kL1; ++i)
        l1[i] = static_cast<std::uint32_t>(4 + mix64(cfg.seed ^ (0x51AB0000ull + i)) % 892)
                << 22;
    const std::size_t n_l2 = std::max<std::size_t>(8192, cfg.target_routes / 48);
    std::vector<std::uint32_t> l2(n_l2);
    for (std::size_t i = 0; i < n_l2; ++i) {
        const std::uint64_t h = mix64(cfg.seed ^ (0x52AB000000ull + i));
        const auto u = static_cast<std::uint32_t>(h);
        const auto skew = static_cast<std::uint32_t>((std::uint64_t{u} * u) >> 32);
        const auto parent =
            static_cast<std::size_t>((static_cast<std::uint64_t>(skew) * kL1) >> 32);
        l2[i] = l1[parent] | ((static_cast<std::uint32_t>(h >> 34) & 63u) << 16);
    }

    // Per-length capacity: half the unicast address space at that length.
    // Demand past the cap spills to the next longer length — the integer
    // model of registry exhaustion driving deaggregation.
    std::array<std::size_t, 33> cap{};
    std::array<std::size_t, 33> emitted{};
    for (unsigned len = 8; len <= 32; ++len)
        cap[len] = (std::size_t{223} << (len - 8)) / 2;

    std::unordered_set<std::uint64_t> seen;
    seen.reserve(cfg.target_routes * 2);
    rib::RouteList<Ipv4Addr> routes;
    routes.reserve(cfg.target_routes);

    const std::uint64_t hop_seed = mix64(cfg.seed ^ 0xF00D);
    routes.push_back({Prefix4{Ipv4Addr{0}, 0},
                      scaled_hop(0, mix64(cfg.seed), cfg.next_hops, hop_seed)});
    seen.insert(prefix_key(routes.back().prefix));

    std::uint64_t counter = 0;
    std::size_t failures = 0;
    while (routes.size() < cfg.target_routes) {
        if (failures > cfg.target_routes * 16 + (1u << 20))
            throw netbase::StructuralLimit(
                "generate_scaled_table: target exceeds the modeled IPv4 space");
        const std::uint64_t h = mix64(cfg.seed ^ (0x90DE000000000000ull | counter++));
        const std::uint64_t h2 = mix64(h);
        unsigned len = pick_length_permille(h, kScaledShares4);
        while (len < 32 && emitted[len] >= cap[len]) ++len;

        std::uint32_t addr;
        if (len <= 10) {
            addr = l1[h2 % kL1] & netbase::high_mask<std::uint32_t>(len);
        } else if (len <= 16) {
            addr = (l1[h2 % kL1] | (static_cast<std::uint32_t>(h2 >> 12) & 0x003FFFFFu)) &
                   netbase::high_mask<std::uint32_t>(len);
        } else {
            const auto u = static_cast<std::uint32_t>(h2);
            const auto skew = static_cast<std::uint32_t>((std::uint64_t{u} * u) >> 32);
            const auto q =
                static_cast<std::size_t>((static_cast<std::uint64_t>(skew) * n_l2) >> 32);
            addr = (l2[q] | (static_cast<std::uint32_t>(h2 >> 32) & 0xFFFFu)) &
                   netbase::high_mask<std::uint32_t>(len);
        }
        const Prefix4 p{Ipv4Addr{addr}, len};
        if (!seen.insert(prefix_key(p)).second) {
            ++failures;
            continue;
        }
        ++emitted[len];
        routes.push_back({p, scaled_hop(addr >> 10, mix64(h2), cfg.next_hops, hop_seed)});
    }
    return routes;
}

rib::RouteList<Ipv6Addr> generate_scaled_table6(const ScaledTable6Config& cfg)
{
    using netbase::u128;
    // Same up-front registry ceiling as the IPv4 generator (see there).
    if (cfg.target_routes > (std::size_t{1} << 25))
        throw netbase::StructuralLimit(
            "generate_scaled_table6: target exceeds the modeled IPv6 registry "
            "(2^25 prefixes)");
    // /32 allocation blocks inside 2000::/3 (top 32 bits in
    // [0x2000'0000, 0x4000'0000)).
    const std::size_t n_alloc = std::max<std::size_t>(8192, cfg.target_routes / 48);
    std::vector<std::uint32_t> alloc32(n_alloc);
    for (std::size_t i = 0; i < n_alloc; ++i)
        alloc32[i] = 0x2000'0000u |
                     static_cast<std::uint32_t>(mix64(cfg.seed ^ (0x66AB000000ull + i)) %
                                                0x2000'0000u);

    // Short-prefix capacity inside 2000::/3 (half the space at each length);
    // /32 and longer are unbounded at any realistic target.
    std::array<std::size_t, 129> cap{};
    std::array<std::size_t, 129> emitted{};
    for (unsigned len = 24; len <= 64; ++len)
        cap[len] = len >= 32 ? ~std::size_t{0} : (std::size_t{1} << (len - 3)) / 2;

    std::unordered_set<std::uint64_t> seen;
    seen.reserve(cfg.target_routes * 2);
    rib::RouteList<Ipv6Addr> routes;
    routes.reserve(cfg.target_routes);

    const std::uint64_t hop_seed = mix64(cfg.seed ^ 0x6F00D);
    std::uint64_t counter = 0;
    std::size_t failures = 0;
    while (routes.size() < cfg.target_routes) {
        if (failures > cfg.target_routes * 16 + (1u << 20))
            throw netbase::StructuralLimit(
                "generate_scaled_table6: target exceeds the modeled IPv6 space");
        const std::uint64_t h = mix64(cfg.seed ^ (0x60DE000000000000ull | counter++));
        const std::uint64_t h2 = mix64(h);
        unsigned len = pick_length_permille(h, kScaledShares6);
        while (len < 64 && emitted[len] >= cap[len]) ++len;

        const auto u = static_cast<std::uint32_t>(h2);
        const auto skew = static_cast<std::uint32_t>((std::uint64_t{u} * u) >> 32);
        const auto q =
            static_cast<std::size_t>((static_cast<std::uint64_t>(skew) * n_alloc) >> 32);
        u128 addr = static_cast<u128>(alloc32[q]) << 96;
        if (len > 32) addr |= static_cast<u128>(h2 >> 8) << 32;  // bits 32..87
        if (len < 128) addr &= ~((u128{1} << (128 - len)) - 1);
        else if (len > 128) continue;  // unreachable; keeps the mask shift defined
        const Prefix6 p{Ipv6Addr{addr}, len};
        const std::uint64_t key =
            mix64(static_cast<std::uint64_t>(p.bits() >> 64) ^
                  mix64(static_cast<std::uint64_t>(p.bits())) ^
                  (static_cast<std::uint64_t>(len) << 56));
        if (!seen.insert(key).second) {
            ++failures;
            continue;
        }
        ++emitted[len];
        routes.push_back({p, scaled_hop(static_cast<std::uint32_t>(p.bits() >> 96), mix64(h2),
                                        cfg.next_hops, hop_seed)});
    }
    return routes;
}

}  // namespace workload
