// workload/datasets.hpp — the Table 1 dataset registry.
//
// The paper evaluates 35 IPv4 RIBs: 32 RouteViews peers ("RV-<archive>-p<n>")
// and three ISP tables (REAL-Tier1-A/B, REAL-RENET), plus SYN1/SYN2
// expansions of the Tier1 tables and one IPv6 table. This registry exposes
// the same inventory over the synthetic generators, one deterministic seed
// per dataset, with next-hop counts matched to Table 1, so the benches can
// print recognizable rows (Fig. 9 iterates these names).
#pragma once

#include <string>
#include <vector>

#include "rib/route.hpp"
#include "workload/tablegen.hpp"

namespace workload {

/// One dataset of the paper's Table 1.
struct DatasetSpec {
    std::string name;
    TableGenConfig config;
};

/// The 32 RouteViews-like specs, in Table 1 order.
[[nodiscard]] std::vector<DatasetSpec> routeviews_specs();

/// REAL-Tier1-A-like (531k routes, 13 next hops, IGP routes included).
[[nodiscard]] DatasetSpec real_tier1_a();

/// REAL-Tier1-B-like (524k routes, 9 next hops, IGP routes included).
[[nodiscard]] DatasetSpec real_tier1_b();

/// REAL-RENET-like (516k routes, 32 next hops, research-network flavour).
[[nodiscard]] DatasetSpec real_renet();

/// All 35 IPv4 datasets (RouteViews + the three REAL tables), Fig. 9's x-axis.
[[nodiscard]] std::vector<DatasetSpec> all_ipv4_specs();

/// Materializes a spec.
[[nodiscard]] rib::RouteList<netbase::Ipv4Addr> make_table(const DatasetSpec& spec);

/// SYN1/SYN2 of a materialized table, sized to the paper's Table 5 counts
/// when `paper_size` is true (764,847 / 885,645 for Tier1-A; pass the
/// matching base table).
[[nodiscard]] rib::RouteList<netbase::Ipv4Addr> make_syn(
    const rib::RouteList<netbase::Ipv4Addr>& base, int level, std::size_t target);

}  // namespace workload
