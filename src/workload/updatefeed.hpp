// workload/updatefeed.hpp — synthetic BGP update feeds (§4.9).
//
// The paper replays one hour of RouteViews updates against RV-linx-p52:
// 23,446 route updates, 18,141 announced and 5,305 withdrawn (77.4% / 22.6%).
// The archives are not redistributable, so this generator produces a feed
// with the same announce/withdraw mix over a live copy of the table:
// announcements re-announce existing prefixes with a new next hop or add
// fresh more-specifics; withdrawals remove currently present prefixes.
#pragma once

#include <cstdint>
#include <vector>

#include "rib/route.hpp"

namespace workload {

/// One update: next_hop == rib::kNoRoute means withdraw.
struct UpdateEvent {
    netbase::Prefix<netbase::Ipv4Addr> prefix;
    rib::NextHop next_hop = rib::kNoRoute;
};

struct UpdateFeedConfig {
    std::uint64_t seed = 11;
    std::size_t updates = 23'446;     ///< the paper's hour of linx-p52
    double announce_fraction = 0.774; ///< 18,141 / 23,446
    /// Of the announcements, the share that adds a brand-new more-specific
    /// prefix (the rest re-announce an existing prefix with a new next hop).
    double new_prefix_fraction = 0.3;
    unsigned next_hops = 419;  ///< RV-linx-p52's next-hop count
};

/// Builds a feed of `cfg.updates` events consistent with `table` (withdrawn
/// prefixes exist at the time they are withdrawn, assuming events are applied
/// in order).
[[nodiscard]] std::vector<UpdateEvent> make_update_feed(
    const rib::RouteList<netbase::Ipv4Addr>& table, const UpdateFeedConfig& cfg = {});

}  // namespace workload
