// sync/annotations.hpp — Clang Thread Safety Analysis vocabulary for the
// repo's concurrency contracts (DESIGN.md §9).
//
// The dataplane's serving claim — wait-free lookups concurrent with
// incremental updates — rests on protocol discipline that TSan can only
// check dynamically and only on the schedules a test happens to produce.
// This header turns the two load-bearing protocols into *capabilities* the
// compiler tracks statically (clang -Wthread-safety, gated behind the
// POPTRIE_TSA CMake option; every macro is a no-op elsewhere):
//
//   cap::ebr        the EBR protocol capability.
//                   - held SHARED: the calling thread is inside an epoch
//                     read-side critical section (EbrDomain::Reader between
//                     enter() and exit()); it may dereference the FIB's pool
//                     storage and trust that nothing it can reach is freed.
//                   - held EXCLUSIVE: the calling thread is THE single
//                     writer; it may mutate the live structure and retire
//                     replaced blocks into the domain's limbo list.
//   cap::quiescent  the quiescence capability: no reader is inside a
//                   critical section anywhere (workers parked or joined,
//                   local Readers destroyed/exited). Only then may pool
//                   *storage itself* move or shrink (compact(),
//                   reserve_headroom()) or a StopFlag be rearmed.
//
// These are phantom (token) capabilities: no runtime object enforces them;
// acquiring one is a *claim* whose truth is established by the surrounding
// protocol (an EBR guard, a PauseGate handshake, a join). Each claim site
// must say why the claim holds — tools/check_concurrency.py rule R5 rejects
// a section construction outside src/sync without an adjacent
// `// reader:` / `// writer:` / `// quiescent:` justification comment.
//
// Capability rules of thumb (the full table is in DESIGN.md §9):
//   * pool pointers/spans (nodes_, leaves_, direct_) are GUARDED_BY(cap::ebr)
//   * lookup paths REQUIRES_SHARED(cap::ebr); update paths REQUIRES(cap::ebr)
//   * compact()/reserve_headroom()/StopFlag::reset REQUIRES(cap::quiescent)
//   * quiescence implies writer exclusivity: QuiescentSection acquires BOTH
//     capabilities, so a quiescent caller can reach update paths directly.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define POPTRIE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define POPTRIE_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC do not implement TSA
#endif

#define POPTRIE_CAPABILITY(x) POPTRIE_THREAD_ANNOTATION(capability(x))
#define POPTRIE_SCOPED_CAPABILITY POPTRIE_THREAD_ANNOTATION(scoped_lockable)
#define POPTRIE_GUARDED_BY(x) POPTRIE_THREAD_ANNOTATION(guarded_by(x))
#define POPTRIE_PT_GUARDED_BY(x) POPTRIE_THREAD_ANNOTATION(pt_guarded_by(x))
#define POPTRIE_REQUIRES(...) POPTRIE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define POPTRIE_REQUIRES_SHARED(...) \
    POPTRIE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define POPTRIE_ACQUIRE(...) POPTRIE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define POPTRIE_ACQUIRE_SHARED(...) \
    POPTRIE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define POPTRIE_RELEASE(...) POPTRIE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define POPTRIE_RELEASE_SHARED(...) \
    POPTRIE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define POPTRIE_RELEASE_GENERIC(...) \
    POPTRIE_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define POPTRIE_ASSERT_CAPABILITY(x) POPTRIE_THREAD_ANNOTATION(assert_capability(x))
#define POPTRIE_RETURN_CAPABILITY(x) POPTRIE_THREAD_ANNOTATION(lock_returned(x))
#define POPTRIE_EXCLUDES(...) POPTRIE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Escape hatch: disables the analysis for one function. Every use must carry
// a comment explaining which out-of-band argument makes the function safe
// (single-threaded test harness, sanctioned audit backdoor, ...).
#define POPTRIE_NO_TSA POPTRIE_THREAD_ANNOTATION(no_thread_safety_analysis)

// --- hot-path purity vocabulary (tools/astcheck, DESIGN.md §10) -----------
//
// POPTRIE_HOT marks a function as data-plane hot: tools/astcheck rule HP1
// proves it (transitively) free of heap allocation, locks, throwing
// constructs, syscalls, and iostream; HP2/HP3 hold its bit arithmetic and
// pool indexing to provenance rules. The attribute spelling is
// [[clang::annotate("poptrie::hot")]] so the clang frontend sees it in the
// AST; GCC would warn on the unknown scoped attribute under -Werror, so the
// macro collapses to nothing there (astcheck's builtin frontend recognizes
// the macro token lexically either way).
//
// POPTRIE_HOT_EXEMPT marks a function reachable from hot code that is
// deliberately outside the purity contract (slow-path branch, cold error
// handler). Every use must carry an adjacent `// hot-exempt: <why>` comment
// (head or the two lines above) — astcheck flags an unjustified exemption,
// mirroring the R5/order-comment convention above.
#if defined(__clang__) && (!defined(SWIG))
#define POPTRIE_HOT [[clang::annotate("poptrie::hot")]]
#define POPTRIE_HOT_EXEMPT [[clang::annotate("poptrie::hot_exempt")]]
#else
#define POPTRIE_HOT            // no-op: attribute is clang-only
#define POPTRIE_HOT_EXEMPT     // no-op: attribute is clang-only
#endif

namespace psync {
namespace cap {

/// Tag type for a phantom capability (no runtime state; see header comment).
struct POPTRIE_CAPABILITY("ebr") EbrCapability {};
struct POPTRIE_CAPABILITY("quiescent") QuiescentCapability {};

/// The EBR protocol capability (shared = inside a read-side critical
/// section; exclusive = the single writer role).
inline EbrCapability ebr;
/// The quiescence capability: no read-side critical section exists anywhere.
inline QuiescentCapability quiescent;

}  // namespace cap

/// Scoped claim: "this thread is inside an EBR read-side critical section."
/// Construct one right after (or as part of) taking a real EBR guard —
/// EbrDomain::Guard, dataplane::EbrReader::Guard — and keep them coterminous.
/// R5 of tools/check_concurrency.py demands a `// reader:` comment at the
/// construction site naming the real guard that backs the claim.
class POPTRIE_SCOPED_CAPABILITY EbrReadSection {
public:
    EbrReadSection() POPTRIE_ACQUIRE_SHARED(cap::ebr) {}
    ~EbrReadSection() POPTRIE_RELEASE_GENERIC(cap::ebr) {}
    EbrReadSection(const EbrReadSection&) = delete;
    EbrReadSection& operator=(const EbrReadSection&) = delete;
};

/// Scoped claim: "this thread is THE single EBR writer." Construct one at
/// the top of an update/maintenance burst on the thread that owns the
/// updater role (the paper assumes single-threaded update operation). R5
/// demands an adjacent `// writer:` comment stating why this thread holds
/// the writer role.
class POPTRIE_SCOPED_CAPABILITY EbrWriterSection {
public:
    EbrWriterSection() POPTRIE_ACQUIRE(cap::ebr) {}
    ~EbrWriterSection() POPTRIE_RELEASE(cap::ebr) {}
    EbrWriterSection(const EbrWriterSection&) = delete;
    EbrWriterSection& operator=(const EbrWriterSection&) = delete;
};

/// Scoped claim: "no reader exists anywhere" (workers parked via PauseGate
/// or joined, local Readers destroyed). Acquires BOTH capabilities —
/// quiescence subsumes writer exclusivity — so storage-moving paths
/// (compact, reserve_headroom) that REQUIRE(cap::quiescent, cap::ebr) need
/// exactly one section. R5 demands an adjacent `// quiescent:` comment
/// naming the handshake (join, PauseGate park) that emptied the read side.
class POPTRIE_SCOPED_CAPABILITY QuiescentSection {
public:
    QuiescentSection() POPTRIE_ACQUIRE(cap::quiescent, cap::ebr) {}
    ~QuiescentSection() POPTRIE_RELEASE(cap::quiescent, cap::ebr) {}
    QuiescentSection(const QuiescentSection&) = delete;
    QuiescentSection& operator=(const QuiescentSection&) = delete;
};

}  // namespace psync

#include <mutex>

namespace psync {

/// std::mutex with the capability attribute, so members can be GUARDED_BY it
/// and the analysis tracks lock()/unlock() pairing. Drop-in for std::mutex
/// wherever guarded members exist (src/sync/ebr.hpp's reader_mutex_).
class POPTRIE_CAPABILITY("mutex") Mutex {
public:
    void lock() POPTRIE_ACQUIRE() { m_.lock(); }
    void unlock() POPTRIE_RELEASE() { m_.unlock(); }
    [[nodiscard]] bool try_lock() POPTRIE_THREAD_ANNOTATION(try_acquire_capability(true))
    {
        return m_.try_lock();
    }

private:
    std::mutex m_;
};

/// Scoped lock for psync::Mutex (std::lock_guard is not annotated, so the
/// analysis cannot see through it).
class POPTRIE_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& m) POPTRIE_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() POPTRIE_RELEASE() { m_.unlock(); }
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& m_;
};

}  // namespace psync
