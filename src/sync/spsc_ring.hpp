// sync/spsc_ring.hpp — fixed-capacity lock-free single-producer /
// single-consumer ring queue, the sharding primitive of the dataplane.
//
// One ring connects exactly one producer thread (the packet source) to one
// consumer thread (a ForwardingWorker); a dataplane with N workers uses N
// rings rather than one shared MPMC queue, so the hot path has no CAS loops
// and no shared write contention at all. The design is the classic
// Lamport/liblfds layout with two refinements the forwarding workload wants:
//
//   * head and tail live on separate cache lines (and away from the buffer),
//     so the producer's tail stores never invalidate the consumer's head
//     line ("false sharing" is the dominant SPSC cost on x86);
//   * each side keeps a *cached* copy of the other side's index and only
//     re-reads the shared atomic when the cached value says the ring looks
//     full/empty — in steady state, batch push/pop touch a shared line once
//     per batch, not once per element.
//
// Indices are free-running 64-bit counters (masked on access), so full/empty
// are distinguishable without a wasted slot and wraparound is exercised only
// through the mask, never through index overflow in any realistic run.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sync/annotations.hpp"

namespace psync {

/// Hardware cache-line size used for padding. std::hardware_destructive_
/// interference_size is not universally implemented; 64 covers x86/arm64.
inline constexpr std::size_t kCacheLine = 64;

/// Role tag types for the ring's two ends (one instance of each lives in
/// every SpscRing). Statically modelling "I am the producer thread" /
/// "I am the consumer thread" as capabilities lets the analysis reject a
/// pop() from the producer side (or any third thread) at compile time.
class POPTRIE_CAPABILITY("spsc-producer") SpscProducerRole {};
class POPTRIE_CAPABILITY("spsc-consumer") SpscConsumerRole {};

/// Lock-free SPSC ring of trivially copyable items.
///
/// Thread contract: push()/try_push() from one producer thread only,
/// pop()/try_pop() from one consumer thread only — claim the role with a
/// ProducerToken / ConsumerToken (below) for the duration of the burst.
/// size()/capacity() are safe anywhere but size() is a racy snapshot when
/// both sides are live.
template <class T>
class SpscRing {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ring items are copied with plain assignment in batches");

public:
    /// Capacity is rounded up to a power of two (masked indexing).
    explicit SpscRing(std::size_t min_capacity)
        : mask_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity) - 1),
          buf_(mask_ + 1)
    {
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

    /// Racy snapshot of the element count (exact when one side is idle).
    [[nodiscard]] std::size_t size() const noexcept
    {
        // order: relaxed (both loads) [cap:ring] — diagnostic snapshot only;
        // it never justifies a buffer access, so no release pairing is needed.
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        return t - head_.load(std::memory_order_relaxed);  // order: above [cap:ring]
    }

    [[nodiscard]] bool empty() const noexcept { return size() == 0; }

    /// Producer: enqueues up to `n` items; returns how many were accepted
    /// (0..n — partial pushes happen when the ring is nearly full).
    POPTRIE_HOT std::size_t push(const T* items, std::size_t n) noexcept POPTRIE_REQUIRES(producer_role_)
    {
        // order: relaxed [cap:ring] — tail_ is producer-owned; only this
        // thread writes it, so its own last value needs no synchronization.
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t free = capacity() - static_cast<std::size_t>(tail - head_cache_);
        if (free < n) {
            // order: acquire [cap:ring] — pairs with pop()'s release store of
            // head_: drained slots are fully read before we overwrite them.
            head_cache_ = head_.load(std::memory_order_acquire);
            free = capacity() - static_cast<std::size_t>(tail - head_cache_);
        }
        const std::size_t count = n < free ? n : free;
        for (std::size_t i = 0; i < count; ++i)
            buf_[static_cast<std::size_t>(tail + i) & mask_] = items[i];
        // order: release [cap:ring] — publishes the slot writes above to the
        // consumer's acquire load of tail_ in pop().
        tail_.store(tail + count, std::memory_order_release);
        return count;
    }

    /// Producer: single-item convenience; false when full.
    POPTRIE_HOT bool try_push(const T& item) noexcept POPTRIE_REQUIRES(producer_role_)
    {
        return push(&item, 1) == 1;
    }

    /// Consumer: dequeues up to `max` items into `out`; returns the count
    /// (0 when empty).
    POPTRIE_HOT std::size_t pop(T* out, std::size_t max) noexcept POPTRIE_REQUIRES(consumer_role_)
    {
        // order: relaxed [cap:ring] — head_ is consumer-owned; only this
        // thread writes it.
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
        if (avail == 0) {
            // order: acquire [cap:ring] — pairs with the producer's release
            // store in push(): slot contents are visible before we read them.
            tail_cache_ = tail_.load(std::memory_order_acquire);
            avail = static_cast<std::size_t>(tail_cache_ - head);
        }
        const std::size_t count = max < avail ? max : avail;
        for (std::size_t i = 0; i < count; ++i)
            out[i] = buf_[static_cast<std::size_t>(head + i) & mask_];
        // order: release [cap:ring] — signals the producer (acquire reload in
        // push()) that the slots above are fully read and may be overwritten.
        head_.store(head + count, std::memory_order_release);
        return count;
    }

    /// Consumer: single-item convenience; false when empty.
    POPTRIE_HOT bool try_pop(T& out) noexcept POPTRIE_REQUIRES(consumer_role_)
    {
        return pop(&out, 1) == 1;
    }

    /// The role capabilities. Public so tokens and REQUIRES clauses can name
    /// them; they carry no runtime state (phantom capabilities).
    SpscProducerRole producer_role_;
    SpscConsumerRole consumer_role_;

private:
    const std::size_t mask_;

    // Consumer-advanced index, on its own line so producer stores to tail_
    // never bounce it.
    alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
    // Producer's cached view of head_ (producer-private, same line as the
    // producer's other hot state is fine).
    alignas(kCacheLine) std::uint64_t head_cache_ POPTRIE_GUARDED_BY(producer_role_) = 0;

    // Producer-advanced index.
    alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
    // Consumer's cached view of tail_ (consumer-private).
    alignas(kCacheLine) std::uint64_t tail_cache_ POPTRIE_GUARDED_BY(consumer_role_) = 0;

    alignas(kCacheLine) std::vector<T> buf_;
};

/// Scoped claim of a ring's producer end. Construct one in the (single)
/// thread that feeds the ring, for the duration of its push burst. The claim
/// is by protocol, not by lock: the dataplane assigns each ring exactly one
/// feeding thread (DESIGN.md §7), and rule R1 of check_concurrency.py keeps
/// push sites inside token scopes.
class POPTRIE_SCOPED_CAPABILITY SpscProducerToken {
public:
    template <class T>
    explicit SpscProducerToken([[maybe_unused]] SpscRing<T>& r)
        POPTRIE_ACQUIRE(r.producer_role_)
    {
    }
    ~SpscProducerToken() POPTRIE_RELEASE() {}
    SpscProducerToken(const SpscProducerToken&) = delete;
    SpscProducerToken& operator=(const SpscProducerToken&) = delete;
};

/// Scoped claim of a ring's consumer end (the worker that drains it).
class POPTRIE_SCOPED_CAPABILITY SpscConsumerToken {
public:
    template <class T>
    explicit SpscConsumerToken([[maybe_unused]] SpscRing<T>& r)
        POPTRIE_ACQUIRE(r.consumer_role_)
    {
    }
    ~SpscConsumerToken() POPTRIE_RELEASE() {}
    SpscConsumerToken(const SpscConsumerToken&) = delete;
    SpscConsumerToken& operator=(const SpscConsumerToken&) = delete;
};

}  // namespace psync
