// sync/atomic_utils.hpp — helpers for the single-writer / many-reader
// publication protocol used by Poptrie's incremental update (§3.5).
//
// The updater builds replacement arrays privately, then publishes them with a
// single release store into a live field (a direct-pointing slot or a node's
// base0/base1). Readers pick the fields up with acquire loads. On x86 both
// compile to plain MOVs, so the hot lookup path pays nothing; the helpers
// exist to make the data race rules of the C++ memory model hold.
#pragma once

#include <atomic>

namespace psync {

/// Acquire-load of a field that a concurrent updater may publish into.
/// The const_cast is confined here: std::atomic_ref requires a mutable
/// reference even for loads, but the load itself does not modify `loc`.
template <class T>
[[nodiscard]] inline T load_acquire(const T& loc) noexcept
{
    // order: acquire [cap:fib] — pairs with store_release(); everything the
    // updater wrote before publishing is visible once this load observes it.
    return std::atomic_ref<T>(const_cast<T&>(loc)).load(std::memory_order_acquire);
}

/// Relaxed load for fields only read together with an acquire-loaded index
/// (the data dependency orders the accesses on all supported targets, and the
/// preceding acquire covers the formal model).
template <class T>
[[nodiscard]] inline T load_relaxed(const T& loc) noexcept
{
    // order: relaxed [cap:fib] — callers reach this field through an index
    // obtained by a preceding load_acquire, which provides the ordering.
    return std::atomic_ref<T>(const_cast<T&>(loc)).load(std::memory_order_relaxed);
}

/// Release-store publication of a replacement index/value.
template <class T>
inline void store_release(T& loc, T value) noexcept
{
    // order: release [cap:fib] — sequences the private construction of the
    // replacement arrays before the index swing; pairs with load_acquire().
    std::atomic_ref<T>(loc).store(value, std::memory_order_release);
}

}  // namespace psync
