#include "sync/ebr.hpp"

#include <limits>
#include <thread>

namespace psync {

EbrDomain::Reader EbrDomain::register_reader()
{
    const std::lock_guard lock(reader_mutex_);
    slots_.emplace_back(kQuiescent);
    return Reader{this, &slots_.back()};
}

void EbrDomain::retire(std::function<void()> deleter)
{
    const auto e = epoch_.load(std::memory_order_relaxed);
    limbo_.push_back({e, std::move(deleter)});
}

std::uint64_t EbrDomain::min_active_epoch() const noexcept
{
    // Pairs with the fence in Reader::enter(): after this fence, any reader
    // that entered before we scan is visible to the scan.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::uint64_t min_epoch = std::numeric_limits<std::uint64_t>::max();
    const std::lock_guard lock(reader_mutex_);
    for (const auto& slot : slots_) {
        const auto e = slot.load(std::memory_order_acquire);
        if (e != kQuiescent && e < min_epoch) min_epoch = e;
    }
    return min_epoch;
}

std::size_t EbrDomain::try_reclaim()
{
    // Advance first so that objects retired under the old epoch become
    // reclaimable as soon as current readers (who saw at most the old epoch)
    // leave.
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    const auto min_active = min_active_epoch();
    std::size_t freed = 0;
    while (!limbo_.empty() && limbo_.front().epoch < min_active) {
        limbo_.front().deleter();
        limbo_.pop_front();
        ++freed;
    }
    return freed;
}

void EbrDomain::drain()
{
    while (!limbo_.empty()) {
        if (try_reclaim() == 0) std::this_thread::yield();
    }
}

}  // namespace psync
