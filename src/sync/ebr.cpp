#include "sync/ebr.hpp"

#include <limits>
#include <thread>

namespace psync {

EbrDomain::Reader EbrDomain::register_reader()
{
    const MutexLock lock(reader_mutex_);
    if (!free_slots_.empty()) {
        auto* slot = free_slots_.back();
        free_slots_.pop_back();
        return Reader{this, slot};
    }
    slots_.emplace_back(kQuiescent);
    return Reader{this, &slots_.back()};
}

void EbrDomain::unregister_reader(std::atomic<std::uint64_t>* slot) noexcept
{
    // Force the slot quiescent: a Reader destroyed while formally "active"
    // (its thread died between enter() and exit()) can no longer touch the
    // structure, so pinning the epoch on its behalf would only leak memory.
    // order: release [cap:ebr] — sequences the dying section's structure reads
    // before the slot is seen free; pairs with min_active_epoch()'s scan.
    slot->store(kQuiescent, std::memory_order_release);
    const MutexLock lock(reader_mutex_);
    free_slots_.push_back(slot);
}

void EbrDomain::retire(std::function<void()> deleter)
{
    // order: relaxed [cap:ebr] — writer-thread-only read of a counter only
    // the writer advances; no cross-thread edge timestamps the retirement.
    const auto e = epoch_.load(std::memory_order_relaxed);
    limbo_.push_back({e, std::move(deleter)});
}

std::uint64_t EbrDomain::min_active_epoch() const noexcept
{
    // Pairs with the seq_cst fence in Reader::enter() (see the header's
    // Dekker argument): after this fence, any reader whose enter-fence
    // preceded ours is visible to the scan below; a reader whose enter-fence
    // follows ours will observe every pointer we published before calling
    // this, so it cannot reach the blocks we are about to free.
    fence_seq_cst();
    std::uint64_t min_epoch = std::numeric_limits<std::uint64_t>::max();
    const MutexLock lock(reader_mutex_);
    for (const auto& slot : slots_) {
        // order: acquire [cap:ebr] — pairs with exit()'s release: kQuiescent
        // observed means that section's reads happened-before our frees.
        const auto e = slot.load(std::memory_order_acquire);
        if (e != kQuiescent && e < min_epoch) min_epoch = e;
    }
    return min_epoch;
}

EbrDomain::Diag EbrDomain::diag() const
{
    Diag d;
    // order: relaxed [cap:ebr] — diagnostic snapshot on the writer thread;
    // the value is reported, never used to justify a free.
    d.current_epoch = epoch_.load(std::memory_order_relaxed);
    d.pending = limbo_.size();
    if (!limbo_.empty()) {
        d.oldest_retired_epoch = limbo_.front().epoch;
        d.newest_retired_epoch = limbo_.back().epoch;
        for (std::size_t i = 1; i < limbo_.size(); ++i)
            if (limbo_[i].epoch < limbo_[i - 1].epoch) d.limbo_sorted = false;
    }
    const MutexLock lock(reader_mutex_);
    d.slot_capacity = slots_.size();
    d.registered_readers = slots_.size() - free_slots_.size();
    for (const auto& slot : slots_) {
        // order: acquire [cap:ebr] — same pairing as min_active_epoch()'s
        // scan, so the auditor's invariants hold under concurrent readers.
        const auto e = slot.load(std::memory_order_acquire);
        if (e != kQuiescent && (!d.min_active_epoch || e < *d.min_active_epoch))
            d.min_active_epoch = e;
    }
    return d;
}

std::size_t EbrDomain::try_reclaim()
{
    // Advance first so that objects retired under the old epoch become
    // reclaimable as soon as current readers (who saw at most the old epoch)
    // leave.
    // order: acq_rel [cap:ebr] — release keeps the bump after the retirements
    // it covers; acquire keeps the single-edge RMW pairing with enter().
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    const auto min_active = min_active_epoch();
    std::size_t freed = 0;
    while (!limbo_.empty() && limbo_.front().epoch < min_active) {
        limbo_.front().deleter();
        limbo_.pop_front();
        ++freed;
    }
    return freed;
}

void EbrDomain::drain()
{
    while (!limbo_.empty()) {
        if (try_reclaim() == 0) std::this_thread::yield();
    }
}

}  // namespace psync
