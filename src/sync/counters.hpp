// sync/counters.hpp — shared-state scalars for the dataplane, kept here so
// the placement rule (tools/check_atomics.py: raw atomics live in src/sync)
// holds for the worker pipeline too.
//
//   * EventCounter — a cache-line-padded monotonically increasing counter a
//     single worker bumps and any observer thread may snapshot. Relaxed on
//     both sides: the values are statistics, never used to order accesses to
//     other data.
//   * StopFlag — a shutdown signal set by the orchestrator and polled by
//     workers; reset() rearms it once the workers are known to have joined.
//   * PauseGate — a quiescent-point handshake: the orchestrator asks a
//     worker to park, waits for the acknowledgement, mutates shared state
//     the worker normally owns (e.g. compacts the FIB), then resumes it.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/annotations.hpp"

namespace psync {

/// Monotonic event counter on its own cache line. One writer, any readers.
struct alignas(64) EventCounter {
    EventCounter() = default;
    EventCounter(const EventCounter&) = delete;
    EventCounter& operator=(const EventCounter&) = delete;

    void add(std::uint64_t n) noexcept
    {
        // order: relaxed (load and store) [cap:stats] — a statistic with a
        // single incrementing thread; observers tolerate staleness.
        const auto v = value_.load(std::memory_order_relaxed);
        value_.store(v + n, std::memory_order_relaxed);  // order: see above [cap:stats]
    }

    [[nodiscard]] std::uint64_t read() const noexcept
    {
        // order: relaxed [cap:stats] — snapshot for reporting only; never
        // used to justify access to other shared data.
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// One-way shutdown signal: the orchestrator request()s, workers poll.
class StopFlag {
public:
    void request() noexcept
    {
        // order: release [cap:stop-flag] — anything the requester wrote
        // before stopping is visible to a worker that acquires the flag.
        stop_.store(true, std::memory_order_release);
    }

    [[nodiscard]] bool requested() const noexcept
    {
        // order: acquire [cap:stop-flag] — pairs with request()'s release.
        return stop_.load(std::memory_order_acquire);
    }

    /// Rearms the flag. Only valid once every thread that polls it has
    /// joined (otherwise a worker could miss the shutdown entirely) — which
    /// is exactly the quiescence capability, so the analysis rejects a
    /// rearm outside a join/park window. tools/check_concurrency.py rule R3
    /// additionally checks the dynamic shape: a `.reset()` on a StopFlag
    /// must follow a join in the same scope.
    void reset() noexcept POPTRIE_REQUIRES(cap::quiescent)
    {
        // order: relaxed [cap:stop-flag] — by contract (cap::quiescent) no
        // poller is running concurrently.
        stop_.store(false, std::memory_order_relaxed);
    }

private:
    std::atomic<bool> stop_{false};
};

/// Quiescent-point handshake between an orchestrator thread and ONE worker
/// thread. Protocol:
///
///   orchestrator                         worker (at a consistent point)
///   token = request_pause()              if (pause_requested()) {
///   while (!parked_since(token)) ...         enter_park();
///   ... mutate shared state ...              while (pause_requested()) ...
///   resume()                             }
///
/// enter_park() is a release store the orchestrator acquires through
/// parked_since(), so everything the worker wrote before parking is visible
/// while it is parked; resume() is a release store the worker acquires
/// through pause_requested(), so the orchestrator's mutations are visible
/// when the worker continues. The park generation (not a boolean) is what
/// parked_since() compares, so a stale acknowledgement from an earlier
/// pause can never satisfy a new request. The orchestrator's wait loop is
/// its own: a worker may exit instead of parking (feed finished), which the
/// caller detects and handles (typically by joining the thread).
class PauseGate {
public:
    /// Orchestrator: requests a pause; pass the token to parked_since().
    [[nodiscard]] std::uint64_t request_pause() noexcept
    {
        // order: acquire [cap:pause-gate] — the token must be read before the
        // request publishes, or a park racing the request is miscounted.
        const auto token = parks_.load(std::memory_order_acquire);
        // order: release [cap:pause-gate] — see the class protocol doc.
        pause_.store(true, std::memory_order_release);
        return token;
    }

    /// Orchestrator: true once the worker parked after request_pause().
    [[nodiscard]] bool parked_since(std::uint64_t token) const noexcept
    {
        // order: acquire [cap:pause-gate] — pairs with enter_park()'s
        // release increment.
        return parks_.load(std::memory_order_acquire) != token;
    }

    /// Orchestrator: lifts the pause; the parked worker resumes.
    void resume() noexcept
    {
        // order: release [cap:pause-gate] — pairs with pause_requested()'s
        // acquire load.
        pause_.store(false, std::memory_order_release);
    }

    /// Worker: polls for a pause request (also the in-park wait condition).
    [[nodiscard]] bool pause_requested() const noexcept
    {
        // order: acquire [cap:pause-gate] — pairs with request_pause() and
        // resume()'s release stores.
        return pause_.load(std::memory_order_acquire);
    }

    /// Worker: acknowledges the pause. Call once, then spin/sleep on
    /// pause_requested() before touching shared state again.
    void enter_park() noexcept
    {
        // order: release [cap:pause-gate] — publishes everything written
        // before the park.
        parks_.fetch_add(1, std::memory_order_release);
    }

private:
    // Handshake fields. Nothing outside this class may name them: rule R4 of
    // tools/check_concurrency.py flags any `.pause_`/`.parks_` member access
    // outside this header, so the generation-counter protocol above is the
    // only way in.
    std::atomic<bool> pause_{false};
    std::atomic<std::uint64_t> parks_{0};
};

}  // namespace psync
