// sync/counters.hpp — shared-state scalars for the dataplane, kept here so
// the placement rule (tools/check_atomics.py: raw atomics live in src/sync)
// holds for the worker pipeline too.
//
//   * EventCounter — a cache-line-padded monotonically increasing counter a
//     single worker bumps and any observer thread may snapshot. Relaxed on
//     both sides: the values are statistics, never used to order accesses to
//     other data.
//   * StopFlag — a one-way shutdown signal set by the orchestrator and
//     polled by workers.
#pragma once

#include <atomic>
#include <cstdint>

namespace psync {

/// Monotonic event counter on its own cache line. One writer, any readers.
struct alignas(64) EventCounter {
    EventCounter() = default;
    EventCounter(const EventCounter&) = delete;
    EventCounter& operator=(const EventCounter&) = delete;

    void add(std::uint64_t n) noexcept
    {
        // order: relaxed (load and store) — a statistic with a single
        // incrementing thread; observers tolerate momentary staleness.
        const auto v = value_.load(std::memory_order_relaxed);
        value_.store(v + n, std::memory_order_relaxed);  // order: see above
    }

    [[nodiscard]] std::uint64_t read() const noexcept
    {
        // order: relaxed — snapshot for reporting only; never used to
        // justify access to other shared data.
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// One-way shutdown signal: the orchestrator request()s, workers poll.
class StopFlag {
public:
    void request() noexcept
    {
        // order: release — anything the requester wrote before stopping is
        // visible to a worker that sees the flag via the acquire load below.
        stop_.store(true, std::memory_order_release);
    }

    [[nodiscard]] bool requested() const noexcept
    {
        // order: acquire — pairs with request()'s release store.
        return stop_.load(std::memory_order_acquire);
    }

private:
    std::atomic<bool> stop_{false};
};

}  // namespace psync
