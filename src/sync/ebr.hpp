// sync/ebr.hpp — epoch-based memory reclamation.
//
// §3.5 of the paper requires that after an incremental FIB update "the unused
// memory space, i.e., the replaced part, is freed after ensuring no lookup
// procedure is referring to it". That is exactly a grace-period problem:
// lookups are short read-side critical sections, the (single) updater is the
// writer. This header implements classic epoch-based reclamation with
// monotonically increasing epochs:
//
//   * each reader thread registers a slot; around every lookup batch it
//     `enter()`s (publishing the epoch it is reading under) and `exit()`s;
//   * the updater `retire()`s replaced node/leaf runs with a deleter, then
//     periodically `try_reclaim()`s: anything retired at an epoch strictly
//     below every active reader's epoch is freed.
//
// The read side is two relaxed/acq-rel atomic stores — cheap enough to wrap
// around a batch of a few thousand lookups without measurable cost.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace psync {

/// A reclamation domain: one per concurrently-updated structure (or shared).
/// Reader registration is thread-safe; retire/try_reclaim must be called from
/// a single writer thread (the paper assumes "single-threaded update
/// operation").
class EbrDomain {
public:
    /// A reader thread's registration. Obtain via register_reader(); the slot
    /// stays valid for the domain's lifetime.
    class Reader {
    public:
        /// Marks the start of a read-side critical section.
        void enter() noexcept
        {
            // Publish the epoch we are entering under. The seq_cst fence
            // pairs with the writer's fence in min_active_epoch() so the
            // writer cannot miss us while freeing.
            const auto e = domain_->epoch_.load(std::memory_order_relaxed);
            slot_->store(e, std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_seq_cst);
        }

        /// Marks the end of a read-side critical section.
        void exit() noexcept { slot_->store(kQuiescent, std::memory_order_release); }

    private:
        friend class EbrDomain;
        Reader(EbrDomain* d, std::atomic<std::uint64_t>* s) noexcept : domain_(d), slot_(s) {}
        EbrDomain* domain_;
        std::atomic<std::uint64_t>* slot_;
    };

    /// RAII wrapper around Reader::enter/exit.
    class Guard {
    public:
        explicit Guard(Reader& r) noexcept : reader_(r) { reader_.enter(); }
        ~Guard() { reader_.exit(); }
        Guard(const Guard&) = delete;
        Guard& operator=(const Guard&) = delete;

    private:
        Reader& reader_;
    };

    EbrDomain() = default;
    EbrDomain(const EbrDomain&) = delete;
    EbrDomain& operator=(const EbrDomain&) = delete;

    /// Registers the calling thread as a reader. Thread-safe.
    [[nodiscard]] Reader register_reader();

    /// Queues `deleter` to run once no reader can still observe the retired
    /// object. Writer-thread only. The object must already be unreachable
    /// from the live structure.
    void retire(std::function<void()> deleter);

    /// Advances the epoch and frees every retired object whose grace period
    /// has elapsed. Returns the number of deleters run. Writer-thread only.
    std::size_t try_reclaim();

    /// Blocks (spinning) until everything retired so far is freed. Writer-
    /// thread only; used on shutdown and in tests.
    void drain();

    /// Objects currently awaiting reclamation (diagnostics).
    [[nodiscard]] std::size_t pending() const noexcept { return limbo_.size(); }

private:
    static constexpr std::uint64_t kQuiescent = 0;

    [[nodiscard]] std::uint64_t min_active_epoch() const noexcept;

    struct Retired {
        std::uint64_t epoch;
        std::function<void()> deleter;
    };

    std::atomic<std::uint64_t> epoch_{1};  // 0 is reserved for "quiescent"
    mutable std::mutex reader_mutex_;
    // Deque of stable-address slots; readers keep pointers into it.
    std::deque<std::atomic<std::uint64_t>> slots_;
    std::deque<Retired> limbo_;  // writer-private, ordered by epoch
};

}  // namespace psync
