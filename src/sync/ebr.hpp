// sync/ebr.hpp — epoch-based memory reclamation.
//
// §3.5 of the paper requires that after an incremental FIB update "the unused
// memory space, i.e., the replaced part, is freed after ensuring no lookup
// procedure is referring to it". That is exactly a grace-period problem:
// lookups are short read-side critical sections, the (single) updater is the
// writer. This header implements classic epoch-based reclamation with
// monotonically increasing epochs:
//
//   * each reader thread registers a slot; around every lookup batch it
//     `enter()`s (publishing the epoch it is reading under) and `exit()`s;
//   * the updater `retire()`s replaced node/leaf runs with a deleter, then
//     periodically `try_reclaim()`s: anything retired at an epoch strictly
//     below every active reader's epoch is freed.
//
// The read side is two relaxed/acq-rel atomic stores — cheap enough to wrap
// around a batch of a few thousand lookups without measurable cost.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "sync/annotations.hpp"

namespace psync {

// ThreadSanitizer does not model std::atomic_thread_fence (GCC even rejects
// it under -fsanitize=thread via -Wtsan), so fence-based synchronization
// would produce false-positive race reports. Under TSan the seq_cst fences
// below are replaced by seq_cst RMWs on a per-domain dummy atomic: all RMWs
// on one variable are totally ordered and each reads the value written by
// its predecessor, so any two of them are linked by happens-before — the
// same "either the scan sees my slot, or I see the writer's publication"
// disjunction the fence version provides, and one TSan can see.
#if defined(__SANITIZE_THREAD__)
#define POPTRIE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define POPTRIE_TSAN 1
#endif
#endif

/// A reclamation domain: one per concurrently-updated structure (or shared).
/// Reader registration is thread-safe; retire/try_reclaim must be called from
/// a single writer thread (the paper assumes "single-threaded update
/// operation").
class EbrDomain {
public:
    /// A reader thread's registration. Obtain via register_reader(). The
    /// registration is move-only and unregisters itself on destruction, so a
    /// worker thread that exits returns its slot to the domain instead of
    /// stalling reclamation forever (a destroyed-but-registered slot that
    /// happened to die active would otherwise pin the minimum epoch). Freed
    /// slots are recycled by later register_reader() calls, so worker pools
    /// that start and stop repeatedly do not grow the slot table without
    /// bound. A Reader must not outlive its domain, and enter()/exit() must
    /// not be called on a default-constructed or moved-from Reader.
    class Reader {
    public:
        Reader() noexcept = default;
        Reader(Reader&& other) noexcept : domain_(other.domain_), slot_(other.slot_)
        {
            other.domain_ = nullptr;
            other.slot_ = nullptr;
        }
        Reader& operator=(Reader&& other) noexcept
        {
            if (this != &other) {
                release();
                domain_ = other.domain_;
                slot_ = other.slot_;
                other.domain_ = nullptr;
                other.slot_ = nullptr;
            }
            return *this;
        }
        Reader(const Reader&) = delete;
        Reader& operator=(const Reader&) = delete;
        ~Reader() { release(); }

        /// Marks the start of a read-side critical section.
        ///
        /// Memory orders (paired with min_active_epoch(), Dekker-style):
        ///  * the epoch load is relaxed — reading a *stale* (smaller) epoch
        ///    only makes the writer more conservative, never unsafe, because
        ///    reclamation requires every active slot to be strictly above the
        ///    retire epoch;
        ///  * the slot store is relaxed but must become visible before any
        ///    read of the protected structure, which the seq_cst fence
        ///    enforces: it pairs with the seq_cst fence in
        ///    min_active_epoch(). In the total order of seq_cst fences either
        ///    our fence comes first — then the writer's scan sees our slot and
        ///    keeps the retired block — or the writer's fence comes first —
        ///    then our subsequent structure reads see the writer's
        ///    replacement pointers, not the retired block.
        POPTRIE_HOT void enter() noexcept POPTRIE_ACQUIRE_SHARED(cap::ebr)
        {
            // order: relaxed [cap:ebr] — a stale (smaller) epoch only makes
            // the writer more conservative (see the contract above).
            const auto e = domain_->epoch_.load(std::memory_order_relaxed);
            // order: relaxed [cap:ebr] — visibility before structure reads is
            // provided by the seq_cst fence on the next line, not this store.
            slot_->store(e, std::memory_order_relaxed);
            domain_->fence_seq_cst();
        }

        /// Marks the end of a read-side critical section. The release store
        /// orders every read of the protected structure before the slot
        /// becoming quiescent: when the writer's acquire scan in
        /// min_active_epoch() observes kQuiescent, all of this section's
        /// reads happened-before the writer's subsequent free.
        POPTRIE_HOT void exit() noexcept POPTRIE_RELEASE_SHARED(cap::ebr)
        {
            // order: release [cap:ebr] — sequences every structure read before
            // the slot turns quiescent; pairs with min_active_epoch()'s scan.
            slot_->store(kQuiescent, std::memory_order_release);
        }

    private:
        friend class EbrDomain;
        Reader(EbrDomain* d, std::atomic<std::uint64_t>* s) noexcept : domain_(d), slot_(s) {}

        /// Returns the slot to the domain (it is forced quiescent first, so
        /// even a Reader destroyed mid-critical-section cannot stall
        /// reclamation). Safe on empty Readers.
        void release() noexcept
        {
            if (domain_ != nullptr) domain_->unregister_reader(slot_);
            domain_ = nullptr;
            slot_ = nullptr;
        }

        EbrDomain* domain_ = nullptr;
        std::atomic<std::uint64_t>* slot_ = nullptr;
    };

    /// RAII wrapper around Reader::enter/exit. Holding one IS the shared EBR
    /// capability (cap::ebr): the analysis lets the enclosed code reach
    /// EBR-guarded state for exactly the guard's lifetime.
    class POPTRIE_SCOPED_CAPABILITY Guard {
    public:
        POPTRIE_HOT explicit Guard(Reader& r) noexcept POPTRIE_ACQUIRE_SHARED(cap::ebr) : reader_(r)
        {
            reader_.enter();
        }
        POPTRIE_HOT ~Guard() POPTRIE_RELEASE_GENERIC(cap::ebr) { reader_.exit(); }
        Guard(const Guard&) = delete;
        Guard& operator=(const Guard&) = delete;

    private:
        Reader& reader_;
    };

    EbrDomain() = default;
    EbrDomain(const EbrDomain&) = delete;
    EbrDomain& operator=(const EbrDomain&) = delete;

    /// Registers the calling thread as a reader. Thread-safe. Recycles slots
    /// returned by destroyed Readers before growing the slot table.
    [[nodiscard]] Reader register_reader();

    /// Queues `deleter` to run once no reader can still observe the retired
    /// object. Writer-thread only (REQUIRES the exclusive EBR capability:
    /// only the single writer may touch the limbo list). The object must
    /// already be unreachable from the live structure.
    void retire(std::function<void()> deleter) POPTRIE_REQUIRES(cap::ebr);

    /// Advances the epoch and frees every retired object whose grace period
    /// has elapsed. Returns the number of deleters run. Writer-thread only.
    std::size_t try_reclaim() POPTRIE_REQUIRES(cap::ebr);

    /// Blocks (spinning) until everything retired so far is freed. Writer-
    /// thread only; used on shutdown and in tests.
    void drain() POPTRIE_REQUIRES(cap::ebr);

    /// Objects currently awaiting reclamation (diagnostics).
    [[nodiscard]] std::size_t pending() const noexcept { return limbo_.size(); }

    /// Invariant snapshot for the structural auditor (writer-thread only: it
    /// reads the writer-private limbo list). See analysis::audit_ebr for the
    /// checks built on top of it.
    struct Diag {
        std::uint64_t current_epoch = 0;
        /// Smallest epoch any registered reader is currently active under;
        /// nullopt when every reader is quiescent.
        std::optional<std::uint64_t> min_active_epoch;
        /// Live registrations (slots handed out minus slots returned).
        std::size_t registered_readers = 0;
        /// Slots ever allocated, including ones awaiting reuse on the free
        /// list; bounded by the peak concurrent reader count.
        std::size_t slot_capacity = 0;
        std::size_t pending = 0;
        /// Epochs of the oldest/newest retired-but-unreclaimed objects
        /// (nullopt when limbo is empty).
        std::optional<std::uint64_t> oldest_retired_epoch;
        std::optional<std::uint64_t> newest_retired_epoch;
        /// Limbo must stay ordered by retire epoch (retire() appends and the
        /// epoch is monotone), or try_reclaim()'s front-only scan would free
        /// out of order.
        bool limbo_sorted = true;
    };
    [[nodiscard]] Diag diag() const;

private:
    static constexpr std::uint64_t kQuiescent = 0;

    /// The seq_cst fence pairing enter() with min_active_epoch(). Under TSan
    /// it becomes a seq_cst RMW on fence_sync_ (see the note at the top of
    /// this header); elsewhere it compiles to a plain fence.
    void fence_seq_cst() const noexcept
    {
#ifdef POPTRIE_TSAN
        // order: seq_cst [cap:ebr] — RMWs on one variable are totally
        // ordered, giving the same either/or disjunction as the fence.
        fence_sync_.fetch_add(0, std::memory_order_seq_cst);
#else
        // order: seq_cst [cap:ebr] — Dekker pairing between the reader's slot
        // publication and the writer's slot scan; nothing weaker suffices.
        std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
    }

    [[nodiscard]] std::uint64_t min_active_epoch() const noexcept;

    /// Returns `slot` to the free list after forcing it quiescent. Called
    /// from Reader's destructor; thread-safe.
    void unregister_reader(std::atomic<std::uint64_t>* slot) noexcept;

    struct Retired {
        std::uint64_t epoch;
        std::function<void()> deleter;
    };

    std::atomic<std::uint64_t> epoch_{1};  // 0 is reserved for "quiescent"
#ifdef POPTRIE_TSAN
    mutable std::atomic<std::uint64_t> fence_sync_{0};  // RMW target, value unused
#endif
    mutable Mutex reader_mutex_;
    // Deque of stable-address slots; readers keep pointers into it. Slots are
    // never destroyed (addresses must stay valid for the domain's lifetime);
    // unregistered ones park on free_slots_ for reuse. Container shape is
    // GUARDED_BY the registration mutex; the atomic *contents* of a slot are
    // accessed lock-free through Reader's stable pointer by design.
    std::deque<std::atomic<std::uint64_t>> slots_ POPTRIE_GUARDED_BY(reader_mutex_);
    std::vector<std::atomic<std::uint64_t>*> free_slots_ POPTRIE_GUARDED_BY(reader_mutex_);
    // Writer-private, ordered by epoch. Not GUARDED_BY anything the analysis
    // can name: "the single writer thread" is the cap::ebr exclusive role,
    // enforced on retire()/try_reclaim()/drain() via REQUIRES above.
    std::deque<Retired> limbo_;
};

}  // namespace psync
