// dataplane/engines.hpp — the LpmEngine concept and the adapters that plug
// every lookup structure in the repo into the same forwarding pipeline.
//
// CRAM-style evaluation (PAPERS.md: Chang et al.) needs the pipeline held
// fixed while the structure varies; this file is where that uniformity is
// enforced. An engine exposes exactly what a ForwardingWorker consumes:
//
//   * key_type / addr_type   — the address family it resolves;
//   * name()                 — the row label benches print;
//   * lookup_batch(keys, out, n) — resolve a burst (noexcept, const);
//   * make_reader()          — per-worker read-side state; a Reader::Guard
//                              (a scoped EBR capability claim) is held
//                              around each burst.
//
// Poptrie goes through router::Router (RIB + adjacency table + EBR), so it
// supports live churn; the baselines are compiled read-only structures and
// use a no-op reader. Their scalar lookups are wrapped in a software-
// pipelined loop with prefetch staging of the key-derived top-level access
// where the structure exposes one; for opaque baselines a plain loop is the
// honest representation of what that structure offers a forwarding plane.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>

#include "baselines/dir24.hpp"
#include "snapshot/snapshot.hpp"
#include "baselines/dxr.hpp"
#include "baselines/sail.hpp"
#include "baselines/treebitmap.hpp"
#include "poptrie/lanes.hpp"
#include "rib/route.hpp"
#include "router/router.hpp"
#include "sync/annotations.hpp"
#include "sync/ebr.hpp"

namespace dataplane {

/// Read-side state for engines with no concurrent-update machinery. Its
/// Guard still claims the shared EBR capability so the worker loop is
/// uniform across engines; the claim is vacuously sound — a read-only
/// structure has no updater and retires nothing.
struct NullReader {
    class POPTRIE_SCOPED_CAPABILITY Guard {
    public:
        POPTRIE_HOT explicit Guard(NullReader&) noexcept POPTRIE_ACQUIRE_SHARED(psync::cap::ebr) {}
        POPTRIE_HOT ~Guard() POPTRIE_RELEASE_GENERIC(psync::cap::ebr) {}
        Guard(const Guard&) = delete;
        Guard& operator=(const Guard&) = delete;
    };
};

/// Read-side state wrapping an EBR registration (Poptrie's §3.5 contract).
/// Guard is the real read-side critical section: enter() on construction,
/// exit() on destruction, carrying the shared EBR capability in between.
class EbrReader {
public:
    explicit EbrReader(psync::EbrDomain::Reader reader) noexcept
        : reader_(std::move(reader))
    {
    }

    class POPTRIE_SCOPED_CAPABILITY Guard {
    public:
        POPTRIE_HOT explicit Guard(EbrReader& r) noexcept POPTRIE_ACQUIRE_SHARED(psync::cap::ebr)
            : reader_(r.reader_)
        {
            reader_.enter();
        }
        POPTRIE_HOT ~Guard() POPTRIE_RELEASE_GENERIC(psync::cap::ebr) { reader_.exit(); }
        Guard(const Guard&) = delete;
        Guard& operator=(const Guard&) = delete;

    private:
        psync::EbrDomain::Reader& reader_;
    };

private:
    psync::EbrDomain::Reader reader_;
};

/// What the forwarding pipeline requires of a lookup structure.
template <class E>
concept LpmEngine = requires(const E& ce, E& e, const typename E::key_type* keys,
                             rib::NextHop* out, std::size_t n) {
    typename E::addr_type;
    typename E::key_type;
    { ce.name() } -> std::convertible_to<std::string_view>;
    // check-concurrency: allow -- requires-expression, spelled but never run.
    { ce.lookup_batch(keys, out, n) } noexcept;
    { e.make_reader() };
};

/// Poptrie behind the Router integration layer. The only engine that
/// supports concurrent route churn: a control thread may call
/// Router::add_route / remove_route while workers forward.
class PoptrieEngine {
public:
    using addr_type = netbase::Ipv4Addr;
    using key_type = addr_type::value_type;
    static constexpr bool kSupportsChurn = true;

    explicit PoptrieEngine(router::Router4& router) noexcept : router_(&router) {}

    [[nodiscard]] std::string_view name() const noexcept { return "poptrie"; }

    // REQUIRES_SHARED: this is the serving path that races a live updater;
    // the worker must hold a Guard (from make_reader()) for the whole burst.
    // Deleting the guard in the worker loop fails the POPTRIE_TSA build.
    POPTRIE_HOT void lookup_batch(const key_type* keys, rib::NextHop* out,
                      std::size_t n) const noexcept POPTRIE_REQUIRES_SHARED(psync::cap::ebr)
    {
        // One configuration branch per burst, then the lane-interleaved
        // prefetch-staged walk (poptrie.hpp) for the whole batch.
        if (router_->fib().config().leaf_compression)
            router_->fib().lookup_batch<true>(keys, out, n);
        else
            router_->fib().lookup_batch<false>(keys, out, n);
    }

    [[nodiscard]] EbrReader make_reader() const
    {
        return EbrReader{router_->register_reader()};
    }

    [[nodiscard]] router::Router4& router() const noexcept { return *router_; }

private:
    router::Router4* router_;
};

/// A restored snapshot image served read-only. No writer side exists at all
/// — no EBR domain, no pool growth, no Router — so the NullReader's vacuous
/// capability claim is exact, not an approximation: there is nothing an
/// updater could ever retire. The batch path is the same lane-interleaved
/// walk as the live trie, over the mapped (or copied-in) image.
class SnapshotEngine {
public:
    using addr_type = netbase::Ipv4Addr;
    using key_type = addr_type::value_type;
    static constexpr bool kSupportsChurn = false;

    explicit SnapshotEngine(const snapshot::SnapshotFib4& fib) noexcept : fib_(&fib) {}

    [[nodiscard]] std::string_view name() const noexcept { return "snapshot"; }

    // REQUIRES_SHARED keeps the worker-loop contract uniform: the burst is
    // bracketed by a NullReader::Guard whose claim is vacuously satisfied.
    POPTRIE_HOT void lookup_batch(const key_type* keys, rib::NextHop* out,
                      std::size_t n) const noexcept POPTRIE_REQUIRES_SHARED(psync::cap::ebr)
    {
        fib_->lookup_batch(keys, out, n);
    }

    [[nodiscard]] NullReader make_reader() const noexcept { return {}; }

    [[nodiscard]] const snapshot::SnapshotFib4& fib() const noexcept { return *fib_; }

private:
    const snapshot::SnapshotFib4* fib_;
};

/// The latency-hiding engine: a live Poptrie served read-only through the
/// lane-dispatched batch paths (poptrie/lanes.hpp) — the software-pipelined
/// state machine, or the AVX2/AVX-512 gather kernels where compiled in and
/// CPU-supported (POPTRIE_FORCE_LANES overrides; the caller resolves a
/// lanes::Selection and passes the path in, so a refused force never
/// silently degrades here).
///
/// kSupportsChurn = false is load-bearing, not an omission: the SIMD
/// kernels read through a PlainView whose gathers are plain loads with no
/// acquire ordering, and the view hoists the pool pointers for its whole
/// lifetime. Both are sound only with no concurrent updater — tables that
/// must take live churn stay on PoptrieEngine's AtomicView walk.
class PipelinedEngine {
public:
    using addr_type = netbase::Ipv4Addr;
    using key_type = addr_type::value_type;
    static constexpr bool kSupportsChurn = false;

    explicit PipelinedEngine(const poptrie::Poptrie4& fib,
                             poptrie::lanes::LanePath path) noexcept
        : view_(fib.batch_view()), path_(path)
    {
        name_ = "pipelined[";
        name_ += poptrie::lanes::name(path);
        name_ += ']';
    }

    [[nodiscard]] std::string_view name() const noexcept { return name_; }
    [[nodiscard]] poptrie::lanes::LanePath lane_path() const noexcept { return path_; }

    // REQUIRES_SHARED keeps the worker-loop contract uniform: the burst is
    // bracketed by a NullReader::Guard whose claim is vacuously satisfied
    // (no updater exists under this engine's contract).
    POPTRIE_HOT void lookup_batch(const key_type* keys, rib::NextHop* out,
                      std::size_t n) const noexcept POPTRIE_REQUIRES_SHARED(psync::cap::ebr)
    {
        poptrie::lanes::run(path_, view_, keys, out, n);
    }

    [[nodiscard]] NullReader make_reader() const noexcept { return {}; }

private:
    poptrie::lanes::View4 view_;
    poptrie::lanes::LanePath path_;
    std::string name_;
};

/// Adapter for the read-only baselines: any structure with a scalar
/// `lookup(Ipv4Addr) -> NextHop`. No churn support (the paper's baselines
/// have no concurrent-update story; the bench holds their tables fixed).
template <class Impl>
class ScalarEngine {
public:
    using addr_type = netbase::Ipv4Addr;
    using key_type = addr_type::value_type;
    static constexpr bool kSupportsChurn = false;

    ScalarEngine(const Impl& impl, std::string name) noexcept
        : impl_(&impl), name_(std::move(name))
    {
    }

    [[nodiscard]] std::string_view name() const noexcept { return name_; }

    POPTRIE_HOT void lookup_batch(const key_type* keys, rib::NextHop* out,
                      std::size_t n) const noexcept
    {
        for (std::size_t i = 0; i < n; ++i) out[i] = impl_->lookup(addr_type{keys[i]});
    }

    [[nodiscard]] NullReader make_reader() const noexcept { return {}; }

private:
    const Impl* impl_;
    std::string name_;
};

using SailEngine = ScalarEngine<baselines::Sail>;
using Dir24Engine = ScalarEngine<baselines::Dir24>;
using DxrEngine = ScalarEngine<baselines::Dxr>;
using TreeBitmapEngine = ScalarEngine<baselines::TreeBitmap16>;

static_assert(LpmEngine<PoptrieEngine>);
static_assert(LpmEngine<PipelinedEngine>);
static_assert(LpmEngine<SnapshotEngine>);
static_assert(LpmEngine<SailEngine>);
static_assert(LpmEngine<Dir24Engine>);
static_assert(LpmEngine<DxrEngine>);
static_assert(LpmEngine<TreeBitmapEngine>);

}  // namespace dataplane
