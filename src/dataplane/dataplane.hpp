// dataplane/dataplane.hpp — the forwarding pipeline orchestrator.
//
// Topology (one Dataplane instance):
//
//   producer thread ──offer()──► ring[0] ──► worker 0 ─┐
//                      (shard)   ring[1] ──► worker 1  ├─► per-worker
//                        ...     ring[N-1]─► worker N-1┘   counters+latency
//
// Each worker owns one SPSC ring (no MPMC contention), drains it in bursts
// of at most cfg.burst addresses, and resolves the burst with the engine's
// batched lookup inside a single read-side guard — for Poptrie that is one
// EbrDomain::Guard per burst, exactly the §3.5 granularity the paper's
// update machinery assumes (readers quiesce between batches, so retired FIB
// arrays reclaim promptly without per-lookup fence cost). Per-burst latency
// is sampled into a bounded reservoir (benchkit::Reservoir), so tail
// percentiles come out of a multi-minute soak with fixed memory.
//
// Thread contract: offer() from one producer thread; start()/stop() from
// the owning thread; stats() from anywhere. A control-plane thread may
// mutate the engine's table concurrently only if the engine supports it
// (PoptrieEngine; see churn.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "benchkit/stats.hpp"
#include "dataplane/engines.hpp"
#include "dataplane/stats.hpp"
#include "dataplane/worker_pool.hpp"
#include "rib/route.hpp"
#include "sync/annotations.hpp"
#include "sync/counters.hpp"
#include "sync/spsc_ring.hpp"

namespace dataplane {

struct DataplaneConfig {
    unsigned workers = 4;
    /// Per-worker ring capacity in addresses (rounded up to a power of two).
    std::size_t ring_capacity = std::size_t{1} << 14;
    /// Max addresses drained per burst — the EBR guard scope and the latency
    /// sampling unit. 256 amortizes the guard's fences to ~noise while
    /// keeping per-burst latency meaningful for pacing.
    std::size_t burst = 256;
    bool pin_cpus = false;
    unsigned cpu_offset = 0;
    /// Per-worker latency reservoir capacity (samples kept).
    std::size_t latency_reservoir = 4096;
};

template <LpmEngine Engine>
class Dataplane {
public:
    using key_type = typename Engine::key_type;

    Dataplane(Engine engine, const DataplaneConfig& cfg)
        : engine_(std::move(engine)), cfg_(cfg)
    {
        if (cfg_.workers == 0) cfg_.workers = 1;
        if (cfg_.burst == 0) cfg_.burst = 1;
        workers_.reserve(cfg_.workers);
        for (unsigned w = 0; w < cfg_.workers; ++w)
            workers_.push_back(std::make_unique<WorkerState>(
                cfg_.ring_capacity, cfg_.latency_reservoir, 0xDA7A + w));
    }

    ~Dataplane() { stop(); }
    Dataplane(const Dataplane&) = delete;
    Dataplane& operator=(const Dataplane&) = delete;

    /// Spawns the forwarding workers. Must be called before offer().
    void start()
    {
        if (pool_) return;
        pool_ = std::make_unique<WorkerPool>(
            WorkerPoolConfig{.threads = cfg_.workers,
                             .pin_cpus = cfg_.pin_cpus,
                             .cpu_offset = cfg_.cpu_offset},
            [this](unsigned w) { worker_main(w); });
    }

    /// Producer: shards `n` addresses across the worker rings. Returns how
    /// many were accepted; the rest were dropped because every ring was full
    /// (accounted in stats().ring_drops). Round-robin over rings, spilling a
    /// partially refused batch to the next ring before giving up.
    std::size_t offer(const key_type* keys, std::size_t n)
    {
        producer_.offered.add(n);
        std::size_t done = 0;
        for (unsigned attempt = 0; attempt < cfg_.workers && done < n; ++attempt) {
            auto& ring = workers_[shard_cursor_]->ring;
            // producer: offer() runs on the single producer thread (class
            // doc), which is every ring's one feeding end.
            const psync::SpscProducerToken token{ring};
            shard_cursor_ = (shard_cursor_ + 1) % cfg_.workers;
            done += ring.push(keys + done, n - done);
        }
        if (done < n) producer_.ring_drops.add(n - done);
        return done;
    }

    /// Requests shutdown: workers drain their rings, then exit; blocks until
    /// all have joined. Idempotent. The producer must have stopped offering.
    /// The pipeline is restartable: the stop flag is rearmed after the join,
    /// so start() spawns a fresh worker pool — lpmd --compact-every pauses
    /// and resumes forwarding around quiescent-point FIB compaction this way
    /// (counters and latency reservoirs carry across the restart).
    void stop()
    {
        if (!pool_) return;
        stop_.request();
        pool_->join();
        pool_.reset();
        // quiescent: every worker joined above — no poller of stop_ and no
        // EBR reader exists until start() spawns a fresh pool.
        const psync::QuiescentSection quiescent;
        stop_.reset();  // all pollers joined: safe to rearm
    }

    [[nodiscard]] bool running() const noexcept { return pool_ != nullptr; }

    /// Live aggregate (exact after stop()).
    [[nodiscard]] StatsSnapshot stats() const
    {
        StatsSnapshot s;
        for (const auto& w : workers_) {
            s.forwarded += w->counters.forwarded.read();
            s.no_route += w->counters.no_route.read();
            s.batches += w->counters.batches.read();
        }
        s.offered = producer_.offered.read();
        s.ring_drops = producer_.ring_drops.read();
        return s;
    }

    /// Merged per-burst latency reservoir (ns samples). Only meaningful
    /// after stop() — workers own their reservoirs while running — which is
    /// what the quiescence requirement enforces statically.
    [[nodiscard]] benchkit::Reservoir merged_latency() const
        POPTRIE_REQUIRES(psync::cap::quiescent)
    {
        benchkit::Reservoir merged(cfg_.latency_reservoir);
        for (const auto& w : workers_) merged.merge(w->latency);
        return merged;
    }

    [[nodiscard]] const Engine& engine() const noexcept { return engine_; }
    [[nodiscard]] const DataplaneConfig& config() const noexcept { return cfg_; }

private:
    struct WorkerState {
        WorkerState(std::size_t ring_capacity, std::size_t reservoir, std::uint64_t seed)
            : ring(ring_capacity), latency(reservoir, seed)
        {
        }
        psync::SpscRing<key_type> ring;
        WorkerCounters counters;
        benchkit::Reservoir latency;  // worker-private until join
    };

    void worker_main(unsigned w)
    {
        WorkerState& st = *workers_[w];
        std::vector<key_type> keys(cfg_.burst);
        std::vector<rib::NextHop> hops(cfg_.burst);
        auto reader = engine_.make_reader();
        // consumer: worker w is ring w's one draining end for its lifetime.
        const psync::SpscConsumerToken consumer{st.ring};
        for (;;) {
            const std::size_t n = st.ring.pop(keys.data(), cfg_.burst);
            if (n == 0) {
                // Ring drained: exit if shutdown was requested (the producer
                // has stopped, so empty is final), otherwise yield and poll.
                if (stop_.requested()) break;
                std::this_thread::yield();
                continue;
            }
            const auto t0 = std::chrono::steady_clock::now();
            {
                // reader: the per-burst read-side critical section — one EBR
                // guard per burst, the §3.5 granularity the update machinery
                // assumes.
                const typename decltype(reader)::Guard guard{reader};
                engine_.lookup_batch(keys.data(), hops.data(), n);
            }
            const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
            std::uint64_t hit = 0;
            for (std::size_t i = 0; i < n; ++i) hit += (hops[i] != rib::kNoRoute) ? 1 : 0;
            st.counters.forwarded.add(hit);
            st.counters.no_route.add(n - hit);
            st.counters.batches.add(1);
            st.latency.add(static_cast<std::uint64_t>(ns));
        }
    }

    Engine engine_;
    DataplaneConfig cfg_;
    std::vector<std::unique_ptr<WorkerState>> workers_;
    ProducerCounters producer_;
    psync::StopFlag stop_;
    unsigned shard_cursor_ = 0;  // producer-private
    std::unique_ptr<WorkerPool> pool_;
};

}  // namespace dataplane
