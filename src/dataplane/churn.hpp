// dataplane/churn.hpp — the control-plane side of the dataplane: a thread
// that replays a workload::updatefeed through Router::add_route/remove_route
// while forwarding workers keep running.
//
// This is §3.5 end-to-end: the paper's lock-free update machinery exists so
// route churn never blocks lookups, and this runner is how the repo proves
// it on a live pipeline rather than in a unit test. Update pacing is
// deadline-based (event i is applied no earlier than start + i/rate), so a
// configured rate survives scheduling hiccups without bunching.
#pragma once

#include <cstdint>
#include <thread>

#include "rib/route.hpp"
#include "router/router.hpp"
#include "sync/annotations.hpp"
#include "sync/counters.hpp"
#include "workload/updatefeed.hpp"

namespace dataplane {

/// Loads a route list into a Router, interning adjacencies with the same
/// hop mapping ChurnRunner uses — so a feed announcement that re-announces
/// an existing hop reuses the existing adjacency index.
void load_routes(router::Router4& router,
                 const rib::RouteList<netbase::Ipv4Addr>& routes);

struct ChurnConfig {
    /// Total updates to apply (the feed is generated to this length).
    std::size_t updates = 10'000;
    /// Updates per second; 0 applies the feed as fast as possible.
    double rate_per_sec = 0;
    /// Feed shape (announce/withdraw mix, seeds); `updates` overrides the
    /// feed config's own count.
    workload::UpdateFeedConfig feed{};
};

/// Applies a synthetic BGP feed to a Router on a dedicated thread. The
/// Router's single-writer contract is preserved: this thread is the only
/// one calling add_route/remove_route while it runs.
///
/// Callers running churn concurrently with forwarding must give the FIB
/// enough pool headroom that the feed never forces a growth — growing
/// reallocates the node/leaf arrays under readers' feet. Set
/// `pool_headroom_log2` in the build config, call
/// `Router::reserve_fib_headroom()` after bulk loading (before workers
/// start), and verify `fib().update_counters().pool_growths == 0` after.
class ChurnRunner {
public:
    /// Builds the feed against `routes` (the table the router currently
    /// holds, so withdrawals hit existing prefixes) and starts the thread.
    ChurnRunner(router::Router4& router,
                const rib::RouteList<netbase::Ipv4Addr>& routes, ChurnConfig cfg);

    /// Requests early stop and joins. Also called by the destructor.
    void stop_and_join();
    ~ChurnRunner();

    /// Quiescent-point handshake: blocks until the churn thread is parked
    /// between updates (or the feed finished, in which case the thread is
    /// joined). While paused, the caller may act as the Router's writer —
    /// lpmd --compact-every runs Router::compact_fib() here. Balance every
    /// pause() with resume().
    ///
    /// Capability-wise, pause() hands the caller the exclusive EBR writer
    /// role (the parked churn thread is the usual writer) plus the
    /// quiescence claim on behalf of the caller's full protocol: touching
    /// pool *storage* additionally requires that every forwarding worker is
    /// stopped or parked, which the analysis cannot see from here — lpmd
    /// stops its worker pool between pause() and the compaction, and
    /// check_concurrency.py R4 plus the TSan churn tests keep that half
    /// honest.
    void pause() POPTRIE_ACQUIRE(psync::cap::quiescent, psync::cap::ebr);
    void resume() noexcept POPTRIE_RELEASE(psync::cap::quiescent, psync::cap::ebr);

    ChurnRunner(const ChurnRunner&) = delete;
    ChurnRunner& operator=(const ChurnRunner&) = delete;

    /// True once the whole feed has been applied.
    [[nodiscard]] bool finished() const noexcept { return finished_.read() != 0; }

    [[nodiscard]] std::uint64_t applied() const noexcept { return applied_.read(); }
    [[nodiscard]] std::uint64_t announcements() const noexcept
    {
        return announcements_.read();
    }
    [[nodiscard]] std::uint64_t withdrawals() const noexcept
    {
        return withdrawals_.read();
    }

    /// The adjacency a feed next-hop id maps to (shared with table setup so
    /// initial routes and churned routes intern consistently).
    [[nodiscard]] static router::Adjacency<netbase::Ipv4Addr> adjacency_for(
        rib::NextHop hop);

private:
    void run(std::vector<workload::UpdateEvent> events, ChurnConfig cfg);

    router::Router4& router_;
    psync::StopFlag stop_;
    psync::PauseGate gate_;
    psync::EventCounter applied_;
    psync::EventCounter announcements_;
    psync::EventCounter withdrawals_;
    psync::EventCounter finished_;  // 0/1 flag with counter plumbing
    std::thread thread_;
};

}  // namespace dataplane
