// dataplane/stats.hpp — the forwarding pipeline's counters.
//
// Workers and the producer never share a counter: each worker owns one
// cache-line-padded WorkerCounters block (psync::EventCounter), the producer
// owns ProducerCounters, and observers (lpmd's stats line, the bench, tests)
// fold them into a StatsSnapshot on demand. Totals are therefore racy by one
// burst at most, and exact once the pipeline is stopped.
#pragma once

#include <cstdint>

#include "sync/counters.hpp"

namespace dataplane {

/// One forwarding worker's counters (single-writer, any readers).
struct WorkerCounters {
    psync::EventCounter forwarded;  ///< lookups that resolved a next hop
    psync::EventCounter no_route;   ///< lookup misses (rib::kNoRoute)
    psync::EventCounter batches;    ///< bursts drained from the ring
};

/// The producer side's counters (single-writer, any readers).
struct ProducerCounters {
    psync::EventCounter offered;     ///< addresses handed to offer()
    psync::EventCounter ring_drops;  ///< addresses rejected: every ring full
};

/// Point-in-time aggregate over all workers plus the producer.
struct StatsSnapshot {
    std::uint64_t forwarded = 0;
    std::uint64_t no_route = 0;
    std::uint64_t batches = 0;
    std::uint64_t offered = 0;
    std::uint64_t ring_drops = 0;

    /// Lookups executed (forwarded + no_route).
    [[nodiscard]] std::uint64_t lookups() const noexcept { return forwarded + no_route; }
};

}  // namespace dataplane
