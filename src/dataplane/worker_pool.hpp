// dataplane/worker_pool.hpp — thread spawning and CPU-affinity boilerplate,
// shared by the Dataplane orchestrator and the multicore benches.
//
// Before this existed, every multicore measurement (bench_figure8, the old
// benchkit::measure_random_multithread) spawned and joined its own jthreads;
// the dataplane needs the identical scaffolding plus optional pinning, so
// the boilerplate lives here once. Figure 8's near-linear scaling claim is
// sensitive to the scheduler migrating workers across cores mid-trial;
// pin_cpus makes the paper's fixed-core setup reproducible.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "benchkit/runner.hpp"
#include "workload/xorshift.hpp"

namespace dataplane {

struct WorkerPoolConfig {
    unsigned threads = 1;
    /// Pin worker i to CPU (cpu_offset + i) % hardware_concurrency. Only
    /// effective on Linux; silently a no-op elsewhere.
    bool pin_cpus = false;
    unsigned cpu_offset = 0;
};

/// Pins the calling thread to `cpu`. Returns false when unsupported or the
/// kernel refused (e.g. the CPU is outside the allowed mask in a container).
bool pin_current_thread(unsigned cpu) noexcept;

/// Spawns cfg.threads threads running body(worker_index) and joins them in
/// join() (or the destructor). Affinity is applied inside each worker before
/// body runs.
class WorkerPool {
public:
    WorkerPool(const WorkerPoolConfig& cfg, std::function<void(unsigned)> body);
    ~WorkerPool();
    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /// Blocks until every worker returned. Idempotent. join() is the
    /// dataplane's quiescence edge: once it returns, no worker thread exists,
    /// so no EBR read-side critical section or StopFlag poller survives —
    /// callers may then claim a psync::QuiescentSection (Dataplane::stop
    /// rearms its StopFlag under one).
    void join();

    [[nodiscard]] unsigned size() const noexcept { return threads_count_; }

private:
    unsigned threads_count_;
    std::vector<std::thread> threads_;
};

/// Fig. 8's measurement loop on the shared pool scaffolding: aggregated
/// random-pattern rate over `threads` concurrent lookup threads sharing one
/// read-only structure. Replaces benchkit::measure_random_multithread; the
/// per-thread seeds (0x9000 + worker) and trial handling are unchanged, so
/// checksums remain comparable across the refactor.
template <class Lookup>
benchkit::RateResult measure_random_multithread(Lookup&& lookup,
                                                std::size_t lookups_per_thread,
                                                unsigned threads, unsigned trials,
                                                bool pin_cpus = false)
{
    benchkit::RateResult r;
    std::vector<double> rates;
    for (unsigned t = 0; t < trials; ++t) {
        std::vector<std::uint64_t> sums(threads, 0);
        const auto t0 = std::chrono::steady_clock::now();
        {
            WorkerPool pool({.threads = threads, .pin_cpus = pin_cpus},
                            [&](unsigned w) {
                                workload::Xorshift128 rng(0x9000 + w);
                                std::uint64_t sum = 0;
                                for (std::size_t i = 0; i < lookups_per_thread; ++i)
                                    sum += static_cast<std::uint64_t>(lookup(rng.next()));
                                sums[w] = sum;
                            });
            pool.join();
        }
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        rates.push_back(static_cast<double>(lookups_per_thread) *
                        static_cast<double>(threads) / secs / 1e6);
        for (const auto s : sums) r.checksum += s;
    }
    const auto ms = benchkit::mean_std(rates);
    r.mlps_mean = ms.mean;
    r.mlps_std = ms.std;
    return r;
}

}  // namespace dataplane
