#include "dataplane/churn.hpp"

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace dataplane {

router::Adjacency<netbase::Ipv4Addr> ChurnRunner::adjacency_for(rib::NextHop hop)
{
    // Deterministic hop -> (gateway, interface) mapping: the gateway encodes
    // the hop id, interfaces spread over a small set like a real box's ports.
    return {netbase::Ipv4Addr{0x0A000000u + hop}, "sim" + std::to_string(hop % 8)};
}

void load_routes(router::Router4& router,
                 const rib::RouteList<netbase::Ipv4Addr>& routes)
{
    for (const auto& r : routes)
        router.add_route(r.prefix, ChurnRunner::adjacency_for(r.next_hop));
}

ChurnRunner::ChurnRunner(router::Router4& router,
                         const rib::RouteList<netbase::Ipv4Addr>& routes,
                         ChurnConfig cfg)
    : router_(router)
{
    cfg.feed.updates = cfg.updates;
    auto events = workload::make_update_feed(routes, cfg.feed);
    thread_ = std::thread([this, events = std::move(events), cfg]() mutable {
        run(std::move(events), cfg);
    });
}

void ChurnRunner::run(std::vector<workload::UpdateEvent> events, ChurnConfig cfg)
{
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (stop_.requested()) return;
        if (gate_.pause_requested()) {
            // Park between updates — the FIB is structurally consistent
            // here, so the pausing thread may compact it. Deadline pacing
            // below absorbs the parked time by bursting briefly afterwards.
            gate_.enter_park();
            while (gate_.pause_requested() && !stop_.requested())
                std::this_thread::sleep_for(std::chrono::microseconds(50));
            if (stop_.requested()) return;
        }
        if (cfg.rate_per_sec > 0) {
            const auto deadline =
                start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(static_cast<double>(i) /
                                                          cfg.rate_per_sec));
            std::this_thread::sleep_until(deadline);
        }
        const auto& ev = events[i];
        if (ev.next_hop == rib::kNoRoute) {
            (void)router_.remove_route(ev.prefix);
            withdrawals_.add(1);
        } else {
            router_.add_route(ev.prefix, adjacency_for(ev.next_hop));
            announcements_.add(1);
        }
        applied_.add(1);
    }
    finished_.add(1);
}

void ChurnRunner::stop_and_join()
{
    stop_.request();
    if (thread_.joinable()) thread_.join();
}

void ChurnRunner::pause()
{
    const auto token = gate_.request_pause();
    while (!gate_.parked_since(token)) {
        if (finished()) {
            // The feed ran out instead of parking; join for the full
            // happens-before edge the park would have given us.
            if (thread_.joinable()) thread_.join();
            return;
        }
        std::this_thread::yield();
    }
}

void ChurnRunner::resume() noexcept { gate_.resume(); }

ChurnRunner::~ChurnRunner() { stop_and_join(); }

}  // namespace dataplane
