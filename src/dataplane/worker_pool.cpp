#include "dataplane/worker_pool.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dataplane {

bool pin_current_thread(unsigned cpu) noexcept
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu % CPU_SETSIZE, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

WorkerPool::WorkerPool(const WorkerPoolConfig& cfg, std::function<void(unsigned)> body)
    : threads_count_(cfg.threads)
{
    const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
    // cfg is copied into the capture: the threads may outlive the caller's
    // config object the reference parameter points at.
    const bool pin = cfg.pin_cpus;
    const unsigned offset = cfg.cpu_offset;
    threads_.reserve(cfg.threads);
    for (unsigned w = 0; w < cfg.threads; ++w) {
        threads_.emplace_back([pin, offset, body, w, ncpu] {
            if (pin) (void)pin_current_thread((offset + w) % ncpu);
            body(w);
        });
    }
}

WorkerPool::~WorkerPool() { join(); }

void WorkerPool::join()
{
    for (auto& t : threads_)
        if (t.joinable()) t.join();
    threads_.clear();
}

}  // namespace dataplane
