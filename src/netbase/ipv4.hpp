// netbase/ipv4.hpp — IPv4 address value type.
//
// All lookup structures in this repository operate on addresses in *host* byte
// order (most significant bit = first bit of the address), because the trie
// algorithms index bits from the most significant end. Conversion from/to the
// dotted-quad text form is provided here; conversion from network byte order
// is a single byte swap done at the edge of the system.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace netbase {

/// An IPv4 address held as a host-order 32-bit integer.
///
/// This is a trivially copyable strong type: it deliberately has no implicit
/// conversion from `uint32_t` so that next-hop indices, leaf values and
/// addresses cannot be mixed up at call sites.
class Ipv4Addr {
public:
    /// Number of bits in an address.
    static constexpr unsigned kWidth = 32;

    /// Unsigned integer representation used by the tries.
    using value_type = std::uint32_t;

    constexpr Ipv4Addr() = default;

    /// Constructs from a host-order integer (e.g. 0x0A000001 == 10.0.0.1).
    constexpr explicit Ipv4Addr(value_type host_order) noexcept : bits_(host_order) {}

    /// Constructs from four dotted-quad octets, most significant first.
    constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
        : bits_((value_type{a} << 24) | (value_type{b} << 16) | (value_type{c} << 8) | d) {}

    /// The host-order integer value.
    [[nodiscard]] constexpr value_type value() const noexcept { return bits_; }

    friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

private:
    value_type bits_ = 0;
};

/// Parses dotted-quad text ("192.0.2.1"). Returns nullopt on malformed input
/// (wrong number of octets, out-of-range octet, leading '+', trailing junk).
[[nodiscard]] std::optional<Ipv4Addr> parse_ipv4(std::string_view text);

/// Formats as dotted-quad text.
[[nodiscard]] std::string to_string(Ipv4Addr addr);

}  // namespace netbase
