#include "netbase/prefix.hpp"

#include <charconv>

namespace netbase {
namespace {

// Splits "addr/len" and parses the length against `max_len`.
std::optional<std::pair<std::string_view, unsigned>> split_cidr(std::string_view text,
                                                                unsigned max_len)
{
    const auto slash = text.rfind('/');
    if (slash == std::string_view::npos) return std::nullopt;
    const auto len_text = text.substr(slash + 1);
    unsigned len = 0;
    auto [next, ec] = std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
    if (ec != std::errc{} || next != len_text.data() + len_text.size() || len > max_len)
        return std::nullopt;
    return std::pair{text.substr(0, slash), len};
}

}  // namespace

std::optional<Prefix4> parse_prefix4(std::string_view text)
{
    const auto parts = split_cidr(text, 32);
    if (!parts) return std::nullopt;
    const auto addr = parse_ipv4(parts->first);
    if (!addr) return std::nullopt;
    return Prefix4{*addr, parts->second};
}

std::optional<Prefix6> parse_prefix6(std::string_view text)
{
    const auto parts = split_cidr(text, 128);
    if (!parts) return std::nullopt;
    const auto addr = parse_ipv6(parts->first);
    if (!addr) return std::nullopt;
    return Prefix6{*addr, parts->second};
}

std::string to_string(const Prefix4& p)
{
    return to_string(p.address()) + "/" + std::to_string(p.length());
}

std::string to_string(const Prefix6& p)
{
    return to_string(p.address()) + "/" + std::to_string(p.length());
}

}  // namespace netbase
