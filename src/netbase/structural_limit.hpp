// netbase/structural_limit.hpp — the repo-wide "table does not fit the
// encoding" exception.
//
// Historically this lived in baselines/dxr.hpp because DXR's 19-bit range
// index was the first structural ceiling the repo modelled (§4.8). The
// million-route scale-out gave the core structure ceilings of its own: pool
// slot indices are 32-bit with the MSB reserved as a tag (kDirectLeafBit,
// kLeaf8Bit), so a table whose node or leaf pool would cross 2^31 slots must
// be *rejected*, not silently wrapped. That makes the exception a base-layer
// concept: it now lives here, one include below both the baselines and the
// allocator/builder, and baselines re-export it under their old name so the
// ~20 existing catch sites keep compiling unchanged.
#pragma once

#include <stdexcept>

namespace netbase {

/// Thrown when a table exceeds a structure's encoding limits (DXR range
/// index width, SAIL chunk-id width, Poptrie's 31-bit pool index space, ...).
/// Carries a human-readable reason.
class StructuralLimit : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

}  // namespace netbase
