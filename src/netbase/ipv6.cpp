#include "netbase/ipv6.hpp"

#include <array>
#include <charconv>

#include "netbase/ipv4.hpp"

namespace netbase {
namespace {

// Parses one hex group of 1-4 digits. Returns the number of characters
// consumed, or 0 on failure.
std::size_t parse_group(std::string_view text, std::uint16_t& out)
{
    unsigned value = 0;
    auto [next, ec] = std::from_chars(text.data(), text.data() + text.size(), value, 16);
    const auto used = static_cast<std::size_t>(next - text.data());
    if (ec != std::errc{} || used == 0 || used > 4) return 0;
    out = static_cast<std::uint16_t>(value);
    return used;
}

}  // namespace

std::optional<Ipv6Addr> parse_ipv6(std::string_view text)
{
    std::array<std::uint16_t, 8> groups{};
    int n_before = 0;      // groups before "::"
    int n_after = 0;       // groups after "::"
    bool saw_gap = false;  // saw "::"
    std::array<std::uint16_t, 8> after{};

    if (text.starts_with("::")) {
        saw_gap = true;
        text.remove_prefix(2);
    }
    while (!text.empty()) {
        // An embedded IPv4 tail is allowed as the last two groups.
        if (text.find('.') != std::string_view::npos && text.find(':') == std::string_view::npos) {
            const auto v4 = parse_ipv4(text);
            if (!v4) return std::nullopt;
            const std::uint32_t v = v4->value();
            auto push = [&](std::uint16_t g) {
                if (saw_gap) {
                    if (n_after == 8) return false;
                    after[static_cast<std::size_t>(n_after++)] = g;
                } else {
                    if (n_before == 8) return false;
                    groups[static_cast<std::size_t>(n_before++)] = g;
                }
                return true;
            };
            if (!push(static_cast<std::uint16_t>(v >> 16)) ||
                !push(static_cast<std::uint16_t>(v & 0xFFFF)))
                return std::nullopt;
            text = {};
            break;
        }
        std::uint16_t g = 0;
        const auto used = parse_group(text, g);
        if (used == 0) return std::nullopt;
        text.remove_prefix(used);
        if (saw_gap) {
            if (n_after == 8) return std::nullopt;
            after[static_cast<std::size_t>(n_after++)] = g;
        } else {
            if (n_before == 8) return std::nullopt;
            groups[static_cast<std::size_t>(n_before++)] = g;
        }
        if (text.empty()) break;
        if (text.starts_with("::")) {
            if (saw_gap) return std::nullopt;
            saw_gap = true;
            text.remove_prefix(2);
        } else if (text.starts_with(':')) {
            text.remove_prefix(1);
            if (text.empty()) return std::nullopt;  // trailing single ':'
        } else {
            return std::nullopt;
        }
    }

    if (saw_gap) {
        if (n_before + n_after >= 8) return std::nullopt;  // "::" must stand for >= 1 group
        for (int i = 0; i < n_after; ++i)
            groups[static_cast<std::size_t>(8 - n_after + i)] = after[static_cast<std::size_t>(i)];
    } else if (n_before != 8) {
        return std::nullopt;
    }

    u128 bits = 0;
    for (const auto g : groups) bits = (bits << 16) | g;
    return Ipv6Addr{bits};
}

std::string to_string(Ipv6Addr addr)
{
    std::array<std::uint16_t, 8> groups{};
    for (int i = 0; i < 8; ++i)
        groups[static_cast<std::size_t>(i)] =
            static_cast<std::uint16_t>(addr.value() >> (16 * (7 - i)));

    // Find the longest run of zero groups (length >= 2) for "::" compression.
    int best_start = -1, best_len = 0;
    for (int i = 0; i < 8;) {
        if (groups[static_cast<std::size_t>(i)] != 0) {
            ++i;
            continue;
        }
        int j = i;
        while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
        if (j - i > best_len) {
            best_start = i;
            best_len = j - i;
        }
        i = j;
    }
    if (best_len < 2) best_start = -1;

    std::string out;
    out.reserve(41);
    auto append_hex = [&](std::uint16_t g) {
        char buf[5];
        auto [p, ec] = std::to_chars(buf, buf + sizeof buf, g, 16);
        (void)ec;
        out.append(buf, p);
    };
    for (int i = 0; i < 8;) {
        if (i == best_start) {
            out += "::";
            i += best_len;
            continue;
        }
        if (!out.empty() && out.back() != ':') out.push_back(':');
        append_hex(groups[static_cast<std::size_t>(i)]);
        ++i;
    }
    if (out.empty()) out = "::";
    return out;
}

}  // namespace netbase
