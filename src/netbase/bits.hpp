// netbase/bits.hpp — bit-manipulation helpers shared by every trie.
//
// The paper's lookup inner loops are built from three primitives: extracting a
// chunk of bits from the most-significant end of a key (`extract`), building a
// mask of the least significant n bits, and population count. They are defined
// here once so the core library, the baselines and the tests agree exactly on
// the bit conventions.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace netbase {

/// True for the unsigned integer types our tries accept as keys
/// (uint32_t for IPv4, unsigned __int128 for IPv6).
template <class T>
concept TrieKey = std::is_unsigned_v<T> || std::is_same_v<T, unsigned __int128>;

/// Number of value bits in T.
template <TrieKey T>
inline constexpr unsigned bit_width_of = sizeof(T) * 8;

/// extract(key, off, len): the paper's bit-field accessor. Returns `len` bits
/// of `key` starting `off` bits from the most significant end, as the low bits
/// of the result. extract(0xC0000000, 0, 2) == 3 for a 32-bit key.
/// Preconditions: len >= 1 and off + len <= width.
template <TrieKey T>
[[nodiscard]] constexpr std::uint64_t extract(T key, unsigned off, unsigned len) noexcept
{
    const unsigned width = bit_width_of<T>;
    // shift-ok: preconditions (len >= 1, off + len <= width) bound both counts
    return static_cast<std::uint64_t>(key >> (width - off - len)) &
           ((std::uint64_t{1} << len) - 1);
}

/// Mask with the `len` most significant bits set. len == 0 gives 0; len may
/// equal the full width.
template <TrieKey T>
[[nodiscard]] constexpr T high_mask(unsigned len) noexcept
{
    const unsigned width = bit_width_of<T>;
    if (len == 0) return 0;
    return static_cast<T>(~T{0}) << (width - len);  // shift-ok: 1 <= len <= width
}

/// The bit of `key` that is `pos` bits from the most significant end
/// (pos == 0 is the MSB). Returns 0 or 1.
template <TrieKey T>
[[nodiscard]] constexpr unsigned bit_at(T key, unsigned pos) noexcept
{
    // shift-ok: precondition pos < width (pos counts from the MSB).
    return static_cast<unsigned>((key >> (bit_width_of<T> - 1 - pos)) & 1);
}

/// Population count of a 64-bit word. Compiles to the `popcnt` instruction
/// when the target supports it (we build with -march=native); the paper's
/// Algorithm 1 Line 7 is exactly popcount(vector & ((2 << v) - 1)).
[[nodiscard]] constexpr int popcount64(std::uint64_t v) noexcept
{
    return std::popcount(v);
}

/// Portable software population count (Warren, "Hacker's Delight" §5-1) —
/// the "fast alternative in the literature" §3.2 points to for CPUs without
/// popcnt. Note: modern GCC/Clang recognize this exact idiom and emit the
/// popcnt instruction anyway when the target has it, so this cannot be used
/// to *measure* the cost of lacking the instruction; see popcount64_table.
[[nodiscard]] constexpr int popcount64_soft(std::uint64_t v) noexcept
{
    v = v - ((v >> 1) & 0x5555555555555555ULL);
    v = (v & 0x3333333333333333ULL) + ((v >> 2) & 0x3333333333333333ULL);
    v = (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
    return static_cast<int>((v * 0x0101010101010101ULL) >> 56);
}

namespace detail {
struct PopcountTable {
    std::uint8_t counts[256]{};
    constexpr PopcountTable()
    {
        for (unsigned i = 0; i < 256; ++i) {
            unsigned v = i;
            while (v != 0) {
                counts[i] += static_cast<std::uint8_t>(v & 1);
                v >>= 1;
            }
        }
    }
};
inline constexpr PopcountTable kPopcountTable{};
}  // namespace detail

/// Byte-table population count: what pre-popcnt implementations (including
/// the original Tree Bitmap, §2) actually shipped, and — unlike
/// popcount64_soft — not idiom-matched to the instruction by compilers, so
/// the no-popcnt ablation measures something real.
[[nodiscard]] constexpr int popcount64_table(std::uint64_t v) noexcept
{
    int sum = 0;
    for (int i = 0; i < 8; ++i) {
        sum += detail::kPopcountTable.counts[v & 0xFF];
        v >>= 8;
    }
    return sum;
}

/// Mask of the least significant (v + 1) bits: the paper's ((2ULL << v) - 1).
/// Valid for v in [0, 63].
[[nodiscard]] constexpr std::uint64_t low_mask_inclusive(unsigned v) noexcept
{
    return (std::uint64_t{2} << v) - 1;  // shift-ok: contract above, v in [0, 63]
}

/// Number of leading zero bits; countl_zero generalized to 128-bit keys.
/// count_leading_zeros(0) == width.
template <TrieKey T>
[[nodiscard]] constexpr unsigned count_leading_zeros(T v) noexcept
{
    if constexpr (sizeof(T) <= 8) {
        return static_cast<unsigned>(std::countl_zero(v));
    } else {
        const auto high = static_cast<std::uint64_t>(v >> 64);  // shift-ok: 128-bit operand
        if (high != 0) return static_cast<unsigned>(std::countl_zero(high));
        return 64 + static_cast<unsigned>(std::countl_zero(static_cast<std::uint64_t>(v)));
    }
}

/// Length of the longest common prefix of two keys, capped at `max_len`.
template <TrieKey T>
[[nodiscard]] constexpr unsigned common_prefix_length(T a, T b, unsigned max_len) noexcept
{
    const T diff = a ^ b;
    const unsigned common = diff == 0 ? bit_width_of<T> : count_leading_zeros(diff);
    return common < max_len ? common : max_len;
}

}  // namespace netbase
