#include "netbase/ipv4.hpp"

#include <array>
#include <charconv>

namespace netbase {

std::optional<Ipv4Addr> parse_ipv4(std::string_view text)
{
    std::array<std::uint8_t, 4> octets{};
    const char* p = text.data();
    const char* const end = text.data() + text.size();
    for (int i = 0; i < 4; ++i) {
        if (i > 0) {
            if (p == end || *p != '.') return std::nullopt;
            ++p;
        }
        unsigned value = 0;
        auto [next, ec] = std::from_chars(p, end, value);
        if (ec != std::errc{} || next == p || value > 255) return std::nullopt;
        // Reject forms like "01.2.3.4" only if they are ambiguous octal-ish
        // inputs longer than 3 digits; plain leading zeros are accepted as
        // decimal, matching inet_pton's "ddd" behaviour closely enough for
        // our dataset files.
        if (next - p > 3) return std::nullopt;
        octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
        p = next;
    }
    if (p != end) return std::nullopt;
    return Ipv4Addr{octets[0], octets[1], octets[2], octets[3]};
}

std::string to_string(Ipv4Addr addr)
{
    const auto v = addr.value();
    std::string out;
    out.reserve(15);
    for (int shift = 24; shift >= 0; shift -= 8) {
        if (shift != 24) out.push_back('.');
        out += std::to_string((v >> shift) & 0xFFu);
    }
    return out;
}

}  // namespace netbase
