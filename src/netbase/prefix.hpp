// netbase/prefix.hpp — CIDR prefixes over either address family.
//
// A Prefix<Addr> is an (address, length) pair with the address canonicalized
// so that all bits beyond `length` are zero; two textual spellings of the same
// route compare equal. Prefix ordering is the natural trie order (by address,
// then by length), which the table generators rely on for dedup.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/bits.hpp"
#include "netbase/ipv4.hpp"
#include "netbase/ipv6.hpp"

namespace netbase {

/// A CIDR prefix of the address type `Addr` (Ipv4Addr or Ipv6Addr).
template <class Addr>
class Prefix {
public:
    using addr_type = Addr;
    using value_type = typename Addr::value_type;
    static constexpr unsigned kWidth = Addr::kWidth;

    constexpr Prefix() = default;

    /// Builds a prefix, masking the address down to `length` bits.
    /// Precondition: length <= kWidth.
    constexpr Prefix(Addr addr, unsigned length) noexcept
        : addr_(Addr{static_cast<value_type>(addr.value() & high_mask<value_type>(length))}),
          len_(static_cast<std::uint8_t>(length))
    {
        assert(length <= kWidth);
    }

    /// The canonical (masked) network address.
    [[nodiscard]] constexpr Addr address() const noexcept { return addr_; }

    /// The prefix length in bits.
    [[nodiscard]] constexpr unsigned length() const noexcept { return len_; }

    /// The raw integer value of the network address.
    [[nodiscard]] constexpr value_type bits() const noexcept { return addr_.value(); }

    /// First address covered by the prefix (== address()).
    [[nodiscard]] constexpr Addr first_address() const noexcept { return addr_; }

    /// Last address covered by the prefix.
    [[nodiscard]] constexpr Addr last_address() const noexcept
    {
        return Addr{static_cast<value_type>(addr_.value() |
                                            static_cast<value_type>(~high_mask<value_type>(len_)))};
    }

    /// True if `a` falls inside this prefix.
    [[nodiscard]] constexpr bool contains(Addr a) const noexcept
    {
        return (a.value() & high_mask<value_type>(len_)) == addr_.value();
    }

    /// True if `other` is equal to or nested inside this prefix.
    [[nodiscard]] constexpr bool contains(const Prefix& other) const noexcept
    {
        return other.len_ >= len_ && contains(other.addr_);
    }

    /// The immediate parent (one bit shorter). Precondition: length() > 0.
    [[nodiscard]] constexpr Prefix parent() const noexcept
    {
        assert(len_ > 0);
        return Prefix{addr_, static_cast<unsigned>(len_ - 1)};
    }

    /// The child prefix obtained by appending bit `b` (0 or 1).
    /// Precondition: length() < kWidth.
    [[nodiscard]] constexpr Prefix child(unsigned b) const noexcept
    {
        assert(len_ < kWidth);
        const auto new_len = static_cast<unsigned>(len_ + 1);
        value_type bits = addr_.value();
        // shift-ok: the assert above gives len_ < kWidth, so new_len <= kWidth
        // and the count is in [0, kWidth - 1].
        if (b != 0) bits |= static_cast<value_type>(value_type{1} << (kWidth - new_len));
        return Prefix{Addr{bits}, new_len};
    }

    friend constexpr bool operator==(const Prefix&, const Prefix&) = default;
    friend constexpr auto operator<=>(const Prefix& a, const Prefix& b) noexcept
    {
        if (a.addr_ != b.addr_) return a.addr_ <=> b.addr_;
        return a.len_ <=> b.len_;
    }

private:
    Addr addr_{};
    std::uint8_t len_ = 0;
};

using Prefix4 = Prefix<Ipv4Addr>;
using Prefix6 = Prefix<Ipv6Addr>;

/// Parses "a.b.c.d/len". Returns nullopt on malformed input or len > 32.
[[nodiscard]] std::optional<Prefix4> parse_prefix4(std::string_view text);

/// Parses "hhhh::/len". Returns nullopt on malformed input or len > 128.
[[nodiscard]] std::optional<Prefix6> parse_prefix6(std::string_view text);

/// Formats "a.b.c.d/len".
[[nodiscard]] std::string to_string(const Prefix4& p);

/// Formats canonical "h::h/len".
[[nodiscard]] std::string to_string(const Prefix6& p);

}  // namespace netbase
