// netbase/ipv6.hpp — IPv6 address value type.
//
// The 128-bit address is held in a single unsigned __int128 in host bit order
// (bit 127 = first bit on the wire). GCC and Clang both provide __int128 on
// every 64-bit target; the type is wrapped so the rest of the codebase never
// spells the extension directly.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace netbase {

/// 128-bit unsigned integer used to hold IPv6 addresses.
using u128 = unsigned __int128;

/// An IPv6 address held as a host-order 128-bit integer.
class Ipv6Addr {
public:
    /// Number of bits in an address.
    static constexpr unsigned kWidth = 128;

    /// Unsigned integer representation used by the tries.
    using value_type = u128;

    constexpr Ipv6Addr() = default;

    /// Constructs from a host-order 128-bit value.
    constexpr explicit Ipv6Addr(value_type v) noexcept : bits_(v) {}

    /// Constructs from the high and low 64-bit halves (high = first 8 bytes).
    constexpr Ipv6Addr(std::uint64_t high, std::uint64_t low) noexcept
        // shift-ok: 128-bit operand
        : bits_((value_type{high} << 64) | low) {}

    /// The host-order 128-bit value.
    [[nodiscard]] constexpr value_type value() const noexcept { return bits_; }

    /// The most significant 64 bits.
    [[nodiscard]] constexpr std::uint64_t high() const noexcept
    {
        return static_cast<std::uint64_t>(bits_ >> 64);  // shift-ok: 128-bit operand
    }

    /// The least significant 64 bits.
    [[nodiscard]] constexpr std::uint64_t low() const noexcept
    {
        return static_cast<std::uint64_t>(bits_);
    }

    friend constexpr bool operator==(Ipv6Addr, Ipv6Addr) = default;
    friend constexpr auto operator<=>(Ipv6Addr a, Ipv6Addr b) noexcept
    {
        return a.bits_ < b.bits_   ? std::strong_ordering::less
               : a.bits_ > b.bits_ ? std::strong_ordering::greater
                                   : std::strong_ordering::equal;
    }

private:
    value_type bits_ = 0;
};

/// Parses RFC 4291 text forms, including "::" compression and an embedded
/// IPv4 tail ("::ffff:192.0.2.1"). Returns nullopt on malformed input.
[[nodiscard]] std::optional<Ipv6Addr> parse_ipv6(std::string_view text);

/// Formats in canonical RFC 5952 lower-case form with "::" compression of the
/// longest zero run (ties broken toward the leftmost run).
[[nodiscard]] std::string to_string(Ipv6Addr addr);

}  // namespace netbase
