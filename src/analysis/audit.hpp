// analysis/audit.hpp — structural invariant auditor ("poptrie-fsck").
//
// A compressed FIB fails silently: a leafvec bit off by one, a base pointer
// into a freed buddy block, or a non-minimal leaf run all still *look* like a
// working table until one address resolves wrong or one update scribbles over
// live memory. This module machine-checks a built Poptrie<Addr> against its
// own allocators, its EBR domain, and the source RIB:
//
//   * vector/leafvec bit consistency and leaf-run minimality (§3.3);
//   * every base0/base1 run inside the live extent of its buddy allocator,
//     power-of-two aligned, with no overlap between live runs or between a
//     live run and a free block;
//   * node/leaf accounting (inode and leaf counts vs reachable structure,
//     allocator `used()` vs the sum of live blocks once limbo is empty);
//   * direct-pointing array consistency with kDirectLeafBit (§3.4);
//   * BuddyAllocator free-list consistency (alignment, bounds, no double
//     membership, eager coalescing, free + used == capacity);
//   * EbrDomain invariants (retired epochs ≤ current, limbo ordered,
//     active readers not ahead of the writer's epoch);
//   * differential lookup checks against the RIB oracle at every route
//     boundary and at random probe addresses.
//
// All of it is control-path-only: the auditor never runs during lookups, and
// audits must be called from the writer thread (they read writer-private
// state). `tools/poptrie_fsck` wraps this as a CLI; tests run it after every
// build and update batch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/buddy_allocator.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/radix_trie.hpp"
#include "sync/ebr.hpp"

namespace analysis {

/// One failed invariant: the check's stable name and a human-readable detail.
struct Violation {
    std::string check;   ///< e.g. "leafvec-subset", "live-run-overlaps-free"
    std::string detail;  ///< where and what, for the human chasing it
};

/// The outcome of an audit: violations plus coverage counters so "no
/// violations" is distinguishable from "checked nothing".
class AuditReport {
public:
    /// Records a violation. Details are capped (the count keeps climbing) so
    /// a systematically corrupt table cannot OOM the auditor.
    void add(const std::string& check, const std::string& detail);

    /// Appends another report's violations and counters, prefixing its check
    /// names with `prefix` (e.g. "node-alloc/").
    void merge(const AuditReport& other, const std::string& prefix = {});

    [[nodiscard]] bool ok() const noexcept { return total_violations_ == 0; }
    [[nodiscard]] std::size_t violation_count() const noexcept { return total_violations_; }
    [[nodiscard]] const std::vector<Violation>& violations() const noexcept
    {
        return violations_;
    }

    /// Multi-line human-readable summary (coverage + every recorded
    /// violation); single trailing newline.
    [[nodiscard]] std::string summary() const;

    // Coverage counters (what the audit actually looked at).
    std::size_t nodes_checked = 0;
    std::size_t leaves_checked = 0;
    std::size_t direct_slots_checked = 0;
    std::size_t free_blocks_checked = 0;
    std::size_t probes_checked = 0;

private:
    static constexpr std::size_t kMaxRecorded = 64;

    std::vector<Violation> violations_;
    std::size_t total_violations_ = 0;
};

/// Knobs for the full audit.
struct AuditOptions {
    /// Random differential probes against the RIB oracle (0 disables).
    std::size_t random_probes = 4096;
    /// Probe every route's boundary addresses (first/last ± 1) up to this
    /// many routes; larger tables fall back to random probing only.
    std::size_t max_boundary_routes = 100'000;
    std::uint64_t seed = 0x9E3779B9u;
    /// The table was just compacted (Poptrie::compact()) and nothing has
    /// been applied since: additionally verify the canonical layout — every
    /// run at exactly the DFS aligned-bump offset (Poptrie::bump_offset)
    /// and the allocators' high-water marks dense against the layout.
    bool expect_compacted = false;
};

/// Checks a buddy allocator's free lists: block alignment and bounds, no
/// overlap/double membership, buddies eagerly coalesced, and
/// free + used == capacity.
[[nodiscard]] AuditReport audit_allocator(const alloc::BuddyAllocator& alloc);

/// Checks an EBR domain's epoch bookkeeping. Writer-thread only.
[[nodiscard]] AuditReport audit_ebr(const psync::EbrDomain& domain);

/// Full structural + differential audit of `pt` against its source RIB.
/// Writer-thread only; must not run concurrently with apply().
template <class Addr>
[[nodiscard]] AuditReport audit(const poptrie::Poptrie<Addr>& pt,
                                const rib::RadixTrie<Addr>& rib,
                                const AuditOptions& opt = {});

/// Debug-assertion form: runs audit() and aborts with the report on stderr if
/// anything is violated. Tests and tools call this after builds and update
/// batches; it is the moral equivalent of assert(fsck(pt)).
template <class Addr>
void audit_or_abort(const poptrie::Poptrie<Addr>& pt, const rib::RadixTrie<Addr>& rib,
                    const AuditOptions& opt = {});

/// Debug-build structural assertion: audits `pt` against `rib` and aborts on
/// any violation, compiled out under NDEBUG like assert(). Sprinkle after
/// builds and update batches in tests and examples; a release binary pays
/// nothing.
#ifdef NDEBUG
#define POPTRIE_AUDIT_ASSERT(pt, rib) ((void)0)
#else
#define POPTRIE_AUDIT_ASSERT(pt, rib) ::analysis::audit_or_abort((pt), (rib))
#endif

extern template AuditReport audit(const poptrie::Poptrie<netbase::Ipv4Addr>&,
                                  const rib::RadixTrie<netbase::Ipv4Addr>&,
                                  const AuditOptions&);
extern template AuditReport audit(const poptrie::Poptrie<netbase::Ipv6Addr>&,
                                  const rib::RadixTrie<netbase::Ipv6Addr>&,
                                  const AuditOptions&);
extern template void audit_or_abort(const poptrie::Poptrie<netbase::Ipv4Addr>&,
                                    const rib::RadixTrie<netbase::Ipv4Addr>&,
                                    const AuditOptions&);
extern template void audit_or_abort(const poptrie::Poptrie<netbase::Ipv6Addr>&,
                                    const rib::RadixTrie<netbase::Ipv6Addr>&,
                                    const AuditOptions&);

/// The single point of access to Poptrie internals (declared a friend there).
/// Const accessors feed the auditor; the mutable ones exist so tests can
/// inject faults and prove the auditor catches them. Nothing here is for
/// production code paths.
///
/// The pool accessors are POPTRIE_NO_TSA: they reach EBR-guarded members by
/// design. This is the sanctioned audit backdoor — by contract (DESIGN.md
/// §9) the auditor runs on the writer thread at update/quiescent points, a
/// discipline the surrounding tests and tools uphold rather than the type
/// system.
struct AuditAccess {
    template <class Addr>
    using PT = poptrie::Poptrie<Addr>;

    // Deduced return types: the pools are arena-backed containers
    // (Poptrie::NodePool et al.), and spelling the type here would couple
    // every audit call site to the storage choice.
    template <class Addr>
    [[nodiscard]] static const auto& nodes(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.nodes_;
    }
    template <class Addr>
    [[nodiscard]] static auto& nodes(PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.nodes_;
    }
    template <class Addr>
    [[nodiscard]] static const auto& leaves(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.leaves_;
    }
    template <class Addr>
    [[nodiscard]] static auto& leaves(PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.leaves_;
    }
    template <class Addr>
    [[nodiscard]] static const auto& leaves8(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.leaves8_;
    }
    template <class Addr>
    [[nodiscard]] static auto& leaves8(PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.leaves8_;
    }
    template <class Addr>
    [[nodiscard]] static const auto& leaf_dict(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.leaf_dict_;
    }
    template <class Addr>
    [[nodiscard]] static auto& leaf_dict(PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.leaf_dict_;
    }
    template <class Addr>
    [[nodiscard]] static const auto& direct(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.direct_;
    }
    template <class Addr>
    [[nodiscard]] static auto& direct(PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.direct_;
    }
    template <class Addr>
    [[nodiscard]] static std::uint32_t root(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.root_;
    }
    template <class Addr>
    [[nodiscard]] static const alloc::BuddyAllocator& node_alloc(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return *p.node_alloc_;
    }
    template <class Addr>
    [[nodiscard]] static const alloc::BuddyAllocator& leaf_alloc(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return *p.leaf_alloc_;
    }
    template <class Addr>
    [[nodiscard]] static const psync::EbrDomain& ebr(const PT<Addr>& p) noexcept
    {
        return *p.ebr_;
    }
    template <class Addr>
    [[nodiscard]] static std::size_t inode_count(const PT<Addr>& p) noexcept
    {
        return p.inode_count_;
    }
    template <class Addr>
    [[nodiscard]] static std::size_t leaf_count(const PT<Addr>& p) noexcept
    {
        return p.leaf_count_;
    }
    template <class Addr>
    [[nodiscard]] static std::size_t leaf8_live(const PT<Addr>& p) noexcept
    {
        return p.leaf8_live_;
    }
};

}  // namespace analysis
