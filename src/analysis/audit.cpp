// analysis/audit.cpp — implementation of the structural invariant auditor.
#include "analysis/audit.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "netbase/ipv4.hpp"
#include "netbase/ipv6.hpp"
#include "workload/xorshift.hpp"

namespace analysis {

void AuditReport::add(const std::string& check, const std::string& detail)
{
    ++total_violations_;
    if (violations_.size() < kMaxRecorded) violations_.push_back({check, detail});
}

void AuditReport::merge(const AuditReport& other, const std::string& prefix)
{
    for (const auto& v : other.violations_)
        if (violations_.size() < kMaxRecorded) violations_.push_back({prefix + v.check, v.detail});
    total_violations_ += other.total_violations_;
    nodes_checked += other.nodes_checked;
    leaves_checked += other.leaves_checked;
    direct_slots_checked += other.direct_slots_checked;
    free_blocks_checked += other.free_blocks_checked;
    probes_checked += other.probes_checked;
}

std::string AuditReport::summary() const
{
    std::string out = "audit: " + std::to_string(nodes_checked) + " nodes, " +
                      std::to_string(leaves_checked) + " leaves, " +
                      std::to_string(direct_slots_checked) + " direct slots, " +
                      std::to_string(free_blocks_checked) + " free blocks, " +
                      std::to_string(probes_checked) + " probes; " +
                      std::to_string(total_violations_) + " violation(s)\n";
    for (const auto& v : violations_) out += "  [" + v.check + "] " + v.detail + "\n";
    if (total_violations_ > violations_.size())
        out += "  ... " + std::to_string(total_violations_ - violations_.size()) +
               " further violation(s) not recorded\n";
    return out;
}

// ---------------------------------------------------------------------------
// BuddyAllocator

AuditReport audit_allocator(const alloc::BuddyAllocator& alloc)
{
    AuditReport r;
    auto blocks = alloc.free_blocks();
    r.free_blocks_checked = blocks.size();

    std::uint64_t free_total = 0;
    for (const auto& b : blocks) {
        free_total += b.size;
        if (!std::has_single_bit(b.size))
            r.add("free-block-not-pow2",
                  "block at " + std::to_string(b.offset) + " has size " +
                      std::to_string(b.size));
        if (b.size != 0 && b.offset % b.size != 0)
            r.add("free-block-misaligned", "block at " + std::to_string(b.offset) +
                                               " size " + std::to_string(b.size));
        if (std::uint64_t{b.offset} + b.size > alloc.capacity())
            r.add("free-block-out-of-range",
                  "block at " + std::to_string(b.offset) + " size " +
                      std::to_string(b.size) + " exceeds capacity " +
                      std::to_string(alloc.capacity()));
    }

    std::sort(blocks.begin(), blocks.end(),
              [](const auto& a, const auto& b) { return a.offset < b.offset; });
    for (std::size_t i = 1; i < blocks.size(); ++i) {
        const auto& prev = blocks[i - 1];
        const auto& cur = blocks[i];
        if (std::uint64_t{prev.offset} + prev.size > cur.offset)
            r.add("free-block-overlap", "blocks at " + std::to_string(prev.offset) +
                                            "(+" + std::to_string(prev.size) + ") and " +
                                            std::to_string(cur.offset) + " overlap");
        // Equal-sized adjacent buddies must have been coalesced eagerly.
        if (prev.size == cur.size && (prev.offset ^ cur.offset) == prev.size &&
            prev.offset % (prev.size * 2) == 0)
            r.add("free-buddies-uncoalesced",
                  "buddy pair at " + std::to_string(prev.offset) + " and " +
                      std::to_string(cur.offset) + " size " + std::to_string(prev.size));
    }

    if (free_total + alloc.used() != alloc.capacity())
        r.add("free-used-capacity-mismatch",
              "free " + std::to_string(free_total) + " + used " +
                  std::to_string(alloc.used()) + " != capacity " +
                  std::to_string(alloc.capacity()));
    return r;
}

// ---------------------------------------------------------------------------
// EbrDomain

AuditReport audit_ebr(const psync::EbrDomain& domain)
{
    AuditReport r;
    const auto d = domain.diag();
    if (!d.limbo_sorted) r.add("ebr-limbo-unsorted", "retire epochs are not monotone");
    if (d.newest_retired_epoch && *d.newest_retired_epoch > d.current_epoch)
        r.add("ebr-retired-epoch-ahead",
              "retired at epoch " + std::to_string(*d.newest_retired_epoch) +
                  " > current " + std::to_string(d.current_epoch));
    if (d.oldest_retired_epoch && d.newest_retired_epoch &&
        *d.oldest_retired_epoch > *d.newest_retired_epoch)
        r.add("ebr-limbo-unsorted", "oldest retired epoch above newest");
    if (d.min_active_epoch && *d.min_active_epoch > d.current_epoch)
        r.add("ebr-reader-epoch-ahead",
              "reader active at epoch " + std::to_string(*d.min_active_epoch) +
                  " > current " + std::to_string(d.current_epoch));
    return r;
}

// ---------------------------------------------------------------------------
// Poptrie structural walk

namespace {

std::string format_addr(netbase::Ipv4Addr a) { return netbase::to_string(a); }
std::string format_addr(netbase::Ipv6Addr a) { return netbase::to_string(a); }

/// One live allocation extent reconstructed from the trie walk: `count`
/// requested slots occupying the rounded `size` block at `offset`.
struct LiveRun {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;   // power-of-two block extent
    std::uint32_t count = 0;  // slots actually in use
};

/// Walks the reachable structure of one Poptrie, recording violations and
/// live runs. Template over Addr only for the node type and width constants.
template <class Addr>
class StructureWalker {
public:
    using PT = poptrie::Poptrie<Addr>;
    using Node = typename PT::Node;

    StructureWalker(const PT& pt, AuditReport& r)
        : nodes_(AuditAccess::nodes(pt)),
          leaves_(AuditAccess::leaves(pt)),
          leaves8_(AuditAccess::leaves8(pt)),
          leaf_dict_(AuditAccess::leaf_dict(pt)),
          leaf_compression_(pt.config().leaf_compression),
          report_(r),
          visited_(nodes_.size(), false)
    {
    }

    /// Audits the single-node block at `index` (a root published in a direct
    /// slot or in root_) and the subtree below it.
    void walk_root(std::uint32_t index, unsigned level, const std::string& where)
    {
        if (index >= nodes_.size()) {
            report_.add("root-index-out-of-range",
                        where + ": node index " + std::to_string(index) + " >= pool size " +
                            std::to_string(nodes_.size()));
            return;
        }
        node_runs_.push_back({index, 1, 1});
        walk_node(index, level, where);
    }

    /// Live node/leaf runs collected so far (roots, child arrays, leaf runs).
    [[nodiscard]] const std::vector<LiveRun>& node_runs() const noexcept { return node_runs_; }
    [[nodiscard]] const std::vector<LiveRun>& leaf_runs() const noexcept { return leaf_runs_; }
    /// Dict-coded (kLeaf8Bit) runs: offset/count in the dense code array
    /// (size == count — these are never buddy-allocated or padded).
    [[nodiscard]] const std::vector<LiveRun>& leaf8_runs() const noexcept { return leaf8_runs_; }

private:
    void walk_node(std::uint32_t index, unsigned level, const std::string& where)
    {
        if (visited_[index]) {
            report_.add("node-aliased", where + ": node " + std::to_string(index) +
                                            " reachable twice");
            return;
        }
        visited_[index] = true;
        ++report_.nodes_checked;
        if (level >= PT::kWidth) {
            // Internal nodes below the address width cannot exist: every
            // radix path has ended, so the builder always emits leaves here.
            report_.add("depth-exceeded", where + ": internal node at bit level " +
                                              std::to_string(level));
            return;
        }

        const Node& n = nodes_[index];
        const auto nkids = static_cast<std::uint32_t>(netbase::popcount64(n.vector));
        std::uint32_t nleaves = 0;
        if (leaf_compression_) {
            nleaves = static_cast<std::uint32_t>(netbase::popcount64(n.leafvec));
            if ((n.leafvec & n.vector) != 0)
                report_.add("leafvec-overlaps-vector",
                            where + ": node " + std::to_string(index) +
                                " has leafvec bits on internal slots");
            if (n.vector != ~std::uint64_t{0}) {
                const auto first_leaf_slot =
                    static_cast<unsigned>(std::countr_one(n.vector));
                if (((n.leafvec >> first_leaf_slot) & 1) == 0)
                    report_.add("leafvec-first-run-missing",
                                where + ": node " + std::to_string(index) +
                                    " first leaf slot " + std::to_string(first_leaf_slot) +
                                    " does not start a run");
            }
        } else {
            nleaves = 64 - nkids;
            if (n.leafvec != 0)
                report_.add("leafvec-set-in-basic-mode",
                            where + ": node " + std::to_string(index));
        }

        // Leaf run: bounds, alignment (16-bit pool only — dict-coded runs
        // are dense, unaligned bump placements), minimality over the
        // *decoded* values either way.
        if (nleaves != 0 && (n.base0 & poptrie::kLeaf8Bit)) {
            const std::uint32_t off = n.base0 & ~poptrie::kLeaf8Bit;
            if (std::uint64_t{off} + nleaves > leaves8_.size()) {
                report_.add("leaf8-run-out-of-range",
                            where + ": node " + std::to_string(index) + " code offset " +
                                std::to_string(off) + " +" + std::to_string(nleaves) +
                                " > code array size " + std::to_string(leaves8_.size()));
            } else {
                leaf8_runs_.push_back({off, nleaves, nleaves});
                report_.leaves_checked += nleaves;
                bool codes_ok = true;
                for (std::uint32_t i = 0; i < nleaves; ++i) {
                    if (leaves8_[off + i] >= leaf_dict_.size()) {
                        report_.add("leaf8-code-out-of-dict",
                                    where + ": node " + std::to_string(index) + " code " +
                                        std::to_string(leaves8_[off + i]) +
                                        " >= dictionary size " +
                                        std::to_string(leaf_dict_.size()));
                        codes_ok = false;
                    }
                }
                if (codes_ok && leaf_compression_) {
                    for (std::uint32_t i = 1; i < nleaves; ++i) {
                        if (leaf_dict_[leaves8_[off + i]] == leaf_dict_[leaves8_[off + i - 1]]) {
                            report_.add("leaf-run-not-minimal",
                                        where + ": node " + std::to_string(index) +
                                            " dict-coded leaves " + std::to_string(i - 1) +
                                            "," + std::to_string(i) + " repeat next hop " +
                                            std::to_string(leaf_dict_[leaves8_[off + i]]));
                        }
                    }
                }
            }
        } else if (nleaves != 0) {
            const auto block = alloc::BuddyAllocator::block_size_for(nleaves);
            if (std::uint64_t{n.base0} + block > leaves_.size()) {
                report_.add("leaf-run-out-of-range",
                            where + ": node " + std::to_string(index) + " base0 " +
                                std::to_string(n.base0) + " +" + std::to_string(block) +
                                " > pool size " + std::to_string(leaves_.size()));
            } else {
                if (n.base0 % block != 0)
                    report_.add("leaf-run-misaligned",
                                where + ": node " + std::to_string(index) + " base0 " +
                                    std::to_string(n.base0) + " not aligned to " +
                                    std::to_string(block));
                leaf_runs_.push_back({n.base0, block, nleaves});
                report_.leaves_checked += nleaves;
                if (leaf_compression_) {
                    for (std::uint32_t i = 1; i < nleaves; ++i) {
                        if (leaves_[n.base0 + i] == leaves_[n.base0 + i - 1]) {
                            report_.add("leaf-run-not-minimal",
                                        where + ": node " + std::to_string(index) +
                                            " leaves " + std::to_string(i - 1) + "," +
                                            std::to_string(i) + " repeat next hop " +
                                            std::to_string(leaves_[n.base0 + i]));
                        }
                    }
                }
            }
        }

        // Child run: bounds, alignment, then recurse.
        if (nkids != 0) {
            const auto block = alloc::BuddyAllocator::block_size_for(nkids);
            if (std::uint64_t{n.base1} + block > nodes_.size()) {
                report_.add("node-run-out-of-range",
                            where + ": node " + std::to_string(index) + " base1 " +
                                std::to_string(n.base1) + " +" + std::to_string(block) +
                                " > pool size " + std::to_string(nodes_.size()));
                return;  // children unreadable
            }
            if (n.base1 % block != 0)
                report_.add("node-run-misaligned",
                            where + ": node " + std::to_string(index) + " base1 " +
                                std::to_string(n.base1) + " not aligned to " +
                                std::to_string(block));
            node_runs_.push_back({n.base1, block, nkids});
            for (std::uint32_t i = 0; i < nkids; ++i)
                walk_node(n.base1 + i, level + PT::kStride, where);
        }
    }

    const typename PT::NodePool& nodes_;
    const typename PT::LeafPool& leaves_;
    const typename PT::Leaf8Pool& leaves8_;
    const typename PT::LeafPool& leaf_dict_;
    bool leaf_compression_;
    AuditReport& report_;
    std::vector<bool> visited_;
    std::vector<LiveRun> node_runs_;
    std::vector<LiveRun> leaf_runs_;
    std::vector<LiveRun> leaf8_runs_;
};

/// Cross-checks the live runs collected by the walk against one buddy
/// allocator: runs must not overlap each other or any free block, and once
/// nothing is waiting in limbo the allocator's used() must equal the sum of
/// live blocks exactly (anything else is a leak or a premature free).
void check_runs_against_allocator(AuditReport& r, std::vector<LiveRun> runs,
                                  const alloc::BuddyAllocator& alloc, std::size_t ebr_pending,
                                  std::uint64_t expected_count, const std::string& what)
{
    std::sort(runs.begin(), runs.end(),
              [](const LiveRun& a, const LiveRun& b) { return a.offset < b.offset; });
    std::uint64_t live_total = 0;
    std::uint64_t count_total = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        live_total += runs[i].size;
        count_total += runs[i].count;
        if (i != 0 && std::uint64_t{runs[i - 1].offset} + runs[i - 1].size > runs[i].offset)
            r.add(what + "-runs-overlap",
                  "blocks at " + std::to_string(runs[i - 1].offset) + "(+" +
                      std::to_string(runs[i - 1].size) + ") and " +
                      std::to_string(runs[i].offset) + " overlap");
    }

    auto free_blocks = alloc.free_blocks();
    std::sort(free_blocks.begin(), free_blocks.end(),
              [](const auto& a, const auto& b) { return a.offset < b.offset; });
    // Two-pointer sweep: every live run must sit strictly outside free space.
    std::size_t f = 0;
    for (const auto& run : runs) {
        while (f < free_blocks.size() &&
               std::uint64_t{free_blocks[f].offset} + free_blocks[f].size <= run.offset)
            ++f;
        if (f < free_blocks.size() &&
            free_blocks[f].offset < std::uint64_t{run.offset} + run.size)
            r.add(what + "-run-overlaps-free",
                  "live block at " + std::to_string(run.offset) + "(+" +
                      std::to_string(run.size) + ") intersects free block at " +
                      std::to_string(free_blocks[f].offset) + "(+" +
                      std::to_string(free_blocks[f].size) + ")");
    }

    if (count_total != expected_count)
        r.add(what + "-count-mismatch", "reachable " + std::to_string(count_total) +
                                            " slots, accounting says " +
                                            std::to_string(expected_count));
    if (live_total > alloc.used())
        r.add(what + "-used-underflow",
              "live blocks cover " + std::to_string(live_total) + " slots but used() is " +
                  std::to_string(alloc.used()));
    else if (ebr_pending == 0 && live_total != alloc.used())
        r.add(what + "-leak", "used() " + std::to_string(alloc.used()) + " != live " +
                                  std::to_string(live_total) + " with empty limbo");
}

/// Post-compaction layout check: compact() places runs at exactly the DFS
/// aligned-bump offsets, and the walker records runs in exactly compact()'s
/// traversal order, so the canonical layout can be replayed and compared
/// run by run. The bump rule (Poptrie::bump_offset) is a static shared with
/// the compactor and independent of the address family.
void check_compacted_layout(AuditReport& r, const std::vector<LiveRun>& runs,
                            const alloc::BuddyAllocator& alloc, const std::string& what)
{
    std::uint64_t cursor = 0;
    for (const auto& run : runs) {
        const std::uint32_t expect =
            poptrie::Poptrie<netbase::Ipv4Addr>::bump_offset(cursor, run.count);
        if (run.offset != expect) {
            r.add(what + "-not-compacted",
                  "run of " + std::to_string(run.count) + " at " +
                      std::to_string(run.offset) + ", canonical DFS layout says " +
                      std::to_string(expect));
            return;  // every later offset shifts too; one violation suffices
        }
        cursor = std::uint64_t{expect} + run.size;
    }
    if (alloc.high_water() != cursor)
        r.add(what + "-not-dense", "allocator high water " +
                                       std::to_string(alloc.high_water()) +
                                       " != compacted layout extent " +
                                       std::to_string(cursor));
}

/// Dict-coded run checks: no two tagged runs may share code slots, the live
/// count must match the trie's leaf8 accounting, and the dictionary must be
/// sorted strictly ascending (compact() emits it that way — a violation
/// means someone scribbled on it). Under expect_compacted the runs must
/// additionally replay compact()'s dense bump exactly: run i starts where
/// run i-1 ended and the array holds not one code more.
void check_leaf8_runs(AuditReport& r, std::vector<LiveRun> runs, std::size_t code_array_size,
                      std::size_t dict_size, const std::vector<rib::NextHop>& dict_values,
                      std::uint64_t expected_count, bool expect_compacted)
{
    for (std::size_t i = 1; i < dict_size; ++i)
        if (dict_values[i] <= dict_values[i - 1])
            r.add("leaf8-dict-unsorted",
                  "dictionary entries " + std::to_string(i - 1) + "," + std::to_string(i) +
                      " not strictly ascending (" + std::to_string(dict_values[i - 1]) +
                      ", " + std::to_string(dict_values[i]) + ")");

    if (expect_compacted) {
        // DFS order, pre-sort: the walker records runs in compact()'s
        // traversal order, so the dense replay compares run by run.
        std::uint64_t cursor = 0;
        bool dense_ok = true;
        for (const auto& run : runs) {
            if (run.offset != cursor) {
                r.add("leaf8-not-compacted",
                      "dict-coded run of " + std::to_string(run.count) + " at " +
                          std::to_string(run.offset) + ", dense DFS layout says " +
                          std::to_string(cursor));
                dense_ok = false;
                break;  // every later offset shifts too
            }
            cursor += run.count;
        }
        if (dense_ok && cursor != code_array_size)
            r.add("leaf8-not-dense", "code array size " + std::to_string(code_array_size) +
                                         " != dense layout extent " + std::to_string(cursor));
    }

    std::sort(runs.begin(), runs.end(),
              [](const LiveRun& a, const LiveRun& b) { return a.offset < b.offset; });
    std::uint64_t count_total = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        count_total += runs[i].count;
        if (i != 0 && std::uint64_t{runs[i - 1].offset} + runs[i - 1].count > runs[i].offset)
            r.add("leaf8-runs-overlap",
                  "code runs at " + std::to_string(runs[i - 1].offset) + "(+" +
                      std::to_string(runs[i - 1].count) + ") and " +
                      std::to_string(runs[i].offset) + " overlap");
    }
    if (count_total != expected_count)
        r.add("leaf8-count-mismatch", "reachable " + std::to_string(count_total) +
                                          " dict-coded slots, accounting says " +
                                          std::to_string(expected_count));
}

template <class Addr>
typename Addr::value_type random_key(workload::Xorshift128& rng)
{
    if constexpr (Addr::kWidth == 32) {
        return rng.next();
    } else {
        using V = typename Addr::value_type;
        return (static_cast<V>(rng.next64()) << 64) | rng.next64();
    }
}

}  // namespace

template <class Addr>
AuditReport audit(const poptrie::Poptrie<Addr>& pt, const rib::RadixTrie<Addr>& rib,
                  const AuditOptions& opt)
{
    using PT = poptrie::Poptrie<Addr>;
    using value_type = typename Addr::value_type;
    AuditReport r;
    const auto& cfg = pt.config();
    const auto& nodes = AuditAccess::nodes(pt);
    const auto& direct = AuditAccess::direct(pt);

    // 1. Structural walk from every root.
    StructureWalker<Addr> walker(pt, r);
    if (cfg.direct_bits == 0) {
        walker.walk_root(AuditAccess::root(pt), 0, "root");
    } else {
        const std::size_t want = std::size_t{1} << cfg.direct_bits;
        if (direct.size() != want) {
            r.add("direct-size-mismatch", std::to_string(direct.size()) + " slots, expected " +
                                              std::to_string(want));
        } else {
            for (std::size_t d = 0; d < direct.size(); ++d) {
                ++r.direct_slots_checked;
                const std::uint32_t v = direct[d];
                if (v & PT::kDirectLeafBit) {
                    // Payload must be a representable next hop (16 bits).
                    if ((v & ~PT::kDirectLeafBit) > 0xFFFFu)
                        r.add("direct-leaf-overflow",
                              "slot " + std::to_string(d) + " payload " +
                                  std::to_string(v & ~PT::kDirectLeafBit));
                } else {
                    walker.walk_root(v, cfg.direct_bits, "direct[" + std::to_string(d) + "]");
                }
            }
        }
    }

    // 2. Live runs vs the buddy allocators, and slot accounting.
    const std::size_t pending = AuditAccess::ebr(pt).pending();
    check_runs_against_allocator(r, walker.node_runs(), AuditAccess::node_alloc(pt), pending,
                                 AuditAccess::inode_count(pt), "node");
    // The buddy allocator only tracks the 16-bit pool; dict-coded slots are
    // bump-placed in the code array and accounted separately below.
    check_runs_against_allocator(r, walker.leaf_runs(), AuditAccess::leaf_alloc(pt), pending,
                                 AuditAccess::leaf_count(pt) - AuditAccess::leaf8_live(pt),
                                 "leaf");
    {
        const auto& dict = AuditAccess::leaf_dict(pt);
        std::vector<rib::NextHop> dict_values(dict.data(), dict.data() + dict.size());
        check_leaf8_runs(r, walker.leaf8_runs(), AuditAccess::leaves8(pt).size(), dict.size(),
                         dict_values, AuditAccess::leaf8_live(pt), opt.expect_compacted);
    }
    if (nodes.size() != AuditAccess::node_alloc(pt).capacity())
        r.add("node-pool-size-mismatch",
              "pool " + std::to_string(nodes.size()) + " != allocator capacity " +
                  std::to_string(AuditAccess::node_alloc(pt).capacity()));
    if (AuditAccess::leaves(pt).size() != AuditAccess::leaf_alloc(pt).capacity())
        r.add("leaf-pool-size-mismatch",
              "pool " + std::to_string(AuditAccess::leaves(pt).size()) +
                  " != allocator capacity " +
                  std::to_string(AuditAccess::leaf_alloc(pt).capacity()));

    // 2b. Canonical compacted layout, when the caller vouches the table was
    // just compacted (poptrie_fsck --compact, the compaction tests).
    if (opt.expect_compacted) {
        check_compacted_layout(r, walker.node_runs(), AuditAccess::node_alloc(pt), "node");
        check_compacted_layout(r, walker.leaf_runs(), AuditAccess::leaf_alloc(pt), "leaf");
    }

    // 3. Allocator free lists and EBR epochs.
    r.merge(audit_allocator(AuditAccess::node_alloc(pt)), "node-alloc/");
    r.merge(audit_allocator(AuditAccess::leaf_alloc(pt)), "leaf-alloc/");
    r.merge(audit_ebr(AuditAccess::ebr(pt)), "ebr/");

    // 4. Differential checks against the RIB oracle: route boundaries first
    // (where off-by-ones live), then random probes. Only run on a
    // structurally sound table: lookup() trusts vector/base0/base1/direct
    // unconditionally, so probing a table whose structural audit already
    // failed may dereference the very out-of-range index just reported.
    if (!r.ok()) return r;
    const auto probe = [&](value_type key) {
        const Addr a{key};
        const auto got = pt.lookup(a);
        const auto want = rib.lookup(a);
        ++r.probes_checked;
        if (got != want)
            r.add("lookup-mismatch", format_addr(a) + ": poptrie " + std::to_string(got) +
                                         ", rib " + std::to_string(want));
    };
    if (rib.route_count() <= opt.max_boundary_routes) {
        rib.for_each_route([&](const netbase::Prefix<Addr>& p, rib::NextHop) {
            const value_type lo = p.first_address().value();
            const value_type hi = p.last_address().value();
            probe(lo);
            probe(hi);
            probe(static_cast<value_type>(lo - 1));  // wraps at 0: still valid probes
            probe(static_cast<value_type>(hi + 1));
        });
    }
    workload::Xorshift128 rng(opt.seed);
    for (std::size_t i = 0; i < opt.random_probes; ++i) probe(random_key<Addr>(rng));

    return r;
}

template <class Addr>
void audit_or_abort(const poptrie::Poptrie<Addr>& pt, const rib::RadixTrie<Addr>& rib,
                    const AuditOptions& opt)
{
    const auto report = audit(pt, rib, opt);
    if (!report.ok()) {
        std::fputs(report.summary().c_str(), stderr);
        std::abort();
    }
}

template AuditReport audit(const poptrie::Poptrie<netbase::Ipv4Addr>&,
                           const rib::RadixTrie<netbase::Ipv4Addr>&, const AuditOptions&);
template AuditReport audit(const poptrie::Poptrie<netbase::Ipv6Addr>&,
                           const rib::RadixTrie<netbase::Ipv6Addr>&, const AuditOptions&);
template void audit_or_abort(const poptrie::Poptrie<netbase::Ipv4Addr>&,
                             const rib::RadixTrie<netbase::Ipv4Addr>&, const AuditOptions&);
template void audit_or_abort(const poptrie::Poptrie<netbase::Ipv6Addr>&,
                             const rib::RadixTrie<netbase::Ipv6Addr>&, const AuditOptions&);

}  // namespace analysis
