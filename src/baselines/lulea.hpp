// baselines/lulea.hpp — Lulea-style compressed lookup table
// (Degermark, Brodnik, Carlsson, Pink: "Small Forwarding Tables for Fast
// Routing Lookups", SIGCOMM 1997).
//
// The §2 ancestor of every popcount-compressed structure in this
// repository: the address space is cut at levels 16/24/32; each level keeps
// a *head bit vector* marking where the resolution changes, and the dense
// array of per-head pointers is indexed by counting the set bits before the
// queried position. Lulea's signature trick — the reason it predates and
// prefigures Poptrie's vector/base1 — is how that count is obtained without
// scanning: the bit vector is split into 16-bit codeword masks, each
// codeword carries a small offset relative to a base index stored every
// four codewords, and a popcount of the masked codeword finishes the job.
//
//     index = base[pos >> 6] + offset[pos >> 4] + popcount(mask[pos >> 4]
//                                                          & below(pos))
//
// Documented simplifications versus the 1997 paper (which targeted 1997-era
// memory budgets): next-hop pointers are plain 16-bit words rather than
// variable-width, and levels 2/3 reuse the same codeword scheme per 256-wide
// chunk instead of the original's three chunk densities. The compression
// *mechanism* — heads + codewords + popcount — is the original's.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/dxr.hpp"  // StructuralLimit
#include "netbase/bits.hpp"
#include "rib/radix_trie.hpp"
#include "rib/route.hpp"

namespace baselines {

/// Lulea-style three-level (16/24/32) compressed LPM table for IPv4.
class Lulea {
public:
    Lulea() = default;

    /// Compiles from the RIB. Throws StructuralLimit if a next hop exceeds
    /// 15 bits or more than 2^15 chunks are needed at a level.
    explicit Lulea(const rib::RadixTrie<netbase::Ipv4Addr>& rib);

    /// Longest-prefix match; rib::kNoRoute on miss.
    [[nodiscard]] rib::NextHop lookup(netbase::Ipv4Addr addr) const noexcept
    {
        const std::uint32_t key = addr.value();
        std::uint16_t e = level16_.pointer_at(key >> 16, pointers16_.data());
        if (e & kLeafFlag) return static_cast<rib::NextHop>(e & kPayloadMask);
        e = chunks24_[e].pointer_at((key >> 8) & 0xFF, pointers24_.data());
        if (e & kLeafFlag) return static_cast<rib::NextHop>(e & kPayloadMask);
        return static_cast<rib::NextHop>(
            chunks32_[e].pointer_at(key & 0xFF, pointers32_.data()) & kPayloadMask);
    }

    [[nodiscard]] std::size_t level24_chunks() const noexcept { return chunks24_.size(); }
    [[nodiscard]] std::size_t level32_chunks() const noexcept { return chunks32_.size(); }
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    static constexpr std::uint16_t kLeafFlag = 0x8000;
    static constexpr std::uint16_t kPayloadMask = 0x7FFF;

    // One compressed head-bit-vector of `kBits` positions with codeword
    // indexing. Pointers live in a shared per-level array; `pointer_base`
    // is this vector's first pointer.
    template <unsigned kBits>
    struct HeadVector {
        static constexpr unsigned kWords = kBits / 16;
        std::uint16_t mask[kWords];         // head bits, 16 per codeword
        std::uint16_t offset[kWords];       // heads before this word, relative to base
        std::uint32_t base[(kWords + 3) / 4];  // heads before each 4-word group
        std::uint32_t pointer_base = 0;

        /// Pointer for position `pos`: the entry of the nearest head at or
        /// before pos.
        [[nodiscard]] std::uint16_t pointer_at(std::uint32_t pos,
                                               const std::uint16_t* pointers) const noexcept
        {
            const std::uint32_t word = pos >> 4;
            const auto below =
                static_cast<std::uint16_t>(netbase::low_mask_inclusive(pos & 15));
            const auto in_word = static_cast<std::uint32_t>(
                netbase::popcount64(static_cast<std::uint64_t>(mask[word] & below)));
            const std::uint32_t heads_before = base[word >> 2] + offset[word] + in_word;
            return pointers[pointer_base + heads_before - 1];
        }
    };

    using Level16 = HeadVector<1u << 16>;
    using Chunk = HeadVector<256>;

    // Builds one head vector from the resolution runs of its span and
    // appends its pointers; `make_pointer(run_index)` supplies each head's
    // pointer word.
    template <unsigned kBits, class MakePointer>
    static void build_vector(HeadVector<kBits>& hv, const std::vector<std::uint16_t>& heads,
                             std::vector<std::uint16_t>& pointers, MakePointer&& make_pointer);

    Level16 level16_{};
    std::vector<Chunk> chunks24_;
    std::vector<Chunk> chunks32_;
    std::vector<std::uint16_t> pointers16_;
    std::vector<std::uint16_t> pointers24_;
    std::vector<std::uint16_t> pointers32_;
};

}  // namespace baselines
