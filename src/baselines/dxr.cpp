#include "baselines/dxr.hpp"

#include <string>

#include "baselines/flatten.hpp"

namespace baselines {
namespace {

// Slices the global run list into per-chunk ranges, invoking
// `emit(chunk, first, count)` where [first, first+count) indexes a scratch
// vector of (suffix_start, next_hop) pairs passed to `ranges`.
template <class Addr, class Emit>
void slice_chunks(const std::vector<Run<Addr>>& runs, unsigned direct_bits,
                  std::vector<Run<Addr>>& chunk_ranges, Emit&& emit)
{
    using value_type = typename Addr::value_type;
    const unsigned suffix_bits = Addr::kWidth - direct_bits;
    const std::uint64_t n_chunks = std::uint64_t{1} << direct_bits;
    std::size_t i = 0;
    rib::NextHop current = rib::kNoRoute;
    for (std::uint64_t c = 0; c < n_chunks; ++c) {
        const value_type lo = static_cast<value_type>(static_cast<value_type>(c)
                                                      << suffix_bits);
        chunk_ranges.clear();
        chunk_ranges.push_back({value_type{0}, current});
        while (i < runs.size()) {
            const value_type start = runs[i].start;
            if ((start >> suffix_bits) != static_cast<value_type>(c)) break;
            const value_type suffix = static_cast<value_type>(start - lo);
            if (suffix == 0)
                chunk_ranges.back() = {value_type{0}, runs[i].next_hop};
            else
                chunk_ranges.push_back({suffix, runs[i].next_hop});
            current = runs[i].next_hop;
            ++i;
        }
        emit(c, chunk_ranges);
    }
}

}  // namespace

Dxr::Dxr(const rib::RadixTrie<netbase::Ipv4Addr>& rib, const DxrOptions& opt)
    : suffix_bits_(32 - opt.direct_bits), modified_(opt.modified)
{
    base_mask_ = opt.modified ? (1u << 20) - 1 : (1u << 19) - 1;
    direct_.assign(std::size_t{1} << opt.direct_bits, 0);

    const auto runs = flatten(rib);
    std::vector<Run<netbase::Ipv4Addr>> chunk;
    slice_chunks(runs, opt.direct_bits, chunk, [&](std::uint64_t c, const auto& ranges) {
        if (ranges.size() == 1) {  // single next hop: encode it directly
            direct_[c] = std::uint32_t{ranges[0].next_hop} << kBaseShift;
            return;
        }
        if (ranges.size() > kCountMask)
            throw StructuralLimit("DXR: chunk " + std::to_string(c) + " needs " +
                                  std::to_string(ranges.size()) +
                                  " ranges, exceeding the 12-bit count field");
        // Short format: boundaries aligned to 2^(suffix_bits-8) and next hops
        // that fit one byte.
        bool short_ok = !modified_ && suffix_bits_ > 8;
        if (short_ok) {
            const std::uint32_t align = (1u << (suffix_bits_ - 8)) - 1;
            for (const auto& r : ranges) {
                if ((r.start & align) != 0 || r.next_hop > 0xFF) {
                    short_ok = false;
                    break;
                }
            }
        }
        std::uint32_t base;
        if (short_ok) {
            base = static_cast<std::uint32_t>(short_ranges_.size());
            for (const auto& r : ranges)
                short_ranges_.push_back(
                    {static_cast<std::uint8_t>(r.start >> (suffix_bits_ - 8)),
                     static_cast<std::uint8_t>(r.next_hop)});
        } else {
            base = static_cast<std::uint32_t>(long_ranges_.size());
            for (const auto& r : ranges)
                long_ranges_.push_back(
                    {static_cast<std::uint16_t>(r.start), r.next_hop});
        }
        if (base > base_mask_)
            throw StructuralLimit(
                "DXR: range table exceeds 2^" + std::to_string(modified_ ? 20 : 19) +
                " entries (the structural limit of §4.8)" +
                (modified_ ? "" : "; retry with DxrOptions{.modified = true}"));
        direct_[c] = (short_ok ? kShortFlag : 0u) | (base << kBaseShift) |
                     static_cast<std::uint32_t>(ranges.size());
    });
}

Dxr6::Dxr6(const rib::RadixTrie<netbase::Ipv6Addr>& rib, unsigned direct_bits)
    : suffix_bits_(128 - direct_bits)
{
    direct_.assign(std::size_t{1} << direct_bits, Entry{});
    const auto runs = flatten(rib);
    std::vector<Run<netbase::Ipv6Addr>> chunk;
    slice_chunks(runs, direct_bits, chunk, [&](std::uint64_t c, const auto& ranges) {
        if (ranges.size() == 1) {
            direct_[c] = Entry{0, 0, ranges[0].next_hop};
            return;
        }
        // The paper widens the per-chunk count by one bit for IPv6: 2^13.
        if (ranges.size() > (1u << 13))
            throw StructuralLimit("DXR6: chunk " + std::to_string(c) +
                                  " exceeds 2^13 ranges");
        const auto base = static_cast<std::uint32_t>(ranges_.size());
        for (const auto& r : ranges) ranges_.push_back({r.start, r.next_hop});
        direct_[c] = Entry{base, static_cast<std::uint16_t>(ranges.size()), rib::kNoRoute};
    });
}

}  // namespace baselines
