// baselines/sail.hpp — SAIL (Yang et al., SIGCOMM 2014), the SAIL_L variant.
//
// Splitting Approach to IP Lookup: prefixes are pushed down to pivot levels
// 16/24/32 so a lookup is at most three plain array reads with no bit
// manipulation. Layout, reconstructed from the Poptrie paper's measurements
// of its SAIL implementation:
//
//   * level 16 — BCN16, a full 2^16-entry array of 16-bit words (128 KiB:
//     "the top level part of SAIL is 128 KiB, which is half of the L2 cache
//     size", §4.6). MSB set → the low 15 bits are the next hop; clear →
//     descend.
//   * level 24 — BCN24, a full 2^24-entry array (32 MiB). This is what
//     makes SAIL's total footprint ~44 MiB on a full table (Table 3) and
//     why its performance collapses once the working set leaves the L3
//     (§4.5): the level-24 access is a DRAM hit for random traffic. MSB set
//     → next hop; clear → low 15 bits are a level-32 chunk id.
//   * level 32 — 256-entry next-hop chunks, indexed by the 15-bit id.
//
// The 15-bit chunk id is SAIL's structural limit: a table needing more than
// 2^15 level-32 chunks (i.e. more than 32768 /24 blocks containing routes
// longer than /24) cannot be encoded — that is the mechanism behind Table
// 5's "N/A" cells for the SYN2 tables, whose synthetic expansion splits /24s
// into /25s en masse (§4.8). Build throws StructuralLimit in that case.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/dxr.hpp"  // StructuralLimit
#include "rib/radix_trie.hpp"
#include "rib/route.hpp"

namespace baselines {

/// SAIL_L over IPv4 (the original algorithm does not support IPv6 routes
/// longer than /64, §4.10 — like the paper, we evaluate it for IPv4 only).
class Sail {
public:
    Sail() = default;

    /// Compiles from the RIB. Throws StructuralLimit if more than 2^15
    /// level-32 chunks are required or a next hop exceeds 15 bits.
    explicit Sail(const rib::RadixTrie<netbase::Ipv4Addr>& rib);

    /// Longest-prefix match; rib::kNoRoute on miss.
    [[nodiscard]] rib::NextHop lookup(netbase::Ipv4Addr addr) const noexcept
    {
        const std::uint32_t key = addr.value();
        std::uint16_t e = bcn16_[key >> 16];
        if (e & kLeafFlag) return static_cast<rib::NextHop>(e & kPayloadMask);
        e = bcn24_[key >> 8];
        if (e & kLeafFlag) return static_cast<rib::NextHop>(e & kPayloadMask);
        return n32_[(static_cast<std::uint32_t>(e) << 8) | (key & 0xFF)];
    }

    /// Number of /16 blocks that need the level-24 array (diagnostics).
    [[nodiscard]] std::size_t mixed16_blocks() const noexcept { return mixed16_; }
    /// Number of level-32 chunks (the 15-bit-id-limited resource).
    [[nodiscard]] std::size_t level32_chunks() const noexcept { return chunks32_; }
    [[nodiscard]] std::size_t memory_bytes() const noexcept
    {
        return bcn16_.size() * 2 + bcn24_.size() * 2 + n32_.size() * 2;
    }

private:
    static constexpr std::uint16_t kLeafFlag = 0x8000;
    static constexpr std::uint16_t kPayloadMask = 0x7FFF;
    static constexpr std::size_t kMaxChunks = std::size_t{1} << 15;

    std::vector<std::uint16_t> bcn16_;  // 2^16 entries, 128 KiB
    std::vector<std::uint16_t> bcn24_;  // 2^24 entries, 32 MiB
    std::vector<rib::NextHop> n32_;     // chunks32 x 256 entries
    std::size_t mixed16_ = 0;
    std::size_t chunks32_ = 0;
};

}  // namespace baselines
