// baselines/dir24.hpp — DIR-24-8-BASIC (Gupta, Lin, McKeown 1998).
//
// The ancestor of every "direct pointing" scheme (§2, §3.4): a full 2^24
// table resolves all prefixes up to /24 in one access; longer prefixes spill
// into 256-entry second-level chunks. Entries are 16 bits: MSB clear → next
// hop; MSB set → chunk id. Included as the reference point for the direct-
// pointing ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/dxr.hpp"  // StructuralLimit
#include "rib/radix_trie.hpp"
#include "rib/route.hpp"

namespace baselines {

/// DIR-24-8-BASIC for IPv4.
class Dir24 {
public:
    Dir24() = default;

    /// Compiles from the RIB. Throws StructuralLimit when more than 2^15
    /// second-level chunks are needed or a next hop exceeds 15 bits.
    explicit Dir24(const rib::RadixTrie<netbase::Ipv4Addr>& rib);

    /// Longest-prefix match; rib::kNoRoute on miss.
    [[nodiscard]] rib::NextHop lookup(netbase::Ipv4Addr addr) const noexcept
    {
        const std::uint32_t key = addr.value();
        const std::uint16_t e = tbl24_[key >> 8];
        if ((e & kChunkFlag) == 0) return e;
        return tbl8_[(static_cast<std::uint32_t>(e & kPayloadMask) << 8) | (key & 0xFF)];
    }

    [[nodiscard]] std::size_t chunk_count() const noexcept { return chunks_; }
    [[nodiscard]] std::size_t memory_bytes() const noexcept
    {
        return tbl24_.size() * 2 + tbl8_.size() * 2;
    }

private:
    static constexpr std::uint16_t kChunkFlag = 0x8000;
    static constexpr std::uint16_t kPayloadMask = 0x7FFF;

    std::vector<std::uint16_t> tbl24_;   // 2^24 entries
    std::vector<rib::NextHop> tbl8_;     // chunks x 256
    std::size_t chunks_ = 0;
};

}  // namespace baselines
