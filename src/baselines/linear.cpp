#include "baselines/linear.hpp"

#include <map>

namespace baselines {

template <class Addr>
LinearLpm<Addr>::LinearLpm(const rib::RouteList<Addr>& routes)
{
    // Deduplicate with replace semantics: the last occurrence of a prefix wins.
    std::map<netbase::Prefix<Addr>, rib::NextHop> dedup;
    for (const auto& r : routes) dedup[r.prefix] = r.next_hop;
    routes_.reserve(dedup.size());
    for (const auto& [p, nh] : dedup) routes_.push_back({p, nh});
}

template <class Addr>
rib::NextHop LinearLpm<Addr>::lookup(Addr addr) const noexcept
{
    int best_len = -1;
    rib::NextHop best = rib::kNoRoute;
    for (const auto& r : routes_) {
        if (static_cast<int>(r.prefix.length()) > best_len && r.prefix.contains(addr)) {
            best_len = static_cast<int>(r.prefix.length());
            best = r.next_hop;
        }
    }
    return best;
}

template class LinearLpm<netbase::Ipv4Addr>;
template class LinearLpm<netbase::Ipv6Addr>;

}  // namespace baselines
