// baselines/linear.hpp — O(n) longest-prefix scan.
//
// Correctness oracle only: the tests validate every real structure against
// it on small tables where its cost is irrelevant. It is deliberately the
// dumbest possible implementation so that it is obviously correct.
#pragma once

#include <vector>

#include "rib/route.hpp"

namespace baselines {

/// Linear-scan LPM over an explicit route list.
template <class Addr>
class LinearLpm {
public:
    LinearLpm() = default;

    /// Builds from a route list (later duplicates of a prefix win, matching
    /// RadixTrie::insert's replace semantics).
    explicit LinearLpm(const rib::RouteList<Addr>& routes);

    /// Longest-prefix match; rib::kNoRoute on miss.
    [[nodiscard]] rib::NextHop lookup(Addr addr) const noexcept;

    [[nodiscard]] std::size_t route_count() const noexcept { return routes_.size(); }

private:
    rib::RouteList<Addr> routes_;  // deduplicated, any order
};

using LinearLpm4 = LinearLpm<netbase::Ipv4Addr>;
using LinearLpm6 = LinearLpm<netbase::Ipv6Addr>;

extern template class LinearLpm<netbase::Ipv4Addr>;
extern template class LinearLpm<netbase::Ipv6Addr>;

}  // namespace baselines
