#include "baselines/lulea.hpp"

#include <array>
#include <string>

#include "baselines/flatten.hpp"

namespace baselines {
namespace {

// Compresses per-position pointer words into a head vector: a head starts
// wherever the word differs from its predecessor; codeword offsets and
// group bases make the head count before any position a popcount away.
template <unsigned kBits, class HeadVector>
void compress(HeadVector& hv, const std::uint16_t* words,
              std::vector<std::uint16_t>& pointers)
{
    hv.pointer_base = static_cast<std::uint32_t>(pointers.size());
    std::uint32_t count = 0;
    for (std::uint32_t pos = 0; pos < kBits; ++pos) {
        if ((pos & 63) == 0) hv.base[pos >> 6] = count;
        if ((pos & 15) == 0) {
            hv.offset[pos >> 4] = static_cast<std::uint16_t>(count - hv.base[pos >> 6]);
            hv.mask[pos >> 4] = 0;
        }
        if (pos == 0 || words[pos] != words[pos - 1]) {
            hv.mask[pos >> 4] |= static_cast<std::uint16_t>(1u << (pos & 15));
            pointers.push_back(words[pos]);
            ++count;
        }
    }
}

std::uint16_t leaf_word(rib::NextHop nh)
{
    if (nh > 0x7FFF) throw StructuralLimit("Lulea: next hop exceeds the 15-bit payload");
    return static_cast<std::uint16_t>(0x8000 | nh);
}

}  // namespace

Lulea::Lulea(const rib::RadixTrie<netbase::Ipv4Addr>& rib)
{
    const auto runs = flatten(rib);

    // Per-/16-block pointer words, then compress into the level-16 vector.
    std::vector<std::uint16_t> words16(std::size_t{1} << 16);
    std::size_t i = 0;
    rib::NextHop carried = rib::kNoRoute;
    for (std::uint32_t b16 = 0; b16 < (1u << 16); ++b16) {
        const std::uint32_t lo16 = b16 << 16;
        const std::size_t first16 = i;
        while (i < runs.size() && (runs[i].start >> 16) == b16) ++i;
        const std::size_t last16 = i;
        bool uniform16 = true;
        rib::NextHop v16 = carried;
        {
            std::size_t j = first16;
            if (j < last16 && runs[j].start == lo16) {
                v16 = runs[j].next_hop;
                ++j;
            }
            uniform16 = (j == last16);
        }
        if (uniform16) {
            words16[b16] = leaf_word(v16);
            if (last16 > first16) carried = runs[last16 - 1].next_hop;
            continue;
        }

        // Mixed /16 block: one level-24 chunk of 256 per-/24 pointer words.
        if (chunks24_.size() >= 0x8000)
            throw StructuralLimit("Lulea: more than 2^15 level-24 chunks");
        std::array<std::uint16_t, 256> words24{};
        std::size_t j = first16;
        rib::NextHop carried24 = carried;
        for (std::uint32_t b24 = 0; b24 < 256; ++b24) {
            const std::uint32_t lo24 = lo16 | (b24 << 8);
            const std::size_t first24 = j;
            while (j < last16 && (runs[j].start >> 8) == (lo24 >> 8)) ++j;
            const std::size_t last24 = j;
            bool uniform24 = true;
            rib::NextHop v24 = carried24;
            {
                std::size_t t = first24;
                if (t < last24 && runs[t].start == lo24) {
                    v24 = runs[t].next_hop;
                    ++t;
                }
                uniform24 = (t == last24);
            }
            if (uniform24) {
                words24[b24] = leaf_word(v24);
            } else {
                // Mixed /24 block: a level-32 chunk of 256 host pointers.
                if (chunks32_.size() >= 0x8000)
                    throw StructuralLimit("Lulea: more than 2^15 level-32 chunks");
                std::array<std::uint16_t, 256> words32{};
                std::size_t t = first24;
                rib::NextHop cur = carried24;
                for (std::uint32_t a = 0; a < 256; ++a) {
                    while (t < last24 && runs[t].start == (lo24 | a)) {
                        cur = runs[t].next_hop;
                        ++t;
                    }
                    words32[a] = leaf_word(cur);
                }
                Chunk c32{};
                compress<256>(c32, words32.data(), pointers32_);
                words24[b24] = static_cast<std::uint16_t>(chunks32_.size());
                chunks32_.push_back(c32);
            }
            if (last24 > first24) carried24 = runs[last24 - 1].next_hop;
        }
        Chunk c24{};
        compress<256>(c24, words24.data(), pointers24_);
        words16[b16] = static_cast<std::uint16_t>(chunks24_.size());
        chunks24_.push_back(c24);
        carried = carried24;
    }
    compress<(1u << 16)>(level16_, words16.data(), pointers16_);
}

std::size_t Lulea::memory_bytes() const noexcept
{
    return sizeof(Level16) + chunks24_.size() * sizeof(Chunk) +
           chunks32_.size() * sizeof(Chunk) +
           (pointers16_.size() + pointers24_.size() + pointers32_.size()) * 2;
}

}  // namespace baselines
