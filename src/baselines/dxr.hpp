// baselines/dxr.hpp — DXR (Zec, Rizzo, Mikuc 2012): direct table + binary
// search over per-chunk address ranges.
//
// The strongest competitor in the paper's evaluation ("D16R"/"D18R"). The
// IPv4 address space is cut into 2^k chunks by the top k bits; within a
// chunk, the routing table is flattened into a sorted array of half-open
// address ranges, each carrying one next hop. Lookup: one direct-table read
// plus a binary search over the chunk's ranges — the binary search on long
// prefixes is DXR's bottleneck (§2, §4.6).
//
// Encoding (faithful to the published structural limits):
//   direct-table entry (u32): [31] short-format flag | [30:12] range base
//   (19 bits) | [11:0] range count. Count == 0 means the whole chunk has a
//   single next hop stored in the base field. The 19-bit base is the 2^19
//   total-range limit §4.8 cites; the "modified" variant absorbs the
//   short-format flag into the base (20 bits, long format only), exactly the
//   extension the paper made to let DXR compile the SYN2 tables.
//   Long range: {u16 start, u16 next_hop}; short range: {u8 start, u8
//   next_hop}, usable when every boundary in the chunk is aligned to
//   2^(suffix_bits - 8) and every next hop fits a byte.
//
// Build failures (range-table overflow, too many ranges in a chunk) are
// reported via StructuralLimit, mirroring §4.8's "DXR also exceeds its
// structural limitation".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "netbase/bits.hpp"
#include "netbase/structural_limit.hpp"
#include "rib/radix_trie.hpp"
#include "rib/route.hpp"

namespace baselines {

/// Thrown when a table exceeds a structure's encoding limits (DXR range
/// index width, SAIL chunk-id width, ...). Carries a human-readable reason.
/// The type itself is netbase::StructuralLimit (netbase/structural_limit.hpp)
/// so the core builder/allocator can throw it too; this alias preserves the
/// name every baseline and catch site has always used.
using StructuralLimit = netbase::StructuralLimit;

/// DXR variants: which direct-table width, and whether the modified
/// (20-bit-base, long-format-only) encoding is used.
struct DxrOptions {
    unsigned direct_bits = 18;  ///< k: 16 → D16R, 18 → D18R
    bool modified = false;      ///< §4.8's extension for > 2^19 ranges
};

/// IPv4 DXR.
class Dxr {
public:
    Dxr() = default;

    /// Compiles from the RIB. Throws StructuralLimit when the table does not
    /// fit the encoding (the paper's SYN2 case for unmodified DXR).
    explicit Dxr(const rib::RadixTrie<netbase::Ipv4Addr>& rib, const DxrOptions& opt = {});

    /// Longest-prefix match; rib::kNoRoute on miss.
    [[nodiscard]] rib::NextHop lookup(netbase::Ipv4Addr addr) const noexcept
    {
        const std::uint32_t key = addr.value();
        const std::uint32_t entry = direct_[key >> suffix_bits_];
        const std::uint32_t count = entry & kCountMask;
        if (count == 0) return static_cast<rib::NextHop>((entry >> kBaseShift) & 0xFFFF);
        const std::uint32_t suffix = key & ((1u << suffix_bits_) - 1);
        const std::uint32_t base = (entry >> kBaseShift) & base_mask_;
        if (!modified_ && (entry & kShortFlag)) {
            const auto s = static_cast<std::uint8_t>(suffix >> (suffix_bits_ - 8));
            return find_short(base, count, s);
        }
        return find_long(base, count, static_cast<std::uint16_t>(suffix));
    }

    [[nodiscard]] std::size_t range_count() const noexcept
    {
        return long_ranges_.size() + short_ranges_.size();
    }
    [[nodiscard]] std::size_t memory_bytes() const noexcept
    {
        return direct_.size() * sizeof(std::uint32_t) +
               long_ranges_.size() * sizeof(LongRange) +
               short_ranges_.size() * sizeof(ShortRange);
    }

private:
    struct LongRange {
        std::uint16_t start;
        std::uint16_t next_hop;
    };
    struct ShortRange {
        std::uint8_t start;
        std::uint8_t next_hop;
    };

    static constexpr std::uint32_t kCountMask = 0xFFF;  // 12-bit range count
    static constexpr unsigned kBaseShift = 12;
    static constexpr std::uint32_t kShortFlag = 0x8000'0000u;

    [[nodiscard]] rib::NextHop find_long(std::uint32_t base, std::uint32_t count,
                                         std::uint16_t suffix) const noexcept
    {
        // Binary search for the last range with start <= suffix.
        std::uint32_t lo = 0;
        std::uint32_t hi = count;
        while (hi - lo > 1) {
            const std::uint32_t mid = (lo + hi) / 2;
            if (long_ranges_[base + mid].start <= suffix)
                lo = mid;
            else
                hi = mid;
        }
        return long_ranges_[base + lo].next_hop;
    }

    [[nodiscard]] rib::NextHop find_short(std::uint32_t base, std::uint32_t count,
                                          std::uint8_t suffix) const noexcept
    {
        std::uint32_t lo = 0;
        std::uint32_t hi = count;
        while (hi - lo > 1) {
            const std::uint32_t mid = (lo + hi) / 2;
            if (short_ranges_[base + mid].start <= suffix)
                lo = mid;
            else
                hi = mid;
        }
        return short_ranges_[base + lo].next_hop;
    }

    std::vector<std::uint32_t> direct_;
    std::vector<LongRange> long_ranges_;
    std::vector<ShortRange> short_ranges_;
    unsigned suffix_bits_ = 14;  // 32 - direct_bits
    std::uint32_t base_mask_ = (1u << 19) - 1;
    bool modified_ = false;
};

/// IPv6 DXR, the paper's §4.10 extension: same direct-table-plus-ranges
/// design over the top k bits, with the range boundaries widened to the full
/// 112/110-bit suffix (long format only, as the paper disables the short
/// format for IPv6). Range entries are therefore 16-byte {u128 start, u16
/// next hop} records — a documented substitution for the paper's unspecified
/// packing.
class Dxr6 {
public:
    Dxr6() = default;
    explicit Dxr6(const rib::RadixTrie<netbase::Ipv6Addr>& rib, unsigned direct_bits = 18);

    [[nodiscard]] rib::NextHop lookup(netbase::Ipv6Addr addr) const noexcept
    {
        const netbase::u128 key = addr.value();
        const auto idx = static_cast<std::size_t>(key >> suffix_bits_);
        const Entry e = direct_[idx];
        if (e.count == 0) return e.next_hop;
        const netbase::u128 suffix =
            key & ((netbase::u128{1} << suffix_bits_) - 1);
        std::uint32_t lo = 0;
        std::uint32_t hi = e.count;
        while (hi - lo > 1) {
            const std::uint32_t mid = (lo + hi) / 2;
            if (ranges_[e.base + mid].start <= suffix)
                lo = mid;
            else
                hi = mid;
        }
        return ranges_[e.base + lo].next_hop;
    }

    [[nodiscard]] std::size_t range_count() const noexcept { return ranges_.size(); }
    [[nodiscard]] std::size_t memory_bytes() const noexcept
    {
        return direct_.size() * sizeof(Entry) + ranges_.size() * sizeof(Range);
    }

private:
    struct Entry {
        std::uint32_t base = 0;
        std::uint16_t count = 0;
        rib::NextHop next_hop = rib::kNoRoute;
    };
    struct Range {
        netbase::u128 start;
        rib::NextHop next_hop;
    };

    std::vector<Entry> direct_;
    std::vector<Range> ranges_;
    unsigned suffix_bits_ = 110;
};

}  // namespace baselines
