// baselines/flatten.hpp — flattening a radix RIB into resolution runs.
//
// Several baselines (DXR, DIR-24-8, SAIL) are built from the *resolution
// function* of the table rather than its trie shape: the address space as a
// sorted list of maximal runs [start, next_start) that resolve to a single
// next hop. One DFS over the radix trie produces them in address order.
#pragma once

#include <vector>

#include "rib/radix_trie.hpp"
#include "rib/route.hpp"

namespace baselines {

/// One maximal run: addresses from `start` up to the next run's start (or
/// the end of the address space) resolve to `next_hop`.
template <class Addr>
struct Run {
    typename Addr::value_type start;
    rib::NextHop next_hop;
};

/// Flattens `rib` into runs covering the entire address space, in ascending
/// order, adjacent runs guaranteed to differ in next hop. The first run
/// always starts at address 0 (with kNoRoute if nothing covers it). An empty
/// table yields a single kNoRoute run.
template <class Addr>
[[nodiscard]] std::vector<Run<Addr>> flatten(const rib::RadixTrie<Addr>& rib)
{
    using value_type = typename Addr::value_type;
    using Node = typename rib::RadixTrie<Addr>::Node;
    std::vector<Run<Addr>> runs;
    auto emit = [&](value_type base, rib::NextHop nh) {
        if (runs.empty() || runs.back().next_hop != nh) runs.push_back({base, nh});
    };
    // Iterative DFS would also do; recursion depth is bounded by the address
    // width (<= 128).
    auto rec = [&](auto&& self, const Node* n, rib::NextHop inherited, value_type base,
                   unsigned depth) -> void {
        if (n != nullptr && n->has_route) inherited = n->next_hop;
        if (n == nullptr || (n->child[0] == nullptr && n->child[1] == nullptr)) {
            emit(base, inherited);
            return;
        }
        const value_type half = value_type{1} << (Addr::kWidth - 1 - depth);
        self(self, n->child[0].get(), inherited, base, depth + 1);
        self(self, n->child[1].get(), inherited, base | half, depth + 1);
    };
    rec(rec, rib.root(), rib::kNoRoute, value_type{0}, 0);
    return runs;
}

}  // namespace baselines
