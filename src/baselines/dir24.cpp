#include "baselines/dir24.hpp"

#include "baselines/flatten.hpp"

namespace baselines {

Dir24::Dir24(const rib::RadixTrie<netbase::Ipv4Addr>& rib)
{
    const auto runs = flatten(rib);
    tbl24_.assign(std::size_t{1} << 24, rib::kNoRoute);

    std::size_t i = 0;
    rib::NextHop carried = rib::kNoRoute;
    for (std::uint32_t b24 = 0; b24 < (1u << 24); ++b24) {
        const std::uint32_t lo = b24 << 8;
        const std::size_t first = i;
        while (i < runs.size() && (runs[i].start >> 8) == b24) ++i;
        const std::size_t last = i;

        bool uniform = true;
        rib::NextHop v = carried;
        {
            std::size_t j = first;
            if (j < last && runs[j].start == lo) {
                v = runs[j].next_hop;
                ++j;
            }
            uniform = (j == last);
        }
        if (uniform) {
            if (v > kPayloadMask) throw StructuralLimit("DIR-24-8: next hop exceeds 15 bits");
            tbl24_[b24] = v;
        } else {
            if (chunks_ >= kPayloadMask)
                throw StructuralLimit("DIR-24-8: more than 2^15 second-level chunks");
            const auto chunk = static_cast<std::uint16_t>(chunks_++);
            tbl24_[b24] = static_cast<std::uint16_t>(kChunkFlag | chunk);
            tbl8_.resize(chunks_ * 256, rib::kNoRoute);
            const std::size_t base = std::size_t{chunk} * 256;
            std::size_t j = first;
            rib::NextHop cur = carried;
            for (std::uint32_t a = 0; a < 256; ++a) {
                while (j < last && runs[j].start == (lo | a)) {
                    cur = runs[j].next_hop;
                    ++j;
                }
                tbl8_[base + a] = cur;
            }
        }
        if (last > first) carried = runs[last - 1].next_hop;
    }
}

}  // namespace baselines
