#include "baselines/treebitmap.hpp"

namespace baselines {
namespace {

// Collects the radix nodes exactly `depth` bits below `n` in path order
// (nulls where the radix tree has no node).
template <class RadixNode>
void gather(const RadixNode* n, unsigned depth, const RadixNode** out, unsigned& pos)
{
    if (depth == 0) {
        out[pos++] = n;
        return;
    }
    gather(n != nullptr ? n->child[0].get() : nullptr, depth - 1, out, pos);
    gather(n != nullptr ? n->child[1].get() : nullptr, depth - 1, out, pos);
}

}  // namespace

template <class Addr, unsigned K>
TreeBitmap<Addr, K>::TreeBitmap(const rib::RadixTrie<Addr>& rib)
{
    nodes_.resize(1);  // zeroed root: empty table answers kNoRoute
    if (rib.root() != nullptr) fill(0, rib.root());
}

template <class Addr, unsigned K>
void TreeBitmap<Addr, K>::fill(std::uint32_t index, const RadixNode* n)
{
    bitmap_type internal = 0;
    bitmap_type external = 0;
    std::vector<rib::NextHop> local_results;
    const RadixNode* level[std::size_t{1} << K];

    // Internal bitmap: one bit per route of relative length 0..K-1, in
    // bit-position order (which is (level, value) lexicographic order).
    for (unsigned l = 0; l < K; ++l) {
        unsigned pos = 0;
        gather(n, l, level, pos);
        for (unsigned p = 0; p < (1u << l); ++p) {
            if (level[p] != nullptr && level[p]->has_route) {
                internal |= static_cast<bitmap_type>(bitmap_type{1} << ((1u << l) - 1 + p));
                local_results.push_back(level[p]->next_hop);
            }
        }
    }

    // External bitmap: children are the radix nodes K bits down. The radix
    // trie prunes routeless leaves, so a non-null node always leads to a
    // route (its own or a descendant's).
    unsigned pos = 0;
    gather(n, K, level, pos);
    std::vector<const RadixNode*> kids;
    for (unsigned c = 0; c < (1u << K); ++c) {
        if (level[c] != nullptr) {
            external |= static_cast<bitmap_type>(bitmap_type{1} << c);
            kids.push_back(level[c]);
        }
    }

    const auto result_base = static_cast<std::uint32_t>(results_.size());
    results_.insert(results_.end(), local_results.begin(), local_results.end());
    const auto child_base = static_cast<std::uint32_t>(nodes_.size());
    nodes_.resize(nodes_.size() + kids.size());
    nodes_[index] = Node{internal, external, child_base, result_base};
    for (std::size_t i = 0; i < kids.size(); ++i)
        fill(child_base + static_cast<std::uint32_t>(i), kids[i]);
}

template class TreeBitmap<netbase::Ipv4Addr, 4>;
template class TreeBitmap<netbase::Ipv4Addr, 6>;
template class TreeBitmap<netbase::Ipv6Addr, 6>;

}  // namespace baselines
