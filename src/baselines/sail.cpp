#include "baselines/sail.hpp"

#include <string>

#include "baselines/flatten.hpp"

namespace baselines {

Sail::Sail(const rib::RadixTrie<netbase::Ipv4Addr>& rib)
{
    const auto runs = flatten(rib);
    bcn16_.assign(std::size_t{1} << 16, kLeafFlag);  // leaf, next hop 0 = miss
    bcn24_.assign(std::size_t{1} << 24, kLeafFlag);

    const auto check_hop = [](rib::NextHop nh) {
        if (nh > kPayloadMask)
            throw StructuralLimit("SAIL: next hop exceeds the 15-bit payload");
        return static_cast<std::uint16_t>(kLeafFlag | nh);
    };

    std::size_t i = 0;
    rib::NextHop carried = rib::kNoRoute;
    for (std::uint32_t b16 = 0; b16 < (1u << 16); ++b16) {
        const std::uint32_t lo16 = b16 << 16;
        const std::size_t first16 = i;
        while (i < runs.size() && (runs[i].start >> 16) == b16) ++i;
        const std::size_t last16 = i;
        // Uniform /16 block resolves at level 16 in one access.
        bool uniform16 = true;
        rib::NextHop v16 = carried;
        {
            std::size_t j = first16;
            if (j < last16 && runs[j].start == lo16) {
                v16 = runs[j].next_hop;
                ++j;
            }
            uniform16 = (j == last16);
        }
        if (uniform16) {
            bcn16_[b16] = check_hop(v16);
            if (last16 > first16) carried = runs[last16 - 1].next_hop;
            continue;
        }
        // Mixed /16 block: descend into the full level-24 array.
        ++mixed16_;
        bcn16_[b16] = 0;

        std::size_t j = first16;
        rib::NextHop carried24 = carried;
        for (std::uint32_t b24 = 0; b24 < 256; ++b24) {
            const std::uint32_t lo24 = lo16 | (b24 << 8);
            const std::size_t first24 = j;
            while (j < last16 && (runs[j].start >> 8) == (lo24 >> 8)) ++j;
            const std::size_t last24 = j;
            bool uniform24 = true;
            rib::NextHop v24 = carried24;
            {
                std::size_t t = first24;
                if (t < last24 && runs[t].start == lo24) {
                    v24 = runs[t].next_hop;
                    ++t;
                }
                uniform24 = (t == last24);
            }
            if (uniform24) {
                bcn24_[lo24 >> 8] = check_hop(v24);
            } else {
                if (chunks32_ >= kMaxChunks)
                    throw StructuralLimit(
                        "SAIL: needs more than 2^15 level-32 chunks (the 15-bit chunk-id"
                        " limit of §4.8)");
                const auto chunk32 = static_cast<std::uint16_t>(chunks32_++);
                bcn24_[lo24 >> 8] = chunk32;  // flag clear: chunk id
                n32_.resize(chunks32_ * 256, rib::kNoRoute);
                const std::size_t c32_base = std::size_t{chunk32} * 256;
                // Expand the /24 block address by address from its runs.
                std::size_t t = first24;
                rib::NextHop cur = carried24;
                for (std::uint32_t a = 0; a < 256; ++a) {
                    const std::uint32_t address = lo24 | a;
                    while (t < last24 && runs[t].start == address) {
                        cur = runs[t].next_hop;
                        ++t;
                    }
                    if (cur > kPayloadMask)
                        throw StructuralLimit("SAIL: next hop exceeds the 15-bit payload");
                    n32_[c32_base + a] = cur;
                }
            }
            if (last24 > first24) carried24 = runs[last24 - 1].next_hop;
        }
        carried = carried24;
    }
}

}  // namespace baselines
