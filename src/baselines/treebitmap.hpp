// baselines/treebitmap.hpp — Tree Bitmap (Eatherton, Varghese, Dittia 2004).
//
// The multibit-trie baseline of Tables 2/3 and Fig. 9. Each node covers K
// bits of the address and holds two bitmaps:
//   * the internal bitmap marks prefixes of length 0..K-1 relative to the
//     node, laid out as a pre-order perfect binary tree (bit (2^l - 1) + p
//     for the length-l prefix with value p);
//   * the external bitmap marks which of the 2^K children exist.
// Children and per-node results are contiguous arrays indexed with popcnt —
// the paper notes Tree Bitmap "uses the population count operation in a
// similar way to Poptrie" but needs an O(K) scan of the internal bitmap per
// node, which is exactly why it loses (§4.5). As in the paper's evaluation,
// both the original 16-ary (K = 4) and the 64-ary (K = 6) variants are
// provided.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/bits.hpp"
#include "rib/radix_trie.hpp"
#include "rib/route.hpp"

namespace baselines {

namespace tbm_detail {
template <unsigned K>
struct BitmapTraits;
template <>
struct BitmapTraits<4> {
    using type = std::uint16_t;
};
template <>
struct BitmapTraits<6> {
    using type = std::uint64_t;
};
}  // namespace tbm_detail

/// Tree Bitmap LPM over 2^K-ary strides.
template <class Addr, unsigned K>
class TreeBitmap {
public:
    using value_type = typename Addr::value_type;
    using bitmap_type = typename tbm_detail::BitmapTraits<K>::type;
    static constexpr unsigned kWidth = Addr::kWidth;

    struct Node {
        bitmap_type internal = 0;  ///< prefixes of length 0..K-1 within the node
        bitmap_type external = 0;  ///< existing children
        std::uint32_t child_base = 0;
        std::uint32_t result_base = 0;
    };

    TreeBitmap() = default;

    /// Compiles from the RIB radix trie.
    explicit TreeBitmap(const rib::RadixTrie<Addr>& rib);

    /// Longest-prefix match; rib::kNoRoute on miss.
    [[nodiscard]] rib::NextHop lookup(Addr addr) const noexcept
    {
        const value_type key = addr.value();
        unsigned offset = 0;
        std::uint32_t index = 0;
        rib::NextHop best = rib::kNoRoute;
        for (;;) {
            const Node& node = nodes_[index];
            const auto c = static_cast<unsigned>(chunk(key, offset));
            // O(K) scan for the longest prefix stored inside this node.
            for (int l = static_cast<int>(K) - 1; l >= 0; --l) {
                const unsigned pos = (1u << l) - 1 + (c >> (K - static_cast<unsigned>(l)));
                if ((node.internal >> pos) & 1u) {
                    const auto before = static_cast<std::uint32_t>(netbase::popcount64(
                        static_cast<std::uint64_t>(node.internal) &
                        netbase::low_mask_inclusive(pos)));
                    best = results_[node.result_base + before - 1];
                    break;
                }
            }
            if (((node.external >> c) & 1u) == 0) return best;
            const auto before = static_cast<std::uint32_t>(
                netbase::popcount64(static_cast<std::uint64_t>(node.external) &
                                    netbase::low_mask_inclusive(c)));
            index = node.child_base + before - 1;
            offset += K;
        }
    }

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t result_count() const noexcept { return results_.size(); }
    [[nodiscard]] std::size_t memory_bytes() const noexcept
    {
        return nodes_.size() * sizeof(Node) + results_.size() * sizeof(rib::NextHop);
    }

private:
    using RadixNode = typename rib::RadixTrie<Addr>::Node;

    [[nodiscard]] static value_type chunk(value_type key, unsigned off) noexcept
    {
        if (off >= kWidth) return 0;
        return static_cast<value_type>(static_cast<value_type>(key << off) >> (kWidth - K));
    }

    void fill(std::uint32_t index, const RadixNode* n);

    std::vector<Node> nodes_;
    std::vector<rib::NextHop> results_;
};

using TreeBitmap16 = TreeBitmap<netbase::Ipv4Addr, 4>;  ///< the original 16-ary variant
using TreeBitmap64 = TreeBitmap<netbase::Ipv4Addr, 6>;  ///< "Tree BitMap (64-ary)" of Table 3

extern template class TreeBitmap<netbase::Ipv4Addr, 4>;
extern template class TreeBitmap<netbase::Ipv4Addr, 6>;
extern template class TreeBitmap<netbase::Ipv6Addr, 6>;

}  // namespace baselines
