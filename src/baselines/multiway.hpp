// baselines/multiway.hpp — the plain 2^k-ary multiway trie of the paper's
// Figure 1: every internal node holds a full descendant array, one slot per
// k-bit chunk value, each slot either pointing to a child node or holding a
// leaf (FIB index) directly.
//
// This is the structure Poptrie *starts from* before any compression: same
// depth, same branching, none of the bit-vector indirection. It exists here
// as the ablation baseline that quantifies what §3.1's vector/base1
// compression actually buys — a node costs 64 x 6 bytes here versus
// Poptrie's 24 bytes plus only the descendants that exist.
#pragma once

#include <cstdint>
#include <vector>

#include "poptrie/detail.hpp"
#include "rib/radix_trie.hpp"
#include "rib/route.hpp"

namespace baselines {

/// Uncompressed 64-ary multiway trie (k = 6), IPv4 or IPv6.
template <class Addr>
class MultiwayTrie {
public:
    using value_type = typename Addr::value_type;
    static constexpr unsigned kStride = 6;
    static constexpr unsigned kWidth = Addr::kWidth;

    /// One descendant array: child[v] >= 0 is the next node's index,
    /// child[v] < 0 means `leaf[v]` terminates the search.
    struct Node {
        std::int32_t child[64];
        rib::NextHop leaf[64];
    };

    MultiwayTrie() = default;

    /// Compiles from the RIB radix trie (no aggregation: this is the
    /// Figure 1 strawman).
    explicit MultiwayTrie(const rib::RadixTrie<Addr>& rib)
    {
        const auto root = poptrie::detail::root_ctx(rib);
        root_ = build(root, 0);
    }

    /// Longest-prefix match; rib::kNoRoute on miss.
    [[nodiscard]] rib::NextHop lookup(Addr addr) const noexcept
    {
        const value_type key = addr.value();
        std::uint32_t index = root_;
        unsigned offset = 0;
        for (;;) {
            const auto v = static_cast<unsigned>(chunk(key, offset));
            const std::int32_t next = nodes_[index].child[v];
            if (next < 0) return nodes_[index].leaf[v];
            index = static_cast<std::uint32_t>(next);
            offset += kStride;
        }
    }

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t memory_bytes() const noexcept
    {
        return nodes_.size() * sizeof(Node);
    }

private:
    [[nodiscard]] static value_type chunk(value_type key, unsigned off) noexcept
    {
        if (off >= kWidth) return 0;
        return static_cast<value_type>(static_cast<value_type>(key << off) >>
                                       (kWidth - kStride));
    }

    std::uint32_t build(const poptrie::detail::SlotCtx<Addr>& slot, unsigned level)
    {
        poptrie::detail::SlotCtx<Addr> slots[64];
        poptrie::detail::expand_stride<Addr>(
            slot, level, std::span<poptrie::detail::SlotCtx<Addr>, 64>{slots});
        const auto index = static_cast<std::uint32_t>(nodes_.size());
        nodes_.emplace_back();
        for (unsigned v = 0; v < 64; ++v) {
            nodes_[index].child[v] = -1;
            nodes_[index].leaf[v] = slots[v].inherited;
        }
        for (unsigned v = 0; v < 64; ++v) {
            if (poptrie::detail::is_internal(slots[v])) {
                const auto child = build(slots[v], level + kStride);
                nodes_[index].child[v] = static_cast<std::int32_t>(child);
            }
        }
        return index;
    }

    std::vector<Node> nodes_;
    std::uint32_t root_ = 0;
};

using MultiwayTrie4 = MultiwayTrie<netbase::Ipv4Addr>;

}  // namespace baselines
