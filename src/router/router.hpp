// router/router.hpp — the integration layer a software router actually uses.
//
// The paper is explicit that Poptrie resolves a *FIB index*, "the routes are
// preserved in a separate routing table (RIB)", and the index identifies the
// adjacency used to forward (§3). This class wires the pieces together the
// way a control plane would:
//
//   * an adjacency table mapping FIB indices to (gateway, interface) pairs,
//     deduplicated and reference-counted so the 16-bit index space (§5's
//     structural limit) is recycled;
//   * the RIB (binary radix trie) holding the authoritative route set;
//   * the Poptrie FIB, kept in sync with §3.5's lock-free incremental
//     updates, so forwarding threads are never blocked by route churn.
//
// Forwarding threads call resolve()/lookup_index(); a single control thread
// calls add_route()/remove_route(). For concurrent operation, forwarding
// threads register once via register_reader() and hold an EbrDomain::Guard
// around lookup batches.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "poptrie/poptrie.hpp"
#include "rib/radix_trie.hpp"
#include "rib/route.hpp"
#include "snapshot/snapshot.hpp"
#include "sync/annotations.hpp"

namespace router {

/// Forwarding target: next-hop gateway address and outgoing interface.
template <class Addr>
struct Adjacency {
    Addr gateway{};
    std::string interface;

    friend bool operator==(const Adjacency&, const Adjacency&) = default;
};

/// Thrown when the 16-bit adjacency space is exhausted (§5: "the number of
/// FIB entries is limited to 2^16").
class AdjacencyTableFull : public std::runtime_error {
public:
    AdjacencyTableFull() : std::runtime_error("adjacency table full (2^16 - 1 entries)") {}
};

/// RIB + FIB + adjacency table, for one address family.
template <class Addr>
class Router {
public:
    using prefix_type = netbase::Prefix<Addr>;
    using adjacency_type = Adjacency<Addr>;

    explicit Router(const poptrie::Config& cfg = {}) : fib_(cfg)
    {
        // Full 16-bit index space reserved up front so adjacency element
        // addresses stay stable for concurrent resolve() readers even as
        // new adjacencies are interned.
        adjacencies_.reserve(0x10000);
        refcounts_.reserve(0x10000);
        adjacencies_.resize(1);  // index 0 = kNoRoute, never a real adjacency
        refcounts_.resize(1);
    }

    /// Installs or replaces the route for `prefix`. Allocates (or reuses) a
    /// FIB index for the adjacency and patches the FIB incrementally.
    void add_route(const prefix_type& prefix, const adjacency_type& adjacency)
    {
        const rib::NextHop index = intern(adjacency);
        const rib::NextHop previous = rib_.find(prefix);
        fib_.apply(rib_, prefix, index);
        if (previous != rib::kNoRoute) release(previous);
    }

    /// Withdraws the route at `prefix`. Returns false if absent.
    bool remove_route(const prefix_type& prefix)
    {
        const rib::NextHop previous = rib_.find(prefix);
        if (previous == rib::kNoRoute) return false;
        fib_.apply(rib_, prefix, rib::kNoRoute);
        release(previous);
        return true;
    }

    /// Data-plane resolution: the adjacency to forward to, or nullptr.
    [[nodiscard]] const adjacency_type* resolve(Addr addr) const noexcept
    {
        const rib::NextHop index = fib_.lookup(addr);
        return index == rib::kNoRoute ? nullptr : &adjacencies_[index];
    }

    /// Raw FIB-index lookup (what the paper's benches measure).
    [[nodiscard]] rib::NextHop lookup_index(Addr addr) const noexcept
    {
        return fib_.lookup(addr);
    }

    /// Registers a forwarding thread for lookups concurrent with updates.
    [[nodiscard]] psync::EbrDomain::Reader register_reader() { return fib_.register_reader(); }

    [[nodiscard]] std::size_t route_count() const noexcept { return rib_.route_count(); }
    [[nodiscard]] std::size_t adjacency_count() const noexcept { return live_adjacencies_; }
    [[nodiscard]] const poptrie::Poptrie<Addr>& fib() const noexcept { return fib_; }
    [[nodiscard]] const rib::RadixTrie<Addr>& rib() const noexcept { return rib_; }

    /// Runs deferred FIB-memory reclamation to completion. Writer-role only
    /// (exclusive EBR capability — claim an EbrWriterSection on the updater
    /// thread or a QuiescentSection at a shutdown point).
    void drain() POPTRIE_REQUIRES(psync::cap::ebr) { fib_.drain(); }

    /// Pre-grows FIB pools to the configured headroom (quiescent point;
    /// see Poptrie::reserve_headroom). Call after bulk add_route loading,
    /// before forwarding threads start, when updates will run concurrently.
    void reserve_fib_headroom() POPTRIE_REQUIRES(psync::cap::quiescent, psync::cap::ebr)
    {
        fib_.reserve_headroom();
    }

    /// Rewrites the FIB arrays in DFS traversal order, restoring fresh-build
    /// cache locality after a long update churn (see Poptrie::compact).
    /// Quiescent-point only: forwarding threads must be paused around the
    /// call — the pool storage itself is replaced.
    void compact_fib() POPTRIE_REQUIRES(psync::cap::quiescent, psync::cap::ebr)
    {
        fib_.compact();
    }

    /// Persists the FIB as a versioned snapshot image (DESIGN.md §11) for a
    /// later warm start. Note the image captures the FIB's adjacency
    /// *indices* only: the restarting process must rebuild the adjacency
    /// table from its own control-plane state (or serve raw indices, as
    /// lpmd's snapshot engine does). Same contract as compact_fib():
    /// quiescent-point only, since the writer walks the raw pool extents.
    void save_fib_snapshot(const std::string& path) const
        POPTRIE_REQUIRES(psync::cap::quiescent, psync::cap::ebr)
    {
        snapshot::save(fib_, path);
    }

private:
    using Key = std::pair<typename Addr::value_type, std::string>;

    rib::NextHop intern(const adjacency_type& adjacency)
    {
        const Key key{adjacency.gateway.value(), adjacency.interface};
        if (const auto it = index_of_.find(key); it != index_of_.end()) {
            ++refcounts_[it->second];
            return it->second;
        }
        rib::NextHop index;
        if (!free_indices_.empty()) {
            index = free_indices_.back();
            free_indices_.pop_back();
        } else {
            if (adjacencies_.size() > 0xFFFF) throw AdjacencyTableFull{};
            index = static_cast<rib::NextHop>(adjacencies_.size());
            adjacencies_.emplace_back();
            refcounts_.push_back(0);
        }
        adjacencies_[index] = adjacency;
        refcounts_[index] = 1;
        index_of_.emplace(key, index);
        ++live_adjacencies_;
        return index;
    }

    void release(rib::NextHop index)
    {
        if (--refcounts_[index] != 0) return;
        index_of_.erase(Key{adjacencies_[index].gateway.value(),
                            adjacencies_[index].interface});
        adjacencies_[index] = adjacency_type{};
        free_indices_.push_back(index);
        --live_adjacencies_;
    }

    rib::RadixTrie<Addr> rib_;
    poptrie::Poptrie<Addr> fib_;
    // Adjacency storage is append-only in capacity (indices stay stable for
    // concurrent readers); freed slots are recycled through free_indices_.
    std::vector<adjacency_type> adjacencies_;
    std::vector<std::uint32_t> refcounts_;
    std::vector<rib::NextHop> free_indices_;
    std::map<Key, rib::NextHop> index_of_;
    std::size_t live_adjacencies_ = 0;
};

using Router4 = Router<netbase::Ipv4Addr>;
using Router6 = Router<netbase::Ipv6Addr>;

}  // namespace router
