// poptrie/detail.hpp — radix-tree expansion helpers shared by the Poptrie
// builder (builder.cpp) and the incremental updater (updater.cpp).
//
// Both compile FIB nodes out of the binary radix RIB by expanding it 2^k ways
// per poptrie level (k = 6). A `SlotCtx` is a cursor into the radix tree for
// one slot of a poptrie node: the radix node the slot's path ends at (if
// any), the next hop inherited from the deepest route on the path, and that
// route's depth (used by the updater's shadowing test: a route deeper than
// the updated prefix makes the slot's whole subtree unaffected).
#pragma once

#include <cstdint>
#include <span>

#include "rib/radix_trie.hpp"

namespace poptrie::detail {

template <class Addr>
struct SlotCtx {
    const typename rib::RadixTrie<Addr>::Node* node = nullptr;
    rib::NextHop inherited = rib::kNoRoute;
    /// Absolute bit-depth of the deepest route folded into `inherited`
    /// (0 when inherited == kNoRoute, or for a default route — either way a
    /// depth-0 route can never shadow an update).
    unsigned route_depth = 0;
};

/// A slot is compiled to an internal node iff its radix subtree branches
/// further down; a childless radix node's own route is already folded into
/// `inherited` and becomes a plain leaf.
template <class Addr>
[[nodiscard]] inline bool is_internal(const SlotCtx<Addr>& s) noexcept
{
    return s.node != nullptr && (s.node->child[0] != nullptr || s.node->child[1] != nullptr);
}

/// Expands `parent` (a cursor at absolute bit-depth `depth`) by `levels`
/// bits, invoking `emit(SlotCtx)` for each of the 2^levels slots in address
/// order. Missing radix children are emitted as null cursors that keep the
/// inherited next hop, which is how shorter prefixes span many slots.
template <class Addr, class F>
void expand(SlotCtx<Addr> parent, unsigned depth, unsigned levels, F&& emit)
{
    if (levels == 0) {
        emit(parent);
        return;
    }
    for (unsigned b = 0; b < 2; ++b) {
        SlotCtx<Addr> next = parent;
        if (parent.node != nullptr) {
            const auto* child = parent.node->child[b].get();
            next.node = child;
            if (child != nullptr && child->has_route) {
                next.inherited = child->next_hop;
                next.route_depth = depth + 1;
            }
        }
        expand(next, depth + 1, levels - 1, emit);
    }
}

/// Convenience: fills a 64-entry array with one poptrie stride of slots.
template <class Addr>
void expand_stride(const SlotCtx<Addr>& parent, unsigned depth, std::span<SlotCtx<Addr>, 64> out)
{
    unsigned pos = 0;
    expand(parent, depth, 6, [&](const SlotCtx<Addr>& s) { out[pos++] = s; });
}

/// Cursor for the RIB root: the root node with its own route (a default
/// route) already folded in, matching the invariant that a SlotCtx's
/// `inherited` includes the route at `node` itself.
template <class Addr>
[[nodiscard]] SlotCtx<Addr> root_ctx(const rib::RadixTrie<Addr>& rib) noexcept
{
    SlotCtx<Addr> ctx;
    ctx.node = rib.root();
    if (ctx.node != nullptr && ctx.node->has_route) ctx.inherited = ctx.node->next_hop;
    return ctx;
}

/// Walks `levels` bits down from the root following the low `levels` bits of
/// `path` (the direct-pointing slot index), maintaining the SlotCtx
/// invariants. Used by the updater to locate one direct slot's cursor.
template <class Addr>
[[nodiscard]] SlotCtx<Addr> walk_to(const rib::RadixTrie<Addr>& rib, std::uint64_t path,
                                    unsigned levels) noexcept
{
    SlotCtx<Addr> ctx = root_ctx(rib);
    for (unsigned d = 0; d < levels; ++d) {
        if (ctx.node == nullptr) break;
        // shift-ok: d < levels (loop bound) and levels <= direct_bits < 64,
        // so the count stays in [0, levels - 1].
        const unsigned b = static_cast<unsigned>((path >> (levels - 1 - d)) & 1);
        const auto* child = ctx.node->child[b].get();
        ctx.node = child;
        if (child != nullptr && child->has_route) {
            ctx.inherited = child->next_hop;
            ctx.route_depth = d + 1;
        }
    }
    return ctx;
}

}  // namespace poptrie::detail
