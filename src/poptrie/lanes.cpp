// poptrie/lanes.cpp — lane-path dispatch and the SIMD batch-lookup kernels.
//
// The kernels are per-function ISA targets (__attribute__((target(...))))
// rather than file-level -mavx2/-mavx512f: the rest of the binary keeps the
// portable baseline (CI builds with POPTRIE_NATIVE=OFF), runtime cpuid
// dispatch picks a kernel the machine can execute, and no vector type
// crosses a non-target function boundary (which would trip -Wpsabi under
// -Werror).
//
// Kernel shape (both ISAs, 8 lanes per group):
//   1. direct step — extract the top direct_bits of all 8 keys, one 32-bit
//      gather from the direct array; lanes whose slot carries the leaf flag
//      (MSB, tested as the sign bit) retire immediately.
//   2. walk steps — while any lane is active: gather the three node qwords
//      (vector, leafvec, base0|base1<<32) for active lanes via *masked*
//      64-bit gathers (inactive lanes must not touch memory: an empty table
//      has an empty node pool, so even index 0 may be unmapped), compute the
//      6-bit chunk in the 32-bit domain (vpsllvd's count>=32 -> 0 rule
//      implements chunk()'s off >= width convention for free), evaluate the
//      paper's two popcounts lane-parallel, then either descend
//      (index = base1 + popcount - 1) or retire
//      (leaf slot = base0 + popcount - 1).
//   3. retirement — leaves are 16-bit and no 16-bit gather exists, so
//      retiring lanes read leaves with scalar loads; out-of-order
//      retirement means each lane pays that exactly once.
//
// No explicit prefetch: a gather *is* the memory-level parallelism — all
// eight lane loads are in flight in one instruction.
#include "poptrie/lanes.hpp"

#include <cstdlib>
#include <string>

#if POPTRIE_SIMD_AVX2 || POPTRIE_SIMD_AVX512
#include <immintrin.h>
#endif

namespace poptrie::lanes {

std::string_view name(LanePath path) noexcept
{
    switch (path) {
        case LanePath::kScalar: return "scalar";
        case LanePath::kPipelined: return "pipelined";
        case LanePath::kAvx2: return "avx2";
        case LanePath::kAvx512: return "avx512";
    }
    return "unknown";
}

std::optional<LanePath> parse(std::string_view text) noexcept
{
    for (const LanePath p : kAllPaths)
        if (text == name(p)) return p;
    return std::nullopt;
}

bool compiled_in(LanePath path) noexcept
{
    switch (path) {
        case LanePath::kScalar:
        case LanePath::kPipelined: return true;
        case LanePath::kAvx2: return POPTRIE_SIMD_AVX2 != 0;
        case LanePath::kAvx512: return POPTRIE_SIMD_AVX512 != 0;
    }
    return false;
}

bool cpu_supports(LanePath path) noexcept
{
#if defined(__x86_64__) || defined(__i386__)
    // cpuid probes are not free; resolve each feature once per process.
    static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
    static const bool has_avx512 = __builtin_cpu_supports("avx512f") != 0 &&
                                   __builtin_cpu_supports("avx512vpopcntdq") != 0;
    switch (path) {
        case LanePath::kScalar:
        case LanePath::kPipelined: return true;
        case LanePath::kAvx2: return has_avx2;
        case LanePath::kAvx512: return has_avx512;
    }
    return false;
#else
    return path == LanePath::kScalar || path == LanePath::kPipelined;
#endif
}

namespace {

/// Best usable path, walking the ladder downward. kPipelined is ungated, so
/// this always lands somewhere.
LanePath best_available() noexcept
{
    if (compiled_in(LanePath::kAvx512) && cpu_supports(LanePath::kAvx512))
        return LanePath::kAvx512;
    if (compiled_in(LanePath::kAvx2) && cpu_supports(LanePath::kAvx2))
        return LanePath::kAvx2;
    return LanePath::kPipelined;
}

}  // namespace

Selection select(std::optional<LanePath> request)
{
    Selection sel;
    std::string source = "request";
    if (!request) {
        if (const char* env = std::getenv("POPTRIE_FORCE_LANES"); env != nullptr) {
            source = "POPTRIE_FORCE_LANES";
            request = parse(env);
            if (!request) {
                sel.path = best_available();
                sel.ok = false;
                sel.note = "unknown POPTRIE_FORCE_LANES value '" + std::string(env) +
                           "' (expected scalar|pipelined|avx2|avx512)";
                return sel;
            }
        }
    }
    if (!request) {
        sel.path = best_available();
        return sel;
    }
    sel.forced = true;
    sel.path = *request;
    if (!compiled_in(*request)) {
        sel.path = best_available();
        sel.ok = false;
        sel.note = std::string(name(*request)) + " (" + source +
                   ") is not compiled in (POPTRIE_SIMD_" +
                   (*request == LanePath::kAvx512 ? "AVX512" : "AVX2") + "=OFF)";
    } else if (!cpu_supports(*request)) {
        sel.path = best_available();
        sel.ok = false;
        sel.note = std::string(name(*request)) + " (" + source +
                   ") is not supported by this CPU";
    }
    return sel;
}

void run_scalar(const View4& view, const std::uint32_t* keys, rib::NextHop* out,
                std::size_t n) noexcept
{
    // Pointer iteration: see the tail note in lookup_pipelined.ipp.
    if (view.leaf_compression) {
        for (std::size_t r = n; r != 0; --r)
            *out++ = batch::lookup_one<true>(view, *keys++, view.direct_bits);
    } else {
        for (std::size_t r = n; r != 0; --r)
            *out++ = batch::lookup_one<false>(view, *keys++, view.direct_bits);
    }
}

void run_pipelined(const View4& view, const std::uint32_t* keys, rib::NextHop* out,
                   std::size_t n) noexcept
{
    if (view.leaf_compression)
        batch::lookup_batch_pipelined<true, 8>(view, keys, out, n, view.direct_bits);
    else
        batch::lookup_batch_pipelined<false, 8>(view, keys, out, n, view.direct_bits);
}

#if POPTRIE_SIMD_AVX2

namespace {

/// Per-64-bit-lane population count via the pshufb nibble LUT (Mula's
/// method): split each byte into nibbles, look both up in a 16-entry
/// bit-count table, then vpsadbw folds the byte counts into each qword.
__attribute__((target("avx2"))) inline __m256i popcnt64x4(__m256i v) noexcept
{
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
                         2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i nibble = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, nibble);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nibble);
    const __m256i counts =
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

/// Low 32 bits of each qword of `lo` (lanes 0-3) and `hi` (lanes 4-7),
/// packed into one 8 x u32 register.
__attribute__((target("avx2"))) inline __m256i pack64to32(__m256i lo, __m256i hi) noexcept
{
    const __m256i even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    const __m128i l = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(lo, even));
    const __m128i h = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(hi, even));
    return _mm256_set_m128i(h, l);
}

/// One group of 8 lookups, lane state in vector registers.
__attribute__((target("avx2"))) void lookup8_avx2(const View4& view,
                                                  const std::uint32_t* keys,
                                                  rib::NextHop* out) noexcept
{
    const auto* nodeq = reinterpret_cast<const long long*>(view.nodes);
    const __m256i k8 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
    const __m256i ones32 = _mm256_set1_epi32(-1);
    const __m256i zero = _mm256_setzero_si256();
    const bool use_leafvec = view.leaf_compression;

    alignas(32) std::uint32_t resolved[8];
    __m256i idx;
    __m256i off;
    __m256i active;  // 8 x u32, -1 = lane still walking

    if (view.direct_bits != 0) {
        // extract(key, 0, direct_bits) for all lanes: one variable-count
        // logical shift (count is loop-invariant, fed through the xmm form).
        const __m128i count = _mm_cvtsi32_si128(static_cast<int>(32 - view.direct_bits));
        const __m256i slot = _mm256_srl_epi32(k8, count);
        // Plain (unmasked) gather: the direct array always holds exactly
        // 2^direct_bits slots, so every lane's slot is in bounds.
        const __m256i d =
            _mm256_i32gather_epi32(reinterpret_cast<const int*>(view.direct), slot, 4);
        // kDirectLeafBit is the MSB: arithmetic >>31 turns it into a mask.
        const __m256i isleaf = _mm256_srai_epi32(d, 31);
        const __m256i leafval = _mm256_and_si256(d, _mm256_set1_epi32(0x7fffffff));
        _mm256_store_si256(reinterpret_cast<__m256i*>(resolved), leafval);
        active = _mm256_andnot_si256(isleaf, ones32);
        idx = d;  // node index where the leaf flag is clear; masked out elsewhere
        off = _mm256_set1_epi32(static_cast<int>(view.direct_bits));
    } else {
        idx = _mm256_set1_epi32(static_cast<int>(view.root));
        off = zero;
        active = ones32;
    }

    int live = _mm256_movemask_ps(_mm256_castsi256_ps(active));
    while (live != 0) {
        // chunk(key, off) in the 32-bit domain: vpsllvd yields 0 for
        // count >= 32, which is exactly the off >= width convention.
        const __m256i v8 =
            _mm256_srli_epi32(_mm256_sllv_epi32(k8, off), 26);  // 26 = 32 - kStride
        // Node qword indices: node i spans qwords 3i (vector), 3i+1
        // (leafvec), 3i+2 (base0 | base1 << 32).
        const __m256i q3 = _mm256_mullo_epi32(idx, _mm256_set1_epi32(3));
        const __m128i q3lo = _mm256_castsi256_si128(q3);
        const __m128i q3hi = _mm256_extracti128_si256(q3, 1);
        const __m128i one4 = _mm_set1_epi32(1);
        // Gather masks: sign-extend the 32-bit active lanes to qwords.
        const __m256i mlo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(active));
        const __m256i mhi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(active, 1));
        const __m256i veclo = _mm256_mask_i32gather_epi64(zero, nodeq, q3lo, mlo, 8);
        const __m256i vechi = _mm256_mask_i32gather_epi64(zero, nodeq, q3hi, mhi, 8);
        const __m256i baselo = _mm256_mask_i32gather_epi64(
            zero, nodeq, _mm_add_epi32(q3lo, _mm_add_epi32(one4, one4)), mlo, 8);
        const __m256i basehi = _mm256_mask_i32gather_epi64(
            zero, nodeq, _mm_add_epi32(q3hi, _mm_add_epi32(one4, one4)), mhi, 8);
        const __m256i v64lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v8));
        const __m256i v64hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v8, 1));
        const __m256i one64 = _mm256_set1_epi64x(1);
        // Internal-node test: (vector >> v) & 1.
        const __m256i intlo = _mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_srlv_epi64(veclo, v64lo), one64), one64);
        const __m256i inthi = _mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_srlv_epi64(vechi, v64hi), one64), one64);
        // (2 << v) - 1 without the v == 63 overflow: ~0 >> (63 - v).
        const __m256i sixty3 = _mm256_set1_epi64x(63);
        const __m256i minclo = _mm256_srlv_epi64(_mm256_set1_epi64x(-1),
                                                 _mm256_sub_epi64(sixty3, v64lo));
        const __m256i minchi = _mm256_srlv_epi64(_mm256_set1_epi64x(-1),
                                                 _mm256_sub_epi64(sixty3, v64hi));
        const __m256i pcveclo = popcnt64x4(_mm256_and_si256(veclo, minclo));
        const __m256i pcvechi = popcnt64x4(_mm256_and_si256(vechi, minchi));
        const __m256i b1lo = _mm256_srli_epi64(baselo, 32);
        const __m256i b1hi = _mm256_srli_epi64(basehi, 32);
        // Descend: index = base1 + popcount(vector & mask) - 1.
        const __m256i nidxlo =
            _mm256_sub_epi64(_mm256_add_epi64(b1lo, pcveclo), one64);
        const __m256i nidxhi =
            _mm256_sub_epi64(_mm256_add_epi64(b1hi, pcvechi), one64);

        const __m256i internal = _mm256_and_si256(pack64to32(intlo, inthi), active);
        const __m256i retire = _mm256_andnot_si256(internal, active);

        // Retirement runs only in rounds that retire a lane, and its leafvec
        // gather is masked down to exactly the retiring lanes — the walk
        // itself never pays for the leaf qword.
        const int rmask = _mm256_movemask_ps(_mm256_castsi256_ps(retire));
        if (rmask != 0) {
            const __m256i rlo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(retire));
            const __m256i rhi =
                _mm256_cvtepi32_epi64(_mm256_extracti128_si256(retire, 1));
            __m256i lvlo;
            __m256i lvhi;
            if (use_leafvec) {
                lvlo = _mm256_mask_i32gather_epi64(zero, nodeq,
                                                   _mm_add_epi32(q3lo, one4), rlo, 8);
                lvhi = _mm256_mask_i32gather_epi64(zero, nodeq,
                                                   _mm_add_epi32(q3hi, one4), rhi, 8);
            } else {
                lvlo = _mm256_xor_si256(veclo, _mm256_set1_epi64x(-1));
                lvhi = _mm256_xor_si256(vechi, _mm256_set1_epi64x(-1));
            }
            const __m256i pclvlo = popcnt64x4(_mm256_and_si256(lvlo, minclo));
            const __m256i pclvhi = popcnt64x4(_mm256_and_si256(lvhi, minchi));
            const __m256i lowmask = _mm256_set1_epi64x(0xffffffffLL);
            const __m256i slotlo = _mm256_sub_epi64(
                _mm256_add_epi64(_mm256_and_si256(baselo, lowmask), pclvlo), one64);
            const __m256i slothi = _mm256_sub_epi64(
                _mm256_add_epi64(_mm256_and_si256(basehi, lowmask), pclvhi), one64);
            alignas(32) std::uint64_t slots[8];
            _mm256_store_si256(reinterpret_cast<__m256i*>(slots), slotlo);
            _mm256_store_si256(reinterpret_cast<__m256i*>(slots + 4), slothi);
            // view.leaf() decodes the kLeaf8Bit tag, which flowed through
            // the 64-bit base0 arithmetic unchanged (bit 31 of the lowmask).
            for (int l = 0; l < 8; ++l)
                if ((rmask >> l) & 1)
                    resolved[l] = view.leaf(static_cast<std::uint32_t>(slots[l]));
        }

        idx = _mm256_blendv_epi8(idx, pack64to32(nidxlo, nidxhi), internal);
        off = _mm256_add_epi32(off, _mm256_and_si256(internal, _mm256_set1_epi32(6)));
        active = internal;
        live = _mm256_movemask_ps(_mm256_castsi256_ps(active));
    }
    for (int l = 0; l < 8; ++l) out[l] = static_cast<rib::NextHop>(resolved[l]);
}

}  // namespace

void run_avx2(const View4& view, const std::uint32_t* keys, rib::NextHop* out,
              std::size_t n) noexcept
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) lookup8_avx2(view, keys + i, out + i);
    if (i < n) run_pipelined(view, keys + i, out + i, n - i);
}

#else  // !POPTRIE_SIMD_AVX2

void run_avx2(const View4& view, const std::uint32_t* keys, rib::NextHop* out,
              std::size_t n) noexcept
{
    // Defensive: select() never routes here when the kernel is absent.
    run_pipelined(view, keys, out, n);
}

#endif  // POPTRIE_SIMD_AVX2

#if POPTRIE_SIMD_AVX512

// GCC PR105593: the 512-bit convert/extend intrinsics pad their result with
// an undefined vector internally, and -Wmaybe-uninitialized flags that
// header-internal temporary when the kernel is inlined. False positive —
// every lane we consume is written.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace {

/// One group of 8 lookups with the whole 64-bit lane state in one zmm per
/// quantity: a single masked gather per node qword, native vpopcntq, and
/// k-register lane masks. The 6-bit chunk is still computed in the 32-bit
/// domain (vpsllvd's count >= 32 -> 0 rule is what implements chunk()'s
/// off >= width convention; the 64-bit shifter would keep real bits).
__attribute__((target("avx2,avx512f,avx512vpopcntdq"))) void lookup8_avx512(
    const View4& view, const std::uint32_t* keys, rib::NextHop* out) noexcept
{
    const auto* nodeq = reinterpret_cast<const long long*>(view.nodes);
    const __m256i k8 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
    const __m512i zero = _mm512_setzero_si512();
    const __m512i one64 = _mm512_set1_epi64(1);
    const bool use_leafvec = view.leaf_compression;

    alignas(32) std::uint32_t resolved[8];
    __m512i idx;  // 8 x u64 node indices
    __m512i off;  // 8 x u64 bit offsets (k-masked update needs the 64-bit domain)
    __mmask8 active;

    if (view.direct_bits != 0) {
        const __m128i count = _mm_cvtsi32_si128(static_cast<int>(32 - view.direct_bits));
        const __m256i slot = _mm256_srl_epi32(k8, count);
        const __m256i d =
            _mm256_i32gather_epi32(reinterpret_cast<const int*>(view.direct), slot, 4);
        const __m256i leafval = _mm256_and_si256(d, _mm256_set1_epi32(0x7fffffff));
        _mm256_store_si256(reinterpret_cast<__m256i*>(resolved), leafval);
        // Sign-extend the slots to qwords; the leaf flag (MSB of the u32)
        // becomes the sign, so one 64-bit compare yields the retire mask.
        const __m512i d64 = _mm512_cvtepi32_epi64(d);
        const __mmask8 isleaf = _mm512_cmplt_epi64_mask(d64, zero);
        active = static_cast<__mmask8>(~isleaf);
        idx = d64;
        off = _mm512_set1_epi64(static_cast<long long>(view.direct_bits));
    } else {
        idx = _mm512_set1_epi64(static_cast<long long>(view.root));
        off = zero;
        active = 0xff;
    }

    while (active != 0) {
        // The chunk shift runs in the 32-bit domain: vpsllvd's count >= 32
        // -> 0 rule implements chunk()'s off >= width convention.
        const __m256i off32 = _mm512_cvtepi64_epi32(off);
        const __m256i v8 =
            _mm256_srli_epi32(_mm256_sllv_epi32(k8, off32), 26);  // 26 = 32 - kStride
        const __m512i q3 = _mm512_add_epi64(_mm512_add_epi64(idx, idx), idx);
        const __m256i q3i = _mm512_cvtepi64_epi32(q3);
        const __m256i onei = _mm256_set1_epi32(1);
        const __m512i vec =
            _mm512_mask_i32gather_epi64(zero, active, q3i, nodeq, 8);
        const __m512i bases = _mm512_mask_i32gather_epi64(
            zero, active, _mm256_add_epi32(q3i, _mm256_add_epi32(onei, onei)), nodeq, 8);
        const __m512i v64 = _mm512_cvtepu32_epi64(v8);
        const __mmask8 internal = _mm512_test_epi64_mask(
                                      _mm512_srlv_epi64(vec, v64), one64) &
                                  active;
        const __m512i minc = _mm512_srlv_epi64(
            _mm512_set1_epi64(-1), _mm512_sub_epi64(_mm512_set1_epi64(63), v64));
        const __m512i pcvec = _mm512_popcnt_epi64(_mm512_and_si512(vec, minc));
        const __m512i b1 = _mm512_srli_epi64(bases, 32);
        const __m512i nidx = _mm512_sub_epi64(_mm512_add_epi64(b1, pcvec), one64);

        // Retirement runs only in rounds that retire a lane, and its leafvec
        // gather is masked down to exactly the retiring lanes — the walk
        // itself never pays for the leaf qword.
        const __mmask8 retire = static_cast<__mmask8>(active & ~internal);
        if (retire != 0) {
            const __m512i lv =
                use_leafvec
                    ? _mm512_mask_i32gather_epi64(zero, retire,
                                                  _mm256_add_epi32(q3i, onei), nodeq, 8)
                    : _mm512_xor_si512(vec, _mm512_set1_epi64(-1));
            const __m512i pclv = _mm512_popcnt_epi64(_mm512_and_si512(lv, minc));
            const __m512i b0 =
                _mm512_and_si512(bases, _mm512_set1_epi64(0xffffffffLL));
            const __m512i slot = _mm512_sub_epi64(_mm512_add_epi64(b0, pclv), one64);
            alignas(64) std::uint64_t slots[8];
            _mm512_store_si512(slots, slot);
            // view.leaf() decodes the kLeaf8Bit tag (see the AVX2 kernel).
            for (int l = 0; l < 8; ++l)
                if ((retire >> l) & 1)
                    resolved[l] = view.leaf(static_cast<std::uint32_t>(slots[l]));
        }

        idx = _mm512_mask_mov_epi64(idx, internal, nidx);
        off = _mm512_mask_add_epi64(off, internal, off, _mm512_set1_epi64(6));
        active = internal;
    }
    for (int l = 0; l < 8; ++l) out[l] = static_cast<rib::NextHop>(resolved[l]);
}

}  // namespace

void run_avx512(const View4& view, const std::uint32_t* keys, rib::NextHop* out,
                std::size_t n) noexcept
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) lookup8_avx512(view, keys + i, out + i);
    if (i < n) run_pipelined(view, keys + i, out + i, n - i);
}

#pragma GCC diagnostic pop

#else  // !POPTRIE_SIMD_AVX512

void run_avx512(const View4& view, const std::uint32_t* keys, rib::NextHop* out,
                std::size_t n) noexcept
{
    // Defensive: select() never routes here when the kernel is absent.
    run_pipelined(view, keys, out, n);
}

#endif  // POPTRIE_SIMD_AVX512

void run(LanePath path, const View4& view, const std::uint32_t* keys, rib::NextHop* out,
         std::size_t n) noexcept
{
    switch (path) {
        case LanePath::kScalar: run_scalar(view, keys, out, n); return;
        case LanePath::kPipelined: run_pipelined(view, keys, out, n); return;
        case LanePath::kAvx2: run_avx2(view, keys, out, n); return;
        case LanePath::kAvx512: run_avx512(view, keys, out, n); return;
    }
    run_pipelined(view, keys, out, n);
}

}  // namespace poptrie::lanes
