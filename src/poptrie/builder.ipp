// poptrie/builder.ipp — FIB compilation from the RIB (included by
// poptrie.cpp; do not include directly).
//
// The builder expands the binary radix RIB six bits at a time into poptrie
// nodes, bottom-up: every node's children are constructed first (each
// allocating its own contiguous runs), then the node allocates one contiguous
// run for the child structs and one for its leaves. Leaf runs are compressed
// with the leafvec convention of §3.3: a leaf slot is emitted only when its
// value differs from the previously emitted one, with internal-node slots
// "irrelevant" so identical runs merge across hole punching (Fig. 3).
#pragma once

#include <algorithm>
#include <cassert>

#include "poptrie/poptrie.hpp"
#include "rib/aggregate.hpp"

namespace poptrie {

template <class Addr>
Poptrie<Addr>::Poptrie(const Config& cfg) : cfg_(cfg)
{
    // quiescent: object under construction — no other thread can hold a
    // reference yet, so there is trivially no reader anywhere.
    const psync::QuiescentSection quiescent;
    const rib::RadixTrie<Addr> empty;
    build_from(empty);
}

template <class Addr>
Poptrie<Addr>::Poptrie(const rib::RadixTrie<Addr>& rib, const Config& cfg) : cfg_(cfg)
{
    // quiescent: object under construction — no reader can exist yet.
    const psync::QuiescentSection quiescent;
    if (cfg_.route_aggregation) {
        const auto aggregated = rib::aggregate(rib);
        build_from(aggregated);
    } else {
        build_from(rib);
    }
}

template <class Addr>
std::uint32_t Poptrie<Addr>::alloc_nodes(std::uint32_t n)
{
    for (;;) {
        if (const auto idx = node_alloc_->allocate(n)) {
            inode_count_ += n;
            if (in_update_) updates_.nodes_allocated += n;
            return *idx;
        }
        node_alloc_->grow();
        nodes_.resize(node_alloc_->capacity());
        if (in_update_) ++updates_.pool_growths;
    }
}

template <class Addr>
std::uint32_t Poptrie<Addr>::alloc_leaves(std::uint32_t n)
{
    for (;;) {
        if (const auto idx = leaf_alloc_->allocate(n)) {
            leaf_count_ += n;
            if (in_update_) updates_.leaves_allocated += n;
            return *idx;
        }
        leaf_alloc_->grow();
        leaves_.resize(leaf_alloc_->capacity());
        if (in_update_) ++updates_.pool_growths;
    }
}

template <class Addr>
typename Poptrie<Addr>::Node Poptrie<Addr>::make_node(const detail::SlotCtx<Addr>& slot,
                                                      unsigned level)
{
    detail::SlotCtx<Addr> slots[64];
    detail::expand_stride<Addr>(slot, level, std::span<detail::SlotCtx<Addr>, 64>{slots});

    Node n;
    Node kids[64];
    NextHop leaves[64];
    unsigned nkids = 0;
    unsigned nleaves = 0;
    NextHop last = rib::kNoRoute;
    bool have_last = false;
    for (unsigned u = 0; u < 64; ++u) {
        if (detail::is_internal(slots[u])) {
            n.vector |= std::uint64_t{1} << u;
            kids[nkids++] = make_node(slots[u], level + kStride);
            continue;
        }
        const NextHop v = slots[u].inherited;
        if (cfg_.leaf_compression) {
            // New run starts when the value differs from the previous leaf;
            // internal slots in between are irrelevant and do not break runs.
            if (!have_last || v != last) {
                n.leafvec |= std::uint64_t{1} << u;
                leaves[nleaves++] = v;
                last = v;
                have_last = true;
            }
        } else {
            leaves[nleaves++] = v;
        }
    }
    if (nkids != 0) {
        n.base1 = alloc_nodes(nkids);
        std::copy(kids, kids + nkids, nodes_.begin() + n.base1);
    }
    if (nleaves != 0) {
        n.base0 = alloc_leaves(nleaves);
        std::copy(leaves, leaves + nleaves, leaves_.begin() + n.base0);
    }
    return n;
}

template <class Addr>
std::uint32_t Poptrie<Addr>::build_root(const detail::SlotCtx<Addr>& slot, unsigned level)
{
    const Node content = make_node(slot, level);
    const std::uint32_t idx = alloc_nodes(1);
    nodes_[idx] = content;
    return idx;
}

template <class Addr>
void Poptrie<Addr>::build_from(const rib::RadixTrie<Addr>& rib)
{
    assert(valid_config(cfg_, kWidth));
    node_alloc_ = std::make_unique<alloc::BuddyAllocator>(1024);
    leaf_alloc_ = std::make_unique<alloc::BuddyAllocator>(1024);
    nodes_.assign(node_alloc_->capacity(), Node{});
    leaves_.assign(leaf_alloc_->capacity(), rib::kNoRoute);
    inode_count_ = 0;
    leaf_count_ = 0;
    leaf8_live_ = 0;

    const auto root = detail::root_ctx(rib);
    if (cfg_.direct_bits == 0) {
        root_ = build_root(root, 0);
    } else {
        // shift-ok: valid_config() (asserted above) bounds direct_bits
        // <= kMaxDirectBits (30) < 64.
        direct_.assign(std::size_t{1} << cfg_.direct_bits, kDirectLeafBit);
        std::size_t i = 0;
        detail::expand(root, 0, cfg_.direct_bits, [&](const detail::SlotCtx<Addr>& s) {
            direct_[i++] = detail::is_internal(s)
                               ? build_root(s, cfg_.direct_bits)
                               : (kDirectLeafBit | std::uint32_t{s.inherited});
        });
    }
    ensure_headroom();
}

template <class Addr>
void Poptrie<Addr>::ensure_headroom()
{
    // The targets stay in the 64-bit domain: a huge table times 2^headroom
    // can exceed the 32-bit index space, and the old uint32 cast silently
    // wrapped (e.g. 150k leaves << 16 -> a tiny target). grow() throws
    // netbase::StructuralLimit at the 2^31 allocator ceiling, so an
    // unsatisfiable target is a clean rejection, never a wrapped one.
    // shift-ok: valid_config() bounds pool_headroom_log2
    // <= kMaxPoolHeadroomLog2 (16) < 64.
    const std::uint64_t target_nodes = std::uint64_t{std::max<std::size_t>(1024, inode_count_)}
                                       << cfg_.pool_headroom_log2;
    while (node_alloc_->capacity() < target_nodes) node_alloc_->grow();
    nodes_.resize(node_alloc_->capacity());
    // shift-ok: same valid_config() bound as above. The 16-bit pool's live
    // population excludes dict-coded slots (they live in leaves8_).
    const std::uint64_t target_leaves =
        std::uint64_t{std::max<std::size_t>(1024, leaf_count_ - leaf8_live_)}
        << cfg_.pool_headroom_log2;
    while (leaf_alloc_->capacity() < target_leaves) leaf_alloc_->grow();
    leaves_.resize(leaf_alloc_->capacity());
}

template <class Addr>
Stats Poptrie<Addr>::stats() const noexcept
{
    // reader: diagnostics snapshot of pool shapes/counters. Callers that
    // race an updater get momentarily stale numbers, never a torn structure;
    // no pointer into the pools escapes this frame.
    const psync::EbrReadSection section;
    Stats s;
    s.internal_nodes = inode_count_;
    s.leaves = leaf_count_;
    s.leaf8_slots = leaf8_live_;
    s.leaf_dict_entries = leaf_dict_.size();
    // shift-ok: valid_config() bounds direct_bits <= kMaxDirectBits (30) < 64.
    s.direct_slots = cfg_.direct_bits == 0 ? 0 : (std::size_t{1} << cfg_.direct_bits);
    const std::size_t node_bytes = cfg_.leaf_compression ? 24 : 16;
    s.memory_bytes = inode_count_ * node_bytes +
                     (leaf_count_ - leaf8_live_) * sizeof(NextHop) +
                     leaf8_live_ * sizeof(std::uint8_t) +
                     leaf_dict_.size() * sizeof(NextHop) +
                     s.direct_slots * sizeof(std::uint32_t);
    s.allocated_bytes = nodes_.capacity() * sizeof(Node) +
                        leaves_.capacity() * sizeof(NextHop) +
                        leaves8_.capacity() * sizeof(std::uint8_t) +
                        leaf_dict_.capacity() * sizeof(NextHop) +
                        direct_.capacity() * sizeof(std::uint32_t);
    s.node_pool_used = node_alloc_->used();
    s.leaf_pool_used = leaf_alloc_->used();
    s.node_free_blocks = node_alloc_->free_block_count();
    s.leaf_free_blocks = leaf_alloc_->free_block_count();
    s.node_largest_free_run = node_alloc_->largest_free_run();
    s.leaf_largest_free_run = leaf_alloc_->largest_free_run();
    s.node_high_water = node_alloc_->high_water();
    s.leaf_high_water = leaf_alloc_->high_water();
    return s;
}

}  // namespace poptrie
